#include "pregel/stats.h"

#include <sstream>

namespace deltav::pregel {

std::string RunStats::summary() const {
  std::ostringstream os;
  os << "supersteps=" << num_supersteps()
     << " msgs=" << total_messages_sent()
     << " delivered=" << total_messages_delivered()
     << " bytes=" << total_bytes_sent()
     << " cross-machine-bytes=" << total_cross_machine_bytes()
     << " compute=" << total_compute_seconds() << "s"
     << " wall=" << total_wall_seconds() << "s"
     << " sim=" << total_sim_seconds() << "s";
  return os.str();
}

}  // namespace deltav::pregel
