// Vertex→worker partitioning.
//
// Pregel distributes vertices across workers; the partition determines both
// load balance and which messages cross worker (and machine) boundaries.
// Two schemes are provided, matching what Pregel/Pregel+ deployments use:
//
//  * Block — worker w owns a contiguous range. Best cache locality; id
//    locality in the input graph translates into local messages.
//  * Hash  — worker w owns {v : mix64(v) % W == w}. The Pregel default;
//    destroys locality but balances hub-heavy graphs.
//
// Both give O(1) owner lookup and O(1) global↔local index mapping, which
// the engine's inbox scatter relies on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "graph/csr_graph.h"

namespace deltav::pregel {

enum class PartitionScheme { kBlock, kHash };

class VertexPartition {
 public:
  VertexPartition(std::size_t num_vertices, int num_workers,
                  PartitionScheme scheme)
      : n_(num_vertices),
        workers_(num_workers),
        scheme_(scheme),
        block_((num_vertices + num_workers - 1) /
               static_cast<std::size_t>(num_workers)),
        // Reciprocal for division-free owner lookup (Lemire/Kaser):
        // ⌈2^64 / block_⌉; mulhi(inv_, v) == v / block_ exactly for all
        // 32-bit v and block_ ≥ 2. owner() sits on the engine's
        // per-message routing path, where a hardware divide per call is
        // measurable. block_ ≤ 1 (more workers than vertices) would wrap
        // the reciprocal; owner() special-cases it to v / 1 = v.
        block_inv_(block_ <= 1
                       ? 0
                       : ~std::uint64_t{0} / block_ + 1) {
    DV_CHECK(num_workers >= 1);
    if (scheme_ == PartitionScheme::kHash) {
      // Precompute a dense per-owner index: hashing gives the owner but no
      // contiguous local numbering, and the engine's inbox scatter needs
      // local indices to be collision-free.
      local_.resize(n_);
      counts_.assign(static_cast<std::size_t>(workers_), 0);
      for (std::size_t v = 0; v < n_; ++v) {
        const auto w = static_cast<std::size_t>(
            mix64(v) % static_cast<std::uint64_t>(workers_));
        local_[v] = static_cast<std::uint32_t>(counts_[w]++);
      }
    }
  }

  std::size_t num_vertices() const { return n_; }
  int num_workers() const { return workers_; }
  PartitionScheme scheme() const { return scheme_; }

  int owner(graph::VertexId v) const {
    DV_DCHECK(v < n_);
    if (scheme_ == PartitionScheme::kBlock) {
      if (block_ <= 1) return static_cast<int>(v);
      return static_cast<int>(mulhi64(block_inv_, v));
    }
    return static_cast<int>(mix64(v) % static_cast<std::uint64_t>(workers_));
  }

  /// owner() and local_index() in one lookup — the message-routing hot
  /// path needs both and shares the owner computation.
  std::pair<int, std::size_t> locate(graph::VertexId v) const {
    DV_DCHECK(v < n_);
    if (scheme_ == PartitionScheme::kBlock) {
      const int w = owner(v);
      return {w, v - begin_of(w)};
    }
    const int w = owner(v);
    return {w, local_[v]};
  }

  /// Number of vertices owned by `worker`.
  std::size_t count(int worker) const {
    if (scheme_ == PartitionScheme::kBlock) {
      const std::size_t lo = begin_of(worker);
      const std::size_t hi = std::min(n_, lo + block_);
      return hi > lo ? hi - lo : 0;
    }
    return counts_[static_cast<std::size_t>(worker)];
  }

  /// Dense per-worker index of v within its owner's vertex set.
  std::size_t local_index(graph::VertexId v) const {
    if (scheme_ == PartitionScheme::kBlock) return v - begin_of(owner(v));
    return local_[v];
  }

  /// Upper bound on local_index(v)+1 over vertices owned by `worker`.
  std::size_t local_capacity(int worker) const { return count(worker); }

  /// Calls fn(v) for every vertex owned by `worker`, in increasing id order.
  template <typename Fn>
  void for_each_owned(int worker, Fn&& fn) const {
    if (scheme_ == PartitionScheme::kBlock) {
      const std::size_t lo = begin_of(worker);
      const std::size_t hi = std::min(n_, lo + block_);
      for (std::size_t v = lo; v < hi; ++v)
        fn(static_cast<graph::VertexId>(v));
    } else {
      for (std::size_t v = 0; v < n_; ++v) {
        const auto vid = static_cast<graph::VertexId>(v);
        if (owner(vid) == worker) fn(vid);
      }
    }
  }

 private:
  static std::uint64_t mulhi64(std::uint64_t a, std::uint64_t b) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 64);
  }

  std::size_t begin_of(int worker) const {
    return static_cast<std::size_t>(worker) * block_;
  }

  std::size_t n_;
  int workers_;
  PartitionScheme scheme_;
  std::size_t block_;
  std::uint64_t block_inv_;            // block scheme only
  std::vector<std::uint32_t> local_;   // hash scheme only
  std::vector<std::size_t> counts_;    // hash scheme only
};

}  // namespace deltav::pregel
