#include "pregel/worker_pool.h"

#include "dv/obs/obs.h"

namespace deltav::pregel {

namespace {

/// Runs one fork-join job, recording a "pregel.worker" span into the
/// worker's own trace lane (lane == worker id, the single-writer rule).
/// Costs one atomic load per worker per region when tracing is off.
void run_job(const std::function<void(int)>& fn, int id) {
  obs::Collector* const col = obs::current();
  if (!col) {
    fn(id);
    return;
  }
  auto& tr = col->trace;
  const std::uint64_t t0 = tr.now_us();
  fn(id);
  tr.record(static_cast<std::size_t>(id), "pregel.worker", t0,
            tr.now_us() - t0);
}

}  // namespace

WorkerPool::WorkerPool(int num_workers) {
  DV_CHECK_MSG(num_workers >= 1, "need at least one worker");
  threads_.reserve(static_cast<std::size_t>(num_workers) - 1);
  for (int id = 1; id < num_workers; ++id)
    threads_.emplace_back([this, id] { worker_main(id); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(int)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    first_error_ = nullptr;
    running_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();

  // Worker 0 is the calling thread: no oversubscription, and single-worker
  // configurations never context-switch.
  try {
    run_job(fn, 0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void WorkerPool::worker_main(int id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    try {
      run_job(*job, id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace deltav::pregel
