// Global aggregators, Pregel-style.
//
// An aggregator reduces one value contributed by each vertex (or worker)
// during a superstep to a single global value visible to every vertex at
// the next superstep. The ΔV runtime uses a boolean AND aggregator to
// evaluate `until` clauses and the `stable` builtin globally; algorithms use
// numeric ones for convergence checks.
//
// Contributions are gathered into per-worker slots (no atomics on the hot
// path, deterministic reduction order) and folded by reduce().
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"

namespace deltav::pregel {

template <typename T, typename Merge>
class Aggregator {
 public:
  Aggregator(int num_workers, T identity, Merge merge = Merge{})
      : identity_(identity),
        merge_(merge),
        num_workers_(static_cast<std::size_t>(num_workers)),
        // One cache line per worker: contribute() is called from the
        // per-vertex hot loop, and adjacent slots would false-share.
        // (A plain array, not std::vector<bool>, which would bit-pack the
        // slots and turn concurrent contributions into a data race.)
        slots_(std::make_unique<Slot[]>(num_workers_)) {
    DV_CHECK(num_workers >= 1);
    reset();
  }

  /// Folds `value` into this worker's slot. Safe to call concurrently from
  /// distinct workers; never from the same worker on two threads.
  void contribute(int worker, const T& value) {
    T& slot = slots_[static_cast<std::size_t>(worker)].value;
    slot = merge_(slot, value);
  }

  /// Folds all worker slots; call between supersteps (single-threaded).
  T reduce() const {
    T acc = identity_;
    for (std::size_t i = 0; i < num_workers_; ++i)
      acc = merge_(acc, slots_[i].value);
    return acc;
  }

  void reset() {
    for (std::size_t i = 0; i < num_workers_; ++i)
      slots_[i].value = identity_;
  }

 private:
  struct alignas(64) Slot {
    T value;
  };

  T identity_;
  Merge merge_;
  std::size_t num_workers_;
  std::unique_ptr<Slot[]> slots_;
};

struct AndOp {
  bool operator()(bool a, bool b) const { return a && b; }
};
struct OrOp {
  bool operator()(bool a, bool b) const { return a || b; }
};
struct SumOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a + b;
  }
};
struct MinOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? a : b;
  }
};
struct MaxOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? b : a;
  }
};

using AndAggregator = Aggregator<bool, AndOp>;
using OrAggregator = Aggregator<bool, OrOp>;

}  // namespace deltav::pregel
