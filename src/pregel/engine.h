// A Pregel+-like Bulk Synchronous Parallel graph-computation engine.
//
// The engine owns the BSP mechanics the paper's frameworks provide:
// vertex→worker partitioning, per-superstep fork-join execution of a
// user compute function, message buffering and delivery, sender-side
// combiners, vote-to-halt / reactivation semantics, termination detection,
// and statistics (message/byte counts, per-phase timings, and a simulated
// cluster communication time via net::ClusterModel).
//
// Vertex *state* deliberately lives outside the engine, in the algorithm
// object (typically as structure-of-arrays vectors indexed by vertex id).
// This keeps the engine reusable by both the hand-written Pregel+ baselines
// and the ΔV interpreter, whose state layout is only known at run time.
//
// Threading model: one superstep = two fork-join phases over a persistent
// WorkerPool. During compute, each worker touches only its owned vertices
// and its own outboxes. During exchange, each worker builds only its own
// inbox (reading all senders' outboxes for its slot — sender buffers are
// immutable in this phase). Halt flags are owner-written only. No locks or
// atomics appear on the per-message path.
//
// Determinism: given a fixed worker count and partition scheme, message
// delivery order per vertex is fixed (senders visited in worker order, each
// buffer in generation order), so floating-point reductions reproduce
// bit-for-bit across runs.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/open_hash_map.h"
#include "common/timer.h"
#include "dv/obs/obs.h"
#include "graph/csr_graph.h"
#include "net/cluster_model.h"
#include "pregel/partition.h"
#include "pregel/stats.h"
#include "pregel/worker_pool.h"

namespace deltav::pregel {

using graph::VertexId;

/// Byte accounting hook. Specialize (or pass a custom Traits) when the
/// logical wire size differs from sizeof(Message) — the ΔV runtime does
/// this so Figure-4 byte counts reflect the paper's message format rather
/// than our in-memory struct padding.
template <typename Message>
struct MessageTraits {
  static std::size_t wire_size(const Message&) { return sizeof(Message); }
};

/// Tag type: no combiner; every message is delivered as sent.
struct NoCombiner {};

enum class ScheduleMode {
  /// Every superstep scans all owned vertices and skips halted ones —
  /// what stock Pregel+ does (§9 of the paper calls out its cost).
  kScanAll,
  /// Maintains an explicit per-worker queue of runnable vertices, fed by
  /// message deliveries and non-halting vertices — the paper's proposed
  /// halt-by-default scheduler (future work §9; our ablation A3).
  kWorkQueue,
};

struct EngineOptions {
  int num_workers = 4;
  PartitionScheme partition = PartitionScheme::kBlock;
  /// Applies only when a combiner type is supplied; lets benches toggle
  /// combining without changing types.
  bool use_combiner = true;
  ScheduleMode schedule = ScheduleMode::kScanAll;
  /// Simulated deployment used for cross-machine byte accounting. Engine
  /// workers are block-mapped onto the model's machines.
  net::ClusterConfig cluster;
  /// Observability sink. nullptr falls back to the globally installed
  /// collector (obs::current()); when that is also null the engine pays
  /// nothing beyond one pointer test per superstep.
  obs::Collector* collector = nullptr;
};

template <typename Message, typename Combiner = NoCombiner,
          typename Traits = MessageTraits<Message>>
class Engine {
  static constexpr bool kHasCombiner = !std::is_same_v<Combiner, NoCombiner>;

  // A combiner may define key(dst, msg) to combine at a finer grain than
  // the destination vertex (the ΔV runtime keys on (dst, aggregation
  // site)). Without it, all messages to one vertex combine together.
  template <typename C>
  static constexpr bool kHasKey = requires(const C& c, VertexId v,
                                           const Message& m) {
    { c.key(v, m) } -> std::convertible_to<std::uint64_t>;
  };

  // A combiner whose key space factors as (destination vertex × small
  // subkey) may additionally define num_subkeys()/subkey(msg); the engine
  // then combines through a direct-indexed slot array (one slot per owned
  // vertex per subkey) instead of probing a hash map per message — the
  // combine lookup is the single hottest engine operation.
  template <typename C>
  static constexpr bool kHasSubkey = requires(const C& c, const Message& m) {
    { c.num_subkeys() } -> std::convertible_to<std::size_t>;
    { c.subkey(m) } -> std::convertible_to<std::size_t>;
  };

 public:
  static constexpr std::size_t kNoLimit =
      std::numeric_limits<std::size_t>::max();

  Engine(std::size_t num_vertices, EngineOptions options = {},
         Combiner combiner = {})
      : options_(options),
        combiner_(std::move(combiner)),
        partition_(num_vertices, options.num_workers, options.partition),
        cluster_(options.cluster),
        pool_(options.num_workers),
        halted_(num_vertices, 0),
        deleted_(num_vertices, 0),
        scheduled_(num_vertices, 0) {
    DV_CHECK(options.num_workers >= 1);
    const int w = options.num_workers;
    if constexpr (kHasCombiner && kHasSubkey<Combiner>) {
      if (options.use_combiner) {
        const std::size_t s = combiner_.num_subkeys();
        // Every worker keeps one slot per (owned vertex, subkey) per
        // destination worker; fall back to the hash maps when that would
        // be an unreasonable allocation.
        if (s > 0 && num_vertices * s * static_cast<std::size_t>(w) <=
                         kDenseCombineSlotCap)
          dense_subkeys_ = s;
      }
    }
    workers_.resize(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      auto& ws = workers_[static_cast<std::size_t>(i)];
      ws.outbox.resize(static_cast<std::size_t>(w));
      ws.outbox_hwm.assign(static_cast<std::size_t>(w), 0);
      ws.combine_maps.resize(static_cast<std::size_t>(w));
      if (dense_subkeys_ > 0) {
        ws.dense_slots.resize(static_cast<std::size_t>(w));
        ws.dense_touched.resize(static_cast<std::size_t>(w));
        for (int dw = 0; dw < w; ++dw)
          ws.dense_slots[static_cast<std::size_t>(dw)].resize(
              partition_.local_capacity(dw) * dense_subkeys_);
      }
      ws.inbox_offsets.assign(partition_.local_capacity(i) + 1, 0);
      ws.unhalted = partition_.count(i);
      ws.cross_in_from.assign(
          static_cast<std::size_t>(options.cluster.machines), 0);
      if (options.schedule == ScheduleMode::kWorkQueue) {
        partition_.for_each_owned(i, [&](VertexId v) {
          ws.queue.push_back(v);
          scheduled_[v] = 1;
        });
      }
    }
  }

  /// Per-vertex API handed to the compute function — the moral equivalent
  /// of Pregel's Vertex base class methods.
  class Context {
   public:
    std::size_t superstep() const { return engine_->superstep_; }
    std::size_t num_vertices() const { return engine_->partition_.num_vertices(); }
    int worker() const { return worker_; }
    VertexId vertex() const { return vertex_; }

    void send(VertexId dst, const Message& msg) {
      engine_->send_from(worker_, dst, msg);
    }

    /// Sends one identical message to every destination in `dsts`. Stats
    /// and routing match `dsts.size()` individual send() calls; the batch
    /// form exists so span-invariant broadcasts (the VM's fused Δ-send)
    /// amortize the per-message bookkeeping.
    void send_span(std::span<const VertexId> dsts, const Message& msg) {
      engine_->send_span_from(worker_, dsts, msg);
    }

    /// Halts this vertex after the current compute call; it is reactivated
    /// by any delivered message.
    void vote_to_halt() { halt_requested_ = true; }

   private:
    friend class Engine;
    Engine* engine_ = nullptr;
    int worker_ = 0;
    VertexId vertex_ = 0;
    bool halt_requested_ = false;
  };

  /// Executes one superstep: runs `fn(ctx, v, msgs)` for every active owned
  /// vertex on every worker, then exchanges messages. `msgs` is the span of
  /// messages delivered to v at the end of the previous superstep.
  template <typename ComputeFn>
  void step(ComputeFn&& fn) {
    SuperstepStats ss;
    obs::Collector* const col = obs::resolve(options_.collector);
    const std::uint64_t span_start = col ? col->trace.now_us() : 0;
    Timer phase_timer;

    // Both phases run inside ONE fork-join region: a lightweight barrier
    // separates compute from exchange so the workers stay hot instead of
    // paying a second condvar wake/sleep per superstep. The barrier's
    // acquire/release pair publishes every worker's outbox writes to every
    // exchange reader. A worker that throws still arrives (so nobody spins
    // forever), flags the failure so exchange is skipped engine-wide, and
    // rethrows for the pool to propagate.
    const int W = options_.num_workers;
    std::atomic<int> arrived{0};
    std::atomic<bool> failed{false};
    double compute_secs = 0;
    pool_.run([&](int w) {
      std::exception_ptr err;
      try {
        compute_phase(w, fn);
      } catch (...) {
        err = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == W)
        compute_secs = phase_timer.elapsed_seconds();
      while (arrived.load(std::memory_order_acquire) < W)
        std::this_thread::yield();
      if (err) std::rethrow_exception(err);
      if (!failed.load(std::memory_order_relaxed)) exchange_phase(w);
    });
    ss.compute_seconds = compute_secs;
    ss.exchange_seconds = phase_timer.elapsed_seconds() - compute_secs;

    finish_step(ss);

    if (col) {
      auto& tr = col->trace;
      const std::uint64_t t_end = tr.now_us();
      const auto us = [](double s) {
        return static_cast<std::uint64_t>(s * 1e6);
      };
      // Phase spans are reconstructed from the phase timings so the trace
      // nests as superstep ⊃ {compute, exchange} by timestamp containment.
      tr.record(0, "pregel.superstep", span_start, t_end - span_start);
      tr.record(0, "pregel.compute", span_start, us(ss.compute_seconds));
      tr.record(0, "pregel.exchange", span_start + us(ss.compute_seconds),
                us(ss.exchange_seconds));
    }
  }

  /// Number of currently unhalted vertices — the live frontier size.
  std::uint64_t num_active() const {
    std::uint64_t n = 0;
    for (const auto& ws : workers_) n += ws.unhalted;
    return n;
  }

  /// True once every vertex has halted and no messages are pending.
  bool done() const {
    std::uint64_t unhalted = 0, pending = 0;
    for (const auto& ws : workers_) {
      unhalted += ws.unhalted;
      pending += ws.inbox_data.size();
    }
    return unhalted == 0 && pending == 0;
  }

  /// Runs supersteps until done() or `max_supersteps` steps have executed.
  template <typename ComputeFn>
  const RunStats& run(ComputeFn&& fn, std::size_t max_supersteps = kNoLimit) {
    while (!done() && superstep_ < max_supersteps) step(fn);
    return stats_;
  }

  /// Fused multi-round drive — the exchange-free superstep shape. Runs
  /// compute rounds back-to-back inside ONE fork-join region, separated
  /// by generation barriers (~2µs) instead of per-round pool dispatches
  /// (~6µs plus condvar sleep/wake amplification when rounds do real
  /// work). Exists for callers whose sends bypass the message pipeline —
  /// the ΔV lock-free fold path — where a round leaves nothing to
  /// exchange and the only inter-round work is the caller's own (fold
  /// drain, loop-condition checks), done here by the last-arriving
  /// thread via `service()` while the other workers park at the barrier.
  /// service() returns false to end the region; state it mutates is
  /// published to the next round by the barrier release.
  ///
  /// Rounds that DO send (a program may mix buffered sites in, or fall
  /// back for one contribution) run the full exchange inside the region,
  /// so correctness never rests on the caller's eligibility proof — only
  /// the performance claim does. Callers must not need per-round
  /// main-thread interleaving: send probes, checkpoint hooks, and
  /// per-superstep trace spans all require the classic step() loop.
  /// Superstep stats are recorded exactly as step() records them;
  /// compute/exchange wall timings are left zero (no per-round timers).
  template <typename ComputeFn>
  void run_fused(ComputeFn&& fn, const std::function<bool()>& service) {
    const int W = options_.num_workers;
    std::atomic<int> arrived{0};
    std::atomic<std::uint64_t> gen{0};
    std::atomic<bool> stop{false};
    std::atomic<bool> do_exchange{false};
    std::atomic<bool> failed{false};
    // Generation barrier with a single-threaded leader section. The
    // leader (last arriver) runs `section` while everyone else spins on
    // the generation word; its release publishes the leader's writes. A
    // throwing section still bumps the generation (nobody spins forever),
    // flags the failure, and rethrows on the leader's thread for the pool
    // to propagate.
    const auto barrier = [&](const auto& section) {
      const std::uint64_t g = gen.load(std::memory_order_acquire);
      if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == W) {
        arrived.store(0, std::memory_order_relaxed);
        try {
          section();
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
          gen.store(g + 1, std::memory_order_release);
          throw;
        }
        gen.store(g + 1, std::memory_order_release);
      } else {
        while (gen.load(std::memory_order_acquire) == g)
          std::this_thread::yield();
      }
    };
    const auto bookkeep = [&] {
      SuperstepStats ss;
      finish_step(ss);
      if (!service()) stop.store(true, std::memory_order_relaxed);
    };
    pool_.run([&](int w) {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          compute_phase(w, fn);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
          barrier([] {});
          throw;
        }
        barrier([&] {
          if (failed.load(std::memory_order_relaxed)) return;
          // The round is exchange-free iff no outbox got a (fallback)
          // message and every inbox was already drained; then the
          // between-round bookkeeping happens right here and the next
          // compute round starts without a second barrier.
          bool msgs = false;
          for (int dw = 0; !msgs && dw < W; ++dw) {
            msgs = !workers_[static_cast<std::size_t>(dw)]
                        .inbox_data.empty();
            for (int sw = 0; !msgs && sw < W; ++sw)
              msgs = !workers_[static_cast<std::size_t>(sw)]
                          .outbox[static_cast<std::size_t>(dw)]
                          .empty();
          }
          do_exchange.store(msgs, std::memory_order_relaxed);
          if (!msgs) bookkeep();
        });
        if (do_exchange.load(std::memory_order_relaxed) &&
            !failed.load(std::memory_order_relaxed)) {
          try {
            exchange_phase(w);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            stop.store(true, std::memory_order_relaxed);
            barrier([] {});
            throw;
          }
          barrier([&] {
            if (!failed.load(std::memory_order_relaxed)) bookkeep();
          });
        }
      }
    });
  }

  /// Single-threaded sibling of run_fused for sparse rounds. When the
  /// live frontier is a few dozen vertices, even a generation barrier is
  /// pure overhead — on a loaded host every fork-join forces a scheduling
  /// round-trip through all workers that costs more than the compute
  /// itself. Here the caller's thread walks every worker's lane in worker
  /// order (identical per-worker structures, identical stats, identical
  /// deterministic vertex order), exchanges only when a round actually
  /// produced messages, and runs `service()` between rounds exactly like
  /// run_fused's leader section. Only profitable for exchange-free
  /// callers; the same gating rules as run_fused apply.
  template <typename ComputeFn>
  void run_inline(ComputeFn&& fn, const std::function<bool()>& service) {
    const int W = options_.num_workers;
    for (;;) {
      for (int w = 0; w < W; ++w) compute_phase(w, fn);
      bool msgs = false;
      for (int dw = 0; !msgs && dw < W; ++dw) {
        msgs = !workers_[static_cast<std::size_t>(dw)].inbox_data.empty();
        for (int sw = 0; !msgs && sw < W; ++sw)
          msgs = !workers_[static_cast<std::size_t>(sw)]
                      .outbox[static_cast<std::size_t>(dw)]
                      .empty();
      }
      if (msgs)
        for (int w = 0; w < W; ++w) exchange_phase(w);
      SuperstepStats ss;
      finish_step(ss);
      if (!service()) return;
    }
  }

  std::size_t superstep() const { return superstep_; }
  const RunStats& stats() const { return stats_; }
  const VertexPartition& partition() const { return partition_; }
  const net::ClusterModel& cluster() const { return cluster_; }
  const EngineOptions& options() const { return options_; }

  bool is_halted(VertexId v) const {
    DV_CHECK(v < halted_.size());
    return halted_[v] != 0;
  }

  /// Reactivates every (non-deleted) vertex (used by phase transitions in
  /// compiled ΔV programs: a new statement's first superstep must run
  /// everywhere).
  void activate_all() {
    for (int w = 0; w < options_.num_workers; ++w) {
      auto& ws = workers_[static_cast<std::size_t>(w)];
      ws.unhalted = 0;
      // Existing queue entries are exactly the vertices with scheduled_
      // set (e.g. by a message delivered last superstep); keep them and
      // append only the unscheduled rest, so every live vertex is queued
      // exactly once. Clearing the queue here would strand any
      // already-scheduled vertex: its flag stays set, so the loop below
      // would never re-queue it.
      partition_.for_each_owned(w, [&](VertexId v) {
        if (deleted_[v]) return;
        halted_[v] = 0;
        ++ws.unhalted;
        if (options_.schedule == ScheduleMode::kWorkQueue &&
            !scheduled_[v]) {
          ws.queue.push_back(v);
          scheduled_[v] = 1;
        }
      });
    }
  }

  /// Wakes one vertex so it runs at the next superstep (e.g. so a vertex
  /// about to be deleted can broadcast its retraction, §9 of the paper).
  /// Call between supersteps only.
  void activate(VertexId v) {
    DV_CHECK(v < halted_.size());
    if (deleted_[v] || !halted_[v]) return;
    halted_[v] = 0;
    auto& ws = workers_[static_cast<std::size_t>(partition_.owner(v))];
    ++ws.unhalted;
    if (options_.schedule == ScheduleMode::kWorkQueue && !scheduled_[v]) {
      ws.queue.push_back(v);
      scheduled_[v] = 1;
    }
  }

  /// Permanently removes a vertex from the computation: it never computes
  /// again and messages addressed to it are dropped (counted in
  /// SuperstepStats::messages_dropped). Mirrors Pregel's vertex removal;
  /// §9 of the paper extends incrementalization to it. Safe to call from
  /// the vertex's own compute() (owner thread) or between supersteps.
  void mark_deleted(VertexId v) {
    DV_CHECK(v < deleted_.size());
    if (deleted_[v]) return;
    deleted_[v] = 1;
    if (!halted_[v]) {
      halted_[v] = 1;
      --workers_[static_cast<std::size_t>(partition_.owner(v))].unhalted;
    }
  }

  bool is_deleted(VertexId v) const {
    DV_CHECK(v < deleted_.size());
    return deleted_[v] != 0;
  }

  std::uint64_t num_unhalted() const {
    std::uint64_t total = 0;
    for (const auto& ws : workers_) total += ws.unhalted;
    return total;
  }

  /// Extends capacity to `new_num_vertices` (streaming vertex additions).
  /// New vertices start halted, undeleted, and unscheduled; existing
  /// halt/delete flags are preserved. The partition function depends on
  /// |V| — block ownership shifts as ranges stretch, and hash local
  /// numbering is recomputed — so every per-worker structure keyed by
  /// local indices is rebuilt from the authoritative flag arrays. Call
  /// between supersteps only, with no messages in flight: pending inboxes
  /// are laid out by the OLD local indices and cannot be remapped.
  void grow(std::size_t new_num_vertices) {
    const std::size_t old_n = partition_.num_vertices();
    DV_CHECK_MSG(new_num_vertices >= old_n, "grow() cannot shrink |V|");
    if (new_num_vertices == old_n) return;
    for (const auto& ws : workers_)
      DV_CHECK_MSG(ws.inbox_data.empty(),
                   "grow() with messages in flight (inbox not drained)");
    partition_ = VertexPartition(new_num_vertices, options_.num_workers,
                                 options_.partition);
    halted_.resize(new_num_vertices, 1);
    deleted_.resize(new_num_vertices, 0);
    scheduled_.assign(new_num_vertices, 0);
    const int W = options_.num_workers;
    // Re-gate dense combining against the new slot count; a growing graph
    // can cross the cap, falling back to the hash maps.
    if constexpr (kHasCombiner && kHasSubkey<Combiner>) {
      if (options_.use_combiner) {
        const std::size_t s = combiner_.num_subkeys();
        dense_subkeys_ =
            (s > 0 && new_num_vertices * s * static_cast<std::size_t>(W) <=
                          kDenseCombineSlotCap)
                ? s
                : 0;
      }
    }
    for (int i = 0; i < W; ++i) {
      auto& ws = workers_[static_cast<std::size_t>(i)];
      if (dense_subkeys_ > 0) {
        ws.dense_slots.assign(static_cast<std::size_t>(W), {});
        ws.dense_touched.assign(static_cast<std::size_t>(W), {});
        for (int dw = 0; dw < W; ++dw)
          ws.dense_slots[static_cast<std::size_t>(dw)].resize(
              partition_.local_capacity(dw) * dense_subkeys_);
      } else {
        ws.dense_slots.clear();
        ws.dense_touched.clear();
      }
      ws.inbox_offsets.assign(partition_.local_capacity(i) + 1, 0);
      ws.inbox_data.clear();
      ws.scatter_cursor.clear();
      ws.queue.clear();
      ws.next_queue.clear();
      ws.unhalted = 0;
      partition_.for_each_owned(i, [&](VertexId v) {
        if (deleted_[v] || halted_[v]) return;
        ++ws.unhalted;
        if (options_.schedule == ScheduleMode::kWorkQueue) {
          ws.queue.push_back(v);
          scheduled_[v] = 1;
        }
      });
    }
  }

  /// Execution state captured at a superstep boundary. Outboxes, combine
  /// maps and dense slots are empty there by construction, so the only
  /// state that carries across the boundary is: halt/delete flags, the
  /// work queues (their order IS the kWorkQueue compute order, which fixes
  /// message emission order — a bit-exact restore must reproduce it
  /// verbatim), the pending inboxes (per worker, in per-vertex delivery
  /// order), the superstep counter, and the stats history.
  struct Checkpoint {
    std::size_t num_vertices = 0;
    std::size_t superstep = 0;
    std::vector<std::uint8_t> halted;
    std::vector<std::uint8_t> deleted;
    /// Per worker; empty under kScanAll.
    std::vector<std::vector<VertexId>> queues;
    /// Per worker: undelivered messages as (destination, message), grouped
    /// by destination in owner iteration order, each group in delivery
    /// order.
    std::vector<std::vector<std::pair<VertexId, Message>>> pending;
    RunStats stats;
  };

  /// Captures the engine state between supersteps.
  Checkpoint checkpoint() const {
    for (const auto& ws : workers_)
      for (const auto& out : ws.outbox)
        DV_CHECK_MSG(out.empty(),
                     "checkpoint() mid-superstep (outbox not flushed)");
    Checkpoint c;
    c.num_vertices = partition_.num_vertices();
    c.superstep = superstep_;
    c.halted = halted_;
    c.deleted = deleted_;
    c.stats = stats_;
    const auto W = static_cast<std::size_t>(options_.num_workers);
    c.queues.resize(W);
    c.pending.resize(W);
    for (std::size_t w = 0; w < W; ++w) {
      const auto& ws = workers_[w];
      c.queues[w] = ws.queue;
      auto& pend = c.pending[w];
      pend.reserve(ws.inbox_data.size());
      partition_.for_each_owned(static_cast<int>(w), [&](VertexId v) {
        const std::size_t li = partition_.local_index(v);
        for (std::uint32_t i = ws.inbox_offsets[li];
             i < ws.inbox_offsets[li + 1]; ++i)
          pend.emplace_back(v, ws.inbox_data[i]);
      });
    }
    return c;
  }

  /// Restores a checkpoint taken by an engine with the same configuration
  /// (vertex count, worker count, partition scheme, schedule mode) —
  /// bit-exact continuation is only defined under identical configuration,
  /// since the partition fixes message routing and delivery order.
  /// scheduled_ and unhalted are derived, not stored: they are recomputed
  /// from the queues and flags.
  void restore(const Checkpoint& c) {
    DV_CHECK_MSG(c.num_vertices == partition_.num_vertices(),
                 "checkpoint |V| mismatch");
    DV_CHECK_MSG(c.halted.size() == c.num_vertices &&
                     c.deleted.size() == c.num_vertices,
                 "checkpoint flag array size mismatch");
    const auto W = static_cast<std::size_t>(options_.num_workers);
    DV_CHECK_MSG(c.queues.size() == W && c.pending.size() == W,
                 "checkpoint worker count mismatch");
    halted_ = c.halted;
    deleted_ = c.deleted;
    std::fill(scheduled_.begin(), scheduled_.end(), std::uint8_t{0});
    superstep_ = c.superstep;
    stats_ = c.stats;
    for (std::size_t w = 0; w < W; ++w) {
      auto& ws = workers_[w];
      ws.queue = c.queues[w];
      ws.next_queue.clear();
      DV_CHECK_MSG(ws.queue.empty() ||
                       options_.schedule == ScheduleMode::kWorkQueue,
                   "checkpoint has work queues but schedule is scan-all");
      for (const VertexId v : ws.queue) {
        DV_CHECK_MSG(v < c.num_vertices &&
                         partition_.owner(v) == static_cast<int>(w),
                     "checkpoint queue entry owned by a different worker");
        scheduled_[v] = 1;
      }
      ws.unhalted = 0;
      partition_.for_each_owned(static_cast<int>(w), [&](VertexId v) {
        if (!halted_[v]) ++ws.unhalted;
      });
      // Rebuild the inbox CSR from the (destination, message) list; the
      // per-destination groups arrive in delivery order, and the scatter
      // below is stable, so delivered spans replay byte-for-byte.
      ws.inbox_offsets.assign(
          partition_.local_capacity(static_cast<int>(w)) + 1, 0);
      for (const auto& [v, msg] : c.pending[w]) {
        DV_CHECK_MSG(v < c.num_vertices &&
                         partition_.owner(v) == static_cast<int>(w),
                     "checkpoint pending message owned by a different "
                     "worker");
        ++ws.inbox_offsets[partition_.local_index(v) + 1];
      }
      for (std::size_t i = 1; i < ws.inbox_offsets.size(); ++i)
        ws.inbox_offsets[i] += ws.inbox_offsets[i - 1];
      ws.inbox_data.assign(c.pending[w].size(), Message{});
      auto& cursor = ws.scatter_cursor;
      cursor.assign(ws.inbox_offsets.begin(), ws.inbox_offsets.end() - 1);
      for (const auto& [v, msg] : c.pending[w])
        ws.inbox_data[cursor[partition_.local_index(v)]++] = msg;
    }
  }

  /// Halts every vertex and clears the work queues, so a subsequent
  /// activate() wakes exactly the chosen frontier (streaming epochs: after
  /// convergence the runner wakes only vertices the mutation touched).
  /// Call between supersteps with no messages in flight.
  void halt_all() {
    for (const auto& ws : workers_)
      DV_CHECK_MSG(ws.inbox_data.empty(),
                   "halt_all() with messages in flight");
    std::fill(halted_.begin(), halted_.end(), std::uint8_t{1});
    std::fill(scheduled_.begin(), scheduled_.end(), std::uint8_t{0});
    for (auto& ws : workers_) {
      ws.unhalted = 0;
      ws.queue.clear();
      ws.next_queue.clear();
    }
  }

 private:
  struct Envelope {
    // Default state is the "unset" sentinel so combiner map slots can tell
    // first-touch from fold; GraphBuilder guarantees real ids stay below it.
    VertexId dst = std::numeric_limits<VertexId>::max();
    Message msg{};
  };

  // Cache-line aligned: the per-step counters are bumped from the compute
  // hot loop, and adjacent workers' states must not share a line.
  struct alignas(64) WorkerState {
    // Sender side: one buffer per destination worker.
    std::vector<std::vector<Envelope>> outbox;
    std::vector<OpenHashMap<Envelope>> combine_maps;
    // Dense combine slots (see kHasSubkey): per destination worker, one
    // slot per (owned local vertex × subkey), plus the indices touched
    // this superstep for O(messages) flush and reset.
    std::vector<std::vector<Envelope>> dense_slots;
    std::vector<std::vector<std::uint32_t>> dense_touched;
    // Receiver side: CSR-of-messages over local vertex indices.
    std::vector<Message> inbox_data;
    std::vector<std::uint32_t> inbox_offsets;
    // Scatter cursors, one per local vertex — scratch for exchange_phase,
    // kept here so the allocation is reused across supersteps.
    std::vector<std::uint32_t> scatter_cursor;
    // Per-destination outbox high-water marks across past supersteps;
    // compute_phase pre-reserves to these so steady-state sends never
    // reallocate mid-superstep.
    std::vector<std::size_t> outbox_hwm;
    // Work-queue scheduling.
    std::vector<VertexId> queue;
    std::vector<VertexId> next_queue;
    // Owner-local bookkeeping.
    std::uint64_t unhalted = 0;
    // Per-step counters (summed into SuperstepStats by finish_step).
    std::uint64_t sent = 0, sent_bytes = 0;
    std::uint64_t delivered = 0, delivered_bytes = 0, cross_bytes = 0;
    std::uint64_t dropped = 0;
    std::uint64_t active = 0;
    std::uint64_t halted_count = 0, woken_count = 0;
    // Cross-machine bytes this worker received, bucketed by the *sender's*
    // machine — lets finish_step compute exact per-machine egress.
    std::vector<std::uint64_t> cross_in_from;
  };

  std::uint64_t combine_key(VertexId dst, const Message& msg) const {
    if constexpr (kHasKey<Combiner>) {
      return combiner_.key(dst, msg);
    } else {
      (void)msg;
      return dst;
    }
  }

  bool combining() const { return kHasCombiner && options_.use_combiner; }

  /// Routes one message past the stats counters: combine (dense slots or
  /// hash map) or append to the destination worker's outbox.
  void route(WorkerState& ws, VertexId dst, const Message& msg) {
    const auto [dw, li] = partition_.locate(dst);
    if constexpr (kHasCombiner) {
      if constexpr (kHasSubkey<Combiner>) {
        if (dense_subkeys_ > 0) {
          const std::size_t idx =
              li * dense_subkeys_ +
              static_cast<std::size_t>(combiner_.subkey(msg));
          auto& dslots = ws.dense_slots[static_cast<std::size_t>(dw)];
          DV_DCHECK(idx < dslots.size());
          Envelope& slot = dslots[idx];
          if (slot.dst == kUnsetDst) {
            slot.dst = dst;
            slot.msg = msg;
            ws.dense_touched[static_cast<std::size_t>(dw)].push_back(
                static_cast<std::uint32_t>(idx));
          } else {
            combiner_(slot.msg, msg);
          }
          return;
        }
      }
      if (options_.use_combiner) {
        auto& slot =
            ws.combine_maps[static_cast<std::size_t>(dw)][combine_key(dst,
                                                                      msg)];
        if (slot.dst == kUnsetDst) {
          slot.dst = dst;
          slot.msg = msg;
        } else {
          combiner_(slot.msg, msg);
        }
        return;
      }
    }
    ws.outbox[static_cast<std::size_t>(dw)].push_back(Envelope{dst, msg});
  }

  void send_from(int worker, VertexId dst, const Message& msg) {
    DV_CHECK_MSG(dst < partition_.num_vertices(),
                 "send to out-of-range vertex " << dst);
    auto& ws = workers_[static_cast<std::size_t>(worker)];
    ++ws.sent;
    ws.sent_bytes += Traits::wire_size(msg);
    route(ws, dst, msg);
  }

  void send_span_from(int worker, std::span<const VertexId> dsts,
                      const Message& msg) {
    auto& ws = workers_[static_cast<std::size_t>(worker)];
    ws.sent += dsts.size();
    ws.sent_bytes += Traits::wire_size(msg) * dsts.size();
    for (const VertexId dst : dsts) {
      DV_CHECK_MSG(dst < partition_.num_vertices(),
                   "send to out-of-range vertex " << dst);
      route(ws, dst, msg);
    }
  }

  template <typename ComputeFn>
  void compute_phase(int w, ComputeFn& fn) {
    auto& ws = workers_[static_cast<std::size_t>(w)];
    for (std::size_t dw = 0; dw < ws.outbox.size(); ++dw)
      ws.outbox[dw].reserve(ws.outbox_hwm[dw]);
    Context ctx;
    ctx.engine_ = this;
    ctx.worker_ = w;

    auto run_vertex = [&](VertexId v) {
      if (halted_[v]) return;
      const std::size_t li = partition_.local_index(v);
      const std::uint32_t lo = ws.inbox_offsets[li];
      const std::uint32_t hi = ws.inbox_offsets[li + 1];
      std::span<const Message> msgs(ws.inbox_data.data() + lo,
                                    ws.inbox_data.data() + hi);
      ctx.vertex_ = v;
      ctx.halt_requested_ = false;
      ++ws.active;
      fn(ctx, v, msgs);
      if (deleted_[v]) return;  // mark_deleted already updated the books
      if (ctx.halt_requested_) {
        halted_[v] = 1;
        --ws.unhalted;
        ++ws.halted_count;
      } else if (options_.schedule == ScheduleMode::kWorkQueue) {
        // Still active next step without needing a message.
        if (!scheduled_[v]) {
          scheduled_[v] = 1;
          ws.next_queue.push_back(v);
        }
      }
    };

    if (options_.schedule == ScheduleMode::kScanAll) {
      partition_.for_each_owned(w, [&](VertexId v) { run_vertex(v); });
    } else {
      for (VertexId v : ws.queue) {
        scheduled_[v] = 0;
        run_vertex(v);
      }
      ws.queue.clear();
    }

    // Flush combined messages into the outbox so the exchange phase sees
    // one uniform representation.
    if (dense_subkeys_ > 0) {
      for (std::size_t dw = 0; dw < ws.dense_slots.size(); ++dw) {
        auto& touched = ws.dense_touched[dw];
        auto& dslots = ws.dense_slots[dw];
        ws.outbox[dw].reserve(ws.outbox[dw].size() + touched.size());
        for (const std::uint32_t idx : touched) {
          ws.outbox[dw].push_back(dslots[idx]);
          dslots[idx].dst = kUnsetDst;
        }
        touched.clear();
      }
    } else if (combining()) {
      for (std::size_t dw = 0; dw < ws.combine_maps.size(); ++dw) {
        auto& map = ws.combine_maps[dw];
        ws.outbox[dw].reserve(ws.outbox[dw].size() + map.size());
        map.for_each([&](std::uint64_t, const Envelope& e) {
          ws.outbox[dw].push_back(e);
        });
        map.clear();
      }
    }
  }

  void exchange_phase(int dw) {
    auto& recv = workers_[static_cast<std::size_t>(dw)];
    const int W = options_.num_workers;

    // Exchange-free early out: when no sender has anything for this
    // worker and its inbox is already empty, both passes are pure
    // bookkeeping over zeroes — skip the O(local vertices) offset fill
    // entirely. This is the common shape under the lock-free fold path,
    // where Δ-contributions bypass outboxes altogether. The inbox check
    // matters: a non-empty inbox holds last step's messages, and the
    // offsets describing it must be rebuilt (to zero) before compute
    // reads them.
    {
      bool idle = recv.inbox_data.empty();
      for (int w = 0; idle && w < W; ++w)
        idle = workers_[static_cast<std::size_t>(w)]
                   .outbox[static_cast<std::size_t>(dw)]
                   .empty();
      if (idle) return;
    }

    // Pass 1: count messages per local vertex; messages to deleted
    // vertices are dropped here (and at scatter below).
    std::fill(recv.inbox_offsets.begin(), recv.inbox_offsets.end(), 0);
    std::uint64_t total = 0;
    for (int w = 0; w < W; ++w) {
      const auto& out =
          workers_[static_cast<std::size_t>(w)]
              .outbox[static_cast<std::size_t>(dw)];
      for (const Envelope& e : out) {
        if (deleted_[e.dst]) continue;
        ++recv.inbox_offsets[partition_.local_index(e.dst) + 1];
        ++total;
      }
    }
    DV_CHECK_MSG(total <= std::numeric_limits<std::uint32_t>::max(),
                 "per-worker inbox exceeds 32-bit offsets");
    for (std::size_t i = 1; i < recv.inbox_offsets.size(); ++i)
      recv.inbox_offsets[i] += recv.inbox_offsets[i - 1];

    // Pass 2: scatter, reactivate, account.
    recv.inbox_data.resize(total);
    auto& cursor = recv.scatter_cursor;
    cursor.assign(recv.inbox_offsets.begin(), recv.inbox_offsets.end() - 1);
    const int dst_machine = machine_of_worker(dw);
    for (int w = 0; w < W; ++w) {
      auto& out = workers_[static_cast<std::size_t>(w)]
                      .outbox[static_cast<std::size_t>(dw)];
      const int src_machine = machine_of_worker(w);
      const bool cross = src_machine != dst_machine;
      for (const Envelope& e : out) {
        if (deleted_[e.dst]) {
          ++recv.dropped;
          continue;
        }
        const std::size_t li = partition_.local_index(e.dst);
        recv.inbox_data[cursor[li]++] = e.msg;
        const std::size_t bytes = Traits::wire_size(e.msg);
        ++recv.delivered;
        recv.delivered_bytes += bytes;
        if (cross) {
          recv.cross_bytes += bytes;
          recv.cross_in_from[static_cast<std::size_t>(src_machine)] += bytes;
        }
        if (halted_[e.dst]) {
          halted_[e.dst] = 0;
          ++recv.unhalted;
          ++recv.woken_count;
        }
        if (options_.schedule == ScheduleMode::kWorkQueue &&
            !scheduled_[e.dst]) {
          scheduled_[e.dst] = 1;
          recv.next_queue.push_back(e.dst);
        }
      }
      auto& hwm = workers_[static_cast<std::size_t>(w)]
                      .outbox_hwm[static_cast<std::size_t>(dw)];
      if (out.size() > hwm) hwm = out.size();
      out.clear();
    }
  }

  void finish_step(SuperstepStats& ss) {
    std::vector<std::uint64_t> egress(
        static_cast<std::size_t>(cluster_.config().machines), 0);
    std::vector<std::uint64_t> ingress(egress.size(), 0);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      auto& ws = workers_[w];
      ss.messages_sent += ws.sent;
      ss.bytes_sent += ws.sent_bytes;
      ss.messages_delivered += ws.delivered;
      ss.messages_dropped += ws.dropped;
      ss.bytes_delivered += ws.delivered_bytes;
      ss.cross_machine_bytes += ws.cross_bytes;
      ss.active_vertices += ws.active;
      ss.vertices_halted += ws.halted_count;
      ss.vertices_woken += ws.woken_count;
      const auto m =
          static_cast<std::size_t>(machine_of_worker(static_cast<int>(w)));
      ingress[m] += ws.cross_bytes;
      for (std::size_t sm = 0; sm < ws.cross_in_from.size(); ++sm) {
        egress[sm] += ws.cross_in_from[sm];
        ws.cross_in_from[sm] = 0;
      }
      ws.sent = ws.sent_bytes = 0;
      ws.delivered = ws.delivered_bytes = ws.cross_bytes = 0;
      ws.dropped = 0;
      ws.active = 0;
      ws.halted_count = ws.woken_count = 0;
      if (options_.schedule == ScheduleMode::kWorkQueue)
        std::swap(ws.queue, ws.next_queue);
    }
    ss.sim_comm_seconds = cluster_.superstep_seconds(egress, ingress);
    stats_.supersteps.push_back(ss);
    ++superstep_;
    if (obs::Collector* const col = obs::resolve(options_.collector)) {
      auto& sh = col->metrics.shard(0);
      sh.add(obs::Counter::kEngineMessagesSent, ss.messages_sent);
      sh.add(obs::Counter::kEngineMessagesDelivered, ss.messages_delivered);
      sh.add(obs::Counter::kEngineMessagesDropped, ss.messages_dropped);
      sh.add(obs::Counter::kEngineActiveVertices, ss.active_vertices);
      sh.add(obs::Counter::kVerticesHalted, ss.vertices_halted);
      sh.add(obs::Counter::kVerticesWoken, ss.vertices_woken);
      sh.add(obs::Counter::kSupersteps, 1);
    }
  }

  int machine_of_worker(int w) const {
    // Block-map engine workers onto the simulated machines; exact when
    // num_workers == cluster.total_workers().
    const int machines = cluster_.config().machines;
    return static_cast<int>(
        (static_cast<std::int64_t>(w) * machines) / options_.num_workers);
  }

  static constexpr VertexId kUnsetDst =
      std::numeric_limits<VertexId>::max();
  /// Upper bound on total dense combine slots (all workers × destination
  /// workers); larger key domains fall back to the hash maps.
  static constexpr std::size_t kDenseCombineSlotCap = std::size_t{1} << 22;

  EngineOptions options_;
  Combiner combiner_;
  std::size_t dense_subkeys_ = 0;  // 0 = dense combining disabled
  VertexPartition partition_;
  net::ClusterModel cluster_;
  WorkerPool pool_;
  std::vector<std::uint8_t> halted_;
  std::vector<std::uint8_t> deleted_;
  std::vector<std::uint8_t> scheduled_;
  std::vector<WorkerState> workers_;
  RunStats stats_;
  std::size_t superstep_ = 0;
};

}  // namespace deltav::pregel
