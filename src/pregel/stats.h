// Per-superstep and whole-run statistics collected by the engine.
//
// These counters are the primary measurement surface for the paper's
// evaluation: Figure 4's message counts come straight from
// RunStats::total_messages_sent(), and the simulated cluster times come
// from the per-superstep cross-machine byte counts fed through
// net::ClusterModel.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace deltav::pregel {

struct SuperstepStats {
  std::uint64_t messages_sent = 0;       // emitted by compute()
  std::uint64_t messages_delivered = 0;  // after sender-side combining
  std::uint64_t messages_dropped = 0;    // addressed to deleted vertices
  std::uint64_t bytes_sent = 0;          // wire bytes, pre-combine
  std::uint64_t bytes_delivered = 0;     // wire bytes, post-combine
  std::uint64_t cross_machine_bytes = 0; // delivered bytes crossing machines
  std::uint64_t active_vertices = 0;     // vertices whose compute() ran
  std::uint64_t vertices_halted = 0;     // vote_to_halt transitions (§6.6)
  std::uint64_t vertices_woken = 0;      // message-driven reactivations
  double compute_seconds = 0;            // wall time of the compute phase
  double exchange_seconds = 0;           // wall time of the exchange phase
  double sim_comm_seconds = 0;           // ClusterModel estimate
};

struct RunStats {
  std::vector<SuperstepStats> supersteps;

  std::size_t num_supersteps() const { return supersteps.size(); }

  std::uint64_t total_messages_sent() const {
    return sum(&SuperstepStats::messages_sent);
  }
  std::uint64_t total_messages_delivered() const {
    return sum(&SuperstepStats::messages_delivered);
  }
  std::uint64_t total_messages_dropped() const {
    return sum(&SuperstepStats::messages_dropped);
  }
  std::uint64_t total_bytes_sent() const {
    return sum(&SuperstepStats::bytes_sent);
  }
  std::uint64_t total_cross_machine_bytes() const {
    return sum(&SuperstepStats::cross_machine_bytes);
  }
  std::uint64_t total_vertices_halted() const {
    return sum(&SuperstepStats::vertices_halted);
  }
  std::uint64_t total_vertices_woken() const {
    return sum(&SuperstepStats::vertices_woken);
  }
  double total_compute_seconds() const {
    return sumd(&SuperstepStats::compute_seconds);
  }
  double total_exchange_seconds() const {
    return sumd(&SuperstepStats::exchange_seconds);
  }
  double total_sim_comm_seconds() const {
    return sumd(&SuperstepStats::sim_comm_seconds);
  }
  /// Simulated cluster run time: local compute + modeled network.
  double total_sim_seconds() const {
    return total_compute_seconds() + total_sim_comm_seconds();
  }
  double total_wall_seconds() const {
    return total_compute_seconds() + total_exchange_seconds();
  }

  std::string summary() const;

 private:
  template <typename T>
  std::uint64_t sum(T SuperstepStats::* field) const {
    std::uint64_t total = 0;
    for (const auto& s : supersteps) total += s.*field;
    return total;
  }
  double sumd(double SuperstepStats::* field) const {
    double total = 0;
    for (const auto& s : supersteps) total += s.*field;
    return total;
  }
};

}  // namespace deltav::pregel
