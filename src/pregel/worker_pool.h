// Persistent worker thread pool with a fork-join interface.
//
// The engine executes each superstep phase (compute, exchange) as one
// fork-join region over a fixed set of worker threads. Threads persist
// across supersteps so a 30-superstep PageRank does not pay thread creation
// 30×W times, and so worker ids are stable — vertex partitions, message
// buffers, and per-worker RNG streams are all indexed by worker id.
//
// run(fn) blocks until fn(worker_id) has returned on every worker.
// Exceptions thrown inside workers are captured and rethrown on the caller.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace deltav::pregel {

class WorkerPool {
 public:
  explicit WorkerPool(int num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return static_cast<int>(threads_.size()) + 1; }

  /// Runs fn(worker_id) on every worker (worker 0 is the calling thread)
  /// and blocks until all have finished. Rethrows the first worker
  /// exception, if any.
  void run(const std::function<void(int)>& fn);

 private:
  void worker_main(int id);

  std::vector<std::thread> threads_;  // workers 1..N-1
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace deltav::pregel
