// Non-owning topology view over either an immutable CsrGraph or a
// DynamicGraph overlay.
//
// The ΔV runtime reads graphs only through this narrow surface (vertex
// count, degrees, adjacency spans, aligned weights). Abstracting it lets
// one compiled program run cold over a CSR snapshot and then resume warm
// over the mutated overlay without recompilation — the two storage layouts
// differ only in where a vertex's adjacency lives, so each accessor is a
// single predictable branch.
//
// Accessor names and signatures deliberately mirror CsrGraph so call sites
// in the interpreter and VM are source-identical for both backings.
#pragma once

#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"

namespace deltav::graph {

class GraphView {
 public:
  GraphView() = default;
  // Implicit by design: every existing CsrGraph call site keeps working.
  GraphView(const CsrGraph& g) : base_(&g) {}
  GraphView(const DynamicGraph& g) : dyn_(&g) {}

  bool valid() const { return base_ != nullptr || dyn_ != nullptr; }

  std::size_t num_vertices() const {
    return dyn_ ? dyn_->num_vertices() : base_->num_vertices();
  }
  bool directed() const { return dyn_ ? dyn_->directed() : base_->directed(); }
  bool weighted() const { return dyn_ ? dyn_->weighted() : base_->weighted(); }
  EdgeIndex num_arcs() const {
    return dyn_ ? dyn_->num_arcs() : base_->num_arcs();
  }

  std::span<const VertexId> out_neighbors(VertexId v) const {
    return dyn_ ? dyn_->out_neighbors(v) : base_->out_neighbors(v);
  }
  std::span<const VertexId> in_neighbors(VertexId v) const {
    return dyn_ ? dyn_->in_neighbors(v) : base_->in_neighbors(v);
  }
  std::span<const double> out_weights(VertexId v) const {
    return dyn_ ? dyn_->out_weights(v) : base_->out_weights(v);
  }
  std::span<const double> in_weights(VertexId v) const {
    return dyn_ ? dyn_->in_weights(v) : base_->in_weights(v);
  }
  std::size_t out_degree(VertexId v) const {
    return dyn_ ? dyn_->out_degree(v) : base_->out_degree(v);
  }
  std::size_t in_degree(VertexId v) const {
    return dyn_ ? dyn_->in_degree(v) : base_->in_degree(v);
  }

 private:
  const CsrGraph* base_ = nullptr;
  const DynamicGraph* dyn_ = nullptr;
};

}  // namespace deltav::graph
