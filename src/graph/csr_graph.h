// Immutable compressed-sparse-row graph.
//
// This is the storage substrate every vertex-centric computation in the
// library runs over. Both out- and in-adjacency are materialized because the
// ΔV language aggregates over #in, #out, and #neighbors (§5 of the paper),
// and the push-conversion pass needs the reverse direction of whatever the
// source program pulls from. For undirected graphs the two directions are
// the same arrays.
//
// Vertices are dense ids [0, num_vertices). Edge weights are optional; an
// unweighted graph reports weight 1.0 for every edge.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace deltav::dv::persist {
class GraphCodec;
}

namespace deltav::graph {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint64_t;

class GraphBuilder;

class CsrGraph {
 public:
  CsrGraph() = default;

  bool directed() const { return directed_; }
  bool weighted() const { return !out_weights_.empty(); }

  std::size_t num_vertices() const {
    return out_offsets_.empty() ? 0 : out_offsets_.size() - 1;
  }

  /// Number of stored arcs. For an undirected graph each logical edge is
  /// stored twice (once per endpoint), mirroring how Pregel frameworks see
  /// adjacency lists; num_logical_edges() undoes that.
  EdgeIndex num_arcs() const { return out_targets_.size(); }
  EdgeIndex num_logical_edges() const {
    return directed_ ? num_arcs() : num_arcs() / 2;
  }

  std::span<const VertexId> out_neighbors(VertexId v) const {
    DV_DCHECK(v < num_vertices());
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  std::span<const VertexId> in_neighbors(VertexId v) const {
    DV_DCHECK(v < num_vertices());
    if (!directed_) return out_neighbors(v);
    return {in_targets_.data() + in_offsets_[v],
            in_targets_.data() + in_offsets_[v + 1]};
  }

  /// Neighbors regardless of direction; only meaningful for undirected
  /// graphs (callers on directed graphs should pick a direction).
  std::span<const VertexId> neighbors(VertexId v) const {
    return out_neighbors(v);
  }

  std::size_t out_degree(VertexId v) const { return out_neighbors(v).size(); }
  std::size_t in_degree(VertexId v) const { return in_neighbors(v).size(); }

  /// Weights aligned with out_neighbors(v); empty span if unweighted.
  std::span<const double> out_weights(VertexId v) const {
    if (!weighted()) return {};
    return {out_weights_.data() + out_offsets_[v],
            out_weights_.data() + out_offsets_[v + 1]};
  }

  std::span<const double> in_weights(VertexId v) const {
    if (!weighted()) return {};
    if (!directed_) return out_weights(v);
    return {in_weights_.data() + in_offsets_[v],
            in_weights_.data() + in_offsets_[v + 1]};
  }

  std::size_t max_out_degree() const;

  /// Human-readable one-line summary ("directed |V|=1024 |E|=8192 ...").
  std::string summary() const;

 private:
  friend class GraphBuilder;
  // Snapshot (de)serialization needs byte-exact access to the arrays; the
  // graph layer cannot depend on dv/, so the codec lives there and is
  // befriended here (see dv/persist/graph_codec.h).
  friend class deltav::dv::persist::GraphCodec;

  bool directed_ = true;
  std::vector<EdgeIndex> out_offsets_;  // size num_vertices()+1
  std::vector<VertexId> out_targets_;
  std::vector<double> out_weights_;  // empty if unweighted
  std::vector<EdgeIndex> in_offsets_;
  std::vector<VertexId> in_targets_;
  std::vector<double> in_weights_;
};

}  // namespace deltav::graph
