// Mutable delta-overlay over an immutable CsrGraph.
//
// The streaming subsystem applies batches of topology mutations between
// epochs of a ΔV computation. Rebuilding the CSR per batch would cost
// O(V+E) even for a one-edge change; instead DynamicGraph keeps the base
// CSR untouched and copies a vertex's adjacency into a per-vertex overlay
// the first time a batch touches it. Reads cost one predictable branch:
// touched vertices read their overlay vectors, untouched vertices read the
// base spans. compact() folds the overlay back into a fresh base CSR when
// the caller decides it has grown too large (overlay_fraction()).
//
// Mutation policy — shared with GraphBuilder (see graph_builder.h):
//  * inserting an edge that already exists updates its weight in place
//    (last-write-wins); on an unweighted graph this is a redundant no-op;
//  * deleting an absent edge is a no-op;
//  * self-loops are dropped (and counted);
//  * removing a vertex *detaches* it: all incident arcs disappear but the
//    id stays valid and keeps its dense slot, so per-vertex runtime state
//    remains index-stable and later batches may reconnect it.
//
// plan()/commit() are deliberately split: the ΔV runner must synthesize
// retraction Δ-messages against the *old* topology (what was previously
// sent along an arc) before the change lands, then injection Δ-messages
// against the new one. plan() resolves a MutationBatch into the net
// per-arc effect without modifying the graph; commit() applies it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace deltav::graph {

/// A batch of topology mutations, applied atomically between ΔV epochs.
/// Edge operations are resolved in insertion order; vertex detachments are
/// processed after all edge operations in the same batch.
struct MutationBatch {
  struct EdgeOp {
    bool insert;  // false = delete
    VertexId src;
    VertexId dst;
    double weight;  // insert only; ignored (1.0) on unweighted graphs
  };

  std::vector<EdgeOp> edges;
  std::size_t add_vertices = 0;           // appended at the id tail
  std::vector<VertexId> detach_vertices;  // drop all incident arcs

  void insert_edge(VertexId src, VertexId dst, double weight = 1.0) {
    edges.push_back(EdgeOp{true, src, dst, weight});
  }
  void remove_edge(VertexId src, VertexId dst) {
    edges.push_back(EdgeOp{false, src, dst, 0.0});
  }
  bool empty() const {
    return edges.empty() && add_vertices == 0 && detach_vertices.empty();
  }
};

/// One stored arc whose presence or weight changes. Undirected edges
/// contribute two ArcChange entries (one per stored direction), mirroring
/// how CsrGraph stores them and how the runtime's send loops walk them.
struct ArcChange {
  VertexId src;
  VertexId dst;
  double old_weight;  // meaningful iff had
  double new_weight;  // meaningful iff has
  bool had;
  bool has;
};

/// The net effect of a MutationBatch against a specific graph snapshot.
/// Produced by DynamicGraph::plan(); consumed by DynamicGraph::commit()
/// and by the runner's Δ-message synthesis.
struct GraphDelta {
  std::size_t old_num_vertices = 0;
  std::size_t new_num_vertices = 0;
  std::vector<ArcChange> arcs;
  /// Endpoints of every changed arc plus detached vertices; sorted, unique.
  /// Freshly added (isolated) vertices are not included — the runner handles
  /// them through growth, not the mutation frontier.
  std::vector<VertexId> touched;
  std::vector<VertexId> detached;  // sorted, unique

  // Policy/bookkeeping counters (logical edges, not stored arcs).
  std::size_t edges_inserted = 0;
  std::size_t edges_removed = 0;
  std::size_t weights_changed = 0;
  std::size_t self_loops_dropped = 0;
  std::size_t redundant_ops = 0;  // delete-missing / no-op weight rewrites

  bool has_removals = false;        // any arc with had && !has
  bool has_weight_changes = false;  // any arc with had && has

  bool empty() const {
    return arcs.empty() && new_num_vertices == old_num_vertices;
  }
};

class DynamicGraph {
 public:
  explicit DynamicGraph(CsrGraph base);

  std::size_t num_vertices() const { return n_; }
  bool directed() const { return base_.directed(); }
  bool weighted() const { return base_.weighted(); }
  EdgeIndex num_arcs() const { return num_arcs_; }
  EdgeIndex num_logical_edges() const {
    return directed() ? num_arcs_ : num_arcs_ / 2;
  }

  std::span<const VertexId> out_neighbors(VertexId v) const {
    DV_DCHECK(v < n_);
    const std::int32_t s = out_slot_[v];
    if (s < 0) return in_base(v) ? base_.out_neighbors(v) : empty_targets();
    return out_targets_ov_[static_cast<std::size_t>(s)];
  }

  std::span<const VertexId> in_neighbors(VertexId v) const {
    DV_DCHECK(v < n_);
    if (!directed()) return out_neighbors(v);
    const std::int32_t s = in_slot_[v];
    if (s < 0) return in_base(v) ? base_.in_neighbors(v) : empty_targets();
    return in_targets_ov_[static_cast<std::size_t>(s)];
  }

  std::span<const double> out_weights(VertexId v) const {
    DV_DCHECK(v < n_);
    if (!weighted()) return {};
    const std::int32_t s = out_slot_[v];
    if (s < 0) return in_base(v) ? base_.out_weights(v) : empty_weights();
    return out_weights_ov_[static_cast<std::size_t>(s)];
  }

  std::span<const double> in_weights(VertexId v) const {
    DV_DCHECK(v < n_);
    if (!weighted()) return {};
    if (!directed()) return out_weights(v);
    const std::int32_t s = in_slot_[v];
    if (s < 0) return in_base(v) ? base_.in_weights(v) : empty_weights();
    return in_weights_ov_[static_cast<std::size_t>(s)];
  }

  std::size_t out_degree(VertexId v) const { return out_neighbors(v).size(); }
  std::size_t in_degree(VertexId v) const { return in_neighbors(v).size(); }

  /// Stored-arc lookup (binary search; adjacency is kept sorted).
  bool has_arc(VertexId src, VertexId dst) const;
  /// Weight of the stored arc src→dst; 1.0 on unweighted graphs.
  /// Precondition: has_arc(src, dst).
  double arc_weight(VertexId src, VertexId dst) const;

  /// Resolves `batch` against the current topology into its net per-arc
  /// effect, WITHOUT mutating the graph. Endpoints must be within
  /// num_vertices() + batch.add_vertices.
  GraphDelta plan(const MutationBatch& batch) const;

  /// Applies a delta produced by plan() on this exact snapshot. Touched
  /// vertices' adjacency is copied into the overlay on first touch.
  void commit(const GraphDelta& delta);

  /// Fraction of vertices whose adjacency lives in the overlay — the
  /// caller's compaction trigger.
  double overlay_fraction() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(overlay_vertices()) /
                         static_cast<double>(n_);
  }
  std::size_t overlay_vertices() const;

  /// Rebuilds the base CSR from the current topology and clears the
  /// overlay. Reads are unchanged before/after; only their cost moves.
  void compact();

  /// A standalone CSR snapshot of the current topology (what a from-scratch
  /// run would be given). Used by the differential harness as the oracle
  /// input and by compact().
  CsrGraph materialize() const;

  const CsrGraph& base() const { return base_; }

 private:
  friend class deltav::dv::persist::GraphCodec;  // see csr_graph.h note

  bool in_base(VertexId v) const { return v < base_.num_vertices(); }
  static std::span<const VertexId> empty_targets() { return {}; }
  static std::span<const double> empty_weights() { return {}; }

  /// Ensures vertex v's `dir` adjacency is overlay-backed, copying from the
  /// base on first touch; returns the overlay slot.
  std::size_t ensure_overlay(VertexId v, bool out_dir);

  void apply_arc(const ArcChange& c, bool out_dir);

  CsrGraph base_;
  std::size_t n_;
  EdgeIndex num_arcs_;

  // −1 = read the base (or, for v ≥ base vertices, empty adjacency).
  std::vector<std::int32_t> out_slot_;
  std::vector<std::int32_t> in_slot_;  // unused (aliases out) if undirected
  std::vector<std::vector<VertexId>> out_targets_ov_;
  std::vector<std::vector<double>> out_weights_ov_;  // aligned; empty if unweighted
  std::vector<std::vector<VertexId>> in_targets_ov_;
  std::vector<std::vector<double>> in_weights_ov_;
};

}  // namespace deltav::graph
