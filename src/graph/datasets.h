// Scaled stand-ins for the paper's evaluation datasets (Table 1).
//
// The paper's graphs (Wikipedia 18.27M/136.5M directed, LiveJournal-DG
// 4.85M/68.5M directed, Facebook 59.2M/185M undirected, LiveJournal-UG
// 3.99M/34.7M undirected) are large crawls we do not ship. Each stand-in is
// an R-MAT graph matching the original's directedness and approximate
// density, scaled down by `scale` (1.0 = the default sizes in DESIGN.md §2,
// chosen so the full Figure-4/5 sweep runs in minutes on one machine).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace deltav::graph {

struct DatasetSpec {
  std::string name;          // e.g. "wikipedia-s"
  std::string mirrors;       // the paper dataset this stands in for
  bool directed;
  std::size_t base_vertices; // at scale 1.0
  std::size_t base_edges;
  bool weighted;             // SSSP needs weights; added on demand
  std::uint64_t seed;
  /// Pendant-periphery fraction (web_crawl generator) — 0 for pure R-MAT.
  /// Wikipedia-like crawls get a stub-page periphery whose HITS scores
  /// freeze, the structure behind the paper's HITS message reduction.
  double periphery = 0.0;
};

/// The four Table-1 stand-ins, in the paper's order.
const std::vector<DatasetSpec>& paper_datasets();

/// Looks a spec up by name; throws CheckError if unknown.
const DatasetSpec& dataset_spec(const std::string& name);

/// Materializes a dataset at the given scale (vertices and edges are both
/// multiplied by `scale`). `weighted` overrides the spec, e.g. for SSSP.
CsrGraph make_dataset(const DatasetSpec& spec, double scale = 1.0,
                      bool weighted = false);

CsrGraph make_dataset(const std::string& name, double scale = 1.0,
                      bool weighted = false);

}  // namespace deltav::graph
