#include "graph/dynamic_graph.h"

#include <algorithm>
#include <map>

#include "graph/graph_builder.h"

namespace deltav::graph {

namespace {

// Binary search of `dst` in a sorted adjacency span; npos if absent.
std::size_t find_in(std::span<const VertexId> targets, VertexId dst) {
  const auto it = std::lower_bound(targets.begin(), targets.end(), dst);
  if (it == targets.end() || *it != dst) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - targets.begin());
}

}  // namespace

DynamicGraph::DynamicGraph(CsrGraph base)
    : base_(std::move(base)),
      n_(base_.num_vertices()),
      num_arcs_(base_.num_arcs()) {
  out_slot_.assign(n_, -1);
  if (directed()) in_slot_.assign(n_, -1);
}

bool DynamicGraph::has_arc(VertexId src, VertexId dst) const {
  return find_in(out_neighbors(src), dst) != static_cast<std::size_t>(-1);
}

double DynamicGraph::arc_weight(VertexId src, VertexId dst) const {
  if (!weighted()) return 1.0;
  const std::size_t pos = find_in(out_neighbors(src), dst);
  DV_CHECK_MSG(pos != static_cast<std::size_t>(-1),
               "arc_weight on absent arc " << src << "->" << dst);
  return out_weights(src)[pos];
}

GraphDelta DynamicGraph::plan(const MutationBatch& batch) const {
  GraphDelta delta;
  delta.old_num_vertices = n_;
  delta.new_num_vertices = n_ + batch.add_vertices;
  const std::size_t new_n = delta.new_num_vertices;
  DV_CHECK_MSG(new_n < (1ULL << 32), "vertex ids are 32-bit");

  // Net per-edge state, resolved sequentially in batch order. Keys are the
  // stored-arc pair for directed graphs and the unordered pair for
  // undirected ones (so (u,v) and (v,u) name the same logical edge). An
  // ordered map keeps the emitted ArcChange order deterministic.
  struct Pending {
    bool had0;   // existed before the batch
    double w0;   // pre-batch weight (1.0 if unweighted or absent)
    bool exists; // current within-batch state
    double w;
  };
  std::map<std::uint64_t, Pending> pending;
  auto key_of = [this](VertexId a, VertexId b) {
    if (!directed() && a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  auto lookup = [&](VertexId a, VertexId b) -> Pending& {
    const std::uint64_t k = key_of(a, b);
    auto it = pending.find(k);
    if (it == pending.end()) {
      Pending p;
      p.had0 = a < n_ && b < n_ && has_arc(a, b);
      p.w0 = p.had0 && weighted() ? arc_weight(a, b) : 1.0;
      p.exists = p.had0;
      p.w = p.w0;
      it = pending.emplace(k, p).first;
    }
    return it->second;
  };

  for (const MutationBatch::EdgeOp& op : batch.edges) {
    DV_CHECK_MSG(op.src < new_n && op.dst < new_n,
                 "mutation edge (" << op.src << "," << op.dst
                                   << ") out of range for |V|=" << new_n);
    if (op.src == op.dst) {
      ++delta.self_loops_dropped;
      continue;
    }
    Pending& p = lookup(op.src, op.dst);
    if (op.insert) {
      const double w = weighted() ? op.weight : 1.0;
      if (p.exists && p.w == w) {
        ++delta.redundant_ops;  // last-write-wins with the same weight
      } else {
        p.exists = true;
        p.w = w;
      }
    } else {
      if (!p.exists) {
        ++delta.redundant_ops;  // delete of a missing edge is a no-op
      } else {
        p.exists = false;
      }
    }
  }

  // Vertex detachment runs after the batch's edge ops: every arc incident
  // to a detached vertex — pre-existing or just inserted — goes away.
  std::vector<VertexId> detach = batch.detach_vertices;
  std::sort(detach.begin(), detach.end());
  detach.erase(std::unique(detach.begin(), detach.end()), detach.end());
  for (const VertexId v : detach) {
    DV_CHECK_MSG(v < new_n,
                 "detach of vertex " << v << " out of range for |V|=" << new_n);
    if (v < n_) {
      for (const VertexId u : out_neighbors(v)) lookup(v, u);
      if (directed())
        for (const VertexId u : in_neighbors(v)) lookup(u, v);
    }
  }
  if (!detach.empty()) {
    for (auto& [k, p] : pending) {
      const auto a = static_cast<VertexId>(k >> 32);
      const auto b = static_cast<VertexId>(k & 0xffffffffu);
      if (p.exists && (std::binary_search(detach.begin(), detach.end(), a) ||
                       std::binary_search(detach.begin(), detach.end(), b)))
        p.exists = false;
    }
  }
  delta.detached = std::move(detach);

  for (const auto& [k, p] : pending) {
    const auto a = static_cast<VertexId>(k >> 32);
    const auto b = static_cast<VertexId>(k & 0xffffffffu);
    const bool presence_changed = p.exists != p.had0;
    const bool weight_changed =
        p.exists && p.had0 && weighted() && p.w != p.w0;
    if (!presence_changed && !weight_changed) continue;
    if (presence_changed) {
      if (p.exists)
        ++delta.edges_inserted;
      else {
        ++delta.edges_removed;
        delta.has_removals = true;
      }
    } else {
      ++delta.weights_changed;
      delta.has_weight_changes = true;
    }
    const ArcChange fwd{a, b, p.w0, p.w, p.had0, p.exists};
    delta.arcs.push_back(fwd);
    if (!directed())
      delta.arcs.push_back(ArcChange{b, a, p.w0, p.w, p.had0, p.exists});
    delta.touched.push_back(a);
    delta.touched.push_back(b);
  }
  delta.touched.insert(delta.touched.end(), delta.detached.begin(),
                       delta.detached.end());
  std::sort(delta.touched.begin(), delta.touched.end());
  delta.touched.erase(
      std::unique(delta.touched.begin(), delta.touched.end()),
      delta.touched.end());
  return delta;
}

std::size_t DynamicGraph::ensure_overlay(VertexId v, bool out_dir) {
  std::vector<std::int32_t>& slots = out_dir ? out_slot_ : in_slot_;
  if (slots[v] >= 0) return static_cast<std::size_t>(slots[v]);
  auto& targets_ov = out_dir ? out_targets_ov_ : in_targets_ov_;
  auto& weights_ov = out_dir ? out_weights_ov_ : in_weights_ov_;
  const std::size_t slot = targets_ov.size();
  if (in_base(v)) {
    const auto ts = out_dir ? base_.out_neighbors(v) : base_.in_neighbors(v);
    targets_ov.emplace_back(ts.begin(), ts.end());
    if (weighted()) {
      const auto ws = out_dir ? base_.out_weights(v) : base_.in_weights(v);
      weights_ov.emplace_back(ws.begin(), ws.end());
    } else {
      weights_ov.emplace_back();
    }
  } else {
    targets_ov.emplace_back();
    weights_ov.emplace_back();
  }
  slots[v] = static_cast<std::int32_t>(slot);
  return slot;
}

void DynamicGraph::apply_arc(const ArcChange& c, bool out_dir) {
  // `out_dir` selects which adjacency list of which endpoint this stored
  // arc lands in: src's out-list or (directed only) dst's in-list.
  const VertexId owner = out_dir ? c.src : c.dst;
  const VertexId other = out_dir ? c.dst : c.src;
  const std::size_t slot = ensure_overlay(owner, out_dir);
  auto& targets =
      (out_dir ? out_targets_ov_ : in_targets_ov_)[slot];
  auto& weights =
      (out_dir ? out_weights_ov_ : in_weights_ov_)[slot];
  const auto it = std::lower_bound(targets.begin(), targets.end(), other);
  const auto pos = static_cast<std::size_t>(it - targets.begin());
  if (c.had && !c.has) {
    DV_CHECK_MSG(it != targets.end() && *it == other,
                 "commit: removal of absent arc " << c.src << "->" << c.dst);
    targets.erase(it);
    if (weighted()) weights.erase(weights.begin() + static_cast<long>(pos));
  } else if (!c.had && c.has) {
    DV_CHECK_MSG(it == targets.end() || *it != other,
                 "commit: insertion of present arc " << c.src << "->"
                                                     << c.dst);
    targets.insert(it, other);
    if (weighted())
      weights.insert(weights.begin() + static_cast<long>(pos), c.new_weight);
  } else if (c.had && c.has) {
    DV_CHECK_MSG(it != targets.end() && *it == other,
                 "commit: weight update of absent arc " << c.src << "->"
                                                        << c.dst);
    if (weighted()) weights[pos] = c.new_weight;
  }
}

void DynamicGraph::commit(const GraphDelta& delta) {
  DV_CHECK_MSG(delta.old_num_vertices == n_,
               "commit: delta planned against |V|=" << delta.old_num_vertices
                                                    << " but graph has |V|="
                                                    << n_);
  if (delta.new_num_vertices > n_) {
    n_ = delta.new_num_vertices;
    out_slot_.resize(n_, -1);
    if (directed()) in_slot_.resize(n_, -1);
  }
  for (const ArcChange& c : delta.arcs) {
    apply_arc(c, /*out_dir=*/true);
    if (directed()) apply_arc(c, /*out_dir=*/false);
    if (c.has && !c.had) ++num_arcs_;
    if (c.had && !c.has) --num_arcs_;
  }
}

std::size_t DynamicGraph::overlay_vertices() const {
  std::size_t count = 0;
  for (std::size_t v = 0; v < n_; ++v) {
    if (out_slot_[v] >= 0 || (directed() && in_slot_[v] >= 0)) ++count;
  }
  return count;
}

CsrGraph DynamicGraph::materialize() const {
  GraphBuilder builder(n_, directed());
  builder.keep_weights(weighted());
  for (std::size_t v = 0; v < n_; ++v) {
    const auto vid = static_cast<VertexId>(v);
    const auto targets = out_neighbors(vid);
    const auto weights = out_weights(vid);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      // Undirected edges are stored once per endpoint; add each logical
      // edge exactly once.
      if (!directed() && vid > targets[i]) continue;
      builder.add_edge(vid, targets[i], weighted() ? weights[i] : 1.0);
    }
  }
  return builder.build();
}

void DynamicGraph::compact() {
  base_ = materialize();
  DV_DCHECK(base_.num_arcs() == num_arcs_);
  out_slot_.assign(n_, -1);
  if (directed()) in_slot_.assign(n_, -1);
  out_targets_ov_.clear();
  out_weights_ov_.clear();
  in_targets_ov_.clear();
  in_weights_ov_.clear();
}

}  // namespace deltav::graph
