// Plain-text edge-list reading and writing.
//
// Format: one edge per line, "src dst [weight]". Lines beginning with '#'
// or '%' are comments (the conventions of SNAP and KONECT dumps, so real
// datasets drop in unchanged when available). Vertex ids may be sparse in
// the file; they are densified on load.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.h"

namespace deltav::graph {

struct EdgeListOptions {
  bool directed = true;
  bool weighted = false;
  bool deduplicate = true;
};

/// Reads an edge list from a stream. Throws CheckError with a line number
/// on malformed input.
CsrGraph read_edge_list(std::istream& in, const EdgeListOptions& options);

/// Reads an edge list from a file path.
CsrGraph read_edge_list_file(const std::string& path,
                             const EdgeListOptions& options);

/// Writes the graph back out (one arc per line; undirected edges once).
void write_edge_list(const CsrGraph& g, std::ostream& out);

}  // namespace deltav::graph
