#include "graph/edge_list_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace deltav::graph {

CsrGraph read_edge_list(std::istream& in, const EdgeListOptions& options) {
  struct RawEdge {
    std::uint64_t src, dst;
    double weight;
  };
  std::vector<RawEdge> raw;
  std::unordered_map<std::uint64_t, VertexId> dense;
  auto densify = [&](std::uint64_t id) {
    auto [it, inserted] =
        dense.emplace(id, static_cast<VertexId>(dense.size()));
    (void)inserted;
    return it->second;
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t s, d;
    if (!(ls >> s >> d))
      DV_FAIL("edge list line " << lineno << ": expected 'src dst'");
    double w = 1.0;
    if (options.weighted && !(ls >> w))
      DV_FAIL("edge list line " << lineno << ": expected weight");
    raw.push_back(RawEdge{s, d, w});
  }

  // Two passes so ids are assigned in first-appearance order, which keeps
  // round-trips deterministic.
  for (const auto& e : raw) {
    densify(e.src);
    densify(e.dst);
  }
  GraphBuilder b(dense.size(), options.directed);
  b.deduplicate(options.deduplicate).keep_weights(options.weighted);
  for (const auto& e : raw)
    b.add_edge(densify(e.src), densify(e.dst), e.weight);
  return b.build();
}

CsrGraph read_edge_list_file(const std::string& path,
                             const EdgeListOptions& options) {
  std::ifstream in(path);
  DV_CHECK_MSG(in.good(), "cannot open edge list: " << path);
  return read_edge_list(in, options);
}

void write_edge_list(const CsrGraph& g, std::ostream& out) {
  out << "# deltav edge list: " << g.summary() << "\n";
  for (std::size_t u = 0; u < g.num_vertices(); ++u) {
    const auto vid = static_cast<VertexId>(u);
    const auto nbrs = g.out_neighbors(vid);
    const auto wts = g.out_weights(vid);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!g.directed() && nbrs[i] < vid) continue;  // emit each edge once
      out << u << ' ' << nbrs[i];
      if (g.weighted()) out << ' ' << wts[i];
      out << '\n';
    }
  }
}

}  // namespace deltav::graph
