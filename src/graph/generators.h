// Synthetic graph generators.
//
// The paper evaluates on Wikipedia, LiveJournal and Facebook crawls we do
// not have; these generators produce scaled stand-ins with the same shape
// (see datasets.h). R-MAT is the workhorse — it yields the heavy-tailed
// degree distributions that make incrementalization profitable, because hub
// convergence is what turns messages "meaningless". The simple topologies
// (path, star, grid, ...) exist for tests where exact expected results are
// computable by hand.
//
// All generators are deterministic functions of their seed.
#pragma once

#include <cstdint>

#include "graph/csr_graph.h"

namespace deltav::graph {

struct RmatOptions {
  /// Kronecker partition probabilities; must sum to ~1. Defaults are the
  /// classic Graph500 skew (a=0.57) producing power-law-ish degrees.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  bool directed = true;
  bool weighted = false;
  /// Weights drawn uniformly from [min_weight, max_weight).
  double min_weight = 1.0;
  double max_weight = 10.0;
  bool deduplicate = true;
};

/// R-MAT graph over `num_vertices` (rounded up to a power of two internally,
/// then truncated) with `num_edges` sampled edges.
CsrGraph rmat(std::size_t num_vertices, std::size_t num_edges,
              std::uint64_t seed, const RmatOptions& options = {});

struct WebCrawlOptions {
  /// Fraction of vertices placed in the pendant periphery (directed chains
  /// feeding into the core) instead of the R-MAT core. Web crawls have
  /// large low-degree peripheries whose HITS-style scores freeze after a
  /// round or two — the structural source of the paper's "meaningless"
  /// HITS messages.
  double periphery_fraction = 0.3;
  int chain_length = 3;
  RmatOptions core;
};

/// Web-crawl-like directed graph: an R-MAT core plus a pendant chain
/// periphery. Total vertex/edge budget is split between the two parts.
CsrGraph web_crawl(std::size_t num_vertices, std::size_t num_edges,
                   std::uint64_t seed, const WebCrawlOptions& options = {});

/// Erdős–Rényi G(n, m): m edges sampled uniformly.
CsrGraph erdos_renyi(std::size_t num_vertices, std::size_t num_edges,
                     std::uint64_t seed, bool directed = true,
                     bool weighted = false);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices; undirected.
CsrGraph barabasi_albert(std::size_t num_vertices, std::size_t attach,
                         std::uint64_t seed);

/// Simple deterministic topologies for tests.
CsrGraph path(std::size_t num_vertices, bool directed = false);
CsrGraph cycle(std::size_t num_vertices, bool directed = false);
CsrGraph star(std::size_t num_leaves, bool directed = false);
CsrGraph grid(std::size_t rows, std::size_t cols);
CsrGraph complete(std::size_t num_vertices, bool directed = false);

}  // namespace deltav::graph
