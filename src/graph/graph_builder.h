// Mutable edge accumulator that finalizes into a CsrGraph.
//
// Generators and the edge-list reader add edges in arbitrary order; build()
// counts, prefix-sums, and scatters into CSR form (both directions for
// directed graphs). Optional de-duplication removes parallel edges, and
// self-loops can be dropped, both of which the synthetic generators rely on.
//
// Duplicate-edge and self-loop policy (shared with the streaming overlay,
// graph/dynamic_graph.h):
//  * with deduplicate(), parallel edges collapse to one and the LAST added
//    weight wins — re-adding an edge is a weight update, exactly like a
//    streaming re-insert (for undirected graphs (u,v) and (v,u) name the
//    same logical edge);
//  * with drop_self_loops() (the default), (v,v) edges are discarded, again
//    matching the overlay's mutation planner.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace deltav::graph {

class GraphBuilder {
 public:
  /// `directed` fixes the interpretation of add_edge: for undirected graphs
  /// each added edge contributes an arc in both directions.
  GraphBuilder(std::size_t num_vertices, bool directed);

  std::size_t num_vertices() const { return num_vertices_; }
  std::size_t num_added_edges() const { return edges_.size(); }

  void add_edge(VertexId src, VertexId dst, double weight = 1.0);

  GraphBuilder& drop_self_loops(bool value = true) {
    drop_self_loops_ = value;
    return *this;
  }

  GraphBuilder& deduplicate(bool value = true) {
    deduplicate_ = value;
    return *this;
  }

  /// If true, the produced graph stores per-edge weights; otherwise weights
  /// passed to add_edge are discarded and the graph reports 1.0 everywhere.
  GraphBuilder& keep_weights(bool value = true) {
    keep_weights_ = value;
    return *this;
  }

  /// Consumes the builder's edges and produces the immutable graph.
  CsrGraph build();

 private:
  struct Edge {
    VertexId src;
    VertexId dst;
    double weight;
  };

  std::size_t num_vertices_;
  bool directed_;
  bool drop_self_loops_ = true;
  bool deduplicate_ = false;
  bool keep_weights_ = false;
  std::vector<Edge> edges_;
};

}  // namespace deltav::graph
