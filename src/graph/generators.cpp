#include "graph/generators.h"

#include <bit>
#include <cmath>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace deltav::graph {

namespace {

/// Samples one R-MAT edge in a 2^levels × 2^levels adjacency matrix.
std::pair<std::uint64_t, std::uint64_t> rmat_edge(Rng& rng, int levels,
                                                  const RmatOptions& o) {
  std::uint64_t row = 0, col = 0;
  for (int l = 0; l < levels; ++l) {
    const double r = rng.next_double();
    row <<= 1;
    col <<= 1;
    if (r < o.a) {
      // top-left: nothing to add
    } else if (r < o.a + o.b) {
      col |= 1;
    } else if (r < o.a + o.b + o.c) {
      row |= 1;
    } else {
      row |= 1;
      col |= 1;
    }
  }
  return {row, col};
}

}  // namespace

CsrGraph rmat(std::size_t num_vertices, std::size_t num_edges,
              std::uint64_t seed, const RmatOptions& options) {
  DV_CHECK(num_vertices >= 2);
  DV_CHECK_MSG(options.a + options.b + options.c <= 1.0 + 1e-9,
               "R-MAT probabilities exceed 1");
  const int levels = std::bit_width(num_vertices - 1);
  const std::uint64_t side = 1ULL << levels;
  Rng rng(seed);
  GraphBuilder b(num_vertices, options.directed);
  b.deduplicate(options.deduplicate).keep_weights(options.weighted);
  std::size_t produced = 0;
  // Rejection-sample edges that land outside [0, num_vertices) when the
  // requested size is not a power of two; cap attempts to stay total.
  std::size_t attempts = 0;
  const std::size_t max_attempts = num_edges * 8 + 1024;
  while (produced < num_edges && attempts < max_attempts) {
    ++attempts;
    auto [u, v] = rmat_edge(rng, levels, options);
    if (side != num_vertices &&
        (u >= num_vertices || v >= num_vertices))
      continue;
    if (u == v) continue;
    const double w = options.weighted
                         ? rng.next_double(options.min_weight,
                                           options.max_weight)
                         : 1.0;
    b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v), w);
    ++produced;
  }
  return b.build();
}

CsrGraph web_crawl(std::size_t num_vertices, std::size_t num_edges,
                   std::uint64_t seed, const WebCrawlOptions& options) {
  DV_CHECK(options.periphery_fraction >= 0 &&
           options.periphery_fraction < 1);
  DV_CHECK(options.chain_length >= 1);
  const auto periphery = static_cast<std::size_t>(
      static_cast<double>(num_vertices) * options.periphery_fraction);
  const std::size_t core = num_vertices - periphery;
  DV_CHECK_MSG(core >= 2, "web_crawl core too small");
  DV_CHECK_MSG(num_edges > periphery,
               "edge budget must exceed the periphery arc count");

  Rng rng(seed ^ 0xCAFEF00DULL);
  GraphBuilder b(num_vertices, /*directed=*/true);
  b.deduplicate(options.core.deduplicate)
      .keep_weights(options.core.weighted);

  // Core: R-MAT over vertex ids [0, core).
  RmatOptions core_opts = options.core;
  core_opts.directed = true;
  const CsrGraph core_graph =
      rmat(core, num_edges - periphery, seed, core_opts);
  for (std::size_t u = 0; u < core; ++u) {
    const auto vid = static_cast<VertexId>(u);
    const auto nbrs = core_graph.out_neighbors(vid);
    const auto wts = core_graph.out_weights(vid);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      b.add_edge(vid, nbrs[i], wts.empty() ? 1.0 : wts[i]);
  }

  // Periphery: ids [core, n) arranged as directed chains whose tail feeds
  // a random core vertex — pendant "stub pages".
  const auto chain_len = static_cast<std::size_t>(options.chain_length);
  for (std::size_t i = core; i < num_vertices; i += chain_len) {
    const std::size_t len = std::min(chain_len, num_vertices - i);
    for (std::size_t k = 0; k + 1 < len; ++k)
      b.add_edge(static_cast<VertexId>(i + k),
                 static_cast<VertexId>(i + k + 1));
    const double w = options.core.weighted
                         ? rng.next_double(options.core.min_weight,
                                           options.core.max_weight)
                         : 1.0;
    b.add_edge(static_cast<VertexId>(i + len - 1),
               static_cast<VertexId>(rng.next_below(core)), w);
  }
  return b.build();
}

CsrGraph erdos_renyi(std::size_t num_vertices, std::size_t num_edges,
                     std::uint64_t seed, bool directed, bool weighted) {
  DV_CHECK(num_vertices >= 2);
  Rng rng(seed);
  GraphBuilder b(num_vertices, directed);
  b.deduplicate(true).keep_weights(weighted);
  for (std::size_t i = 0; i < num_edges; ++i) {
    VertexId u = static_cast<VertexId>(rng.next_below(num_vertices));
    VertexId v = static_cast<VertexId>(rng.next_below(num_vertices));
    if (u == v) {
      v = static_cast<VertexId>((v + 1) % num_vertices);
    }
    const double w = weighted ? rng.next_double(1.0, 10.0) : 1.0;
    b.add_edge(u, v, w);
  }
  return b.build();
}

CsrGraph barabasi_albert(std::size_t num_vertices, std::size_t attach,
                         std::uint64_t seed) {
  DV_CHECK(attach >= 1);
  DV_CHECK(num_vertices > attach);
  Rng rng(seed);
  GraphBuilder b(num_vertices, /*directed=*/false);
  b.deduplicate(true);
  // Endpoint list doubles as the preferential-attachment distribution:
  // sampling a uniform element of `endpoints` is degree-proportional.
  std::vector<VertexId> endpoints;
  endpoints.reserve(num_vertices * attach * 2);
  // Seed clique over the first attach+1 vertices.
  for (std::size_t u = 0; u <= attach; ++u) {
    for (std::size_t v = u + 1; v <= attach; ++v) {
      b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      endpoints.push_back(static_cast<VertexId>(u));
      endpoints.push_back(static_cast<VertexId>(v));
    }
  }
  for (std::size_t u = attach + 1; u < num_vertices; ++u) {
    for (std::size_t k = 0; k < attach; ++k) {
      const VertexId v = endpoints[rng.next_below(endpoints.size())];
      b.add_edge(static_cast<VertexId>(u), v);
      endpoints.push_back(static_cast<VertexId>(u));
      endpoints.push_back(v);
    }
  }
  return b.build();
}

CsrGraph path(std::size_t num_vertices, bool directed) {
  DV_CHECK(num_vertices >= 1);
  GraphBuilder b(num_vertices, directed);
  for (std::size_t v = 0; v + 1 < num_vertices; ++v)
    b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(v + 1));
  return b.build();
}

CsrGraph cycle(std::size_t num_vertices, bool directed) {
  DV_CHECK(num_vertices >= 3);
  GraphBuilder b(num_vertices, directed);
  for (std::size_t v = 0; v < num_vertices; ++v)
    b.add_edge(static_cast<VertexId>(v),
               static_cast<VertexId>((v + 1) % num_vertices));
  return b.build();
}

CsrGraph star(std::size_t num_leaves, bool directed) {
  DV_CHECK(num_leaves >= 1);
  GraphBuilder b(num_leaves + 1, directed);
  for (std::size_t v = 1; v <= num_leaves; ++v)
    b.add_edge(0, static_cast<VertexId>(v));
  return b.build();
}

CsrGraph grid(std::size_t rows, std::size_t cols) {
  DV_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols, /*directed=*/false);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

CsrGraph complete(std::size_t num_vertices, bool directed) {
  DV_CHECK(num_vertices >= 2);
  GraphBuilder b(num_vertices, directed);
  for (std::size_t u = 0; u < num_vertices; ++u) {
    for (std::size_t v = 0; v < num_vertices; ++v) {
      if (u == v) continue;
      if (!directed && u > v) continue;
      b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  }
  return b.build();
}

}  // namespace deltav::graph
