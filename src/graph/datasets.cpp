#include "graph/datasets.h"

#include <algorithm>

#include "graph/generators.h"

namespace deltav::graph {

const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> specs = {
      {"wikipedia-s", "Wikipedia (18.27M/136.54M)", /*directed=*/true,
       262144, 1966080, /*weighted=*/false, 1, /*periphery=*/0.3},
      {"livejournal-dg-s", "LiveJournal-DG (4.85M/68.48M)", /*directed=*/true,
       131072, 1835008, /*weighted=*/false, 2, /*periphery=*/0.0},
      {"facebook-s", "Facebook (59.22M/185.04M)", /*directed=*/false,
       524288, 1638400, /*weighted=*/false, 3, /*periphery=*/0.0},
      {"livejournal-ug-s", "LiveJournal-UG (3.99M/34.68M)",
       /*directed=*/false, 131072, 1146880, /*weighted=*/false, 4,
       /*periphery=*/0.0},
  };
  return specs;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const auto& s : paper_datasets())
    if (s.name == name) return s;
  DV_FAIL("unknown dataset '" << name << "'");
}

CsrGraph make_dataset(const DatasetSpec& spec, double scale, bool weighted) {
  DV_CHECK_MSG(scale > 0, "scale must be positive");
  const auto v = std::max<std::size_t>(
      16, static_cast<std::size_t>(spec.base_vertices * scale));
  const auto e = std::max<std::size_t>(
      32, static_cast<std::size_t>(spec.base_edges * scale));
  RmatOptions o;
  o.directed = spec.directed;
  o.weighted = weighted || spec.weighted;
  if (spec.periphery > 0.0) {
    DV_CHECK(spec.directed);
    WebCrawlOptions wo;
    wo.periphery_fraction = spec.periphery;
    wo.core = o;
    return web_crawl(v, e, spec.seed, wo);
  }
  return rmat(v, e, spec.seed, o);
}

CsrGraph make_dataset(const std::string& name, double scale, bool weighted) {
  return make_dataset(dataset_spec(name), scale, weighted);
}

}  // namespace deltav::graph
