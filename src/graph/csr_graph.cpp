#include "graph/csr_graph.h"

#include <algorithm>
#include <sstream>

namespace deltav::graph {

std::size_t CsrGraph::max_out_degree() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_vertices(); ++v)
    best = std::max(best, out_degree(static_cast<VertexId>(v)));
  return best;
}

std::string CsrGraph::summary() const {
  std::ostringstream os;
  os << (directed_ ? "directed" : "undirected") << " |V|=" << num_vertices()
     << " |E|=" << num_logical_edges()
     << (weighted() ? " weighted" : " unweighted")
     << " max-out-deg=" << max_out_degree();
  return os.str();
}

}  // namespace deltav::graph
