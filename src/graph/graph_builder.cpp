#include "graph/graph_builder.h"

#include <algorithm>
#include <numeric>

namespace deltav::graph {

GraphBuilder::GraphBuilder(std::size_t num_vertices, bool directed)
    : num_vertices_(num_vertices), directed_(directed) {
  DV_CHECK_MSG(num_vertices < (1ULL << 32), "vertex ids are 32-bit");
}

void GraphBuilder::add_edge(VertexId src, VertexId dst, double weight) {
  DV_CHECK_MSG(src < num_vertices_ && dst < num_vertices_,
               "edge (" << src << "," << dst << ") out of range for |V|="
                        << num_vertices_);
  edges_.push_back(Edge{src, dst, weight});
}

CsrGraph GraphBuilder::build() {
  if (drop_self_loops_) {
    std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
  }
  if (deduplicate_) {
    // Undirected graphs deduplicate on the unordered pair so (u,v) and
    // (v,u) collapse to one logical edge. Last-write-wins on weight: the
    // stable sort keeps insertion order within a key, and the backward
    // unique pass keeps each run's final (most recently added) edge — the
    // policy the streaming overlay applies to re-inserted edges.
    auto key = [this](const Edge& e) {
      VertexId a = e.src, b = e.dst;
      if (!directed_ && a > b) std::swap(a, b);
      return (static_cast<std::uint64_t>(a) << 32) | b;
    };
    std::stable_sort(
        edges_.begin(), edges_.end(),
        [&](const Edge& x, const Edge& y) { return key(x) < key(y); });
    std::size_t kept = 0;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (i + 1 < edges_.size() && key(edges_[i + 1]) == key(edges_[i]))
        continue;  // a later duplicate overrides this one
      edges_[kept++] = edges_[i];
    }
    edges_.resize(kept);
  }

  CsrGraph g;
  g.directed_ = directed_;
  const std::size_t n = num_vertices_;
  const std::size_t arcs = directed_ ? edges_.size() : edges_.size() * 2;

  // Counting sort into CSR: count per-source degrees, prefix sum, scatter.
  g.out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++g.out_offsets_[e.src + 1];
    if (!directed_) ++g.out_offsets_[e.dst + 1];
  }
  std::partial_sum(g.out_offsets_.begin(), g.out_offsets_.end(),
                   g.out_offsets_.begin());
  g.out_targets_.resize(arcs);
  if (keep_weights_) g.out_weights_.resize(arcs);
  {
    std::vector<EdgeIndex> cursor(g.out_offsets_.begin(),
                                  g.out_offsets_.end() - 1);
    auto place = [&](VertexId s, VertexId d, double w) {
      EdgeIndex i = cursor[s]++;
      g.out_targets_[i] = d;
      if (keep_weights_) g.out_weights_[i] = w;
    };
    for (const Edge& e : edges_) {
      place(e.src, e.dst, e.weight);
      if (!directed_) place(e.dst, e.src, e.weight);
    }
  }

  if (directed_) {
    g.in_offsets_.assign(n + 1, 0);
    for (const Edge& e : edges_) ++g.in_offsets_[e.dst + 1];
    std::partial_sum(g.in_offsets_.begin(), g.in_offsets_.end(),
                     g.in_offsets_.begin());
    g.in_targets_.resize(edges_.size());
    if (keep_weights_) g.in_weights_.resize(edges_.size());
    std::vector<EdgeIndex> cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      EdgeIndex i = cursor[e.dst]++;
      g.in_targets_[i] = e.src;
      if (keep_weights_) g.in_weights_[i] = e.weight;
    }
  }

  // Sorted adjacency makes neighbor iteration cache-friendlier and gives
  // deterministic message order regardless of how edges were added.
  for (std::size_t v = 0; v < n; ++v) {
    auto sort_range = [&](std::vector<EdgeIndex>& offs,
                          std::vector<VertexId>& tgts,
                          std::vector<double>& wts) {
      const EdgeIndex lo = offs[v], hi = offs[v + 1];
      if (wts.empty()) {
        std::sort(tgts.begin() + lo, tgts.begin() + hi);
      } else {
        std::vector<std::pair<VertexId, double>> tmp;
        tmp.reserve(hi - lo);
        for (EdgeIndex i = lo; i < hi; ++i) tmp.emplace_back(tgts[i], wts[i]);
        std::sort(tmp.begin(), tmp.end());
        for (EdgeIndex i = lo; i < hi; ++i) {
          tgts[i] = tmp[i - lo].first;
          wts[i] = tmp[i - lo].second;
        }
      }
    };
    sort_range(g.out_offsets_, g.out_targets_, g.out_weights_);
    if (directed_) sort_range(g.in_offsets_, g.in_targets_, g.in_weights_);
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

}  // namespace deltav::graph
