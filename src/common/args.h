// Minimal command-line flag parsing shared by all bench and example
// binaries. Flags take the form --name=value or --name value; bare --name
// sets a boolean. Unknown flags are an error so typos do not silently run a
// different experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace deltav {

class Args {
 public:
  /// Parses argv. Throws CheckError on malformed input; call help() in the
  /// binary's catch block for usage text.
  Args(int argc, const char* const* argv);

  /// Declares a flag with a default; returns its value. Declaration doubles
  /// as documentation: help() lists everything declared.
  std::string get_string(const std::string& name, std::string def,
                         const std::string& help = "");
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help = "");
  double get_double(const std::string& name, double def,
                    const std::string& help = "");
  bool get_bool(const std::string& name, bool def,
                const std::string& help = "");

  /// True if --help was passed.
  bool help_requested() const { return help_requested_; }

  /// Usage text from the declarations seen so far.
  std::string help() const;

  /// Throws if any provided flag was never declared.
  void check_unused() const;

  const std::string& program_name() const { return program_; }

 private:
  std::optional<std::string> lookup(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> help_lines_;
  bool help_requested_ = false;
};

}  // namespace deltav
