// Wall-clock timing helpers used by the engine's per-superstep statistics
// and by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace deltav {

/// Monotonic stopwatch. Construction starts it; elapsed_* read without
/// stopping, restart() resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t elapsed_micros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deltav
