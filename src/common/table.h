// Plain-text table rendering for the benchmark harnesses. Every bench
// binary prints its results as one of these tables so EXPERIMENTS.md can be
// filled in by copy-paste, and so runs are diffable across machines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace deltav {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision so repeated runs line up.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  Table& row();
  Table& cell(std::string text);
  Table& cell(long long v);
  Table& cell(unsigned long long v);
  Table& cell(double v, int precision = 3);

  /// Convenience: formats `v` as a ratio like "4.40x".
  Table& ratio(double v);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with a header rule and right-aligned numeric-looking cells.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deltav
