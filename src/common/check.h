// Lightweight runtime-check macros used across the library.
//
// DV_CHECK is always on (including release builds): the engine and the
// compiler use it to guard API contracts whose violation would otherwise
// corrupt a distributed computation silently. DV_DCHECK compiles away in
// NDEBUG builds and is meant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace deltav {

/// Error thrown by DV_CHECK failures. Deriving from std::logic_error makes
/// contract violations testable with EXPECT_THROW without catching unrelated
/// runtime errors.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace deltav

#define DV_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr))                                                           \
      ::deltav::detail::check_failed(__FILE__, __LINE__, #expr, "");       \
  } while (0)

#define DV_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream dv_check_os;                                      \
      dv_check_os << msg;                                                  \
      ::deltav::detail::check_failed(__FILE__, __LINE__, #expr,            \
                                     dv_check_os.str());                   \
    }                                                                      \
  } while (0)

#define DV_FAIL(msg)                                                       \
  do {                                                                     \
    std::ostringstream dv_check_os;                                        \
    dv_check_os << msg;                                                    \
    ::deltav::detail::check_failed(__FILE__, __LINE__, "DV_FAIL",          \
                                   dv_check_os.str());                     \
  } while (0)

#ifdef NDEBUG
#define DV_DCHECK(expr) ((void)0)
#else
#define DV_DCHECK(expr) DV_CHECK(expr)
#endif
