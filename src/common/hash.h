// Hashing utilities: a strong 64-bit integer mixer (used for vertex→worker
// partitioning and the combiner's open-addressing map) and order-insensitive
// fingerprinting used by tests to compare multisets of messages.
#pragma once

#include <cstdint>
#include <string_view>

namespace deltav {

/// Stafford's "Mix13" variant of the MurmurHash3 finalizer — a bijective
/// 64-bit mixer with full avalanche. Suitable as a hash for integer keys.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Boost-style hash combining for composite keys.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// FNV-1a for strings (token interning, diagnostics de-duplication).
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace deltav
