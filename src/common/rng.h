// Deterministic, splittable pseudo-random number generation.
//
// All randomness in the library (graph generators, test fixtures, workload
// sweeps) flows through Rng so experiments are reproducible from a single
// seed. The core generator is xoshiro256**, seeded through SplitMix64 as its
// authors recommend.
#pragma once

#include <cstdint>
#include <limits>

// next_below(0) is UB-by-contract; keep the hot path branch-free in release.
#ifndef DV_RNG_ASSUME
#define DV_RNG_ASSUME(x) ((void)0)
#endif

namespace deltav {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 256-bit state. Satisfies the
/// UniformRandomBitGenerator concept so it composes with <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection-free
  /// approximation (bias < 2^-64 * bound, negligible for our uses).
  std::uint64_t next_below(std::uint64_t bound) {
    DV_RNG_ASSUME(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Split off an independent stream; deterministic function of this
  /// generator's state. Used to give each worker/test its own stream.
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace deltav
