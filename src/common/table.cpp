#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace deltav {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DV_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  DV_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  DV_CHECK_MSG(rows_.back().size() < headers_.size(),
               "row has more cells than headers");
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(long long v) { return cell(std::to_string(v)); }

Table& Table::cell(unsigned long long v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return cell(std::string(buf));
}

Table& Table::ratio(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", v);
  return cell(std::string(buf));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'x' || c == ','))
      return false;
  }
  return true;
}
}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells, bool align_num) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      const std::size_t pad = widths[c] - text.size();
      const bool right = align_num && looks_numeric(text);
      os << ' ';
      if (right) os << std::string(pad, ' ');
      os << text;
      if (!right) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  emit_row(headers_, false);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& r : rows_) emit_row(r, true);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace deltav
