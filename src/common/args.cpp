#include "common/args.h"

#include <sstream>

#include "common/check.h"

namespace deltav {

Args::Args(int argc, const char* const* argv) {
  DV_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    DV_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected argument: " << arg);
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
  for (const auto& [k, v] : values_) consumed_[k] = false;
}

std::optional<std::string> Args::lookup(const std::string& name) {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::string Args::get_string(const std::string& name, std::string def,
                             const std::string& help) {
  help_lines_.push_back("  --" + name + " (default: " + def + ")  " + help);
  if (auto v = lookup(name)) return *v;
  return def;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def,
                           const std::string& help) {
  help_lines_.push_back("  --" + name + " (default: " + std::to_string(def) +
                        ")  " + help);
  if (auto v = lookup(name)) {
    std::size_t pos = 0;
    std::int64_t parsed = std::stoll(*v, &pos);
    DV_CHECK_MSG(pos == v->size(), "--" << name << " expects an integer");
    return parsed;
  }
  return def;
}

double Args::get_double(const std::string& name, double def,
                        const std::string& help) {
  help_lines_.push_back("  --" + name + " (default: " + std::to_string(def) +
                        ")  " + help);
  if (auto v = lookup(name)) {
    std::size_t pos = 0;
    double parsed = std::stod(*v, &pos);
    DV_CHECK_MSG(pos == v->size(), "--" << name << " expects a number");
    return parsed;
  }
  return def;
}

bool Args::get_bool(const std::string& name, bool def,
                    const std::string& help) {
  help_lines_.push_back("  --" + name + " (default: " +
                        (def ? "true" : "false") + ")  " + help);
  if (auto v = lookup(name)) {
    if (*v == "true" || *v == "1" || *v == "yes") return true;
    if (*v == "false" || *v == "0" || *v == "no") return false;
    DV_FAIL("--" << name << " expects a boolean, got '" << *v << "'");
  }
  return def;
}

std::string Args::help() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& l : help_lines_) os << l << '\n';
  return os.str();
}

void Args::check_unused() const {
  for (const auto& [name, used] : consumed_)
    DV_CHECK_MSG(used, "unknown flag --" << name);
}

}  // namespace deltav
