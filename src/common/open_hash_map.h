// A small open-addressing hash map from uint64 keys to trivially-movable
// values, specialized for the engine's sender-side message combiner.
//
// Compared to std::unordered_map this avoids per-node allocation and keeps
// probe chains in cache lines — the combiner looks up every outgoing message
// once, so this map sits directly on the hot path of every superstep.
//
// Keys are arbitrary uint64 except the reserved kEmptyKey sentinel (all
// ones), which callers never produce because vertex ids are < 2^48.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace deltav {

template <typename V>
class OpenHashMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ULL;

  explicit OpenHashMap(std::size_t initial_capacity = 16) {
    rehash(round_up(initial_capacity));
    tracking_ = true;  // the table rehash() saw was empty, nothing is stale
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes all entries; keeps the allocated table. When few slots were
  /// touched since the last clear (the combiner clears once per worker per
  /// destination per superstep, often after a handful of inserts into a
  /// large retained table), only those slots are re-zeroed instead of
  /// walking the whole table.
  void clear() {
    if (size_ != 0) {
      if (tracking_) {
        for (std::size_t i : touched_) slots_[i].key = kEmptyKey;
      } else {
        for (auto& s : slots_) s.key = kEmptyKey;
      }
      size_ = 0;
    }
    touched_.clear();
    tracking_ = true;
  }

  /// Returns the value slot for `key`, default-constructing it on first use.
  V& operator[](std::uint64_t key) {
    DV_DCHECK(key != kEmptyKey);
    if ((size_ + 1) * 4 >= capacity() * 3) rehash(capacity() * 2);
    std::size_t i = probe_start(key);
    for (;;) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == kEmptyKey) {
        s.key = key;
        s.value = V{};
        ++size_;
        // Past 1/8 occupancy a full-table walk is as cheap as replaying
        // the list, so stop paying for the bookkeeping.
        if (tracking_) {
          if (touched_.size() < capacity() / 8) {
            touched_.push_back(i);
          } else {
            tracking_ = false;
            touched_.clear();
          }
        }
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  const V* find(std::uint64_t key) const {
    DV_DCHECK(key != kEmptyKey);
    std::size_t i = probe_start(key);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  V* find(std::uint64_t key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  /// Visits every occupied (key, value) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_)
      if (s.key != kEmptyKey) fn(s.key, s.value);
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 16;
    while (c < n) c <<= 1;
    return c;
  }

  std::size_t probe_start(std::uint64_t key) const {
    return static_cast<std::size_t>(mix64(key)) & mask_;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    size_ = 0;
    // Entries relocate, so the touched list is stale; fall back to the
    // full-table clear until the next clear() restarts tracking.
    tracking_ = false;
    touched_.clear();
    for (auto& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = probe_start(s.key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = std::move(s);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::size_t> touched_;  // slots occupied since last clear
  bool tracking_ = true;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace deltav
