#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace deltav::net {
namespace {

[[noreturn]] void sys_fail(const char* what) {
  DV_FAIL(what << ": " << std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  DV_CHECK_MSG(inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) == 1,
               "not an IPv4 address: '" << host << "'");
  return addr;
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& o) noexcept
    : fd_(o.fd_), buf_(std::move(o.buf_)) {
  o.fd_ = -1;
}

TcpStream& TcpStream::operator=(TcpStream&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    buf_ = std::move(o.buf_);
    o.fd_ = -1;
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  const sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("connect");
  }
  const int one = 1;  // request/response protocol: don't Nagle-delay lines
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

bool TcpStream::read_line(std::string& line) {
  for (;;) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    DV_CHECK_MSG(fd_ >= 0, "read_line on a closed stream");
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) sys_fail("recv");
    if (n == 0) {
      // Orderly EOF. A partial unterminated line still counts as a line
      // (printf-driven clients may omit the final newline).
      if (buf_.empty()) return false;
      line = std::move(buf_);
      buf_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void TcpStream::write_line(const std::string& line) {
  DV_CHECK_MSG(fd_ >= 0, "write_line on a closed stream");
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n;
    do {
      n = ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) sys_fail("send");
    sent += static_cast<std::size_t>(n);
  }
}

void TcpStream::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port, const std::string& bind_addr) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(bind_addr, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    sys_fail("bind");
  }
  if (::listen(fd_, 64) != 0) sys_fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    sys_fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

TcpStream TcpListener::accept() {
  for (;;) {
    const int lfd = fd_;
    if (lfd < 0) return TcpStream();  // closed: shutdown path
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd >= 0) {
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream(cfd);
    }
    if (errno == EINTR) continue;
    // close() from another thread makes the blocked accept fail with
    // EBADF/EINVAL/ECONNABORTED depending on the kernel's timing — all of
    // them mean "stop accepting" once fd_ is gone.
    if (fd_ < 0) return TcpStream();
    if (errno == ECONNABORTED) continue;
    sys_fail("accept");
  }
}

void TcpListener::close() {
  const int fd = fd_;
  fd_ = -1;
  if (fd >= 0) {
    // shutdown() wakes a concurrently blocked accept() before the close.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace deltav::net
