// Simulated cluster network model.
//
// The paper's evaluation ran on 8 EC2 m4.xlarge nodes (2 workers each)
// joined by 750 Mbps ethernet; we run on one shared-memory machine. This
// model is the documented substitution (DESIGN.md §2): the engine reports
// exact message/byte traffic per superstep, and ClusterModel converts the
// cross-machine portion of that traffic into a simulated communication time
// using a bandwidth + latency cost model. Workers are mapped onto machines
// round-robin-by-block exactly as a real deployment would pin them.
//
// The simulated time for one superstep is
//     max_over_machines(max(egress_bytes, ingress_bytes)) / bandwidth
//   + barrier_latency
// i.e. the bottleneck NIC serializes its traffic, and every superstep pays
// one synchronization round-trip.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace deltav::net {

struct ClusterConfig {
  int machines = 8;
  int workers_per_machine = 2;
  /// Link bandwidth per machine NIC, bytes/second. 750 Mbps ≈ 93.75 MB/s.
  double bandwidth_bytes_per_sec = 750e6 / 8.0;
  /// Fixed cost of the barrier + message flush per superstep, seconds.
  double barrier_latency_sec = 500e-6;

  int total_workers() const { return machines * workers_per_machine; }
};

class ClusterModel {
 public:
  explicit ClusterModel(const ClusterConfig& config = {}) : config_(config) {
    DV_CHECK(config.machines >= 1);
    DV_CHECK(config.workers_per_machine >= 1);
    DV_CHECK(config.bandwidth_bytes_per_sec > 0);
  }

  const ClusterConfig& config() const { return config_; }
  int total_workers() const { return config_.total_workers(); }

  int machine_of_worker(int worker) const {
    DV_DCHECK(worker >= 0 && worker < total_workers());
    return worker / config_.workers_per_machine;
  }

  /// True if a message between these workers crosses the network (messages
  /// within a machine are local in Pregel+ and cost no NIC bandwidth).
  bool crosses_network(int src_worker, int dst_worker) const {
    return machine_of_worker(src_worker) != machine_of_worker(dst_worker);
  }

  /// Simulated wall time for one superstep's communication given per-machine
  /// egress/ingress byte counts (vectors of length machines).
  double superstep_seconds(const std::vector<std::uint64_t>& egress,
                           const std::vector<std::uint64_t>& ingress) const;

  /// Convenience: simulated time if `total_cross_bytes` were spread
  /// perfectly evenly over machines (used for quick estimates in docs).
  double balanced_superstep_seconds(std::uint64_t total_cross_bytes) const;

 private:
  ClusterConfig config_;
};

}  // namespace deltav::net
