// Minimal blocking TCP transport for the dv_serve daemon.
//
// Everything else under net/ is the *simulated* cluster model (the
// documented stand-in for the paper's EC2 deployment); this is the one
// place real sockets appear, because serving is an actually-networked
// concern: dv_serve clients are external processes. Scope is deliberately
// small — IPv4 loopback-or-given-interface, blocking I/O, line framing —
// the daemon's concurrency lives in its threads, not in the transport.
//
// All failures throw CheckError with the errno text; EOF on read_line is
// a return value, not an error (clients hanging up is normal).
#pragma once

#include <cstdint>
#include <string>

namespace deltav::net {

/// One connected socket with buffered line reading. Move-only (owns the
/// fd). Writes never raise SIGPIPE: a peer hang-up surfaces as a thrown
/// CheckError on the writing thread instead of killing the process.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& o) noexcept;
  TcpStream& operator=(TcpStream&& o) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port (numeric IPv4 dotted quad or "localhost").
  static TcpStream connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }

  /// Reads up to the next '\n' (stripped, along with a preceding '\r').
  /// Returns false on orderly EOF with no buffered partial line.
  bool read_line(std::string& line);

  /// Writes `line` plus '\n', fully.
  void write_line(const std::string& line);

  /// Half-closes both directions without releasing the fd: a thread
  /// blocked in read_line() on this stream wakes with EOF. This is the
  /// cross-thread wake primitive (close() from another thread would not
  /// reliably interrupt a blocked recv, and would race the fd number).
  void shutdown();

  void close();

 private:
  int fd_ = -1;
  std::string buf_;  // bytes received but not yet returned
};

/// A listening IPv4 socket. Pass port 0 for an ephemeral port and read
/// the actual one back via port() — tests and the CI smoke job do this to
/// avoid collisions.
class TcpListener {
 public:
  /// Binds and listens on `bind_addr`:`port` (SO_REUSEADDR set).
  explicit TcpListener(std::uint16_t port,
                       const std::string& bind_addr = "127.0.0.1");
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection. Returns an invalid stream when the
  /// listener was close()d from another thread (the shutdown path).
  TcpStream accept();

  /// Unblocks accept(); safe to call from another thread.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace deltav::net
