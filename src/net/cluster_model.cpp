#include "net/cluster_model.h"

#include <algorithm>

namespace deltav::net {

double ClusterModel::superstep_seconds(
    const std::vector<std::uint64_t>& egress,
    const std::vector<std::uint64_t>& ingress) const {
  DV_CHECK(egress.size() == static_cast<std::size_t>(config_.machines));
  DV_CHECK(ingress.size() == static_cast<std::size_t>(config_.machines));
  std::uint64_t bottleneck = 0;
  for (int m = 0; m < config_.machines; ++m)
    bottleneck = std::max({bottleneck, egress[m], ingress[m]});
  return static_cast<double>(bottleneck) / config_.bandwidth_bytes_per_sec +
         config_.barrier_latency_sec;
}

double ClusterModel::balanced_superstep_seconds(
    std::uint64_t total_cross_bytes) const {
  const double per_machine =
      static_cast<double>(total_cross_bytes) / config_.machines;
  return per_machine / config_.bandwidth_bytes_per_sec +
         config_.barrier_latency_sec;
}

}  // namespace deltav::net
