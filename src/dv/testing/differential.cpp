#include "dv/testing/differential.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <vector>

#include "dv/codegen/cpp_backend.h"
#include "dv/codegen/native_module.h"
#include "dv/compiler.h"
#include "dv/passes/verifier.h"
#include "dv/runtime/delta.h"
#include "dv/runtime/runner.h"

namespace deltav::dv::testing {

namespace {

bool value_close(const Value& a, const Value& b, double tol) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Type::kInt: return a.i == b.i;
    case Type::kBool: return a.b == b.b;
    case Type::kFloat: {
      if (std::isnan(a.f) || std::isnan(b.f)) return false;
      if (std::isinf(a.f) || std::isinf(b.f)) return a.f == b.f;
      const double scale = std::max({1.0, std::fabs(a.f), std::fabs(b.f)});
      return std::fabs(a.f - b.f) <= tol * scale;
    }
    default: return false;
  }
}

bool value_bits_equal(const Value& a, const Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Type::kInt: return a.i == b.i;
    case Type::kBool: return a.b == b.b;
    case Type::kFloat:
      return std::bit_cast<std::uint64_t>(a.f) ==
             std::bit_cast<std::uint64_t>(b.f);
    default: return true;
  }
}

std::string show(const Value& v) {
  std::ostringstream os;
  switch (v.type) {
    case Type::kInt: os << v.i; break;
    case Type::kBool: os << (v.b ? "true" : "false"); break;
    case Type::kFloat: os << v.f; break;
    default: os << "<unit>"; break;
  }
  return os.str();
}

/// Worker-count axis doubles as a schedule/partition axis: even counts run
/// the work-queue scheduler over a hash partition, odd counts the scan-all
/// scheduler over a block partition, so one case covers both code paths
/// deterministically (the pairing is a pure function of the count, which
/// keeps saved corpus cases replayable).
pregel::EngineOptions engine_for(int workers) {
  pregel::EngineOptions o;
  o.num_workers = workers;
  const bool even = workers % 2 == 0;
  o.partition =
      even ? pregel::PartitionScheme::kHash : pregel::PartitionScheme::kBlock;
  o.schedule =
      even ? pregel::ScheduleMode::kWorkQueue : pregel::ScheduleMode::kScanAll;
  o.cluster.machines = 2;
  o.cluster.workers_per_machine = 2;
  return o;
}

/// Reconstructed receiver state for one (vertex, site) message stream.
struct StreamAcc {
  Value acc;
  Value nn;
  Value nulls;
};

struct ProbeState {
  std::mutex mu;
  std::vector<StreamAcc> streams;  // num_vertices × num_sites
  std::vector<std::string> errors;
};

DvRunOptions base_run_options(const FuzzCase& fc, const DiffOptions& opts,
                              int workers) {
  DvRunOptions ro;
  ro.engine = engine_for(workers);
  ro.params = fc.params;
  ro.max_supersteps = opts.max_supersteps;
  return ro;
}

/// Bit-level equivalence of two runs of the *same* compiled program on
/// different execution tiers: identical shape, state words, and
/// message/byte counts. Returns a human-readable mismatch, or empty.
std::string diff_runs(const DvRunResult& vm, const DvRunResult& tree) {
  if (vm.supersteps != tree.supersteps)
    return "supersteps " + std::to_string(vm.supersteps) + " vs " +
           std::to_string(tree.supersteps);
  if (vm.stats.total_messages_sent() != tree.stats.total_messages_sent())
    return "messages " + std::to_string(vm.stats.total_messages_sent()) +
           " vs " + std::to_string(tree.stats.total_messages_sent());
  if (vm.stats.total_bytes_sent() != tree.stats.total_bytes_sent())
    return "bytes " + std::to_string(vm.stats.total_bytes_sent()) + " vs " +
           std::to_string(tree.stats.total_bytes_sent());
  if (vm.state.size() != tree.state.size()) return "state shape differs";
  for (std::size_t i = 0; i < vm.state.size(); ++i)
    if (!value_bits_equal(vm.state[i], tree.state[i]))
      return "state word " + std::to_string(i) + ": " + show(vm.state[i]) +
             " vs " + show(tree.state[i]);
  return {};
}

}  // namespace

std::optional<DiffFailure> check_case(const FuzzCase& fc,
                                      const DiffOptions& opts) {
  CompiledProgram dv_cp, star_cp;
  try {
    dv_cp = compile(fc.source, CompileOptions{});
    CompileOptions star_opts;
    star_opts.incrementalize = false;
    star_cp = compile(fc.source, star_opts);
  } catch (const std::exception& e) {
    return DiffFailure{"compile", e.what()};
  }

  // compile() runs the verifier after every pass; re-running the final
  // stage here also covers the stored AST the runner will interpret.
  try {
    verify_program(dv_cp.program, VerifyStage::kFinal);
    verify_program(star_cp.program, VerifyStage::kFinal);
  } catch (const std::exception& e) {
    return DiffFailure{"verifier", e.what()};
  }

  if (opts.check_codegen && dv_cp.program.stmts.size() == 1) {
    try {
      const std::string dv_cpp = emit_cpp(dv_cp, "FuzzDv");
      const std::string star_cpp = emit_cpp(star_cp, "FuzzDvStar");
      if (dv_cpp.find("FuzzDv") == std::string::npos ||
          star_cpp.find("FuzzDvStar") == std::string::npos)
        return DiffFailure{"codegen", "emitted unit lacks the class name"};
    } catch (const std::exception& e) {
      return DiffFailure{"codegen", e.what()};
    }
  }

  const graph::CsrGraph g = fc.graph.build();
  const std::size_t n = g.num_vertices();
  const std::size_t num_sites = dv_cp.num_sites();

  std::optional<DvRunResult> first_dv;  // for the cross-worker-count check
  int first_workers = 0;

  // Native axis availability is probed once per process; without a host
  // compiler the axis is skipped (callers report the skip count).
  const bool native_axis =
      opts.check_native && native::native_unavailable_reason().empty();

  for (const int workers : fc.worker_counts) {
    // --- ΔV* reference run -------------------------------------------
    DvRunResult star;
    try {
      star = run_program(star_cp, g, base_run_options(fc, opts, workers));
    } catch (const std::exception& e) {
      return DiffFailure{"run", std::string("ΔV* (") +
                                    std::to_string(workers) +
                                    " workers): " + e.what()};
    }

    // --- ΔV run with the live-stream probe ---------------------------
    const auto init_streams = [&](ProbeState& p) {
      p.streams.assign(n * num_sites, StreamAcc{});
      for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t s = 0; s < num_sites; ++s) {
          auto& st = p.streams[v * num_sites + s];
          const AggOp op = dv_cp.site_ops.ops[s];
          const Type t = dv_cp.site_ops.types[s];
          st.acc = agg_identity(op, t);
          st.nn = agg_identity(op, t);
          st.nulls = Value::of_int(0);
        }
      }
    };
    ProbeState probe;
    init_streams(probe);

    DvRunOptions dv_ro = base_run_options(fc, opts, workers);
    dv_ro.send_probe = [&](graph::VertexId, graph::VertexId dst,
                           const DvMessage& m) {
      std::lock_guard<std::mutex> lock(probe.mu);
      const auto s = static_cast<std::size_t>(m.site);
      const AggOp op = dv_cp.site_ops.ops[s];
      const Type t = dv_cp.site_ops.types[s];
      if (is_identity(op, m.payload) && m.nulls == 0 && m.denulls == 0 &&
          probe.errors.size() < 8) {
        probe.errors.push_back("meaningless message to vertex " +
                               std::to_string(dst) + " site " +
                               std::to_string(s) + " payload " +
                               show(m.payload));
      }
      auto& st = probe.streams[static_cast<std::size_t>(dst) * num_sites + s];
      apply_delta(op, t, AccumRef{&st.acc, &st.nn, &st.nulls}, m.payload,
                  m.nulls, m.denulls);
    };

    DvRunResult dv;
    try {
      dv = run_program(dv_cp, g, dv_ro);
    } catch (const std::exception& e) {
      return DiffFailure{"run", std::string("ΔV (") +
                                    std::to_string(workers) +
                                    " workers): " + e.what()};
    }

    if (!probe.errors.empty())
      return DiffFailure{"meaningful", probe.errors.front() + " (" +
                                           std::to_string(workers) +
                                           " workers)"};

    // --- Eq. 11: replayed stream vs. final memoized accumulators ------
    if (opts.check_eq11) {
      for (const auto& site : dv_cp.program.sites) {
        if (site.acc_slot < 0) continue;
        const auto s = static_cast<std::size_t>(site.id);
        for (std::size_t v = 0; v < n; ++v) {
          const auto& st = probe.streams[v * num_sites + s];
          const Value& acc = dv.at(static_cast<graph::VertexId>(v),
                                   site.acc_slot);
          if (!value_close(acc, st.acc, opts.float_tol))
            return DiffFailure{
                "eq11", "site " + std::to_string(site.id) + " vertex " +
                            std::to_string(v) + ": accumulator " +
                            show(acc) + " != replayed stream fold " +
                            show(st.acc) + " (" + std::to_string(workers) +
                            " workers)"};
          if (site.multiplicative()) {
            const Value& nn = dv.at(static_cast<graph::VertexId>(v),
                                    site.nn_slot);
            const Value& nulls = dv.at(static_cast<graph::VertexId>(v),
                                       site.nulls_slot);
            if (!value_close(nn, st.nn, opts.float_tol) ||
                nulls.i != st.nulls.i)
              return DiffFailure{
                  "eq11", "site " + std::to_string(site.id) + " vertex " +
                              std::to_string(v) + ": nn/nulls " + show(nn) +
                              "/" + show(nulls) + " != replayed " +
                              show(st.nn) + "/" + show(st.nulls) + " (" +
                              std::to_string(workers) + " workers)"};
          }
        }
      }
    }

    // --- user-visible state equivalence -------------------------------
    for (std::size_t slot = 0; slot < dv.fields.size(); ++slot) {
      const Field& f = dv.fields[slot];
      if (f.origin != Field::Origin::kUser) continue;
      const int star_slot = star.field_slot(f.name);
      if (star_slot < 0)
        return DiffFailure{"values", "field " + f.name + " missing in ΔV*"};
      for (std::size_t v = 0; v < n; ++v) {
        const Value& a = dv.at(static_cast<graph::VertexId>(v),
                               static_cast<int>(slot));
        const Value& b =
            star.at(static_cast<graph::VertexId>(v), star_slot);
        if (!value_close(a, b, opts.float_tol))
          return DiffFailure{
              "values", "field " + f.name + " vertex " + std::to_string(v) +
                            ": ΔV " + show(a) + " != ΔV* " + show(b) +
                            " (" + std::to_string(workers) + " workers)"};
      }
      if (first_dv) {
        const int prev_slot = first_dv->field_slot(f.name);
        for (std::size_t v = 0; v < n; ++v) {
          const Value& a = dv.at(static_cast<graph::VertexId>(v),
                                 static_cast<int>(slot));
          const Value& b =
              first_dv->at(static_cast<graph::VertexId>(v), prev_slot);
          if (!value_close(a, b, opts.float_tol))
            return DiffFailure{
                "values", "field " + f.name + " vertex " +
                              std::to_string(v) + ": " +
                              std::to_string(workers) + " workers " +
                              show(a) + " != " +
                              std::to_string(first_workers) + " workers " +
                              show(b)};
        }
      }
    }

    // --- the paper's headline inequality ------------------------------
    if (opts.check_message_counts &&
        dv.stats.total_messages_sent() > star.stats.total_messages_sent())
      return DiffFailure{
          "messages", "ΔV sent " +
                          std::to_string(dv.stats.total_messages_sent()) +
                          " > ΔV* " +
                          std::to_string(star.stats.total_messages_sent()) +
                          " (" + std::to_string(workers) + " workers)"};

    // --- bit-exact determinism ----------------------------------------
    if (opts.check_determinism) {
      DvRunResult again;
      try {
        again = run_program(dv_cp, g, base_run_options(fc, opts, workers));
      } catch (const std::exception& e) {
        return DiffFailure{"determinism", e.what()};
      }
      if (again.supersteps != dv.supersteps ||
          again.state.size() != dv.state.size())
        return DiffFailure{"determinism",
                           "superstep/state shape differs between runs (" +
                               std::to_string(workers) + " workers)"};
      for (std::size_t i = 0; i < dv.state.size(); ++i) {
        if (!value_bits_equal(dv.state[i], again.state[i]))
          return DiffFailure{
              "determinism",
              "state word " + std::to_string(i) + " differs: " +
                  show(dv.state[i]) + " vs " + show(again.state[i]) + " (" +
                  std::to_string(workers) + " workers)"};
      }
    }

    // --- execution-tier equivalence -----------------------------------
    // The reference tree interpreter must reproduce the bytecode VM runs
    // above (the tier default) bit-for-bit — state words, message and
    // byte counts — for both variants, and replay an equivalent Eq. 11
    // stream. With one worker the send order is deterministic, so the
    // replayed stream folds are compared bit-exactly; with more workers
    // thread interleaving reassociates the float folds and the comparison
    // falls back to the harness tolerance.
    if (opts.check_tiers) {
      ProbeState tree_probe;
      init_streams(tree_probe);
      DvRunOptions tree_ro = base_run_options(fc, opts, workers);
      tree_ro.tier = ExecTier::kTree;
      tree_ro.send_probe = [&](graph::VertexId, graph::VertexId dst,
                               const DvMessage& m) {
        std::lock_guard<std::mutex> lock(tree_probe.mu);
        const auto s = static_cast<std::size_t>(m.site);
        auto& st =
            tree_probe.streams[static_cast<std::size_t>(dst) * num_sites + s];
        apply_delta(dv_cp.site_ops.ops[s], dv_cp.site_ops.types[s],
                    AccumRef{&st.acc, &st.nn, &st.nulls}, m.payload, m.nulls,
                    m.denulls);
      };
      DvRunResult tree_dv;
      try {
        tree_dv = run_program(dv_cp, g, tree_ro);
      } catch (const std::exception& e) {
        return DiffFailure{"tiers", std::string("ΔV tree tier (") +
                                        std::to_string(workers) +
                                        " workers): " + e.what()};
      }
      if (std::string d = diff_runs(dv, tree_dv); !d.empty())
        return DiffFailure{"tiers", "ΔV vm vs tree: " + d + " (" +
                                        std::to_string(workers) +
                                        " workers)"};
      const bool exact_stream = workers == 1;
      for (std::size_t i = 0; i < probe.streams.size(); ++i) {
        const StreamAcc& a = probe.streams[i];
        const StreamAcc& b = tree_probe.streams[i];
        const bool ok =
            a.nulls.i == b.nulls.i &&
            (exact_stream
                 ? value_bits_equal(a.acc, b.acc) &&
                       value_bits_equal(a.nn, b.nn)
                 : value_close(a.acc, b.acc, opts.float_tol) &&
                       value_close(a.nn, b.nn, opts.float_tol));
        if (!ok)
          return DiffFailure{
              "tiers", "Eq. 11 stream " + std::to_string(i) +
                           " differs between tiers: vm " + show(a.acc) +
                           " vs tree " + show(b.acc) + " (" +
                           std::to_string(workers) + " workers)"};
      }

      DvRunOptions star_tree_ro = base_run_options(fc, opts, workers);
      star_tree_ro.tier = ExecTier::kTree;
      DvRunResult tree_star;
      try {
        tree_star = run_program(star_cp, g, star_tree_ro);
      } catch (const std::exception& e) {
        return DiffFailure{"tiers", std::string("ΔV* tree tier (") +
                                        std::to_string(workers) +
                                        " workers): " + e.what()};
      }
      if (std::string d = diff_runs(star, tree_star); !d.empty())
        return DiffFailure{"tiers", "ΔV* vm vs tree: " + d + " (" +
                                        std::to_string(workers) +
                                        " workers)"};
    }

    // --- native-tier equivalence --------------------------------------
    // The AOT-compiled object must reproduce the VM runs bit-for-bit
    // under the same contract as the tree tier: state words, message and
    // byte counts, supersteps, and a replayed Eq. 11 stream. fold_path
    // is forced buffered to match the probe-carrying baselines above
    // (the probe run disables atomic routing), and a silent fallback to
    // the VM is itself a failure — the fuzzer must exercise the native
    // tier, not a lookalike.
    if (native_axis) {
      ProbeState nat_probe;
      init_streams(nat_probe);
      DvRunOptions nat_ro = base_run_options(fc, opts, workers);
      nat_ro.tier = ExecTier::kNative;
      nat_ro.fold_path = FoldPath::kBuffered;
      nat_ro.send_probe = [&](graph::VertexId, graph::VertexId dst,
                              const DvMessage& m) {
        std::lock_guard<std::mutex> lock(nat_probe.mu);
        const auto s = static_cast<std::size_t>(m.site);
        auto& st =
            nat_probe.streams[static_cast<std::size_t>(dst) * num_sites + s];
        apply_delta(dv_cp.site_ops.ops[s], dv_cp.site_ops.types[s],
                    AccumRef{&st.acc, &st.nn, &st.nulls}, m.payload, m.nulls,
                    m.denulls);
      };
      DvRunResult nat_dv;
      try {
        nat_dv = run_program(dv_cp, g, nat_ro);
      } catch (const std::exception& e) {
        return DiffFailure{"native", std::string("ΔV native tier (") +
                                         std::to_string(workers) +
                                         " workers): " + e.what()};
      }
      if (nat_dv.tier_used != ExecTier::kNative)
        return DiffFailure{"native",
                           "ΔV fell back to the VM: " +
                               nat_dv.native_fallback};
      if (std::string d = diff_runs(dv, nat_dv); !d.empty())
        return DiffFailure{"native", "ΔV vm vs native: " + d + " (" +
                                         std::to_string(workers) +
                                         " workers)"};
      const bool exact_stream = workers == 1;
      for (std::size_t i = 0; i < probe.streams.size(); ++i) {
        const StreamAcc& a = probe.streams[i];
        const StreamAcc& b = nat_probe.streams[i];
        const bool ok =
            a.nulls.i == b.nulls.i &&
            (exact_stream
                 ? value_bits_equal(a.acc, b.acc) &&
                       value_bits_equal(a.nn, b.nn)
                 : value_close(a.acc, b.acc, opts.float_tol) &&
                       value_close(a.nn, b.nn, opts.float_tol));
        if (!ok)
          return DiffFailure{
              "native", "Eq. 11 stream " + std::to_string(i) +
                            " differs between tiers: vm " + show(a.acc) +
                            " vs native " + show(b.acc) + " (" +
                            std::to_string(workers) + " workers)"};
      }

      DvRunOptions star_nat_ro = base_run_options(fc, opts, workers);
      star_nat_ro.tier = ExecTier::kNative;
      star_nat_ro.fold_path = FoldPath::kBuffered;
      DvRunResult nat_star;
      try {
        nat_star = run_program(star_cp, g, star_nat_ro);
      } catch (const std::exception& e) {
        return DiffFailure{"native", std::string("ΔV* native tier (") +
                                         std::to_string(workers) +
                                         " workers): " + e.what()};
      }
      if (nat_star.tier_used != ExecTier::kNative)
        return DiffFailure{"native",
                           "ΔV* fell back to the VM: " +
                               nat_star.native_fallback};
      if (std::string d = diff_runs(star, nat_star); !d.empty())
        return DiffFailure{"native", "ΔV* vm vs native: " + d + " (" +
                                         std::to_string(workers) +
                                         " workers)"};
    }

    // --- fold-path axis -----------------------------------------------
    // The lock-free pending-slot path must be observationally identical
    // to the buffered message path (the probe run above forces buffered):
    // same fixpoint, same superstep count, never more messages. Checked
    // on both tiers. Ints and bools compare bit-exactly; floats compare
    // numerically exact (±0.0 only — CAS-min tie order can flip a zero's
    // sign where the buffered fold keeps its first candidate).
    if (opts.check_fold_path) {
      const auto fold_equal = [](const Value& a, const Value& b) {
        return a.type == Type::kFloat ? value_close(a, b, 0.0)
                                      : value_bits_equal(a, b);
      };
      for (const ExecTier tier :
           {ExecTier::kVm, ExecTier::kTree, ExecTier::kNative}) {
        if (tier == ExecTier::kTree && !opts.check_tiers) continue;
        if (tier == ExecTier::kNative && !native_axis) continue;
        DvRunOptions aro = base_run_options(fc, opts, workers);
        aro.tier = tier;
        aro.fold_path = FoldPath::kAtomic;
        DvRunResult atomic;
        try {
          atomic = run_program(dv_cp, g, aro);
        } catch (const std::exception& e) {
          return DiffFailure{"fold_path",
                             std::string(exec_tier_name(tier)) + " (" +
                                 std::to_string(workers) +
                                 " workers): " + e.what()};
        }
        if (atomic.tier_used != tier)
          return DiffFailure{"fold_path",
                             std::string(exec_tier_name(tier)) +
                                 ": fell back to " +
                                 exec_tier_name(atomic.tier_used) + ": " +
                                 atomic.native_fallback};
        if (atomic.supersteps != dv.supersteps)
          return DiffFailure{
              "fold_path",
              std::string(exec_tier_name(tier)) + ": atomic ran " +
                  std::to_string(atomic.supersteps) + " supersteps vs " +
                  std::to_string(dv.supersteps) + " buffered (" +
                  std::to_string(workers) + " workers)"};
        if (atomic.stats.total_messages_sent() >
            dv.stats.total_messages_sent())
          return DiffFailure{
              "fold_path",
              std::string(exec_tier_name(tier)) + ": atomic sent " +
                  std::to_string(atomic.stats.total_messages_sent()) +
                  " messages > buffered " +
                  std::to_string(dv.stats.total_messages_sent()) + " (" +
                  std::to_string(workers) + " workers)"};
        if (atomic.state.size() != dv.state.size())
          return DiffFailure{"fold_path", "state shape differs"};
        for (std::size_t i = 0; i < dv.state.size(); ++i)
          if (!fold_equal(atomic.state[i], dv.state[i]))
            return DiffFailure{
                "fold_path",
                std::string(exec_tier_name(tier)) + ": state word " +
                    std::to_string(i) + ": atomic " + show(atomic.state[i]) +
                    " vs buffered " + show(dv.state[i]) + " (" +
                    std::to_string(workers) + " workers)"};
      }

      // Float + opt-in: concurrent fetch order re-associates the sum by
      // design, so only ε-closeness is required (and superstep counts may
      // legitimately drift where a change check sees a tiny residue).
      DvRunOptions fro = base_run_options(fc, opts, workers);
      fro.fold_path = FoldPath::kAtomic;
      fro.atomic_float = true;
      DvRunResult afloat;
      try {
        afloat = run_program(dv_cp, g, fro);
      } catch (const std::exception& e) {
        return DiffFailure{"fold_path",
                           std::string("atomic_float (") +
                               std::to_string(workers) +
                               " workers): " + e.what()};
      }
      if (afloat.state.size() != dv.state.size())
        return DiffFailure{"fold_path", "atomic_float state shape differs"};
      for (std::size_t i = 0; i < dv.state.size(); ++i)
        if (!value_close(afloat.state[i], dv.state[i], opts.float_tol))
          return DiffFailure{
              "fold_path",
              "atomic_float state word " + std::to_string(i) + ": " +
                  show(afloat.state[i]) + " vs buffered " +
                  show(dv.state[i]) + " (" + std::to_string(workers) +
                  " workers)"};
    }

    if (!first_dv) {
      first_dv = std::move(dv);
      first_workers = workers;
    }
  }

  return std::nullopt;
}

}  // namespace deltav::dv::testing
