// Corpus persistence for failing fuzz cases.
//
// A corpus entry is a plain .dv source file whose leading `--!` comment
// lines carry the bindings the differential harness needs to replay it:
//
//   --! dv_fuzz v1
//   --! note messages check failed at 4 workers
//   --! graph kind=rmat n=16 m=48 seed=9 directed=1 weighted=0
//   --! workers 1 4
//   --! param steps int 3
//   <program text>
//
// `--` starts a ΔV comment, so an entry is also a self-describing program
// a human can paste into any tool. Saved failures are replayed by
// tests/dv_fuzz_corpus_test.cpp as a deterministic regression suite.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dv/testing/program_gen.h"

namespace deltav::dv::testing {

/// Renders a FuzzCase into the corpus text format.
std::string serialize_case(const FuzzCase& fc, const std::string& note = "");

/// Inverse of serialize_case. Throws CheckError on malformed input.
FuzzCase parse_case(const std::string& text);

/// Loads every *.dv entry under `dir` in sorted path order. Returns an
/// empty vector when the directory is missing or empty.
std::vector<std::pair<std::string, FuzzCase>> load_corpus_dir(
    const std::string& dir);

/// Serializes and writes `fc` into `dir` under a content-hash filename;
/// returns the path. Creates the directory when needed.
std::string save_case(const std::string& dir, const FuzzCase& fc,
                      const std::string& note = "");

}  // namespace deltav::dv::testing
