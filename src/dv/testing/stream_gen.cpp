#include "dv/testing/stream_gen.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <utility>

#include "dv/compiler.h"
#include "dv/streaming/mutation_io.h"
#include "dv/streaming/stream_session.h"
#include "dv/programs/programs.h"

namespace deltav::dv::testing {

namespace {

// ---------------------------------------------------------------- sources

/// One-site publish-fold: static per-vertex masses, one aggregation.
///
/// `until { i >= 1 }`, not 2: the masses are assigned only in init, so
/// under ΔV*'s kOnAssign policy they are pushed exactly once. A second
/// fold iteration would see zero messages and collapse to the identity,
/// while incremental ΔV keeps its memoized accumulators — the programs
/// only agree (and the ΔV* oracle is only meaningful) with a single fold.
std::string publish_source(AggOp op, const std::string& dir, bool use_edge,
                           int absorbing_below) {
  std::ostringstream os;
  os << "init {\n";
  switch (op) {
    case AggOp::kSum:
      os << "  local mass : float = 0.5 + vertexId;\n"
         << "  local out : float = 0.0\n};\n"
         << "iter i { out = + [ u.mass"
         << (use_edge ? " * u.edge" : "") << " | u <- " << dir << " ] }";
      break;
    case AggOp::kProd:
      // Masses in {0} ∪ (1, 1.5]: the absorbing-zero seeds make mutation
      // streams walk the §6.4.1 null-counter transitions.
      os << "  local mass : float = if vertexId < " << absorbing_below
         << " then 0.0 else 1.0 + 1.0 / (2.0 + vertexId);\n"
         << "  local out : float = 1.0\n};\n"
         << "iter i { out = * [ u.mass | u <- " << dir << " ] }";
      break;
    case AggOp::kMin:
      os << "  local mass : float = 0.5 + vertexId;\n"
         << "  local out : float = infty\n};\n"
         << "iter i { out = min [ u.mass | u <- " << dir << " ] }";
      break;
    case AggOp::kMax:
      os << "  local mass : int = vertexId;\n"
         << "  local out : int = 0\n};\n"
         << "iter i { out = max [ u.mass | u <- " << dir << " ] }";
      break;
    case AggOp::kAnd:
      os << "  local mass : bool = vertexId >= " << absorbing_below << ";\n"
         << "  local out : bool = true\n};\n"
         << "iter i { out = && [ u.mass | u <- " << dir << " ] }";
      break;
    case AggOp::kOr:
      os << "  local mass : bool = vertexId < " << absorbing_below << ";\n"
         << "  local out : bool = false\n};\n"
         << "iter i { out = || [ u.mass | u <- " << dir << " ] }";
      break;
  }
  os << " until { i >= 1 }\n";
  return os.str();
}

/// Max-of-min "capacity" publish: each receiver keeps the best bottleneck
/// min(u.cap, u.edge) over its in-edges — a max-flow-ish shape whose
/// payload is static (cap is init-only), so the max site is a Class A
/// retraction-memo candidate and deletion streams stay warm.
std::string capacity_source() {
  return "init {\n"
         "  local cap : float = 0.5 + vertexId;\n"
         "  local out : float = 0.0\n};\n"
         "iter i {\n"
         "  out = max [ if u.cap < u.edge then u.cap else u.edge"
         " | u <- #in ]\n"
         "} until { i >= 1 }\n";
}

/// Damped feedback fold under an iteration-bounded until: the loop count
/// is semantic (the recurrence is not at a fixpoint when the bound
/// fires), so a warm resume — which restarts iter at 1 and replays the
/// loop from the old converged state — would run the recurrence past the
/// from-scratch answer. Every batch must refuse warm and rebuild cold.
std::string feedback_bounded_source(const std::string& dir, int bound) {
  std::ostringstream os;
  os << "init { local rank : float = 1.0 };\n"
     << "iter i {\n"
     << "  let s : float = + [ u.rank | u <- " << dir << " ] in\n"
     << "  rank = 0.15 + 0.85 * (s / graphSize)\n"
     << "} until { i >= " << bound << " }\n";
  return os.str();
}

/// Two independent publish sites in one statement.
std::string multi_site_source(bool second_is_max, const std::string& d1,
                              const std::string& d2) {
  std::ostringstream os;
  os << "init {\n"
     << "  local ma : float = 0.5 + vertexId;\n"
     << "  local mb : int = vertexId;\n"
     << "  local oa : float = 0.0;\n"
     << "  local ob : int = 0\n};\n"
     << "iter i {\n"
     << "  oa = + [ u.ma | u <- " << d1 << " ];\n"
     << "  ob = " << (second_is_max ? "max" : "+") << " [ u.mb | u <- "
     << d2 << " ]\n} until { i >= 1 }\n";
  return os.str();
}

// ------------------------------------------------------- stream generation

struct StreamShape {
  bool allow_removals = true;
  bool allow_vertex_ops = true;   // addv / delv
  bool only_new_inserts = false;  // never re-insert an existing edge
  bool weighted = false;
  int absorbing_below = 0;        // bias some edits to absorbing senders
};

std::vector<graph::MutationBatch> random_stream(Rng& rng,
                                                const graph::CsrGraph& base,
                                                const StreamShape& shape) {
  std::size_t n = base.num_vertices();
  std::set<std::pair<graph::VertexId, graph::VertexId>> present;
  const bool undirected = !base.directed();
  auto key = [&](graph::VertexId a, graph::VertexId b) {
    if (undirected && b < a) std::swap(a, b);
    return std::make_pair(a, b);
  };
  if (shape.only_new_inserts)
    for (std::size_t v = 0; v < n; ++v)
      for (const graph::VertexId u : base.out_neighbors(
               static_cast<graph::VertexId>(v)))
        present.insert(key(static_cast<graph::VertexId>(v), u));

  std::vector<graph::MutationBatch> batches;
  const std::size_t num_batches = 3 + rng.next_below(3);
  for (std::size_t bi = 0; bi < num_batches; ++bi) {
    graph::MutationBatch b;
    const std::size_t edits = 1 + rng.next_below(6);
    for (std::size_t e = 0; e < edits; ++e) {
      auto u = static_cast<graph::VertexId>(rng.next_below(n));
      const auto v = static_cast<graph::VertexId>(rng.next_below(n));
      // Bias toward absorbing-mass senders so ×/&&/|| streams actually
      // cross the absorbing-element boundary.
      if (shape.absorbing_below > 0 && rng.next_bool(0.35))
        u = static_cast<graph::VertexId>(
            rng.next_below(static_cast<std::uint64_t>(
                shape.absorbing_below)));
      const bool removal = shape.allow_removals && rng.next_bool(0.4);
      if (removal) {
        b.remove_edge(u, v);
        present.erase(key(u, v));
      } else {
        if (shape.only_new_inserts &&
            (u == v || present.count(key(u, v)))) {
          continue;  // would be a weight rewrite; skip for this family
        }
        const double w =
            shape.weighted ? 0.1 + rng.next_double() * 2.0 : 1.0;
        b.insert_edge(u, v, w);
        if (u != v) present.insert(key(u, v));
      }
    }
    if (shape.allow_vertex_ops && rng.next_bool(0.25)) {
      b.add_vertices = 1 + rng.next_below(2);
      n += b.add_vertices;
    }
    if (shape.allow_vertex_ops && shape.allow_removals &&
        rng.next_bool(0.15)) {
      const auto victim = static_cast<graph::VertexId>(rng.next_below(n));
      b.detach_vertices.push_back(victim);
      if (shape.only_new_inserts) {
        // Keep the presence set honest (unused in this configuration,
        // since only_new_inserts families never allow removals).
        for (auto it = present.begin(); it != present.end();)
          it = (it->first == victim || it->second == victim)
                   ? present.erase(it)
                   : std::next(it);
      }
    }
    if (!b.empty()) batches.push_back(std::move(b));
  }
  return batches;
}

/// Stream that hunts the extremum: each batch deletes, for a few random
/// receivers, the in-edge from the sender currently supplying the fold's
/// best contribution (mass is monotone in vertex id, so the structural
/// extremum is the smallest/largest-id in-neighbor — no program run
/// needed). Repeated hits on the same receiver strip its k-best buffer
/// one survivor per batch until it underflows and the targeted refold
/// fires. Random inserts are mixed in so buffers also refill.
std::vector<graph::MutationBatch> extremum_hunting_stream(
    Rng& rng, const graph::CsrGraph& base, bool hunt_min, bool weighted) {
  const std::size_t n = base.num_vertices();
  // dst -> present in-senders, maintained across batches.
  std::vector<std::set<graph::VertexId>> in_of(n);
  for (std::size_t v = 0; v < n; ++v)
    for (const graph::VertexId u :
         base.in_neighbors(static_cast<graph::VertexId>(v)))
      in_of[v].insert(u);

  std::vector<graph::MutationBatch> batches;
  const std::size_t num_batches = 4 + rng.next_below(3);
  for (std::size_t bi = 0; bi < num_batches; ++bi) {
    graph::MutationBatch b;
    const std::size_t hunts = 1 + rng.next_below(4);
    for (std::size_t h = 0; h < hunts; ++h) {
      const auto dst = static_cast<graph::VertexId>(rng.next_below(n));
      if (in_of[dst].empty()) continue;
      const graph::VertexId src =
          hunt_min ? *in_of[dst].begin() : *in_of[dst].rbegin();
      b.remove_edge(src, dst);
      in_of[dst].erase(src);
    }
    const std::size_t inserts = rng.next_below(3);
    for (std::size_t e = 0; e < inserts; ++e) {
      const auto u = static_cast<graph::VertexId>(rng.next_below(n));
      const auto v = static_cast<graph::VertexId>(rng.next_below(n));
      const double w = weighted ? 0.1 + rng.next_double() * 2.0 : 1.0;
      b.insert_edge(u, v, w);
      in_of[v].insert(u);
    }
    if (!b.empty()) batches.push_back(std::move(b));
  }
  return batches;
}

/// Stream over a forward-edge DAG that stays acyclic: removals anywhere,
/// inserts only src < dst (strictly positive weights — the Class B memo's
/// runtime guard refuses non-positive min-plus edges), vertex adds only
/// (new ids are larger, so later forward inserts cannot close a cycle).
std::vector<graph::MutationBatch> dag_stream(Rng& rng,
                                             const graph::CsrGraph& base) {
  std::size_t n = base.num_vertices();
  std::vector<graph::MutationBatch> batches;
  const std::size_t num_batches = 3 + rng.next_below(3);
  for (std::size_t bi = 0; bi < num_batches; ++bi) {
    graph::MutationBatch b;
    const std::size_t edits = 1 + rng.next_below(5);
    for (std::size_t e = 0; e < edits; ++e) {
      auto u = static_cast<graph::VertexId>(rng.next_below(n));
      auto v = static_cast<graph::VertexId>(rng.next_below(n));
      if (rng.next_bool(0.5)) {
        b.remove_edge(u, v);
      } else {
        if (u == v) continue;
        if (v < u) std::swap(u, v);
        b.insert_edge(u, v, 0.1 + rng.next_double() * 2.0);
      }
    }
    if (rng.next_bool(0.2)) {
      b.add_vertices = 1 + rng.next_below(2);
      n += b.add_vertices;
    }
    if (!b.empty()) batches.push_back(std::move(b));
  }
  return batches;
}

GraphSpec small_graph(Rng& rng, bool directed, bool weighted) {
  GraphSpec gs;
  gs.kind = GraphSpec::Kind::kRmat;
  gs.n = 12 + rng.next_below(28);
  gs.m = gs.n * (2 + rng.next_below(3));
  gs.seed = rng.next_u64() | 1;
  gs.directed = directed;
  gs.weighted = weighted;
  return gs;
}

std::string dir_token(Rng& rng, bool directed) {
  if (!directed) return "#neighbors";
  return rng.next_bool() ? "#in" : "#out";
}

// ----------------------------------------------------------- value compare

bool value_close(const Value& a, const Value& b, double tol) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Type::kInt: return a.i == b.i;
    case Type::kBool: return a.b == b.b;
    case Type::kFloat: {
      if (std::isnan(a.f) || std::isnan(b.f)) return false;
      if (std::isinf(a.f) || std::isinf(b.f)) return a.f == b.f;
      const double scale = std::max({1.0, std::fabs(a.f), std::fabs(b.f)});
      return std::fabs(a.f - b.f) <= tol * scale;
    }
    default: return false;
  }
}

bool value_bits_equal(const Value& a, const Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Type::kInt: return a.i == b.i;
    case Type::kBool: return a.b == b.b;
    case Type::kFloat:
      return std::bit_cast<std::uint64_t>(a.f) ==
             std::bit_cast<std::uint64_t>(b.f);
    default: return true;
  }
}

std::string show(const Value& v) {
  std::ostringstream os;
  switch (v.type) {
    case Type::kInt: os << v.i; break;
    case Type::kBool: os << (v.b ? "true" : "false"); break;
    case Type::kFloat: os << v.f; break;
    default: os << "<unit>"; break;
  }
  return os.str();
}

/// Same worker ↔ scheduler/partition pairing as differential.cpp.
pregel::EngineOptions engine_for(int workers) {
  pregel::EngineOptions o;
  o.num_workers = workers;
  const bool even = workers % 2 == 0;
  o.partition =
      even ? pregel::PartitionScheme::kHash : pregel::PartitionScheme::kBlock;
  o.schedule =
      even ? pregel::ScheduleMode::kWorkQueue : pregel::ScheduleMode::kScanAll;
  o.cluster.machines = 2;
  o.cluster.workers_per_machine = 2;
  return o;
}

/// User-visible fields of `got` vs `want`, matched by name.
std::string compare_user_fields(const DvRunResult& got,
                                const DvRunResult& want, double tol) {
  if (got.num_vertices != want.num_vertices)
    return "vertex counts differ: " + std::to_string(got.num_vertices) +
           " vs " + std::to_string(want.num_vertices);
  for (std::size_t fi = 0; fi < want.fields.size(); ++fi) {
    const Field& f = want.fields[fi];
    if (f.origin != Field::Origin::kUser) continue;
    const int gslot = got.field_slot(f.name);
    for (std::size_t v = 0; v < want.num_vertices; ++v) {
      const Value& a = got.at(static_cast<graph::VertexId>(v), gslot);
      const Value& b =
          want.at(static_cast<graph::VertexId>(v), static_cast<int>(fi));
      if (!value_close(a, b, tol))
        return "field " + f.name + " at vertex " + std::to_string(v) +
               ": " + show(a) + " vs oracle " + show(b);
    }
  }
  return {};
}

}  // namespace

StreamCase generate_stream_case(Rng& rng) {
  StreamCase sc;
  const int family = static_cast<int>(rng.next_below(14));
  static constexpr std::size_t kMemoKs[] = {1, 2, 4, 8};
  if (family < 5) {
    // Publish-fold over one of the six operators.
    static constexpr AggOp kOps[] = {AggOp::kSum,  AggOp::kProd,
                                     AggOp::kMin,  AggOp::kMax,
                                     AggOp::kOr,   AggOp::kAnd};
    const AggOp op = kOps[rng.next_below(6)];
    const bool directed = rng.next_bool(0.7);
    const bool use_edge = op == AggOp::kSum && rng.next_bool(0.4);
    const int absorbing_below = static_cast<int>(1 + rng.next_below(3));
    sc.family = std::string("publish-") + agg_op_name(op);
    sc.source =
        publish_source(op, dir_token(rng, directed), use_edge,
                       absorbing_below);
    sc.graph = small_graph(rng, directed, use_edge);
    StreamShape shape;
    shape.allow_removals = !is_idempotent(op);
    shape.weighted = use_edge;
    shape.absorbing_below = is_multiplicative(op) ? absorbing_below : 0;
    sc.batches = random_stream(rng, sc.graph.build(), shape);
  } else if (family < 8) {
    // Guarded-monotone relaxations; insert-only streams.
    const int which = static_cast<int>(rng.next_below(4));
    StreamShape shape;
    shape.allow_removals = false;
    switch (which) {
      case 0:
        sc.family = "relax-sssp";
        sc.source = programs::kSssp;
        sc.params = {{"source", Value::of_int(0)}};
        sc.graph = small_graph(rng, /*directed=*/true, /*weighted=*/true);
        shape.weighted = true;
        shape.only_new_inserts = true;  // a weight rewrite is a removal
        break;
      case 1:
        sc.family = "relax-cc";
        sc.source = programs::kConnectedComponents;
        sc.graph = small_graph(rng, /*directed=*/false, false);
        break;
      case 2:
        sc.family = "relax-gossip";
        sc.source = programs::kMaxGossip;
        sc.graph = small_graph(rng, /*directed=*/false, false);
        break;
      default:
        sc.family = "relax-reach";
        sc.source = programs::kReachability;
        sc.params = {{"source", Value::of_int(0)}};
        sc.graph = small_graph(rng, /*directed=*/true, false);
        break;
    }
    sc.batches = random_stream(rng, sc.graph.build(), shape);
  } else if (family == 8) {
    // Two independent sites; stream restricted by the weaker op.
    const bool second_is_max = rng.next_bool();
    sc.family = second_is_max ? "multi-site-max" : "multi-site-sum";
    sc.source = multi_site_source(second_is_max, dir_token(rng, true),
                                  dir_token(rng, true));
    sc.graph = small_graph(rng, /*directed=*/true, false);
    StreamShape shape;
    shape.allow_removals = !second_is_max;
    sc.batches = random_stream(rng, sc.graph.build(), shape);
  } else if (family == 9) {
    // Deliberately blocked: min/max publish + removals with the
    // retraction memo pinned off, so the legacy blocker still fires.
    // Every batch that removes must rebuild cold and still match the
    // oracle.
    const AggOp op = rng.next_bool() ? AggOp::kMin : AggOp::kMax;
    sc.family = std::string("blocked-") + agg_op_name(op);
    sc.source = publish_source(op, "#in", false, 0);
    sc.graph = small_graph(rng, /*directed=*/true, false);
    sc.expect_warm = false;
    sc.memo_k = 0;
    StreamShape shape;  // removals allowed against an idempotent op
    sc.batches = random_stream(rng, sc.graph.build(), shape);
  } else if (family == 11) {
    // Retraction memo, Class A: min/max publish whose stream deletes the
    // current extremum supplier — warm under any memo_k >= 1, with small
    // capacities rotated in so eviction/underflow/refold all fire.
    const bool hunt_min = rng.next_bool();
    const AggOp op = hunt_min ? AggOp::kMin : AggOp::kMax;
    sc.family = std::string("retract-") + agg_op_name(op);
    sc.source = publish_source(op, "#in", false, 0);
    sc.graph = small_graph(rng, /*directed=*/true, false);
    sc.memo_k = kMemoKs[rng.next_below(4)];
    sc.batches = extremum_hunting_stream(rng, sc.graph.build(), hunt_min,
                                         /*weighted=*/false);
  } else if (family == 12) {
    // Retraction memo, Class A with an edge-dependent payload: max of
    // min(u.cap, u.edge) bottlenecks. The extremum hunter still targets
    // by id (cap is monotone in id), which is wrong often enough under
    // random weights to mix targeted and untargeted deletions.
    sc.family = "retract-capacity";
    sc.source = capacity_source();
    sc.graph = small_graph(rng, /*directed=*/true, /*weighted=*/true);
    sc.memo_k = kMemoKs[rng.next_below(4)];
    sc.batches = extremum_hunting_stream(rng, sc.graph.build(),
                                         /*hunt_min=*/false,
                                         /*weighted=*/true);
  } else if (family == 13) {
    // Retraction memo, Class B: the pure (unguarded) SSSP form feeds its
    // min-plus fold back to itself. Forward-edge DAGs keep stale state
    // draining in bounded supersteps after a deletion, so every epoch —
    // deletions included — must stay warm.
    sc.family = "retract-sssp";
    sc.source = programs::kSsspRetract;
    sc.params = {{"source", Value::of_int(0)}};
    sc.graph = small_graph(rng, /*directed=*/true, /*weighted=*/true);
    sc.graph.kind = GraphSpec::Kind::kDag;
    sc.memo_k = kMemoKs[rng.next_below(4)];
    sc.oracle_star = false;  // dense reassign: ΔV* never quiesces
    sc.batches = dag_stream(rng, sc.graph.build());
  } else {
    // Deliberately blocked: feedback recurrence under `until { i >= K }`,
    // K > 1. The iteration count is semantic, so warm resume must be
    // refused for every batch (edge edits only — vertex ops would trip
    // the graphSize blocker instead of the feedback one).
    const bool directed = rng.next_bool(0.7);
    const int bound = static_cast<int>(2 + rng.next_below(3));
    sc.family = "feedback-bounded";
    sc.source = feedback_bounded_source(dir_token(rng, directed), bound);
    sc.graph = small_graph(rng, directed, false);
    sc.expect_warm = false;
    StreamShape shape;
    shape.allow_vertex_ops = false;
    sc.batches = random_stream(rng, sc.graph.build(), shape);
  }
  return sc;
}

std::string describe(const StreamCase& sc) {
  std::ostringstream os;
  os << "family: " << sc.family << "\nmemo_k: " << sc.memo_k
     << "\ngraph: " << sc.graph.describe()
     << "\nsource:\n" << sc.source << "stream:\n";
  streaming::write_mutation_stream(sc.batches, os);
  return os.str();
}

std::optional<DiffFailure> check_stream_case(const StreamCase& sc,
                                             const StreamDiffOptions& opts) {
  try {
    CompileOptions inc;
    inc.incrementalize = true;
    const CompiledProgram cp = compile(sc.source, inc);
    CompileOptions star;
    star.incrementalize = false;
    const CompiledProgram cp_star =
        sc.oracle_star ? compile(sc.source, star) : compile(sc.source, inc);

    const graph::CsrGraph base = sc.graph.build();
    const auto opts_for = [&](ExecTier tier) {
      streaming::SessionOptions so;
      so.run.engine = engine_for(opts.workers);
      so.run.tier = tier;
      so.run.params = sc.params;
      so.minmax_memo_k = sc.memo_k;
      return so;
    };
    const auto vm =
        streaming::make_stream_session(cp, base, opts_for(ExecTier::kVm));
    vm->converge();
    std::unique_ptr<streaming::DvStreamSession> tree;
    if (opts.check_tiers) {
      tree =
          streaming::make_stream_session(cp, base, opts_for(ExecTier::kTree));
      tree->converge();
    }
    // Fold-path axis: the default sessions above route proven sites
    // through the lock-free pending slots; these force the buffered
    // message path (the oracle) and the float + opt-in respectively.
    std::unique_ptr<streaming::DvStreamSession> buffered;
    std::unique_ptr<streaming::DvStreamSession> afloat;
    if (opts.check_fold_path) {
      auto bo = opts_for(ExecTier::kVm);
      bo.run.fold_path = FoldPath::kBuffered;
      buffered = streaming::make_stream_session(cp, base, bo);
      buffered->converge();
      auto fo = opts_for(ExecTier::kVm);
      fo.run.fold_path = FoldPath::kAtomic;
      fo.run.atomic_float = true;
      afloat = streaming::make_stream_session(cp, base, fo);
      afloat->converge();
    }

    const auto oracle_state = [&](const streaming::DvStreamSession& s,
                                  ExecTier tier) {
      DvRunOptions o;
      o.engine = engine_for(opts.workers);
      o.tier = tier;
      o.params = sc.params;
      return run_program(cp_star, s.graph().materialize(), o);
    };

    for (std::size_t bi = 0; bi < sc.batches.size(); ++bi) {
      const auto tag = [&](const std::string& what) {
        return "batch " + std::to_string(bi) + ": " + what;
      };
      const streaming::SessionEpoch ev = vm->apply(sc.batches[bi]);
      if (sc.expect_warm && !ev.warm)
        return DiffFailure{"warm",
                           tag(std::string("expected a warm epoch, got "
                                           "cold: ") +
                               (ev.blocker ? ev.blocker : "?"))};

      const DvRunResult rv = vm->result();
      const std::string diff =
          compare_user_fields(rv, oracle_state(*vm, ExecTier::kVm),
                              opts.float_tol);
      if (!diff.empty()) return DiffFailure{"values", tag(diff)};

      if (tree) {
        const streaming::SessionEpoch et = tree->apply(sc.batches[bi]);
        if (ev.warm != et.warm)
          return DiffFailure{"tiers",
                             tag("warm/cold disagreement across tiers")};
        if (ev.stats.supersteps != et.stats.supersteps)
          return DiffFailure{
              "tiers", tag("superstep counts diverge: vm " +
                           std::to_string(ev.stats.supersteps) + " vs tree " +
                           std::to_string(et.stats.supersteps))};
        const DvRunResult rt = tree->result();
        if (rv.state.size() != rt.state.size())
          return DiffFailure{"tiers", tag("state sizes diverge")};
        for (std::size_t i = 0; i < rv.state.size(); ++i)
          if (!value_bits_equal(rv.state[i], rt.state[i]))
            return DiffFailure{
                "tiers", tag("state word " + std::to_string(i) + ": vm " +
                             show(rv.state[i]) + " vs tree " +
                             show(rt.state[i]))};
      }

      if (buffered) {
        // Forced-buffered oracle session: identical decisions, superstep
        // counts and state. Ints/bools bit-exact; floats numerically
        // exact up to ±0.0 (CAS-min tie order can flip a zero's sign).
        const streaming::SessionEpoch eb = buffered->apply(sc.batches[bi]);
        if (ev.warm != eb.warm)
          return DiffFailure{
              "fold_path", tag("warm/cold disagreement vs buffered")};
        if (ev.stats.supersteps != eb.stats.supersteps)
          return DiffFailure{
              "fold_path",
              tag("superstep counts diverge: atomic " +
                  std::to_string(ev.stats.supersteps) + " vs buffered " +
                  std::to_string(eb.stats.supersteps))};
        const DvRunResult rb = buffered->result();
        if (rv.state.size() != rb.state.size())
          return DiffFailure{"fold_path", tag("state sizes diverge")};
        for (std::size_t i = 0; i < rv.state.size(); ++i) {
          const bool ok = rv.state[i].type == Type::kFloat
                              ? value_close(rv.state[i], rb.state[i], 0.0)
                              : value_bits_equal(rv.state[i], rb.state[i]);
          if (!ok)
            return DiffFailure{
                "fold_path", tag("state word " + std::to_string(i) +
                                 ": default " + show(rv.state[i]) +
                                 " vs buffered " + show(rb.state[i]))};
        }
      }
      if (afloat) {
        // Float + opt-in: fetch order re-associates the sum, so only
        // ε-closeness of the user-visible fields is required.
        const streaming::SessionEpoch ef = afloat->apply(sc.batches[bi]);
        if (ev.warm != ef.warm)
          return DiffFailure{
              "fold_path", tag("warm/cold disagreement vs atomic_float")};
        const std::string fdiff = compare_user_fields(
            afloat->result(), vm->result(), opts.float_tol);
        if (!fdiff.empty())
          return DiffFailure{"fold_path", tag("atomic_float: " + fdiff)};
      }
    }
  } catch (const std::exception& e) {
    return DiffFailure{"exception", e.what()};
  }
  return std::nullopt;
}

}  // namespace deltav::dv::testing
