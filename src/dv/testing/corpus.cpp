#include "dv/testing/corpus.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace deltav::dv::testing {

namespace {

constexpr const char* kMagic = "--! dv_fuzz v1";

std::string format_value(const Value& v) {
  switch (v.type) {
    case Type::kInt: return "int " + std::to_string(v.i);
    case Type::kBool: return std::string("bool ") + (v.b ? "1" : "0");
    case Type::kFloat: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "float %.17g", v.f);
      return buf;
    }
    default: DV_FAIL("unsupported param value type");
  }
}

Value parse_value(const std::string& type, const std::string& text) {
  if (type == "int") return Value::of_int(std::stoll(text));
  if (type == "bool") return Value::of_bool(text != "0");
  if (type == "float") return Value::of_float(std::stod(text));
  DV_FAIL("unsupported param value type '" << type << "'");
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string serialize_case(const FuzzCase& fc, const std::string& note) {
  std::ostringstream os;
  os << kMagic << "\n";
  if (!note.empty()) {
    // Keep the note single-line so it stays a valid comment.
    std::string clean = note;
    for (char& c : clean)
      if (c == '\n' || c == '\r') c = ' ';
    os << "--! note " << clean << "\n";
  }
  os << "--! graph " << fc.graph.describe() << "\n";
  os << "--! workers";
  for (const int w : fc.worker_counts) os << " " << w;
  os << "\n";
  for (const auto& [name, value] : fc.params)
    os << "--! param " << name << " " << format_value(value) << "\n";
  os << fc.source;
  if (fc.source.empty() || fc.source.back() != '\n') os << "\n";
  return os.str();
}

FuzzCase parse_case(const std::string& text) {
  FuzzCase fc;
  fc.worker_counts.clear();
  std::istringstream is(text);
  std::string line;
  bool saw_magic = false;
  std::ostringstream source;
  bool in_source = false;
  while (std::getline(is, line)) {
    if (!in_source && line.rfind("--!", 0) == 0) {
      std::istringstream ls(line.substr(3));
      std::string key;
      ls >> key;
      if (key == "dv_fuzz") {
        saw_magic = true;
      } else if (key == "note") {
        // informational only
      } else if (key == "graph") {
        std::string rest;
        std::getline(ls, rest);
        fc.graph = GraphSpec::parse(rest);
      } else if (key == "workers") {
        int w;
        while (ls >> w) fc.worker_counts.push_back(w);
      } else if (key == "param") {
        std::string name, type, value;
        ls >> name >> type >> value;
        DV_CHECK_MSG(!name.empty() && !type.empty() && !value.empty(),
                     "malformed corpus param line: " << line);
        fc.params[name] = parse_value(type, value);
      } else {
        DV_FAIL("unknown corpus metadata key '" << key << "'");
      }
      continue;
    }
    in_source = true;
    source << line << "\n";
  }
  DV_CHECK_MSG(saw_magic, "corpus entry lacks the '" << kMagic
                                                     << "' header");
  if (fc.worker_counts.empty()) fc.worker_counts = {1, 4};
  fc.source = source.str();
  return fc;
}

std::vector<std::pair<std::string, FuzzCase>> load_corpus_dir(
    const std::string& dir) {
  std::vector<std::pair<std::string, FuzzCase>> out;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return out;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".dv")
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in(p);
    DV_CHECK_MSG(in.good(), "cannot read corpus entry " << p.string());
    std::ostringstream text;
    text << in.rdbuf();
    try {
      out.emplace_back(p.string(), parse_case(text.str()));
    } catch (const std::exception& e) {
      DV_FAIL("corpus entry " << p.string() << ": " << e.what());
    }
  }
  return out;
}

std::string save_case(const std::string& dir, const FuzzCase& fc,
                      const std::string& note) {
  const std::string text = serialize_case(fc, note);
  std::filesystem::create_directories(dir);
  char name[32];
  std::snprintf(name, sizeof name, "case_%016llx.dv",
                static_cast<unsigned long long>(fnv1a(text)));
  const std::string path = (std::filesystem::path(dir) / name).string();
  std::ofstream out(path);
  DV_CHECK_MSG(out.good(), "cannot write corpus entry " << path);
  out << text;
  return path;
}

}  // namespace deltav::dv::testing
