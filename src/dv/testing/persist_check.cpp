#include "dv/testing/persist_check.h"

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dv/compiler.h"
#include "dv/persist/fault.h"
#include "dv/persist/snapshot.h"
#include "dv/streaming/stream_session.h"

namespace deltav::dv::testing {

namespace {

bool value_bits_equal(const Value& a, const Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Type::kInt: return a.i == b.i;
    case Type::kBool: return a.b == b.b;
    case Type::kFloat:
      return std::bit_cast<std::uint64_t>(a.f) ==
             std::bit_cast<std::uint64_t>(b.f);
    default: return true;
  }
}

std::string show(const Value& v) {
  std::ostringstream os;
  switch (v.type) {
    case Type::kInt: os << v.i; break;
    case Type::kBool: os << (v.b ? "true" : "false"); break;
    case Type::kFloat: os << v.f; break;
    default: os << "<unit>"; break;
  }
  return os.str();
}

/// Same worker ↔ scheduler/partition pairing as differential.cpp.
pregel::EngineOptions engine_for(int workers) {
  pregel::EngineOptions o;
  o.num_workers = workers;
  const bool even = workers % 2 == 0;
  o.partition =
      even ? pregel::PartitionScheme::kHash : pregel::PartitionScheme::kBlock;
  o.schedule =
      even ? pregel::ScheduleMode::kWorkQueue : pregel::ScheduleMode::kScanAll;
  o.cluster.machines = 2;
  o.cluster.workers_per_machine = 2;
  return o;
}

/// Bit-exact comparison of the complete state vector (every field,
/// including compiler-internal accumulators and memos — restore
/// equivalence is stronger than user-visible value agreement).
std::string state_diff(const DvRunResult& got, const DvRunResult& want) {
  if (got.state.size() != want.state.size())
    return "state sizes differ: " + std::to_string(got.state.size()) +
           " vs " + std::to_string(want.state.size());
  for (std::size_t i = 0; i < want.state.size(); ++i)
    if (!value_bits_equal(got.state[i], want.state[i]))
      return "state word " + std::to_string(i) + ": " + show(got.state[i]) +
             " vs reference " + show(want.state[i]);
  return {};
}

/// What the reference session observed for one epoch.
struct EpochRecord {
  bool warm = false;
  const char* blocker = nullptr;
  bool compacted = false;
  EpochStats stats;
};

EpochRecord record_of(const streaming::SessionEpoch& ep) {
  EpochRecord r;
  r.warm = ep.warm;
  r.blocker = ep.blocker;
  r.compacted = ep.compacted;
  r.stats = ep.stats;
  return r;
}

std::string epoch_diff(const streaming::SessionEpoch& got,
                       const EpochRecord& want) {
  const auto sv = [](const char* s) {
    return s == nullptr ? std::string_view("<warm>") : std::string_view(s);
  };
  if (got.warm != want.warm)
    return std::string("warm/cold decision diverged: replay went ") +
           (got.warm ? "warm" : "cold") + ", reference went " +
           (want.warm ? "warm" : "cold");
  if (sv(got.blocker) != sv(want.blocker))
    return "blocker diverged: \"" + std::string(sv(got.blocker)) +
           "\" vs reference \"" + std::string(sv(want.blocker)) + "\"";
  if (got.compacted != want.compacted)
    return std::string("compaction decision diverged: replay ") +
           (got.compacted ? "compacted" : "did not compact") +
           ", reference did the opposite";
  const EpochStats& a = got.stats;
  const EpochStats& b = want.stats;
  if (a.supersteps != b.supersteps)
    return "supersteps diverged: " + std::to_string(a.supersteps) + " vs " +
           std::to_string(b.supersteps);
  if (a.messages != b.messages)
    return "message counts diverged: " + std::to_string(a.messages) +
           " vs " + std::to_string(b.messages);
  if (a.deltas_applied != b.deltas_applied)
    return "Δ-application counts diverged: " +
           std::to_string(a.deltas_applied) + " vs " +
           std::to_string(b.deltas_applied);
  if (a.woken != b.woken)
    return "woken-frontier sizes diverged: " + std::to_string(a.woken) +
           " vs " + std::to_string(b.woken);
  return {};
}

}  // namespace

std::optional<DiffFailure> check_persist_case(const StreamCase& sc, Rng& rng,
                                              const PersistCheckOptions& opts) {
  try {
    CompileOptions inc;
    inc.incrementalize = true;
    const CompiledProgram cp = compile(sc.source, inc);
    const graph::CsrGraph base = sc.graph.build();

    const auto session_options = [&](ExecTier tier) {
      streaming::SessionOptions so;
      so.run.engine = engine_for(opts.workers);
      so.run.tier = tier;
      so.run.params = sc.params;
      return so;
    };

    // ----- Reference trajectory (uninterrupted, VM tier). ---------------
    std::vector<std::vector<std::uint8_t>> mid;  // mid-convergence bytes
    streaming::SessionOptions ref_so = session_options(ExecTier::kVm);
    ref_so.checkpoint_every = opts.checkpoint_every;
    ref_so.checkpoint_sink = [&mid](const std::vector<std::uint8_t>& b) {
      mid.push_back(b);
    };
    const auto ref = streaming::make_stream_session(cp, base, ref_so);
    ref->converge();

    // boundary[k] / ref_state[k]: snapshot and state after k batches.
    std::vector<std::vector<std::uint8_t>> boundary;
    std::vector<DvRunResult> ref_state;
    std::vector<EpochRecord> epochs;
    boundary.push_back(ref->save_bytes());
    ref_state.push_back(ref->result());
    for (const graph::MutationBatch& batch : sc.batches) {
      epochs.push_back(record_of(ref->apply(batch)));
      boundary.push_back(ref->save_bytes());
      ref_state.push_back(ref->result());
    }

    // Replays the remaining batches on a restored session, comparing every
    // epoch against the reference records.
    const auto replay_tail =
        [&](streaming::DvStreamSession& s, std::size_t from,
            const std::string& who) -> std::optional<DiffFailure> {
      for (std::size_t bi = from; bi < sc.batches.size(); ++bi) {
        const streaming::SessionEpoch ep = s.apply(sc.batches[bi]);
        const std::string tag =
            who + ", replayed epoch " + std::to_string(bi + 1) + ": ";
        if (std::string d = epoch_diff(ep, epochs[bi]); !d.empty())
          return DiffFailure{"persist-epoch", tag + d};
        if (std::string d = state_diff(s.result(), ref_state[bi + 1]);
            !d.empty())
          return DiffFailure{"persist-state", tag + d};
      }
      return std::nullopt;
    };

    // ----- Boundary sweep: every epoch boundary is a kill-point. --------
    for (std::size_t k = 0; k < boundary.size(); ++k) {
      const std::string who = "boundary snapshot after epoch " +
                              std::to_string(k);
      const auto s = streaming::DvStreamSession::restore_bytes(
          cp, boundary[k], session_options(ExecTier::kVm));
      if (!s->converged())
        return DiffFailure{"persist-state",
                           who + ": restored as unconverged"};
      if (s->epoch() != k)
        return DiffFailure{"persist-state",
                           who + ": restored epoch counter " +
                               std::to_string(s->epoch())};
      if (std::string d = state_diff(s->result(), ref_state[k]); !d.empty())
        return DiffFailure{"persist-state", who + ": " + d};
      if (auto f = replay_tail(*s, k, who)) return f;
    }

    // ----- Cross-tier restore: VM-written snapshot, tree resume. --------
    {
      const std::size_t k = boundary.size() / 2;
      const std::string who = "tree-tier restore of the epoch-" +
                              std::to_string(k) + " snapshot";
      const auto s = streaming::DvStreamSession::restore_bytes(
          cp, boundary[k], session_options(ExecTier::kTree));
      if (std::string d = state_diff(s->result(), ref_state[k]); !d.empty())
        return DiffFailure{"persist-tiers", who + ": " + d};
      if (auto f = replay_tail(*s, k, who)) return f;
    }

    // ----- Mid-convergence kill-points (sampled). -----------------------
    std::vector<std::size_t> picks;
    if (mid.size() <= opts.max_mid_resumes) {
      for (std::size_t i = 0; i < mid.size(); ++i) picks.push_back(i);
    } else {
      for (std::size_t i = 0; i < opts.max_mid_resumes; ++i)
        picks.push_back(rng.next_below(mid.size()));
    }
    for (const std::size_t mi : picks) {
      const std::string who = "mid-run checkpoint " + std::to_string(mi);
      const auto s = streaming::DvStreamSession::restore_bytes(
          cp, mid[mi], session_options(ExecTier::kVm));
      if (s->converged())
        return DiffFailure{"persist-midrun",
                           who + ": restored as already converged"};
      s->converge();
      const std::size_t e = s->epoch();  // batches [0, e) were applied
      if (e >= ref_state.size())
        return DiffFailure{"persist-midrun",
                           who + ": implausible epoch counter " +
                               std::to_string(e)};
      if (std::string d = state_diff(s->result(), ref_state[e]); !d.empty())
        return DiffFailure{"persist-midrun",
                           who + ", after resuming converge(): " + d};
      if (auto f = replay_tail(*s, e, who)) return f;
    }

    // ----- Corruption sweep: every fault must be detected. --------------
    const std::vector<std::uint8_t>& victim =
        boundary[rng.next_below(boundary.size())];
    const auto expect_rejected =
        [&](const persist::FaultPlan& plan) -> std::optional<DiffFailure> {
      const std::vector<std::uint8_t> bad =
          persist::apply_fault(victim, plan);
      try {
        (void)streaming::DvStreamSession::restore_bytes(
            cp, bad, session_options(ExecTier::kVm));
      } catch (const persist::SnapshotError&) {
        return std::nullopt;  // detected, as promised
      }
      return DiffFailure{"persist-corruption",
                         "corrupted snapshot (" + persist::describe(plan) +
                             ") restored without an error"};
    };
    std::vector<persist::FaultPlan> plans;
    plans.push_back(persist::FaultPlan::truncate_at(0));
    plans.push_back(persist::FaultPlan::truncate_at(victim.size() - 1));
    plans.push_back(persist::FaultPlan::flip_byte(0));
    plans.push_back(persist::FaultPlan::flip_byte(victim.size() - 1));
    for (std::size_t i = 0; i < opts.corruptions; ++i) {
      const std::size_t at = rng.next_below(victim.size());
      if (rng.next_bool())
        plans.push_back(persist::FaultPlan::truncate_at(at));
      else
        plans.push_back(persist::FaultPlan::flip_byte(
            at, static_cast<std::uint8_t>(1 + rng.next_below(255))));
    }
    for (const persist::FaultPlan& plan : plans)
      if (auto f = expect_rejected(plan)) return f;

    // Sanity: the unfaulted bytes still restore (the sweep above would
    // pass vacuously if restore rejected everything).
    (void)streaming::DvStreamSession::restore_bytes(
        cp, victim, session_options(ExecTier::kVm));
  } catch (const std::exception& e) {
    return DiffFailure{"exception", e.what()};
  }
  return std::nullopt;
}

}  // namespace deltav::dv::testing
