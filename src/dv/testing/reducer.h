// Greedy shrinker for failing fuzz cases.
//
// Works on the structured ProgramSpec rather than source text: candidate
// reductions delete statements and patterns, strip decorations (edge
// weights, params, cross-field references, absorbing dips), simplify until
// clauses, shrink the graph, and drop worker counts. Each candidate is
// re-rendered and re-checked through the caller's predicate; a reduction is
// kept only when the failure reproduces, and the loop runs to a fixpoint.
//
// The predicate should compare failure *kinds*, not mere failure: a sloppy
// "any failure" predicate lets the reducer wander onto an unrelated bug
// (classic test-case-reduction slippage).
#pragma once

#include <functional>
#include <vector>

#include "dv/testing/program_gen.h"

namespace deltav::dv::testing {

struct ReducedCase {
  ProgramSpec spec;
  GraphSpec graph;
  std::vector<int> workers;
  int attempts = 0;  // predicate evaluations spent
};

/// Shrinks (spec, graph, workers) while `still_fails(rendered case)` holds.
/// `max_attempts` bounds total predicate evaluations.
ReducedCase reduce_case(ProgramSpec spec, GraphSpec graph,
                        std::vector<int> workers,
                        const std::function<bool(const FuzzCase&)>& still_fails,
                        int max_attempts = 300);

}  // namespace deltav::dv::testing
