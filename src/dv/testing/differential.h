// Differential execution harness: one FuzzCase in, one verdict out.
//
// For each case the harness compiles the program twice (ΔV and ΔV*), runs
// both on the case's graph across the worker-count axis, and checks the
// properties the paper claims for the incrementalizing pipeline:
//
//   compile      both variants compile; the final-stage verifier accepts
//                both ASTs
//   codegen      single-statement programs survive the C++ backend
//   values       user-visible vertex state agrees between ΔV and ΔV*
//                (and between worker counts, for the ΔV variant)
//   meaningful   every live ΔV message is meaningful (Definition 1):
//                never an identity payload with zero transition counters
//   eq11         folding the live ΔV message stream per (receiver, site)
//                with apply_delta reproduces the final memoized
//                accumulator state (Eq. 11 checked end-to-end)
//   messages     messages(ΔV) ≤ messages(ΔV*)
//   determinism  two identical ΔV runs produce bit-identical state
//   tiers        re-running both variants on the tree-interpreter tier
//                reproduces the bytecode VM's state bit-for-bit, with
//                identical message/byte counts and an identical replayed
//                Eq. 11 message stream
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "dv/testing/program_gen.h"

namespace deltav::dv::testing {

struct DiffOptions {
  /// Relative/absolute tolerance for float comparisons. Reassociation is
  /// expected: combiners and worker counts reorder float folds, and the
  /// ΔV product accumulator multiplies ratios instead of raw values.
  double float_tol = 1e-6;
  std::size_t max_supersteps = 5000;
  bool check_codegen = true;
  bool check_eq11 = true;
  bool check_message_counts = true;
  bool check_determinism = true;
  /// Cross-check the bytecode VM against the tree interpreter (the
  /// reference semantics): bit-exact state, equal message/byte counts,
  /// bit-exact Eq. 11 stream replay.
  bool check_tiers = true;
  /// Third tier axis: AOT-compile both variants (--tier=native) and hold
  /// them to the same bit-exact contract as vm↔tree — and fail outright
  /// if the native build silently fell back to the VM. Checked only when
  /// native::native_unavailable_reason() is empty (no host compiler →
  /// the axis is skipped, and callers should say so).
  bool check_native = true;
  /// Fold-path axis: re-run ΔV with fold_path = kAtomic on both tiers and
  /// require the lock-free pending-slot path to reproduce the buffered
  /// run exactly — same state (bit-exact for ints/bools; floats compare
  /// exactly up to ±0.0, since CAS-min tie order can flip a zero's sign)
  /// and the same superstep count. A second run with the float + opt-in
  /// (atomic_float) is held only to float_tol: concurrent fetch order
  /// re-associates the sum by design.
  bool check_fold_path = true;
};

struct DiffFailure {
  std::string check;   // which property failed (names above)
  std::string detail;  // human-readable evidence
};

/// Runs every check; returns the first failure, or nullopt when the case
/// passes. Never throws for program-level misbehaviour — compile/run
/// exceptions are converted into failures.
std::optional<DiffFailure> check_case(const FuzzCase& fc,
                                      const DiffOptions& opts = {});

}  // namespace deltav::dv::testing
