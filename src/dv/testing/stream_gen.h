// Streamed differential fuzzing: (program, graph, mutation-stream) triples
// whose warm incremental re-execution is cross-checked per batch against a
// from-scratch ΔV* run on the mutated graph, and bit-for-bit across
// execution tiers.
//
// Warm resume is exactly value-preserving only when the program's
// converged state is a function of the graph (a fixpoint) rather than of
// the execution path that reached it. The generator therefore draws from
// warm-exact families and matches each mutation stream to its program's
// retraction capability:
//
//   publish-fold      static per-vertex masses folded by one of the six
//                     operators; arbitrary insert/delete/addv/delv streams
//                     for +/×/&&/|| (the ×/&&/|| streams deliberately walk
//                     through absorbing-element transitions), insert-only
//                     for min/max (retraction blocker);
//   guarded-monotone  SSSP / CC / max-gossip / reachability relaxations;
//                     insert-only streams (removals would need retraction
//                     of a monotone self-referencing fold);
//   multi-site        two independent publish sites in one statement,
//                     stream restricted by the weaker of the two ops;
//   blocked           min/max publishes paired with removal streams under
//                     minmax_memo_k = 0 (the memo disabled restores the
//                     legacy retraction blocker), and feedback recurrences
//                     under `until { i >= K }` (the loop count is
//                     semantic, so warm resume would replay the recurrence
//                     past the from-scratch answer) — every batch must
//                     fall back cold and still agree with the oracle
//                     (expect_warm = false);
//   retract           the retraction-memo families (DESIGN.md §11):
//                     min/max publishes whose streams target the current
//                     extremum supplier for deletion (driving the k-best
//                     buffer through eviction, retraction and underflow
//                     refold), a max-of-min capacity shape, and the pure
//                     (unguarded) SSSP form on forward-edge DAGs with
//                     strictly positive weights — all with rotating small
//                     memo_k so underflow actually fires, and every batch
//                     expected warm.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dv/testing/differential.h"
#include "dv/testing/program_gen.h"
#include "graph/dynamic_graph.h"

namespace deltav::dv::testing {

struct StreamCase {
  std::string source;
  std::map<std::string, Value> params;
  GraphSpec graph;
  std::vector<graph::MutationBatch> batches;
  std::string family;       // diagnostics only
  bool expect_warm = true;  // generator promises every batch resumes warm
  /// Retraction-memo capacity for the sessions (SessionOptions::
  /// minmax_memo_k). The blocked min/max family pins 0 so the legacy
  /// blocker still fires; the retract families rotate small values so
  /// buffer underflow and targeted refolds are actually exercised.
  std::size_t memo_k = 8;
  /// Oracle variant: from-scratch ΔV* by default. The retract-sssp
  /// family flips to a from-scratch incremental (ΔV) run — its dense
  /// reassign under `until { stable }` never reaches message quiescence
  /// in ΔV* (the kKCore asymmetry: on-assign pushes re-fire every
  /// superstep), while memoized ΔV folds suppress the no-change sends.
  bool oracle_star = true;
};

/// Draws a random warm-exact (or deliberately blocked) stream case.
StreamCase generate_stream_case(Rng& rng);

/// Renders the case for failure reports / saved repros: source, graph
/// spec, and the mutation stream in mutation_io format.
std::string describe(const StreamCase& sc);

struct StreamDiffOptions {
  double float_tol = 1e-6;
  /// Engine worker count for the sessions (differential.cpp's worker ↔
  /// scheduler pairing applies).
  int workers = 4;
  /// Also run a tree-interpreter session and require bit-identical state
  /// and equal superstep counts after every batch.
  bool check_tiers = true;
  /// Fold-path axis: also run a forced-buffered session and require it to
  /// match the default (atomic-where-proven) session after every batch —
  /// same state (ints/bools bit-exact, floats exact up to ±0.0), same
  /// superstep count, same warm/cold decision. A float + opt-in session
  /// (atomic_float) rides along held only to float_tol.
  bool check_fold_path = true;
};

/// Runs the case end-to-end; returns the first failure or nullopt.
/// Checks, after every batch: the epoch resumed warm iff promised, the
/// session state is value-close to a from-scratch ΔV* run on the
/// materialized mutated graph, and (check_tiers) the vm/tree sessions
/// agree bit-for-bit.
std::optional<DiffFailure> check_stream_case(
    const StreamCase& sc, const StreamDiffOptions& opts = {});

}  // namespace deltav::dv::testing
