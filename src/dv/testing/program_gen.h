// Seeded random ΔV program generator for differential fuzzing.
//
// Programs are generated as structured specs (ProgramSpec) rather than raw
// text so the reducer (reducer.h) can shrink a failing case by deleting
// statements/patterns and clearing decorations, then re-render.
//
// Every pattern in the pool is constructed to keep the two compiled
// variants (ΔV and ΔV*) observationally equivalent and terminating:
//
//  * Value streams never revisit the operator identity (a prod value that
//    returns to exactly 1.0, or an oscillating boolean, would let ΔV* skip
//    an identity resend that ΔV must pay a null/denull pair for, breaking
//    the messages(ΔV) ≤ messages(ΔV*) property on legitimate programs).
//  * Fields feeding an aggregation site are either reassigned on every
//    body execution or updated guarded-monotone w.r.t. the site operator,
//    so ΔV*'s non-memoized folds (which only see this superstep's senders)
//    agree with ΔV's memoized accumulators.
//  * `stable` until clauses are only attached to guarded-monotone
//    patterns — an unconditional reassign never quiesces under ΔV*.
//  * Numerics stay finite and bounded: sums are damped contractions,
//    products are clamped into {0} ∪ (1, 2], int growth is clamped, and
//    `infty` only appears in idempotent min relaxations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dv/runtime/value.h"
#include "graph/csr_graph.h"

namespace deltav::dv::testing {

/// A deterministic description of an input graph; build() materializes it.
struct GraphSpec {
  // kDag draws m forward edges (src < dst, always directed): acyclic by
  // construction, so min-plus feedback programs drain stale state in at
  // most depth supersteps after a deletion — the shape the retraction-memo
  // stream families (stream_gen family "retract-sssp") rely on to keep
  // warm repair fast even though the program feeds its fold back to
  // itself. Weighted kDag draws strictly positive weights in [0.1, 2.1).
  enum class Kind { kRmat, kPath, kCycle, kStar, kComplete, kEmpty, kDag };
  Kind kind = Kind::kRmat;
  std::size_t n = 32;
  std::size_t m = 96;
  std::uint64_t seed = 1;
  bool directed = true;
  bool weighted = false;  // only the R-MAT generator produces weights

  graph::CsrGraph build() const;
  /// "kind=rmat n=32 m=96 seed=1 directed=1 weighted=0"
  std::string describe() const;
  /// Parses describe() output. Throws CheckError on malformed input.
  static GraphSpec parse(const std::string& text);
};

enum class PatternKind {
  kSumDamped,     // float contraction: f = 0.125 + c*(Σ/graphSize)
  kSumCount,      // int: f = min(Σ u.f, 1000)
  kSumPair,       // HITS-like coupled pair of float sum sites
  kMinRelaxFloat, // SSSP-like guarded relax over u.f + u.edge; infty init
  kMinRelaxInt,   // CC-like guarded min over vertex ids
  kMaxGossip,     // guarded max over vertex ids
  kProdClamp,     // float product clamped to (1,2], optional absorbing flip
  kOrReach,       // guarded monotone reachability (|| absorbing = true)
  kAndGuard,      // guarded monotone && (absorbing = false)
  kAndEvery,      // unconditional && reassign (count-until only)
};

const char* pattern_kind_name(PatternKind k);

/// One update pattern inside a statement. `id` is assigned once at
/// generation time and names the pattern's field(s) (`f<id>`, `g<id>`) —
/// it stays stable under reduction so cross-field references survive
/// pattern deletion (a dangling reference is simply dropped at render).
struct PatternSpec {
  PatternKind kind{};
  int id = 0;
  GraphDir dir = GraphDir::kIn;
  GraphDir dir2 = GraphDir::kOut;  // kSumPair's second site
  bool use_edge = false;           // element expression mixes in u.edge
  bool use_param_scale = false;    // kSumDamped: damping from float param c
  bool use_degree_init = false;    // kSumDamped: init = 1.0 / (|д| + 1)
  bool use_src_param = false;      // source vertex from int param src
  bool absorbing_dip = false;      // kProdClamp: product above a threshold
                                   // flips the value to the absorbing 0.0
  int src_literal = 0;             // source vertex when !use_src_param
  std::string cross_field;         // earlier float field mixed into update
};

struct UntilSpec {
  enum class Kind { kCount, kParamCount, kStable, kStableCapped };
  Kind kind = Kind::kCount;
  int bound = 3;  // kCount / kStableCapped cap
};

struct StmtSpec {
  bool is_iter = true;
  UntilSpec until;  // meaningful for iter statements only
  std::vector<PatternSpec> patterns;
};

struct ProgramSpec {
  bool undirected = false;
  int steps_value = 3;   // binding for `param steps` when referenced
  int src_value = 0;     // binding for `param src` when referenced
  double c_value = 0.5;  // binding for `param c` when referenced
  std::vector<StmtSpec> stmts;
};

struct GenOptions {
  int max_stmts = 3;
  int max_patterns_per_stmt = 2;
  std::size_t max_vertices = 48;
  double empty_graph_prob = 0.02;
};

/// Draws a random well-typed, terminating, variant-equivalent program.
ProgramSpec generate_spec(Rng& rng, const GenOptions& opts = {});

/// Renders the spec to ΔV source text.
std::string render(const ProgramSpec& spec);

/// Parameter bindings for every `param` the rendered source declares.
std::map<std::string, Value> param_bindings(const ProgramSpec& spec);

/// Draws a graph compatible with the spec (directedness, weights, size).
GraphSpec random_graph_spec(Rng& rng, const ProgramSpec& spec,
                            const GenOptions& opts = {});

/// A fully-bound differential test case: program text, parameter values,
/// input graph, and the engine worker counts to sweep.
struct FuzzCase {
  std::string source;
  std::map<std::string, Value> params;
  GraphSpec graph;
  std::vector<int> worker_counts{1, 4};
};

FuzzCase make_case(const ProgramSpec& spec, const GraphSpec& graph,
                   std::vector<int> worker_counts = {1, 4});

}  // namespace deltav::dv::testing
