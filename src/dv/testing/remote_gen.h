// Seeded random generator + differential harness for remote-read programs.
//
// The classic program generator (program_gen.h) cannot express
// `remote(u).f`, and the classic harness's properties (Eq. 11 replay,
// message-count inequality) do not apply to request/reply channel traffic.
// This family generates (program, graph, worker-sweep) triples whose iter
// statements chase remote reads, and checks the one property the lowering
// owes the language: the 3-phase request/reply pipeline is observationally
// identical to the direct reference interpretation of kRemoteRead.
//
// Generated programs are total by construction: every remote iter is
// bounded (`until { i >= K }`, K in 1..4), targets are wrapped modulo the
// vertex count by the runtime, and updates stay in int space, so every
// tier comparison is bit-exact — there is no float tolerance here.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dv/testing/differential.h"
#include "dv/testing/program_gen.h"

namespace deltav::dv::testing {

/// One remote-read differential case.
struct RemoteCase {
  std::string source;
  GraphSpec graph;
  std::vector<int> worker_counts{1, 4};
};

/// Draws a random well-typed, terminating remote-read program (1–2 int
/// fields, optional aggregation seed statement, 1–2 bounded remote iters)
/// plus a compatible graph.
RemoteCase generate_remote_case(Rng& rng);

struct RemoteDiffOptions {
  std::size_t max_supersteps = 5000;
};

/// Checks, for every worker count in the sweep:
///   compile   lowered (ΔV, ΔV*) and reference (lower_remote = false)
///             variants all compile and verify
///   tiers     lowered tree ≡ lowered vm, bit-exact (state words,
///             supersteps, message/byte counts), both variants
///   lowering  lowered ≡ reference interpretation on the tree tier:
///             user-visible state bit-exact (the tentpole contract)
///   variants  ΔV ≡ ΔV* user-visible state, bit-exact
///   workers   user-visible state identical across the worker sweep
/// Returns the first failure, or nullopt. Compile/run exceptions become
/// failures, never escapes.
std::optional<DiffFailure> check_remote_case(const RemoteCase& rc,
                                             const RemoteDiffOptions& opts = {});

}  // namespace deltav::dv::testing
