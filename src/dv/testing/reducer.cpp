#include "dv/testing/reducer.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace deltav::dv::testing {

namespace {

bool has_decorations(const PatternSpec& p) {
  return p.use_edge || p.use_param_scale || p.use_degree_init ||
         p.use_src_param || p.absorbing_dip || !p.cross_field.empty();
}

void clear_decorations(PatternSpec& p) {
  p.use_edge = false;
  p.use_param_scale = false;
  p.use_degree_init = false;
  p.use_src_param = false;
  p.absorbing_dip = false;
  p.cross_field.clear();
}

/// Enumerates candidate one-step reductions of `spec`; returns them via
/// `emit`. Candidates are ordered most-aggressive-first so the greedy loop
/// takes big bites before polishing.
template <typename Emit>
void spec_candidates(const ProgramSpec& spec, Emit&& emit) {
  if (spec.stmts.size() > 1) {
    for (std::size_t i = 0; i < spec.stmts.size(); ++i) {
      ProgramSpec c = spec;
      c.stmts.erase(c.stmts.begin() + static_cast<std::ptrdiff_t>(i));
      emit(std::move(c));
    }
  }
  for (std::size_t i = 0; i < spec.stmts.size(); ++i) {
    if (spec.stmts[i].patterns.size() <= 1) continue;
    for (std::size_t j = 0; j < spec.stmts[i].patterns.size(); ++j) {
      ProgramSpec c = spec;
      c.stmts[i].patterns.erase(c.stmts[i].patterns.begin() +
                                static_cast<std::ptrdiff_t>(j));
      emit(std::move(c));
    }
  }
  for (std::size_t i = 0; i < spec.stmts.size(); ++i) {
    for (std::size_t j = 0; j < spec.stmts[i].patterns.size(); ++j) {
      if (!has_decorations(spec.stmts[i].patterns[j])) continue;
      ProgramSpec c = spec;
      clear_decorations(c.stmts[i].patterns[j]);
      emit(std::move(c));
    }
  }
  for (std::size_t i = 0; i < spec.stmts.size(); ++i) {
    const auto& st = spec.stmts[i];
    if (!st.is_iter) continue;
    if (st.until.kind == UntilSpec::Kind::kParamCount) {
      ProgramSpec c = spec;
      c.stmts[i].until.kind = UntilSpec::Kind::kCount;
      c.stmts[i].until.bound = 2;
      emit(std::move(c));
    }
    if (st.until.kind == UntilSpec::Kind::kStableCapped) {
      ProgramSpec c = spec;
      c.stmts[i].until.kind = UntilSpec::Kind::kStable;
      emit(std::move(c));
    }
    if (st.until.kind == UntilSpec::Kind::kCount && st.until.bound > 1) {
      ProgramSpec c = spec;
      c.stmts[i].until.bound = std::max(1, st.until.bound / 2);
      emit(std::move(c));
    }
  }
}

template <typename Emit>
void graph_candidates(const GraphSpec& g, Emit&& emit) {
  if (g.kind == GraphSpec::Kind::kEmpty) return;
  const std::size_t min_n = g.kind == GraphSpec::Kind::kCycle ? 3 : 2;
  if (g.n > min_n) {
    GraphSpec c = g;
    c.n = std::max<std::size_t>(min_n, g.n / 2);
    c.m = std::max<std::size_t>(c.n, g.m / 2);
    emit(c);
  }
  if (g.kind == GraphSpec::Kind::kRmat) {
    GraphSpec c = g;
    c.kind = GraphSpec::Kind::kPath;
    c.m = 0;
    c.weighted = false;
    emit(c);
    if (g.weighted) {
      GraphSpec w = g;
      w.weighted = false;
      emit(w);
    }
  }
}

}  // namespace

ReducedCase reduce_case(ProgramSpec spec, GraphSpec graph,
                        std::vector<int> workers,
                        const std::function<bool(const FuzzCase&)>& still_fails,
                        int max_attempts) {
  ReducedCase best{std::move(spec), graph, std::move(workers), 0};

  const auto try_candidate = [&](const ProgramSpec& s, const GraphSpec& g,
                                 const std::vector<int>& w) {
    if (best.attempts >= max_attempts) return false;
    ++best.attempts;
    return still_fails(make_case(s, g, w));
  };

  bool progressed = true;
  while (progressed && best.attempts < max_attempts) {
    progressed = false;

    // The candidate enumerators hold a reference to `best` — adopting a
    // winner mid-enumeration would free the very spec still being walked,
    // so stash it and commit only after the enumerator returns.
    std::optional<ProgramSpec> spec_won;
    spec_candidates(best.spec, [&](ProgramSpec c) {
      if (spec_won) return;
      if (try_candidate(c, best.graph, best.workers))
        spec_won = std::move(c);
    });
    if (spec_won) {
      best.spec = std::move(*spec_won);
      progressed = true;
      continue;
    }

    std::optional<GraphSpec> graph_won;
    graph_candidates(best.graph, [&](const GraphSpec& c) {
      if (graph_won) return;
      if (try_candidate(best.spec, c, best.workers)) graph_won = c;
    });
    if (graph_won) {
      best.graph = *graph_won;
      progressed = true;
      continue;
    }

    if (best.workers.size() > 1) {
      for (const int w : best.workers) {
        if (try_candidate(best.spec, best.graph, {w})) {
          best.workers = {w};
          progressed = true;
          break;
        }
      }
    }
  }
  return best;
}

}  // namespace deltav::dv::testing
