#include "dv/testing/remote_gen.h"

#include <sstream>

#include "dv/compiler.h"
#include "dv/runtime/runner.h"

namespace deltav::dv::testing {

namespace {

// ---------------------------------------------------------------------------
// Generation. Programs are rendered directly to text: the remote family has
// no reducer, so there is no spec indirection to preserve.

/// A request-phase-evaluable int target expression. `two_fields` unlocks
/// the shapes that read the second field.
std::string random_target(Rng& rng, bool two_fields) {
  switch (rng.next_below(two_fields ? 6 : 4)) {
    case 0: return "f";
    case 1: return "vertexId + 1";
    case 2: return "f + 1";
    case 3: return "i + vertexId";
    case 4: return "f + g";
    default: return "if f < g then f else g";
  }
}

/// The consume-phase update applied to the fetched value `p`.
std::string random_update(Rng& rng, bool two_fields) {
  switch (rng.next_below(two_fields ? 5 : 4)) {
    case 0: return "f = p";
    case 1: return "if p < f then f = p";
    case 2: return "if p > f then f = p";
    case 3: return "f = f + p";
    default: return "g = p";
  }
}

std::string remote_iter(Rng& rng, bool two_fields) {
  const char* field = two_fields && rng.next_bool(0.4) ? "g" : "f";
  const auto bound = 1 + rng.next_below(4);  // K in 1..4: always terminates
  std::ostringstream os;
  os << "iter i {\n  let p : int = remote(" << random_target(rng, two_fields)
     << ")." << field << " in\n  " << random_update(rng, two_fields)
     << "\n} until { i >= " << bound << " }";
  return os.str();
}

}  // namespace

RemoteCase generate_remote_case(Rng& rng) {
  const bool two_fields = rng.next_bool(0.5);

  std::vector<std::string> blocks;
  {
    std::ostringstream init;
    init << "init {\n  local f : int = ";
    switch (rng.next_below(3)) {
      case 0: init << "vertexId"; break;
      case 1: init << "vertexId * 3 + 1"; break;
      default: init << "7"; break;
    }
    if (two_fields) init << ";\n  local g : int = vertexId";
    init << "\n}";
    blocks.push_back(init.str());
  }

  // Optional guarded-monotone aggregation seed, so the remote phases run
  // against sites/memoization machinery left armed by a real ⊞ statement.
  if (rng.next_bool(0.5)) {
    const char* dir = rng.next_bool() ? "#in" : "#out";
    if (rng.next_bool()) {
      blocks.push_back(std::string("step {\n  let m : int = min [ u.f | u <- ") +
                       dir + " ] in\n  if m < f then f = m\n}");
    } else {
      blocks.push_back(std::string("step {\n  let m : int = max [ u.f | u <- ") +
                       dir + " ] in\n  if m > f then f = m\n}");
    }
  }

  blocks.push_back(remote_iter(rng, two_fields));
  if (rng.next_bool(0.3)) blocks.push_back(remote_iter(rng, two_fields));

  std::ostringstream src;
  for (std::size_t i = 0; i < blocks.size(); ++i)
    src << blocks[i] << (i + 1 < blocks.size() ? ";\n" : "\n");

  RemoteCase rc;
  rc.source = src.str();

  // Minimum sizes track the generator preconditions (graph/generators.cpp:
  // path ≥ 1, cycle ≥ 3, star ≥ 1 leaf, complete/rmat ≥ 2 vertices).
  rc.graph.directed = true;
  rc.graph.weighted = false;
  rc.graph.seed = rng.next_u64();
  switch (rng.next_below(5)) {
    case 0:
      rc.graph.kind = GraphSpec::Kind::kPath;
      rc.graph.n = 1 + rng.next_below(40);
      break;
    case 1:
      rc.graph.kind = GraphSpec::Kind::kCycle;
      rc.graph.n = 3 + rng.next_below(38);
      break;
    case 2:
      rc.graph.kind = GraphSpec::Kind::kStar;
      rc.graph.n = 2 + rng.next_below(39);
      break;
    case 3:
      rc.graph.kind = GraphSpec::Kind::kComplete;
      rc.graph.n = 2 + rng.next_below(11);  // complete graphs stay small
      break;
    default:
      rc.graph.kind = GraphSpec::Kind::kRmat;
      rc.graph.n = 2 + rng.next_below(39);
      rc.graph.m = rc.graph.n * 3;
      break;
  }
  return rc;
}

// ---------------------------------------------------------------------------
// Checking.

namespace {

bool value_bits_equal(const Value& a, const Value& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case Type::kInt: return a.i == b.i;
    case Type::kBool: return a.b == b.b;
    case Type::kFloat: return a.f == b.f;  // generated programs are int-only
    default: return true;
  }
}

std::string show(const Value& v) {
  std::ostringstream os;
  switch (v.type) {
    case Type::kInt: os << v.i; break;
    case Type::kBool: os << (v.b ? "true" : "false"); break;
    case Type::kFloat: os << v.f; break;
    default: os << "<unit>"; break;
  }
  return os.str();
}

/// Same worker-count → scheduler/partition pairing as the classic harness
/// (differential.cpp), so a remote soak sweeps the same engine code paths.
pregel::EngineOptions engine_for(int workers) {
  pregel::EngineOptions o;
  o.num_workers = workers;
  const bool even = workers % 2 == 0;
  o.partition =
      even ? pregel::PartitionScheme::kHash : pregel::PartitionScheme::kBlock;
  o.schedule =
      even ? pregel::ScheduleMode::kWorkQueue : pregel::ScheduleMode::kScanAll;
  return o;
}

/// Bit-level equivalence of two runs of the same compiled program.
std::string diff_runs(const DvRunResult& a, const DvRunResult& b) {
  if (a.supersteps != b.supersteps)
    return "supersteps " + std::to_string(a.supersteps) + " vs " +
           std::to_string(b.supersteps);
  if (a.stats.total_messages_sent() != b.stats.total_messages_sent())
    return "messages " + std::to_string(a.stats.total_messages_sent()) +
           " vs " + std::to_string(b.stats.total_messages_sent());
  if (a.state.size() != b.state.size()) return "state shape differs";
  for (std::size_t i = 0; i < a.state.size(); ++i)
    if (!value_bits_equal(a.state[i], b.state[i]))
      return "state word " + std::to_string(i) + ": " + show(a.state[i]) +
             " vs " + show(b.state[i]);
  return {};
}

/// User-visible field equivalence between runs of *different* compiled
/// programs (slot layouts may differ).
std::string diff_user_fields(const DvRunResult& a, const DvRunResult& b,
                             std::size_t n) {
  for (std::size_t slot = 0; slot < a.fields.size(); ++slot) {
    const Field& f = a.fields[slot];
    if (f.origin != Field::Origin::kUser) continue;
    const int bslot = b.field_slot(f.name);
    if (bslot < 0) return "field " + f.name + " missing";
    for (std::size_t v = 0; v < n; ++v) {
      const Value& av =
          a.at(static_cast<graph::VertexId>(v), static_cast<int>(slot));
      const Value& bv = b.at(static_cast<graph::VertexId>(v), bslot);
      if (!value_bits_equal(av, bv))
        return "field " + f.name + " vertex " + std::to_string(v) + ": " +
               show(av) + " vs " + show(bv);
    }
  }
  return {};
}

}  // namespace

std::optional<DiffFailure> check_remote_case(const RemoteCase& rc,
                                             const RemoteDiffOptions& opts) {
  CompiledProgram low_dv, low_st, ref_dv, ref_st;
  try {
    low_dv = compile(rc.source, CompileOptions{});
    CompileOptions o;
    o.incrementalize = false;
    low_st = compile(rc.source, o);
    CompileOptions r;
    r.lower_remote = false;
    ref_dv = compile(rc.source, r);
    r.incrementalize = false;
    ref_st = compile(rc.source, r);
  } catch (const std::exception& e) {
    return DiffFailure{"compile", e.what()};
  }

  const graph::CsrGraph g = rc.graph.build();
  const std::size_t n = g.num_vertices();

  const auto run = [&](const CompiledProgram& cp, ExecTier tier, int workers,
                       DvRunResult& out) -> std::string {
    DvRunOptions ro;
    ro.engine = engine_for(workers);
    ro.max_supersteps = opts.max_supersteps;
    ro.tier = tier;
    try {
      out = run_program(cp, g, ro);
    } catch (const std::exception& e) {
      return e.what();
    }
    return {};
  };

  std::optional<DvRunResult> first;  // cross-worker-count anchor (ΔV tree)
  int first_workers = 0;

  for (const int workers : rc.worker_counts) {
    const std::string tag = " (" + std::to_string(workers) + " workers)";
    DvRunResult dv_tree, dv_vm, st_tree, st_vm, rdv, rst;
    if (auto e = run(low_dv, ExecTier::kTree, workers, dv_tree); !e.empty())
      return DiffFailure{"run", "ΔV lowered tree: " + e + tag};
    if (auto e = run(low_dv, ExecTier::kVm, workers, dv_vm); !e.empty())
      return DiffFailure{"run", "ΔV lowered vm: " + e + tag};
    if (auto e = run(low_st, ExecTier::kTree, workers, st_tree); !e.empty())
      return DiffFailure{"run", "ΔV* lowered tree: " + e + tag};
    if (auto e = run(low_st, ExecTier::kVm, workers, st_vm); !e.empty())
      return DiffFailure{"run", "ΔV* lowered vm: " + e + tag};
    if (auto e = run(ref_dv, ExecTier::kTree, workers, rdv); !e.empty())
      return DiffFailure{"run", "ΔV reference: " + e + tag};
    if (auto e = run(ref_st, ExecTier::kTree, workers, rst); !e.empty())
      return DiffFailure{"run", "ΔV* reference: " + e + tag};

    // Lowered tree ≡ lowered vm, full bit-level contract, both variants.
    if (auto d = diff_runs(dv_vm, dv_tree); !d.empty())
      return DiffFailure{"tiers", "ΔV vm vs tree: " + d + tag};
    if (auto d = diff_runs(st_vm, st_tree); !d.empty())
      return DiffFailure{"tiers", "ΔV* vm vs tree: " + d + tag};

    // The tentpole contract: the 3-phase lowering is observationally the
    // reference interpretation.
    if (auto d = diff_user_fields(dv_tree, rdv, n); !d.empty())
      return DiffFailure{"lowering", "ΔV lowered vs reference: " + d + tag};
    if (auto d = diff_user_fields(st_tree, rst, n); !d.empty())
      return DiffFailure{"lowering", "ΔV* lowered vs reference: " + d + tag};

    // ΔV ≡ ΔV*, lowered and reference.
    if (auto d = diff_user_fields(dv_tree, st_tree, n); !d.empty())
      return DiffFailure{"variants", "lowered ΔV vs ΔV*: " + d + tag};
    if (auto d = diff_user_fields(rdv, rst, n); !d.empty())
      return DiffFailure{"variants", "reference ΔV vs ΔV*: " + d + tag};

    // Worker-count independence.
    if (first) {
      if (auto d = diff_user_fields(dv_tree, *first, n); !d.empty())
        return DiffFailure{"workers",
                           std::to_string(workers) + " vs " +
                               std::to_string(first_workers) +
                               " workers: " + d};
    } else {
      first = std::move(dv_tree);
      first_workers = workers;
    }
  }

  return std::nullopt;
}

}  // namespace deltav::dv::testing
