// Persistence differential fuzzing: restore-equivalence over kill-points.
//
// For each (program, graph, mutation-stream) triple — the same StreamCase
// population the streaming tier draws from — an uninterrupted reference
// session records its full trajectory: a snapshot and the state bits at
// every epoch boundary, every epoch's warm/cold decision, blocker,
// compaction flag and cost counters, plus mid-convergence checkpoints
// collected through the session's checkpoint hook. The checker then
// proves three properties the snapshot subsystem promises:
//
//   boundary    restoring the epoch-k snapshot yields bit-identical state
//               and replaying the remaining batches reproduces every
//               subsequent epoch exactly — same warm/cold decisions and
//               blockers, same superstep/message/Δ/woken counts, same
//               compaction points, bit-identical state after each epoch
//               (also exercised cross-tier: a VM-written snapshot resumed
//               on the tree interpreter must match the same trajectory);
//   mid-run     a checkpoint taken between supersteps restores to an
//               unconverged session whose converge() finishes the
//               interrupted run onto the reference trajectory;
//   corruption  any truncation or byte flip of a snapshot makes restore
//               throw SnapshotError — never a silent, wrong session.
#pragma once

#include <cstddef>
#include <optional>

#include "common/rng.h"
#include "dv/testing/stream_gen.h"

namespace deltav::dv::testing {

struct PersistCheckOptions {
  /// Engine worker count (differential.cpp's worker ↔ scheduler pairing).
  int workers = 4;
  /// Mid-convergence checkpoint cadence for the reference session.
  std::size_t checkpoint_every = 2;
  /// At most this many mid-run checkpoints are resumed per case (they are
  /// sampled; every boundary snapshot is always swept).
  std::size_t max_mid_resumes = 3;
  /// Random fault injections (truncate / byte flip) per case, on top of
  /// a handful of deterministic edge cases.
  std::size_t corruptions = 6;
};

/// Runs the full kill-point sweep for one case; returns the first failure
/// or nullopt. `rng` drives fault placement and mid-run sampling only —
/// the case itself is fixed by `sc`.
std::optional<DiffFailure> check_persist_case(
    const StreamCase& sc, Rng& rng, const PersistCheckOptions& opts = {});

}  // namespace deltav::dv::testing
