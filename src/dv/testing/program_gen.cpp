#include "dv/testing/program_gen.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace deltav::dv::testing {

namespace {

const char* kind_token(GraphSpec::Kind k) {
  switch (k) {
    case GraphSpec::Kind::kRmat: return "rmat";
    case GraphSpec::Kind::kPath: return "path";
    case GraphSpec::Kind::kCycle: return "cycle";
    case GraphSpec::Kind::kStar: return "star";
    case GraphSpec::Kind::kComplete: return "complete";
    case GraphSpec::Kind::kEmpty: return "empty";
    case GraphSpec::Kind::kDag: return "dag";
  }
  return "?";
}

GraphSpec::Kind kind_from_token(const std::string& s) {
  if (s == "rmat") return GraphSpec::Kind::kRmat;
  if (s == "path") return GraphSpec::Kind::kPath;
  if (s == "cycle") return GraphSpec::Kind::kCycle;
  if (s == "star") return GraphSpec::Kind::kStar;
  if (s == "complete") return GraphSpec::Kind::kComplete;
  if (s == "empty") return GraphSpec::Kind::kEmpty;
  if (s == "dag") return GraphSpec::Kind::kDag;
  DV_FAIL("unknown graph kind '" << s << "'");
}

}  // namespace

graph::CsrGraph GraphSpec::build() const {
  switch (kind) {
    case Kind::kRmat: {
      graph::RmatOptions o;
      o.directed = directed;
      o.weighted = weighted;
      return graph::rmat(n, m, seed, o);
    }
    case Kind::kPath: return graph::path(n, directed);
    case Kind::kCycle: return graph::cycle(n, directed);
    case Kind::kStar: return graph::star(n > 0 ? n - 1 : 0, directed);
    case Kind::kComplete: return graph::complete(n, directed);
    case Kind::kEmpty: return graph::GraphBuilder(0, directed).build();
    case Kind::kDag: {
      Rng r(seed);
      graph::GraphBuilder b(n, /*directed=*/true);
      b.keep_weights(weighted);
      b.deduplicate();
      if (n >= 2) {
        for (std::size_t e = 0; e < m; ++e) {
          auto a = r.next_below(n);
          auto c = r.next_below(n);
          if (a == c) continue;
          if (c < a) std::swap(a, c);
          b.add_edge(static_cast<graph::VertexId>(a),
                     static_cast<graph::VertexId>(c),
                     weighted ? 0.1 + r.next_double() * 2.0 : 1.0);
        }
      }
      return b.build();
    }
  }
  DV_FAIL("unknown graph kind");
}

std::string GraphSpec::describe() const {
  std::ostringstream os;
  os << "kind=" << kind_token(kind) << " n=" << n << " m=" << m
     << " seed=" << seed << " directed=" << (directed ? 1 : 0)
     << " weighted=" << (weighted ? 1 : 0);
  return os.str();
}

GraphSpec GraphSpec::parse(const std::string& text) {
  GraphSpec g;
  std::istringstream is(text);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    DV_CHECK_MSG(eq != std::string::npos,
                 "malformed graph spec token '" << tok << "'");
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "kind") {
      g.kind = kind_from_token(val);
    } else if (key == "n") {
      g.n = static_cast<std::size_t>(std::stoull(val));
    } else if (key == "m") {
      g.m = static_cast<std::size_t>(std::stoull(val));
    } else if (key == "seed") {
      g.seed = std::stoull(val);
    } else if (key == "directed") {
      g.directed = val != "0";
    } else if (key == "weighted") {
      g.weighted = val != "0";
    } else {
      DV_FAIL("unknown graph spec key '" << key << "'");
    }
  }
  return g;
}

const char* pattern_kind_name(PatternKind k) {
  switch (k) {
    case PatternKind::kSumDamped: return "sum-damped";
    case PatternKind::kSumCount: return "sum-count";
    case PatternKind::kSumPair: return "sum-pair";
    case PatternKind::kMinRelaxFloat: return "min-relax-float";
    case PatternKind::kMinRelaxInt: return "min-relax-int";
    case PatternKind::kMaxGossip: return "max-gossip";
    case PatternKind::kProdClamp: return "prod-clamp";
    case PatternKind::kOrReach: return "or-reach";
    case PatternKind::kAndGuard: return "and-guard";
    case PatternKind::kAndEvery: return "and-every";
  }
  return "?";
}

namespace {

/// Patterns whose every assignment is guarded to fire only on a monotone
/// improvement. Only these may sit under a `stable` until: an unconditional
/// reassign keeps the ΔV* variant assigning (and therefore not quiescing)
/// forever, and a non-monotone stream can revisit the operator identity,
/// which would break the messages(ΔV) ≤ messages(ΔV*) property.
bool is_guarded_monotone(PatternKind k) {
  switch (k) {
    case PatternKind::kMinRelaxFloat:
    case PatternKind::kMinRelaxInt:
    case PatternKind::kMaxGossip:
    case PatternKind::kOrReach:
    case PatternKind::kAndGuard:
      return true;
    default:
      return false;
  }
}

bool uses_src(PatternKind k) {
  switch (k) {
    case PatternKind::kMinRelaxFloat:
    case PatternKind::kOrReach:
    case PatternKind::kAndGuard:
    case PatternKind::kAndEvery:
      return true;
    default:
      return false;
  }
}

/// Float fields that stay finite and bounded — the only legal targets of a
/// cross-field reference (a min-relax field may be infty, and infty feeding
/// a sum would synthesize NaN deltas).
bool bounded_float_field(PatternKind k) {
  return k == PatternKind::kSumDamped || k == PatternKind::kProdClamp ||
         k == PatternKind::kSumPair;
}

GraphDir random_dir(Rng& rng, bool undirected) {
  if (undirected) {
    // #neighbors is the idiomatic form; #in/#out are legal aliases on an
    // undirected CSR and worth occasional coverage.
    const double r = rng.next_double();
    if (r < 0.7) return GraphDir::kNeighbors;
    return r < 0.85 ? GraphDir::kIn : GraphDir::kOut;
  }
  return rng.next_bool() ? GraphDir::kIn : GraphDir::kOut;
}

PatternKind pick_kind(Rng& rng, bool stable_stmt) {
  static constexpr PatternKind kMonotone[] = {
      PatternKind::kMinRelaxFloat, PatternKind::kMinRelaxInt,
      PatternKind::kMaxGossip, PatternKind::kOrReach, PatternKind::kAndGuard,
  };
  static constexpr PatternKind kAll[] = {
      PatternKind::kSumDamped,     PatternKind::kSumCount,
      PatternKind::kSumPair,       PatternKind::kMinRelaxFloat,
      PatternKind::kMinRelaxInt,   PatternKind::kMaxGossip,
      PatternKind::kProdClamp,     PatternKind::kOrReach,
      PatternKind::kAndGuard,      PatternKind::kAndEvery,
  };
  if (stable_stmt)
    return kMonotone[rng.next_below(std::size(kMonotone))];
  return kAll[rng.next_below(std::size(kAll))];
}

std::string fld(const PatternSpec& p) { return "f" + std::to_string(p.id); }
std::string fld2(const PatternSpec& p) { return "g" + std::to_string(p.id); }
std::string lvar(const PatternSpec& p, char c) {
  return std::string(1, c) + std::to_string(p.id);
}

std::string src_expr(const ProgramSpec& spec, const PatternSpec& p) {
  return p.use_src_param ? "src" : std::to_string(p.src_literal);
  (void)spec;
}

std::string dir_str(GraphDir d) { return graph_dir_name(d); }

/// Appends this pattern's `local` declarations to the init block.
void render_decls(const ProgramSpec& spec, const PatternSpec& p,
                  std::vector<std::string>& out) {
  switch (p.kind) {
    case PatternKind::kSumDamped:
      out.push_back("local " + fld(p) + " : float = " +
                    (p.use_degree_init
                         ? "1.0 / (|" + dir_str(p.dir) + "| + 1)"
                         : "1.0 / graphSize"));
      return;
    case PatternKind::kSumCount:
      out.push_back("local " + fld(p) + " : int = 1");
      return;
    case PatternKind::kSumPair:
      out.push_back("local " + fld(p) + " : float = 1.0");
      out.push_back("local " + fld2(p) + " : float = 0.5");
      return;
    case PatternKind::kMinRelaxFloat:
      out.push_back("local " + fld(p) + " : float = if vertexId == " +
                    src_expr(spec, p) + " then 0.0 else infty");
      return;
    case PatternKind::kMinRelaxInt:
      out.push_back("local " + fld(p) + " : int = vertexId");
      return;
    case PatternKind::kMaxGossip:
      out.push_back("local " + fld(p) + " : int = vertexId");
      return;
    case PatternKind::kProdClamp:
      // Strictly inside (1, 2): never the * identity, never absorbing.
      out.push_back("local " + fld(p) +
                    " : float = 1.0 + (vertexId + 1) / (graphSize + 1)");
      return;
    case PatternKind::kOrReach:
      out.push_back("local " + fld(p) + " : bool = vertexId == " +
                    src_expr(spec, p));
      return;
    case PatternKind::kAndGuard:
    case PatternKind::kAndEvery:
      out.push_back("local " + fld(p) + " : bool = vertexId != " +
                    src_expr(spec, p));
      return;
  }
  DV_FAIL("unknown pattern kind");
}

/// Appends the pattern's aggregation `let`s (lets) and its field updates
/// (upds). `declared_bounded_floats` lists the finite float fields
/// available as cross-reference targets.
void render_body(const PatternSpec& p,
                 const std::vector<std::string>& declared_bounded_floats,
                 std::vector<std::string>& lets,
                 std::vector<std::string>& upds) {
  const std::string D = dir_str(p.dir);
  const bool cross_ok =
      !p.cross_field.empty() && p.cross_field != fld(p) &&
      std::find(declared_bounded_floats.begin(),
                declared_bounded_floats.end(),
                p.cross_field) != declared_bounded_floats.end();
  switch (p.kind) {
    case PatternKind::kSumDamped: {
      const std::string s = lvar(p, 's');
      const std::string elem =
          "u." + fld(p) + (p.use_edge ? " + u.edge" : "");
      lets.push_back("let " + s + " : float = + [ " + elem + " | u <- " + D +
                     " ] in");
      std::string upd = fld(p) + " = 0.125 + " +
                        (p.use_param_scale ? std::string("c")
                                           : std::string("0.5")) +
                        " * (" + s + " / graphSize)";
      if (cross_ok) upd += " + " + p.cross_field + " * 0.125";
      upds.push_back(upd);
      return;
    }
    case PatternKind::kSumCount: {
      const std::string s = lvar(p, 's');
      lets.push_back("let " + s + " : int = + [ u." + fld(p) + " | u <- " +
                     D + " ] in");
      // `+ 1` keeps the value off the sum identity 0 even for vertices with
      // an empty pull set (ΔV* suppresses identity sends; a stream that
      // enters the identity would undercut the message-count property).
      upds.push_back(fld(p) + " = min(" + s + " + 1, 1000)");
      return;
    }
    case PatternKind::kSumPair: {
      const std::string s = lvar(p, 's');
      const std::string t = lvar(p, 't');
      lets.push_back("let " + s + " : float = + [ u." + fld(p) +
                     " | u <- " + D + " ] in");
      lets.push_back("let " + t + " : float = + [ u." + fld2(p) +
                     " | u <- " + dir_str(p.dir2) + " ] in");
      upds.push_back(fld2(p) + " = " + s + " / graphSize + 0.25");
      upds.push_back(fld(p) + " = " + t + " / graphSize + 0.5");
      return;
    }
    case PatternKind::kMinRelaxFloat: {
      const std::string b = lvar(p, 'b');
      lets.push_back("let " + b + " : float = min [ u." + fld(p) + " + " +
                     (p.use_edge ? "u.edge" : "1.0") + " | u <- " + D +
                     " ] in");
      upds.push_back("if " + b + " < " + fld(p) + " then " + fld(p) + " = " +
                     b);
      return;
    }
    case PatternKind::kMinRelaxInt: {
      const std::string b = lvar(p, 'b');
      lets.push_back("let " + b + " : int = min [ u." + fld(p) +
                     " | u <- " + D + " ] in");
      upds.push_back("if " + b + " < " + fld(p) + " then " + fld(p) + " = " +
                     b);
      return;
    }
    case PatternKind::kMaxGossip: {
      const std::string b = lvar(p, 'b');
      lets.push_back("let " + b + " : int = max [ u." + fld(p) +
                     " | u <- " + D + " ] in");
      upds.push_back("if " + b + " > " + fld(p) + " then " + fld(p) + " = " +
                     b);
      return;
    }
    case PatternKind::kProdClamp: {
      const std::string pv = lvar(p, 'p');
      lets.push_back("let " + pv + " : float = * [ u." + fld(p) +
                     " | u <- " + D + " ] in");
      // Lands in [1.0625, 2.0] — off both the identity 1 and absorbing 0 —
      // even when the pull set is empty (fold = identity).
      const std::string base =
          fld(p) + " = min(1.0625 + " + pv + " / 8.0, 2.0)";
      if (p.absorbing_dip) {
        // Value-driven flip through the absorbing element: any pull set
        // with an updated neighbor (each ≥ 1.0625) trips the threshold
        // and forces 0.0; a 0 in the pull set drags the product back
        // under it, so vertices oscillate 0 ↔ [1.0625, 2] purely as a
        // function of messages — unlike an `i == 1` trigger, the body
        // stays an idempotent function of the fold, so a ΔV vertex
        // sleeping through a superstep (the Eq. 12 halts) observes
        // nothing stale. The threshold 1.03125 sits in the reachable-
        // value gap: products are 0, the identity 1, ≥ 1.0625 once any
        // factor is post-update, or can only hit 1.03125 *exactly* (a
        // single initial value with (vertexId+1)/(graphSize+1) == 1/32,
        // where a one-element fold is exact in both variants) — so float
        // drift between the memoized (ΔV) and recomputed (ΔV*) folds
        // cannot flip the branch.
        upds.push_back("if " + pv + " > 1.03125 then " + fld(p) +
                       " = 0.0 else " + base);
      } else {
        upds.push_back(base);
      }
      return;
    }
    case PatternKind::kOrReach: {
      const std::string a = lvar(p, 'a');
      lets.push_back("let " + a + " : bool = || [ u." + fld(p) +
                     " | u <- " + D + " ] in");
      upds.push_back("if " + a + " && not " + fld(p) + " then " + fld(p) +
                     " = true");
      return;
    }
    case PatternKind::kAndGuard: {
      const std::string a = lvar(p, 'a');
      lets.push_back("let " + a + " : bool = && [ u." + fld(p) +
                     " | u <- " + D + " ] in");
      upds.push_back("if " + fld(p) + " && not " + a + " then " + fld(p) +
                     " = false");
      return;
    }
    case PatternKind::kAndEvery: {
      const std::string a = lvar(p, 'a');
      lets.push_back("let " + a + " : bool = && [ u." + fld(p) +
                     " | u <- " + D + " ] in");
      upds.push_back(fld(p) + " = " + fld(p) + " && " + a);
      return;
    }
  }
  DV_FAIL("unknown pattern kind");
}

std::string render_until(const UntilSpec& u) {
  switch (u.kind) {
    case UntilSpec::Kind::kCount:
      return "i >= " + std::to_string(u.bound);
    case UntilSpec::Kind::kParamCount:
      return "i >= steps";
    case UntilSpec::Kind::kStable:
      return "stable";
    case UntilSpec::Kind::kStableCapped:
      return "stable || i >= " + std::to_string(u.bound);
  }
  DV_FAIL("unknown until kind");
}

}  // namespace

ProgramSpec generate_spec(Rng& rng, const GenOptions& opts) {
  ProgramSpec spec;
  spec.undirected = rng.next_bool(0.4);
  spec.steps_value = 2 + static_cast<int>(rng.next_below(4));
  spec.src_value = static_cast<int>(rng.next_below(4));
  spec.c_value = 0.25 + 0.05 * static_cast<double>(rng.next_below(8));

  int next_id = 0;
  std::vector<std::string> bounded_floats;  // cross-reference candidates

  const int n_stmts =
      1 + static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(std::max(1, opts.max_stmts))));
  for (int si = 0; si < n_stmts; ++si) {
    StmtSpec st;
    st.is_iter = rng.next_bool(0.85);
    bool stable_stmt = false;
    if (st.is_iter) {
      const double r = rng.next_double();
      if (r < 0.45) {
        st.until.kind = UntilSpec::Kind::kCount;
        st.until.bound = 2 + static_cast<int>(rng.next_below(5));
      } else if (r < 0.6) {
        st.until.kind = UntilSpec::Kind::kParamCount;
      } else if (r < 0.85) {
        st.until.kind = UntilSpec::Kind::kStable;
        stable_stmt = true;
      } else {
        st.until.kind = UntilSpec::Kind::kStableCapped;
        st.until.bound = 8 + static_cast<int>(rng.next_below(12));
        stable_stmt = true;
      }
    }

    const int n_patterns =
        1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                std::max(1, opts.max_patterns_per_stmt))));
    for (int pi = 0; pi < n_patterns; ++pi) {
      PatternSpec p;
      p.kind = pick_kind(rng, stable_stmt);
      p.id = next_id++;
      p.dir = random_dir(rng, spec.undirected);
      p.dir2 = random_dir(rng, spec.undirected);
      p.src_literal = static_cast<int>(rng.next_below(4));
      switch (p.kind) {
        case PatternKind::kSumDamped:
          p.use_edge = rng.next_bool(0.3);
          p.use_param_scale = rng.next_bool(0.3);
          p.use_degree_init = rng.next_bool(0.3);
          if (!bounded_floats.empty() && rng.next_bool(0.35))
            p.cross_field =
                bounded_floats[rng.next_below(bounded_floats.size())];
          break;
        case PatternKind::kMinRelaxFloat:
          p.use_edge = rng.next_bool(0.5);
          break;
        case PatternKind::kProdClamp:
          p.absorbing_dip = rng.next_bool(0.5);
          break;
        default:
          break;
      }
      if (uses_src(p.kind)) p.use_src_param = rng.next_bool(0.4);
      if (bounded_float_field(p.kind)) bounded_floats.push_back(fld(p));
      // The absorbing flip needs a few iterations to exercise both the
      // null (→0) and denull (recovery) transitions.
      if (p.kind == PatternKind::kProdClamp && p.absorbing_dip &&
          st.is_iter && st.until.kind == UntilSpec::Kind::kCount)
        st.until.bound = std::max(st.until.bound, 3);
      st.patterns.push_back(std::move(p));
    }
    spec.stmts.push_back(std::move(st));
  }
  return spec;
}

std::string render(const ProgramSpec& spec) {
  bool p_steps = false, p_src = false, p_c = false;
  for (const auto& st : spec.stmts) {
    if (st.is_iter && st.until.kind == UntilSpec::Kind::kParamCount)
      p_steps = true;
    for (const auto& p : st.patterns) {
      if (p.use_src_param) p_src = true;
      if (p.use_param_scale) p_c = true;
    }
  }

  std::ostringstream os;
  if (p_steps) os << "param steps : int;\n";
  if (p_src) os << "param src : int;\n";
  if (p_c) os << "param c : float;\n";

  std::vector<std::string> decls;
  for (const auto& st : spec.stmts)
    for (const auto& p : st.patterns) render_decls(spec, p, decls);
  os << "init {\n";
  for (std::size_t i = 0; i < decls.size(); ++i)
    os << "  " << decls[i] << (i + 1 < decls.size() ? ";" : "") << "\n";
  os << "};\n";

  // Cross-references may only target finite float fields (tracked in
  // declaration order; render_body re-validates so reduction that deletes
  // the target simply drops the reference term).
  std::vector<std::string> bounded_floats;
  for (const auto& st : spec.stmts)
    for (const auto& p : st.patterns)
      if (bounded_float_field(p.kind)) bounded_floats.push_back(fld(p));

  for (std::size_t si = 0; si < spec.stmts.size(); ++si) {
    const auto& st = spec.stmts[si];
    std::vector<std::string> lets, upds;
    for (const auto& p : st.patterns)
      render_body(p, bounded_floats, lets, upds);
    os << (st.is_iter ? "iter i {\n" : "step {\n");
    for (const auto& l : lets) os << "  " << l << "\n";
    for (std::size_t i = 0; i < upds.size(); ++i)
      os << "  " << upds[i] << (i + 1 < upds.size() ? ";" : "") << "\n";
    os << "}";
    if (st.is_iter) os << " until { " << render_until(st.until) << " }";
    if (si + 1 < spec.stmts.size()) os << ";";
    os << "\n";
  }
  return os.str();
}

std::map<std::string, Value> param_bindings(const ProgramSpec& spec) {
  std::map<std::string, Value> params;
  for (const auto& st : spec.stmts) {
    if (st.is_iter && st.until.kind == UntilSpec::Kind::kParamCount)
      params["steps"] = Value::of_int(spec.steps_value);
    for (const auto& p : st.patterns) {
      if (p.use_src_param) params["src"] = Value::of_int(spec.src_value);
      if (p.use_param_scale) params["c"] = Value::of_float(spec.c_value);
    }
  }
  return params;
}

GraphSpec random_graph_spec(Rng& rng, const ProgramSpec& spec,
                            const GenOptions& opts) {
  GraphSpec g;
  g.directed = !spec.undirected;
  g.seed = rng.next_u64() | 1;

  if (rng.next_bool(opts.empty_graph_prob)) {
    g.kind = GraphSpec::Kind::kEmpty;
    g.n = 0;
    g.m = 0;
    return g;
  }

  bool wants_edge = false;
  for (const auto& st : spec.stmts)
    for (const auto& p : st.patterns) wants_edge |= p.use_edge;

  static constexpr std::size_t kSizes[] = {2, 3, 5, 8, 16, 24, 48};
  g.n = std::min(kSizes[rng.next_below(std::size(kSizes))],
                 opts.max_vertices);

  const double r = rng.next_double();
  // Edge-weight coverage needs R-MAT (the only weighted generator); the
  // fixed topologies report weight 1.0, which is legal but uninteresting.
  if (wants_edge || r < 0.55) {
    g.kind = GraphSpec::Kind::kRmat;
    g.m = g.n * (1 + rng.next_below(5));
    g.weighted = wants_edge || rng.next_bool(0.3);
  } else if (r < 0.67) {
    g.kind = GraphSpec::Kind::kPath;
  } else if (r < 0.79) {
    g.kind = GraphSpec::Kind::kCycle;
    g.n = std::max<std::size_t>(g.n, 3);  // graph::cycle precondition
  } else if (r < 0.91) {
    g.kind = GraphSpec::Kind::kStar;
  } else {
    g.kind = GraphSpec::Kind::kComplete;
    g.n = std::min<std::size_t>(g.n, 12);
  }
  if (g.kind != GraphSpec::Kind::kRmat) {
    g.m = 0;
    g.weighted = false;
  }
  return g;
}

FuzzCase make_case(const ProgramSpec& spec, const GraphSpec& graph,
                   std::vector<int> worker_counts) {
  FuzzCase fc;
  fc.source = render(spec);
  fc.params = param_bindings(spec);
  fc.graph = graph;
  fc.worker_counts = std::move(worker_counts);
  return fc;
}

}  // namespace deltav::dv::testing
