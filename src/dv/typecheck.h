// Type checking and name resolution for ΔV.
//
// Annotates every expression with its type, resolves identifiers (let
// variables → scratch slots, `local` declarations → vertex-state fields,
// `param`s, iteration variables), registers user fields in the program's
// field table, and enforces the structural restrictions the
// incrementalization passes rely on:
//
//  * aggregations may not appear inside `init`, inside another aggregation,
//    or under a conditional (the in-place message fold must execute
//    unconditionally every superstep for accumulator coherence);
//  * `until` clauses are globally evaluable: iteration variable, params,
//    graphSize, literals, and the `stable` builtin only;
//  * let-bound variables are immutable; only fields are assignable.
#pragma once

#include "dv/ast.h"
#include "dv/diagnostics.h"

namespace deltav::dv {

/// Per-statement facts later passes and the runner need.
struct StmtAnalysis {
  bool body_reads_iter_var = false;
  bool until_uses_stable = false;
  bool has_agg = false;     // body contains ⊞[...]
  bool has_remote = false;  // body contains remote(e).f
};

struct TypecheckResult {
  std::vector<StmtAnalysis> stmts;
};

/// Checks `prog` in place. Throws CompileError on the first error; appends
/// warnings to `diags`.
TypecheckResult typecheck(Program& prog, Diagnostics& diags);

}  // namespace deltav::dv
