// The ΔV compiler facade: source text → CompiledProgram.
//
// This is the library's primary public entry point. Compile once, run many
// times (runtime/runner.h). CompileOptions selects the paper's variants:
// defaults give ΔV; {.incrementalize = false} gives ΔV*.
#pragma once

#include <string>

#include "dv/ast.h"
#include "dv/compile_options.h"
#include "dv/diagnostics.h"
#include "dv/runtime/layout.h"
#include "dv/runtime/message.h"
#include "dv/typecheck.h"

namespace deltav::dv {

struct CompiledProgram {
  Program program;
  CompileOptions options;
  TypecheckResult analysis;
  StateLayout layout;
  Diagnostics diagnostics;
  SiteOpTable site_ops;  // operator/type per site, for combiner & runtime
  std::string source;

  std::size_t num_fields() const { return program.fields.size(); }
  std::size_t num_scratch() const { return program.scratch.size(); }
  std::size_t num_sites() const { return program.sites.size(); }
  std::size_t state_bytes() const { return layout.total_bytes; }

  /// Pretty-printed transformed program (paper-notation internal forms).
  std::string dump() const { return to_string(program); }
};

/// Compiles ΔV source. Throws CompileError on lexical, syntactic, type, or
/// transformation errors.
CompiledProgram compile(const std::string& source,
                        const CompileOptions& options = {});

/// Front-end only (lex+parse+typecheck): used by tooling and tests that
/// inspect the surface AST before transformation.
Program parse_and_check(const std::string& source, Diagnostics& diags);

}  // namespace deltav::dv
