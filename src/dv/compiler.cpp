#include "dv/compiler.h"

#include "dv/lexer.h"
#include "dv/parser.h"
#include "dv/passes/passes.h"
#include "dv/passes/verifier.h"

namespace deltav::dv {

Program parse_and_check(const std::string& source, Diagnostics& diags) {
  Lexer lexer(source);
  Parser parser(lexer.tokenize());
  Program prog = parser.parse_program();
  typecheck(prog, diags);
  return prog;
}

CompiledProgram compile(const std::string& source,
                        const CompileOptions& options) {
  CompiledProgram cp;
  cp.options = options;
  cp.source = source;

  if (options.epsilon > 0.0 && !options.incrementalize)
    compile_error({}, "epsilon slop requires incrementalization");
  if (options.epsilon < 0.0) compile_error({}, "epsilon must be >= 0");
  if (options.naive_sends && options.incrementalize)
    compile_error({}, "naive sends (kAlways) are incompatible with "
                      "incrementalization: Δ-messages require change "
                      "tracking");

  Lexer lexer(source);
  Parser parser(lexer.tokenize());
  cp.program = parser.parse_program();
  cp.analysis = typecheck(cp.program, cp.diagnostics);

  Program& prog = cp.program;
  Diagnostics& diags = cp.diagnostics;
  verify_program(prog, VerifyStage::kAfterTypecheck);

  // §6.1 front half: hoist aggregations into canonical positions.
  pass_anormalize(prog, diags);
  // §6.1: pull→push conversion; creates the site table and send loops.
  pass_aggregation_conversion(prog, diags);
  // Remote reads → request/reply channel sites + statement phases. The
  // reference interpretation (options.lower_remote = false, tree tier
  // only) keeps kRemoteRead in the body for the lowering's differential
  // oracle.
  if (options.lower_remote) pass_remote_lower(prog, diags);
  verify_program(prog, VerifyStage::kAfterConversion);

  // Operator restrictions the incremental runtime relies on.
  for (const AggSite& site : prog.sites) {
    if (options.incrementalize && site.op == AggOp::kProd &&
        site.elem_type != Type::kFloat)
      compile_error(prog.loc,
                    "incrementalized * aggregation requires float elements "
                    "(integer deltas do not divide exactly)");
  }

  // §6.2: bind sent expressions into vertex state.
  pass_state_binding(prog, diags);

  switch (options.send_policy()) {
    case SendPolicy::kAlways:
      break;  // raw §6.1 output (naive ablation baseline)
    case SendPolicy::kOnAssign:
      pass_assigned_send_policy(prog, diags);
      break;
    case SendPolicy::kOnChange:
      pass_change_checks(prog, options, diags);
      break;
  }

  if (options.incrementalize) {
    pass_incrementalize_aggregations(prog, diags);
    pass_delta_messages(prog, options, diags);
    if (options.insert_halts)
      pass_insert_halts(prog, cp.analysis, diags);
  }
  verify_program(prog, VerifyStage::kFinal);

  cp.layout = StateLayout::of(prog);
  for (const AggSite& site : prog.sites) {
    cp.site_ops.ops.push_back(site.op);
    cp.site_ops.types.push_back(site.elem_type);
  }
  DV_CHECK_MSG(prog.sites.size() <= 64,
               "programs are limited to 64 aggregation sites");
  return cp;
}

}  // namespace deltav::dv
