#include "dv/codegen/native_emit.h"

#include <cmath>
#include <sstream>

#include "dv/codegen/native_abi.h"
#include "dv/obs/metrics.h"
#include "dv/runtime/value.h"

namespace deltav::dv::native {

namespace {

/// Thrown internally when the program leaves the emittable subset; caught
/// at the top and reported as NativeUnit::unsupported (→ vm fallback).
struct Unsupported {
  std::string reason;
};

[[noreturn]] void unsupported(const std::string& reason) {
  throw Unsupported{reason};
}

std::string int_lit(std::int64_t v) {
  if (v == std::numeric_limits<std::int64_t>::min())
    return "(-9223372036854775807LL - 1LL)";
  return std::to_string(v) + "LL";
}

/// Exact double literal. Hex floats round-trip bit-for-bit, which the
/// tier-equivalence contract requires (a shortest-decimal print does too,
/// but hex is unambiguous across libcs).
std::string double_lit(double v) {
  if (std::isnan(v)) return "std::numeric_limits<double>::quiet_NaN()";
  if (std::isinf(v))
    return v > 0 ? "std::numeric_limits<double>::infinity()"
                 : "-std::numeric_limits<double>::infinity()";
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

/// The baked Value tag (native_abi.h pins kInt=0, kBool=1, kFloat=2).
std::string tag_of(Type t) {
  switch (t) {
    case Type::kInt: return "0u";
    case Type::kBool: return "1u";
    case Type::kFloat: return "2u";
    default:
      unsupported(std::string("no native tag for type ") + type_name(t));
  }
}

/// True when `e` is a pure value expression that cannot observe the edge
/// being broadcast over — the gate for evaluating a send payload once per
/// neighbor span instead of once per edge. Mirrors the VM's "direct
/// operand" fast path but admits whole pure subtrees: identical values by
/// purity, so identical messages and counters.
bool span_invariant(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kEdgeWeight:
      return false;
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kBoolLit:
    case ExprKind::kInfty:
    case ExprKind::kFieldRef:
    case ExprKind::kParamRef:
    case ExprKind::kScratchRef:
    case ExprKind::kDegree:
    case ExprKind::kGraphSize:
    case ExprKind::kVertexIdRef:
    case ExprKind::kStableRef:
    case ExprKind::kBinary:
    case ExprKind::kUnary:
    case ExprKind::kPairOp:
      break;
    case ExprKind::kVarRef:
      if (e.var_kind != VarKind::kIter && e.var_kind != VarKind::kLet)
        return false;
      break;
    case ExprKind::kIf:
      // Only value-ifs: a missing-else if is a statement (and may carry
      // §6.3 obs accounting that must fire per evaluation).
      if (e.kids.size() != 3 || e.obs_site >= 0) return false;
      break;
    default:
      return false;  // assignments, lets, folds, sends, halt: effectful
  }
  for (const ExprPtr& k : e.kids)
    if (k && !span_invariant(*k)) return false;
  return true;
}

class NativeEmitter {
 public:
  explicit NativeEmitter(const CompiledProgram& cp)
      : cp_(cp), prog_(cp.program) {}

  NativeUnit emit() {
    NativeUnit unit;
    try {
      // Remote statements interleave engine supersteps with tree-evaluated
      // request/reply phases; the phase expressions are two sends and a
      // message loop — nothing hot enough to justify a native ABI for the
      // message-iteration callbacks. The whole program falls back (named
      // reason → dv.native_fallbacks.remote_read) so all supersteps run
      // one tier.
      for (const Stmt& s : prog_.stmts)
        if (!s.phases.empty())
          unsupported(
              "remote_read: request/reply phases are interpreted; the "
              "program runs on the vm tier");
      preamble();
      if (prog_.init) emit_root(*prog_.init, "init");
      for (std::size_t i = 0; i < prog_.stmts.size(); ++i) {
        const Stmt& s = prog_.stmts[i];
        if (s.body) emit_root(*s.body, "stmt" + std::to_string(i) + ".body");
        if (s.until)
          emit_root(*s.until, "stmt" + std::to_string(i) + ".until");
      }
      for (const AggSite& site : prog_.sites) {
        if (site.send_expr)
          emit_root(*site.send_expr,
                    "site" + std::to_string(site.id) + ".send");
        if (site.init_send_expr)
          emit_root(*site.init_send_expr,
                    "site" + std::to_string(site.id) + ".init_send");
      }
      footer();
    } catch (const Unsupported& u) {
      return NativeUnit{.source = {}, .roots = {}, .unsupported = u.reason};
    }
    unit.source = out_.str();
    unit.roots = std::move(roots_);
    return unit;
  }

 private:
  // --------------------------------------------------------------- output

  void line(const std::string& s) { out_ << ind_ << s << "\n"; }
  void open(const std::string& s) {
    line(s);
    ind_ += "  ";
  }
  void close(const std::string& s = "}") {
    ind_.resize(ind_.size() - 2);
    line(s);
  }
  /// close("} else {") + re-indent, for two-armed blocks.
  void reopen(const std::string& s) {
    close(s);
    ind_ += "  ";
  }

  std::string fresh() { return "t" + std::to_string(tmp_++); }

  // ---------------------------------------------------------- expressions
  //
  // gen() emits any side effects and stateful reads as statements at call
  // time and returns a *pure* expression string over const temporaries and
  // call-invariant ctx members — so parents may combine returned strings
  // in any textual order without reordering effects.

  std::string materialize(const std::string& expr) {
    const std::string t = fresh();
    line("const DvnValue " + t + " = " + expr + ";");
    return t;
  }

  std::string gen(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit: return "dvn_int(" + int_lit(e.int_val) + ")";
      case ExprKind::kFloatLit:
        return "dvn_float(" + double_lit(e.float_val) + ")";
      case ExprKind::kBoolLit:
        return e.bool_val ? "dvn_bool(true)" : "dvn_bool(false)";
      case ExprKind::kInfty:
        return "dvn_float(std::numeric_limits<double>::infinity())";
      case ExprKind::kGraphSize:
        return "dvn_int((std::int64_t)ctx.graph_size)";
      case ExprKind::kVertexIdRef:
        return "dvn_int((std::int64_t)ctx.vertex)";
      case ExprKind::kStableRef: return "dvn_bool(ctx.stable != 0u)";
      case ExprKind::kEdgeWeight:
        // Mutable during send loops: pin the value at evaluation order.
        return materialize("dvn_float(ctx.cur_edge_weight)");
      case ExprKind::kParamRef:
        return "ctx.params[" + std::to_string(e.slot) + "]";
      case ExprKind::kVarRef:
        if (e.var_kind == VarKind::kIter) return "dvn_int(ctx.iter)";
        if (e.var_kind != VarKind::kLet)
          unsupported("unresolved variable reference");
        return materialize("ctx.scratch[" + std::to_string(e.slot) + "]");
      case ExprKind::kFieldRef:
        return materialize("ctx.fields[" + std::to_string(e.slot) + "]");
      case ExprKind::kScratchRef:
        return materialize("ctx.scratch[" + std::to_string(e.slot) + "]");
      case ExprKind::kBinary: return gen_binary(e);
      case ExprKind::kUnary: {
        const std::string a = gen(*e.kids[0]);
        if (e.un_op == UnOp::kNot) return "dvn_bool(!dvn_as_b(" + a + "))";
        return e.type == Type::kInt
                   ? "dvn_int(-dvn_as_i(" + a + "))"
                   : "dvn_float(-dvn_as_f(" + a + "))";
      }
      case ExprKind::kPairOp: {
        const std::string a = gen(*e.kids[0]);
        const std::string b = gen(*e.kids[1]);
        const char* cmp = e.pair_op == PairOp::kMin ? "<=" : ">=";
        return "dvn_coerce(dvn_as_f(" + a + ") " + cmp + " dvn_as_f(" + b +
               ") ? " + a + " : " + b + ", " + tag_of(e.type) + ")";
      }
      case ExprKind::kIf: return gen_if(e);
      case ExprKind::kLet: {
        const std::string v = gen(*e.kids[0]);
        line("ctx.scratch[" + std::to_string(e.slot) + "] = dvn_coerce(" +
             v + ", " + tag_of(e.decl_type) + ");");
        return gen(*e.kids[1]);
      }
      case ExprKind::kSeq: {
        std::string last = "dvn_int(0LL)";
        for (const ExprPtr& k : e.kids) last = gen(*k);
        return last;
      }
      case ExprKind::kAssign: {
        const std::string v = gen(*e.kids[0]);
        if (e.assign_target == AssignTarget::kField) {
          const Field& f = prog_.fields[static_cast<std::size_t>(e.slot)];
          line("ctx.fields[" + std::to_string(e.slot) + "] = dvn_coerce(" +
               v + ", " + tag_of(f.type) + ");");
          if (f.origin == Field::Origin::kUser)
            line("ctx.any_field_assign = 1u;");
        } else {
          const ScratchVar& sv =
              prog_.scratch[static_cast<std::size_t>(e.slot)];
          line("ctx.scratch[" + std::to_string(e.slot) + "] = dvn_coerce(" +
               v + ", " + tag_of(sv.type) + ");");
        }
        return "dvn_int(0LL)";
      }
      case ExprKind::kLocalDecl: {
        const std::string v = gen(*e.kids[0]);
        line("ctx.fields[" + std::to_string(e.slot) + "] = dvn_coerce(" + v +
             ", " + tag_of(e.decl_type) + ");");
        return "dvn_int(0LL)";
      }
      case ExprKind::kDegree: {
        const char* dir_in = e.dir == GraphDir::kIn ? "1u" : "0u";
        return materialize(std::string("dvn_int((std::int64_t)ctx.degree("
                                       "ctx.host, ") +
                           dir_in + "))");
      }
      case ExprKind::kFoldMessages: return gen_fold(e);
      case ExprKind::kSendLoop:
        gen_send_loop(e);
        return "dvn_int(0LL)";
      case ExprKind::kHalt:
        line("ctx.halt_requested = 1u;");
        return "dvn_int(0LL)";
      case ExprKind::kAgg:
      case ExprKind::kNeighborField:
        unsupported(std::string("unconverted ") + expr_kind_name(e.kind) +
                    " node");
    }
    unsupported("unhandled expression kind");
  }

  std::string gen_binary(const Expr& e) {
    // Short-circuit operators first, exactly as the interpreter.
    if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
      const bool is_and = e.bin_op == BinOp::kAnd;
      const std::string t = fresh();
      line("DvnValue " + t + ";");
      const std::string a = gen(*e.kids[0]);
      open(std::string("if (") + (is_and ? "!" : "") + "dvn_as_b(" + a +
           ")) {");
      line(t + " = dvn_bool(" + (is_and ? "false" : "true") + ");");
      reopen("} else {");
      const std::string b = gen(*e.kids[1]);
      line(t + " = dvn_bool(dvn_as_b(" + b + "));");
      close();
      return t;
    }
    const std::string a = gen(*e.kids[0]);
    const std::string b = gen(*e.kids[1]);
    const auto arith = [&](const char* op) {
      return e.type == Type::kInt
                 ? "dvn_int(dvn_as_i(" + a + ") " + op + " dvn_as_i(" + b +
                       "))"
                 : "dvn_float(dvn_as_f(" + a + ") " + op + " dvn_as_f(" + b +
                       "))";
    };
    const auto cmp = [&](const char* op) {
      return "dvn_bool(dvn_as_f(" + a + ") " + op + " dvn_as_f(" + b + "))";
    };
    switch (e.bin_op) {
      case BinOp::kAdd: return arith("+");
      case BinOp::kSub: return arith("-");
      case BinOp::kMul: return arith("*");
      case BinOp::kDiv:
        // '/' is always float (IEEE: x/0 → ±inf, 0/0 → nan).
        return "dvn_float(dvn_as_f(" + a + ") / dvn_as_f(" + b + "))";
      case BinOp::kLt: return cmp("<");
      case BinOp::kGt: return cmp(">");
      case BinOp::kGe: return cmp(">=");
      case BinOp::kLe: return cmp("<=");
      case BinOp::kEq: return "dvn_bool(dvn_equals(" + a + ", " + b + "))";
      case BinOp::kNe: return "dvn_bool(!dvn_equals(" + a + ", " + b + "))";
      default: unsupported("unhandled binary operator");
    }
  }

  std::string gen_if(const Expr& e) {
    const std::string t = fresh();
    line("DvnValue " + t + " = dvn_int(0LL);");
    const std::string c = gen(*e.kids[0]);
    open("if (dvn_as_b(" + c + ")) {");
    const std::string v = gen(*e.kids[1]);
    if (e.type != Type::kUnit)
      line(t + " = dvn_coerce(" + v + ", " + tag_of(e.type) + ");");
    if (e.kids.size() == 3) {
      reopen("} else {");
      const std::string v2 = gen(*e.kids[2]);
      if (e.type != Type::kUnit)
        line(t + " = dvn_coerce(" + v2 + ", " + tag_of(e.type) + ");");
      close();
    } else if (e.obs_site >= 0) {
      // §6.3 change check held a whole broadcast back: count the fan-out
      // that was never sent (metered runs only).
      reopen("} else if (ctx.has_obs && ctx.has_vertex) {");
      line(std::string("ctx.obs_add(ctx.host, kObsSendsSuppressed, "
                       "ctx.degree(ctx.host, ") +
           (e.dir == GraphDir::kIn ? "1u" : "0u") + "));");
      close();
    } else {
      close();
    }
    return t;
  }

  /// Eq. 3 full fold / Eq. 8-9 Δ-fold into the memoized accumulator slots,
  /// specialized for one site (runtime/interpreter.cpp eval_fold).
  std::string gen_fold(const Expr& e) {
    const AggSite& site = prog_.sites[static_cast<std::size_t>(e.site)];
    const std::string op = std::to_string(static_cast<int>(site.op));
    const std::string tg = tag_of(site.elem_type);
    const std::string S = std::to_string(e.site);
    const std::string t = fresh();
    line("DvnValue " + t + ";");
    open("{");
    if (!e.flag) {
      line("if (ctx.has_obs) ctx.obs_add(ctx.host, kObsMemoRecomputes, "
           "1ull);");
      line("DvnValue dvn_acc = dvn_agg_identity(" + op + ", " + tg + ");");
      open("for (std::uint64_t dvn_mi = 0; dvn_mi < ctx.num_msgs; "
           "++dvn_mi) {");
      line("const DvnMsg& m = ctx.msgs[dvn_mi];");
      line("if (m.site != " + S + "u) continue;");
      line("dvn_acc = dvn_agg_apply(" + op + ", " + tg +
           ", dvn_acc, m.payload);");
      close();
      line(t + " = dvn_acc;");
    } else {
      line("if (ctx.has_obs) ctx.obs_add(ctx.host, kObsMemoHits, 1ull);");
      const std::string acc =
          "ctx.fields[" + std::to_string(site.acc_slot) + "]";
      if (site.multiplicative()) {
        line("if (ctx.has_obs) ctx.obs_add(ctx.host, "
             "kObsAbsorbingSlowPath, 1ull);");
        const std::string nn =
            "ctx.fields[" + std::to_string(site.nn_slot) + "]";
        const std::string nulls =
            "ctx.fields[" + std::to_string(site.nulls_slot) + "]";
        open("for (std::uint64_t dvn_mi = 0; dvn_mi < ctx.num_msgs; "
             "++dvn_mi) {");
        line("const DvnMsg& m = ctx.msgs[dvn_mi];");
        line("if (m.site != " + S + "u) continue;");
        line(nn + " = dvn_agg_apply(" + op + ", " + tg + ", " + nn +
             ", m.payload);");
        line(nulls + ".u.i += (std::int64_t)m.nulls - "
                     "(std::int64_t)m.denulls;");
        line(acc + " = " + nulls + ".u.i > 0 ? dvn_agg_absorbing(" + op +
             ", " + tg + ") : " + nn + ";");
        close();
      } else {
        open("for (std::uint64_t dvn_mi = 0; dvn_mi < ctx.num_msgs; "
             "++dvn_mi) {");
        line("const DvnMsg& m = ctx.msgs[dvn_mi];");
        line("if (m.site != " + S + "u) continue;");
        line(acc + " = dvn_agg_apply(" + op + ", " + tg + ", " + acc +
             ", m.payload);");
        close();
      }
      line(t + " = " + acc + ";");
    }
    close();
    return t;
  }

  /// Broadcast over one neighbor span (runtime/interpreter.cpp
  /// eval_send_loop): last-execution suppression, then the lock-free fold
  /// path for routed Δ-sites, else the buffered loop — with the whole-span
  /// single-synthesis specialization when the payload is span-invariant.
  void gen_send_loop(const Expr& e) {
    const AggSite& site = prog_.sites[static_cast<std::size_t>(e.site)];
    const std::string op = std::to_string(static_cast<int>(site.op));
    const std::string tg = tag_of(site.elem_type);
    const std::string S = std::to_string(e.site);
    const bool invariant =
        span_invariant(*e.kids[0]) &&
        (!e.flag || span_invariant(*e.kids[1]));
    open("{");
    line("const std::uint32_t* dvn_tg; const double* dvn_wt;");
    line("std::uint64_t dvn_nt, dvn_nw;");
    line(std::string("ctx.arcs(ctx.host, ") +
         (e.dir == GraphDir::kIn ? "1u" : "0u") +
         ", &dvn_tg, &dvn_wt, &dvn_nt, &dvn_nw);");
    open("if (ctx.suppress_sites & (1ull << " + S + ")) {");
    line("if (ctx.has_obs) ctx.obs_add(ctx.host, "
         "kObsLastStepSendsSuppressed, dvn_nt);");
    reopen("} else {");
    if (e.flag)
      line("const std::int32_t dvn_acol = ctx.atomic_route ? "
           "ctx.atomic_route[" + S + "] : -1;");

    const auto set_envelope = [&](const char* msg) {
      line(std::string(msg) + ".site = (std::uint8_t)" + S + "; " + msg +
           ".wire = ctx.site_wire[" + S + "];");
    };

    if (invariant && e.flag) {
      open("if (dvn_nt) {");
      line("ctx.cur_edge_weight = dvn_nw ? dvn_wt[dvn_nt - 1] : 1.0;");
      const std::string nv = gen(*e.kids[0]);
      const std::string ov = gen(*e.kids[1]);
      line("const DvnValue dvn_nv = dvn_coerce(" + nv + ", " + tg + ");");
      line("const DvnValue dvn_ov = dvn_coerce(" + ov + ", " + tg + ");");
      line("const DvnDelta dvn_d = dvn_synth_delta(" + op + ", " + tg +
           ", dvn_ov, dvn_nv);");
      open("if (dvn_d.noop) {");
      line("if (ctx.has_obs) ctx.obs_add(ctx.host, kObsSendsSuppressed, "
           "dvn_nt);");
      reopen("} else if (dvn_acol >= 0) {");
      // Fused Δ-send/Δ-fold: one synthesized Δ, folded lock-free into
      // every receiver's pending slot; NaN payloads fall back per edge.
      line("DvnMsg dvn_msg; dvn_msg.payload = dvn_d.value; "
           "dvn_msg.nulls = 0; dvn_msg.denulls = 0;");
      set_envelope("dvn_msg");
      open("for (std::uint64_t dvn_ei = 0; dvn_ei < dvn_nt; ++dvn_ei) {");
      line("if (!ctx.atomic_fold(ctx.host, dvn_tg[dvn_ei], dvn_acol, "
           "&dvn_d.value))");
      line("  ctx.send(ctx.host, dvn_tg[dvn_ei], &dvn_msg);");
      close();
      reopen("} else {");
      line("DvnMsg dvn_msg; dvn_msg.payload = dvn_d.value; "
           "dvn_msg.nulls = dvn_d.nulls; dvn_msg.denulls = dvn_d.denulls;");
      set_envelope("dvn_msg");
      line("ctx.send_span(ctx.host, dvn_tg, dvn_nt, &dvn_msg);");
      line("if (ctx.has_obs) ctx.obs_add(ctx.host, kObsDeltaMessages, "
           "dvn_nt);");
      close();
      close();
    } else if (invariant) {
      open("if (dvn_nt) {");
      line("ctx.cur_edge_weight = dvn_nw ? dvn_wt[dvn_nt - 1] : 1.0;");
      const std::string p = gen(*e.kids[0]);
      line("const DvnValue dvn_pl = dvn_coerce(" + p + ", " + tg + ");");
      open("if (dvn_is_identity(" + op + ", dvn_pl)) {");
      line("if (ctx.has_obs) ctx.obs_add(ctx.host, kObsSendsSuppressed, "
           "dvn_nt);");
      reopen("} else {");
      line("DvnMsg dvn_msg; dvn_msg.payload = dvn_pl; dvn_msg.nulls = 0; "
           "dvn_msg.denulls = 0;");
      set_envelope("dvn_msg");
      line("ctx.send_span(ctx.host, dvn_tg, dvn_nt, &dvn_msg);");
      line("if (ctx.has_obs) ctx.obs_add(ctx.host, kObsFullMessages, "
           "dvn_nt);");
      close();
      close();
    } else if (e.flag) {
      line("std::uint64_t dvn_sup = 0, dvn_sent = 0;");
      const auto delta_head = [&] {
        line("ctx.cur_edge_weight = dvn_nw ? dvn_wt[dvn_ei] : 1.0;");
        const std::string nv = gen(*e.kids[0]);
        const std::string ov = gen(*e.kids[1]);
        line("const DvnValue dvn_nv = dvn_coerce(" + nv + ", " + tg + ");");
        line("const DvnValue dvn_ov = dvn_coerce(" + ov + ", " + tg + ");");
        line("const DvnDelta dvn_d = dvn_synth_delta(" + op + ", " + tg +
             ", dvn_ov, dvn_nv);");
        line("if (dvn_d.noop) { ++dvn_sup; continue; }");
      };
      open("if (dvn_acol >= 0) {");
      open("for (std::uint64_t dvn_ei = 0; dvn_ei < dvn_nt; ++dvn_ei) {");
      delta_head();
      open("if (!ctx.atomic_fold(ctx.host, dvn_tg[dvn_ei], dvn_acol, "
           "&dvn_d.value)) {");
      line("DvnMsg dvn_msg; dvn_msg.payload = dvn_d.value; "
           "dvn_msg.nulls = 0; dvn_msg.denulls = 0;");
      set_envelope("dvn_msg");
      line("ctx.send(ctx.host, dvn_tg[dvn_ei], &dvn_msg);");
      close();
      close();
      line("if (ctx.has_obs) ctx.obs_add(ctx.host, kObsSendsSuppressed, "
           "dvn_sup);");
      reopen("} else {");
      open("for (std::uint64_t dvn_ei = 0; dvn_ei < dvn_nt; ++dvn_ei) {");
      delta_head();
      line("DvnMsg dvn_msg; dvn_msg.payload = dvn_d.value; "
           "dvn_msg.nulls = dvn_d.nulls; dvn_msg.denulls = dvn_d.denulls;");
      set_envelope("dvn_msg");
      line("ctx.send(ctx.host, dvn_tg[dvn_ei], &dvn_msg);");
      line("++dvn_sent;");
      close();
      open("if (ctx.has_obs) {");
      line("ctx.obs_add(ctx.host, kObsSendsSuppressed, dvn_sup);");
      line("ctx.obs_add(ctx.host, kObsDeltaMessages, dvn_sent);");
      close();
      close();
    } else {
      line("std::uint64_t dvn_sup = 0, dvn_sent = 0;");
      open("for (std::uint64_t dvn_ei = 0; dvn_ei < dvn_nt; ++dvn_ei) {");
      line("ctx.cur_edge_weight = dvn_nw ? dvn_wt[dvn_ei] : 1.0;");
      const std::string p = gen(*e.kids[0]);
      line("const DvnValue dvn_pl = dvn_coerce(" + p + ", " + tg + ");");
      line("if (dvn_is_identity(" + op + ", dvn_pl)) { ++dvn_sup; "
           "continue; }");
      line("DvnMsg dvn_msg; dvn_msg.payload = dvn_pl; dvn_msg.nulls = 0; "
           "dvn_msg.denulls = 0;");
      set_envelope("dvn_msg");
      line("ctx.send(ctx.host, dvn_tg[dvn_ei], &dvn_msg);");
      line("++dvn_sent;");
      close();
      open("if (ctx.has_obs) {");
      line("ctx.obs_add(ctx.host, kObsSendsSuppressed, dvn_sup);");
      line("ctx.obs_add(ctx.host, kObsFullMessages, dvn_sent);");
      close();
    }
    close();  // else (not suppressed)
    close();  // block
  }

  // -------------------------------------------------------------- roots

  void emit_root(const Expr& e, const std::string& label) {
    const int idx = static_cast<int>(roots_.size());
    roots_.push_back(&e);
    tmp_ = 0;
    out_ << "\n// root " << idx << ": " << label << "\n";
    open("static void dvn_root_" + std::to_string(idx) +
         "(DvnCtx* dvn_ctx, DvnValue* dvn_ret) {");
    line("DvnCtx& ctx = *dvn_ctx;");
    const std::string r = gen(e);
    line("*dvn_ret = " + r + ";");
    close();
  }

  // ------------------------------------------------------------ sections

  void preamble() {
    out_ << "// Native-tier translation unit for a compiled ΔV program "
            "(variant: "
         << (cp_.options.incrementalize ? "ΔV" : "ΔV*")
         << ").\n"
            "// Generated by dv::native::emit_native_unit - do not edit.\n"
            "// ABI v"
         << kDvnAbiVersion
         << " (src/dv/codegen/native_abi.h); semantics mirror\n"
            "// src/dv/runtime/interpreter.cpp and are held bit-exact by "
            "the differential\n"
            "// fuzzer's tier axis.\n";
    out_ << R"raw(#include <cstddef>
#include <cstdint>
#include <limits>

extern "C" {
struct DvnValue {
  std::uint8_t tag;  // 0 = int, 1 = bool, 2 = float
  union { std::int64_t i; double f; bool b; } u;
};
struct DvnMsg {
  DvnValue payload;
  std::int32_t nulls;
  std::int32_t denulls;
  std::uint8_t site;
  std::uint8_t wire;
};
struct DvnCtx {
  DvnValue* fields;
  DvnValue* scratch;
  const DvnMsg* msgs;
  std::uint64_t num_msgs;
  std::uint32_t vertex;
  std::uint8_t has_vertex;
  const DvnValue* params;
  std::int64_t iter;
  std::uint8_t stable;
  std::uint64_t suppress_sites;
  std::uint64_t graph_size;
  double cur_edge_weight;
  std::uint8_t halt_requested;
  std::uint8_t any_field_assign;
  const std::uint8_t* site_wire;
  const std::int32_t* atomic_route;
  std::uint8_t has_obs;
  void* host;
  void (*arcs)(void* host, std::uint8_t dir_in, const std::uint32_t** nbrs,
               const double** wts, std::uint64_t* n_nbrs,
               std::uint64_t* n_wts);
  std::uint64_t (*degree)(void* host, std::uint8_t dir_in);
  void (*send)(void* host, std::uint32_t dst, const DvnMsg* msg);
  void (*send_span)(void* host, const std::uint32_t* dsts, std::uint64_t n,
                    const DvnMsg* msg);
  std::int32_t (*atomic_fold)(void* host, std::uint32_t dst,
                              std::int32_t col, const DvnValue* payload);
  void (*obs_add)(void* host, std::uint32_t counter, std::uint64_t n);
};
typedef void (*DvnRootFn)(DvnCtx*, DvnValue*);
struct DvnVTable {
  std::uint32_t abi_version;
  std::uint32_t num_roots;
  const char* source_digest;
  const DvnRootFn* roots;
};
}  // extern "C"

// Layout pins: refuse to build where the host's raw-pointer crossing
// would be illegal (native_abi.h asserts the mirror-image side).
static_assert(sizeof(DvnValue) == 16 && alignof(DvnValue) == 8, "abi");
static_assert(offsetof(DvnValue, u) == 8, "abi");
static_assert(sizeof(DvnMsg) == 32, "abi");
static_assert(offsetof(DvnMsg, nulls) == 16, "abi");
static_assert(offsetof(DvnMsg, denulls) == 20, "abi");
static_assert(offsetof(DvnMsg, site) == 24, "abi");
static_assert(offsetof(DvnMsg, wire) == 25, "abi");
static_assert(sizeof(bool) == 1, "abi");

// ---- Value algebra, mirroring src/dv/runtime/value.h. `op` mirrors
// AggOp (0 +, 1 *, 2 min, 3 max, 4 ||, 5 &&), `tag` mirrors Type. Call
// sites pass constants; the optimizer folds every dispatch below into
// straight-line code.
static inline DvnValue dvn_int(std::int64_t v) {
  DvnValue x; x.tag = 0u; x.u.i = v; return x;
}
static inline DvnValue dvn_float(double v) {
  DvnValue x; x.tag = 2u; x.u.f = v; return x;
}
static inline DvnValue dvn_bool(bool v) {
  DvnValue x; x.tag = 1u; x.u.i = 0; x.u.b = v; return x;
}
static inline double dvn_as_f(DvnValue v) {
  return v.tag == 2u ? v.u.f
                     : (v.tag == 0u ? (double)v.u.i : (v.u.b ? 1.0 : 0.0));
}
static inline std::int64_t dvn_as_i(DvnValue v) {
  return v.tag == 0u
             ? v.u.i
             : (v.tag == 2u ? (std::int64_t)v.u.f
                            : (std::int64_t)(v.u.b ? 1 : 0));
}
static inline bool dvn_as_b(DvnValue v) { return v.u.b; }
static inline DvnValue dvn_coerce(DvnValue v, unsigned tag) {
  if (v.tag == tag) return v;
  if (tag == 2u) return dvn_float(dvn_as_f(v));
  if (tag == 0u) return dvn_int(dvn_as_i(v));
  return dvn_bool(dvn_as_b(v));
}
static inline bool dvn_equals(DvnValue a, DvnValue b) {
  if (a.tag == 1u || b.tag == 1u) return a.tag == b.tag && a.u.b == b.u.b;
  if (a.tag == 0u && b.tag == 0u) return a.u.i == b.u.i;
  return dvn_as_f(a) == dvn_as_f(b);
}
static inline DvnValue dvn_agg_identity(int op, unsigned tag) {
  if (tag == 1u) return dvn_bool(op == 5);
  if (tag == 0u) {
    if (op == 0) return dvn_int(0);
    if (op == 1) return dvn_int(1);
    if (op == 2) return dvn_int(9223372036854775807LL);
    return dvn_int(-9223372036854775807LL - 1LL);
  }
  if (op == 0) return dvn_float(0.0);
  if (op == 1) return dvn_float(1.0);
  if (op == 2) return dvn_float(std::numeric_limits<double>::infinity());
  return dvn_float(-std::numeric_limits<double>::infinity());
}
static inline DvnValue dvn_agg_absorbing(int op, unsigned tag) {
  if (op == 1) return tag == 0u ? dvn_int(0) : dvn_float(0.0);
  return dvn_bool(op == 4);
}
static inline bool dvn_is_absorbing(int op, DvnValue v) {
  if (op == 1) return dvn_as_f(v) == 0.0;
  if (op == 5) return !dvn_as_b(v);
  if (op == 4) return dvn_as_b(v);
  return false;
}
static inline bool dvn_is_identity(int op, DvnValue v) {
  switch (op) {
    case 0: return dvn_as_f(v) == 0.0;
    case 1: return dvn_as_f(v) == 1.0;
    case 2:
      return v.tag == 0u
                 ? v.u.i == 9223372036854775807LL
                 : dvn_as_f(v) == std::numeric_limits<double>::infinity();
    case 3:
      return v.tag == 0u
                 ? v.u.i == (-9223372036854775807LL - 1LL)
                 : dvn_as_f(v) == -std::numeric_limits<double>::infinity();
    case 5: return dvn_as_b(v);
    default: return !dvn_as_b(v);
  }
}
static inline DvnValue dvn_agg_apply(int op, unsigned tag, DvnValue a,
                                     DvnValue b) {
  switch (op) {
    case 0:
      return tag == 0u ? dvn_int(dvn_as_i(a) + dvn_as_i(b))
                       : dvn_float(dvn_as_f(a) + dvn_as_f(b));
    case 1:
      return tag == 0u ? dvn_int(dvn_as_i(a) * dvn_as_i(b))
                       : dvn_float(dvn_as_f(a) * dvn_as_f(b));
    case 2:
      if (tag == 0u)
        return dvn_int(dvn_as_i(a) < dvn_as_i(b) ? dvn_as_i(a)
                                                 : dvn_as_i(b));
      return dvn_float(dvn_as_f(a) < dvn_as_f(b) ? dvn_as_f(a)
                                                 : dvn_as_f(b));
    case 3:
      if (tag == 0u)
        return dvn_int(dvn_as_i(a) > dvn_as_i(b) ? dvn_as_i(a)
                                                 : dvn_as_i(b));
      return dvn_float(dvn_as_f(a) > dvn_as_f(b) ? dvn_as_f(a)
                                                 : dvn_as_f(b));
    case 4: return dvn_bool(dvn_as_b(a) || dvn_as_b(b));
    default: return dvn_bool(dvn_as_b(a) && dvn_as_b(b));
  }
}
// Δ-message synthesis, mirroring src/dv/runtime/delta.h (§6.5 / Eq. 11).
struct DvnDelta {
  DvnValue value;
  std::int32_t nulls;
  std::int32_t denulls;
  bool noop;
};
static inline DvnDelta dvn_synth_delta(int op, unsigned tag, DvnValue old_v,
                                       DvnValue new_v) {
  DvnDelta d;
  d.nulls = 0; d.denulls = 0; d.noop = false;
  switch (op) {
    case 0:
      d.value = tag == 0u ? dvn_int(dvn_as_i(new_v) - dvn_as_i(old_v))
                          : dvn_float(dvn_as_f(new_v) - dvn_as_f(old_v));
      d.noop = dvn_is_identity(op, d.value);
      return d;
    case 1: {
      const bool old_null = dvn_is_absorbing(op, old_v);
      const bool new_null = dvn_is_absorbing(op, new_v);
      if (!old_null && !new_null) {
        d.value = dvn_float(dvn_as_f(new_v) / dvn_as_f(old_v));
        d.noop = dvn_is_identity(op, d.value);
      } else if (!old_null && new_null) {
        d.value = dvn_float(1.0 / dvn_as_f(old_v));
        d.nulls = 1;
      } else if (old_null && !new_null) {
        d.value = dvn_coerce(new_v, tag);
        d.denulls = 1;
      } else {
        d.value = dvn_agg_identity(op, tag);
        d.noop = true;
      }
      return d;
    }
    case 2:
    case 3:
      d.value = dvn_coerce(new_v, tag);
      d.noop = dvn_is_identity(op, d.value);
      return d;
    default: {
      const bool old_null = dvn_is_absorbing(op, old_v);
      const bool new_null = dvn_is_absorbing(op, new_v);
      d.value = dvn_agg_identity(op, tag);
      if (!old_null && new_null) d.nulls = 1;
      else if (old_null && !new_null) d.denulls = 1;
      else d.noop = true;
      return d;
    }
  }
}
)raw";
    // Observability counter ids, baked from the host's fixed catalogue at
    // emission time (obs/metrics.h) — always in sync by construction.
    const auto cid = [](obs::Counter c) {
      return std::to_string(static_cast<std::uint32_t>(c)) + "u";
    };
    out_ << "enum : std::uint32_t {\n"
         << "  kObsSendsSuppressed = " << cid(obs::Counter::kSendsSuppressed)
         << ",\n"
         << "  kObsDeltaMessages = " << cid(obs::Counter::kDeltaMessages)
         << ",\n"
         << "  kObsFullMessages = " << cid(obs::Counter::kFullMessages)
         << ",\n"
         << "  kObsLastStepSendsSuppressed = "
         << cid(obs::Counter::kLastStepSendsSuppressed) << ",\n"
         << "  kObsMemoHits = " << cid(obs::Counter::kMemoHits) << ",\n"
         << "  kObsMemoRecomputes = " << cid(obs::Counter::kMemoRecomputes)
         << ",\n"
         << "  kObsAbsorbingSlowPath = "
         << cid(obs::Counter::kAbsorbingSlowPath) << ",\n"
         << "};\n";
  }

  void footer() {
    out_ << "\nstatic const DvnRootFn kDvnRoots[] = {\n";
    for (std::size_t i = 0; i < roots_.size(); ++i)
      out_ << "  dvn_root_" << i << ",\n";
    out_ << "};\n"
         << "static const DvnVTable kDvnVTable = {" << kDvnAbiVersion
         << "u, " << roots_.size() << "u, \"" << kDigestPlaceholder
         << "\", kDvnRoots};\n"
         << "extern \"C\" __attribute__((visibility(\"default\"))) const "
            "DvnVTable* "
         << kDvnEntrySymbol << "() { return &kDvnVTable; }\n";
  }

  const CompiledProgram& cp_;
  const Program& prog_;
  std::ostringstream out_;
  std::string ind_;
  std::vector<const Expr*> roots_;
  int tmp_ = 0;
};

}  // namespace

NativeUnit emit_native_unit(const CompiledProgram& cp) {
  if (cp.program.sites.size() >= 64)
    return NativeUnit{.source = {},
                      .roots = {},
                      .unsupported = "more than 63 aggregation sites"};
  return NativeEmitter(cp).emit();
}

}  // namespace deltav::dv::native
