// C++ code generation backend.
//
// The paper's toolchain compiles ΔV programs down to Pregel+ C++ source;
// our default execution path interprets the transformed AST instead (which
// keeps the pipeline introspectable). This backend restores the paper's
// deployment story: it emits a self-contained C++ translation unit
// implementing the compiled program as a vertex program against this
// library's pregel::Engine, with all §6 machinery — change checks,
// memoized accumulators, Δ-message synthesis, halts — specialized into
// straight-line scalar code (no Value boxing, no tree walking).
//
// Scope: single-statement programs (init + one step/iter) — all of the
// paper's benchmarks. Multi-statement programs throw; run those through
// the interpreter.
//
//   const auto cp = dv::compile(source);
//   std::string cpp = dv::emit_cpp(cp, "PageRank");
//   // write to file, compile against this library, call
//   // dvgen::PageRank::run(graph, {.steps = 29});
#pragma once

#include <string>

#include "dv/compiler.h"

namespace deltav::dv {

/// Emits the translation unit. `class_name` must be a valid C++
/// identifier. Throws CompileError for programs outside the supported
/// subset (multiple statements).
std::string emit_cpp(const CompiledProgram& cp,
                     const std::string& class_name);

}  // namespace deltav::dv
