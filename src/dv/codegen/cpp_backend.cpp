#include "dv/codegen/cpp_backend.h"

#include <sstream>

#include "dv/runtime/value.h"

namespace deltav::dv {

namespace {

/// C++ scalar type for a ΔV type. Bools are stored as uint8 (vector<bool>
/// is both slow and un-referenceable); expressions still use native bool.
const char* storage_type(Type t) {
  switch (t) {
    case Type::kInt: return "std::int64_t";
    case Type::kFloat: return "double";
    case Type::kBool: return "std::uint8_t";
    default: DV_FAIL("no storage type for " << type_name(t));
  }
}

const char* expr_type(Type t) {
  switch (t) {
    case Type::kInt: return "std::int64_t";
    case Type::kFloat: return "double";
    case Type::kBool: return "bool";
    default: DV_FAIL("no expression type for " << type_name(t));
  }
}

std::string identity_literal(AggOp op, Type t) {
  switch (t) {
    case Type::kFloat: {
      const double v = agg_identity_double(op);
      if (v == std::numeric_limits<double>::infinity())
        return "std::numeric_limits<double>::infinity()";
      if (v == -std::numeric_limits<double>::infinity())
        return "-std::numeric_limits<double>::infinity()";
      std::ostringstream os;
      os << v << ".0";
      return os.str();
    }
    case Type::kInt: {
      const auto v = agg_identity_int(op);
      if (v == std::numeric_limits<std::int64_t>::max())
        return "std::numeric_limits<std::int64_t>::max()";
      if (v == std::numeric_limits<std::int64_t>::min())
        return "std::numeric_limits<std::int64_t>::min()";
      return std::to_string(v);
    }
    case Type::kBool:
      return agg_identity_bool(op) ? "true" : "false";
    default:
      DV_FAIL("no identity literal");
  }
}

/// a ⊞ b as a C++ expression.
std::string fold_apply(AggOp op, Type t, const std::string& a,
                       const std::string& b) {
  switch (op) {
    case AggOp::kSum: return "(" + a + " + " + b + ")";
    case AggOp::kProd: return "(" + a + " * " + b + ")";
    case AggOp::kMin:
      return std::string("std::min<") + expr_type(t) + ">(" + a + ", " + b +
             ")";
    case AggOp::kMax:
      return std::string("std::max<") + expr_type(t) + ">(" + a + ", " + b +
             ")";
    case AggOp::kAnd: return "(" + a + " && " + b + ")";
    case AggOp::kOr: return "(" + a + " || " + b + ")";
  }
  DV_FAIL("unknown op");
}

/// Decodes a Msg payload (double on the wire) into the element type.
std::string payload_decode(Type t) {
  switch (t) {
    case Type::kFloat: return "m.payload";
    case Type::kInt: return "std::int64_t(m.payload)";
    case Type::kBool: return "(m.payload != 0.0)";
    default: DV_FAIL("bad payload type");
  }
}

class CppEmitter {
 public:
  CppEmitter(const CompiledProgram& cp, std::string class_name)
      : cp_(cp), prog_(cp.program), name_(std::move(class_name)) {}

  std::string emit() {
    DV_CHECK_MSG(prog_.stmts.size() == 1,
                 "C++ code generation supports single-statement programs; "
                 "run multi-statement programs through the interpreter");
    header();
    msg_and_combiner();
    params_struct();
    result_struct();
    run_function();
    footer();
    return out_.str();
  }

 private:
  // ---------------------------------------------------------- expressions

  std::string field_lv(int slot) const {
    return "f_" + prog_.fields[static_cast<std::size_t>(slot)].name + "[v]";
  }

  std::string field_rv(int slot) const {
    const Field& f = prog_.fields[static_cast<std::size_t>(slot)];
    if (f.type == Type::kBool) return "(" + field_lv(slot) + " != 0)";
    return field_lv(slot);
  }

  std::string scratch_name(int slot) const {
    return "s" + std::to_string(slot) + "_" +
           prog_.scratch[static_cast<std::size_t>(slot)].name;
  }

  std::string expr(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return "std::int64_t(" + std::to_string(e.int_val) + ")";
      case ExprKind::kFloatLit: {
        std::ostringstream os;
        os.precision(17);
        os << e.float_val;
        std::string s = os.str();
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos)
          s += ".0";
        return s;
      }
      case ExprKind::kBoolLit: return e.bool_val ? "true" : "false";
      case ExprKind::kInfty:
        return "std::numeric_limits<double>::infinity()";
      case ExprKind::kGraphSize: return "std::int64_t(n)";
      case ExprKind::kVertexIdRef: return "std::int64_t(v)";
      case ExprKind::kEdgeWeight: return "ew";
      case ExprKind::kParamRef: return "params." + e.name;
      case ExprKind::kFieldRef: return field_rv(e.slot);
      case ExprKind::kScratchRef:
      case ExprKind::kVarRef:
        if (e.kind == ExprKind::kVarRef && e.var_kind == VarKind::kIter)
          return "iter";
        return scratch_name(e.slot);
      case ExprKind::kDegree: {
        const char* fn = e.dir == GraphDir::kIn ? "in_degree" : "out_degree";
        return std::string("std::int64_t(g.") + fn + "(v))";
      }
      case ExprKind::kBinary: return binary(e);
      case ExprKind::kUnary:
        return std::string("(") + (e.un_op == UnOp::kNeg ? "-" : "!") +
               expr(*e.kids[0]) + ")";
      case ExprKind::kPairOp: {
        const char* fn = e.pair_op == PairOp::kMin ? "min" : "max";
        return std::string("std::") + fn + "<" + expr_type(e.type) + ">(" +
               expr(*e.kids[0]) + ", " + expr(*e.kids[1]) + ")";
      }
      case ExprKind::kIf:
        DV_CHECK_MSG(e.kids.size() == 3 && e.type != Type::kUnit,
                     "if-statement in expression position");
        return "(" + expr(*e.kids[0]) + " ? " + expr_type(e.type) + "(" +
               expr(*e.kids[1]) + ") : " + expr_type(e.type) + "(" +
               expr(*e.kids[2]) + "))";
      case ExprKind::kStableRef: return "stable";
      default:
        DV_FAIL("expression emitter: unexpected "
                << expr_kind_name(e.kind));
    }
  }

  std::string binary(const Expr& e) const {
    const std::string a = expr(*e.kids[0]);
    const std::string b = expr(*e.kids[1]);
    const char* op = nullptr;
    switch (e.bin_op) {
      case BinOp::kAdd: op = "+"; break;
      case BinOp::kSub: op = "-"; break;
      case BinOp::kMul: op = "*"; break;
      case BinOp::kDiv:
        return "(double(" + a + ") / double(" + b + "))";
      case BinOp::kAnd: op = "&&"; break;
      case BinOp::kOr: op = "||"; break;
      case BinOp::kLt: op = "<"; break;
      case BinOp::kGt: op = ">"; break;
      case BinOp::kGe: op = ">="; break;
      case BinOp::kLe: op = "<="; break;
      case BinOp::kEq: op = "=="; break;
      case BinOp::kNe: op = "!="; break;
    }
    return "(" + a + " " + op + " " + b + ")";
  }

  // ----------------------------------------------------------- statements

  void line(const std::string& s) { out_ << ind_ << s << "\n"; }
  void open(const std::string& s) {
    line(s);
    ind_ += "  ";
  }
  void close(const std::string& s = "}") {
    ind_.resize(ind_.size() - 2);
    line(s);
  }

  void stmt(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kSeq:
        for (const auto& k : e.kids) stmt(*k);
        return;
      case ExprKind::kLocalDecl:
      case ExprKind::kAssign: {
        if (e.kind == ExprKind::kAssign &&
            e.assign_target == AssignTarget::kScratch) {
          if (!e.kids[0] || e.kids[0]->kind != ExprKind::kFoldMessages) {
            line(scratch_name(e.slot) + " = " + expr(*e.kids[0]) + ";");
          } else {
            fold_into(*e.kids[0], scratch_name(e.slot));
          }
          return;
        }
        const Field& f = prog_.fields[static_cast<std::size_t>(e.slot)];
        if (e.kids[0]->kind == ExprKind::kFoldMessages) {
          fold_into(*e.kids[0], field_lv(e.slot));
        } else if (f.type == Type::kBool) {
          line(field_lv(e.slot) + " = std::uint8_t(" + expr(*e.kids[0]) +
               ");");
        } else {
          line(field_lv(e.slot) + " = " + expr(*e.kids[0]) + ";");
        }
        if (e.kind == ExprKind::kAssign && track_assigns_)
          line("any_assign.store(true, std::memory_order_relaxed);");
        return;
      }
      case ExprKind::kLet: {
        // All scratch slots (including let bindings — slots are unique
        // even under shadowing) are declared once at the top of compute.
        if (e.kids[0]->kind == ExprKind::kFoldMessages) {
          fold_into(*e.kids[0], scratch_name(e.slot));
        } else {
          line(scratch_name(e.slot) + " = " + expr(*e.kids[0]) + ";");
        }
        stmt(*e.kids[1]);
        return;
      }
      case ExprKind::kIf: {
        open("if (" + expr(*e.kids[0]) + ") {");
        stmt(*e.kids[1]);
        if (e.kids.size() == 3) {
          close("} else {");
          ind_ += "  ";
          stmt(*e.kids[2]);
        }
        close();
        return;
      }
      case ExprKind::kHalt:
        line("ctx.vote_to_halt();");
        return;
      case ExprKind::kSendLoop:
        send_loop(e);
        return;
      default:
        // A pure expression in statement position: evaluate for nothing.
        line("(void)(" + expr(e) + ");");
        return;
    }
  }

  /// Emits the message fold of Eq. 3 / Eq. 8-9 assigning into `target`.
  void fold_into(const Expr& e, const std::string& target) {
    const AggSite& site = prog_.sites[static_cast<std::size_t>(e.site)];
    const std::string S = std::to_string(site.id);
    const Type t = site.elem_type;
    if (!e.flag) {  // Eq. 3: fold this superstep's messages from identity
      open("{");
      line(std::string(expr_type(t)) + " acc = " +
           identity_literal(site.op, t) + ";");
      open("for (const Msg& m : msgs) {");
      line("if (m.site != " + S + ") continue;");
      line("acc = " + fold_apply(site.op, t, "acc", payload_decode(t)) +
           ";");
      close();
      if (t == Type::kBool) {
        line(target + " = std::uint8_t(acc);");
      } else {
        line(target + " = acc;");
      }
      close();
      return;
    }
    // Eq. 8/9: fold Δ-messages into the memoized accumulator.
    const std::string acc = field_lv(site.acc_slot);
    open("{");
    if (site.multiplicative()) {
      const std::string nn = field_lv(site.nn_slot);
      const std::string nulls = field_lv(site.nulls_slot);
      open("for (const Msg& m : msgs) {");
      line("if (m.site != " + S + ") continue;");
      if (t == Type::kBool) {
        line("// boolean ops: only the absorbing-state counters matter");
      } else {
        line(nn + " = " + fold_apply(site.op, t, nn, payload_decode(t)) +
             ";");
      }
      line(nulls + " += m.nulls - m.denulls;");
      close();
      if (t == Type::kBool) {
        const bool absorbing = agg_absorbing_bool(site.op);
        line(acc + " = std::uint8_t(" + nulls + " > 0 ? " +
             (absorbing ? "true" : "false") + " : " +
             (absorbing ? "false" : "true") + ");");
        line(target + " = (" + acc + " != 0);");
      } else {
        line(acc + " = " + nulls + " > 0 ? " + expr_type(t) + "(0) : " +
             nn + ";");
        line(target + " = " + acc + ";");
      }
    } else {
      open("for (const Msg& m : msgs) {");
      line("if (m.site != " + S + ") continue;");
      line(acc + " = " + fold_apply(site.op, t, acc, payload_decode(t)) +
           ";");
      close();
      line(target + " = " + acc + ";");
    }
    close();
  }

  /// Emits a broadcast: full values (ΔV*) or Δ-messages (ΔV). `first`
  /// selects the initial-push rules.
  void send_loop_body(const AggSite& site, const std::string& new_expr,
                      const std::string& old_expr, bool delta_mode,
                      bool first) {
    const Type t = site.elem_type;
    const std::string S = std::to_string(site.id);
    const GraphDir dir = push_direction(site.pull_dir);
    const char* nbrs = dir == GraphDir::kIn ? "in_neighbors" : "out_neighbors";
    const char* wts = dir == GraphDir::kIn ? "in_weights" : "out_weights";
    open("{");
    line(std::string("const auto targets = g.") + nbrs + "(v);");
    line(std::string("const auto weights = g.") + wts + "(v);");
    open("for (std::size_t ei = 0; ei < targets.size(); ++ei) {");
    line("const double ew = weights.empty() ? 1.0 : weights[ei]; (void)ew;");
    line("Msg m; m.site = " + S + ";");
    line(std::string(expr_type(t)) + " nv = " + new_expr + ";");
    if (!delta_mode) {
      // ΔV* full value (initial push included); identity payloads are
      // no-ops for the fold.
      line("if (nv == " + identity_literal(site.op, t) + ") continue;");
      line("m.payload = double(nv);");
      line("ctx.send(targets[ei], m);");
    } else {
      switch (site.op) {
        case AggOp::kSum: {
          if (first) {
            line("if (nv == 0) continue;");
            line("m.payload = double(nv);");
          } else {
            line(std::string(expr_type(t)) + " ov = " + old_expr + ";");
            line("if (nv == ov) continue;");
            line("m.payload = double(nv - ov);");
          }
          line("ctx.send(targets[ei], m);");
          break;
        }
        case AggOp::kProd: {
          if (first) {
            line("if (nv == 0.0) { m.payload = 1.0; m.nulls = 1; }");
            line("else { if (nv == 1.0) continue; m.payload = nv; }");
          } else {
            line("double ov = " + old_expr + ";");
            line("if (nv == ov) continue;");
            line("if (ov != 0.0 && nv != 0.0) m.payload = nv / ov;");
            line("else if (nv == 0.0) { m.payload = 1.0 / ov; m.nulls = 1; }");
            line("else { m.payload = nv; m.denulls = 1; }");
          }
          line("ctx.send(targets[ei], m);");
          break;
        }
        case AggOp::kMin:
        case AggOp::kMax: {
          line("if (nv == " + identity_literal(site.op, t) + ") continue;");
          line("m.payload = double(nv);");
          line("ctx.send(targets[ei], m);");
          break;
        }
        case AggOp::kAnd:
        case AggOp::kOr: {
          const bool absorbing = agg_absorbing_bool(site.op);
          const std::string absorb_lit = absorbing ? "true" : "false";
          if (first) {
            line("if (nv != " + absorb_lit + ") continue;");
            line("m.nulls = 1;");
          } else {
            line("bool ov = " + old_expr + ";");
            line("if (nv == ov) continue;");
            line("if (nv == " + absorb_lit + ") m.nulls = 1; "
                 "else m.denulls = 1;");
          }
          line("ctx.send(targets[ei], m);");
          break;
        }
      }
    }
    close();  // for
    close();  // block
  }

  void send_loop(const Expr& e) {
    const AggSite& site = prog_.sites[static_cast<std::size_t>(e.site)];
    open("if (!suppress_sends) {");
    send_loop_body(site, expr(*e.kids[0]),
                   e.flag ? expr(*e.kids[1]) : std::string(),
                   /*delta_mode=*/e.flag, /*first=*/false);
    close();
  }

  // ------------------------------------------------------------- sections

  void header() {
    out_ << "// Generated by the deltav ΔV compiler (dvc --emit=cpp).\n"
         << "// Variant: " << (cp_.options.incrementalize ? "ΔV" : "ΔV*")
         << ". Do not edit.\n"
         << "#include <algorithm>\n#include <atomic>\n"
         << "#include <cstdint>\n#include <limits>\n"
         << "#include <span>\n#include <vector>\n\n"
         << "#include \"graph/csr_graph.h\"\n"
         << "#include \"pregel/engine.h\"\n\n"
         << "namespace dvgen {\n\n";
    open("struct " + name_ + " {");
  }

  void msg_and_combiner() {
    line("struct Msg {");
    line("  double payload = 0;");
    line("  std::int32_t nulls = 0, denulls = 0;");
    line("  std::uint8_t site = 0;");
    line("};");
    // Wire sizes per site (mirrors runtime/message.h accounting).
    open("struct MsgTraits {");
    open("static std::size_t wire_size(const Msg& m) {");
    open("switch (m.site) {");
    const bool multi = prog_.sites.size() > 1;
    for (const AggSite& s : prog_.sites) {
      std::size_t bytes = type_wire_bytes(s.elem_type);
      if (multi) bytes += 1;
      if (cp_.options.incrementalize && s.multiplicative()) bytes += 1;
      line("case " + std::to_string(s.id) + ": return " +
           std::to_string(bytes) + ";");
    }
    line("default: return 8;");
    close();
    close();
    close("};");
    open("struct Combiner {");
    open("void operator()(Msg& a, const Msg& b) const {");
    open("switch (a.site) {");
    for (const AggSite& s : prog_.sites) {
      std::string fold;
      switch (s.op) {
        case AggOp::kSum: fold = "a.payload += b.payload;"; break;
        case AggOp::kProd: fold = "a.payload *= b.payload;"; break;
        case AggOp::kMin:
          fold = "a.payload = std::min(a.payload, b.payload);";
          break;
        case AggOp::kMax:
          fold = "a.payload = std::max(a.payload, b.payload);";
          break;
        case AggOp::kAnd:
        case AggOp::kOr:
          fold = "/* counters only */;";
          break;
      }
      line("case " + std::to_string(s.id) + ": " + fold + " break;");
    }
    line("default: break;");
    close();
    line("a.nulls += b.nulls; a.denulls += b.denulls;");
    close();
    line("std::uint64_t key(deltav::graph::VertexId d, const Msg& m) const "
         "{ return (std::uint64_t(d) << 8) | m.site; }");
    close("};");
  }

  void params_struct() {
    open("struct Params {");
    for (const Param& p : prog_.params)
      line(std::string(expr_type(p.type)) + " " + p.name + " = " +
           (p.type == Type::kBool ? "false" : "0") + ";");
    close("};");
  }

  void result_struct() {
    open("struct Result {");
    line("deltav::pregel::RunStats stats;");
    line("std::size_t supersteps = 0;");
    for (const Field& f : prog_.fields) {
      if (f.origin != Field::Origin::kUser) continue;
      line(std::string("std::vector<") + storage_type(f.type) + "> " +
           f.name + ";");
    }
    close("};");
  }

  void emit_first_push(const AggSite& site) {
    // The value pushed right after init: the original expression when §6.2
    // bound it to a fresh field, else the sent expression itself.
    const Expr& src =
        site.init_send_expr ? *site.init_send_expr : *site.send_expr;
    if (site.bound_field >= 0) {
      line("// §6.2: record the value the neighbors will cache");
      line(field_lv(site.bound_field) + " = " + expr(src) + ";");
    }
    if (site.last_sent_slot >= 0)
      line(field_lv(site.last_sent_slot) + " = " + expr(src) + ";");
    send_loop_body(site, expr(src), std::string(),
                   /*delta_mode=*/cp_.options.incrementalize,
                   /*first=*/true);
  }

  void run_function() {
    const Stmt& s = prog_.stmts[0];
    const bool is_iter = s.kind == Stmt::Kind::kIter;
    track_assigns_ = !cp_.options.incrementalize;

    open("static Result run(const deltav::graph::CsrGraph& g, "
         "Params params, "
         "deltav::pregel::EngineOptions eopts = {}) {");
    line("using deltav::graph::VertexId;");
    line("const std::size_t n = g.num_vertices();");
    for (const Field& f : prog_.fields) {
      std::string init = "0";
      switch (f.origin) {
        case Field::Origin::kAccumulator:
        case Field::Origin::kNnAcc:
        case Field::Origin::kLastSent: {
          const AggSite& site =
              prog_.sites[static_cast<std::size_t>(f.site)];
          init = identity_literal(site.op, site.elem_type);
          if (site.elem_type == Type::kBool)
            init = std::string("std::uint8_t(") + init + ")";
          break;
        }
        default: break;
      }
      line(std::string("std::vector<") + storage_type(f.type) + "> f_" +
           f.name + "(n, " + init + ");");
    }
    line("deltav::pregel::Engine<Msg, Combiner, MsgTraits> "
         "engine(n, eopts);");
    line("bool suppress_sends = false; (void)suppress_sends;");
    if (track_assigns_) line("std::atomic<bool> any_assign{false};");

    // Superstep 0: init + first pushes. No halt (superstep 1 must run
    // everywhere).
    open("engine.step([&](auto& ctx, VertexId v, std::span<const Msg>) {");
    stmt(*prog_.init);
    for (const AggSite& site : prog_.sites) emit_first_push(site);
    close("});");
    line("std::size_t supersteps = 1;");

    // Until clause as a function of (iteration, quiescence).
    if (is_iter) {
      open("const auto until = [&](std::int64_t iter, bool stable) {");
      line("(void)iter; (void)stable;");
      line("return " + expr(*s.until) + ";");
      close("};");
    }

    // Statement loop.
    line("std::int64_t iter = 0;");
    open("for (;;) {");
    line("++iter;");
    if (is_iter) {
      line("const bool last_known = " +
           std::string(uses_stable(*s.until) ? "false"
                                             : "until(iter, false)") +
           ";");
    } else {
      line("const bool last_known = true;");
    }
    line("suppress_sends = last_known;");
    if (track_assigns_)
      line("any_assign.store(false, std::memory_order_relaxed);");
    open("engine.step([&](auto& ctx, VertexId v, "
         "std::span<const Msg> msgs) {");
    line("(void)msgs;");
    declare_scratch();
    stmt(*s.body);
    close("});");
    line("++supersteps;");
    line("DV_CHECK_MSG(supersteps < 100000, \"superstep limit\");");
    if (!is_iter) {
      line("break;");
    } else {
      line("if (last_known) break;");
      if (uses_stable(*s.until)) {
        line("const auto& last_stats = engine.stats().supersteps.back();");
        if (track_assigns_) {
          line("const bool quiescent = last_stats.messages_sent == 0 && "
               "!any_assign.load(std::memory_order_relaxed);");
        } else {
          line("const bool quiescent = last_stats.messages_sent == 0;");
        }
        line("if (until(iter, quiescent)) break;");
      }
    }
    close();

    // Result extraction.
    line("Result r;");
    line("r.stats = engine.stats();");
    line("r.supersteps = supersteps;");
    for (const Field& f : prog_.fields) {
      if (f.origin != Field::Origin::kUser) continue;
      line("r." + f.name + " = std::move(f_" + f.name + ");");
    }
    line("return r;");
    close();  // run
  }

  void declare_scratch() {
    for (std::size_t i = 0; i < prog_.scratch.size(); ++i) {
      const ScratchVar& sv = prog_.scratch[i];
      line(std::string(expr_type(sv.type)) + " " +
           scratch_name(static_cast<int>(i)) + " = " +
           (sv.type == Type::kBool ? "false" : "0") + "; (void)" +
           scratch_name(static_cast<int>(i)) + ";");
    }
  }

  static bool uses_stable(const Expr& e) {
    if (e.kind == ExprKind::kStableRef) return true;
    for (const auto& k : e.kids)
      if (uses_stable(*k)) return true;
    return false;
  }

  void footer() {
    close("};");
    out_ << "\n}  // namespace dvgen\n";
  }

  const CompiledProgram& cp_;
  const Program& prog_;
  std::string name_;
  std::ostringstream out_;
  std::string ind_;
  bool track_assigns_ = false;
};

}  // namespace

std::string emit_cpp(const CompiledProgram& cp,
                     const std::string& class_name) {
  if (cp.program.stmts.size() != 1)
    compile_error(cp.program.loc,
                  "C++ code generation supports single-statement programs");
  CppEmitter emitter(cp, class_name);
  return emitter.emit();
}

}  // namespace deltav::dv
