// Native-tier source emission: compiled ΔV program → one hermetic C++
// translation unit implementing every evaluation root as straight-line
// code over the native C ABI (native_abi.h).
//
// Where cpp_backend.h emits an *offline*, human-facing vertex program
// (its own engine loop, its own message struct), this emitter produces
// the runtime tier's object: the emitted functions are drop-in
// replacements for the tree walker's eval() on the exact root set the
// bytecode VM compiles (init, statement bodies, until clauses, per-site
// send expressions), called by the runner through dlopen-ed function
// pointers with the same EvalContext-shaped state. Bit-exactness against
// the interpreter is the contract — every coercion, short-circuit,
// Δ-synthesis rule, suppression decision and observability count below
// mirrors runtime/interpreter.cpp line for line, and the differential
// fuzzer's tier axis enforces it.
#pragma once

#include <string>
#include <vector>

#include "dv/compiler.h"

namespace deltav::dv::native {

/// Placeholder inside NativeUnit::source where the module loader writes
/// the cache digest (the digest covers the source *with* the placeholder,
/// since it cannot contain itself).
inline constexpr const char* kDigestPlaceholder = "@DVN_DIGEST@";

struct NativeUnit {
  /// The emitted translation unit. Empty when `unsupported` is set.
  std::string source;
  /// Root index -> expression, in emission order. Mirrors the root set
  /// bytecode.cpp registers: init, then per-statement body/until, then
  /// per-site send_expr/init_send_expr.
  std::vector<const Expr*> roots;
  /// Non-empty when the program uses a construct the native tier does not
  /// support; the runner falls back to the VM with this named reason.
  std::string unsupported;
};

/// Emits the translation unit for `cp`. Never throws for unsupported
/// programs — those come back via NativeUnit::unsupported.
NativeUnit emit_native_unit(const CompiledProgram& cp);

}  // namespace deltav::dv::native
