// Native-tier build pipeline: emitted translation unit → host compiler →
// cached shared object → dlopen-ed vtable (native_abi.h) → per-program
// root dispatch.
//
// Cache contract: objects live under a content digest of (emitted source,
// compiler identification, compile flags), so a repeat run of the same
// program with the same toolchain reuses the .so without invoking the
// compiler, while any change to the program, the compiler version, or the
// flags (including DV_NATIVE_CXXFLAGS) compiles a fresh object. A cached
// object that fails to load or validate (truncated, wrong ABI version,
// wrong root count, wrong digest) is unlinked and recompiled once; if the
// recompile also fails the caller falls back to the VM with the named
// reason — never a silent wrong tier.
//
// Environment knobs (all optional):
//   DV_NATIVE_CXX       explicit compiler; no PATH fallback when set
//   DV_NATIVE_CXXFLAGS  extra flags, appended and digested
//   DV_NATIVE_CACHE     cache directory (default XDG/HOME cache, else /tmp)
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "dv/codegen/native_abi.h"
#include "dv/compiler.h"
#include "dv/runtime/interpreter.h"

namespace deltav::dv::native {

/// One loaded shared object (dlopen handle + validated vtable), shared by
/// every program instance with the same digest in this process.
class NativeModule {
 public:
  NativeModule(void* handle, const DvnVTable* vt, std::string digest,
               std::string object_path)
      : handle_(handle),
        vt_(vt),
        digest_(std::move(digest)),
        object_path_(std::move(object_path)) {}
  ~NativeModule();
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;

  const DvnVTable* vtable() const { return vt_; }
  const std::string& digest() const { return digest_; }
  const std::string& object_path() const { return object_path_; }

 private:
  void* handle_ = nullptr;
  const DvnVTable* vt_ = nullptr;
  std::string digest_;
  std::string object_path_;
};

/// A compiled program bound to one CompiledProgram's expression trees:
/// maps the runner's root pointers (init, statement bodies, untils, site
/// send expressions — the same set the bytecode VM compiles) onto the
/// module's function table and dispatches calls through the C ABI.
class NativeProgram {
 public:
  NativeProgram(std::shared_ptr<const NativeModule> mod,
                const std::vector<const Expr*>& roots);

  /// Root index for `e`, or -1 when `e` is not a registered root.
  int root_of(const Expr& e) const {
    const auto it = roots_.find(&e);
    return it == roots_.end() ? -1 : it->second;
  }

  /// Evaluates root `idx` against `ctx` — the native replacement for the
  /// tree walker's eval() / the VM's run_chunk on the same root.
  Value run_root(int idx, EvalContext& ctx) const;

  Value eval_root(const Expr& e, EvalContext& ctx) const {
    const int idx = root_of(e);
    DV_CHECK_MSG(idx >= 0, "expression is not a native root");
    return run_root(idx, ctx);
  }

  const std::string& digest() const { return mod_->digest(); }
  const std::string& object_path() const { return mod_->object_path(); }

 private:
  std::shared_ptr<const NativeModule> mod_;
  std::unordered_map<const Expr*, int> roots_;
};

struct NativeBuildReport {
  /// Null on failure; `reason` then names why (the runner's vm-fallback
  /// reason and the dv.native_fallbacks.<reason> metric suffix come from
  /// it).
  std::shared_ptr<NativeProgram> program;
  bool cache_hit = false;          // reused a cached .so (or live module)
  double compile_seconds = 0.0;    // wall time of a real compiler run
  std::string reason;
  std::string digest;
  std::string object_path;
};

/// Emits, compiles (or reuses), loads and binds `cp` for native execution.
/// Never throws for toolchain or program-subset failures — those come back
/// as a report with a reason.
NativeBuildReport build_native(const CompiledProgram& cp);

/// Process-wide availability probe: empty when the native tier can run
/// here, else a named reason (sanitizer-instrumented host build, no host
/// compiler, probe compile failed). Computed once, on first use; tools use
/// it to skip or drop the native axis gracefully.
const std::string& native_unavailable_reason();

}  // namespace deltav::dv::native
