#include "dv/codegen/native_module.h"

#include <dlfcn.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "common/check.h"
#include "common/hash.h"
#include "dv/codegen/native_emit.h"

// Sanitizer-instrumented hosts never run native: the emitted object is
// uninstrumented, so TSan would miss its synchronization (false positives)
// and ASan its memory traffic (false negatives). The availability probe
// reports this as a named reason and everything falls back to the VM.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DV_NATIVE_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DV_NATIVE_SANITIZED 1
#endif
#endif

namespace deltav::dv::native {

namespace fs = std::filesystem;

namespace {

// ------------------------------------------------------------ subprocess

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

int run_shell(const std::string& cmd) { return std::system(cmd.c_str()); }

/// First line of `cmd`'s stdout (empty on failure).
std::string capture_first_line(const std::string& cmd) {
  FILE* p = popen((cmd + " 2>/dev/null").c_str(), "r");
  if (!p) return {};
  char buf[512];
  std::string out;
  if (std::fgets(buf, sizeof(buf), p)) out = buf;
  pclose(p);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  return out;
}

std::string read_file_tail(const fs::path& path, std::size_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  std::string s = os.str();
  if (s.size() > max_bytes) s = "..." + s.substr(s.size() - max_bytes);
  for (char& c : s)
    if (c == '\n') c = ' ';
  return s;
}

// ------------------------------------------------------------- toolchain

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : fallback;
}

/// The compiler to shell out to. DV_NATIVE_CXX is authoritative when set
/// (no PATH fallback — a bogus value is a reportable failure, not a silent
/// substitution); otherwise the first of c++/g++/clang++ on PATH.
std::string discover_compiler() {
  const std::string env = env_or("DV_NATIVE_CXX", "");
  if (!env.empty()) return env;
  for (const char* cand : {"c++", "g++", "clang++"}) {
    if (run_shell(std::string("command -v ") + cand +
                  " >/dev/null 2>&1") == 0)
      return cand;
  }
  return {};
}

/// `<compiler> --version` first line, cached per compiler string — part of
/// the cache digest so a toolchain upgrade invalidates every object.
std::string compiler_id(const std::string& cxx) {
  static std::mutex mu;
  static std::map<std::string, std::string> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(cxx);
  if (it != cache.end()) return it->second;
  std::string id = capture_first_line(shell_quote(cxx) + " --version");
  if (id.empty()) id = "unidentified:" + cxx;
  cache.emplace(cxx, id);
  return id;
}

/// Baseline flags. -ffp-contract=off is load-bearing for bit-exactness:
/// the emitted code nests float multiplies into adds inside single
/// expressions, and a contracted FMA rounds once where the interpreter
/// (whose boxed evaluation can never contract across eval() calls) rounds
/// twice. -w because generated code legitimately has unused locals.
constexpr const char* kBaseFlags =
    "-std=c++20 -O2 -fPIC -shared -fvisibility=hidden -ffp-contract=off -w";

std::string compile_flags() {
  const std::string extra = env_or("DV_NATIVE_CXXFLAGS", "");
  return extra.empty() ? std::string(kBaseFlags)
                       : std::string(kBaseFlags) + " " + extra;
}

fs::path cache_dir() {
  const std::string env = env_or("DV_NATIVE_CACHE", "");
  if (!env.empty()) return fs::path(env);
  const std::string xdg = env_or("XDG_CACHE_HOME", "");
  if (!xdg.empty()) return fs::path(xdg) / "dv-native";
  const std::string home = env_or("HOME", "");
  if (!home.empty()) return fs::path(home) / ".cache" / "dv-native";
  return fs::path("/tmp") / "dv-native";
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// 128-bit content digest of (emitted source, compiler id, flags).
std::string cache_digest(const std::string& source,
                         const std::string& compiler,
                         const std::string& flags) {
  std::string key = source;
  key += '\x1f';
  key += compiler;
  key += '\x1f';
  key += flags;
  const std::uint64_t h1 = fnv1a(key);
  const std::uint64_t h2 = mix64(h1 ^ hash_combine(fnv1a(compiler),
                                                   fnv1a(flags)));
  return hex64(h1) + hex64(h2);
}

// ------------------------------------------------------------ load & run

struct LoadResult {
  void* handle = nullptr;
  const DvnVTable* vt = nullptr;
  std::string error;
};

/// dlopens and validates one object: entry symbol present, ABI version
/// matches, root count matches, embedded digest matches the cache key.
LoadResult load_object(const fs::path& so_path, const std::string& digest,
                       std::size_t expect_roots) {
  LoadResult r;
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* err = dlerror();
    r.error = std::string("dlopen failed: ") + (err ? err : "unknown");
    return r;
  }
  const auto entry =
      reinterpret_cast<DvnEntryFn>(dlsym(handle, kDvnEntrySymbol));
  if (!entry) {
    dlclose(handle);
    r.error = "entry symbol missing";
    return r;
  }
  const DvnVTable* vt = entry();
  if (!vt || vt->abi_version != kDvnAbiVersion) {
    dlclose(handle);
    r.error = "ABI version mismatch";
    return r;
  }
  if (vt->num_roots != expect_roots || !vt->roots) {
    dlclose(handle);
    r.error = "root table mismatch";
    return r;
  }
  if (!vt->source_digest || digest != vt->source_digest) {
    dlclose(handle);
    r.error = "embedded digest mismatch";
    return r;
  }
  for (std::uint32_t i = 0; i < vt->num_roots; ++i) {
    if (!vt->roots[i]) {
      dlclose(handle);
      r.error = "null root function";
      return r;
    }
  }
  r.handle = handle;
  r.vt = vt;
  return r;
}

/// Writes `text` to `path` via a temp file + atomic rename.
bool write_file_atomic(const fs::path& path, const std::string& text) {
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << text;
    if (!out) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  return !ec;
}

/// In-process module registry: one dlopen per digest, shared across
/// runners (repeat runs skip validation too, not just compilation).
std::mutex registry_mu;
std::map<std::string, std::weak_ptr<const NativeModule>> registry;

std::shared_ptr<const NativeModule> registry_get(const std::string& digest) {
  std::lock_guard<std::mutex> lock(registry_mu);
  const auto it = registry.find(digest);
  return it == registry.end() ? nullptr : it->second.lock();
}

void registry_put(const std::string& digest,
                  const std::shared_ptr<const NativeModule>& mod) {
  std::lock_guard<std::mutex> lock(registry_mu);
  registry[digest] = mod;
}

// --------------------------------------------------------- host callbacks

EvalContext& host_ctx(void* host) {
  return *static_cast<EvalContext*>(host);
}

void t_arcs(void* host, std::uint8_t dir_in, const std::uint32_t** nbrs,
            const double** wts, std::uint64_t* n_nbrs,
            std::uint64_t* n_wts) {
  EvalContext& ctx = host_ctx(host);
  const auto t = dir_in ? ctx.graph->in_neighbors(ctx.vertex)
                        : ctx.graph->out_neighbors(ctx.vertex);
  const auto w = dir_in ? ctx.graph->in_weights(ctx.vertex)
                        : ctx.graph->out_weights(ctx.vertex);
  *nbrs = t.data();
  *n_nbrs = t.size();
  *wts = w.data();
  *n_wts = w.size();
}

std::uint64_t t_degree(void* host, std::uint8_t dir_in) {
  EvalContext& ctx = host_ctx(host);
  return dir_in ? ctx.graph->in_degree(ctx.vertex)
                : ctx.graph->out_degree(ctx.vertex);
}

void t_send(void* host, std::uint32_t dst, const DvnMsg* msg) {
  host_ctx(host).sink->send(dst,
                            *reinterpret_cast<const DvMessage*>(msg));
}

void t_send_span(void* host, const std::uint32_t* dsts, std::uint64_t n,
                 const DvnMsg* msg) {
  host_ctx(host).sink->send_span(
      std::span<const graph::VertexId>(dsts, n),
      *reinterpret_cast<const DvMessage*>(msg));
}

std::int32_t t_atomic_fold(void* host, std::uint32_t dst, std::int32_t col,
                           const DvnValue* payload) {
  EvalContext& ctx = host_ctx(host);
  if (!ctx.atomic->fold(dst, col,
                        *reinterpret_cast<const Value*>(payload)))
    return 0;
  ctx.atomic_lane->mark(dst, col);
  ++ctx.atomic_lane->folds;
  return 1;
}

void t_obs_add(void* host, std::uint32_t counter, std::uint64_t n) {
  host_ctx(host).obs->add(static_cast<obs::Counter>(counter), n);
}

}  // namespace

NativeModule::~NativeModule() {
  if (handle_) dlclose(handle_);
}

NativeProgram::NativeProgram(std::shared_ptr<const NativeModule> mod,
                             const std::vector<const Expr*>& roots)
    : mod_(std::move(mod)) {
  roots_.reserve(roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i)
    roots_.emplace(roots[i], static_cast<int>(i));
}

Value NativeProgram::run_root(int idx, EvalContext& ctx) const {
  DvnCtx c;
  c.fields = reinterpret_cast<DvnValue*>(ctx.fields.data());
  c.scratch = reinterpret_cast<DvnValue*>(ctx.scratch.data());
  c.msgs = reinterpret_cast<const DvnMsg*>(ctx.msgs.data());
  c.num_msgs = ctx.msgs.size();
  c.vertex = ctx.vertex;
  c.has_vertex = ctx.has_vertex ? 1 : 0;
  c.params = reinterpret_cast<const DvnValue*>(ctx.params.data());
  c.iter = ctx.iter;
  c.stable = ctx.stable ? 1 : 0;
  c.suppress_sites = ctx.suppress_sites;
  c.graph_size = ctx.graph ? ctx.graph->num_vertices() : 0;
  c.cur_edge_weight = ctx.cur_edge_weight;
  c.halt_requested = ctx.halt_requested ? 1 : 0;
  c.any_field_assign = ctx.any_field_assign ? 1 : 0;
  c.site_wire = ctx.site_wire ? ctx.site_wire->data() : nullptr;
  c.atomic_route = ctx.atomic ? ctx.atomic->route.data() : nullptr;
  c.has_obs = ctx.obs ? 1 : 0;
  c.host = &ctx;
  c.arcs = &t_arcs;
  c.degree = &t_degree;
  c.send = &t_send;
  c.send_span = &t_send_span;
  c.atomic_fold = &t_atomic_fold;
  c.obs_add = &t_obs_add;

  DvnValue ret;
  mod_->vtable()->roots[static_cast<std::size_t>(idx)](&c, &ret);

  ctx.halt_requested = c.halt_requested != 0;
  ctx.any_field_assign = c.any_field_assign != 0;
  ctx.cur_edge_weight = c.cur_edge_weight;
  return *reinterpret_cast<Value*>(&ret);
}

NativeBuildReport build_native(const CompiledProgram& cp) {
  NativeBuildReport report;

#ifdef DV_NATIVE_SANITIZED
  report.reason = "sanitized_host";
  return report;
#else
  NativeUnit unit = emit_native_unit(cp);
  if (!unit.unsupported.empty()) {
    report.reason = "unsupported: " + unit.unsupported;
    return report;
  }

  const std::string cxx = discover_compiler();
  if (cxx.empty()) {
    report.reason = "no_compiler";
    return report;
  }
  const std::string flags = compile_flags();
  const std::string digest =
      cache_digest(unit.source, compiler_id(cxx), flags);
  report.digest = digest;

  // Resolve the digest placeholder now that the digest is known (the
  // digest covers the source *with* the placeholder).
  std::string source = unit.source;
  const std::size_t at = source.find(kDigestPlaceholder);
  DV_CHECK_MSG(at != std::string::npos, "digest placeholder missing");
  source.replace(at, std::string(kDigestPlaceholder).size(), digest);

  // Live module with this digest → nothing to load at all.
  if (auto mod = registry_get(digest)) {
    report.cache_hit = true;
    report.object_path = mod->object_path();
    report.program = std::make_shared<NativeProgram>(std::move(mod),
                                                     unit.roots);
    return report;
  }

  std::error_code ec;
  const fs::path dir = cache_dir();
  fs::create_directories(dir, ec);
  if (ec) {
    report.reason = "cache_dir: " + ec.message();
    return report;
  }
  const fs::path so_path = dir / (digest + ".so");
  const fs::path src_path = dir / (digest + ".cpp");
  const fs::path log_path = dir / (digest + ".log");
  report.object_path = so_path.string();

  const auto compile_once = [&]() -> std::string {
    if (!write_file_atomic(src_path, source)) return "source write failed";
    const fs::path tmp_so =
        so_path.string() + ".tmp." + std::to_string(::getpid());
    const std::string cmd = shell_quote(cxx) + " " + flags + " -o " +
                            shell_quote(tmp_so.string()) + " " +
                            shell_quote(src_path.string()) + " 2> " +
                            shell_quote(log_path.string());
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = run_shell(cmd);
    report.compile_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rc != 0) {
      fs::remove(tmp_so, ec);
      return "compiler exited " + std::to_string(rc) + ": " +
             read_file_tail(log_path, 300);
    }
    fs::rename(tmp_so, so_path, ec);
    if (ec) return "object rename failed: " + ec.message();
    return {};
  };

  bool hit = fs::exists(so_path, ec) && !ec;
  std::string load_error;
  LoadResult loaded;
  if (hit) {
    loaded = load_object(so_path, digest, unit.roots.size());
    if (!loaded.handle) {
      // Corrupt or stale cached object: drop it and recompile once.
      load_error = loaded.error;
      fs::remove(so_path, ec);
      hit = false;
    }
  }
  if (!loaded.handle) {
    const std::string err = compile_once();
    if (!err.empty()) {
      report.reason = "compile_failed: " + err;
      if (!load_error.empty())
        report.reason += " (after cache load failed: " + load_error + ")";
      return report;
    }
    loaded = load_object(so_path, digest, unit.roots.size());
    if (!loaded.handle) {
      report.reason = "load_failed: " + loaded.error;
      return report;
    }
  }
  report.cache_hit = hit;

  auto mod = std::make_shared<const NativeModule>(
      loaded.handle, loaded.vt, digest, so_path.string());
  registry_put(digest, mod);
  report.program =
      std::make_shared<NativeProgram>(std::move(mod), unit.roots);
  return report;
#endif  // DV_NATIVE_SANITIZED
}

const std::string& native_unavailable_reason() {
  static const std::string reason = []() -> std::string {
#ifdef DV_NATIVE_SANITIZED
    return "sanitizer-instrumented host build";
#else
    const std::string cxx = discover_compiler();
    if (cxx.empty())
      return "no host C++ compiler (set DV_NATIVE_CXX or put c++/g++/"
             "clang++ on PATH)";
    // End-to-end probe: compile and dlopen a trivial object once so a
    // present-but-broken toolchain is caught here, not per run.
    std::error_code ec;
    const fs::path dir = cache_dir();
    fs::create_directories(dir, ec);
    if (ec) return "cache directory unavailable: " + ec.message();
    const std::string probe_src =
        "extern \"C\" __attribute__((visibility(\"default\"))) int "
        "dv_native_probe() { return 42; }\n";
    const std::string digest =
        cache_digest(probe_src, compiler_id(cxx), compile_flags());
    const fs::path so_path = dir / ("probe-" + digest + ".so");
    if (!fs::exists(so_path, ec) || ec) {
      const fs::path src_path = dir / ("probe-" + digest + ".cpp");
      const fs::path log_path = dir / ("probe-" + digest + ".log");
      if (!write_file_atomic(src_path, probe_src))
        return "cache directory not writable";
      const std::string cmd =
          shell_quote(cxx) + " " + compile_flags() + " -o " +
          shell_quote(so_path.string()) + " " +
          shell_quote(src_path.string()) + " 2> " +
          shell_quote(log_path.string());
      if (run_shell(cmd) != 0)
        return "host compiler probe failed: " +
               read_file_tail(log_path, 200);
    }
    void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle) {
      const char* err = dlerror();
      return std::string("probe dlopen failed: ") + (err ? err : "?");
    }
    const auto fn =
        reinterpret_cast<int (*)()>(dlsym(handle, "dv_native_probe"));
    const bool ok = fn && fn() == 42;
    dlclose(handle);
    return ok ? std::string() : "probe symbol failed";
#endif
  }();
  return reason;
}

}  // namespace deltav::dv::native
