// C ABI between the host runtime and an AOT-compiled ΔV program (the
// native execution tier, DESIGN.md "Execution tiers").
//
// The emitted translation unit is hermetic — it includes nothing from this
// repository — so the structs below are mirrored textually into the
// generated source (native_emit.cpp) and pinned on both sides:
//
//   host side     static_asserts in this header prove DvnValue/DvnMsg are
//                 layout-identical to dv::Value / dv::DvMessage, so spans
//                 of runtime state cross the boundary as raw pointers;
//   emitted side  the generated unit re-asserts the same sizes/offsets, so
//                 a compiler that would disagree about layout refuses to
//                 build the object instead of corrupting state.
//
// Version discipline: any change to these structs, to the root-function
// signature, or to the vtable must bump kDvnAbiVersion. The loader rejects
// objects with a different version (they fall back to the VM with a named
// reason) — a stale cached .so can never execute against a new host.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dv/runtime/message.h"
#include "dv/runtime/value.h"
#include "graph/csr_graph.h"

namespace deltav::dv::native {

inline constexpr std::uint32_t kDvnAbiVersion = 1;

extern "C" {

/// Mirror of dv::Value: 1-byte type tag, 8-byte-aligned scalar union.
/// Tag values are baked into emitted code (int=0, bool=1, float=2).
struct DvnValue {
  std::uint8_t tag;
  union {
    std::int64_t i;
    double f;
    bool b;
  } u;
};

/// Mirror of dv::DvMessage.
struct DvnMsg {
  DvnValue payload;
  std::int32_t nulls;
  std::int32_t denulls;
  std::uint8_t site;
  std::uint8_t wire;
};

/// Everything one root-function call can touch. Plain pointers into the
/// runner's EvalContext spans plus host callbacks for the graph, the send
/// sink, the lock-free fold path and metrics. `host` is an opaque pointer
/// to the EvalContext; callbacks live in native_module.cpp.
struct DvnCtx {
  // Per-vertex views (null/0 for global until evaluation).
  DvnValue* fields;
  DvnValue* scratch;
  const DvnMsg* msgs;
  std::uint64_t num_msgs;
  std::uint32_t vertex;
  std::uint8_t has_vertex;

  // Program-wide bindings.
  const DvnValue* params;
  std::int64_t iter;
  std::uint8_t stable;
  std::uint64_t suppress_sites;
  std::uint64_t graph_size;
  double cur_edge_weight;

  // Out-flags (set-only, mirroring EvalContext semantics).
  std::uint8_t halt_requested;
  std::uint8_t any_field_assign;

  // Send/site tables.
  const std::uint8_t* site_wire;
  // Per-site atomic-fold column, -1 = buffered. Null when no site routes
  // through the lock-free path under this runner's options.
  const std::int32_t* atomic_route;
  std::uint8_t has_obs;

  // Host callbacks. All take `host` first.
  void* host;
  /// Stored-arc span for this vertex: dir_in selects in- vs out-arcs.
  /// `*n_wts` is 0 on unweighted graphs.
  void (*arcs)(void* host, std::uint8_t dir_in, const std::uint32_t** nbrs,
               const double** wts, std::uint64_t* n_nbrs,
               std::uint64_t* n_wts);
  std::uint64_t (*degree)(void* host, std::uint8_t dir_in);
  void (*send)(void* host, std::uint32_t dst, const DvnMsg* msg);
  void (*send_span)(void* host, const std::uint32_t* dsts, std::uint64_t n,
                    const DvnMsg* msg);
  /// Folds a Δ-payload into the receiver's pending slot (atomic_fold.h);
  /// returns 1 when folded (lane marked, fold counted), 0 when the payload
  /// cannot take the CAS path (NaN) and must be sent buffered.
  std::int32_t (*atomic_fold)(void* host, std::uint32_t dst,
                              std::int32_t col, const DvnValue* payload);
  /// MetricsShard::add by counter-enum value. Only called when has_obs.
  void (*obs_add)(void* host, std::uint32_t counter, std::uint64_t n);
};

/// One compiled root expression: evaluates against `ctx`, writes the
/// result (tag + scalar) to `ret`.
typedef void (*DvnRootFn)(DvnCtx* ctx, DvnValue* ret);

struct DvnVTable {
  std::uint32_t abi_version;
  std::uint32_t num_roots;
  /// Digest of the emitted source, for a belt-and-braces identity check
  /// against the cache key the host expects.
  const char* source_digest;
  const DvnRootFn* roots;
};

}  // extern "C"

/// The single exported entry point of an emitted object.
inline constexpr const char* kDvnEntrySymbol = "dv_native_vtable";
typedef const DvnVTable* (*DvnEntryFn)();

// ---- Layout pins: the raw-pointer crossings below are only legal while
// these hold. A platform where they fail cannot build the repo (and the
// native tier would need a marshalling layer).
static_assert(sizeof(Value) == 16 && sizeof(DvnValue) == 16);
static_assert(offsetof(DvnValue, tag) == 0 && offsetof(DvnValue, u) == 8);
static_assert(offsetof(Value, i) == 8 && offsetof(Value, f) == 8);
static_assert(static_cast<int>(Type::kInt) == 0 &&
              static_cast<int>(Type::kBool) == 1 &&
              static_cast<int>(Type::kFloat) == 2);
static_assert(sizeof(DvMessage) == 32 && sizeof(DvnMsg) == 32);
static_assert(offsetof(DvMessage, payload) == offsetof(DvnMsg, payload));
static_assert(offsetof(DvMessage, nulls) == offsetof(DvnMsg, nulls) &&
              offsetof(DvnMsg, nulls) == 16);
static_assert(offsetof(DvMessage, denulls) == offsetof(DvnMsg, denulls) &&
              offsetof(DvnMsg, denulls) == 20);
static_assert(offsetof(DvMessage, site) == offsetof(DvnMsg, site) &&
              offsetof(DvnMsg, site) == 24);
static_assert(offsetof(DvMessage, wire) == offsetof(DvnMsg, wire) &&
              offsetof(DvnMsg, wire) == 25);
static_assert(sizeof(graph::VertexId) == 4);

}  // namespace deltav::dv::native
