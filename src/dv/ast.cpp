#include "dv/ast.h"

#include <sstream>

namespace deltav::dv {

const char* expr_kind_name(ExprKind k) {
  switch (k) {
    case ExprKind::kIntLit: return "int-lit";
    case ExprKind::kFloatLit: return "float-lit";
    case ExprKind::kBoolLit: return "bool-lit";
    case ExprKind::kInfty: return "infty";
    case ExprKind::kVarRef: return "var-ref";
    case ExprKind::kFieldRef: return "field-ref";
    case ExprKind::kParamRef: return "param-ref";
    case ExprKind::kBinary: return "binary";
    case ExprKind::kUnary: return "unary";
    case ExprKind::kPairOp: return "pair-op";
    case ExprKind::kIf: return "if";
    case ExprKind::kLet: return "let";
    case ExprKind::kSeq: return "seq";
    case ExprKind::kAssign: return "assign";
    case ExprKind::kLocalDecl: return "local-decl";
    case ExprKind::kAgg: return "aggregation";
    case ExprKind::kNeighborField: return "neighbor-field";
    case ExprKind::kEdgeWeight: return "edge-weight";
    case ExprKind::kDegree: return "degree";
    case ExprKind::kGraphSize: return "graph-size";
    case ExprKind::kVertexIdRef: return "vertex-id";
    case ExprKind::kStableRef: return "stable";
    case ExprKind::kRemoteRead: return "remote-read";
    case ExprKind::kScratchRef: return "scratch-ref";
    case ExprKind::kFoldMessages: return "fold-messages";
    case ExprKind::kSendLoop: return "send-loop";
    case ExprKind::kSendTo: return "send-to";
    case ExprKind::kReplyLoop: return "reply-loop";
    case ExprKind::kHalt: return "halt";
  }
  return "?";
}

ExprPtr Expr::clone() const {
  auto copy = std::make_unique<Expr>(kind, loc);
  copy->type = type;
  copy->name = name;
  copy->int_val = int_val;
  copy->float_val = float_val;
  copy->bool_val = bool_val;
  copy->bin_op = bin_op;
  copy->un_op = un_op;
  copy->pair_op = pair_op;
  copy->agg_op = agg_op;
  copy->dir = dir;
  copy->var_kind = var_kind;
  copy->assign_target = assign_target;
  copy->slot = slot;
  copy->site = site;
  copy->obs_site = obs_site;
  copy->flag = flag;
  copy->decl_type = decl_type;
  copy->kids.reserve(kids.size());
  for (const auto& k : kids) copy->kids.push_back(k->clone());
  return copy;
}

ExprPtr mk(ExprKind k, Loc loc) { return std::make_unique<Expr>(k, loc); }

ExprPtr mk_int(std::int64_t v, Loc loc) {
  auto e = mk(ExprKind::kIntLit, loc);
  e->int_val = v;
  e->type = Type::kInt;
  return e;
}

ExprPtr mk_float(double v, Loc loc) {
  auto e = mk(ExprKind::kFloatLit, loc);
  e->float_val = v;
  e->type = Type::kFloat;
  return e;
}

ExprPtr mk_bool(bool v, Loc loc) {
  auto e = mk(ExprKind::kBoolLit, loc);
  e->bool_val = v;
  e->type = Type::kBool;
  return e;
}

ExprPtr mk_field_ref(int slot, std::string name, Type t, Loc loc) {
  auto e = mk(ExprKind::kFieldRef, loc);
  e->slot = slot;
  e->name = std::move(name);
  e->type = t;
  return e;
}

ExprPtr mk_scratch_ref(int slot, std::string name, Type t, Loc loc) {
  auto e = mk(ExprKind::kScratchRef, loc);
  e->slot = slot;
  e->name = std::move(name);
  e->type = t;
  return e;
}

ExprPtr mk_assign_field(int slot, std::string name, ExprPtr value) {
  auto e = mk(ExprKind::kAssign);
  e->assign_target = AssignTarget::kField;
  e->slot = slot;
  e->name = std::move(name);
  e->type = Type::kUnit;
  e->kids.push_back(std::move(value));
  return e;
}

ExprPtr mk_assign_scratch(int slot, std::string name, ExprPtr value) {
  auto e = mk(ExprKind::kAssign);
  e->assign_target = AssignTarget::kScratch;
  e->slot = slot;
  e->name = std::move(name);
  e->type = Type::kUnit;
  e->kids.push_back(std::move(value));
  return e;
}

ExprPtr mk_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, Type t) {
  auto e = mk(ExprKind::kBinary);
  e->bin_op = op;
  e->type = t;
  e->kids.push_back(std::move(lhs));
  e->kids.push_back(std::move(rhs));
  return e;
}

ExprPtr mk_seq(std::vector<ExprPtr> kids) {
  auto e = mk(ExprKind::kSeq);
  e->type = Type::kUnit;
  e->kids = std::move(kids);
  return e;
}

ExprPtr mk_if(ExprPtr cond, ExprPtr then_e) {
  auto e = mk(ExprKind::kIf);
  e->type = Type::kUnit;
  e->kids.push_back(std::move(cond));
  e->kids.push_back(std::move(then_e));
  return e;
}

ExprPtr mk_halt() {
  auto e = mk(ExprKind::kHalt);
  e->type = Type::kUnit;
  return e;
}

ExprPtr seq_append(ExprPtr seq, ExprPtr e) {
  if (seq->kind != ExprKind::kSeq) {
    std::vector<ExprPtr> kids;
    kids.push_back(std::move(seq));
    seq = mk_seq(std::move(kids));
  }
  seq->kids.push_back(std::move(e));
  return seq;
}

ExprPtr seq_prepend(ExprPtr e, ExprPtr seq) {
  if (seq->kind != ExprKind::kSeq) {
    std::vector<ExprPtr> kids;
    kids.push_back(std::move(seq));
    seq = mk_seq(std::move(kids));
  }
  seq->kids.insert(seq->kids.begin(), std::move(e));
  return seq;
}

int Program::find_field(const std::string& name) const {
  for (std::size_t i = 0; i < fields.size(); ++i)
    if (fields[i].name == name) return static_cast<int>(i);
  return -1;
}

int Program::add_field(std::string name, Type t, Field::Origin origin,
                       int site) {
  DV_CHECK_MSG(find_field(name) < 0, "duplicate field " << name);
  fields.push_back(Field{std::move(name), t, origin, site});
  return static_cast<int>(fields.size()) - 1;
}

int Program::add_scratch(std::string name, Type t, ScratchVar::Origin origin,
                         int site) {
  scratch.push_back(ScratchVar{std::move(name), t, origin, site});
  return static_cast<int>(scratch.size()) - 1;
}

int Program::find_param(const std::string& name) const {
  for (std::size_t i = 0; i < params.size(); ++i)
    if (params[i].name == name) return static_cast<int>(i);
  return -1;
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

namespace {

const char* bin_op_str(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
    case BinOp::kLt: return "<";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kLe: return "<=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
  }
  return "?";
}

void print(const Expr& e, std::ostringstream& os, int indent);

void print_indented(const Expr& e, std::ostringstream& os, int indent) {
  os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
  print(e, os, indent);
}

void print(const Expr& e, std::ostringstream& os, int indent) {
  switch (e.kind) {
    case ExprKind::kIntLit: os << e.int_val; break;
    case ExprKind::kFloatLit: os << e.float_val; break;
    case ExprKind::kBoolLit: os << (e.bool_val ? "true" : "false"); break;
    case ExprKind::kInfty: os << "infty"; break;
    case ExprKind::kVarRef: os << e.name; break;
    case ExprKind::kFieldRef: os << e.name; break;
    case ExprKind::kParamRef: os << e.name; break;
    case ExprKind::kScratchRef: os << "$" << e.name; break;
    case ExprKind::kGraphSize: os << "graphSize"; break;
    case ExprKind::kVertexIdRef: os << "vertexId"; break;
    case ExprKind::kStableRef: os << "stable"; break;
    case ExprKind::kEdgeWeight: os << "u.edge"; break;
    case ExprKind::kNeighborField: os << "u." << e.name; break;
    case ExprKind::kDegree: os << "|" << graph_dir_name(e.dir) << "|"; break;
    case ExprKind::kHalt: os << "halt"; break;
    case ExprKind::kBinary:
      os << "(";
      print(*e.kids[0], os, indent);
      os << " " << bin_op_str(e.bin_op) << " ";
      print(*e.kids[1], os, indent);
      os << ")";
      break;
    case ExprKind::kUnary:
      os << (e.un_op == UnOp::kNeg ? "-" : "not ");
      print(*e.kids[0], os, indent);
      break;
    case ExprKind::kPairOp:
      os << (e.pair_op == PairOp::kMin ? "min" : "max") << "(";
      print(*e.kids[0], os, indent);
      os << ", ";
      print(*e.kids[1], os, indent);
      os << ")";
      break;
    case ExprKind::kIf:
      os << "if ";
      print(*e.kids[0], os, indent);
      os << " then ";
      print(*e.kids[1], os, indent);
      if (e.kids.size() == 3) {
        os << " else ";
        print(*e.kids[2], os, indent);
      }
      break;
    case ExprKind::kLet:
      os << "let " << e.name << " : " << type_name(e.decl_type) << " = ";
      print(*e.kids[0], os, indent);
      os << " in\n";
      print_indented(*e.kids[1], os, indent);
      break;
    case ExprKind::kSeq: {
      bool first = true;
      for (const auto& k : e.kids) {
        if (!first) os << ";\n" << std::string(
            static_cast<std::size_t>(indent) * 2, ' ');
        first = false;
        print(*k, os, indent);
      }
      break;
    }
    case ExprKind::kAssign:
      if (e.assign_target == AssignTarget::kScratch) os << "$";
      os << e.name << " = ";
      print(*e.kids[0], os, indent);
      break;
    case ExprKind::kLocalDecl:
      os << "local " << e.name << " : " << type_name(e.decl_type) << " = ";
      print(*e.kids[0], os, indent);
      break;
    case ExprKind::kAgg:
      os << agg_op_name(e.agg_op) << " [ ";
      print(*e.kids[0], os, indent);
      os << " | u <- " << graph_dir_name(e.dir) << " ]";
      break;
    case ExprKind::kFoldMessages:
      if (e.flag) {
        os << "for(m : messages#" << e.site << "){ aggAccum#" << e.site
           << " " << agg_op_name(e.agg_op) << "= m }";
      } else {
        os << "for(m : messages#" << e.site << "){ tmp " << agg_op_name(
            e.agg_op) << "= m }";
      }
      break;
    case ExprKind::kSendLoop:
      os << "for(u : " << graph_dir_name(e.dir) << "){ send(u, ";
      if (e.flag) {
        os << "Δ#" << e.site << "(";
        print(*e.kids[1], os, indent);
        os << ", ";
        print(*e.kids[0], os, indent);
        os << ")";
      } else {
        print(*e.kids[0], os, indent);
      }
      os << ") }";
      break;
    case ExprKind::kRemoteRead:
      os << "remote(";
      print(*e.kids[0], os, indent);
      os << ")." << e.name;
      break;
    case ExprKind::kSendTo:
      os << "send#" << e.site << "(wrap(";
      print(*e.kids[0], os, indent);
      os << "), vertexId)";
      break;
    case ExprKind::kReplyLoop:
      os << "for(m : messages#" << e.site << "){ send#" << e.int_val
         << "(m, " << e.name << ") }";
      break;
  }
}

}  // namespace

std::string to_string(const Expr& e) {
  std::ostringstream os;
  print(e, os, 0);
  return os.str();
}

std::string to_string(const Program& p) {
  std::ostringstream os;
  for (const auto& param : p.params)
    os << "param " << param.name << " : " << type_name(param.type) << ";\n";
  os << "init {\n  " << to_string(*p.init) << "\n};\n";
  for (const auto& s : p.stmts) {
    for (std::size_t ph = 0; ph < s.phases.size(); ++ph)
      os << "phase " << ph << " {\n  " << to_string(*s.phases[ph]) << "\n}\n";
    if (s.kind == Stmt::Kind::kStep) {
      os << "step {\n  " << to_string(*s.body) << "\n}";
    } else {
      os << "iter " << s.iter_var << " {\n  " << to_string(*s.body)
         << "\n} until { " << to_string(*s.until) << " }";
    }
    os << ";\n";
  }
  return os.str();
}

}  // namespace deltav::dv
