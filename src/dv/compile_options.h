// Options controlling which of the paper's transformations run.
#pragma once

namespace deltav::dv {

/// When is a vertex's externally-visible value (re)sent?
enum class SendPolicy {
  /// Every superstep (the raw §6.1 push conversion, no policy). Kept as an
  /// ablation baseline ("naive"); not one of the paper's measured variants.
  kAlways,
  /// Whenever the value was assigned this superstep, regardless of whether
  /// it changed — our reading of the paper's ΔV* variant (see DESIGN.md:
  /// it is the only send policy consistent with Fig. 4's equal ΔV/ΔV*
  /// message counts on SSSP/CC).
  kOnAssign,
  /// Only when the value actually changed (§6.3 change checks) — ΔV.
  kOnChange,
};

struct CompileOptions {
  /// true → the full ΔV pipeline (§6.3-§6.6); false → ΔV* (push conversion
  /// and state binding only, kOnAssign sends).
  bool incrementalize = true;

  /// §6.6 halt insertion. Only meaningful when incrementalize is true;
  /// separable so the halt-policy ablation can isolate its effect.
  bool insert_halts = true;

  /// Overrides the send policy implied by `incrementalize` when set to
  /// kAlways (ablation); otherwise ignored.
  bool naive_sends = false;

  /// Lower remote(e).f reads into request/response supersteps (the normal
  /// pipeline). false keeps kRemoteRead nodes in the statement bodies for
  /// the *reference* interpretation — a direct snapshot-read evaluated on
  /// the tree tier only — which the fuzzer's remote family holds the
  /// lowered pipeline bit-exact against.
  bool lower_remote = true;

  /// §9 future work: "allowable slop" ε. A float sum-aggregated message
  /// counts as changed only when it differs from the last *sent* value by
  /// more than ε. ε > 0 adds a per-site last-sent field to the vertex
  /// state. Requires incrementalize.
  double epsilon = 0.0;

  SendPolicy send_policy() const {
    if (naive_sends) return SendPolicy::kAlways;
    return incrementalize ? SendPolicy::kOnChange : SendPolicy::kOnAssign;
  }
};

}  // namespace deltav::dv
