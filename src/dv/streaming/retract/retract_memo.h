// Retraction memos for min/max aggregation sites (DESIGN.md §11).
//
// min/max folds are not invertible: once a contribution has been folded
// into an accumulator, deleting the edge that supplied it cannot be
// expressed as another fold, which is why `warm_blocker` historically
// forced a cold reconvergence on any deletion-bearing epoch. The memo
// fixes that with bounded memory: for every memoized (vertex, site) cell
// it keeps the k best tagged contributions (sender id + value bits) in a
// fixed-capacity tournament buffer plus a conservative `bound` on every
// contribution it chose to forget. Retracting the extremum then costs
// O(k) — rescan the buffer — and only when all k survivors have been
// retracted (underflow) does the runner fall back to a targeted re-fold
// of that one vertex's in-neighbors. Never a whole-graph cold restart.
//
// Cell invariant (stated for min; max is the mirror image):
//   * every buffered entry's value is ≤ bound;
//   * every present contribution whose sender is NOT buffered is ≥ bound;
//   * bound == identity (+∞) means the buffer is exhaustive.
// Hence while count > 0 the exact accumulator value is the extremum of
// the buffered entries (ties at the bound cannot beat it), and while
// count == 0 with bound == identity the accumulator is the identity.
// count == 0 with a tightened bound is the underflow state.
//
// Entries are maintained from *total* contributions, not deltas: every
// record carries the sender's new payload value (identity bits encode
// removal), so applying a record is a keyed upsert/remove. Records are
// gathered per worker lane during a superstep and drained post-barrier
// in canonical (dst, col, sender) order, which makes the memo — and the
// accumulator rewrites it drives — deterministic across schedules and
// bit-identical across execution tiers.
//
// Ordering is a strict total order (value, then raw bits, then sender):
// the bits tiebreak makes −0.0 vs +0.0 deterministic, the sender
// tiebreak makes equal values from distinct senders deterministic. NaN
// ranks strictly worst; a NaN contribution that has been evicted loses
// its fold-poisoning effect until the next refold (the eligibility
// analysis only routes payload shapes our generators keep NaN-free).
#pragma once

#include <cstdint>
#include <vector>

#include "dv/runtime/atomic_fold.h"
#include "dv/runtime/value.h"
#include "graph/csr_graph.h"

namespace deltav::dv {

/// One buffered contribution: who sent it and the payload's bit pattern
/// (int64 or double bits per the column's type, as atomic_fold_bits).
struct RetractEntry {
  std::uint32_t sender = 0;
  std::uint64_t bits = 0;
};

/// One recorded send: sender's NEW total contribution into (dst, col).
/// Identity bits mean "sender no longer contributes" (entry removal).
struct RetractRecord {
  graph::VertexId dst = 0;
  std::uint32_t sender = 0;
  std::uint32_t col = 0;
  std::uint64_t bits = 0;
};

/// Per-worker-lane record buffer. Single-writer during a superstep; the
/// runner gathers and canonically sorts all lanes post-barrier.
struct RetractLane {
  std::vector<RetractRecord> records;

  void record(graph::VertexId dst, std::uint32_t sender, int col,
              std::uint64_t bits) {
    records.push_back({dst, sender, static_cast<std::uint32_t>(col), bits});
  }
};

/// The memo table: k-entry tournament buffers for every (vertex, routed
/// min/max site). `route[site]` maps a site id to its column (-1 = site
/// not memoized). Layout is vertex-outermost so growth appends rows.
struct RetractMemoTable {
  std::size_t k = 0;
  std::vector<int> route;               // site id -> column, -1 = off
  std::vector<std::uint32_t> site_of;   // column -> site id
  std::vector<AggOp> ops;               // per column (kMin or kMax)
  std::vector<Type> types;              // per column (kInt or kFloat)
  std::vector<std::uint64_t> identity;  // per column, as bits
  std::size_t num_vertices = 0;

  std::vector<RetractEntry> entries;    // [(v * C + c) * k + slot]
  std::vector<std::uint8_t> counts;     // [v * C + c]
  std::vector<std::uint64_t> bounds;    // [v * C + c]

  std::size_t columns() const { return ops.size(); }
  bool empty() const { return ops.empty(); }

  std::size_t cell_index(graph::VertexId v, int c) const {
    return static_cast<std::size_t>(v) * columns() +
           static_cast<std::size_t>(c);
  }

  /// Empties every cell (count 0, bound = identity). Single-threaded.
  void reset(std::size_t n);

  /// Appends empty cells for vertices [num_vertices, n).
  void grow(std::size_t n);

  /// Strict "a beats b" under column c's operator, with the
  /// (value, bits, sender) tiebreak chain described above.
  bool better(int c, const RetractEntry& a, const RetractEntry& b) const;

  /// Value-level strict comparison (no sender tiebreak): would a
  /// contribution with these bits beat the cell's bound?
  bool value_better(int c, std::uint64_t a, std::uint64_t b) const;

  enum class Applied : std::uint8_t {
    kUntouched,  // no behavioral change (duplicate, or stays outside)
    kImproved,   // entry inserted or strengthened — normal folds cover it
    kWorsened,   // entry removed or weakened — accumulator may need to rise
  };

  /// Applies one record (sender's new total; identity = removal).
  Applied apply(graph::VertexId dst, int c, std::uint32_t sender,
                std::uint64_t bits);

  enum class CellState : std::uint8_t { kExact, kUnderflow };

  /// Reads a cell's exact accumulator value, or reports underflow (all k
  /// survivors retracted — the caller must refold the in-neighborhood).
  CellState query(graph::VertexId dst, int c, std::uint64_t* acc) const;

  /// Rebuilds a cell from the complete current contribution list
  /// (identity-valued contributions are skipped — they are "absent").
  void rebuild(graph::VertexId dst, int c, const RetractEntry* contribs,
               std::size_t n);

 private:
  int find(const RetractEntry* cell, std::uint8_t count,
           std::uint32_t sender) const;
  int worst(int c, const RetractEntry* cell, std::uint8_t count) const;
};

}  // namespace deltav::dv
