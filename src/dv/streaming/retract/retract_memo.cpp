#include "dv/streaming/retract/retract_memo.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace deltav::dv {
namespace {

double bits_to_f(std::uint64_t bits) {
  double f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

std::int64_t bits_to_i(std::uint64_t bits) {
  std::int64_t i;
  std::memcpy(&i, &bits, sizeof(i));
  return i;
}

/// -1 / 0 / +1 value-level comparison under the column's order, where
/// "negative" means a ranks strictly better than b. NaN ranks worst.
int value_rank(AggOp op, Type t, std::uint64_t a, std::uint64_t b) {
  if (t == Type::kFloat) {
    const double av = bits_to_f(a);
    const double bv = bits_to_f(b);
    const bool an = std::isnan(av);
    const bool bn = std::isnan(bv);
    if (an || bn) {
      if (an == bn) return 0;
      return an ? 1 : -1;
    }
    if (av == bv) return 0;
    const bool a_wins = op == AggOp::kMin ? av < bv : av > bv;
    return a_wins ? -1 : 1;
  }
  const std::int64_t av = bits_to_i(a);
  const std::int64_t bv = bits_to_i(b);
  if (av == bv) return 0;
  const bool a_wins = op == AggOp::kMin ? av < bv : av > bv;
  return a_wins ? -1 : 1;
}

}  // namespace

void RetractMemoTable::reset(std::size_t n) {
  num_vertices = n;
  const std::size_t cells = n * columns();
  entries.assign(cells * k, RetractEntry{});
  counts.assign(cells, 0);
  bounds.resize(cells);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t c = 0; c < columns(); ++c)
      bounds[v * columns() + c] = identity[c];
}

void RetractMemoTable::grow(std::size_t n) {
  DV_CHECK(n >= num_vertices);
  const std::size_t cells = n * columns();
  entries.resize(cells * k, RetractEntry{});
  counts.resize(cells, 0);
  bounds.resize(cells);
  for (std::size_t v = num_vertices; v < n; ++v)
    for (std::size_t c = 0; c < columns(); ++c)
      bounds[v * columns() + c] = identity[c];
  num_vertices = n;
}

bool RetractMemoTable::better(int c, const RetractEntry& a,
                              const RetractEntry& b) const {
  const std::size_t ci = static_cast<std::size_t>(c);
  const int r = value_rank(ops[ci], types[ci], a.bits, b.bits);
  if (r != 0) return r < 0;
  if (a.bits != b.bits) return a.bits < b.bits;
  return a.sender < b.sender;
}

bool RetractMemoTable::value_better(int c, std::uint64_t a,
                                    std::uint64_t b) const {
  const std::size_t ci = static_cast<std::size_t>(c);
  return value_rank(ops[ci], types[ci], a, b) < 0;
}

int RetractMemoTable::find(const RetractEntry* cell, std::uint8_t count,
                           std::uint32_t sender) const {
  for (int i = 0; i < static_cast<int>(count); ++i)
    if (cell[i].sender == sender) return i;
  return -1;
}

int RetractMemoTable::worst(int c, const RetractEntry* cell,
                            std::uint8_t count) const {
  int w = 0;
  for (int i = 1; i < static_cast<int>(count); ++i)
    if (better(c, cell[w], cell[i])) w = i;
  return w;
}

RetractMemoTable::Applied RetractMemoTable::apply(graph::VertexId dst, int c,
                                                  std::uint32_t sender,
                                                  std::uint64_t bits) {
  const std::size_t cell = cell_index(dst, c);
  RetractEntry* e = &entries[cell * k];
  std::uint8_t& count = counts[cell];
  std::uint64_t& bound = bounds[cell];
  const std::uint64_t id = identity[static_cast<std::size_t>(c)];
  const int idx = find(e, count, sender);

  if (bits == id) {  // sender no longer contributes
    if (idx < 0) return Applied::kUntouched;
    e[idx] = e[count - 1];
    e[count - 1] = RetractEntry{};
    --count;
    return Applied::kWorsened;
  }

  // A value is "outside" when it cannot beat the bound — unless the
  // buffer is exhaustive (bound at identity), where everything is inside.
  const bool outside = bound != id && !value_better(c, bits, bound);

  if (idx >= 0) {  // keyed update of a buffered sender
    if (e[idx].bits == bits) return Applied::kUntouched;
    const RetractEntry nw{sender, bits};
    const bool worsened = better(c, e[idx], nw);
    if (outside) {  // weakened past the bound: forget it (still ≥ bound)
      e[idx] = e[count - 1];
      e[count - 1] = RetractEntry{};
      --count;
    } else {
      e[idx].bits = bits;
    }
    return worsened ? Applied::kWorsened : Applied::kImproved;
  }

  if (outside) return Applied::kUntouched;  // absent and staying absent

  if (count < k) {
    e[count++] = RetractEntry{sender, bits};
    return Applied::kImproved;
  }

  // Full buffer: tournament against the worst entry.
  const int w = worst(c, e, count);
  const RetractEntry nw{sender, bits};
  if (better(c, nw, e[w])) {
    bound = e[w].bits;  // the evicted value becomes the new bound
    e[w] = nw;
    return Applied::kImproved;
  }
  // The newcomer loses: it becomes absent, so the bound must cover it.
  if (value_better(c, bits, bound)) bound = bits;
  return Applied::kUntouched;
}

RetractMemoTable::CellState RetractMemoTable::query(graph::VertexId dst, int c,
                                                    std::uint64_t* acc) const {
  const std::size_t cell = cell_index(dst, c);
  const RetractEntry* e = &entries[cell * k];
  const std::uint8_t count = counts[cell];
  if (count > 0) {
    int b = 0;
    for (int i = 1; i < static_cast<int>(count); ++i)
      if (better(c, e[i], e[b])) b = i;
    *acc = e[b].bits;
    return CellState::kExact;
  }
  if (bounds[cell] == identity[static_cast<std::size_t>(c)]) {
    *acc = identity[static_cast<std::size_t>(c)];
    return CellState::kExact;
  }
  return CellState::kUnderflow;
}

void RetractMemoTable::rebuild(graph::VertexId dst, int c,
                               const RetractEntry* contribs, std::size_t n) {
  const std::size_t cell = cell_index(dst, c);
  RetractEntry* e = &entries[cell * k];
  std::uint8_t& count = counts[cell];
  const std::uint64_t id = identity[static_cast<std::size_t>(c)];
  count = 0;
  for (std::size_t i = 0; i < k; ++i) e[i] = RetractEntry{};
  bool evicted = false;
  std::uint64_t worst_kept = id;
  for (std::size_t i = 0; i < n; ++i) {
    if (contribs[i].bits == id) continue;  // absent contribution
    if (count < k) {
      e[count++] = contribs[i];
      continue;
    }
    const int w = worst(c, e, count);
    if (better(c, contribs[i], e[w])) {
      e[w] = contribs[i];
    }
    evicted = true;
  }
  if (evicted) {
    worst_kept = e[worst(c, e, count)].bits;
  }
  bounds[cell] = evicted ? worst_kept : id;
}

}  // namespace deltav::dv
