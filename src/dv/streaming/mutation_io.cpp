#include "dv/streaming/mutation_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.h"

namespace deltav::dv::streaming {
namespace {

/// What one non-blank, non-comment line turned out to be.
enum class LineKind { kOp, kCommit };

/// Parses one operation line into `batch`. Shared between the stream
/// reader and BatchLineParser so the two surfaces can never drift on the
/// accepted grammar. `lineno` is for error messages only.
LineKind parse_op_line(const std::string& line, std::size_t lineno,
                       graph::MutationBatch& batch) {
  // A line must be consumed in full: `+ 1 2 3 4` silently dropping the
  // `4` would apply a different mutation than the author wrote.
  const auto expect_line_end = [&](std::istringstream& ls) {
    std::string extra;
    if (ls >> extra)
      DV_FAIL("mutation stream line "
              << lineno << ": trailing garbage '" << extra << "'");
  };
  std::istringstream ls(line);
  std::string op;
  ls >> op;
  if (op == "commit") {
    expect_line_end(ls);
    return LineKind::kCommit;
  } else if (op == "+") {
    graph::VertexId u, v;
    if (!(ls >> u >> v))
      DV_FAIL("mutation stream line " << lineno << ": expected '+ u v [w]'");
    // Optional weight: if anything follows the endpoints it must be a
    // whole numeric token (`+ 1 2 1x` is garbage, not weight 1).
    double w = 1.0;
    std::string wtok;
    if (ls >> wtok) {
      std::size_t consumed = 0;
      try {
        w = std::stod(wtok, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != wtok.size())
        DV_FAIL("mutation stream line "
                << lineno << ": expected numeric weight, got '" << wtok
                << "'");
      expect_line_end(ls);
    }
    batch.insert_edge(u, v, w);
  } else if (op == "-") {
    graph::VertexId u, v;
    if (!(ls >> u >> v))
      DV_FAIL("mutation stream line " << lineno << ": expected '- u v'");
    expect_line_end(ls);
    batch.remove_edge(u, v);
  } else if (op == "addv") {
    std::size_t n = 0;
    if (!(ls >> n))
      DV_FAIL("mutation stream line " << lineno << ": expected 'addv n'");
    expect_line_end(ls);
    batch.add_vertices += n;
  } else if (op == "delv") {
    graph::VertexId v;
    if (!(ls >> v))
      DV_FAIL("mutation stream line " << lineno << ": expected 'delv v'");
    expect_line_end(ls);
    batch.detach_vertices.push_back(v);
  } else {
    DV_FAIL("mutation stream line " << lineno << ": unknown op '" << op
                                    << "'");
  }
  return LineKind::kOp;
}

bool is_comment(const std::string& line) {
  return !line.empty() && (line[0] == '#' || line[0] == '%');
}

/// Blank for skipping purposes: empty or whitespace-only (a protocol
/// client indenting its stream should not change its meaning).
bool is_blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

std::vector<graph::MutationBatch> read_mutation_stream(std::istream& in) {
  std::vector<graph::MutationBatch> batches;
  graph::MutationBatch cur;
  auto flush = [&] {
    if (!cur.empty()) batches.push_back(std::move(cur));
    cur = {};
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      flush();
      continue;
    }
    if (is_comment(line)) continue;
    if (parse_op_line(line, lineno, cur) == LineKind::kCommit) flush();
  }
  flush();
  return batches;
}

bool BatchLineParser::feed(const std::string& line) {
  ++lineno_;
  if (is_blank(line) || is_comment(line)) return false;
  return parse_op_line(line, lineno_, batch_) == LineKind::kCommit;
}

graph::MutationBatch BatchLineParser::take() {
  graph::MutationBatch b = std::move(batch_);
  batch_ = {};
  return b;
}

std::vector<graph::MutationBatch> read_mutation_stream_file(
    const std::string& path) {
  std::ifstream in(path);
  DV_CHECK_MSG(in.good(), "cannot open mutation stream: " << path);
  return read_mutation_stream(in);
}

void write_mutation_stream(const std::vector<graph::MutationBatch>& batches,
                           std::ostream& out) {
  for (const auto& b : batches) {
    for (const auto& e : b.edges) {
      if (e.insert)
        out << "+ " << e.src << ' ' << e.dst << ' ' << e.weight << '\n';
      else
        out << "- " << e.src << ' ' << e.dst << '\n';
    }
    if (b.add_vertices > 0) out << "addv " << b.add_vertices << '\n';
    for (const graph::VertexId v : b.detach_vertices) out << "delv " << v
                                                          << '\n';
    out << "commit\n";
  }
}

}  // namespace deltav::dv::streaming
