#include "dv/streaming/stream_session.h"

#include <bit>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "dv/obs/obs.h"
#include "dv/persist/graph_codec.h"
#include "dv/persist/snapshot.h"

namespace deltav::dv::streaming {
namespace {

/// Current snapshot payload version. The container magic ("DVSNAP01")
/// guards the framing; this guards the section contents. Bump on any
/// layout change — old snapshots then fail restore with a version
/// message, never a misparse.
/// v2: SuperstepStats gained vertices_halted/vertices_woken.
/// v3: runner snapshots gained the kSecRetract section (min/max
///     retraction memos, DESIGN.md §11).
constexpr std::uint32_t kFormatVersion = 3;

std::uint64_t value_payload_bits(const Value& v) {
  switch (v.type) {
    case Type::kFloat:
      return std::bit_cast<std::uint64_t>(v.f);
    case Type::kBool:
      return v.b ? 1 : 0;
    case Type::kInt:
    default:
      return static_cast<std::uint64_t>(v.i);
  }
}

/// Fingerprint of everything that determines the compiled program's
/// execution semantics: the source text plus every CompileOptions field
/// (the same source compiles to different state layouts and send policies
/// under different options) plus the layout counts as a belt-and-braces
/// check against compiler drift across versions of this codebase.
std::uint64_t program_digest(const CompiledProgram& cp) {
  std::uint64_t h = fnv1a(cp.source);
  h = hash_combine(h, cp.options.incrementalize ? 1 : 0);
  h = hash_combine(h, cp.options.insert_halts ? 1 : 0);
  h = hash_combine(h, cp.options.naive_sends ? 1 : 0);
  h = hash_combine(h, std::bit_cast<std::uint64_t>(cp.options.epsilon));
  h = hash_combine(h, cp.num_fields());
  h = hash_combine(h, cp.num_scratch());
  h = hash_combine(h, cp.num_sites());
  h = hash_combine(h, cp.program.stmts.size());
  return h;
}

/// Fingerprint of the parameter bindings. Params feed expression
/// evaluation, so a restore under different bindings would diverge from
/// the saved trajectory on the very next superstep. std::map iteration is
/// name-ordered, hence deterministic.
std::uint64_t params_digest(const std::map<std::string, Value>& params) {
  std::uint64_t h = fnv1a("dv-params");
  for (const auto& [name, v] : params) {
    h = hash_combine(h, fnv1a(name));
    h = hash_combine(h, static_cast<std::uint64_t>(v.type));
    h = hash_combine(h, value_payload_bits(v));
  }
  return h;
}

[[noreturn]] void mismatch(const std::string& what) {
  throw persist::SnapshotError(
      "snapshot does not match the restoring session: " + what);
}

}  // namespace

DvStreamSession::DvStreamSession(const CompiledProgram& cp,
                                 graph::CsrGraph base, SessionOptions options)
    : DvStreamSession(cp, graph::DynamicGraph(std::move(base)),
                      std::move(options)) {}

DvStreamSession::DvStreamSession(const CompiledProgram& cp,
                                 graph::DynamicGraph dyn,
                                 SessionOptions options)
    : cp_(&cp), options_(std::move(options)), dyn_(std::move(dyn)) {
  // The session-level knob is authoritative: runners (including cold-
  // epoch replacements) inherit it through options_.run.
  options_.run.minmax_memo_k = options_.minmax_memo_k;
  if (options_.checkpoint_every > 0 &&
      (options_.checkpoint_sink || !options_.checkpoint_path.empty())) {
    // Installed on options_.run so cold-epoch replacement runners inherit
    // the hook too. `this` is stable: the session type is immovable.
    options_.run.checkpoint_every = options_.checkpoint_every;
    options_.run.checkpoint_sink = [this](std::size_t) { write_checkpoint(); };
  }
  init_runner();
}

DvStreamSession::~DvStreamSession() = default;

void DvStreamSession::check_owner() const {
#ifndef NDEBUG
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};  // unbound
  if (owner_.compare_exchange_strong(expected, self,
                                     std::memory_order_acq_rel)) {
    return;  // first guarded entry point: this thread is now the owner
  }
  DV_CHECK_MSG(expected == self,
               "DvStreamSession entered from a second thread: sessions are "
               "single-owner (see rebind_owner_thread() in "
               "stream_session.h); dv/serve drives each session from one "
               "engine thread and serves reads from a published view");
#endif
}

void DvStreamSession::rebind_owner_thread() {
  owner_.store(std::this_thread::get_id(), std::memory_order_release);
}

void DvStreamSession::init_runner() {
  runner_ = std::make_unique<DvRunner>(*cp_, graph::GraphView(dyn_),
                                       options_.run);
}

bool DvStreamSession::converged() const { return runner_->converged(); }

bool DvStreamSession::atomic_path() const { return runner_->atomic_path(); }

bool DvStreamSession::memo_path() const { return runner_->memo_path(); }

DvRunResult DvStreamSession::converge() {
  check_owner();
  DV_CHECK_MSG(!runner_->converged(), "converge() already ran; use apply()");
  // Distinguish the first-ever converge() from resuming a snapshot taken
  // mid-cold-epoch (epoch_ > 0: apply() had already committed the delta
  // and was re-running when the checkpoint fired).
  const bool resumed_epoch = converge_called_ && epoch_ > 0;
  converge_called_ = true;
  DvRunResult r = runner_->converge();
  if (resumed_epoch &&
      dyn_.overlay_fraction() > options_.compact_threshold) {
    // Replay the interrupted epoch's pending compaction check, so the
    // overlay — and every later epoch's compaction decision — stays on
    // the uninterrupted session's trajectory.
    dyn_.compact();
  }
  return r;
}

SessionEpoch DvStreamSession::apply(const graph::MutationBatch& batch) {
  check_owner();
  DV_CHECK_MSG(converge_called_, "apply() before converge()");
  DV_CHECK_MSG(runner_->converged(),
               "apply() on an unresumed snapshot; call converge() first");
  obs::Collector* const col = obs::resolve(options_.run.collector);
  obs::Scope obs_scope(col, "stream.apply");
  SessionEpoch ep;
  ep.epoch = ++epoch_;

  const auto note_decision = [&](const SessionEpoch& e) {
    if (!col) return;
    col->metrics.shard(0).add(
        e.warm ? obs::Counter::kWarmEpochs : obs::Counter::kColdEpochs, 1);
    if (e.blocker)
      col->metrics.add_named(std::string("stream.warm_blocked.") +
                             e.blocker);
  };

  const graph::GraphDelta delta = dyn_.plan(batch);
  if (delta.empty()) {
    // Nothing net-changed (all ops redundant): state is already converged.
    ep.warm = true;
    ep.stats.atomic_path = runner_->atomic_path();
    note_decision(ep);
    return ep;
  }

  ep.blocker = options_.force_cold
                   ? "cold rebuild forced by SessionOptions::force_cold"
                   : DvRunner::warm_blocker(*cp_, delta,
                                            options_.run.minmax_memo_k);
  if (ep.blocker == nullptr)
    ep.blocker = runner_->warm_runtime_blocker(delta);
  ep.warm = ep.blocker == nullptr;
  if (ep.blocker == nullptr) {
    ep.stats = runner_->apply_epoch(dyn_, delta);
    if (ep.stats.warm_aborted) {
      // The warm repair hit the count-to-infinity cap: mid-climb state is
      // unusable. apply_epoch already committed the delta, so rebuild
      // cold over the mutated graph — no re-commit.
      ep.warm = false;
      ep.blocker = "warm repair aborted at the superstep cap "
                   "(count-to-infinity guard)";
      init_runner();
      const DvRunResult r = runner_->converge();
      ep.stats.supersteps += r.supersteps;
      ep.stats.messages += r.stats.total_messages_sent();
      ep.stats.woken = r.num_vertices;
      ep.stats.atomic_path = runner_->atomic_path();
    }
  } else {
    dyn_.commit(delta);
    init_runner();
    const DvRunResult r = runner_->converge();
    ep.stats.supersteps = r.supersteps;
    ep.stats.messages = r.stats.total_messages_sent();
    ep.stats.woken = r.num_vertices;  // a cold run wakes everyone
    ep.stats.atomic_path = runner_->atomic_path();
  }
  note_decision(ep);

  if (dyn_.overlay_fraction() > options_.compact_threshold) {
    // The runner's GraphView targets dyn_ itself, so reads stay valid —
    // compaction only moves adjacency from the overlay into the base CSR.
    dyn_.compact();
    ep.compacted = true;
  }
  return ep;
}

DvRunResult DvStreamSession::result() const {
  check_owner();
  return runner_->result();
}

persist::SnapshotWriter DvStreamSession::build_snapshot() const {
  check_owner();
  obs::Scope obs_scope(obs::resolve(options_.run.collector),
                       "persist.save");
  persist::SnapshotWriter w;
  w.begin_section(persist::kSecMeta);
  w.put_u32(kFormatVersion);
  w.put_u64(program_digest(*cp_));
  w.put_u64(params_digest(options_.run.params));
  // Engine configuration fields are stored individually (not digested) so
  // a mismatch names the offending knob. The execution tier is
  // deliberately absent: tiers are bit-identical by contract, so a
  // VM-written snapshot may resume on the tree interpreter and vice versa
  // (tests/dv_persist_test.cpp pins this down).
  const pregel::EngineOptions& eng = options_.run.engine;
  w.put_u32(static_cast<std::uint32_t>(eng.num_workers));
  w.put_u8(static_cast<std::uint8_t>(eng.partition));
  w.put_u8(static_cast<std::uint8_t>(eng.schedule));
  w.put_bool(eng.use_combiner);
  w.put_bool(options_.run.use_combiner);
  w.put_u64(epoch_);
  w.put_bool(converge_called_);
  w.end_section();
  persist::GraphCodec::write(dyn_, w);
  runner_->save_state(w);
  w.finish();
  return w;
}

void DvStreamSession::save(const std::string& path) const {
  build_snapshot().write_file(path);
}

std::vector<std::uint8_t> DvStreamSession::save_bytes() const {
  return std::move(build_snapshot()).take_bytes();
}

void DvStreamSession::write_checkpoint() {
  if (options_.checkpoint_sink) {
    options_.checkpoint_sink(save_bytes());
  } else {
    save(options_.checkpoint_path);
  }
}

std::unique_ptr<DvStreamSession> DvStreamSession::restore(
    const CompiledProgram& cp, const std::string& path,
    SessionOptions options) {
  return restore_bytes(cp, persist::read_file_bytes(path),
                       std::move(options));
}

std::unique_ptr<DvStreamSession> DvStreamSession::restore_bytes(
    const CompiledProgram& cp, std::vector<std::uint8_t> bytes,
    SessionOptions options) {
  obs::Scope obs_scope(obs::resolve(options.run.collector),
                       "persist.restore");
  persist::SnapshotReader r(std::move(bytes));

  r.open(persist::kSecMeta);
  const std::uint32_t version = r.get_u32();
  if (version != kFormatVersion) {
    mismatch("snapshot format version " + std::to_string(version) +
             ", this build reads version " + std::to_string(kFormatVersion));
  }
  if (r.get_u64() != program_digest(cp)) {
    mismatch("it was written by a different compiled program "
             "(source or compile options differ)");
  }
  if (r.get_u64() != params_digest(options.run.params)) {
    mismatch("program parameter bindings differ");
  }
  const pregel::EngineOptions& eng = options.run.engine;
  const std::uint32_t workers = r.get_u32();
  if (workers != static_cast<std::uint32_t>(eng.num_workers)) {
    mismatch("it was written with " + std::to_string(workers) +
             " engine workers, restoring with " +
             std::to_string(eng.num_workers));
  }
  if (r.get_u8() != static_cast<std::uint8_t>(eng.partition)) {
    mismatch("partition scheme differs");
  }
  if (r.get_u8() != static_cast<std::uint8_t>(eng.schedule)) {
    mismatch("schedule mode differs");
  }
  if (r.get_bool() != eng.use_combiner) {
    mismatch("engine combiner setting differs");
  }
  if (r.get_bool() != options.run.use_combiner) {
    mismatch("runtime combiner setting differs");
  }
  const std::uint64_t epoch = r.get_u64();
  const bool converge_called = r.get_bool();
  r.close();

  graph::DynamicGraph dyn = persist::GraphCodec::read(r);

  // The constructor builds a fresh runner over the restored graph (its
  // init superstep has not run); restore_state then overwrites the
  // runner's entire execution state with the saved one.
  std::unique_ptr<DvStreamSession> s(
      new DvStreamSession(cp, std::move(dyn), std::move(options)));
  s->runner_->restore_state(r);
  r.finish();
  s->epoch_ = static_cast<std::size_t>(epoch);
  s->converge_called_ = converge_called;
  return s;
}

std::unique_ptr<DvStreamSession> make_stream_session(
    const CompiledProgram& cp, graph::CsrGraph base, SessionOptions options) {
  return std::make_unique<DvStreamSession>(cp, std::move(base),
                                           std::move(options));
}

}  // namespace deltav::dv::streaming
