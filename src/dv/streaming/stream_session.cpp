#include "dv/streaming/stream_session.h"

#include <utility>

#include "common/check.h"

namespace deltav::dv::streaming {

DvStreamSession::DvStreamSession(const CompiledProgram& cp,
                                 graph::CsrGraph base, SessionOptions options)
    : cp_(&cp), options_(std::move(options)), dyn_(std::move(base)) {
  runner_ = std::make_unique<DvRunner>(*cp_, graph::GraphView(dyn_),
                                       options_.run);
}

DvStreamSession::~DvStreamSession() = default;

DvRunResult DvStreamSession::converge() {
  DV_CHECK_MSG(!converged_, "converge() already ran; use apply()");
  converged_ = true;
  return runner_->converge();
}

SessionEpoch DvStreamSession::apply(const graph::MutationBatch& batch) {
  DV_CHECK_MSG(converged_, "apply() before converge()");
  SessionEpoch ep;
  ep.epoch = ++epoch_;

  const graph::GraphDelta delta = dyn_.plan(batch);
  if (delta.empty()) {
    // Nothing net-changed (all ops redundant): state is already converged.
    ep.warm = true;
    return ep;
  }

  ep.blocker = options_.force_cold
                   ? "cold rebuild forced by SessionOptions::force_cold"
                   : DvRunner::warm_blocker(*cp_, delta);
  if (ep.blocker == nullptr) {
    ep.warm = true;
    ep.stats = runner_->apply_epoch(dyn_, delta);
  } else {
    dyn_.commit(delta);
    runner_ = std::make_unique<DvRunner>(*cp_, graph::GraphView(dyn_),
                                         options_.run);
    const DvRunResult r = runner_->converge();
    ep.stats.supersteps = r.supersteps;
    ep.stats.messages = r.stats.total_messages_sent();
    ep.stats.woken = r.num_vertices;  // a cold run wakes everyone
  }

  if (dyn_.overlay_fraction() > options_.compact_threshold) {
    // The runner's GraphView targets dyn_ itself, so reads stay valid —
    // compaction only moves adjacency from the overlay into the base CSR.
    dyn_.compact();
    ep.compacted = true;
  }
  return ep;
}

DvRunResult DvStreamSession::result() const { return runner_->result(); }

}  // namespace deltav::dv::streaming
