// Plain-text mutation-stream reading and writing.
//
// A stream is a sequence of batches; each batch is applied atomically
// between ΔV epochs (see stream_session.h). Format, one operation per
// line:
//
//   + u v [w]     insert edge u→v (weight w, default 1; last-write-wins
//                 when the edge exists — see graph/dynamic_graph.h)
//   - u v         delete edge u→v (no-op when absent)
//   addv n        append n fresh (isolated) vertices at the id tail
//   delv v        detach vertex v (drop all incident arcs, keep the id)
//   commit        end of batch
//
// A blank line also ends the current batch; lines starting with '#' or
// '%' are comments (matching graph/edge_list_io.h). Trailing operations
// after the last separator form a final batch.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/dynamic_graph.h"

namespace deltav::dv::streaming {

/// Reads a mutation stream. Throws CheckError with a line number on
/// malformed input. Empty batches (e.g. consecutive separators) are
/// dropped.
std::vector<graph::MutationBatch> read_mutation_stream(std::istream& in);

/// Reads a mutation stream from a file path.
std::vector<graph::MutationBatch> read_mutation_stream_file(
    const std::string& path);

/// Writes the stream back out in the format above, one `commit` per batch.
void write_mutation_stream(const std::vector<graph::MutationBatch>& batches,
                           std::ostream& out);

}  // namespace deltav::dv::streaming
