// Plain-text mutation-stream reading and writing.
//
// A stream is a sequence of batches; each batch is applied atomically
// between ΔV epochs (see stream_session.h). Format, one operation per
// line:
//
//   + u v [w]     insert edge u→v (weight w, default 1; last-write-wins
//                 when the edge exists — see graph/dynamic_graph.h)
//   - u v         delete edge u→v (no-op when absent)
//   addv n        append n fresh (isolated) vertices at the id tail
//   delv v        detach vertex v (drop all incident arcs, keep the id)
//   commit        end of batch
//
// A blank line also ends the current batch; lines starting with '#' or
// '%' are comments (matching graph/edge_list_io.h). Trailing operations
// after the last separator form a final batch.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/dynamic_graph.h"

namespace deltav::dv::streaming {

/// Reads a mutation stream. Throws CheckError with a line number on
/// malformed input. Empty batches (e.g. consecutive separators) are
/// dropped.
std::vector<graph::MutationBatch> read_mutation_stream(std::istream& in);

/// Incremental single-batch parser: feed one line at a time until the
/// batch commits. This is the protocol-client surface (dv/serve): a `MUT`
/// request streams exactly one batch, so — unlike the file format above,
/// where a blank line separates batches — blank lines and `#`/`%` comments
/// are skipped as annotations. Fixture files and protocol scripts can
/// therefore comment their streams freely.
class BatchLineParser {
 public:
  /// Feeds one line (without its trailing newline). Returns true when the
  /// line was `commit` — the batch is complete; take() it. Throws
  /// CheckError naming the 1-based fed-line number on malformed input.
  bool feed(const std::string& line);

  const graph::MutationBatch& batch() const { return batch_; }
  /// Hands the accumulated batch over and resets for the next one.
  graph::MutationBatch take();
  /// Lines fed so far (including skipped comments/blanks).
  std::size_t lines_fed() const { return lineno_; }

 private:
  graph::MutationBatch batch_;
  std::size_t lineno_ = 0;
};

/// Reads a mutation stream from a file path.
std::vector<graph::MutationBatch> read_mutation_stream_file(
    const std::string& path);

/// Writes the stream back out in the format above, one `commit` per batch.
void write_mutation_stream(const std::vector<graph::MutationBatch>& batches,
                           std::ostream& out);

}  // namespace deltav::dv::streaming
