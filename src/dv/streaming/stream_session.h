// Streaming epochs: a ΔV program kept converged across graph mutations.
//
// A session owns a DynamicGraph (the delta-overlay, graph/dynamic_graph.h)
// and a DvRunner whose EvalContexts view it. Epoch 0 is an ordinary cold
// run to convergence. Every later epoch applies one MutationBatch:
//
//   plan      DynamicGraph::plan resolves the batch into its net per-arc
//             effect (GraphDelta) without touching the graph;
//   gate      DvRunner::warm_blocker decides whether the memoized state
//             can be patched incrementally for this (program, delta)
//             pair — min/max cannot retract removals, graphSize reads
//             pin |V|, and so on;
//   warm      DvRunner::apply_epoch synthesizes retraction/injection
//             Δ-messages for every affected aggregation site, folds them
//             into the receivers' accumulators, wakes only the mutation
//             frontier, and re-converges;
//   cold      otherwise the delta is committed and a fresh runner re-runs
//             the program from scratch over the same DynamicGraph — the
//             semantics-preserving fallback, also the baseline that
//             bench/bench_stream.cpp compares against;
//   compact   once the overlay covers more than compact_threshold of the
//             vertices, the overlay is folded into a fresh base CSR.
//
// Either way the session's state after epoch k is value-identical to a
// from-scratch run on the mutated graph (the stream fuzz tier checks this
// per batch against materialize()).
#pragma once

#include <cstddef>
#include <memory>

#include "dv/runtime/runner.h"
#include "graph/dynamic_graph.h"

namespace deltav::dv::streaming {

struct SessionOptions {
  DvRunOptions run;
  /// Compact the overlay back into a base CSR when overlay_fraction()
  /// exceeds this after a batch. <= 0 compacts every batch; >= 1 never.
  double compact_threshold = 0.25;
  /// Always rebuild cold (baseline mode for benchmarks and the
  /// differential oracle).
  bool force_cold = false;
};

/// What one apply() did and cost.
struct SessionEpoch {
  std::size_t epoch = 0;        // 1-based; epoch 0 is converge()
  bool warm = false;            // patched incrementally vs rebuilt cold
  const char* blocker = nullptr;  // why cold (static string); null if warm
  bool compacted = false;
  EpochStats stats;             // cold epochs report the full re-run cost
};

class DvStreamSession {
 public:
  /// The compiled program must outlive the session.
  DvStreamSession(const CompiledProgram& cp, graph::CsrGraph base,
                  SessionOptions options = {});
  ~DvStreamSession();

  // The runner's EvalContexts hold a GraphView into dyn_, so the session
  // is pinned in place. Construct in situ (optional::emplace, unique_ptr).
  DvStreamSession(DvStreamSession&&) = delete;
  DvStreamSession& operator=(DvStreamSession&&) = delete;

  /// Epoch 0: cold run to convergence. Must be called once, first.
  DvRunResult converge();

  /// Applies one batch and re-converges (warm when possible).
  SessionEpoch apply(const graph::MutationBatch& batch);

  /// Current converged vertex state.
  DvRunResult result() const;

  const graph::DynamicGraph& graph() const { return dyn_; }
  std::size_t epoch() const { return epoch_; }

 private:
  const CompiledProgram* cp_;  // never null
  SessionOptions options_;
  graph::DynamicGraph dyn_;
  std::unique_ptr<DvRunner> runner_;
  std::size_t epoch_ = 0;
  bool converged_ = false;
};

}  // namespace deltav::dv::streaming
