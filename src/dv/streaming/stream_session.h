// Streaming epochs: a ΔV program kept converged across graph mutations.
//
// A session owns a DynamicGraph (the delta-overlay, graph/dynamic_graph.h)
// and a DvRunner whose EvalContexts view it. Epoch 0 is an ordinary cold
// run to convergence. Every later epoch applies one MutationBatch:
//
//   plan      DynamicGraph::plan resolves the batch into its net per-arc
//             effect (GraphDelta) without touching the graph;
//   gate      DvRunner::warm_blocker decides whether the memoized state
//             can be patched incrementally for this (program, delta)
//             pair — min/max cannot retract removals, graphSize reads
//             pin |V|, and so on;
//   warm      DvRunner::apply_epoch synthesizes retraction/injection
//             Δ-messages for every affected aggregation site, folds them
//             into the receivers' accumulators, wakes only the mutation
//             frontier, and re-converges;
//   cold      otherwise the delta is committed and a fresh runner re-runs
//             the program from scratch over the same DynamicGraph — the
//             semantics-preserving fallback, also the baseline that
//             bench/bench_stream.cpp compares against;
//   compact   once the overlay covers more than compact_threshold of the
//             vertices, the overlay is folded into a fresh base CSR.
//
// Either way the session's state after epoch k is value-identical to a
// from-scratch run on the mutated graph (the stream fuzz tier checks this
// per batch against materialize()).
//
// Persistence (dv/persist/): save()/save_bytes() serialize the complete
// session — graph base + overlay verbatim, every vertex-state row
// (aggAccum, nnAcc/aggNulls, last-sent memos), the engine's halt bits,
// work queues and pending messages, the runner's statement/iteration
// cursor, and the epoch counter — into a checksummed snapshot. restore()
// rebuilds a session that is bit-exact with one that never stopped: same
// values, same subsequent warm/cold and compaction decisions, same
// superstep and message counts. A snapshot taken mid-convergence (see
// SessionOptions::checkpoint_every) restores to a session whose
// converge() resumes the interrupted run. Torn or corrupted snapshots
// always fail restore with a persist::SnapshotError carrying the reason;
// callers fall back to a cold rebuild.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dv/runtime/runner.h"
#include "graph/dynamic_graph.h"

namespace deltav::dv::streaming {

struct SessionOptions {
  DvRunOptions run;
  /// Compact the overlay back into a base CSR when overlay_fraction()
  /// exceeds this after a batch. <= 0 compacts every batch; >= 1 never.
  double compact_threshold = 0.25;
  /// Always rebuild cold (baseline mode for benchmarks and the
  /// differential oracle).
  bool force_cold = false;
  /// Retraction-memo capacity (DESIGN.md §11), copied into
  /// run.minmax_memo_k: every memo-eligible min/max site keeps the k best
  /// tagged contributions per vertex, so deletion-bearing epochs stay
  /// warm (O(k) retraction; targeted in-neighbor refold on underflow).
  /// 0 restores the legacy behavior — min/max deltas with removals
  /// rebuild cold. Snapshots record k; restore refuses a mismatch.
  std::size_t minmax_memo_k = 8;

  /// Checkpoint the whole session during convergence, every K supersteps
  /// (0 = off). Fires for epoch-0 converge() and for cold-epoch rebuilds
  /// — the long-running phases worth interrupting; warm epochs are short
  /// by construction and never fire.
  std::size_t checkpoint_every = 0;
  /// Each firing writes the session here, atomically (tmp + rename)...
  std::string checkpoint_path;
  /// ...or hands the serialized bytes to this callback instead when set
  /// (tests and the fuzz harness collect kill-points this way).
  std::function<void(const std::vector<std::uint8_t>&)> checkpoint_sink;
};

/// What one apply() did and cost.
struct SessionEpoch {
  std::size_t epoch = 0;        // 1-based; epoch 0 is converge()
  bool warm = false;            // patched incrementally vs rebuilt cold
  const char* blocker = nullptr;  // why cold (static string); null if warm
  bool compacted = false;
  EpochStats stats;             // cold epochs report the full re-run cost
};

class DvStreamSession {
 public:
  /// The compiled program must outlive the session.
  DvStreamSession(const CompiledProgram& cp, graph::CsrGraph base,
                  SessionOptions options = {});
  ~DvStreamSession();

  // The runner's EvalContexts hold a GraphView into dyn_, so the session
  // is pinned in place. Use make_stream_session() for a movable handle.
  DvStreamSession(DvStreamSession&&) = delete;
  DvStreamSession& operator=(DvStreamSession&&) = delete;

  /// Epoch 0: cold run to convergence. Must be called once, first — or
  /// again after restoring a mid-convergence snapshot, where it resumes
  /// the interrupted run (and replays the interrupted epoch's pending
  /// compaction check, keeping later compaction decisions on the
  /// uninterrupted session's trajectory).
  DvRunResult converge();

  /// Applies one batch and re-converges (warm when possible).
  SessionEpoch apply(const graph::MutationBatch& batch);

  /// Current converged vertex state.
  DvRunResult result() const;

  const graph::DynamicGraph& graph() const { return dyn_; }
  std::size_t epoch() const { return epoch_; }
  /// False while convergence is pending: on a fresh session before
  /// converge(), and after restoring a mid-convergence snapshot (call
  /// converge() to resume).
  bool converged() const;
  /// True when at least one aggregation site routes through the lock-free
  /// fold path under this session's run options (labels tool output).
  bool atomic_path() const;
  /// True when at least one min/max site routes through the retraction
  /// memo under this session's run options (labels tool output).
  bool memo_path() const;

  /// Serializes the complete session (see the file comment) to `path`,
  /// atomically. Call between supersteps only — always true outside the
  /// checkpoint hook.
  void save(const std::string& path) const;
  std::vector<std::uint8_t> save_bytes() const;

  /// Single-owner-thread contract. A session is not internally
  /// synchronized: converge()/apply()/result()/save() mutate or read the
  /// runner's memoized state and must all be issued from one thread — the
  /// engine spawns its own worker pool internally, but the *entry points*
  /// race if two client threads interleave them. dv/serve makes this
  /// contract load-bearing: each served session is driven by exactly one
  /// engine thread, and reads go through a published state view instead.
  /// In debug builds (!NDEBUG) the first guarded entry point binds the
  /// calling thread as the owner and every later call DV_CHECKs it came
  /// from the same thread. Release builds compile the check away.
  /// Transferring a session between threads is legal only through an
  /// explicit rebind: call this from the *new* owner before its first
  /// entry point (it must happen-after the old owner's last call).
  void rebind_owner_thread();

  /// Rebuilds a session from a snapshot. `cp` and `options` must match
  /// the saving session's program and engine configuration (worker count,
  /// partition, schedule, combiner) — the snapshot records both and
  /// restore refuses a mismatch, since bit-exact continuation is only
  /// defined under the determinism contract's fixed configuration. The
  /// execution tier may differ (tiers are bit-identical by contract).
  /// Throws persist::SnapshotError on any damage or mismatch; never
  /// restores silently wrong state.
  static std::unique_ptr<DvStreamSession> restore(const CompiledProgram& cp,
                                                  const std::string& path,
                                                  SessionOptions options = {});
  static std::unique_ptr<DvStreamSession> restore_bytes(
      const CompiledProgram& cp, std::vector<std::uint8_t> bytes,
      SessionOptions options = {});

 private:
  DvStreamSession(const CompiledProgram& cp, graph::DynamicGraph dyn,
                  SessionOptions options);

  void init_runner();
  persist::SnapshotWriter build_snapshot() const;
  void write_checkpoint();
  /// Debug-build owner-thread check (see rebind_owner_thread). Binds on
  /// first call; fails loudly on a call from a second thread.
  void check_owner() const;

  const CompiledProgram* cp_;  // never null
  SessionOptions options_;
  graph::DynamicGraph dyn_;
  std::unique_ptr<DvRunner> runner_;
  std::size_t epoch_ = 0;
  bool converge_called_ = false;
  /// Owner thread for the debug affinity guard; default-constructed id
  /// means "not yet bound".
  mutable std::atomic<std::thread::id> owner_{};
};

/// Builds a session on the heap: the class itself is pinned (the runner
/// holds a GraphView into the session's own DynamicGraph), so this is the
/// way to get a movable handle without optional::emplace gymnastics.
std::unique_ptr<DvStreamSession> make_stream_session(
    const CompiledProgram& cp, graph::CsrGraph base,
    SessionOptions options = {});

}  // namespace deltav::dv::streaming
