// Snapshot (de)serialization of graph storage.
//
// The DynamicGraph is serialized as base CSR + overlay *verbatim*, not as
// a materialized CSR: overlay_fraction() drives the session's compaction
// decisions, so a restored session must see the exact overlay shape the
// uninterrupted session had — materializing on save would silently change
// subsequent compact-vs-not choices (and adjacency iteration order feeds
// the engine's deterministic message order, so even a semantically equal
// re-encoding could perturb bit-exactness).
//
// GraphCodec lives in dv/persist (the graph layer cannot depend on dv/);
// CsrGraph and DynamicGraph befriend it for private-field access.
#pragma once

#include "dv/persist/snapshot.h"
#include "graph/dynamic_graph.h"

namespace deltav::dv::persist {

class GraphCodec {
 public:
  /// Writes the kSecGraph section.
  static void write(const graph::DynamicGraph& g, SnapshotWriter& w);
  /// Reads the kSecGraph section; throws SnapshotError on inconsistent
  /// structure (offset/target size mismatches, out-of-range slots).
  static graph::DynamicGraph read(SnapshotReader& r);

 private:
  static void write_csr(const graph::CsrGraph& g, SnapshotWriter& w);
  static graph::CsrGraph read_csr(SnapshotReader& r);
};

}  // namespace deltav::dv::persist
