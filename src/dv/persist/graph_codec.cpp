#include "dv/persist/graph_codec.h"

namespace deltav::dv::persist {

namespace {

void put_nested_u32(SnapshotWriter& w,
                    const std::vector<std::vector<graph::VertexId>>& vv) {
  w.put_u64(vv.size());
  for (const auto& v : vv) w.put_u32_vec(v);
}

void put_nested_f64(SnapshotWriter& w,
                    const std::vector<std::vector<double>>& vv) {
  w.put_u64(vv.size());
  for (const auto& v : vv) w.put_f64_vec(v);
}

std::vector<std::vector<graph::VertexId>> get_nested_u32(SnapshotReader& r) {
  const std::uint64_t n = r.get_u64();
  std::vector<std::vector<graph::VertexId>> vv;
  vv.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) vv.push_back(r.get_u32_vec());
  return vv;
}

std::vector<std::vector<double>> get_nested_f64(SnapshotReader& r) {
  const std::uint64_t n = r.get_u64();
  std::vector<std::vector<double>> vv;
  vv.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) vv.push_back(r.get_f64_vec());
  return vv;
}

void check(bool ok, const char* what) {
  if (!ok)
    throw SnapshotError(std::string("snapshot graph section is "
                                    "inconsistent: ") +
                        what);
}

}  // namespace

void GraphCodec::write_csr(const graph::CsrGraph& g, SnapshotWriter& w) {
  w.put_bool(g.directed_);
  w.put_u64_vec(g.out_offsets_);
  w.put_u32_vec(g.out_targets_);
  w.put_f64_vec(g.out_weights_);
  w.put_u64_vec(g.in_offsets_);
  w.put_u32_vec(g.in_targets_);
  w.put_f64_vec(g.in_weights_);
}

graph::CsrGraph GraphCodec::read_csr(SnapshotReader& r) {
  graph::CsrGraph g;
  g.directed_ = r.get_bool();
  g.out_offsets_ = r.get_u64_vec();
  g.out_targets_ = r.get_u32_vec();
  g.out_weights_ = r.get_f64_vec();
  g.in_offsets_ = r.get_u64_vec();
  g.in_targets_ = r.get_u32_vec();
  g.in_weights_ = r.get_f64_vec();

  const std::size_t n = g.num_vertices();
  check(g.out_offsets_.empty() ||
            (g.out_offsets_.front() == 0 &&
             g.out_offsets_.back() == g.out_targets_.size()),
        "out offsets do not cover the target array");
  check(g.out_weights_.empty() ||
            g.out_weights_.size() == g.out_targets_.size(),
        "out weights misaligned with targets");
  if (g.directed_) {
    check(g.in_offsets_.size() == g.out_offsets_.size() &&
              (g.in_offsets_.empty() ||
               g.in_offsets_.back() == g.in_targets_.size()),
          "in offsets do not cover the target array");
    check(g.in_weights_.empty() ||
              g.in_weights_.size() == g.in_targets_.size(),
          "in weights misaligned with targets");
  }
  for (const graph::VertexId t : g.out_targets_)
    check(t < n, "out target id out of range");
  for (const graph::VertexId t : g.in_targets_)
    check(t < n, "in target id out of range");
  return g;
}

void GraphCodec::write(const graph::DynamicGraph& g, SnapshotWriter& w) {
  w.begin_section(kSecGraph);
  write_csr(g.base_, w);
  w.put_u64(g.n_);
  w.put_u64(g.num_arcs_);
  w.put_i32_vec(g.out_slot_);
  w.put_i32_vec(g.in_slot_);
  put_nested_u32(w, g.out_targets_ov_);
  put_nested_f64(w, g.out_weights_ov_);
  put_nested_u32(w, g.in_targets_ov_);
  put_nested_f64(w, g.in_weights_ov_);
  w.end_section();
}

graph::DynamicGraph GraphCodec::read(SnapshotReader& r) {
  r.open(kSecGraph);
  graph::DynamicGraph g(read_csr(r));
  g.n_ = static_cast<std::size_t>(r.get_u64());
  g.num_arcs_ = r.get_u64();
  g.out_slot_ = r.get_i32_vec();
  g.in_slot_ = r.get_i32_vec();
  g.out_targets_ov_ = get_nested_u32(r);
  g.out_weights_ov_ = get_nested_f64(r);
  g.in_targets_ov_ = get_nested_u32(r);
  g.in_weights_ov_ = get_nested_f64(r);
  r.close();

  check(g.n_ >= g.base_.num_vertices(), "|V| shrank below the base CSR");
  check(g.out_slot_.size() == g.n_, "out slot table size mismatch");
  check(g.in_slot_.size() == (g.directed() ? g.n_ : 0),
        "in slot table size mismatch");
  check(g.out_weights_ov_.size() == g.out_targets_ov_.size() &&
            g.in_weights_ov_.size() == g.in_targets_ov_.size(),
        "overlay weight list count mismatch");
  const auto check_side =
      [&](const std::vector<std::int32_t>& slots,
          const std::vector<std::vector<graph::VertexId>>& targets,
          const std::vector<std::vector<double>>& weights) {
        for (const std::int32_t s : slots)
          check(s >= -1 && (s < 0 || static_cast<std::size_t>(s) <
                                         targets.size()),
                "overlay slot out of range");
        for (std::size_t i = 0; i < targets.size(); ++i) {
          check(!g.weighted() || weights[i].size() == targets[i].size(),
                "overlay weights misaligned with targets");
          for (const graph::VertexId t : targets[i])
            check(t < g.n_, "overlay target id out of range");
        }
      };
  check_side(g.out_slot_, g.out_targets_ov_, g.out_weights_ov_);
  check_side(g.in_slot_, g.in_targets_ov_, g.in_weights_ov_);
  return g;
}

}  // namespace deltav::dv::persist
