#include "dv/persist/snapshot.h"

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "common/timer.h"
#include "dv/obs/obs.h"

namespace deltav::dv::persist {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'D', 'V', 'S', 'N',
                                                'A', 'P', '0', '1'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

std::string tag_name(std::uint32_t tag) {
  std::string s;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    s += (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return s;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i)
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------- writer

SnapshotWriter::SnapshotWriter() {
  buf_.assign(kMagic.begin(), kMagic.end());
}

void SnapshotWriter::raw_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void SnapshotWriter::raw_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void SnapshotWriter::begin_section(std::uint32_t tag) {
  DV_CHECK_MSG(!in_section_ && !finished_, "begin_section misuse");
  section_start_ = buf_.size();
  raw_u32(tag);
  raw_u64(0);  // length, patched by end_section
  in_section_ = true;
}

void SnapshotWriter::end_section() {
  DV_CHECK_MSG(in_section_, "end_section without begin_section");
  const std::size_t payload_off = section_start_ + 12;
  const std::uint64_t len = buf_.size() - payload_off;
  for (int i = 0; i < 8; ++i)
    buf_[section_start_ + 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((len >> (8 * i)) & 0xff);
  const std::uint32_t crc =
      crc32(buf_.data() + section_start_, buf_.size() - section_start_);
  raw_u32(crc);
  in_section_ = false;
}

void SnapshotWriter::put_u8(std::uint8_t v) {
  DV_CHECK_MSG(in_section_, "put outside a section");
  buf_.push_back(v);
}

void SnapshotWriter::put_u32(std::uint32_t v) {
  DV_CHECK_MSG(in_section_, "put outside a section");
  raw_u32(v);
}

void SnapshotWriter::put_u64(std::uint64_t v) {
  DV_CHECK_MSG(in_section_, "put outside a section");
  raw_u64(v);
}

void SnapshotWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void SnapshotWriter::put_value(const Value& v) {
  put_u8(static_cast<std::uint8_t>(v.type));
  // The union's widest member: bools/ints round-trip through it exactly,
  // and float payloads keep their bit pattern (NaNs, -0.0).
  switch (v.type) {
    case Type::kBool: put_u64(v.b ? 1 : 0); break;
    case Type::kFloat: put_u64(std::bit_cast<std::uint64_t>(v.f)); break;
    default: put_u64(static_cast<std::uint64_t>(v.i)); break;
  }
}

void SnapshotWriter::put_string(const std::string& s) {
  put_u64(s.size());
  DV_CHECK_MSG(in_section_, "put outside a section");
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void SnapshotWriter::put_u8_vec(const std::vector<std::uint8_t>& v) {
  put_u64(v.size());
  DV_CHECK_MSG(in_section_, "put outside a section");
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void SnapshotWriter::put_u32_vec(const std::vector<std::uint32_t>& v) {
  put_u64(v.size());
  for (const std::uint32_t x : v) raw_u32(x);
}

void SnapshotWriter::put_u64_vec(const std::vector<std::uint64_t>& v) {
  put_u64(v.size());
  for (const std::uint64_t x : v) raw_u64(x);
}

void SnapshotWriter::put_i32_vec(const std::vector<std::int32_t>& v) {
  put_u64(v.size());
  for (const std::int32_t x : v) raw_u32(static_cast<std::uint32_t>(x));
}

void SnapshotWriter::put_f64_vec(const std::vector<double>& v) {
  put_u64(v.size());
  for (const double x : v) raw_u64(std::bit_cast<std::uint64_t>(x));
}

void SnapshotWriter::finish() {
  DV_CHECK_MSG(!in_section_ && !finished_, "finish misuse");
  obs::Collector* const col = obs::current();
  deltav::Timer crc_timer;
  const std::uint64_t body = buf_.size();
  const std::uint32_t file_crc = crc32(buf_.data(), buf_.size());
  begin_section(kSecEnd);
  put_u64(body);
  put_u32(file_crc);
  end_section();
  finished_ = true;
  if (col) {
    col->metrics.observe("persist.crc_seconds",
                         crc_timer.elapsed_seconds());
    col->metrics.shard(0).add(obs::Counter::kSnapshotBytesWritten,
                              buf_.size());
  }
}

void SnapshotWriter::write_file(const std::string& path) const {
  DV_CHECK_MSG(finished_, "write_file before finish()");
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f)
    throw SnapshotError("cannot open '" + tmp +
                        "' for writing: " + std::strerror(errno));
  const std::size_t n = std::fwrite(buf_.data(), 1, buf_.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (n != buf_.size() || !flushed) {
    std::remove(tmp.c_str());
    throw SnapshotError("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot rename '" + tmp + "' to '" + path +
                        "': " + std::strerror(errno));
  }
}

// ---------------------------------------------------------------- reader

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> bytes)
    : buf_(std::move(bytes)) {
  obs::Collector* const col = obs::current();
  deltav::Timer crc_timer;
  if (buf_.size() < kMagic.size() ||
      !std::equal(kMagic.begin(), kMagic.end(), buf_.begin()))
    throw SnapshotError("not a DVSNAP01 snapshot (bad magic)");

  // Walk and verify every frame; the end marker must be the final frame
  // and must account for every byte before it.
  std::size_t off = kMagic.size();
  bool saw_end = false;
  while (off < buf_.size()) {
    if (saw_end)
      throw SnapshotError("trailing bytes after the end section");
    if (buf_.size() - off < 16)
      throw SnapshotError("truncated snapshot: section header cut short");
    std::uint32_t tag = 0;
    for (int i = 0; i < 4; ++i)
      tag |= static_cast<std::uint32_t>(buf_[off + static_cast<std::size_t>(i)])
             << (8 * i);
    std::uint64_t len = 0;
    for (int i = 0; i < 8; ++i)
      len |= static_cast<std::uint64_t>(
                 buf_[off + 4 + static_cast<std::size_t>(i)])
             << (8 * i);
    if (len > buf_.size() - off - 16)
      throw SnapshotError("truncated snapshot: section '" + tag_name(tag) +
                          "' payload cut short");
    const std::size_t payload_off = off + 12;
    const std::size_t frame_len = 12 + static_cast<std::size_t>(len);
    const std::uint32_t want = crc32(buf_.data() + off, frame_len);
    std::uint32_t got = 0;
    for (int i = 0; i < 4; ++i)
      got |= static_cast<std::uint32_t>(
                 buf_[off + frame_len + static_cast<std::size_t>(i)])
             << (8 * i);
    if (want != got)
      throw SnapshotError("corrupted snapshot: CRC mismatch in section '" +
                          tag_name(tag) + "'");
    if (tag == kSecEnd) {
      if (len != 12)
        throw SnapshotError("corrupted snapshot: malformed end section");
      std::uint64_t body = 0;
      for (int i = 0; i < 8; ++i)
        body |= static_cast<std::uint64_t>(
                    buf_[payload_off + static_cast<std::size_t>(i)])
                << (8 * i);
      std::uint32_t file_crc = 0;
      for (int i = 0; i < 4; ++i)
        file_crc |= static_cast<std::uint32_t>(
                        buf_[payload_off + 8 + static_cast<std::size_t>(i)])
                    << (8 * i);
      if (body != off)
        throw SnapshotError("corrupted snapshot: end section size mismatch");
      if (crc32(buf_.data(), off) != file_crc)
        throw SnapshotError("corrupted snapshot: file CRC mismatch");
      saw_end = true;
    } else {
      sections_.push_back(
          Section{tag, payload_off, static_cast<std::size_t>(len)});
    }
    off += frame_len + 4;
  }
  if (!saw_end)
    throw SnapshotError("truncated snapshot: end section missing");
  if (col) {
    // The frame walk above is dominated by CRC verification.
    col->metrics.observe("persist.crc_seconds",
                         crc_timer.elapsed_seconds());
    col->metrics.shard(0).add(obs::Counter::kSnapshotBytesRead,
                              buf_.size());
  }
}

SnapshotReader SnapshotReader::from_file(const std::string& path) {
  return SnapshotReader(read_file_bytes(path));
}

void SnapshotReader::open(std::uint32_t tag) {
  DV_CHECK_MSG(!in_section_, "open() with a section already open");
  if (next_section_ >= sections_.size())
    throw SnapshotError("snapshot is missing section '" + tag_name(tag) +
                        "'");
  const Section& s = sections_[next_section_];
  if (s.tag != tag)
    throw SnapshotError("snapshot section order mismatch: expected '" +
                        tag_name(tag) + "', found '" + tag_name(s.tag) +
                        "' (incompatible snapshot version?)");
  cur_ = s.payload_off;
  cur_end_ = s.payload_off + s.payload_len;
  in_section_ = true;
}

void SnapshotReader::close() {
  DV_CHECK_MSG(in_section_, "close() without open()");
  if (cur_ != cur_end_)
    throw SnapshotError(
        "snapshot section '" + tag_name(sections_[next_section_].tag) +
        "' has trailing bytes (incompatible snapshot version?)");
  ++next_section_;
  in_section_ = false;
}

void SnapshotReader::need(std::size_t n) const {
  DV_CHECK_MSG(in_section_, "get outside a section");
  if (cur_end_ - cur_ < n)
    throw SnapshotError(
        "snapshot section '" + tag_name(sections_[next_section_].tag) +
        "' ends mid-field (incompatible snapshot version?)");
}

std::uint8_t SnapshotReader::get_u8() {
  need(1);
  return buf_[cur_++];
}

std::uint32_t SnapshotReader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(buf_[cur_++]) << (8 * i);
  return v;
}

std::uint64_t SnapshotReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(buf_[cur_++]) << (8 * i);
  return v;
}

double SnapshotReader::get_f64() {
  return std::bit_cast<double>(get_u64());
}

Value SnapshotReader::get_value() {
  const std::uint8_t t = get_u8();
  const std::uint64_t bits = get_u64();
  switch (t) {
    case static_cast<std::uint8_t>(Type::kInt):
      return Value::of_int(static_cast<std::int64_t>(bits));
    case static_cast<std::uint8_t>(Type::kFloat):
      return Value::of_float(std::bit_cast<double>(bits));
    case static_cast<std::uint8_t>(Type::kBool):
      return Value::of_bool(bits != 0);
    default:
      throw SnapshotError("snapshot value has unknown type tag " +
                          std::to_string(t));
  }
}

std::string SnapshotReader::get_string() {
  const std::uint64_t n = get_u64();
  need(static_cast<std::size_t>(n));
  std::string s(reinterpret_cast<const char*>(buf_.data() + cur_),
                static_cast<std::size_t>(n));
  cur_ += static_cast<std::size_t>(n);
  return s;
}

std::size_t SnapshotReader::vec_len(std::size_t elem_bytes) {
  // Element count sanity before any allocation: a count that cannot fit in
  // the remaining payload (e.g. from a snapshot of a different version)
  // must throw rather than wrap the byte math or trigger a huge resize.
  const std::uint64_t n = get_u64();
  const std::size_t remaining = cur_end_ - cur_;
  if (n > remaining / elem_bytes)
    throw SnapshotError(
        "snapshot section '" + tag_name(sections_[next_section_].tag) +
        "' declares an oversized vector (incompatible snapshot version?)");
  return static_cast<std::size_t>(n);
}

std::vector<std::uint8_t> SnapshotReader::get_u8_vec() {
  const std::size_t n = vec_len(1);
  std::vector<std::uint8_t> v(buf_.begin() + static_cast<std::ptrdiff_t>(cur_),
                              buf_.begin() +
                                  static_cast<std::ptrdiff_t>(cur_ + n));
  cur_ += n;
  return v;
}

std::vector<std::uint32_t> SnapshotReader::get_u32_vec() {
  std::vector<std::uint32_t> v(vec_len(4));
  for (auto& x : v) x = get_u32();
  return v;
}

std::vector<std::uint64_t> SnapshotReader::get_u64_vec() {
  std::vector<std::uint64_t> v(vec_len(8));
  for (auto& x : v) x = get_u64();
  return v;
}

std::vector<std::int32_t> SnapshotReader::get_i32_vec() {
  std::vector<std::int32_t> v(vec_len(4));
  for (auto& x : v) x = get_i32();
  return v;
}

std::vector<double> SnapshotReader::get_f64_vec() {
  std::vector<double> v(vec_len(8));
  for (auto& x : v) x = get_f64();
  return v;
}

void SnapshotReader::finish() const {
  DV_CHECK_MSG(!in_section_, "finish() with a section open");
  if (next_section_ != sections_.size())
    throw SnapshotError("snapshot has unread sections (incompatible "
                        "snapshot version?)");
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f)
    throw SnapshotError("cannot open snapshot '" + path +
                        "': " + std::strerror(errno));
  std::vector<std::uint8_t> buf;
  std::array<std::uint8_t, 1 << 16> chunk;
  std::size_t n;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0)
    buf.insert(buf.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(n));
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err)
    throw SnapshotError("read error on snapshot '" + path + "'");
  return buf;
}

}  // namespace deltav::dv::persist
