// Versioned, checksummed binary snapshot container for ΔV sessions.
//
// Layout: 8-byte magic "DVSNAP01", then a sequence of framed sections
//
//   [u32 tag][u64 payload_len][payload bytes][u32 crc32]
//
// where the CRC covers tag + length + payload, so a flipped byte anywhere
// in a frame — framing included — breaks its checksum. The final section
// has tag "END!" and carries [u64 bytes_before_end][u32 file_crc], a
// file-level CRC over everything before the end section: a truncated file
// either cuts a section short (its declared length overruns the buffer)
// or loses the end marker, and a flip that somehow survived a section CRC
// still breaks the file CRC. Restore therefore fails loudly on any torn
// or corrupted snapshot; it can never silently decode garbage.
//
// All integers are little-endian, written byte by byte; Values are
// serialized as a 1-byte type tag plus their 8-byte payload bit pattern —
// never as raw structs, whose padding bytes would make the checksum
// nondeterministic.
//
// SnapshotWriter buffers in memory (fault-injection tests corrupt the
// buffer directly) and write_file() lands atomically via tmp + rename, so
// a crash mid-write can tear the tmp file but never the target path.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "dv/runtime/value.h"

namespace deltav::dv::persist {

/// Any snapshot problem: framing/CRC damage, version or section mismatch,
/// or decoded state inconsistent with the restoring program/options. The
/// message is the operator-facing reason (DvStreamSession surfaces it when
/// falling back to a cold rebuild).
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected), seedable for incremental use.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed = 0);

/// Section tags of the session snapshot layout, in their fixed file order.
inline constexpr std::uint32_t kSecMeta = 0x4154454d;    // "META"
inline constexpr std::uint32_t kSecGraph = 0x48505247;   // "GRPH"
inline constexpr std::uint32_t kSecRunner = 0x534e5552;  // "RUNS"
inline constexpr std::uint32_t kSecEngine = 0x4e474e45;  // "ENGN"
inline constexpr std::uint32_t kSecRetract = 0x43525452;  // "RTRC"
inline constexpr std::uint32_t kSecEnd = 0x21444e45;     // "END!"

class SnapshotWriter {
 public:
  SnapshotWriter();

  void begin_section(std::uint32_t tag);
  void end_section();

  void put_u8(std::uint8_t v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  void put_value(const Value& v);
  void put_string(const std::string& s);

  void put_u8_vec(const std::vector<std::uint8_t>& v);
  void put_u32_vec(const std::vector<std::uint32_t>& v);
  void put_u64_vec(const std::vector<std::uint64_t>& v);
  void put_i32_vec(const std::vector<std::int32_t>& v);
  void put_f64_vec(const std::vector<double>& v);

  /// Writes the end section (size + file CRC). Call exactly once, after
  /// the last end_section(); the writer is sealed afterwards.
  void finish();

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take_bytes() && { return std::move(buf_); }

  /// Atomic file write: <path>.tmp, flush, rename. Requires finish().
  void write_file(const std::string& path) const;

 private:
  void raw_u32(std::uint32_t v);
  void raw_u64(std::uint64_t v);

  std::vector<std::uint8_t> buf_;
  std::size_t section_start_ = 0;  // offset of the open section's tag
  bool in_section_ = false;
  bool finished_ = false;
};

class SnapshotReader {
 public:
  /// Validates magic, section framing, every section CRC, the end marker
  /// and the file CRC up front; throws SnapshotError on any damage, so
  /// typed getters only ever run over verified bytes.
  explicit SnapshotReader(std::vector<std::uint8_t> bytes);

  static SnapshotReader from_file(const std::string& path);

  /// Opens the next section, which must carry `tag` (sections are read in
  /// the same fixed order they are written).
  void open(std::uint32_t tag);
  /// Ends the open section; throws if payload bytes were left unread
  /// (a length/content mismatch the CRC could not classify).
  void close();

  std::uint8_t get_u8();
  bool get_bool() { return get_u8() != 0; }
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  Value get_value();
  std::string get_string();

  std::vector<std::uint8_t> get_u8_vec();
  std::vector<std::uint32_t> get_u32_vec();
  std::vector<std::uint64_t> get_u64_vec();
  std::vector<std::int32_t> get_i32_vec();
  std::vector<double> get_f64_vec();

  /// Requires every section (besides the end marker) to have been read.
  void finish() const;

 private:
  struct Section {
    std::uint32_t tag;
    std::size_t payload_off;
    std::size_t payload_len;
  };

  void need(std::size_t n) const;  // bounds check within the open section
  std::size_t vec_len(std::size_t elem_bytes);

  std::vector<std::uint8_t> buf_;
  std::vector<Section> sections_;  // end marker excluded
  std::size_t next_section_ = 0;
  bool in_section_ = false;
  std::size_t cur_ = 0;  // read cursor (absolute offset)
  std::size_t cur_end_ = 0;
};

/// Reads a whole file; throws SnapshotError (with errno text) on failure.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

}  // namespace deltav::dv::persist
