#include "dv/persist/fault.h"

#include <cstdio>

namespace deltav::dv::persist {

std::vector<std::uint8_t> apply_fault(const std::vector<std::uint8_t>& bytes,
                                      const FaultPlan& plan) {
  std::vector<std::uint8_t> out = bytes;
  switch (plan.kind) {
    case FaultPlan::Kind::kNone:
      break;
    case FaultPlan::Kind::kTruncate:
      if (plan.offset < out.size()) out.resize(plan.offset);
      break;
    case FaultPlan::Kind::kFlip:
      if (!out.empty()) {
        const std::size_t at =
            plan.offset < out.size() ? plan.offset : out.size() - 1;
        out[at] ^= plan.xor_mask;
      }
      break;
  }
  return out;
}

std::string describe(const FaultPlan& plan) {
  switch (plan.kind) {
    case FaultPlan::Kind::kTruncate:
      return "truncate@" + std::to_string(plan.offset);
    case FaultPlan::Kind::kFlip: {
      char mask[8];
      std::snprintf(mask, sizeof(mask), "0x%02x", plan.xor_mask);
      return "flip@" + std::to_string(plan.offset) + "^" + mask;
    }
    case FaultPlan::Kind::kNone:
      break;
  }
  return "none";
}

}  // namespace deltav::dv::persist
