// Fault injection for snapshot durability testing.
//
// A FaultPlan describes one storage failure applied to a serialized
// snapshot: a kill-after-byte-N crash (everything past N is lost — the
// same observable damage as a torn write or a truncated file) or a byte
// flip (bit rot, a misdirected write). The persist fuzz tier sweeps plans
// over real session snapshots and requires SnapshotReader to reject every
// damaged buffer with a reported reason — restore must never silently
// decode a corrupted snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace deltav::dv::persist {

struct FaultPlan {
  enum class Kind {
    kNone,      // identity (control)
    kTruncate,  // keep only the first `offset` bytes (kill after byte N)
    kFlip,      // bytes[offset] ^= xor_mask
  };

  Kind kind = Kind::kNone;
  std::size_t offset = 0;
  std::uint8_t xor_mask = 0;  // kFlip only; must be non-zero to corrupt

  static FaultPlan truncate_at(std::size_t offset) {
    return FaultPlan{Kind::kTruncate, offset, 0};
  }
  static FaultPlan flip_byte(std::size_t offset, std::uint8_t mask = 0xff) {
    return FaultPlan{Kind::kFlip, offset, mask};
  }
};

/// Applies the fault to a copy of `bytes`. Offsets past the end make
/// truncation a no-op (the crash happened after the write completed) and
/// flips target the last byte.
std::vector<std::uint8_t> apply_fault(const std::vector<std::uint8_t>& bytes,
                                      const FaultPlan& plan);

/// "truncate@123" / "flip@45^0x80" — for fuzz failure reports.
std::string describe(const FaultPlan& plan);

}  // namespace deltav::dv::persist
