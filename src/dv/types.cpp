#include "dv/types.h"

namespace deltav::dv {

double agg_identity_double(AggOp op) {
  switch (op) {
    case AggOp::kSum: return 0.0;
    case AggOp::kProd: return 1.0;
    case AggOp::kMin: return std::numeric_limits<double>::infinity();
    case AggOp::kMax: return -std::numeric_limits<double>::infinity();
    default: DV_FAIL("no double identity for " << agg_op_name(op));
  }
}

std::int64_t agg_identity_int(AggOp op) {
  switch (op) {
    case AggOp::kSum: return 0;
    case AggOp::kProd: return 1;
    case AggOp::kMin: return std::numeric_limits<std::int64_t>::max();
    case AggOp::kMax: return std::numeric_limits<std::int64_t>::min();
    default: DV_FAIL("no int identity for " << agg_op_name(op));
  }
}

bool agg_identity_bool(AggOp op) {
  switch (op) {
    case AggOp::kAnd: return true;
    case AggOp::kOr: return false;
    default: DV_FAIL("no bool identity for " << agg_op_name(op));
  }
}

double agg_absorbing_double(AggOp op) {
  DV_CHECK(op == AggOp::kProd);
  return 0.0;
}

bool agg_absorbing_bool(AggOp op) {
  switch (op) {
    case AggOp::kAnd: return false;
    case AggOp::kOr: return true;
    default: DV_FAIL("no bool absorbing element for " << agg_op_name(op));
  }
}

bool agg_supports_type(AggOp op, Type t) {
  switch (op) {
    case AggOp::kSum:
    case AggOp::kProd:
    case AggOp::kMin:
    case AggOp::kMax:
      return t == Type::kInt || t == Type::kFloat;
    case AggOp::kAnd:
    case AggOp::kOr:
      return t == Type::kBool;
  }
  return false;
}

}  // namespace deltav::dv
