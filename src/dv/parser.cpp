#include "dv/parser.h"

#include <sstream>

namespace deltav::dv {

Parser::Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {
  DV_CHECK(!toks_.empty() && toks_.back().kind == Tok::kEof);
}

const Token& Parser::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < toks_.size() ? toks_[i] : toks_.back();
}

const Token& Parser::advance() {
  const Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(Tok kind, const char* context) {
  if (!check(kind)) {
    std::ostringstream os;
    os << "expected " << tok_name(kind) << " " << context << ", found "
       << tok_name(peek().kind);
    compile_error(peek().loc, os.str());
  }
  return advance();
}

Type Parser::parse_type() {
  if (match(Tok::kTypeInt)) return Type::kInt;
  if (match(Tok::kTypeBool)) return Type::kBool;
  if (match(Tok::kTypeFloat)) return Type::kFloat;
  compile_error(peek().loc, std::string("expected a type, found ") +
                                tok_name(peek().kind));
}

GraphDir Parser::parse_graph_dir(const char* context) {
  if (match(Tok::kHashIn)) return GraphDir::kIn;
  if (match(Tok::kHashOut)) return GraphDir::kOut;
  if (match(Tok::kHashNeighbors)) return GraphDir::kNeighbors;
  compile_error(peek().loc, std::string("expected #in/#out/#neighbors ") +
                                context);
}

Program Parser::parse_program() {
  Program prog;
  prog.loc = peek().loc;
  while (check(Tok::kParam)) {
    advance();
    Param p;
    p.name = expect(Tok::kIdent, "after 'param'").text;
    expect(Tok::kColon, "in param declaration");
    p.type = parse_type();
    expect(Tok::kSemi, "after param declaration");
    prog.params.push_back(std::move(p));
  }
  expect(Tok::kInit, "at start of program");
  expect(Tok::kLBrace, "after 'init'");
  prog.init = parse_seq();
  expect(Tok::kRBrace, "after init block");
  expect(Tok::kSemi, "after init block");
  prog.stmts.push_back(parse_stmt());
  while (match(Tok::kSemi)) {
    if (check(Tok::kEof)) break;  // trailing semicolon
    prog.stmts.push_back(parse_stmt());
  }
  expect(Tok::kEof, "after last statement");
  return prog;
}

ExprPtr Parser::parse_expression_only() {
  auto e = parse_seq();
  expect(Tok::kEof, "after expression");
  return e;
}

Stmt Parser::parse_stmt() {
  Stmt s;
  s.loc = peek().loc;
  if (match(Tok::kStep)) {
    s.kind = Stmt::Kind::kStep;
    expect(Tok::kLBrace, "after 'step'");
    s.body = parse_seq();
    expect(Tok::kRBrace, "after step body");
    return s;
  }
  if (match(Tok::kIter)) {
    s.kind = Stmt::Kind::kIter;
    s.iter_var = expect(Tok::kIdent, "after 'iter'").text;
    expect(Tok::kLBrace, "after iteration variable");
    s.body = parse_seq();
    expect(Tok::kRBrace, "after iter body");
    expect(Tok::kUntil, "after iter body");
    expect(Tok::kLBrace, "after 'until'");
    s.until = parse_seq();
    expect(Tok::kRBrace, "after until condition");
    return s;
  }
  compile_error(peek().loc, std::string("expected 'step' or 'iter', found ") +
                                tok_name(peek().kind));
}

ExprPtr Parser::parse_seq() {
  const Loc loc = peek().loc;
  std::vector<ExprPtr> items;
  items.push_back(parse_item());
  while (check(Tok::kSemi) &&
         peek(1).kind != Tok::kRBrace && peek(1).kind != Tok::kEof) {
    advance();  // ';'
    items.push_back(parse_item());
  }
  // Consume a trailing semicolon before '}' if present.
  if (check(Tok::kSemi) && peek(1).kind == Tok::kRBrace) advance();
  if (items.size() == 1) return std::move(items.front());
  auto e = mk_seq(std::move(items));
  e->loc = loc;
  return e;
}

ExprPtr Parser::parse_item() {
  const Loc loc = peek().loc;
  if (match(Tok::kLet)) {
    auto e = mk(ExprKind::kLet, loc);
    e->name = expect(Tok::kIdent, "after 'let'").text;
    expect(Tok::kColon, "in let binding");
    e->decl_type = parse_type();
    expect(Tok::kAssign, "in let binding");
    e->kids.push_back(parse_nonseq());
    expect(Tok::kIn, "after let value");
    e->kids.push_back(parse_seq());  // body extends to the block's end
    return e;
  }
  if (match(Tok::kLocal)) {
    auto e = mk(ExprKind::kLocalDecl, loc);
    e->name = expect(Tok::kIdent, "after 'local'").text;
    expect(Tok::kColon, "in local declaration");
    e->decl_type = parse_type();
    expect(Tok::kAssign, "in local declaration");
    e->kids.push_back(parse_nonseq());
    return e;
  }
  // Assignment: IDENT '=' ... (but not '==').
  if (check(Tok::kIdent) && peek(1).kind == Tok::kAssign) {
    auto e = mk(ExprKind::kAssign, loc);
    e->name = advance().text;
    advance();  // '='
    e->kids.push_back(parse_nonseq());
    return e;
  }
  return parse_nonseq();
}

ExprPtr Parser::parse_nonseq() {
  if (check(Tok::kIf)) {
    const Loc loc = peek().loc;
    advance();
    auto e = mk(ExprKind::kIf, loc);
    e->kids.push_back(parse_nonseq());
    expect(Tok::kThen, "in if-expression");
    e->kids.push_back(parse_item());
    if (match(Tok::kElse)) e->kids.push_back(parse_item());
    return e;
  }
  return parse_or();
}

bool Parser::at_aggregation_head() const {
  switch (peek().kind) {
    case Tok::kPlus:
    case Tok::kStar:
    case Tok::kMin:
    case Tok::kMax:
    case Tok::kOrOr:
    case Tok::kAndAnd:
      return peek(1).kind == Tok::kLBracket;
    default:
      return false;
  }
}

ExprPtr Parser::parse_or() {
  auto lhs = parse_and();
  while (check(Tok::kOrOr) && peek(1).kind != Tok::kLBracket) {
    const Loc loc = advance().loc;
    auto e = mk(ExprKind::kBinary, loc);
    e->bin_op = BinOp::kOr;
    e->kids.push_back(std::move(lhs));
    e->kids.push_back(parse_and());
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_and() {
  auto lhs = parse_cmp();
  while (check(Tok::kAndAnd) && peek(1).kind != Tok::kLBracket) {
    const Loc loc = advance().loc;
    auto e = mk(ExprKind::kBinary, loc);
    e->bin_op = BinOp::kAnd;
    e->kids.push_back(std::move(lhs));
    e->kids.push_back(parse_cmp());
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_cmp() {
  auto lhs = parse_add();
  BinOp op;
  switch (peek().kind) {
    case Tok::kLt: op = BinOp::kLt; break;
    case Tok::kGt: op = BinOp::kGt; break;
    case Tok::kGe: op = BinOp::kGe; break;
    case Tok::kLe: op = BinOp::kLe; break;
    case Tok::kEqEq: op = BinOp::kEq; break;
    case Tok::kNe: op = BinOp::kNe; break;
    default: return lhs;
  }
  const Loc loc = advance().loc;
  auto e = mk(ExprKind::kBinary, loc);
  e->bin_op = op;
  e->kids.push_back(std::move(lhs));
  e->kids.push_back(parse_add());
  return e;
}

ExprPtr Parser::parse_add() {
  auto lhs = parse_mul();
  while ((check(Tok::kPlus) || check(Tok::kMinus)) &&
         peek(1).kind != Tok::kLBracket) {
    const BinOp op = check(Tok::kPlus) ? BinOp::kAdd : BinOp::kSub;
    const Loc loc = advance().loc;
    auto e = mk(ExprKind::kBinary, loc);
    e->bin_op = op;
    e->kids.push_back(std::move(lhs));
    e->kids.push_back(parse_mul());
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_mul() {
  auto lhs = parse_unary();
  while ((check(Tok::kStar) || check(Tok::kSlash)) &&
         peek(1).kind != Tok::kLBracket) {
    const BinOp op = check(Tok::kStar) ? BinOp::kMul : BinOp::kDiv;
    const Loc loc = advance().loc;
    auto e = mk(ExprKind::kBinary, loc);
    e->bin_op = op;
    e->kids.push_back(std::move(lhs));
    e->kids.push_back(parse_unary());
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_unary() {
  if (check(Tok::kMinus) && peek(1).kind != Tok::kLBracket) {
    const Loc loc = advance().loc;
    auto e = mk(ExprKind::kUnary, loc);
    e->un_op = UnOp::kNeg;
    e->kids.push_back(parse_unary());
    return e;
  }
  if (check(Tok::kNot)) {
    const Loc loc = advance().loc;
    auto e = mk(ExprKind::kUnary, loc);
    e->un_op = UnOp::kNot;
    e->kids.push_back(parse_unary());
    return e;
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  auto e = parse_primary();
  if (check(Tok::kDot)) {
    // u.a — only valid when e names the innermost aggregation binder.
    if (e->kind == ExprKind::kVarRef && !agg_binders_.empty() &&
        e->name == agg_binders_.back()) {
      const Loc loc = advance().loc;
      const Token& field = advance();
      std::string field_name;
      if (field.kind == Tok::kIdent) {
        field_name = field.text;
      } else {
        compile_error(field.loc, "expected field name after '.'");
      }
      if (field_name == "edge") {
        auto w = mk(ExprKind::kEdgeWeight, loc);
        return w;
      }
      auto nf = mk(ExprKind::kNeighborField, loc);
      nf->name = field_name;
      return nf;
    }
    compile_error(peek().loc,
                  "'.' field access is only valid on the aggregation "
                  "element variable");
  }
  return e;
}

ExprPtr Parser::parse_aggregation(AggOp op, Loc loc) {
  expect(Tok::kLBracket, "after aggregation operator");
  // Peek ahead to find the binder name so u.field parses inside the
  // element expression: scan for the '|' IDENT '<-' pattern is fragile;
  // instead we allow any identifier as binder and validate afterwards.
  // The binder is only known after '|', so we optimistically push a
  // placeholder matched by the most common convention would fail for other
  // names. Instead: find the matching '|' by scanning tokens.
  std::size_t scan = pos_;
  int bracket_depth = 1;
  std::string binder;
  while (scan < toks_.size()) {
    const Tok k = toks_[scan].kind;
    if (k == Tok::kLBracket) ++bracket_depth;
    if (k == Tok::kRBracket) {
      --bracket_depth;
      if (bracket_depth == 0) break;
    }
    if (k == Tok::kBar && bracket_depth == 1 &&
        scan + 1 < toks_.size() && toks_[scan + 1].kind == Tok::kIdent &&
        scan + 2 < toks_.size() && toks_[scan + 2].kind == Tok::kArrow) {
      binder = toks_[scan + 1].text;
      break;
    }
    ++scan;
  }
  if (binder.empty())
    compile_error(loc, "aggregation is missing '| u <- д' clause");

  agg_binders_.push_back(binder);
  auto e = mk(ExprKind::kAgg, loc);
  e->agg_op = op;
  e->kids.push_back(parse_nonseq());
  agg_binders_.pop_back();

  expect(Tok::kBar, "after aggregation element expression");
  const Token& b = expect(Tok::kIdent, "as aggregation element variable");
  DV_CHECK(b.text == binder);
  expect(Tok::kArrow, "in aggregation");
  e->dir = parse_graph_dir("in aggregation");
  expect(Tok::kRBracket, "to close aggregation");
  e->name = binder;
  return e;
}

ExprPtr Parser::parse_primary() {
  const Loc loc = peek().loc;

  if (at_aggregation_head()) {
    AggOp op;
    switch (peek().kind) {
      case Tok::kPlus: op = AggOp::kSum; break;
      case Tok::kStar: op = AggOp::kProd; break;
      case Tok::kMin: op = AggOp::kMin; break;
      case Tok::kMax: op = AggOp::kMax; break;
      case Tok::kOrOr: op = AggOp::kOr; break;
      case Tok::kAndAnd: op = AggOp::kAnd; break;
      default: DV_FAIL("unreachable aggregation head");
    }
    advance();
    return parse_aggregation(op, loc);
  }

  switch (peek().kind) {
    case Tok::kIntLit: {
      const Token& t = advance();
      return mk_int(t.int_val, loc);
    }
    case Tok::kFloatLit: {
      const Token& t = advance();
      return mk_float(t.float_val, loc);
    }
    case Tok::kTrue:
      advance();
      return mk_bool(true, loc);
    case Tok::kFalse:
      advance();
      return mk_bool(false, loc);
    case Tok::kInfty:
      advance();
      return mk(ExprKind::kInfty, loc);
    case Tok::kGraphSize:
      advance();
      return mk(ExprKind::kGraphSize, loc);
    case Tok::kVertexId:
      advance();
      return mk(ExprKind::kVertexIdRef, loc);
    case Tok::kStable:
      advance();
      return mk(ExprKind::kStableRef, loc);
    case Tok::kRemote: {
      advance();
      expect(Tok::kLParen, "after 'remote'");
      auto e = mk(ExprKind::kRemoteRead, loc);
      e->kids.push_back(parse_nonseq());
      expect(Tok::kRParen, "to close remote(...)");
      expect(Tok::kDot, "after remote(...)");
      e->name = expect(Tok::kIdent, "as remote field name").text;
      return e;
    }
    case Tok::kIdent: {
      auto e = mk(ExprKind::kVarRef, loc);
      e->name = advance().text;
      return e;
    }
    case Tok::kLParen: {
      advance();
      auto e = parse_seq();
      expect(Tok::kRParen, "to close parenthesized expression");
      return e;
    }
    case Tok::kBar: {
      advance();
      auto e = mk(ExprKind::kDegree, loc);
      e->dir = parse_graph_dir("inside |...| degree form");
      expect(Tok::kBar, "to close degree form");
      return e;
    }
    case Tok::kMin:
    case Tok::kMax: {
      const PairOp op =
          peek().kind == Tok::kMin ? PairOp::kMin : PairOp::kMax;
      advance();
      expect(Tok::kLParen, "after min/max");
      auto e = mk(ExprKind::kPairOp, loc);
      e->pair_op = op;
      e->kids.push_back(parse_nonseq());
      expect(Tok::kComma, "between min/max arguments");
      e->kids.push_back(parse_nonseq());
      expect(Tok::kRParen, "to close min/max");
      return e;
    }
    case Tok::kIf:
      return parse_nonseq();  // if-expressions in value position
    default:
      compile_error(loc, std::string("unexpected ") + tok_name(peek().kind) +
                             " in expression");
  }
}

}  // namespace deltav::dv
