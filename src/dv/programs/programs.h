// The ΔV sources for the paper's four benchmarks (§7) plus extra demo
// programs. Embedded as strings so binaries need no data files.
//
// Iteration counts are `param`s so tests can align them exactly with the
// hand-written Pregel+ baselines (whose Figure-1 convention performs
// `iterations − 1` rank updates over `iterations` supersteps).
#pragma once

namespace deltav::dv::programs {

/// PageRank over a directed graph — the paper's §5 listing, adapted to
/// directed pulls (#in) as run on Wikipedia/LiveJournal-DG. The recurrence
/// matches Figure 1 exactly (including the sum/graphSize quirk).
inline constexpr const char* kPageRank = R"(
param steps : int;
init {
  local vl : float = 1.0 / graphSize;
  local pr : float = vl / |#out|
};
iter i {
  -- sum neighbors' PageRanks
  let sum : float = + [ u.pr | u <- #in ] in
  -- calculate new value and new pagerank for neighbors to see next superstep
  vl = 0.15 + 0.85 * (sum / graphSize);
  pr = vl / |#out|
} until { i >= steps }
)";

/// PageRank over an undirected graph (the paper's verbatim §5 listing).
inline constexpr const char* kPageRankUndirected = R"(
param steps : int;
init {
  local vl : float = 1.0 / graphSize;
  local pr : float = vl / |#neighbors|
};
iter i {
  let sum : float = + [ u.pr | u <- #neighbors ] in
  vl = 0.15 + 0.85 * (sum / graphSize);
  pr = vl / |#neighbors|
} until { i >= steps }
)";

/// Single-source shortest paths. Runs until global quiescence; naturally
/// "pre-incrementalized" (§7.2).
inline constexpr const char* kSssp = R"(
param source : int;
init {
  local dist : float = if vertexId == source then 0 else infty
};
iter i {
  let best : float = min [ u.dist + u.edge | u <- #in ] in
  if best < dist then dist = best
} until { stable }
)";

/// SSSP in pure (unguarded) form: dist is reassigned from the min-plus
/// fold every superstep instead of through a `if best < dist` guard. The
/// guarded kSssp pins stale distances after an edge deletion (the guard
/// only ever improves), so its min sites are memo-ineligible; this form
/// recomputes from whatever arrives, which makes the min site a Class B
/// (edge-feedback) retraction-memo candidate — deletion epochs stay warm
/// when minmax_memo_k > 0 and every weight is strictly positive
/// (DESIGN.md §11). Semantics match kSssp on any non-negative-weight
/// graph once converged.
inline constexpr const char* kSsspRetract = R"(
param source : int;
init {
  local dist : float = if vertexId == source then 0.0 else infty
};
iter i {
  let best : float = min [ u.dist + u.edge | u <- #in ] in
  dist = if vertexId == source then 0.0 else best
} until { stable }
)";

/// Connected components by min-label propagation (undirected graphs).
inline constexpr const char* kConnectedComponents = R"(
init {
  local comp : int = vertexId
};
iter i {
  let best : int = min [ u.comp | u <- #neighbors ] in
  if best < comp then comp = best
} until { stable }
)";

/// Non-converging HITS with simultaneous hub/authority updates (§7):
/// auth(v) = Σ hub over in-neighbors, hub(v) = Σ auth over out-neighbors,
/// no normalization.
inline constexpr const char* kHits = R"(
param steps : int;
init {
  local hub : float = 1.0;
  local auth : float = 1.0
};
iter i {
  let hsum : float = + [ u.hub | u <- #in ] in
  let asum : float = + [ u.auth | u <- #out ] in
  auth = hsum;
  hub = asum
} until { i >= steps }
)";

/// Reachability from a source via an || aggregation — exercises the
/// multiplicative (absorbing-element) machinery of §6.4.1 on booleans.
inline constexpr const char* kReachability = R"(
param source : int;
init {
  local reached : bool = vertexId == source
};
iter i {
  let any : bool = || [ u.reached | u <- #in ] in
  if any && not reached then reached = true
} until { stable }
)";

/// Max-id gossip (max aggregation; the idempotent dual of CC).
inline constexpr const char* kMaxGossip = R"(
init {
  local big : int = vertexId
};
iter i {
  let m : int = max [ u.big | u <- #neighbors ] in
  if m > big then big = m
} until { stable }
)";

/// Breadth-first search: unweighted SSSP. Guarded min-relaxation, so it is
/// naturally pre-incrementalized like kSssp; under streaming insertions the
/// warm path patches only the frontier the new edges wake.
inline constexpr const char* kBfs = R"(
param source : int;
init {
  local dist : float = if vertexId == source then 0.0 else infty
};
iter i {
  let best : float = min [ u.dist + 1.0 | u <- #in ] in
  if best < dist then dist = best
} until { stable }
)";

/// k-core decomposition membership: alive(v) iff v survives iterated
/// removal of vertices with < k live neighbors. The assignment is a dense
/// reassign (not a guarded one-way write) because ΔV* folds recompute
/// from whatever arrives each superstep and sends are write-gated: a
/// survivor that skipped its store would stop feeding neighbors' `+`
/// folds and every live count would collapse to zero. The flip side is
/// that ΔV* can never reach message quiescence here, so its `stable`
/// never fires and the run is bounded by `rounds` — pass the expected
/// peeling depth (a few dozen on power-law graphs), not the graph size.
/// ΔV is immune: memoized folds suppress no-change sends, so it detects
/// the fixpoint via quiescence regardless of the dense re-store. That
/// asymmetry is the point — incrementalization is what makes convergence
/// detection affordable for dense-reassign programs.
inline constexpr const char* kKCore = R"(
param k : int;
param rounds : int;
init {
  local alive : bool = true
};
iter i {
  let live : int = + [ if u.alive then 1 else 0 | u <- #neighbors ] in
  if alive then alive = live >= k
} until { stable || i >= rounds }
)";

/// Maximal independent set by greedy id order, monotone formulation: feed
/// it the low->high orientation of an undirected graph (one directed arc
/// a->b per edge with a < b; see algorithms/mis.h). A vertex enters the
/// set (1) once all lower-id neighbors are out (2), and leaves once any
/// lower-id neighbor is in — both one-way transitions from undecided (0),
/// so the && / || aggregations only ever strengthen.
inline constexpr const char* kMis = R"(
init {
  local state : int = 0
};
iter i {
  let allout : bool = && [ u.state == 2 | u <- #in ] in
  let anyin : bool = || [ u.state == 1 | u <- #in ] in
  if state == 0 then state = (if anyin then 2 else (if allout then 1 else 0))
} until { stable }
)";

/// Pointer jumping — the remote-read flagship (§"remote(u).f"). The step
/// block seeds parent = min in-neighbor id; each iteration then chases one
/// hop of the parent chain via a remote read, halving path lengths until
/// every vertex points at its chain root. Compiles to request/reply
/// superstep phases (passes/remote_lower.cpp).
inline constexpr const char* kPointerJump = R"(
init {
  local parent : int = vertexId
};
step {
  let m : int = min [ u.parent | u <- #in ] in
  if m < parent then parent = m
};
iter i {
  let p : int = remote(parent).parent in
  if p != parent then parent = p
} until { stable }
)";

}  // namespace deltav::dv::programs
