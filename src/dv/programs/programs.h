// The ΔV sources for the paper's four benchmarks (§7) plus extra demo
// programs. Embedded as strings so binaries need no data files.
//
// Iteration counts are `param`s so tests can align them exactly with the
// hand-written Pregel+ baselines (whose Figure-1 convention performs
// `iterations − 1` rank updates over `iterations` supersteps).
#pragma once

namespace deltav::dv::programs {

/// PageRank over a directed graph — the paper's §5 listing, adapted to
/// directed pulls (#in) as run on Wikipedia/LiveJournal-DG. The recurrence
/// matches Figure 1 exactly (including the sum/graphSize quirk).
inline constexpr const char* kPageRank = R"(
param steps : int;
init {
  local vl : float = 1.0 / graphSize;
  local pr : float = vl / |#out|
};
iter i {
  -- sum neighbors' PageRanks
  let sum : float = + [ u.pr | u <- #in ] in
  -- calculate new value and new pagerank for neighbors to see next superstep
  vl = 0.15 + 0.85 * (sum / graphSize);
  pr = vl / |#out|
} until { i >= steps }
)";

/// PageRank over an undirected graph (the paper's verbatim §5 listing).
inline constexpr const char* kPageRankUndirected = R"(
param steps : int;
init {
  local vl : float = 1.0 / graphSize;
  local pr : float = vl / |#neighbors|
};
iter i {
  let sum : float = + [ u.pr | u <- #neighbors ] in
  vl = 0.15 + 0.85 * (sum / graphSize);
  pr = vl / |#neighbors|
} until { i >= steps }
)";

/// Single-source shortest paths. Runs until global quiescence; naturally
/// "pre-incrementalized" (§7.2).
inline constexpr const char* kSssp = R"(
param source : int;
init {
  local dist : float = if vertexId == source then 0 else infty
};
iter i {
  let best : float = min [ u.dist + u.edge | u <- #in ] in
  if best < dist then dist = best
} until { stable }
)";

/// Connected components by min-label propagation (undirected graphs).
inline constexpr const char* kConnectedComponents = R"(
init {
  local comp : int = vertexId
};
iter i {
  let best : int = min [ u.comp | u <- #neighbors ] in
  if best < comp then comp = best
} until { stable }
)";

/// Non-converging HITS with simultaneous hub/authority updates (§7):
/// auth(v) = Σ hub over in-neighbors, hub(v) = Σ auth over out-neighbors,
/// no normalization.
inline constexpr const char* kHits = R"(
param steps : int;
init {
  local hub : float = 1.0;
  local auth : float = 1.0
};
iter i {
  let hsum : float = + [ u.hub | u <- #in ] in
  let asum : float = + [ u.auth | u <- #out ] in
  auth = hsum;
  hub = asum
} until { i >= steps }
)";

/// Reachability from a source via an || aggregation — exercises the
/// multiplicative (absorbing-element) machinery of §6.4.1 on booleans.
inline constexpr const char* kReachability = R"(
param source : int;
init {
  local reached : bool = vertexId == source
};
iter i {
  let any : bool = || [ u.reached | u <- #in ] in
  if any && not reached then reached = true
} until { stable }
)";

/// Max-id gossip (max aggregation; the idempotent dual of CC).
inline constexpr const char* kMaxGossip = R"(
init {
  local big : int = vertexId
};
iter i {
  let m : int = max [ u.big | u <- #neighbors ] in
  if m > big then big = m
} until { stable }
)";

}  // namespace deltav::dv::programs
