#include "dv/typecheck.h"

#include <sstream>

namespace deltav::dv {

namespace {

bool is_numeric(Type t) { return t == Type::kInt || t == Type::kFloat; }

/// Least upper bound of two value types, or kUnknown if incompatible.
Type unify(Type a, Type b) {
  if (a == b) return a;
  if ((a == Type::kInt && b == Type::kFloat) ||
      (a == Type::kFloat && b == Type::kInt))
    return Type::kFloat;
  return Type::kUnknown;
}

/// True if a value of type `from` may flow into a slot of type `to`.
bool assignable(Type to, Type from) {
  if (to == from) return true;
  return to == Type::kFloat && from == Type::kInt;
}

class Checker {
 public:
  Checker(Program& prog, Diagnostics& diags) : prog_(prog), diags_(diags) {}

  TypecheckResult run() {
    TypecheckResult result;
    in_init_ = true;
    check(*prog_.init);
    in_init_ = false;
    if (prog_.fields.empty())
      diags_.warn(prog_.loc, "program declares no vertex state fields");
    for (std::size_t i = 0; i < prog_.stmts.size(); ++i) {
      Stmt& s = prog_.stmts[i];
      StmtAnalysis analysis;
      analysis_ = &analysis;
      iter_var_ = s.kind == Stmt::Kind::kIter ? s.iter_var : std::string();
      if (!iter_var_.empty()) {
        const int field = prog_.find_field(iter_var_);
        if (field >= 0)
          compile_error(s.loc, "iteration variable '" + iter_var_ +
                                   "' shadows a vertex field");
      }
      check(*s.body);
      if (analysis.has_remote && analysis.has_agg)
        compile_error(s.loc,
                      "aggregations and remote reads cannot share a "
                      "statement (their lowered message supersteps would "
                      "interleave); split them into separate statements");
      if (s.until) {
        in_until_ = true;
        check(*s.until);
        in_until_ = false;
        if (s.until->type != Type::kBool)
          compile_error(s.until->loc, "until condition must be bool, got " +
                                          std::string(type_name(
                                              s.until->type)));
      }
      iter_var_.clear();
      result.stmts.push_back(analysis);
    }
    return result;
  }

 private:
  struct LetBinding {
    std::string name;
    Type type;
    int scratch_slot;
  };

  [[noreturn]] void err(const Expr& e, const std::string& msg) {
    compile_error(e.loc, msg);
  }

  void check(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit: e.type = Type::kInt; return;
      case ExprKind::kFloatLit: e.type = Type::kFloat; return;
      case ExprKind::kBoolLit: e.type = Type::kBool; return;
      case ExprKind::kInfty: e.type = Type::kFloat; return;
      case ExprKind::kGraphSize: e.type = Type::kInt; return;
      case ExprKind::kVertexIdRef:
        if (in_until_)
          err(e, "'vertexId' is per-vertex and not allowed in until clauses");
        e.type = Type::kInt;
        return;
      case ExprKind::kStableRef:
        if (!in_until_) err(e, "'stable' is only valid in until clauses");
        analysis_->until_uses_stable = true;
        e.type = Type::kBool;
        return;
      case ExprKind::kVarRef: return check_var_ref(e);
      case ExprKind::kBinary: return check_binary(e);
      case ExprKind::kUnary: return check_unary(e);
      case ExprKind::kPairOp: return check_pair_op(e);
      case ExprKind::kIf: return check_if(e);
      case ExprKind::kLet: return check_let(e);
      case ExprKind::kSeq: return check_seq(e);
      case ExprKind::kAssign: return check_assign(e);
      case ExprKind::kLocalDecl: return check_local_decl(e);
      case ExprKind::kAgg: return check_agg(e);
      case ExprKind::kRemoteRead: return check_remote_read(e);
      case ExprKind::kNeighborField: return check_neighbor_field(e);
      case ExprKind::kEdgeWeight:
        if (!in_agg_) err(e, "u.edge is only valid inside an aggregation");
        e.type = Type::kFloat;
        return;
      case ExprKind::kDegree:
        if (in_until_)
          err(e, "degree is per-vertex and not allowed in until clauses");
        e.type = Type::kInt;
        return;
      default:
        err(e, std::string("internal form ") + expr_kind_name(e.kind) +
                   " in source program");
    }
  }

  void check_var_ref(Expr& e) {
    // Resolution order: innermost let > iteration variable > field > param.
    for (auto it = lets_.rbegin(); it != lets_.rend(); ++it) {
      if (it->name == e.name) {
        e.var_kind = VarKind::kLet;
        e.slot = it->scratch_slot;
        e.type = it->type;
        return;
      }
    }
    if (!iter_var_.empty() && e.name == iter_var_) {
      e.var_kind = VarKind::kIter;
      e.type = Type::kInt;
      if (!in_until_) analysis_->body_reads_iter_var = true;
      return;
    }
    const int field = prog_.find_field(e.name);
    if (field >= 0) {
      if (in_until_)
        err(e, "until conditions may not read vertex fields (they must be "
               "globally evaluable); use 'stable' for convergence");
      e.kind = ExprKind::kFieldRef;
      e.slot = field;
      e.type = prog_.fields[static_cast<std::size_t>(field)].type;
      return;
    }
    const int param = prog_.find_param(e.name);
    if (param >= 0) {
      e.kind = ExprKind::kParamRef;
      e.slot = param;
      e.type = prog_.params[static_cast<std::size_t>(param)].type;
      return;
    }
    err(e, "undefined name '" + e.name + "'");
  }

  void check_binary(Expr& e) {
    check(*e.kids[0]);
    check(*e.kids[1]);
    const Type lt = e.kids[0]->type, rt = e.kids[1]->type;
    switch (e.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul: {
        if (!is_numeric(lt) || !is_numeric(rt))
          err(e, "arithmetic on non-numeric operands");
        e.type = unify(lt, rt);
        return;
      }
      case BinOp::kDiv:
        if (!is_numeric(lt) || !is_numeric(rt))
          err(e, "division on non-numeric operands");
        e.type = Type::kFloat;  // '/' always yields float (see DESIGN.md)
        return;
      case BinOp::kAnd:
      case BinOp::kOr:
        if (lt != Type::kBool || rt != Type::kBool)
          err(e, "&&/|| require bool operands");
        e.type = Type::kBool;
        return;
      case BinOp::kLt:
      case BinOp::kGt:
      case BinOp::kGe:
      case BinOp::kLe:
        if (!is_numeric(lt) || !is_numeric(rt))
          err(e, "comparison on non-numeric operands");
        e.type = Type::kBool;
        return;
      case BinOp::kEq:
      case BinOp::kNe:
        if (unify(lt, rt) == Type::kUnknown)
          err(e, "==/!= on incompatible types");
        e.type = Type::kBool;
        return;
    }
  }

  void check_unary(Expr& e) {
    check(*e.kids[0]);
    if (e.un_op == UnOp::kNeg) {
      if (!is_numeric(e.kids[0]->type)) err(e, "negation of non-number");
      e.type = e.kids[0]->type;
    } else {
      if (e.kids[0]->type != Type::kBool) err(e, "'not' of non-bool");
      e.type = Type::kBool;
    }
  }

  void check_pair_op(Expr& e) {
    check(*e.kids[0]);
    check(*e.kids[1]);
    if (!is_numeric(e.kids[0]->type) || !is_numeric(e.kids[1]->type))
      err(e, "min/max require numeric arguments");
    e.type = unify(e.kids[0]->type, e.kids[1]->type);
  }

  void check_if(Expr& e) {
    const bool was_cond = under_conditional_;
    check(*e.kids[0]);
    if (e.kids[0]->type != Type::kBool)
      err(*e.kids[0], "if condition must be bool");
    under_conditional_ = true;
    check(*e.kids[1]);
    if (e.kids.size() == 3) {
      check(*e.kids[2]);
      e.type = unify(e.kids[1]->type, e.kids[2]->type);
      if (e.type == Type::kUnknown) {
        // Branch types disagree: the if is used for effect, not value.
        e.type = Type::kUnit;
      }
    } else {
      e.type = Type::kUnit;
    }
    under_conditional_ = was_cond;
  }

  void check_let(Expr& e) {
    check(*e.kids[0]);
    if (!assignable(e.decl_type, e.kids[0]->type))
      err(e, "let '" + e.name + "' declared " + type_name(e.decl_type) +
                 " but initialized with " +
                 type_name(e.kids[0]->type));
    const int slot =
        prog_.add_scratch(e.name, e.decl_type, ScratchVar::Origin::kLet);
    lets_.push_back(LetBinding{e.name, e.decl_type, slot});
    e.slot = slot;
    check(*e.kids[1]);
    lets_.pop_back();
    e.type = e.kids[1]->type;
  }

  void check_seq(Expr& e) {
    for (auto& k : e.kids) check(*k);
    e.type = e.kids.empty() ? Type::kUnit : e.kids.back()->type;
  }

  void check_assign(Expr& e) {
    if (in_init_)
      err(e, "assignments are not allowed in init; use 'local' declarations");
    check(*e.kids[0]);
    for (auto it = lets_.rbegin(); it != lets_.rend(); ++it)
      if (it->name == e.name)
        err(e, "let-bound variable '" + e.name + "' is immutable");
    const int field = prog_.find_field(e.name);
    if (field < 0) err(e, "assignment to undefined field '" + e.name + "'");
    const Type ft = prog_.fields[static_cast<std::size_t>(field)].type;
    if (!assignable(ft, e.kids[0]->type))
      err(e, "cannot assign " + std::string(type_name(e.kids[0]->type)) +
                 " to field '" + e.name + "' of type " + type_name(ft));
    e.assign_target = AssignTarget::kField;
    e.slot = field;
    e.type = Type::kUnit;
  }

  void check_local_decl(Expr& e) {
    if (!in_init_)
      err(e, "'local' declarations are only allowed in the init block");
    check(*e.kids[0]);
    if (!assignable(e.decl_type, e.kids[0]->type))
      err(e, "local '" + e.name + "' declared " + type_name(e.decl_type) +
                 " but initialized with " + type_name(e.kids[0]->type));
    if (prog_.find_field(e.name) >= 0)
      err(e, "duplicate field '" + e.name + "'");
    if (prog_.find_param(e.name) >= 0)
      err(e, "field '" + e.name + "' shadows a parameter");
    e.slot = prog_.add_field(e.name, e.decl_type, Field::Origin::kUser);
    e.type = Type::kUnit;
  }

  void check_agg(Expr& e) {
    if (in_init_)
      err(e, "aggregations are not allowed in init (no communication has "
             "happened yet)");
    if (in_until_) err(e, "aggregations are not allowed in until clauses");
    if (in_agg_) err(e, "nested aggregations are not supported");
    if (under_conditional_)
      err(e, "aggregation under a conditional cannot be incrementalized; "
             "hoist it with a let above the if");
    analysis_->has_agg = true;
    in_agg_ = true;
    check(*e.kids[0]);
    in_agg_ = false;
    const Type elem = e.kids[0]->type;
    if (!agg_supports_type(e.agg_op, elem))
      err(e, std::string("aggregation ") + agg_op_name(e.agg_op) +
                 " does not support element type " + type_name(elem));
    e.type = elem;
  }

  /// remote(e).f — a remote vertex-field read (DESIGN.md "Remote reads").
  /// The target expression is evaluated during the generated *request*
  /// superstep, before any of this iteration's assignments run, so it must
  /// be request-phase evaluable: fields, params, vertexId, graphSize,
  /// degrees, the iteration variable, and arithmetic over them — no
  /// let-bound variables (they only exist inside the rewritten consumer
  /// body), no aggregations, no nested remote reads. The value read is the
  /// owner's field at the start of the logical iteration.
  void check_remote_read(Expr& e) {
    if (in_init_)
      err(e, "remote reads are not allowed in init (no communication has "
             "happened yet)");
    if (in_until_) err(e, "remote reads are not allowed in until clauses");
    if (in_agg_)
      err(e, "remote reads are not allowed inside aggregation elements");
    analysis_->has_remote = true;
    check(*e.kids[0]);
    if (e.kids[0]->type != Type::kInt)
      err(*e.kids[0], "remote target must be an int vertex id, got " +
                          std::string(type_name(e.kids[0]->type)));
    check_remote_target(*e.kids[0]);
    const int field = prog_.find_field(e.name);
    if (field < 0)
      err(e, "remote read of unknown field '" + e.name + "'");
    e.slot = field;
    e.type = prog_.fields[static_cast<std::size_t>(field)].type;
  }

  /// Enforces the request-phase-evaluable shape of a remote target after
  /// name resolution ran on it.
  void check_remote_target(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFieldRef:
      case ExprKind::kParamRef:
      case ExprKind::kVertexIdRef:
      case ExprKind::kGraphSize:
      case ExprKind::kDegree:
        return;
      case ExprKind::kVarRef:
        if (e.var_kind == VarKind::kIter) return;
        err(e, "remote target may not read let-bound variable '" + e.name +
                   "' (targets are evaluated in the request superstep, "
                   "before the statement body runs)");
      case ExprKind::kRemoteRead:
        err(e, "nested remote reads are not supported");
      case ExprKind::kAgg:
        err(e, "aggregations are not allowed inside a remote target");
      case ExprKind::kBinary:
      case ExprKind::kUnary:
      case ExprKind::kPairOp:
      case ExprKind::kIf:
        for (const auto& k : e.kids) check_remote_target(*k);
        return;
      default:
        err(e, std::string("remote target may not contain ") +
                   expr_kind_name(e.kind));
    }
  }

  void check_neighbor_field(Expr& e) {
    if (!in_agg_)
      err(e, "u." + e.name + " is only valid inside an aggregation");
    const int field = prog_.find_field(e.name);
    if (field < 0)
      err(e, "aggregation references unknown field '" + e.name + "'");
    e.slot = field;
    e.type = prog_.fields[static_cast<std::size_t>(field)].type;
  }

  Program& prog_;
  Diagnostics& diags_;
  std::vector<LetBinding> lets_;
  std::string iter_var_;
  StmtAnalysis* analysis_ = nullptr;
  bool in_init_ = false;
  bool in_until_ = false;
  bool in_agg_ = false;
  bool under_conditional_ = false;
};

}  // namespace

TypecheckResult typecheck(Program& prog, Diagnostics& diags) {
  Checker checker(prog, diags);
  return checker.run();
}

}  // namespace deltav::dv
