// Tokens of the ΔV surface syntax.
#pragma once

#include <cstdint>
#include <string>

#include "dv/diagnostics.h"

namespace deltav::dv {

enum class Tok : std::uint8_t {
  // literals / identifiers
  kIntLit, kFloatLit, kTrue, kFalse, kIdent,
  // keywords
  kInit, kStep, kIter, kUntil, kLet, kLocal, kIn, kIf, kThen, kElse,
  kParam, kGraphSize, kInfty, kVertexId, kStable, kRemote,
  kMin, kMax, kTypeInt, kTypeBool, kTypeFloat,
  // graph expressions
  kHashIn, kHashOut, kHashNeighbors,
  // punctuation / operators
  kLBrace, kRBrace, kLParen, kRParen, kLBracket, kRBracket,
  kSemi, kColon, kComma, kAssign, kArrow /* <- */, kBar /* | */,
  kPlus, kMinus, kStar, kSlash,
  kAndAnd, kOrOr, kNot,
  kLt, kGt, kGe, kLe, kEqEq, kNe,
  kDot,
  kEof,
};

const char* tok_name(Tok t);

struct Token {
  Tok kind = Tok::kEof;
  std::string text;       // identifier spelling / literal text
  std::int64_t int_val = 0;
  double float_val = 0;
  Loc loc;
};

}  // namespace deltav::dv
