// Hand-written lexer for ΔV.
//
// Comments run from `--` or `//` to end of line. `|` is context-sensitive
// in the grammar (aggregation separator vs. the |g| degree form vs. `||`);
// the lexer only distinguishes `|` and `||`, the parser does the rest.
#pragma once

#include <string>
#include <vector>

#include "dv/token.h"

namespace deltav::dv {

class Lexer {
 public:
  explicit Lexer(std::string source);

  /// Tokenizes the whole input (ending with kEof). Throws CompileError on
  /// unrecognized characters or malformed literals.
  std::vector<Token> tokenize();

 private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool at_end() const;
  void skip_trivia();
  Token make(Tok kind);
  Token identifier_or_keyword();
  Token number();
  Token graph_expr();

  std::string src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  Loc tok_start_;
};

}  // namespace deltav::dv
