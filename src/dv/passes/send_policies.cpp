// The ΔV* assigned-send policy and the ΔV change-check pass (§6.3).
//
// Both passes share the same skeleton: rewrite assignments to the fields a
// site's sent expression depends on so they also update a per-site flag,
// then guard the site's broadcast send loop with that flag (the hoisted
// form of Eq. 6/7 — our send loops are whole broadcasts, so the guard
// lands outside the loop exactly as Eq. 7 prescribes).
#include <map>
#include <sstream>

#include "dv/passes/passes.h"

namespace deltav::dv {

namespace {

/// Maps field slot → list of updates to splice after assignments to it.
using UpdateMap = std::map<int, std::vector<const AggSite*>>;

/// Rewrites every `f = e` with f in `updates` into `f = e; <flag updates>`.
/// `make_update(site)` builds one update expression.
template <typename MakeUpdate>
void rewrite_assignments(Expr& e, const UpdateMap& updates,
                         MakeUpdate&& make_update) {
  for (auto& kid : e.kids) {
    rewrite_assignments(*kid, updates, make_update);
    if (kid->kind == ExprKind::kAssign &&
        kid->assign_target == AssignTarget::kField) {
      auto it = updates.find(kid->slot);
      if (it == updates.end()) continue;
      std::vector<ExprPtr> seq;
      seq.push_back(std::move(kid));
      for (const AggSite* site : it->second)
        seq.push_back(make_update(*site, seq.front()->slot));
      kid = mk_seq(std::move(seq));
    }
  }
}

/// Wraps the top-level send loop of `site` in `if (<guard>) ...`.
/// `mark_obs` annotates the guard as a §6.3 change check so the execution
/// tiers can count the suppressed fan-out (dv.sends_suppressed) when it
/// evaluates false; the ΔV* assigned-send policy leaves it unmarked (that
/// guard is the Definition-1 meaningful-messages policy, a different
/// series).
void guard_send_loop(Stmt& stmt, const AggSite& site, ExprPtr guard,
                     bool mark_obs = false) {
  DV_CHECK(stmt.body->kind == ExprKind::kSeq);
  for (auto& kid : stmt.body->kids) {
    if (kid->kind == ExprKind::kSendLoop && kid->site == site.id) {
      const GraphDir push = kid->dir;
      kid = mk_if(std::move(guard), std::move(kid));
      if (mark_obs) {
        kid->obs_site = site.id;
        kid->dir = push;
      }
      return;
    }
    // Already-guarded loop (idempotence safety): look one level down.
    if (kid->kind == ExprKind::kIf && kid->kids.size() == 2 &&
        kid->kids[1]->kind == ExprKind::kSendLoop &&
        kid->kids[1]->site == site.id)
      DV_FAIL("send loop for site " << site.id << " already guarded");
  }
  DV_FAIL("send loop for site " << site.id << " not found");
}

}  // namespace

void pass_assigned_send_policy(Program& prog, Diagnostics&) {
  for (AggSite& site : prog.sites) {
    if (site.is_channel()) continue;  // no send loop to guard
    std::ostringstream name;
    name << "assigned_" << site.id;
    site.assigned_scratch = prog.add_scratch(
        name.str(), Type::kBool, ScratchVar::Origin::kAssignedFlag, site.id);
  }

  for (std::size_t i = 0; i < prog.stmts.size(); ++i) {
    UpdateMap updates;
    for (const AggSite& site : prog.sites) {
      if (site.is_channel()) continue;
      if (site.stmt_index != static_cast<int>(i)) continue;
      if (site.bound_field >= 0) {
        // The bound sent-field (Eq. 4) is recomputed unconditionally
        // right before the send loop; keying the assigned flag on it
        // would fire the send every superstep and the program could never
        // quiesce under `until stable`. Key on the user fields the bound
        // expression reads instead — the same change grain as the
        // edge-dependent fallback.
        for (int f : collect_field_reads(*site.init_send_expr))
          updates[f].push_back(&site);
      } else {
        for (int f : site.dep_fields) updates[f].push_back(&site);
      }
    }
    if (updates.empty()) continue;
    rewrite_assignments(
        *prog.stmts[i].body, updates, [&](const AggSite& site, int) {
          return mk_assign_scratch(
              site.assigned_scratch,
              prog.scratch[static_cast<std::size_t>(site.assigned_scratch)]
                  .name,
              mk_bool(true));
        });
    for (const AggSite& site : prog.sites) {
      if (site.is_channel()) continue;
      if (site.stmt_index != static_cast<int>(i)) continue;
      guard_send_loop(
          prog.stmts[i], site,
          mk_scratch_ref(site.assigned_scratch,
                         prog.scratch[static_cast<std::size_t>(
                                          site.assigned_scratch)]
                             .name,
                         Type::kBool));
    }
  }
}

void pass_change_checks(Program& prog, const CompileOptions& options,
                        Diagnostics& diags) {
  const bool eps_mode = options.epsilon > 0.0;

  // One old-copy scratch per externally visible field, shared by all sites
  // that depend on it (§6.3's o_f).
  std::map<int, int> old_of_field;
  auto old_scratch_for = [&](int field) {
    auto it = old_of_field.find(field);
    if (it != old_of_field.end()) return it->second;
    const Field& f = prog.fields[static_cast<std::size_t>(field)];
    const int slot = prog.add_scratch("old_" + f.name, f.type,
                                      ScratchVar::Origin::kOldCopy);
    old_of_field.emplace(field, slot);
    return slot;
  };

  for (AggSite& site : prog.sites) {
    if (site.is_channel()) continue;  // no change tracking on channels
    site.old_scratch.clear();
    for (int f : site.dep_fields)
      site.old_scratch.push_back(old_scratch_for(f));

    if (eps_mode && site.op == AggOp::kSum &&
        site.elem_type == Type::kFloat &&
        site.send_expr->kind == ExprKind::kFieldRef) {
      // §9 ϵ-slop: persistent last-sent value per site.
      std::ostringstream name;
      name << "last_sent_" << site.id;
      site.last_sent_slot = prog.add_field(
          name.str(), site.elem_type, Field::Origin::kLastSent, site.id);
    } else if (eps_mode) {
      diags.warn(prog.loc,
                 "epsilon slop ignored for site " +
                     std::to_string(site.id) +
                     " (requires a float + aggregation over a plain field)");
    }

    std::ostringstream name;
    name << "dirtied_" << site.id;
    site.dirty_scratch = prog.add_scratch(
        name.str(), Type::kBool, ScratchVar::Origin::kDirtyFlag, site.id);
  }

  for (std::size_t i = 0; i < prog.stmts.size(); ++i) {
    Stmt& stmt = prog.stmts[i];
    UpdateMap updates;
    bool any_site = false;
    for (const AggSite& site : prog.sites) {
      if (site.is_channel()) continue;
      if (site.stmt_index != static_cast<int>(i)) continue;
      any_site = true;
      if (site.last_sent_slot >= 0) continue;  // ϵ-mode guards at the send
      for (int f : site.dep_fields) updates[f].push_back(&site);
    }
    if (!any_site) continue;

    // Prologue: save o_f = f for every externally visible field this
    // statement may send (before any assignment runs).
    std::vector<ExprPtr> prologue;
    for (const auto& [field, old_slot] : old_of_field) {
      bool used_here = false;
      for (const AggSite& site : prog.sites)
        if (site.stmt_index == static_cast<int>(i))
          for (int f : site.dep_fields) used_here = used_here || f == field;
      if (!used_here) continue;
      const Field& f = prog.fields[static_cast<std::size_t>(field)];
      const auto& sv = prog.scratch[static_cast<std::size_t>(old_slot)];
      prologue.push_back(mk_assign_scratch(
          old_slot, sv.name, mk_field_ref(field, f.name, f.type)));
    }
    for (auto it = prologue.rbegin(); it != prologue.rend(); ++it)
      stmt.body = seq_prepend(std::move(*it), std::move(stmt.body));

    // Eq. 5: xf = e  ;  xf = e; dirtied = dirtied || (xf != o_f).
    rewrite_assignments(
        *stmt.body, updates, [&](const AggSite& site, int field) {
          const Field& f = prog.fields[static_cast<std::size_t>(field)];
          int old_slot = -1;
          for (std::size_t d = 0; d < site.dep_fields.size(); ++d)
            if (site.dep_fields[d] == field)
              old_slot = site.old_scratch[d];
          DV_CHECK(old_slot >= 0);
          const auto& dirty =
              prog.scratch[static_cast<std::size_t>(site.dirty_scratch)];
          const auto& old_sv =
              prog.scratch[static_cast<std::size_t>(old_slot)];
          auto changed = mk_binary(
              BinOp::kNe, mk_field_ref(field, f.name, f.type),
              mk_scratch_ref(old_slot, old_sv.name, f.type), Type::kBool);
          auto value = mk_binary(
              BinOp::kOr,
              mk_scratch_ref(site.dirty_scratch, dirty.name, Type::kBool),
              std::move(changed), Type::kBool);
          return mk_assign_scratch(site.dirty_scratch, dirty.name,
                                   std::move(value));
        });

    // Eq. 6/7: guard each send loop.
    for (const AggSite& site : prog.sites) {
      if (site.is_channel()) continue;
      if (site.stmt_index != static_cast<int>(i)) continue;
      if (site.last_sent_slot >= 0) {
        // ϵ-mode: |f - last_sent| > ε, and update last_sent after sending.
        const Field& f = prog.fields[static_cast<std::size_t>(
            site.send_expr->slot)];
        const Field& ls =
            prog.fields[static_cast<std::size_t>(site.last_sent_slot)];
        auto fref = [&] {
          return mk_field_ref(site.send_expr->slot, f.name, f.type);
        };
        auto lref = [&] {
          return mk_field_ref(site.last_sent_slot, ls.name, ls.type);
        };
        auto above = mk_binary(
            BinOp::kGt,
            mk_binary(BinOp::kSub, fref(), lref(), Type::kFloat),
            mk_float(options.epsilon), Type::kBool);
        auto below = mk_binary(
            BinOp::kGt,
            mk_binary(BinOp::kSub, lref(), fref(), Type::kFloat),
            mk_float(options.epsilon), Type::kBool);
        auto guard =
            mk_binary(BinOp::kOr, std::move(above), std::move(below),
                      Type::kBool);
        // Find the loop, wrap with the guard and append the last_sent
        // update inside the guarded branch.
        DV_CHECK(stmt.body->kind == ExprKind::kSeq);
        for (auto& kid : stmt.body->kids) {
          if (kid->kind != ExprKind::kSendLoop || kid->site != site.id)
            continue;
          const GraphDir push = kid->dir;
          std::vector<ExprPtr> branch;
          branch.push_back(std::move(kid));
          branch.push_back(mk_assign_field(site.last_sent_slot, ls.name,
                                           fref()));
          kid = mk_if(std::move(guard), mk_seq(std::move(branch)));
          kid->obs_site = site.id;
          kid->dir = push;
          break;
        }
      } else {
        const auto& dirty =
            prog.scratch[static_cast<std::size_t>(site.dirty_scratch)];
        guard_send_loop(stmt, site,
                        mk_scratch_ref(site.dirty_scratch, dirty.name,
                                       Type::kBool),
                        /*mark_obs=*/true);
      }
    }
  }
}

}  // namespace deltav::dv
