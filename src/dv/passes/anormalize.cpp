#include <sstream>

#include "dv/passes/passes.h"

namespace deltav::dv {

namespace {

int g_counter;  // reset per pass invocation; names are program-unique

/// Recursively extracts aggregations that are not in canonical position
/// (immediate RHS of a let or field assignment) from `e`, appending the
/// extracted (name, scratch slot, agg node) bindings to `hoisted`.
struct Hoisted {
  std::string name;
  int scratch_slot;
  ExprPtr agg;
};

void extract(Program& prog, ExprPtr& e, std::vector<Hoisted>& hoisted,
             bool canonical_position) {
  if (e->kind == ExprKind::kAgg) {
    if (canonical_position) {
      // Already `x = ⊞[...]` or `let x = ⊞[...] in ...`; leave in place.
      // (Element expressions cannot contain aggregations — typechecked.)
      return;
    }
    std::ostringstream name;
    name << "agg_" << g_counter++;
    const int slot =
        prog.add_scratch(name.str(), e->type, ScratchVar::Origin::kLet);
    auto ref = mk_scratch_ref(slot, name.str(), e->type, e->loc);
    hoisted.push_back(Hoisted{name.str(), slot, std::move(e)});
    e = std::move(ref);
    return;
  }
  // Canonical positions: the sole kid of an assignment, the first kid of a
  // let. Everything else is non-canonical.
  switch (e->kind) {
    case ExprKind::kAssign:
      extract(prog, e->kids[0], hoisted, /*canonical_position=*/true);
      return;
    case ExprKind::kLet:
      extract(prog, e->kids[0], hoisted, /*canonical_position=*/true);
      // The let body is a new item scope handled by normalize_lets, so
      // aggregations inside it are hoisted within the body, not above the
      // binding they may reference.
      return;
    default:
      for (auto& k : e->kids)
        extract(prog, k, hoisted, /*canonical_position=*/false);
      return;
  }
}

/// Rewrites one sequence item: hoisted aggregations become scratch
/// assignments placed before the item.
void normalize_item(Program& prog, ExprPtr& item,
                    std::vector<ExprPtr>& out) {
  std::vector<Hoisted> hoisted;
  extract(prog, item, hoisted, /*canonical_position=*/false);
  for (auto& h : hoisted) {
    // Bind as `$agg_i = ⊞[...]` — a scratch assignment, the moral
    // equivalent of the paper's fresh let, but flattened so the remaining
    // items of the sequence stay siblings.
    out.push_back(
        mk_assign_scratch(h.scratch_slot, h.name, std::move(h.agg)));
  }
  out.push_back(std::move(item));
}

void normalize_body(Program& prog, ExprPtr& body) {
  const Loc loc = body->loc;  // before any item is moved out of `body`
  std::vector<ExprPtr> items;
  if (body->kind == ExprKind::kSeq) {
    for (auto& k : body->kids) normalize_item(prog, k, items);
  } else {
    normalize_item(prog, body, items);
  }
  if (items.size() == 1) {
    body = std::move(items.front());
  } else {
    body = mk_seq(std::move(items));
    body->loc = loc;
  }
}

/// Lets nested below the top-level sequence also carry items (their body);
/// normalize within them recursively.
void normalize_lets(Program& prog, Expr& e) {
  if (e.kind == ExprKind::kLet) {
    normalize_body(prog, e.kids[1]);
    normalize_lets(prog, *e.kids[1]);
    return;
  }
  if (e.kind == ExprKind::kSeq) {
    for (auto& k : e.kids) normalize_lets(prog, *k);
  }
}

}  // namespace

void pass_anormalize(Program& prog, Diagnostics&) {
  g_counter = 0;
  for (auto& stmt : prog.stmts) {
    normalize_body(prog, stmt.body);
    normalize_lets(prog, *stmt.body);
  }
}

}  // namespace deltav::dv
