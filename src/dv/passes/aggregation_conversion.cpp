#include <sstream>

#include "dv/passes/passes.h"

namespace deltav::dv {

std::vector<int> collect_field_reads(const Expr& e) {
  std::vector<int> slots;
  auto walk = [&](auto&& self, const Expr& node) -> void {
    if (node.kind == ExprKind::kFieldRef) {
      bool seen = false;
      for (int s : slots) seen = seen || (s == node.slot);
      if (!seen) slots.push_back(node.slot);
    }
    for (const auto& k : node.kids) self(self, *k);
  };
  walk(walk, e);
  return slots;
}

ExprPtr substitute_field(const Expr& e, int slot, const Expr& replacement) {
  if (e.kind == ExprKind::kFieldRef && e.slot == slot)
    return replacement.clone();
  auto copy = e.clone();
  auto rewrite = [&](auto&& self, Expr& node) -> void {
    for (auto& k : node.kids) {
      if (k->kind == ExprKind::kFieldRef && k->slot == slot) {
        k = replacement.clone();
      } else {
        self(self, *k);
      }
    }
  };
  rewrite(rewrite, *copy);
  return copy;
}

namespace {

/// Rewrites the aggregation element expression into its sender-side view:
/// u.f becomes a read of the sender's own field f; u.edge stays (the
/// sender binds it per out-edge when broadcasting).
ExprPtr sender_view(const Expr& elem) {
  auto copy = elem.clone();
  auto rewrite = [](auto&& self, Expr& node) -> void {
    if (node.kind == ExprKind::kNeighborField) {
      node.kind = ExprKind::kFieldRef;
      // slot/name/type were resolved by the type checker and carry over.
    }
    for (auto& k : node.kids) self(self, *k);
  };
  rewrite(rewrite, *copy);
  return copy;
}

void convert_aggs(Program& prog, Expr& e, int stmt_index,
                  Diagnostics& diags) {
  for (auto& kid : e.kids) {
    if (kid->kind == ExprKind::kAgg) {
      AggSite site;
      site.id = static_cast<int>(prog.sites.size());
      site.op = kid->agg_op;
      site.elem_type = kid->type;
      site.pull_dir = kid->dir;
      site.stmt_index = stmt_index;
      site.send_expr = sender_view(*kid->kids[0]);
      site.dep_fields = collect_field_reads(*site.send_expr);
      if (site.dep_fields.empty())
        diags.warn(kid->loc,
                   "aggregation element reads no vertex fields; its value "
                   "can never change after the first superstep");

      // Eq. 3: the pull becomes a fold over this superstep's messages.
      auto fold = mk(ExprKind::kFoldMessages, kid->loc);
      fold->site = site.id;
      fold->agg_op = site.op;
      fold->type = site.elem_type;
      fold->flag = false;  // non-incremental until §6.4 runs
      kid = std::move(fold);

      prog.sites.push_back(std::move(site));
    } else {
      convert_aggs(prog, *kid, stmt_index, diags);
    }
  }
}

}  // namespace

void pass_aggregation_conversion(Program& prog, Diagnostics& diags) {
  DV_CHECK_MSG(prog.sites.empty(),
               "aggregation conversion must run exactly once");
  for (std::size_t i = 0; i < prog.stmts.size(); ++i) {
    Stmt& stmt = prog.stmts[i];
    convert_aggs(prog, *stmt.body, static_cast<int>(i), diags);

    // Append one broadcast send loop per site of this statement: the
    // "push" half of §6.1. Unguarded full-value sends at this point;
    // later passes add policies and Δ-messages.
    for (const AggSite& site : prog.sites) {
      if (site.stmt_index != static_cast<int>(i)) continue;
      auto loop = mk(ExprKind::kSendLoop, stmt.loc);
      loop->site = site.id;
      loop->dir = push_direction(site.pull_dir);
      loop->agg_op = site.op;
      loop->type = Type::kUnit;
      loop->flag = false;  // full values (Δ-mode set by §6.5)
      loop->kids.push_back(site.send_expr->clone());
      stmt.body = seq_append(std::move(stmt.body), std::move(loop));
    }
  }
}

}  // namespace deltav::dv
