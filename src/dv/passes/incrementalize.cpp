// §6.4 (aggregation memoization) and §6.5 (Δ-message insertion).
#include <sstream>

#include "dv/passes/passes.h"

namespace deltav::dv {

namespace {

void set_fold_incremental(Expr& e, int site) {
  if (e.kind == ExprKind::kFoldMessages && e.site == site) e.flag = true;
  for (auto& k : e.kids) set_fold_incremental(*k, site);
}

void convert_sends_to_delta(Program& prog, Expr& e, const AggSite& site) {
  if (e.kind == ExprKind::kSendLoop && e.site == site.id && !e.flag) {
    e.flag = true;  // Δ-mode
    // Eq. 10: the payload's "old" view — the sent expression evaluated
    // over the values saved at superstep start (o_f), or over the
    // persistent last-sent field in ϵ-slop mode.
    ExprPtr old_view;
    if (site.last_sent_slot >= 0) {
      const Field& ls =
          prog.fields[static_cast<std::size_t>(site.last_sent_slot)];
      old_view = mk_field_ref(site.last_sent_slot, ls.name, ls.type);
    } else {
      old_view = e.kids[0]->clone();
      for (std::size_t d = 0; d < site.dep_fields.size(); ++d) {
        const auto& sv =
            prog.scratch[static_cast<std::size_t>(site.old_scratch[d])];
        auto repl = mk_scratch_ref(site.old_scratch[d], sv.name, sv.type);
        old_view = substitute_field(*old_view, site.dep_fields[d], *repl);
      }
    }
    e.kids.push_back(std::move(old_view));
    return;
  }
  for (auto& k : e.kids) convert_sends_to_delta(prog, *k, site);
}

}  // namespace

void pass_incrementalize_aggregations(Program& prog, Diagnostics& diags) {
  for (AggSite& site : prog.sites) {
    if (site.is_channel()) continue;  // channels are never memoized: the
    // consume fold replays this iteration's replies from identity
    std::ostringstream acc_name;
    acc_name << "aggAccum_" << site.id;
    site.acc_slot = prog.add_field(acc_name.str(), site.elem_type,
                                   Field::Origin::kAccumulator, site.id);
    if (site.multiplicative()) {
      // Eq. 9's triple: nnAcc and aggNulls join aggAccum. (For && and ||
      // the non-absorbing value is the identity, so nnAcc carries no
      // information — it still exists to keep the runtime uniform and the
      // state accounting honest.)
      std::ostringstream nn_name, nulls_name;
      nn_name << "nnAcc_" << site.id;
      nulls_name << "aggNulls_" << site.id;
      site.nn_slot = prog.add_field(nn_name.str(), site.elem_type,
                                    Field::Origin::kNnAcc, site.id);
      site.nulls_slot = prog.add_field(nulls_name.str(), Type::kInt,
                                       Field::Origin::kNullCount, site.id);
    }
    if (is_idempotent(site.op))
      diags.warn(prog.loc,
                 std::string("memoized ") + agg_op_name(site.op) +
                     " aggregation (site " + std::to_string(site.id) +
                     ") is exact only under monotone updates (as in "
                     "SSSP/CC); see DESIGN.md");

    Stmt& stmt = prog.stmts[static_cast<std::size_t>(site.stmt_index)];
    set_fold_incremental(*stmt.body, site.id);

    // Fold-path classification: once the site is memoized (acc_slot
    // assigned above), a Δ-contribution is exactly one
    // acc = acc ⊞ payload with no counter bookkeeping — for
    // commutative-associative ⊞ that fold may run lock-free against the
    // accumulator slot. Integer + commutes exactly (wrapping two's
    // complement); min/max are idempotent re-folds. Float + re-associates
    // under concurrency, so it is only flagged for the opt-in path.
    if (!site.multiplicative()) {
      const bool numeric = site.elem_type == Type::kInt ||
                           site.elem_type == Type::kFloat;
      const bool exact =
          (site.op == AggOp::kSum && site.elem_type == Type::kInt) ||
          ((site.op == AggOp::kMin || site.op == AggOp::kMax) && numeric);
      site.atomic_ok = exact;
      site.atomic_float_ok =
          site.op == AggOp::kSum && site.elem_type == Type::kFloat;
    }
  }
}

void pass_delta_messages(Program& prog, const CompileOptions&,
                         Diagnostics&) {
  for (const AggSite& site : prog.sites) {
    if (site.is_channel()) continue;  // request/reply payloads stay whole
    Stmt& stmt = prog.stmts[static_cast<std::size_t>(site.stmt_index)];
    convert_sends_to_delta(prog, *stmt.body, site);
  }
}

namespace {

bool contains_remote(const Expr& e) {
  if (e.kind == ExprKind::kRemoteRead) return true;
  for (const auto& kid : e.kids)
    if (kid && contains_remote(*kid)) return true;
  return false;
}

}  // namespace

void pass_insert_halts(Program& prog, const TypecheckResult& analysis,
                       Diagnostics& diags) {
  for (std::size_t i = 0; i < prog.stmts.size(); ++i) {
    // Remote statements never halt: owners cannot know in advance which
    // vertices will request from them next iteration, so every vertex must
    // stay awake for the request/reply phases (the runner re-activates all
    // vertices each phase; quiescence is detected by message counts, see
    // runtime/runner.cpp). The contains_remote check covers the reference
    // interpretation (lower_remote = false), where kRemoteRead stays in the
    // body and no phases exist — halted owners there would never wake, as
    // reference reads send no messages at all.
    if (!prog.stmts[i].phases.empty() || contains_remote(*prog.stmts[i].body))
      continue;
    if (analysis.stmts[i].body_reads_iter_var)
      diags.warn(prog.stmts[i].loc,
                 "statement body reads the iteration variable; halted "
                 "vertices skip supersteps and may observe stale values");
    // Eq. 12: step{e} ; step{e; halt} (and likewise for iter bodies).
    prog.stmts[i].body = seq_append(std::move(prog.stmts[i].body), mk_halt());
  }
}

}  // namespace deltav::dv
