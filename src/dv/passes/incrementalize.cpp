// §6.4 (aggregation memoization) and §6.5 (Δ-message insertion).
#include <sstream>

#include "dv/passes/passes.h"

namespace deltav::dv {

namespace {

void set_fold_incremental(Expr& e, int site) {
  if (e.kind == ExprKind::kFoldMessages && e.site == site) e.flag = true;
  for (auto& k : e.kids) set_fold_incremental(*k, site);
}

// ----- retraction-memo eligibility (DESIGN.md §11) -----------------------
//
// A min/max site may route through the k-best retraction memo when the
// per-sender contribution the receiver memoizes is something the
// streaming layer can keep current. Two shapes qualify:
//
//   Class A (publish): the payload reads only fields no iter body ever
//   assigns (plus edge weight / degree / params / vertexId). Its value
//   per sender only changes at epoch boundaries, where apply_epoch
//   synthesizes a record per changed arc and touched sender.
//
//   Class B (feedback, min only): the payload is f + u.edge or
//   f + positive-literal over an iter-assigned f, and the body reads no
//   iter-assigned field outside send-loop subtrees — the pure
//   (unguarded) SSSP shape. A retraction then makes the accumulator
//   *rise*, the body republished value rises with it, and the
//   monotone-increasing repair reconverges because every cycle adds a
//   strictly positive translation (the runtime guards weight positivity
//   and caps runaway count-to-infinity climbs). Guarded relaxations
//   (`if best < dist`) stay ineligible: their guard pins the field at
//   the stale value, so the risen fixpoint would never be reached.
//
// The body scan must skip the change-check prologue the §6.3 pass
// spliced in *before* this pass runs: `o_f = f` old-copies and
// `dirtied = dirtied || (f != o_f)` flag updates read iter-assigned
// fields, but only to detect change — they never make the published
// value path-dependent.

void mark_stmt_field_writes(const Expr& e, std::vector<char>& written) {
  if (e.kind == ExprKind::kAssign &&
      e.assign_target == AssignTarget::kField && e.slot >= 0)
    written[static_cast<std::size_t>(e.slot)] = 1;
  for (const auto& k : e.kids)
    if (k) mark_stmt_field_writes(*k, written);
}

bool body_pure_outside_sends(const Program& prog, const Expr& e,
                             const std::vector<char>& written) {
  if (e.kind == ExprKind::kSendLoop) return true;  // recorded at the site
  if (e.kind == ExprKind::kAssign &&
      e.assign_target == AssignTarget::kScratch && e.slot >= 0) {
    const auto origin =
        prog.scratch[static_cast<std::size_t>(e.slot)].origin;
    if (origin == ScratchVar::Origin::kOldCopy ||
        origin == ScratchVar::Origin::kDirtyFlag)
      return true;  // §6.3 bookkeeping, not a semantic read
  }
  if (e.kind == ExprKind::kFieldRef && e.slot >= 0 &&
      written[static_cast<std::size_t>(e.slot)])
    return false;
  for (const auto& k : e.kids)
    if (k && !body_pure_outside_sends(prog, *k, written)) return false;
  return true;
}

/// Class A payload check: only reads of never-iter-assigned fields and
/// statically-safe leaves. (graphSize is allowed — warm_blocker blocks
/// vertex-count changes independently of the memo.)
bool payload_static(const Expr& e, const std::vector<char>& written) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kBoolLit:
    case ExprKind::kInfty:
    case ExprKind::kParamRef:
    case ExprKind::kEdgeWeight:
    case ExprKind::kDegree:
    case ExprKind::kGraphSize:
    case ExprKind::kVertexIdRef:
      return true;
    case ExprKind::kVarRef:
      return e.var_kind == VarKind::kParam;
    case ExprKind::kFieldRef:
      return e.slot >= 0 && !written[static_cast<std::size_t>(e.slot)];
    case ExprKind::kBinary:
    case ExprKind::kUnary:
    case ExprKind::kPairOp:
    case ExprKind::kIf:
      break;  // recurse
    default:
      return false;
  }
  for (const auto& k : e.kids)
    if (k && !payload_static(*k, written)) return false;
  return true;
}

/// Class B payload matcher: f + u.edge or f + positive-literal (either
/// operand order). Returns the field slot, or -1; sets *via_edge.
int match_feedback_payload(const Expr& e, bool* via_edge) {
  if (e.kind != ExprKind::kBinary || e.bin_op != BinOp::kAdd) return -1;
  if (e.kids.size() != 2) return -1;
  const auto positive_literal = [](const Expr& x) {
    return (x.kind == ExprKind::kIntLit && x.int_val > 0) ||
           (x.kind == ExprKind::kFloatLit && x.float_val > 0.0);
  };
  for (int order = 0; order < 2; ++order) {
    const Expr& f = *e.kids[static_cast<std::size_t>(order)];
    const Expr& t = *e.kids[static_cast<std::size_t>(1 - order)];
    if (f.kind != ExprKind::kFieldRef || f.slot < 0) continue;
    if (t.kind == ExprKind::kEdgeWeight) {
      *via_edge = true;
      return f.slot;
    }
    if (positive_literal(t)) {
      *via_edge = false;
      return f.slot;
    }
  }
  return -1;
}

void convert_sends_to_delta(Program& prog, Expr& e, const AggSite& site) {
  if (e.kind == ExprKind::kSendLoop && e.site == site.id && !e.flag) {
    e.flag = true;  // Δ-mode
    // Eq. 10: the payload's "old" view — the sent expression evaluated
    // over the values saved at superstep start (o_f), or over the
    // persistent last-sent field in ϵ-slop mode.
    ExprPtr old_view;
    if (site.last_sent_slot >= 0) {
      const Field& ls =
          prog.fields[static_cast<std::size_t>(site.last_sent_slot)];
      old_view = mk_field_ref(site.last_sent_slot, ls.name, ls.type);
    } else {
      old_view = e.kids[0]->clone();
      for (std::size_t d = 0; d < site.dep_fields.size(); ++d) {
        const auto& sv =
            prog.scratch[static_cast<std::size_t>(site.old_scratch[d])];
        auto repl = mk_scratch_ref(site.old_scratch[d], sv.name, sv.type);
        old_view = substitute_field(*old_view, site.dep_fields[d], *repl);
      }
    }
    e.kids.push_back(std::move(old_view));
    return;
  }
  for (auto& k : e.kids) convert_sends_to_delta(prog, *k, site);
}

}  // namespace

void pass_incrementalize_aggregations(Program& prog, Diagnostics& diags) {
  for (AggSite& site : prog.sites) {
    if (site.is_channel()) continue;  // channels are never memoized: the
    // consume fold replays this iteration's replies from identity
    std::ostringstream acc_name;
    acc_name << "aggAccum_" << site.id;
    site.acc_slot = prog.add_field(acc_name.str(), site.elem_type,
                                   Field::Origin::kAccumulator, site.id);
    if (site.multiplicative()) {
      // Eq. 9's triple: nnAcc and aggNulls join aggAccum. (For && and ||
      // the non-absorbing value is the identity, so nnAcc carries no
      // information — it still exists to keep the runtime uniform and the
      // state accounting honest.)
      std::ostringstream nn_name, nulls_name;
      nn_name << "nnAcc_" << site.id;
      nulls_name << "aggNulls_" << site.id;
      site.nn_slot = prog.add_field(nn_name.str(), site.elem_type,
                                    Field::Origin::kNnAcc, site.id);
      site.nulls_slot = prog.add_field(nulls_name.str(), Type::kInt,
                                       Field::Origin::kNullCount, site.id);
    }
    if (is_idempotent(site.op))
      diags.warn(prog.loc,
                 std::string("memoized ") + agg_op_name(site.op) +
                     " aggregation (site " + std::to_string(site.id) +
                     ") is exact only under monotone updates (as in "
                     "SSSP/CC); see DESIGN.md");

    Stmt& stmt = prog.stmts[static_cast<std::size_t>(site.stmt_index)];
    set_fold_incremental(*stmt.body, site.id);

    // Fold-path classification: once the site is memoized (acc_slot
    // assigned above), a Δ-contribution is exactly one
    // acc = acc ⊞ payload with no counter bookkeeping — for
    // commutative-associative ⊞ that fold may run lock-free against the
    // accumulator slot. Integer + commutes exactly (wrapping two's
    // complement); min/max are idempotent re-folds. Float + re-associates
    // under concurrency, so it is only flagged for the opt-in path.
    if (!site.multiplicative()) {
      const bool numeric = site.elem_type == Type::kInt ||
                           site.elem_type == Type::kFloat;
      const bool exact =
          (site.op == AggOp::kSum && site.elem_type == Type::kInt) ||
          ((site.op == AggOp::kMin || site.op == AggOp::kMax) && numeric);
      site.atomic_ok = exact;
      site.atomic_float_ok =
          site.op == AggOp::kSum && site.elem_type == Type::kFloat;
    }
  }

  // Retraction-memo classification (Class A / Class B above). Runs after
  // the site loop so every compiler field exists; reads the statement
  // bodies as change-checks left them.
  std::vector<char> written(prog.fields.size(), 0);
  for (const Stmt& stmt : prog.stmts)
    if (stmt.body) mark_stmt_field_writes(*stmt.body, written);
  bool body_pure = true;
  for (const Stmt& stmt : prog.stmts)
    if (stmt.body && !body_pure_outside_sends(prog, *stmt.body, written))
      body_pure = false;
  for (AggSite& site : prog.sites) {
    if (site.is_channel()) continue;
    if (site.op != AggOp::kMin && site.op != AggOp::kMax) continue;
    if (site.elem_type != Type::kInt && site.elem_type != Type::kFloat)
      continue;
    if (!body_pure) continue;
    const Expr* payload =
        site.init_send_expr ? site.init_send_expr.get() : site.send_expr.get();
    if (payload == nullptr) continue;
    if (payload_static(*payload, written)) {
      site.memo_ok = true;  // Class A: publish shape
      continue;
    }
    if (site.op != AggOp::kMin) continue;
    bool via_edge = false;
    const int f = match_feedback_payload(*payload, &via_edge);
    if (f >= 0 && written[static_cast<std::size_t>(f)]) {
      site.memo_ok = true;  // Class B: pure min-plus feedback
      site.memo_edge_feedback = via_edge;
    }
  }
}

void pass_delta_messages(Program& prog, const CompileOptions&,
                         Diagnostics&) {
  for (const AggSite& site : prog.sites) {
    if (site.is_channel()) continue;  // request/reply payloads stay whole
    Stmt& stmt = prog.stmts[static_cast<std::size_t>(site.stmt_index)];
    convert_sends_to_delta(prog, *stmt.body, site);
  }
}

namespace {

bool contains_remote(const Expr& e) {
  if (e.kind == ExprKind::kRemoteRead) return true;
  for (const auto& kid : e.kids)
    if (kid && contains_remote(*kid)) return true;
  return false;
}

}  // namespace

void pass_insert_halts(Program& prog, const TypecheckResult& analysis,
                       Diagnostics& diags) {
  for (std::size_t i = 0; i < prog.stmts.size(); ++i) {
    // Remote statements never halt: owners cannot know in advance which
    // vertices will request from them next iteration, so every vertex must
    // stay awake for the request/reply phases (the runner re-activates all
    // vertices each phase; quiescence is detected by message counts, see
    // runtime/runner.cpp). The contains_remote check covers the reference
    // interpretation (lower_remote = false), where kRemoteRead stays in the
    // body and no phases exist — halted owners there would never wake, as
    // reference reads send no messages at all.
    if (!prog.stmts[i].phases.empty() || contains_remote(*prog.stmts[i].body))
      continue;
    if (analysis.stmts[i].body_reads_iter_var)
      diags.warn(prog.stmts[i].loc,
                 "statement body reads the iteration variable; halted "
                 "vertices skip supersteps and may observe stale values");
    // Eq. 12: step{e} ; step{e; halt} (and likewise for iter bodies).
    prog.stmts[i].body = seq_append(std::move(prog.stmts[i].body), mk_halt());
  }
}

}  // namespace deltav::dv
