// The compile-time transformation passes of §6, in pipeline order.
//
// Each pass is a function that rewrites the Program in place, mirroring the
// paper's context-rewriting rules (C[e] ; C[e']). The compiler facade
// (dv/compiler.h) assembles them according to CompileOptions:
//
//   ΔV  : anormalize → aggregation_conversion → state_binding →
//         change_checks → incrementalize_aggregations → delta_messages →
//         insert_halts
//   ΔV* : anormalize → aggregation_conversion → state_binding →
//         assigned_send_policy
#pragma once

#include "dv/ast.h"
#include "dv/compile_options.h"
#include "dv/diagnostics.h"
#include "dv/typecheck.h"

namespace deltav::dv {

/// §6.1 (first bullet): A-normalize with respect to aggregations — every
/// ⊞[e|u←д] that is not the immediate right-hand side of a let or an
/// assignment is hoisted into a fresh let binding.
void pass_anormalize(Program& prog, Diagnostics& diags);

/// §6.1: pull→push conversion. Registers one AggSite per aggregation,
/// replaces each ⊞[e|u←д] with a message fold (Eq. 3, non-incremental),
/// and appends one broadcast send loop per site (full values, unguarded)
/// to the owning statement's body. The initial push after init (the
/// "first superstep" sends) is performed by the runtime from the site
/// table — see runtime/runner.h.
void pass_aggregation_conversion(Program& prog, Diagnostics& diags);

/// Remote-read lowering (DESIGN.md "Remote reads"; Palgol's request/
/// response compilation scheme). For every statement whose body contains
/// remote(e).f reads, allocates one kRequest/kReply channel-site pair per
/// distinct (target expression, field), builds two phase expressions —
/// phases[0] sends each request (kSendTo: requester id to the wrapped
/// target vertex), phases[1] answers them (kReplyLoop: the owner's field
/// value back to each requester) — and rewrites every remote read in the
/// body into a non-incremental fold of the reply channel (kFoldMessages).
/// Runs after aggregation conversion (it appends to the same site table)
/// and before state binding; channel sites are invisible to every
/// aggregation-specific pass downstream.
void pass_remote_lower(Program& prog, Diagnostics& diags);

/// §6.2: binds every sent expression that is not already a vertex field to
/// a fresh state field (A-normalization into vertex state). Sent
/// expressions that depend on the connecting edge (u.edge) cannot be a
/// single field and are left in place; change tracking then falls back to
/// their field dependencies (documented refinement, DESIGN.md).
void pass_state_binding(Program& prog, Diagnostics& diags);

/// ΔV* send policy: sends fire only in supersteps where one of the sent
/// expression's fields was assigned (see DESIGN.md §2 on why this is the
/// paper's measured ΔV* behaviour).
void pass_assigned_send_policy(Program& prog, Diagnostics& diags);

/// §6.3: change checks. Saves old copies of externally-visible fields at
/// superstep start (Eq. 5's o_f), dirties a per-site flag on assignments
/// that change the value, and guards send loops with the dirty flag
/// (Eq. 6/7). With options.epsilon > 0 the check becomes |new − last_sent|
/// > ε against a persistent last-sent field (§9 future work).
void pass_change_checks(Program& prog, const CompileOptions& options,
                        Diagnostics& diags);

/// §6.4: memoizes each aggregation in an accumulator field (Eq. 8); for
/// multiplicative operators adds the (nnAcc, aggNulls, aggAccum) triple
/// (Eq. 9).
void pass_incrementalize_aggregations(Program& prog, Diagnostics& diags);

/// §6.5: converts send payloads to Δ-messages: send(u, xf) ;
/// send(u, Δ_old(xf)) (Eq. 10), with Δ synthesized per operator so that
/// Eq. 11 holds (see runtime/delta.h for the synthesis itself).
void pass_delta_messages(Program& prog, const CompileOptions& options,
                         Diagnostics& diags);

/// §6.6: appends halt to every statement body (Eq. 12). Warns when a body
/// reads the iteration variable (halted vertices skip supersteps, so such
/// programs may observe stale i).
void pass_insert_halts(Program& prog, const TypecheckResult& analysis,
                       Diagnostics& diags);

// --- shared helpers used by several passes (exposed for unit tests) ---

/// Collects the field slots read by `e` (kFieldRef occurrences).
std::vector<int> collect_field_reads(const Expr& e);

/// Clones `e`, replacing reads of field `slot` with the given replacement
/// expression (deep-copied at each occurrence).
ExprPtr substitute_field(const Expr& e, int slot, const Expr& replacement);

}  // namespace deltav::dv
