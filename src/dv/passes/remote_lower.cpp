// Remote-read lowering: remote(e).f → request/response superstep pair.
//
// A remote read asks for another vertex's field — something the Pregel
// model cannot answer inside one superstep. Following Palgol's compilation
// scheme (PAPERS.md), each logical iteration of a remote statement becomes
// three supersteps:
//
//   phase 0 (request): every vertex evaluates the target expression
//                      against iteration-start state and sends its own id
//                      to the wrapped target vertex on the request channel
//                      (kSendTo).
//   phase 1 (reply):   every vertex that received requests answers each
//                      one with its field value on the reply channel
//                      (kReplyLoop).
//   body (consume):    the original statement body, with every remote read
//                      rewritten into a non-incremental fold of the reply
//                      channel (kFoldMessages, flag = false). Exactly one
//                      reply arrives per request, so folding from the
//                      operator identity recovers the value unchanged.
//
// Channels are AggSite rows with a non-kAgg role: they ride the existing
// message plumbing (site ids, wire formats, engine delivery) but have no
// send loop, no accumulator, no Δ-synthesis — every aggregation-specific
// pass and runner mechanism skips them by role. Since typecheck bans
// mixing ⊞ and remote reads in one statement, the request/reply traffic
// never shares a superstep with ordinary aggregation messages, and the
// fold in the consume superstep sees only replies.
#include <map>
#include <sstream>
#include <utility>

#include "dv/passes/passes.h"

namespace deltav::dv {

namespace {

bool contains_remote(const Expr& e) {
  if (e.kind == ExprKind::kRemoteRead) return true;
  for (const auto& k : e.kids)
    if (contains_remote(*k)) return true;
  return false;
}

/// One request/reply channel pair for a distinct (target, field) read.
struct Channel {
  int request_site = -1;
  int reply_site = -1;
};

struct Lowerer {
  Program& prog;
  std::size_t stmt_index;
  /// Keyed by (field slot, printed target expression): two occurrences of
  /// the same read share one channel pair (and one request message).
  std::map<std::pair<int, std::string>, Channel> channels;
  std::vector<ExprPtr> requests;  // phase 0 items, in discovery order
  std::vector<ExprPtr> replies;   // phase 1 items, in discovery order

  Channel& channel_for(const Expr& read) {
    const auto key = std::make_pair(read.slot, to_string(*read.kids[0]));
    auto it = channels.find(key);
    if (it != channels.end()) return it->second;

    const Field& f = prog.fields[static_cast<std::size_t>(read.slot)];
    AggSite req;
    req.id = static_cast<int>(prog.sites.size());
    req.role = AggSite::Role::kRequest;
    req.op = AggOp::kSum;  // payload is a vertex id; never folded
    req.elem_type = Type::kInt;
    req.stmt_index = static_cast<int>(stmt_index);
    prog.sites.push_back(std::move(req));

    AggSite rep;
    rep.id = static_cast<int>(prog.sites.size());
    rep.role = AggSite::Role::kReply;
    // The consume fold starts from the operator identity and folds the
    // single reply: identity ⊞ v = v needs + for numbers, || for bools.
    rep.op = f.type == Type::kBool ? AggOp::kOr : AggOp::kSum;
    rep.elem_type = f.type;
    rep.stmt_index = static_cast<int>(stmt_index);
    rep.remote_field = read.slot;
    prog.sites.push_back(std::move(rep));

    Channel ch{prog.sites[prog.sites.size() - 2].id,
               prog.sites.back().id};

    auto send = mk(ExprKind::kSendTo, read.loc);
    send->site = ch.request_site;
    send->type = Type::kUnit;
    send->kids.push_back(read.kids[0]->clone());
    requests.push_back(std::move(send));

    auto reply = mk(ExprKind::kReplyLoop, read.loc);
    reply->site = ch.request_site;
    reply->int_val = ch.reply_site;
    reply->slot = read.slot;
    reply->name = f.name;
    reply->type = Type::kUnit;
    replies.push_back(std::move(reply));

    return channels.emplace(key, ch).first->second;
  }

  /// Rewrites every kRemoteRead under `e` into a reply-channel fold.
  void rewrite(ExprPtr& e) {
    if (e->kind == ExprKind::kRemoteRead) {
      const Channel& ch = channel_for(*e);
      const AggSite& rep =
          prog.sites[static_cast<std::size_t>(ch.reply_site)];
      auto fold = mk(ExprKind::kFoldMessages, e->loc);
      fold->site = ch.reply_site;
      fold->agg_op = rep.op;
      fold->flag = false;  // fold from identity; exactly one reply
      fold->type = rep.elem_type;
      e = std::move(fold);
      return;
    }
    for (auto& k : e->kids) rewrite(k);
  }
};

}  // namespace

void pass_remote_lower(Program& prog, Diagnostics&) {
  for (std::size_t si = 0; si < prog.stmts.size(); ++si) {
    Stmt& stmt = prog.stmts[si];
    if (!contains_remote(*stmt.body)) continue;
    Lowerer lower{prog, si, {}, {}, {}};
    lower.rewrite(stmt.body);
    DV_CHECK(!lower.requests.empty());
    stmt.phases.clear();
    stmt.phases.push_back(lower.requests.size() == 1
                              ? std::move(lower.requests.front())
                              : mk_seq(std::move(lower.requests)));
    stmt.phases.push_back(lower.replies.size() == 1
                              ? std::move(lower.replies.front())
                              : mk_seq(std::move(lower.replies)));
  }
}

}  // namespace deltav::dv
