// AST well-formedness verifier.
//
// Run after every transformation pass (compile() wires it in): checks the
// structural invariants the interpreter and later passes rely on, so a
// buggy pass fails loudly at compile time instead of corrupting a
// computation superstep 40 into a run. Each rule names the pass whose
// output it polices.
#pragma once

#include "dv/ast.h"
#include "dv/diagnostics.h"

namespace deltav::dv {

/// Pipeline progress marker: which invariants apply.
enum class VerifyStage {
  kAfterTypecheck,   // surface forms only; everything typed & resolved
  kAfterConversion,  // no kAgg/kNeighborField; folds & send loops exist
  kFinal,            // fully compiled (either variant)
};

/// Throws CheckError with a description of the first violation.
void verify_program(const Program& prog, VerifyStage stage);

}  // namespace deltav::dv
