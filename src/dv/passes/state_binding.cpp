#include <sstream>

#include "dv/passes/passes.h"

namespace deltav::dv {

namespace {

bool contains_edge_weight(const Expr& e) {
  if (e.kind == ExprKind::kEdgeWeight) return true;
  for (const auto& k : e.kids)
    if (contains_edge_weight(*k)) return true;
  return false;
}

/// Finds the index of the top-level send loop for `site` in the statement
/// body (which is a kSeq after aggregation conversion appended loops).
std::size_t find_send_loop(const Expr& body, int site) {
  DV_CHECK(body.kind == ExprKind::kSeq);
  for (std::size_t i = 0; i < body.kids.size(); ++i)
    if (body.kids[i]->kind == ExprKind::kSendLoop &&
        body.kids[i]->site == site)
      return i;
  DV_FAIL("send loop for site " << site << " not found");
}

}  // namespace

void pass_state_binding(Program& prog, Diagnostics& diags) {
  for (AggSite& site : prog.sites) {
    if (site.is_channel()) continue;  // request/reply channels carry no
    // sender-side element expression (remote_lower.cpp)
    if (site.send_expr->kind == ExprKind::kFieldRef) continue;  // "unless e
    // is already a field of the vertex" (§6.2)
    if (contains_edge_weight(*site.send_expr)) {
      // Per-edge payloads cannot be memoized in a single field; change
      // tracking falls back to the expression's field dependencies
      // (DESIGN.md documented refinement).
      diags.warn(site.send_expr->loc,
                 "sent expression depends on the connecting edge; binding "
                 "its field dependencies instead of the whole value");
      continue;
    }

    std::ostringstream name;
    name << "sent_" << site.id;
    const int slot = prog.add_field(name.str(), site.elem_type,
                                    Field::Origin::kSentBinding, site.id);

    Stmt& stmt = prog.stmts[static_cast<std::size_t>(site.stmt_index)];
    const std::size_t loop_at = find_send_loop(*stmt.body, site.id);
    Expr& loop = *stmt.body->kids[loop_at];

    // Eq. 4: freshVar = e; send(u, freshVar).
    auto bind = mk_assign_field(slot, name.str(), std::move(loop.kids[0]));
    loop.kids[0] = mk_field_ref(slot, name.str(), site.elem_type);
    stmt.body->kids.insert(
        stmt.body->kids.begin() + static_cast<std::ptrdiff_t>(loop_at),
        std::move(bind));

    site.init_send_expr = std::move(site.send_expr);
    site.send_expr = mk_field_ref(slot, name.str(), site.elem_type);
    site.dep_fields = {slot};
    site.bound_field = slot;
  }
}

}  // namespace deltav::dv
