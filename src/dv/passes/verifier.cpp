#include "dv/passes/verifier.h"

#include <sstream>

#include "common/check.h"

namespace deltav::dv {

namespace {

struct Verifier {
  const Program& prog;
  VerifyStage stage;

  [[noreturn]] void fail(const Expr& e, const std::string& msg) const {
    DV_FAIL("AST verifier: " << msg << " (node " << expr_kind_name(e.kind)
                             << " at " << e.loc.to_string() << ")");
  }

  void check_kid_count(const Expr& e, std::size_t lo, std::size_t hi) const {
    if (e.kids.size() < lo || e.kids.size() > hi)
      fail(e, "wrong number of children: " + std::to_string(e.kids.size()));
  }

  void check_field_slot(const Expr& e, int slot) const {
    if (slot < 0 || static_cast<std::size_t>(slot) >= prog.fields.size())
      fail(e, "field slot " + std::to_string(slot) + " out of range");
  }

  void check_scratch_slot(const Expr& e, int slot) const {
    if (slot < 0 || static_cast<std::size_t>(slot) >= prog.scratch.size())
      fail(e, "scratch slot " + std::to_string(slot) + " out of range");
  }

  void check_site(const Expr& e, int site) const {
    if (site < 0 || static_cast<std::size_t>(site) >= prog.sites.size())
      fail(e, "site id " + std::to_string(site) + " out of range");
  }

  void walk(const Expr& e) const {
    if (e.type == Type::kUnknown) fail(e, "untyped node");
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kBoolLit:
      case ExprKind::kInfty:
      case ExprKind::kGraphSize:
      case ExprKind::kVertexIdRef:
      case ExprKind::kStableRef:
      case ExprKind::kEdgeWeight:
      case ExprKind::kDegree:
      case ExprKind::kHalt:
        check_kid_count(e, 0, 0);
        break;
      case ExprKind::kVarRef:
        check_kid_count(e, 0, 0);
        if (e.var_kind == VarKind::kUnresolved)
          fail(e, "unresolved variable '" + e.name + "'");
        if (e.var_kind == VarKind::kLet) check_scratch_slot(e, e.slot);
        break;
      case ExprKind::kFieldRef:
        check_kid_count(e, 0, 0);
        check_field_slot(e, e.slot);
        if (e.type != prog.fields[static_cast<std::size_t>(e.slot)].type)
          fail(e, "field-ref type disagrees with field table");
        break;
      case ExprKind::kScratchRef:
        check_kid_count(e, 0, 0);
        check_scratch_slot(e, e.slot);
        break;
      case ExprKind::kParamRef:
        check_kid_count(e, 0, 0);
        if (e.slot < 0 ||
            static_cast<std::size_t>(e.slot) >= prog.params.size())
          fail(e, "param index out of range");
        break;
      case ExprKind::kBinary:
        check_kid_count(e, 2, 2);
        break;
      case ExprKind::kUnary:
        check_kid_count(e, 1, 1);
        break;
      case ExprKind::kPairOp:
        check_kid_count(e, 2, 2);
        break;
      case ExprKind::kIf:
        check_kid_count(e, 2, 3);
        if (e.kids[0]->type != Type::kBool)
          fail(e, "if condition is not bool");
        break;
      case ExprKind::kLet:
        check_kid_count(e, 2, 2);
        check_scratch_slot(e, e.slot);
        break;
      case ExprKind::kSeq:
        if (e.kids.empty()) fail(e, "empty sequence");
        break;
      case ExprKind::kAssign:
        check_kid_count(e, 1, 1);
        if (e.assign_target == AssignTarget::kField)
          check_field_slot(e, e.slot);
        else
          check_scratch_slot(e, e.slot);
        break;
      case ExprKind::kLocalDecl:
        check_kid_count(e, 1, 1);
        check_field_slot(e, e.slot);
        break;
      case ExprKind::kAgg:
        check_kid_count(e, 1, 1);
        if (stage != VerifyStage::kAfterTypecheck)
          fail(e, "aggregation survived conversion (§6.1 pass bug)");
        break;
      case ExprKind::kNeighborField:
        if (stage != VerifyStage::kAfterTypecheck)
          fail(e, "neighbor field survived conversion (§6.1 pass bug)");
        check_field_slot(e, e.slot);
        break;
      case ExprKind::kRemoteRead:
        // Legal in source programs and — when compiled with
        // lower_remote = false for the reference interpretation — all the
        // way through the pipeline.
        check_kid_count(e, 1, 1);
        check_field_slot(e, e.slot);
        if (e.kids[0]->type != Type::kInt)
          fail(e, "remote target is not an int vertex id");
        break;
      case ExprKind::kSendTo: {
        check_kid_count(e, 1, 1);
        if (stage == VerifyStage::kAfterTypecheck)
          fail(e, "internal form before conversion");
        check_site(e, e.site);
        const AggSite& site = prog.sites[static_cast<std::size_t>(e.site)];
        if (site.role != AggSite::Role::kRequest)
          fail(e, "send-to targets a non-request site");
        if (e.kids[0]->type != Type::kInt)
          fail(e, "send-to target is not an int vertex id");
        break;
      }
      case ExprKind::kReplyLoop: {
        check_kid_count(e, 0, 0);
        if (stage == VerifyStage::kAfterTypecheck)
          fail(e, "internal form before conversion");
        check_site(e, e.site);
        check_site(e, static_cast<int>(e.int_val));
        check_field_slot(e, e.slot);
        const AggSite& req = prog.sites[static_cast<std::size_t>(e.site)];
        const AggSite& rep =
            prog.sites[static_cast<std::size_t>(e.int_val)];
        if (req.role != AggSite::Role::kRequest)
          fail(e, "reply loop reads a non-request site");
        if (rep.role != AggSite::Role::kReply)
          fail(e, "reply loop answers on a non-reply site");
        if (rep.remote_field != e.slot)
          fail(e, "reply loop field disagrees with the reply site");
        break;
      }
      case ExprKind::kFoldMessages: {
        check_kid_count(e, 0, 0);
        if (stage == VerifyStage::kAfterTypecheck)
          fail(e, "internal form before conversion");
        check_site(e, e.site);
        const AggSite& site = prog.sites[static_cast<std::size_t>(e.site)];
        if (e.agg_op != site.op) fail(e, "fold operator disagrees with site");
        if (e.flag && site.acc_slot < 0)
          fail(e, "incremental fold but site has no accumulator (§6.4)");
        if (e.flag && site.multiplicative() &&
            (site.nn_slot < 0 || site.nulls_slot < 0))
          fail(e, "multiplicative fold missing nnAcc/aggNulls (§6.4.1)");
        break;
      }
      case ExprKind::kSendLoop: {
        if (stage == VerifyStage::kAfterTypecheck)
          fail(e, "internal form before conversion");
        check_site(e, e.site);
        check_kid_count(e, e.flag ? 2 : 1, e.flag ? 2 : 1);
        const AggSite& site = prog.sites[static_cast<std::size_t>(e.site)];
        if (e.dir != push_direction(site.pull_dir))
          fail(e, "send loop direction is not the site's push direction");
        break;
      }
    }
    for (const auto& k : e.kids) walk(*k);
  }

  void check_sites() const {
    for (std::size_t i = 0; i < prog.sites.size(); ++i) {
      const AggSite& s = prog.sites[i];
      DV_CHECK_MSG(s.id == static_cast<int>(i), "site ids not dense");
      DV_CHECK_MSG(
          s.stmt_index >= 0 &&
              static_cast<std::size_t>(s.stmt_index) < prog.stmts.size(),
          "site statement index out of range");
      if (s.is_channel()) {
        // Request/reply channels have no sender-side element expression
        // and must stay invisible to the aggregation machinery.
        DV_CHECK_MSG(s.send_expr == nullptr && s.init_send_expr == nullptr,
                     "channel site with a send expression");
        DV_CHECK_MSG(s.acc_slot < 0 && s.nn_slot < 0 && s.nulls_slot < 0,
                     "channel site acquired accumulator state");
        DV_CHECK_MSG(!s.atomic_ok, "channel site routed to the atomic path");
        if (s.role == AggSite::Role::kReply)
          DV_CHECK_MSG(s.remote_field >= 0 &&
                           static_cast<std::size_t>(s.remote_field) <
                               prog.fields.size(),
                       "reply site without a valid field");
        continue;
      }
      DV_CHECK_MSG(s.send_expr != nullptr, "site without send expression");
      walk(*s.send_expr);
      for (int f : s.dep_fields)
        DV_CHECK_MSG(
            f >= 0 && static_cast<std::size_t>(f) < prog.fields.size(),
            "site dep-field out of range");
    }
  }

  void run() const {
    DV_CHECK_MSG(prog.init != nullptr, "program without init block");
    walk(*prog.init);
    for (const auto& stmt : prog.stmts) {
      DV_CHECK_MSG(stmt.body != nullptr, "statement without body");
      walk(*stmt.body);
      for (const auto& phase : stmt.phases) {
        DV_CHECK_MSG(stage != VerifyStage::kAfterTypecheck,
                     "statement phases before remote lowering");
        walk(*phase);
      }
      if (stmt.kind == Stmt::Kind::kIter) {
        DV_CHECK_MSG(stmt.until != nullptr, "iter without until");
        walk(*stmt.until);
      }
    }
    if (stage != VerifyStage::kAfterTypecheck) check_sites();
  }
};

}  // namespace

void verify_program(const Program& prog, VerifyStage stage) {
  Verifier{prog, stage}.run();
}

}  // namespace deltav::dv
