#include "dv/serve/registry.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "dv/persist/snapshot.h"
#include "dv/programs/programs.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"

namespace deltav::dv::serve {

bool program_is_path(const std::string& program) {
  if (program.find('/') != std::string::npos) return true;
  return program.size() > 3 &&
         program.compare(program.size() - 3, 3, ".dv") == 0;
}

const char* builtin_program_source(const std::string& name) {
  if (name == "pagerank") return programs::kPageRank;
  if (name == "pagerank-ug") return programs::kPageRankUndirected;
  if (name == "sssp") return programs::kSssp;
  if (name == "sssp_retract") return programs::kSsspRetract;
  if (name == "cc") return programs::kConnectedComponents;
  if (name == "hits") return programs::kHits;
  if (name == "reachability") return programs::kReachability;
  if (name == "maxgossip") return programs::kMaxGossip;
  if (name == "bfs") return programs::kBfs;
  if (name == "kcore") return programs::kKCore;
  if (name == "mis") return programs::kMis;
  if (name == "pointerjump") return programs::kPointerJump;
  DV_FAIL("unknown built-in program '"
          << name
          << "' (try pagerank, pagerank-ug, sssp, sssp_retract, cc, hits, "
             "reachability, maxgossip, bfs, kcore, mis, pointerjump — or "
             "pass a path to a .dv file)");
}

std::string load_program_source(const std::string& program) {
  DV_CHECK_MSG(!program.empty(), "empty program spec");
  if (!program_is_path(program)) return builtin_program_source(program);
  std::ifstream in(program);
  DV_CHECK_MSG(in.good(), "cannot open ΔV source '" << program << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

graph::CsrGraph load_graph_spec(const std::string& spec, bool undirected,
                                bool weighted) {
  DV_CHECK_MSG(!spec.empty(), "empty graph spec");
  if (spec.rfind("rmat:", 0) == 0) {
    // rmat:<scale>x<degree>[:seed] — 2^scale vertices, degree·2^scale
    // edges. Deterministic in the seed, so a bench or test naming the
    // same spec twice serves the same graph.
    const std::string body = spec.substr(5);
    const auto x = body.find('x');
    DV_CHECK_MSG(x != std::string::npos,
                 "graph spec '" << spec
                                << "' is not rmat:<scale>x<degree>[:seed]");
    const auto colon = body.find(':', x);
    try {
      const int scale = std::stoi(body.substr(0, x));
      const int degree = std::stoi(
          body.substr(x + 1, colon == std::string::npos ? std::string::npos
                                                        : colon - x - 1));
      const std::uint64_t seed =
          colon == std::string::npos
              ? 42
              : static_cast<std::uint64_t>(std::stoull(body.substr(colon + 1)));
      DV_CHECK_MSG(scale > 0 && scale < 31 && degree > 0,
                   "graph spec '" << spec << "' out of range");
      const std::size_t n = std::size_t{1} << scale;
      graph::RmatOptions ropts;
      ropts.directed = !undirected;
      ropts.weighted = weighted;
      return graph::rmat(n, n * static_cast<std::size_t>(degree), seed,
                         ropts);
    } catch (const std::invalid_argument&) {
      DV_FAIL("graph spec '" << spec
                             << "' is not rmat:<scale>x<degree>[:seed]");
    } catch (const std::out_of_range&) {
      DV_FAIL("graph spec '" << spec << "' out of range");
    }
  }
  graph::EdgeListOptions gopts;
  gopts.directed = !undirected;
  gopts.weighted = weighted;
  return graph::read_edge_list_file(spec, gopts);
}

std::map<std::string, Value> parse_params(const std::string& spec) {
  std::map<std::string, Value> params;
  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    DV_CHECK_MSG(eq != std::string::npos,
                 "params expect name=value, got '" << item << "'");
    const std::string name = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (value.find('.') != std::string::npos) {
        params[name] = Value::of_float(std::stod(value));
      } else {
        params[name] = Value::of_int(std::stoll(value));
      }
    } catch (const std::logic_error&) {
      DV_FAIL("param '" << item << "' has a malformed value");
    }
  }
  return params;
}

std::shared_ptr<SessionHost> Registry::create(const CreateSpec& spec) {
  DV_CHECK_MSG(!spec.name.empty(), "session name must be non-empty");
  {
    std::lock_guard<std::mutex> lock(mu_);
    DV_CHECK_MSG(sessions_.find(spec.name) == sessions_.end(),
                 "session '" << spec.name << "' already exists");
  }

  // CompiledProgram is move-only (the AST owns its expression trees), so
  // each construction attempt compiles its own copy — compilation is
  // cheap next to the convergence the host is about to run.
  const std::string source = load_program_source(spec.program);
  CompileOptions copts;
  copts.epsilon = spec.epsilon;
  const auto make_options = [&] {
    HostOptions hopts = spec.host;
    hopts.session.run.params = parse_params(spec.params);
    hopts.program_label = spec.program;
    hopts.graph_label = spec.graph;
    return hopts;
  };

  std::shared_ptr<SessionHost> host;
  if (!spec.restore_from.empty()) {
    try {
      host = std::make_shared<SessionHost>(
          spec.name, compile(source, copts),
          persist::read_file_bytes(spec.restore_from), make_options());
    } catch (const persist::SnapshotError& e) {
      // Detected, never decoded: with a graph spec the daemon degrades to
      // a cold reconvergence instead of refusing to serve.
      DV_CHECK_MSG(!spec.graph.empty(),
                   "restore of '" << spec.restore_from
                                  << "' rejected (" << e.what()
                                  << ") and no graph spec to rebuild from");
    }
  }
  if (!host) {
    host = std::make_shared<SessionHost>(
        spec.name, compile(source, copts),
        load_graph_spec(spec.graph, spec.undirected, spec.weighted),
        make_options());
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check under the lock: a racing CREATE of the same name loses.
    const bool inserted = sessions_.emplace(spec.name, host).second;
    DV_CHECK_MSG(inserted, "session '" << spec.name << "' already exists");
  }
  return host;
}

std::shared_ptr<SessionHost> Registry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

bool Registry::close(const std::string& name) {
  std::shared_ptr<SessionHost> victim;  // destroyed outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) return false;
  victim = std::move(it->second);
  sessions_.erase(it);
  return true;
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, host] : sessions_) out.push_back(name);
  return out;
}

std::vector<std::shared_ptr<SessionHost>> Registry::hosts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<SessionHost>> out;
  out.reserve(sessions_.size());
  for (const auto& [name, host] : sessions_) out.push_back(host);
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

obs::MetricsRegistry::Snapshot merged_metrics(const Registry& registry) {
  obs::MetricsRegistry::Snapshot merged;
  for (const auto& host : registry.hosts()) {
    const obs::Collector* col = host->collector();
    if (col == nullptr) continue;
    const obs::MetricsRegistry::Snapshot snap = col->metrics.snapshot();
    for (const auto& [name, n] : snap.counters) merged.counters[name] += n;
    for (const auto& [name, v] : snap.gauges) merged.gauges[name] = v;
    for (const auto& [name, h] : snap.histograms) {
      auto& m = merged.histograms[name];
      if (m.count == 0) {
        m = h;
      } else if (h.count > 0) {
        m.count += h.count;
        m.sum += h.sum;
        if (h.min < m.min) m.min = h.min;
        if (h.max > m.max) m.max = h.max;
      }
    }
  }
  return merged;
}

}  // namespace deltav::dv::serve
