#include "dv/serve/session_host.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/timer.h"

namespace deltav::dv::serve {

graph::MutationBatch merge_batches(
    std::vector<graph::MutationBatch> batches) {
  graph::MutationBatch merged;
  for (graph::MutationBatch& b : batches) {
    merged.edges.insert(merged.edges.end(), b.edges.begin(), b.edges.end());
    merged.add_vertices += b.add_vertices;
    merged.detach_vertices.insert(merged.detach_vertices.end(),
                                  b.detach_vertices.begin(),
                                  b.detach_vertices.end());
  }
  return merged;
}

std::size_t batch_ops(const graph::MutationBatch& b) {
  return b.edges.size() + (b.add_vertices > 0 ? 1 : 0) +
         b.detach_vertices.size();
}

SessionHost::SessionHost(std::string name, CompiledProgram cp,
                         graph::CsrGraph base, HostOptions options)
    : name_(std::move(name)), cp_(std::move(cp)),
      options_(std::move(options)) {
  if (options_.collect_metrics) {
    collector_ = std::make_unique<obs::Collector>();
    options_.session.run.collector = collector_.get();
  }
  session_ = streaming::make_stream_session(cp_, std::move(base),
                                            options_.session);
  start();
}

SessionHost::SessionHost(std::string name, CompiledProgram cp,
                         std::vector<std::uint8_t> snapshot,
                         HostOptions options)
    : name_(std::move(name)), cp_(std::move(cp)),
      options_(std::move(options)) {
  if (options_.collect_metrics) {
    collector_ = std::make_unique<obs::Collector>();
    options_.session.run.collector = collector_.get();
  }
  // Throws persist::SnapshotError on damage/mismatch — before the engine
  // thread exists, so a failed restore never leaves a half-started host.
  session_ = streaming::DvStreamSession::restore_bytes(
      cp_, std::move(snapshot), options_.session);
  start();
}

SessionHost::~SessionHost() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  cv_state_.notify_all();
  if (engine_.joinable()) engine_.join();
}

void SessionHost::start() {
  engine_ = std::thread([this] { run(); });
}

void SessionHost::add_counter(obs::Counter c, std::uint64_t n) const {
  // add_named rather than a shard write: serve events fire at request
  // rate from whichever thread handled the request, so the mutex-guarded
  // dynamic path is the one that keeps the per-lane shards single-writer.
  // snapshot() sums the named series into the fixed counter of the same
  // name, so the catalogue entry and these increments read as one series.
  if (collector_) collector_->metrics.add_named(obs::counter_name(c), n);
}

void SessionHost::fail(const std::string& what) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    failed_ = true;
    error_ = what;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.failed = true;
    stats_.error = what;
  }
  cv_state_.notify_all();
  cv_space_.notify_all();
}

void SessionHost::publish_epoch(double epoch_seconds,
                                const streaming::SessionEpoch* ep,
                                std::size_t coalesced) {
  // Engine thread only: result() and graph() are owner-thread entry
  // points. The copy out of the runner is the double buffer's back half.
  DvRunResult result = session_->result();
  const std::size_t vertices = result.num_vertices;
  const std::size_t arcs = session_->graph().num_arcs();
  const std::size_t epoch = session_->epoch();
  view_.publish(epoch, std::move(result));

  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.epoch = epoch;
  stats_.vertices = vertices;
  stats_.arcs = arcs;
  if (ep != nullptr) {
    ++stats_.epochs_committed;
    (ep->warm ? stats_.warm_epochs : stats_.cold_epochs)++;
    stats_.supersteps += ep->stats.supersteps;
    stats_.messages += ep->stats.messages;
    stats_.epoch_seconds_sum += epoch_seconds;
    if (coalesced > stats_.max_coalesced) stats_.max_coalesced = coalesced;
    if (coalesced > 1) stats_.batches_coalesced += coalesced - 1;
    add_counter(obs::Counter::kServeEpochs);
    if (coalesced > 1)
      add_counter(obs::Counter::kServeCoalescedBatches, coalesced - 1);
    if (collector_) {
      collector_->metrics.observe("serve.epoch_seconds", epoch_seconds);
      collector_->metrics.observe("serve.coalesced_batch",
                                  static_cast<double>(coalesced));
    }
  }
}

void SessionHost::run() {
  try {
    if (!session_->converged()) session_->converge();
    publish_epoch(0, nullptr, 0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready_ = true;
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        stats_.ready = true;
      }
    }
    cv_state_.notify_all();

    while (true) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] {
        return stop_ || kill_ || snapshot_requested_ ||
               (!paused_ && !queue_.empty());
      });
      if (kill_) break;
      if (snapshot_requested_) {
        snapshot_requested_ = false;
        lk.unlock();
        // save_bytes() between epochs is always a superstep boundary.
        std::vector<std::uint8_t> bytes = session_->save_bytes();
        add_counter(obs::Counter::kServeSnapshots);
        lk.lock();
        snapshot_out_ = std::move(bytes);
        snapshot_done_ = true;
        lk.unlock();
        cv_state_.notify_all();
        continue;
      }
      if (queue_.empty()) {
        if (stop_) break;
        continue;
      }
      // Group-commit window: let concurrent writers join this epoch.
      // Skipped during shutdown — drain as fast as possible.
      if (options_.commit_window_ms > 0 && !stop_) {
        cv_work_.wait_for(
            lk,
            std::chrono::duration<double, std::milli>(
                options_.commit_window_ms),
            [&] { return stop_ || kill_; });
        if (kill_) break;
      }
      std::vector<graph::MutationBatch> batches = std::move(queue_);
      queue_.clear();
      in_flight_ = true;
      lk.unlock();
      cv_space_.notify_all();  // backpressured writers may admit again

      const std::size_t coalesced = batches.size();
      const graph::MutationBatch merged = merge_batches(std::move(batches));
      Timer t;
      const streaming::SessionEpoch ep = session_->apply(merged);
      publish_epoch(t.elapsed_seconds(), &ep, coalesced);

      if (options_.checkpoint_every > 0 &&
          !options_.checkpoint_path.empty() &&
          session_->epoch() % options_.checkpoint_every == 0) {
        session_->save(options_.checkpoint_path);
        {
          std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.checkpoints;
        }
        add_counter(obs::Counter::kServeSnapshots);
      }

      lk.lock();
      in_flight_ = false;
      lk.unlock();
      cv_state_.notify_all();
    }
  } catch (const std::exception& e) {
    fail(e.what());
  }
}

void SessionHost::enqueue(graph::MutationBatch batch) {
  const std::size_t ops = batch_ops(batch);
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_space_.wait(lk, [&] {
      return failed_ || stop_ || kill_ ||
             queue_.size() < options_.queue_limit;
    });
    DV_CHECK_MSG(!failed_,
                 "session '" << name_ << "' failed: " << error_);
    DV_CHECK_MSG(!stop_ && !kill_,
                 "session '" << name_ << "' is shutting down");
    queue_.push_back(std::move(batch));
    depth = queue_.size();
  }
  cv_work_.notify_one();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches_admitted;
    stats_.mutations_admitted += ops;
  }
  add_counter(obs::Counter::kServeMutationBatches);
  if (collector_)
    collector_->metrics.observe("serve.queue_depth",
                                static_cast<double>(depth));
}

void SessionHost::flush() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_state_.wait(lk, [&] {
    return failed_ || (ready_ && queue_.empty() && !in_flight_ &&
                       !snapshot_requested_);
  });
  DV_CHECK_MSG(!failed_, "session '" << name_ << "' failed: " << error_);
}

void SessionHost::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void SessionHost::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void SessionHost::wait_ready() const {
  std::unique_lock<std::mutex> lk(mu_);
  cv_state_.wait(lk, [&] { return ready_ || failed_; });
  DV_CHECK_MSG(!failed_, "session '" << name_ << "' failed: " << error_);
}

std::shared_ptr<const StateSnapshot> SessionHost::view() const {
  wait_ready();
  std::shared_ptr<const StateSnapshot> snap = view_.current();
  DV_CHECK_MSG(snap != nullptr, "no published state for '" << name_ << "'");
  return snap;
}

Value SessionHost::get(graph::VertexId v, const std::string& field) const {
  Timer t;
  const auto snap = view();
  DV_CHECK_MSG(static_cast<std::size_t>(v) < snap->result.num_vertices,
               "vertex " << v << " out of range (session '" << name_
                         << "' has " << snap->result.num_vertices
                         << " vertices at epoch " << snap->epoch << ")");
  const Value val = snap->result.at(v, snap->result.field_slot(field));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reads;
  }
  add_counter(obs::Counter::kServeReads);
  if (collector_)
    collector_->metrics.observe("serve.read_seconds", t.elapsed_seconds());
  return val;
}

std::vector<std::pair<graph::VertexId, double>> SessionHost::topk(
    const std::string& field, std::size_t k) const {
  Timer t;
  const auto snap = view();
  auto out = topk_field(snap->result, field, k);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reads;
  }
  add_counter(obs::Counter::kServeReads);
  if (collector_)
    collector_->metrics.observe("serve.read_seconds", t.elapsed_seconds());
  return out;
}

std::vector<std::uint8_t> SessionHost::snapshot_bytes() {
  // Serialize concurrent snapshot callers: one request slot.
  std::lock_guard<std::mutex> serial(snap_mu_);
  wait_ready();
  std::unique_lock<std::mutex> lk(mu_);
  DV_CHECK_MSG(!failed_, "session '" << name_ << "' failed: " << error_);
  DV_CHECK_MSG(!stop_ && !kill_,
               "session '" << name_ << "' is shutting down");
  snapshot_requested_ = true;
  snapshot_done_ = false;
  lk.unlock();
  cv_work_.notify_one();
  lk.lock();
  cv_state_.wait(lk, [&] { return failed_ || snapshot_done_; });
  DV_CHECK_MSG(!failed_, "session '" << name_ << "' failed: " << error_);
  snapshot_done_ = false;
  return std::move(snapshot_out_);
}

void SessionHost::kill() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    kill_ = true;
    queue_.clear();
    failed_ = true;
    error_ = "session killed";
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.failed = true;
    stats_.error = "session killed";
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  cv_state_.notify_all();
  if (engine_.joinable()) engine_.join();
}

HostStats SessionHost::stats() const {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  HostStats s = stats_;
  s.queue_depth = depth;
  return s;
}

}  // namespace deltav::dv::serve
