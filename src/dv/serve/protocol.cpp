#include "dv/serve/protocol.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "dv/runtime/runner.h"

namespace deltav::dv::serve {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream ss(line);
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

/// Single-line sanitization for ERR payloads (multi-line reasons would
/// desynchronize a line-framed client).
std::string flatten(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    if (c == '\n' || c == '\r') c = ' ';
  return out;
}

std::string format_value(const Value& v) {
  switch (v.type) {
    case Type::kBool:
      return v.b ? "true" : "false";
    case Type::kInt:
      return std::to_string(v.i);
    default: {
      std::ostringstream os;
      os << std::setprecision(17) << v.as_f();
      return os.str();
    }
  }
}

std::size_t parse_size(const std::string& s, const char* what) {
  try {
    return static_cast<std::size_t>(std::stoull(s));
  } catch (const std::logic_error&) {
    DV_FAIL("malformed " << what << " '" << s << "'");
  }
}

double parse_double(const std::string& s, const char* what) {
  try {
    return std::stod(s);
  } catch (const std::logic_error&) {
    DV_FAIL("malformed " << what << " '" << s << "'");
  }
}

/// Atomic raw-bytes file write (tmp + rename), matching the snapshot
/// writer's crash discipline: the target path is never torn.
void write_bytes_atomic(const std::string& path,
                        const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    DV_CHECK_MSG(out.good(), "cannot open '" << tmp << "' for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    DV_CHECK_MSG(out.good(), "failed writing '" << tmp << "'");
  }
  DV_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "failed renaming '" << tmp << "' to '" << path << "'");
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ServeCore::handle_create(const std::string& rest) {
  const std::vector<std::string> toks = tokenize(rest);
  DV_CHECK_MSG(toks.size() >= 3,
               "CREATE <name> <program> <graph> [key=value|flag ...]");
  CreateSpec spec;
  spec.name = toks[0];
  spec.program = toks[1];
  spec.graph = toks[2];
  spec.host = defaults_;
  for (std::size_t i = 3; i < toks.size(); ++i) {
    const std::string& tok = toks[i];
    const auto eq = tok.find('=');
    const std::string key = tok.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? "" : tok.substr(eq + 1);
    if (key == "undirected") {
      spec.undirected = true;
    } else if (key == "weighted") {
      spec.weighted = true;
    } else if (key == "atomic_float") {
      spec.host.session.run.atomic_float = true;
    } else if (key == "force_cold") {
      spec.host.session.force_cold = true;
    } else if (key == "tier") {
      spec.host.session.run.tier = parse_exec_tier(val);
    } else if (key == "fold_path") {
      spec.host.session.run.fold_path = parse_fold_path(val);
    } else if (key == "epsilon") {
      spec.epsilon = parse_double(val, "epsilon");
    } else if (key == "params") {
      spec.params = val;  // may itself contain '=' and ','
    } else if (key == "workers") {
      spec.host.session.run.engine.num_workers =
          static_cast<int>(parse_size(val, "workers"));
    } else if (key == "queue_limit") {
      spec.host.queue_limit = parse_size(val, "queue_limit");
      DV_CHECK_MSG(spec.host.queue_limit > 0, "queue_limit must be > 0");
    } else if (key == "commit_window_ms") {
      spec.host.commit_window_ms = parse_double(val, "commit_window_ms");
    } else if (key == "checkpoint_every") {
      spec.host.checkpoint_every = parse_size(val, "checkpoint_every");
    } else if (key == "checkpoint") {
      spec.host.checkpoint_path = val;
    } else if (key == "restore") {
      spec.restore_from = val;
    } else if (key == "compact_threshold") {
      spec.host.session.compact_threshold =
          parse_double(val, "compact_threshold");
    } else {
      DV_FAIL("unknown CREATE option '" << key << "'");
    }
  }
  DV_CHECK_MSG(spec.host.checkpoint_every == 0 ||
                   !spec.host.checkpoint_path.empty(),
               "checkpoint_every needs checkpoint=<path>");
  registry_.create(spec);
  return "OK created " + spec.name;
}

std::string ServeCore::handle_line(Conn& conn, const std::string& line,
                                   bool* quit) {
  if (quit != nullptr) *quit = false;
  try {
    if (conn.in_mut) {
      // Body of a MUT request: one mutation_io line (comments/blanks are
      // annotations here). The response is deferred to the commit line.
      if (!conn.parser.feed(line)) return "";
      conn.in_mut = false;
      const std::string target = std::move(conn.mut_target);
      conn.mut_target.clear();
      graph::MutationBatch batch = conn.parser.take();
      const auto host = registry_.find(target);
      DV_CHECK_MSG(host != nullptr, "no session '" << target << "'");
      const std::size_t ops = batch_ops(batch);
      host->enqueue(std::move(batch));
      return "OK queued ops=" + std::to_string(ops);
    }

    std::istringstream ss(line);
    std::string verb;
    ss >> verb;
    std::string rest;
    std::getline(ss, rest);

    if (verb.empty()) return "";  // blank request lines are ignored
    if (verb == "PING") return "OK pong";
    if (verb == "QUIT") {
      if (quit != nullptr) *quit = true;
      return "OK bye";
    }
    if (verb == "CREATE") return handle_create(rest);
    if (verb == "STATS") return "OK " + stats_json();

    const std::vector<std::string> toks = tokenize(rest);
    const auto named_host = [&](std::size_t min_toks, const char* usage) {
      DV_CHECK_MSG(toks.size() >= min_toks, usage);
      const auto host = registry_.find(toks[0]);
      DV_CHECK_MSG(host != nullptr, "no session '" << toks[0] << "'");
      return host;
    };

    if (verb == "MUT") {
      const auto host = named_host(1, "MUT <name>");
      (void)host;  // existence-checked now; re-resolved at commit
      conn.in_mut = true;
      conn.mut_target = toks[0];
      conn.parser = streaming::BatchLineParser{};
      return "";  // response comes with the batch's commit line
    }
    if (verb == "GET") {
      const auto host = named_host(3, "GET <name> <vertex> <field>");
      const auto v = static_cast<graph::VertexId>(
          parse_size(toks[1], "vertex id"));
      return "OK " + format_value(host->get(v, toks[2]));
    }
    if (verb == "TOPK") {
      const auto host = named_host(3, "TOPK <name> <field> <k>");
      const auto top = host->topk(toks[1], parse_size(toks[2], "k"));
      std::ostringstream os;
      os << "OK " << top.size();
      os << std::setprecision(17);
      for (const auto& [v, val] : top) os << " " << v << ":" << val;
      return os.str();
    }
    if (verb == "FLUSH") {
      const auto host = named_host(1, "FLUSH <name>");
      host->flush();
      return "OK epoch=" + std::to_string(host->stats().epoch);
    }
    if (verb == "SNAPSHOT") {
      const auto host = named_host(2, "SNAPSHOT <name> <path>");
      const std::vector<std::uint8_t> bytes = host->snapshot_bytes();
      write_bytes_atomic(toks[1], bytes);
      return "OK bytes=" + std::to_string(bytes.size());
    }
    if (verb == "CLOSE") {
      DV_CHECK_MSG(!toks.empty(), "CLOSE <name>");
      DV_CHECK_MSG(registry_.close(toks[0]), "no session '" << toks[0]
                                                            << "'");
      return "OK closed " + toks[0];
    }
    DV_FAIL("unknown verb '" << verb
                             << "' (CREATE MUT GET TOPK FLUSH STATS "
                                "SNAPSHOT CLOSE PING QUIT)");
  } catch (const std::exception& e) {
    // A malformed MUT body aborts the whole batch: admission is
    // per-batch atomic, so half a batch must never be queued.
    conn.in_mut = false;
    conn.mut_target.clear();
    conn.parser = streaming::BatchLineParser{};
    return "ERR " + flatten(e.what());
  }
}

std::string ServeCore::stats_json() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"sessions\": [";
  std::map<std::string, std::uint64_t> counters;
  bool first = true;
  for (const auto& host : registry_.hosts()) {
    const HostStats s = host->stats();
    os << (first ? "" : ", ") << "{\"name\": \""
       << json_escape(host->name()) << "\", \"program\": \""
       << json_escape(host->options().program_label)
       << "\", \"graph\": \"" << json_escape(host->options().graph_label)
       << "\", \"tier\": \""
       << exec_tier_name(host->options().session.run.tier)
       << "\", \"epoch\": " << s.epoch
       << ", \"epochs_committed\": " << s.epochs_committed
       << ", \"warm_epochs\": " << s.warm_epochs
       << ", \"cold_epochs\": " << s.cold_epochs
       << ", \"batches_admitted\": " << s.batches_admitted
       << ", \"batches_coalesced\": " << s.batches_coalesced
       << ", \"max_coalesced\": " << s.max_coalesced
       << ", \"mutations_admitted\": " << s.mutations_admitted
       << ", \"reads\": " << s.reads
       << ", \"queue_depth\": " << s.queue_depth
       << ", \"supersteps\": " << s.supersteps
       << ", \"messages\": " << s.messages
       << ", \"checkpoints\": " << s.checkpoints
       << ", \"vertices\": " << s.vertices << ", \"arcs\": " << s.arcs
       << ", \"epoch_seconds_sum\": " << s.epoch_seconds_sum
       << ", \"ready\": " << (s.ready ? "true" : "false")
       << ", \"failed\": " << (s.failed ? "true" : "false")
       << ", \"error\": \"" << json_escape(s.error) << "\"}";
    first = false;
    if (const obs::Collector* col = host->collector()) {
      for (const auto& [name, n] : col->metrics.snapshot().counters) {
        if (n > 0) counters[name] += n;
      }
    }
  }
  os << "], \"counters\": {";
  first = true;
  for (const auto& [name, n] : counters) {
    os << (first ? "" : ", ") << "\"" << json_escape(name) << "\": " << n;
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace deltav::dv::serve
