// Session registry: the daemon's name → SessionHost map, plus the spec
// parsing shared by the daemon, the bench harness and the tests.
//
// A CreateSpec is everything the CREATE protocol verb carries: which
// program (a built-in name or a ΔV source file), which graph (an
// edge-list file or a `rmat:<scale>x<degree>[:seed]` generator spec),
// and the host/session knobs (tier, fold path, ε, params, commit window,
// checkpointing). create() compiles the program, materializes the graph,
// and — when restore_from names a snapshot — restores the warm session
// from it instead of reconverging cold, falling back to the cold build
// when the snapshot is rejected (torn file, different program/config)
// and a graph spec is available. That fallback is the daemon's restart
// story: a damaged checkpoint degrades to a reconvergence, never to a
// refusal to serve or to silently wrong state.
//
// Hosts are handed out as shared_ptr so a CLOSE (or registry teardown)
// cannot pull the session out from under a request thread mid-read: the
// map drops its reference, the host drains and joins when the last
// in-flight request lets go.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dv/serve/session_host.h"

namespace deltav::dv::serve {

/// Everything CREATE specifies. Defaults mirror the dv_stream CLI.
struct CreateSpec {
  std::string name;
  std::string program;  // built-in name ("cc", "pagerank", ...) or a path
                        // to a ΔV source file (anything containing '/' or
                        // ending in ".dv" is treated as a path)
  std::string graph;    // edge-list path or "rmat:<scale>x<degree>[:seed]"
  bool undirected = false;
  bool weighted = false;
  std::string params;   // "name=value,...", floats by decimal point
  double epsilon = 0;   // CompileOptions::epsilon (§6.3 ε-change checks)
  HostOptions host;     // tier / fold path / workers / windows / checkpoints
  std::string restore_from;  // optional snapshot file to warm-start from
};

/// True when `program` should be read from disk rather than looked up in
/// the built-in table.
bool program_is_path(const std::string& program);

/// Built-in source for `name`; throws CheckError (listing the names) when
/// unknown. Same table as the dv_stream tool.
const char* builtin_program_source(const std::string& name);

/// Resolves CreateSpec::program to ΔV source text (reads the file when
/// program_is_path).
std::string load_program_source(const std::string& program);

/// Materializes CreateSpec::graph: `rmat:<scale>x<degree>[:seed]` (2^scale
/// vertices, degree·2^scale edges, default seed 42) or an edge-list file.
graph::CsrGraph load_graph_spec(const std::string& spec, bool undirected,
                                bool weighted);

/// Parses "a=1,b=2.5" into param bindings (decimal point → float).
std::map<std::string, Value> parse_params(const std::string& spec);

class Registry {
 public:
  /// Compiles, materializes, restores-or-cold-builds, and registers a
  /// host under spec.name. Throws CheckError when the name is taken or
  /// the spec is unusable (including: restore rejected and no graph to
  /// fall back to). The returned host may still be running its initial
  /// convergence — wait_ready()/first read blocks until published.
  std::shared_ptr<SessionHost> create(const CreateSpec& spec);

  /// The host registered under `name`, or null.
  std::shared_ptr<SessionHost> find(const std::string& name) const;

  /// Unregisters `name`; the host tears down (graceful drain) once the
  /// last outstanding reference drops. Returns false when unknown.
  bool close(const std::string& name);

  /// Registered names, sorted (map order).
  std::vector<std::string> names() const;
  std::vector<std::shared_ptr<SessionHost>> hosts() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<SessionHost>> sessions_;
};

/// Merges every registered host's collector into one snapshot: counters
/// and histogram count/sum add, histogram min/max widen, gauges last-win.
/// This is the daemon's --metrics document and the STATS counter block —
/// per-host collectors keep the hot shards single-writer (see
/// HostOptions::collect_metrics); merging happens only here, at report
/// rate.
obs::MetricsRegistry::Snapshot merged_metrics(const Registry& registry);

}  // namespace deltav::dv::serve
