// Double-buffered converged-state view for serving reads.
//
// The serving contract (DESIGN.md §10): point and top-k reads are
// answered from the *last committed epoch's* converged state and never
// block on — or observe — the epoch in flight. The engine thread owns the
// live DvStreamSession; after every committed epoch it copies the
// converged vertex state out of the runner (DvStreamSession::result())
// and publishes it here as an immutable snapshot behind a shared_ptr.
// Readers grab the pointer under a mutex held only for the swap (no
// allocation, no copies) and then read entirely lock-free on their own
// reference; a publish while they read simply drops the old snapshot's
// refcount. This is classic double buffering generalized to N readers:
// the previous buffer lives exactly as long as the last reader using it.
//
// Values read are therefore *stale-bounded*: at most one committed epoch
// behind the writer queue, never torn, never mid-convergence.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "dv/runtime/runner.h"

namespace deltav::dv::serve {

/// One published snapshot: the converged state of `epoch`.
struct StateSnapshot {
  std::size_t epoch = 0;
  DvRunResult result;
};

class ReadView {
 public:
  /// Engine thread: publish the state after committing `epoch`.
  void publish(std::size_t epoch, DvRunResult result) {
    auto snap = std::make_shared<const StateSnapshot>(
        StateSnapshot{epoch, std::move(result)});
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(snap);
  }

  /// Any thread: the most recently published snapshot (null before the
  /// initial convergence has been published).
  std::shared_ptr<const StateSnapshot> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const StateSnapshot> current_;
};

/// Top-k vertices of a snapshot by a field, descending by value (ties:
/// lower vertex id first, so results are deterministic). O(n log k).
inline std::vector<std::pair<graph::VertexId, double>> topk_field(
    const DvRunResult& r, const std::string& field, std::size_t k) {
  const int slot = r.field_slot(field);
  // Min-heap (w.r.t. rank) of the k best seen so far: with comp = better,
  // the heap root is the worst kept element, so a candidate enters iff it
  // beats the root.
  std::vector<std::pair<graph::VertexId, double>> heap;
  const auto better = [](const std::pair<graph::VertexId, double>& a,
                         const std::pair<graph::VertexId, double>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  for (std::size_t v = 0; v < r.num_vertices; ++v) {
    const double val = r.at(static_cast<graph::VertexId>(v), slot).as_f();
    if (heap.size() < k) {
      heap.emplace_back(static_cast<graph::VertexId>(v), val);
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (!heap.empty() && better({static_cast<graph::VertexId>(v), val},
                                       heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = {static_cast<graph::VertexId>(v), val};
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  // sort_heap orders ascending w.r.t. its comparator, and `better` plays
  // the role of operator< ("ranks earlier"), so this is already best-first.
  std::sort_heap(heap.begin(), heap.end(), better);
  return heap;
}

}  // namespace deltav::dv::serve
