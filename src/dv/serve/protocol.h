// The dv_serve line protocol (DESIGN.md §10): a transport-agnostic
// request/response state machine over a session Registry.
//
// Grammar (one request per line; responses are exactly one line, except
// that the lines of a MUT body produce none until the batch commits):
//
//   CREATE <name> <program> <graph> [key=value | flag ...]
//       keys: tier, fold_path, epsilon, params, workers, queue_limit,
//             commit_window_ms, checkpoint_every, checkpoint, restore,
//             compact_threshold; flags: undirected, weighted,
//             atomic_float, force_cold
//   MUT <name>          then mutation_io op lines; `commit` ends the batch
//                       (blank lines and #/% comments are skipped)
//   GET <name> <vertex> <field>
//   TOPK <name> <field> <k>
//   FLUSH <name>        block until every admitted batch is applied
//   STATS               one-line JSON (tests/schema/serve_stats.schema.json)
//   SNAPSHOT <name> <path>
//   CLOSE <name>
//   PING                liveness probe
//   QUIT                close this connection
//
// Responses: `OK[ payload]` or `ERR <reason>` (reasons are single-line;
// embedded newlines are flattened). Protocol errors never take the
// connection down, and an error in one session's engine thread surfaces
// as ERR on that session's requests only — other tenants keep serving.
//
// ServeCore is shared by the TCP daemon (tools/dv_serve), its --stdio
// mode, the CI smoke driver and the tests: one connection == one Conn
// (the MUT body parser is per-connection state), many Conns may call
// handle_line concurrently against the same core.
#pragma once

#include <string>

#include "dv/serve/registry.h"
#include "dv/streaming/mutation_io.h"

namespace deltav::dv::serve {

/// Per-connection protocol state: which session a MUT body is streaming
/// into, and the partially-fed batch.
struct Conn {
  bool in_mut = false;
  std::string mut_target;
  streaming::BatchLineParser parser;
};

class ServeCore {
 public:
  /// Default host options applied to every CREATE before its own
  /// key=value overrides (the daemon seeds tier/workers CLI defaults
  /// here).
  explicit ServeCore(HostOptions defaults = {})
      : defaults_(std::move(defaults)) {}

  Registry& registry() { return registry_; }

  /// Handles one request line. Returns the response line (no trailing
  /// newline), or an empty string for MUT-body lines that complete no
  /// batch. Never throws: failures become "ERR ..." responses. Sets
  /// *quit when the line was QUIT.
  std::string handle_line(Conn& conn, const std::string& line,
                          bool* quit = nullptr);

  /// The STATS payload: one-line JSON over every registered session plus
  /// the serve.* counters merged across their collectors.
  std::string stats_json() const;

 private:
  std::string handle_create(const std::string& rest);

  HostOptions defaults_;
  Registry registry_;
};

/// Escapes `s` for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace deltav::dv::serve
