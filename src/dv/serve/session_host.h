// One served session: a warm DvStreamSession owned by a dedicated engine
// thread, fed through an admission queue, read through a published view.
//
// Threading model (DESIGN.md §10). A DvStreamSession is single-owner by
// contract (stream_session.h): converge/apply/save must all come from one
// thread. SessionHost makes that contract load-bearing for serving:
//
//   engine thread   — the session's owner. Runs the initial convergence,
//                     then loops: drain the admission queue, merge every
//                     pending batch into ONE epoch (group commit), apply,
//                     publish the converged state to the ReadView, and
//                     checkpoint when due. Snapshot requests are executed
//                     here too, between epochs — which is exactly the
//                     "between supersteps" boundary save() requires.
//   writer threads  — enqueue() MutationBatches. The queue is bounded
//                     (HostOptions::queue_limit); a full queue blocks the
//                     writer until the engine drains — backpressure, not
//                     unbounded memory. Admission order is preserved
//                     within the merged epoch (last-write-wins semantics
//                     of MutationBatch concatenation).
//   reader threads  — get()/topk() against the last *committed* epoch's
//                     state via ReadView: never blocked by, and never
//                     observing, the epoch in flight.
//
// Epoch coalescing: every batch queued when the engine thread starts an
// epoch is folded into that epoch (plus, optionally, batches arriving
// within commit_window_ms — a group-commit window trading commit latency
// for fewer convergences). Correctness is unconditional: incremental
// re-execution is value-equivalent to from-scratch on the mutated graph
// after *any* partition of the mutation stream into epochs (the stream
// fuzz tier's invariant), so coalescing changes cost, never results.
//
// Failure: if the engine thread throws (malformed mutation against the
// live graph, superstep cap, ...), the host latches the error; every
// subsequent enqueue/flush/read surfaces it instead of hanging. The
// daemon maps it to an ERR response; the session stays down until closed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dv/compiler.h"
#include "dv/obs/obs.h"
#include "dv/serve/read_view.h"
#include "dv/streaming/stream_session.h"

namespace deltav::dv::serve {

struct HostOptions {
  /// Tier, fold path, engine workers, ε, compaction, mid-convergence
  /// checkpointing — everything the underlying session understands.
  streaming::SessionOptions session;
  /// Maximum queued-but-unapplied batches; enqueue() blocks beyond this.
  std::size_t queue_limit = 64;
  /// Group-commit window: after the first batch of an epoch is picked up,
  /// wait this long for more writers to join the epoch. 0 = drain only
  /// what is already queued (natural batching under load, minimal commit
  /// latency when idle).
  double commit_window_ms = 0;
  /// Epoch-boundary checkpointing: every K committed epochs the engine
  /// thread saves the full session to checkpoint_path (atomic
  /// tmp+rename). 0 = off. Independent of (and composable with)
  /// session.checkpoint_every, which fires *during* long convergences.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Own an obs::Collector for this host: serve.* counters, runtime
  /// counters and spans, all attributable to this session and mergeable
  /// across hosts. Per-host collectors keep the single-writer-per-lane
  /// shard contract intact when many engine threads serve concurrently
  /// (a shared global collector would race its hot shards). Benches that
  /// want unmetered timings turn this off.
  bool collect_metrics = true;

  /// Display labels for STATS — what the session was created from.
  std::string program_label;
  std::string graph_label;
};

/// Point-in-time host statistics (STATS surface; all fields cumulative
/// unless noted).
struct HostStats {
  std::size_t epoch = 0;            // last committed epoch number
  std::size_t epochs_committed = 0; // epochs applied by this host (excl. 0)
  std::size_t warm_epochs = 0;
  std::size_t cold_epochs = 0;
  std::size_t batches_admitted = 0;
  std::size_t batches_coalesced = 0;  // admitted into an epoch beyond its 1st
  std::size_t max_coalesced = 1;      // largest batches-per-epoch observed
  std::size_t mutations_admitted = 0; // edge ops + addv + delv line items
  std::size_t reads = 0;
  std::size_t queue_depth = 0;        // sampled now, not cumulative
  std::size_t supersteps = 0;         // summed over committed epochs
  std::uint64_t messages = 0;
  std::size_t checkpoints = 0;
  std::size_t vertices = 0;           // as of the last published epoch
  std::size_t arcs = 0;
  double epoch_seconds_sum = 0;
  bool ready = false;                 // initial convergence published
  bool failed = false;
  std::string error;                  // non-empty iff failed
};

class SessionHost {
 public:
  /// Builds a fresh session over `base` and starts the engine thread; the
  /// thread runs the initial convergence asynchronously (wait_ready() or
  /// the first read blocks until it is published).
  SessionHost(std::string name, CompiledProgram cp, graph::CsrGraph base,
              HostOptions options);
  /// Restores a session from snapshot bytes (throws persist::SnapshotError
  /// on damage/mismatch before any thread starts) and serves it. A
  /// mid-convergence snapshot resumes the interrupted run first.
  SessionHost(std::string name, CompiledProgram cp,
              std::vector<std::uint8_t> snapshot, HostOptions options);
  /// Stops the engine thread. Graceful: already-admitted batches are
  /// applied first (unless kill() was called).
  ~SessionHost();

  SessionHost(const SessionHost&) = delete;
  SessionHost& operator=(const SessionHost&) = delete;

  const std::string& name() const { return name_; }
  const CompiledProgram& program() const { return cp_; }
  const HostOptions& options() const { return options_; }

  /// Admits one batch (blocks while the queue is at queue_limit). Throws
  /// CheckError if the host failed or is shutting down.
  void enqueue(graph::MutationBatch batch);
  /// Blocks until every admitted batch has been applied and published
  /// (and the host is ready). Throws if the host failed.
  void flush();

  /// Admission control: while paused the engine thread commits no new
  /// epochs (the queue still admits up to queue_limit, then exerts
  /// backpressure). Tests use this to make coalescing deterministic; a
  /// deployment could use it to fence maintenance windows.
  void pause();
  void resume();

  /// Blocks until the initial convergence (or restored state) has been
  /// published. Throws if the engine thread failed first.
  void wait_ready() const;

  /// The last committed epoch's converged state; never blocks on the
  /// epoch in flight. Requires ready (blocks on wait_ready()).
  std::shared_ptr<const StateSnapshot> view() const;
  /// Point read of one vertex field from view(). Counts serve.reads.
  Value get(graph::VertexId v, const std::string& field) const;
  /// Top-k read over view() (descending; deterministic tie-break).
  std::vector<std::pair<graph::VertexId, double>> topk(
      const std::string& field, std::size_t k) const;

  /// Serializes the session on the engine thread (between epochs) and
  /// returns the bytes. Blocks until done; throws if the host failed.
  std::vector<std::uint8_t> snapshot_bytes();

  /// Abandons queued work and stops the engine thread without applying or
  /// checkpointing anything further — the in-process stand-in for
  /// kill -9 in recovery tests. The host only serves errors afterwards.
  void kill();

  HostStats stats() const;
  /// This host's collector (null when collect_metrics was off).
  obs::Collector* collector() const { return collector_.get(); }

 private:
  void start();
  void run();
  void publish_epoch(double epoch_seconds, const streaming::SessionEpoch* ep,
                     std::size_t coalesced);
  void fail(const std::string& what);
  void add_counter(obs::Counter c, std::uint64_t n = 1) const;

  const std::string name_;
  CompiledProgram cp_;  // must outlive session_
  HostOptions options_;
  std::unique_ptr<obs::Collector> collector_;  // may be null
  std::unique_ptr<streaming::DvStreamSession> session_;  // engine thread's
  ReadView view_;

  mutable std::mutex mu_;  // queue + control flags
  mutable std::condition_variable cv_work_;   // engine thread wakeups
  mutable std::condition_variable cv_space_;  // writer backpressure
  mutable std::condition_variable cv_state_;  // ready/flush/snapshot waiters
  std::vector<graph::MutationBatch> queue_;
  bool stop_ = false;
  bool kill_ = false;
  bool paused_ = false;
  bool in_flight_ = false;   // engine thread is applying an epoch
  bool ready_ = false;
  bool failed_ = false;
  std::string error_;
  bool snapshot_requested_ = false;
  bool snapshot_done_ = false;
  std::vector<std::uint8_t> snapshot_out_;
  std::mutex snap_mu_;  // serializes concurrent snapshot_bytes() callers

  mutable std::mutex stats_mu_;
  mutable HostStats stats_;  // mutable: const reads still count themselves

  std::thread engine_;  // last member: joins before the rest tears down
};

/// Concatenates `batches` into one (order-preserving: MutationBatch
/// semantics are last-write-wins, so concatenation is the correct merge).
graph::MutationBatch merge_batches(
    std::vector<graph::MutationBatch> batches);

/// Line items in a batch (edge ops + one per addv directive + detaches)
/// — the STATS "mutations" unit.
std::size_t batch_ops(const graph::MutationBatch& b);

}  // namespace deltav::dv::serve
