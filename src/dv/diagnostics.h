// Source locations and compile diagnostics for ΔV.
//
// All front-end and pass errors are reported as CompileError with a source
// location; warnings accumulate in the Diagnostics sink so callers (and
// tests) can inspect them without the compiler printing to stderr.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace deltav::dv {

struct Loc {
  int line = 0;  // 1-based; 0 = synthesized by a compiler pass
  int col = 0;

  std::string to_string() const {
    if (line == 0) return "<synthesized>";
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

class CompileError : public std::runtime_error {
 public:
  CompileError(Loc loc, const std::string& message)
      : std::runtime_error(loc.to_string() + ": " + message), loc_(loc) {}

  Loc loc() const { return loc_; }

 private:
  Loc loc_;
};

[[noreturn]] inline void compile_error(Loc loc, const std::string& message) {
  throw CompileError(loc, message);
}

/// Warning sink. Owned by the compile pipeline; passes append to it.
class Diagnostics {
 public:
  void warn(Loc loc, const std::string& message) {
    warnings_.push_back(loc.to_string() + ": warning: " + message);
  }

  const std::vector<std::string>& warnings() const { return warnings_; }
  bool has_warning_containing(const std::string& needle) const {
    for (const auto& w : warnings_)
      if (w.find(needle) != std::string::npos) return true;
    return false;
  }

 private:
  std::vector<std::string> warnings_;
};

}  // namespace deltav::dv
