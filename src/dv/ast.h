// The ΔV abstract syntax tree.
//
// One uniform node type (Expr) covers both the user-visible forms of
// Figure 3 and the internal forms the compiler introduces (highlighted in
// the paper's figure): message folds, send loops, scratch variables, halt.
// A uniform node makes the paper's context-based rewriting (§6, C[e] ;
// C[e']) a plain recursive traversal, which is how every pass below is
// written.
//
// Expressions double as statements (type kUnit), exactly as in the paper's
// `e;e` sequencing form.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dv/diagnostics.h"
#include "dv/types.h"

namespace deltav::dv {

enum class ExprKind : std::uint8_t {
  // ----- literals -----
  kIntLit, kFloatLit, kBoolLit, kInfty,
  // ----- user-visible forms (Fig. 3) -----
  kVarRef,        // let-bound variable or iteration variable
  kFieldRef,      // vertex-state field access (underlined in the paper)
  kParamRef,      // program parameter (language extension; DESIGN.md)
  kBinary,        // e op e
  kUnary,         // uop e
  kPairOp,        // min/max e1 e2 (Fig. 3 `pop`)
  kIf,            // if e1 then e2 [else e3]
  kLet,           // let x : τ = e1 in e2
  kSeq,           // e1; e2; ... (n-ary block)
  kAssign,        // x = e (fields; internally also scratch slots)
  kLocalDecl,     // local x : τ = e  — init-block field declaration
  kAgg,           // ⊞ [ e | u <- д ]
  kNeighborField, // u.a inside an aggregation element expression
  kEdgeWeight,    // u.edge — weight of the connecting edge (extension)
  kDegree,        // |д|
  kGraphSize,     // total number of vertices
  kVertexIdRef,   // this vertex's id (extension)
  kStableRef,     // `stable` — only valid in until clauses (extension)
  kRemoteRead,    // remote(e).f — Palgol-style remote vertex-field read
                  // (extension; lowered to request/response supersteps)
  // ----- internal forms introduced by compiler passes -----
  kScratchRef,    // superstep-local temporary (old-copies, flags, lets)
  kFoldMessages,  // fold this superstep's site messages (Eq. 3 / Eq. 8-9)
  kSendLoop,      // for(u : д){ send(u, payload) } — possibly Δ form
  kSendTo,        // send(wrap(e), vertexId) on a request channel site
  kReplyLoop,     // for(m : messages#req){ send(m.payload, this.f) } on a
                  // reply channel site
  kHalt,          // vote_to_halt()
};

const char* expr_kind_name(ExprKind k);

/// What an assignment writes to.
enum class AssignTarget : std::uint8_t { kField, kScratch };

/// What a kVarRef resolved to (filled in by the type checker).
enum class VarKind : std::uint8_t { kUnresolved, kLet, kIter, kParam };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind{};
  Type type = Type::kUnknown;  // annotated by the type checker
  Loc loc;

  // Payload fields; which are meaningful depends on `kind`.
  std::string name;        // identifiers / field names / neighbor fields
  std::int64_t int_val = 0;
  double float_val = 0;
  bool bool_val = false;
  BinOp bin_op{};
  UnOp un_op{};
  PairOp pair_op{};
  AggOp agg_op{};
  GraphDir dir{};          // kAgg (pull), kDegree, kSendLoop (push)
  VarKind var_kind = VarKind::kUnresolved;
  AssignTarget assign_target = AssignTarget::kField;
  int slot = -1;           // field slot / scratch slot / param index
  int site = -1;           // aggregation site id (kFoldMessages, kSendLoop,
                           // kSendTo; kReplyLoop: the request channel —
                           // kReplyLoop's reply channel lives in int_val
  int obs_site = -1;       // kIf only: this node is the §6.3 change-check
                           // guard over that site's send loop, and `dir`
                           // carries the loop's push direction — metrics
                           // instrumentation (dv.sends_suppressed) counts
                           // the skipped fan-out when the guard is false;
                           // execution semantics ignore it entirely
  bool flag = false;       // kFoldMessages: incremental; kSendLoop: Δ-mode
  Type decl_type = Type::kUnknown;  // kLet / kLocalDecl declared type

  std::vector<ExprPtr> kids;

  Expr() = default;
  Expr(ExprKind k, Loc l) : kind(k), loc(l) {}

  /// Deep copy (passes duplicate subtrees, e.g. e → e[f := old_f]).
  ExprPtr clone() const;
};

// ---------------------------------------------------------------------------
// Node factory helpers — keep the transformation passes close to the paper's
// rewrite notation.
// ---------------------------------------------------------------------------

ExprPtr mk(ExprKind k, Loc loc = {});
ExprPtr mk_int(std::int64_t v, Loc loc = {});
ExprPtr mk_float(double v, Loc loc = {});
ExprPtr mk_bool(bool v, Loc loc = {});
ExprPtr mk_field_ref(int slot, std::string name, Type t, Loc loc = {});
ExprPtr mk_scratch_ref(int slot, std::string name, Type t, Loc loc = {});
ExprPtr mk_assign_field(int slot, std::string name, ExprPtr value);
ExprPtr mk_assign_scratch(int slot, std::string name, ExprPtr value);
ExprPtr mk_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, Type t);
ExprPtr mk_seq(std::vector<ExprPtr> kids);
ExprPtr mk_if(ExprPtr cond, ExprPtr then_e);
ExprPtr mk_halt();

/// Appends `e` to a kSeq (wrapping `seq` into one if needed); returns the
/// sequence.
ExprPtr seq_append(ExprPtr seq, ExprPtr e);
/// Prepends `e` before `seq`.
ExprPtr seq_prepend(ExprPtr e, ExprPtr seq);

// ---------------------------------------------------------------------------
// Program structure
// ---------------------------------------------------------------------------

struct Param {
  std::string name;
  Type type = Type::kUnknown;
};

/// A vertex-state field. User fields come from `local` declarations; the
/// remaining origins are added by compiler passes and together determine
/// the Table-2 state size.
struct Field {
  enum class Origin : std::uint8_t {
    kUser,        // `local` declaration (§5)
    kSentBinding, // freshVar bound to a sent expression (§6.2)
    kAccumulator, // aggAccum (§6.4)
    kNnAcc,       // non-nulled accumulator, multiplicative ops (§6.4.1)
    kNullCount,   // aggNulls (§6.4.1)
    kLastSent,    // per-site last-sent value (ϵ-slop mode, §9)
  };
  std::string name;
  Type type = Type::kUnknown;
  Origin origin = Origin::kUser;
  int site = -1;  // owning aggregation site for compiler-added fields
};

/// A superstep-local temporary slot (zeroed at the start of each vertex's
/// compute). Old-copies and flags live here rather than in vertex state —
/// see DESIGN.md on why this matches the paper's Table-2 deltas.
struct ScratchVar {
  enum class Origin : std::uint8_t {
    kLet,          // let-bound variable
    kOldCopy,      // o_f — field value saved at superstep start (§6.3)
    kDirtyFlag,    // per-site dirty bit (§6.3; ΔV)
    kAssignedFlag, // per-site assigned bit (ΔV* send policy; DESIGN.md)
  };
  std::string name;
  Type type = Type::kUnknown;
  Origin origin = Origin::kLet;
  int site = -1;
};

/// One aggregation site: an occurrence of ⊞[e | u ← д] in the program.
/// Created by the aggregation-conversion pass; later passes fill in the
/// incrementalization state.
///
/// The remote-read lowering (passes/remote_lower.cpp) reuses sites as
/// unicast message *channels*: a kRequest site carries requester-id
/// payloads to a computed owner vertex, a kReply site carries the owner's
/// field value back. Channel sites have no send_expr/send loop and are
/// skipped by every aggregation-specific pass (state binding, send
/// policies, incrementalization, Δ-messages) and by the runner's priming,
/// suppression, and epoch-patching machinery.
struct AggSite {
  enum class Role : std::uint8_t { kAgg, kRequest, kReply };
  int id = -1;
  Role role = Role::kAgg;
  AggOp op{};
  Type elem_type = Type::kUnknown;
  GraphDir pull_dir{};              // direction as written in the source
  ExprPtr send_expr;                // sender-side element expression
  /// When §6.2 bound send_expr to a fresh field, the original expression —
  /// the runtime's initial push evaluates this at init state and stores it
  /// into the bound field. Null when no binding happened.
  ExprPtr init_send_expr;
  std::vector<int> dep_fields;      // field slots send_expr reads
  int stmt_index = -1;              // -1 = init block (not allowed), else stmt
  /// Field slot created by §6.2's binding, or -1 if the sent expression
  /// was already a user field / is edge-dependent.
  int bound_field = -1;
  // Filled by incrementalize-aggregations (§6.4):
  int acc_slot = -1;
  int nn_slot = -1;
  int nulls_slot = -1;
  // Filled by change-checks (§6.3) / ΔV* send policy:
  int dirty_scratch = -1;
  int assigned_scratch = -1;
  std::vector<int> old_scratch;     // parallel to dep_fields
  // ϵ-slop mode (§9 future work):
  int last_sent_slot = -1;
  // Fold-path classification (incrementalize pass): the site's ⊞ is exactly
  // commutative-associative over its element type, so Δ-sends may fold
  // lock-free into the receiver's aggAccum slot instead of buffering a
  // message. Integer +, min and max qualify unconditionally; float + is
  // order-sensitive (re-association changes rounding) and is only eligible
  // under the explicit --atomic_float opt-in, tracked separately.
  bool atomic_ok = false;
  bool atomic_float_ok = false;
  // Retraction-memo classification (incrementalize pass; DESIGN.md §11):
  // a min/max site whose per-sender contribution is a pure function of
  // state the streaming layer can see change, so a deletion epoch can
  // retract it through the k-best tournament memo instead of blocking
  // warm resume. Class A (publish): the payload reads only fields never
  // assigned in an iter body. Class B (feedback, min only): payload is
  // field + edge-weight / field + positive literal over an iter-assigned
  // field, with no other reads of iter-assigned fields outside send
  // loops — the pure SSSP shape whose accumulator may rise under
  // retraction and reconverge. memo_edge_feedback marks the edge-weight
  // variant, which additionally needs the runtime positive-weight guard.
  bool memo_ok = false;
  bool memo_edge_feedback = false;
  /// kReply channels: the field slot the owner vertex answers with.
  int remote_field = -1;

  bool multiplicative() const { return is_multiplicative(op); }
  bool is_channel() const { return role != Role::kAgg; }
};

struct Stmt {
  enum class Kind : std::uint8_t { kStep, kIter };
  Kind kind = Kind::kStep;
  std::string iter_var;  // kIter only
  ExprPtr body;
  ExprPtr until;         // kIter only
  /// Remote-read lowering: extra per-iteration supersteps run *before*
  /// the body. phases[0] sends the request for every remote read
  /// (kSendTo), phases[1] answers them (kReplyLoop); the body then folds
  /// the replies. Empty for ordinary statements. The runner drives one
  /// engine superstep per phase, then the body superstep, so one logical
  /// iteration of a remote statement costs phases.size() + 1 supersteps.
  std::vector<ExprPtr> phases;
  Loc loc;
};

struct Program {
  std::vector<Param> params;
  ExprPtr init;
  std::vector<Stmt> stmts;
  Loc loc;

  // Symbol tables (populated by the type checker and passes).
  std::vector<Field> fields;
  std::vector<ScratchVar> scratch;
  std::vector<AggSite> sites;

  int find_field(const std::string& name) const;
  int add_field(std::string name, Type t, Field::Origin origin,
                int site = -1);
  int add_scratch(std::string name, Type t, ScratchVar::Origin origin,
                  int site = -1);
  int find_param(const std::string& name) const;
};

/// Pretty-prints an expression in ΔV-like concrete syntax (used by tests
/// and --dump-ast). Internal forms print in the paper's notation, e.g.
/// `send(u, Δ(old, new))` and `for(m : messages#0){ acc = acc + m }`.
std::string to_string(const Expr& e);
std::string to_string(const Program& p);

}  // namespace deltav::dv
