#include "dv/obs/metrics.h"

#include "common/check.h"

namespace deltav::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kSendsSuppressed: return "dv.sends_suppressed";
    case Counter::kDeltaMessages: return "dv.delta_messages";
    case Counter::kFullMessages: return "dv.full_messages";
    case Counter::kLastStepSendsSuppressed:
      return "dv.last_step_sends_suppressed";
    case Counter::kMemoHits: return "dv.memo_hits";
    case Counter::kMemoRecomputes: return "dv.memo_recomputes";
    case Counter::kAbsorbingSlowPath: return "dv.absorbing_slow_path";
    case Counter::kDeltasApplied: return "dv.deltas_applied";
    case Counter::kFrontierWoken: return "dv.frontier_woken";
    case Counter::kAtomicFolds: return "dv.atomic_folds";
    case Counter::kRemoteRequests: return "dv.remote_requests";
    case Counter::kRemoteReplies: return "dv.remote_replies";
    case Counter::kEngineMessagesSent: return "pregel.messages_sent";
    case Counter::kEngineMessagesDelivered:
      return "pregel.messages_delivered";
    case Counter::kEngineMessagesDropped: return "pregel.messages_dropped";
    case Counter::kEngineActiveVertices: return "pregel.active_vertices";
    case Counter::kVerticesHalted: return "pregel.vertices_halted";
    case Counter::kVerticesWoken: return "pregel.vertices_woken";
    case Counter::kSupersteps: return "pregel.supersteps";
    case Counter::kWarmEpochs: return "stream.warm_epochs";
    case Counter::kColdEpochs: return "stream.cold_epochs";
    case Counter::kSnapshotBytesWritten:
      return "persist.snapshot_bytes_written";
    case Counter::kSnapshotBytesRead: return "persist.snapshot_bytes_read";
    case Counter::kVmOpsDispatched: return "vm.ops_dispatched";
    case Counter::kVmFusedOps: return "vm.fused_ops";
    case Counter::kNativeFallbacks: return "dv.native_fallbacks";
    case Counter::kServeEpochs: return "serve.epochs";
    case Counter::kServeReads: return "serve.reads";
    case Counter::kServeMutationBatches: return "serve.mutation_batches";
    case Counter::kServeCoalescedBatches: return "serve.coalesced_batches";
    case Counter::kServeSnapshots: return "serve.snapshots";
    case Counter::kMinmaxRetractions: return "dv.minmax_retractions";
    case Counter::kMinmaxRefolds: return "dv.minmax_refolds";
    case Counter::kMinmaxUnderflows: return "dv.minmax_underflows";
    case Counter::kCount: break;
  }
  DV_FAIL("counter_name out of range");
}

MetricsRegistry::MetricsRegistry(std::size_t lanes)
    : shards_(lanes == 0 ? 1 : lanes) {}

void MetricsRegistry::add_named(const std::string& name, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  named_[name] += n;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramStats& h = histograms_[name];
  if (h.count == 0) {
    h.min = h.max = value;
  } else {
    h.min = value < h.min ? value : h.min;
    h.max = value > h.max ? value : h.max;
  }
  ++h.count;
  h.sum += value;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    std::uint64_t total = 0;
    for (const MetricsShard& sh : shards_) total += sh.counts[c];
    s.counters[counter_name(static_cast<Counter>(c))] = total;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, n] : named_) s.counters[name] += n;
  s.gauges = gauges_;
  s.histograms = histograms_;
  return s;
}

}  // namespace deltav::obs
