#include "dv/obs/trace.h"

namespace deltav::obs {

Tracer::Tracer(std::size_t lanes, std::size_t events_per_lane)
    : lanes_(lanes == 0 ? 1 : lanes),
      epoch_(std::chrono::steady_clock::now()) {
  for (Lane& l : lanes_)
    l.ring.resize(events_per_lane == 0 ? 1 : events_per_lane);
}

std::vector<TraceEvent> Tracer::events(std::size_t lane) const {
  const Lane& l = lanes_[lane < lanes_.size() ? lane : 0];
  const std::size_t n = l.ring.size();
  const std::size_t held =
      l.recorded < n ? static_cast<std::size_t>(l.recorded) : n;
  std::vector<TraceEvent> out;
  out.reserve(held);
  const std::size_t first = l.recorded < n
                                ? 0
                                : static_cast<std::size_t>(l.recorded % n);
  for (std::size_t i = 0; i < held; ++i)
    out.push_back(l.ring[(first + i) % n]);
  return out;
}

std::uint64_t Tracer::dropped(std::size_t lane) const {
  const Lane& l = lanes_[lane < lanes_.size() ? lane : 0];
  const std::uint64_t n = l.ring.size();
  return l.recorded > n ? l.recorded - n : 0;
}

}  // namespace deltav::obs
