// Collector handle and the DV_OBS_* instrumentation layer.
//
// A Collector bundles the metrics registry and the span tracer. Exactly
// one may be installed process-wide (obs::install / obs::current); the
// instrumented subsystems additionally accept an explicit Collector* via
// their option structs (DvRunOptions / pregel::EngineOptions /
// streaming::SessionOptions), falling back to the global one — so a
// bench can meter a single run without touching process state.
//
// Overhead-when-disabled contract (DESIGN.md §8): with no collector
// installed every hook degenerates to a null-pointer test — hot loops
// hold a MetricsShard* (EvalContext::obs) resolved once per superstep,
// tally into function-local integers, and flush only behind that test.
// No locks, no atomics, no allocation, no stores to shared state.
// bench_micro's obs-off/obs-on pair enforces this by numbers.
#pragma once

#include <atomic>

#include "dv/obs/metrics.h"
#include "dv/obs/trace.h"

namespace deltav::obs {

struct Collector {
  MetricsRegistry metrics;
  Tracer trace;

  explicit Collector(std::size_t lanes = MetricsRegistry::kDefaultLanes)
      : metrics(lanes), trace(lanes) {}
};

namespace detail {
inline std::atomic<Collector*>& global_slot() {
  static std::atomic<Collector*> slot{nullptr};
  return slot;
}
}  // namespace detail

/// The process-global collector, or nullptr when observability is off.
inline Collector* current() {
  return detail::global_slot().load(std::memory_order_acquire);
}

/// Installs `c` (nullptr uninstalls). The caller owns the collector and
/// must keep it alive until after uninstalling; returns the previous one.
inline Collector* install(Collector* c) {
  return detail::global_slot().exchange(c, std::memory_order_acq_rel);
}

/// `explicit_collector` when set, else the global one: the single
/// resolution rule every instrumented subsystem uses.
inline Collector* resolve(Collector* explicit_collector) {
  return explicit_collector ? explicit_collector : current();
}

/// RAII span: records [construction, destruction) on `lane` of the
/// collector's tracer. A null collector makes it a no-op.
class Scope {
 public:
  Scope(Collector* col, const char* name, std::size_t lane = 0)
      : tracer_(col ? &col->trace : nullptr), name_(name), lane_(lane) {
    if (tracer_) start_ = tracer_->now_us();
  }
  /// Convenience form against the global collector.
  explicit Scope(const char* name, std::size_t lane = 0)
      : Scope(current(), name, lane) {}
  ~Scope() {
    if (tracer_) tracer_->record(lane_, name_, start_,
                                 tracer_->now_us() - start_);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  std::size_t lane_;
  std::uint64_t start_ = 0;
};

}  // namespace deltav::obs

/// Bump a fixed counter through a possibly-null shard pointer.
#define DV_OBS_COUNT(shard, counter, n)                                   \
  do {                                                                    \
    if (shard) (shard)->add(::deltav::obs::Counter::counter, (n));        \
  } while (0)

/// Open an RAII span against a possibly-null Collector*.
#define DV_OBS_SCOPE(col, name, lane) \
  ::deltav::obs::Scope dv_obs_scope_((col), (name), (lane))
