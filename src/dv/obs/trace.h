// Span tracer: nested phase spans recorded into per-lane ring buffers.
//
// Span hierarchy (DESIGN.md §8): a streaming session nests
//
//   epoch → superstep → compute / exchange
//
// with converge, persist.save / persist.restore and epoch.phase_a /
// epoch.phase_b spans alongside. Every span is a closed interval recorded
// at scope exit as a Chrome trace_event "complete" event (trace_export.h);
// nesting is recovered from timestamp containment, so recording order
// does not matter.
//
// Concurrency: each lane is a single-writer ring buffer — lane w is
// written only by engine worker w's thread (lane 0 doubles as the main
// thread, which is also worker 0's thread), and readers only run when the
// workers are quiescent (export happens after the run). No locks, no
// atomics, no allocation after construction; a full ring overwrites its
// oldest events and counts the loss.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "dv/obs/metrics.h"

namespace deltav::obs {

struct TraceEvent {
  const char* name = nullptr;  // static-storage string (span names are
                               // literals; the tracer never copies)
  std::uint64_t start_us = 0;  // µs since the tracer's construction
  std::uint64_t dur_us = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t lanes = MetricsRegistry::kDefaultLanes,
                  std::size_t events_per_lane = kDefaultEventsPerLane);

  /// Monotonic µs since construction (steady_clock).
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void record(std::size_t lane, const char* name, std::uint64_t start_us,
              std::uint64_t dur_us) {
    Lane& l = lanes_[lane < lanes_.size() ? lane : 0];
    l.ring[l.recorded % l.ring.size()] = TraceEvent{name, start_us, dur_us};
    ++l.recorded;
  }

  std::size_t num_lanes() const { return lanes_.size(); }

  /// Events currently held for `lane`, oldest first (ring order).
  std::vector<TraceEvent> events(std::size_t lane) const;

  /// Events that fell off `lane`'s ring (0 when the ring never filled).
  std::uint64_t dropped(std::size_t lane) const;

  static constexpr std::size_t kDefaultEventsPerLane = 1 << 14;

 private:
  struct alignas(64) Lane {
    std::vector<TraceEvent> ring;
    std::uint64_t recorded = 0;  // monotone; ring index = recorded % size
  };

  std::vector<Lane> lanes_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace deltav::obs
