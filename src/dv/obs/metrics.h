// Metrics registry: named counters, gauges and histograms for the ΔV
// runtime's observability subsystem (DESIGN.md §8).
//
// The hot-path surface is the fixed Counter enum: each series has a slot
// in a cache-line-aligned per-lane shard, and instrumented code holds a
// raw MetricsShard* (null when no collector is installed), so the per-
// event cost is one predictable pointer test plus an array increment —
// and exactly zero stores when observability is off. Lanes map onto
// engine workers (lane 0 doubles as the main thread), so no two threads
// ever write the same shard and no atomics appear on the counting path.
//
// Dynamic (string-keyed) counters, gauges and histograms take a mutex;
// they are reserved for cold paths — warm-blocker reasons once per epoch,
// snapshot CRC timings once per section — never per-message work.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace deltav::obs {

/// Fixed hot-path series. Names (counter_name) are the stable public
/// catalogue — DESIGN.md §8 documents each; CI greps them out of the
/// metrics JSON, so renames are schema breaks.
enum class Counter : std::uint32_t {
  // Incrementalization (§6.3 change check, §6.5 Δ-messages, §6.4 memos).
  kSendsSuppressed,          // change-check / no-op Δ / identity skips
  kDeltaMessages,            // Δ-messages actually sent (§6.5)
  kFullMessages,             // full-value messages actually sent (ΔV*)
  kLastStepSendsSuppressed,  // last-execution analysis zeroed whole sites
  kMemoHits,                 // Eq. 8/9 folds into a memoized accumulator
  kMemoRecomputes,           // Eq. 3 full recomputes from the identity
  kAbsorbingSlowPath,        // ×/&&/|| nnAcc+aggNulls treatment (§6.4.1)
  kDeltasApplied,            // epoch-start Δs folded directly into state
  kFrontierWoken,            // vertices woken by an epoch's mutation frontier
  kAtomicFolds,              // Δ-contributions folded lock-free into aggAccum
                             // slots, bypassing message construction entirely
  // Remote reads (passes/remote_lower.cpp request/response supersteps).
  kRemoteRequests,           // requester-id messages sent in request phases
  kRemoteReplies,            // field-value answers sent in reply phases
  // Engine (mirrors SuperstepStats; aggregated once per superstep).
  kEngineMessagesSent,
  kEngineMessagesDelivered,
  kEngineMessagesDropped,
  kEngineActiveVertices,
  kVerticesHalted,           // vote_to_halt transitions (§6.6)
  kVerticesWoken,            // message-driven reactivations (§6.6)
  kSupersteps,
  // Streaming epochs.
  kWarmEpochs,
  kColdEpochs,
  // Persistence.
  kSnapshotBytesWritten,
  kSnapshotBytesRead,
  // Bytecode VM.
  kVmOpsDispatched,
  kVmFusedOps,               // superinstructions + peephole fusions executed
  // Native tier (codegen/native_module.h).
  kNativeFallbacks,          // --tier=native runs that fell back to the VM
                             // (named reasons under dv.native_fallbacks.*)
  // Serving (dv/serve): the multi-tenant daemon over warm sessions.
  // Incremented via add_named from client/engine threads (request-rate
  // events, not per-message hot-path work); the enum entries exist so the
  // series appear — as zeros — in every snapshot, keeping the catalogue
  // and the metrics schema stable across tools.
  kServeEpochs,              // epochs committed by serving engine threads
  kServeReads,               // GET/TOPK reads answered from a state view
  kServeMutationBatches,     // MUT batches admitted to a session queue
  kServeCoalescedBatches,    // batches merged into an already-open epoch
                             // (group commit; 0 when every epoch is one
                             // batch)
  kServeSnapshots,           // SNAPSHOT requests + epoch checkpoints
  // Retraction memos (streaming/retract): bounded-memory min/max
  // deletion support (DESIGN.md §11).
  kMinmaxRetractions,        // contributions retracted/worsened through
                             // the k-best memo
  kMinmaxRefolds,            // targeted in-neighbor refolds
  kMinmaxUnderflows,         // cells whose k survivors were all retracted
  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Stable dotted series name, e.g. "dv.sends_suppressed".
const char* counter_name(Counter c);

/// One lane's worth of fixed counters. Cache-line aligned so adjacent
/// lanes never false-share; single-writer by construction (lane == the
/// engine worker id, lane 0 == the main thread).
struct alignas(64) MetricsShard {
  std::array<std::uint64_t, kNumCounters> counts{};

  void add(Counter c, std::uint64_t n = 1) {
    counts[static_cast<std::size_t>(c)] += n;
  }
};

class MetricsRegistry {
 public:
  /// `lanes` must cover the widest worker pool that will record into this
  /// registry; out-of-range lanes alias lane 0 (still correct, worst case
  /// contended — but the engine caps workers well below the default).
  explicit MetricsRegistry(std::size_t lanes = kDefaultLanes);

  MetricsShard& shard(std::size_t lane) {
    return shards_[lane < shards_.size() ? lane : 0];
  }

  /// Cold-path string-keyed counter (e.g. "stream.warm_blocked.<reason>").
  void add_named(const std::string& name, std::uint64_t n = 1);
  void set_gauge(const std::string& name, double value);
  /// Histogram observation; tracked as count/sum/min/max.
  void observe(const std::string& name, double value);

  struct HistogramStats {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  /// Point-in-time aggregation across every lane plus the dynamic series.
  /// Fixed counters appear under their counter_name(); counters with a
  /// zero total are still listed (a dead series should read as 0, not as
  /// absent). Safe to call while lanes are quiescent (between supersteps
  /// or after a run).
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;

    std::uint64_t counter(const std::string& name) const {
      const auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    }
  };

  Snapshot snapshot() const;

  static constexpr std::size_t kDefaultLanes = 64;

 private:
  std::vector<MetricsShard> shards_;
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> named_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramStats> histograms_;
};

}  // namespace deltav::obs
