// Sinks + CLI plumbing: the --metrics=<path> / --trace=<path> surface.
//
// Tools construct an ObsSession from their flags. When both paths are
// empty the session is inert — no collector exists and every hook in the
// runtime stays on its null fast path. Otherwise the session owns a
// Collector, installs it globally for its lifetime, and writes the
// metrics JSON and/or Chrome trace on flush() (or destruction).
//
// Metrics JSON schema (tests/schema/metrics.schema.json):
//   { "counters":   {name: integer, ...},
//     "gauges":     {name: number, ...},
//     "histograms": {name: {"count","sum","min","max"}, ...},
//     "epochs":     [ {"epoch": N, "warm": bool, "blocker": "...",
//                      "counters": {...}}, ... ] }   // present when fed
// The schema is add-only: consumers must tolerate new keys.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dv/obs/obs.h"

namespace deltav::obs {

struct ReportOptions {
  std::string metrics_path;  // "" = no metrics file
  std::string trace_path;    // "" = no trace file
  /// "chrome" (trace_event JSON) or "jsonl".
  std::string trace_format = "chrome";
  std::size_t lanes = MetricsRegistry::kDefaultLanes;
};

/// Per-epoch registry diff recorded by streaming tools: counters are the
/// epoch's own increments, not running totals.
struct EpochMetrics {
  std::size_t epoch = 0;
  bool warm = false;
  std::string blocker;  // cold-fallback reason; "" when warm
  std::map<std::string, std::uint64_t> counters;
};

class ObsSession {
 public:
  explicit ObsSession(ReportOptions opts);
  ~ObsSession();  // uninstalls, then best-effort flush()
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool enabled() const { return collector_ != nullptr; }
  /// Null when the session is inert.
  Collector* collector() { return collector_.get(); }

  /// Registers one epoch's counter diff for the metrics file.
  void add_epoch(EpochMetrics em);

  /// Writes the configured files now. Throws CheckError on I/O failure;
  /// the destructor's implicit flush reports to stderr instead.
  void flush();

 private:
  void write_files(bool throw_on_error);

  ReportOptions opts_;
  std::unique_ptr<Collector> collector_;
  std::vector<EpochMetrics> epochs_;
  bool flushed_ = false;
};

/// The metrics document for `snap` (+ optional per-epoch sections).
void write_metrics_json(const MetricsRegistry::Snapshot& snap,
                        const std::vector<EpochMetrics>& epochs,
                        std::ostream& os);

/// Counter-by-counter difference `after - before` (clamped at 0).
std::map<std::string, std::uint64_t> counter_diff(
    const MetricsRegistry::Snapshot& before,
    const MetricsRegistry::Snapshot& after);

}  // namespace deltav::obs
