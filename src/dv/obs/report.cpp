#include "dv/obs/report.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/check.h"
#include "dv/obs/trace_export.h"

namespace deltav::obs {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20) os << ' ';
    else os << c;
  }
}

void write_counters(std::ostream& os,
                    const std::map<std::string, std::uint64_t>& counters) {
  os << "{";
  bool first = true;
  for (const auto& [name, n] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    write_escaped(os, name);
    os << "\":" << n;
  }
  os << "}";
}

}  // namespace

void write_metrics_json(const MetricsRegistry::Snapshot& snap,
                        const std::vector<EpochMetrics>& epochs,
                        std::ostream& os) {
  os << "{\n  \"counters\": ";
  write_counters(os, snap.counters);
  os << ",\n  \"gauges\": {";
  bool first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    write_escaped(os, name);
    os << "\":" << v;
  }
  os << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    write_escaped(os, name);
    os << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << h.min << ",\"max\":" << h.max << "}";
  }
  os << "}";
  if (!epochs.empty()) {
    os << ",\n  \"epochs\": [";
    for (std::size_t i = 0; i < epochs.size(); ++i) {
      const EpochMetrics& em = epochs[i];
      if (i) os << ",";
      os << "\n    {\"epoch\":" << em.epoch
         << ",\"warm\":" << (em.warm ? "true" : "false") << ",\"blocker\":\"";
      write_escaped(os, em.blocker);
      os << "\",\"counters\":";
      write_counters(os, em.counters);
      os << "}";
    }
    os << "\n  ]";
  }
  os << "\n}\n";
}

std::map<std::string, std::uint64_t> counter_diff(
    const MetricsRegistry::Snapshot& before,
    const MetricsRegistry::Snapshot& after) {
  std::map<std::string, std::uint64_t> d;
  for (const auto& [name, n] : after.counters) {
    const std::uint64_t b = before.counter(name);
    d[name] = n > b ? n - b : 0;
  }
  return d;
}

ObsSession::ObsSession(ReportOptions opts) : opts_(std::move(opts)) {
  if (opts_.metrics_path.empty() && opts_.trace_path.empty()) return;
  DV_CHECK_MSG(opts_.trace_format == "chrome" ||
                   opts_.trace_format == "jsonl",
               "unknown trace format '" << opts_.trace_format
                                        << "' (expected chrome|jsonl)");
  collector_ = std::make_unique<Collector>(opts_.lanes);
  install(collector_.get());
}

ObsSession::~ObsSession() {
  if (!collector_) return;
  install(nullptr);
  if (!flushed_) write_files(/*throw_on_error=*/false);
}

void ObsSession::add_epoch(EpochMetrics em) {
  if (collector_) epochs_.push_back(std::move(em));
}

void ObsSession::flush() {
  if (!collector_ || flushed_) return;
  write_files(/*throw_on_error=*/true);
}

void ObsSession::write_files(bool throw_on_error) {
  flushed_ = true;
  const auto fail = [&](const std::string& what) {
    if (throw_on_error) DV_FAIL(what);
    std::fprintf(stderr, "obs: %s\n", what.c_str());
  };
  if (!opts_.metrics_path.empty()) {
    std::ofstream f(opts_.metrics_path);
    if (!f) {
      fail("cannot open metrics file '" + opts_.metrics_path + "'");
    } else {
      write_metrics_json(collector_->metrics.snapshot(), epochs_, f);
      if (!f.good()) fail("write error on '" + opts_.metrics_path + "'");
    }
  }
  if (!opts_.trace_path.empty()) {
    std::ofstream f(opts_.trace_path);
    if (!f) {
      fail("cannot open trace file '" + opts_.trace_path + "'");
    } else {
      if (opts_.trace_format == "jsonl")
        write_trace_jsonl(collector_->trace, f);
      else
        write_chrome_trace(collector_->trace, f);
      if (!f.good()) fail("write error on '" + opts_.trace_path + "'");
    }
  }
}

}  // namespace deltav::obs
