#include "dv/obs/trace_export.h"

#include <algorithm>
#include <ostream>

namespace deltav::obs {

namespace {

struct LaneEvent {
  TraceEvent ev;
  std::size_t lane;
};

/// All lanes' events merged and sorted by (start, longest-first) so a
/// parent span always precedes the children it contains.
std::vector<LaneEvent> collect(const Tracer& tracer) {
  std::vector<LaneEvent> all;
  for (std::size_t lane = 0; lane < tracer.num_lanes(); ++lane)
    for (const TraceEvent& ev : tracer.events(lane))
      all.push_back(LaneEvent{ev, lane});
  std::stable_sort(all.begin(), all.end(),
                   [](const LaneEvent& a, const LaneEvent& b) {
                     if (a.ev.start_us != b.ev.start_us)
                       return a.ev.start_us < b.ev.start_us;
                     return a.ev.dur_us > b.ev.dur_us;
                   });
  return all;
}

/// Span names are C literals, but escape defensively anyway.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20) os << ' ';
    else os << c;
  }
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  const std::vector<LaneEvent> all = collect(tracer);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Track names: lane 0 is the main thread (and engine worker 0, which
  // runs on it); higher lanes are pool workers.
  std::vector<std::uint8_t> used(tracer.num_lanes(), 0);
  for (const LaneEvent& le : all) used[le.lane] = 1;
  for (std::size_t lane = 0; lane < used.size(); ++lane) {
    if (!used[lane]) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << lane
       << ",\"args\":{\"name\":\"";
    if (lane == 0) os << "main/worker 0";
    else os << "worker " << lane;
    os << "\"}}";
  }
  for (const LaneEvent& le : all) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    write_escaped(os, le.ev.name);
    os << "\",\"cat\":\"dv\",\"ph\":\"X\",\"pid\":0,\"tid\":" << le.lane
       << ",\"ts\":" << le.ev.start_us << ",\"dur\":" << le.ev.dur_us << "}";
  }
  os << "]}\n";
}

void write_trace_jsonl(const Tracer& tracer, std::ostream& os) {
  for (const LaneEvent& le : collect(tracer)) {
    os << "{\"name\":\"";
    write_escaped(os, le.ev.name);
    os << "\",\"lane\":" << le.lane << ",\"ts_us\":" << le.ev.start_us
       << ",\"dur_us\":" << le.ev.dur_us << "}\n";
  }
}

}  // namespace deltav::obs
