// Trace export: Chrome trace_event JSON (chrome://tracing, Perfetto) and
// line-delimited JSON for ad-hoc tooling.
#pragma once

#include <iosfwd>

#include "dv/obs/trace.h"

namespace deltav::obs {

/// Chrome trace_event "JSON object format": every span becomes a complete
/// ("ph":"X") event with tid = lane, plus thread_name metadata per lane,
/// so Perfetto renders one track per worker with nesting recovered from
/// timestamp containment. Events are emitted in start-time order.
void write_chrome_trace(const Tracer& tracer, std::ostream& os);

/// One JSON object per line: {"name","lane","ts_us","dur_us"} in
/// start-time order — greppable without a trace viewer.
void write_trace_jsonl(const Tracer& tracer, std::ostream& os);

}  // namespace deltav::obs
