#include "dv/runtime/bytecode.h"

#include <limits>
#include <sstream>

#include "dv/compiler.h"

namespace deltav::dv {

namespace {

constexpr int kMaxRegs = kVmMaxRegs;

bool is_jump(Op op) {
  return op == Op::kJump || op == Op::kJumpIfFalse || op == Op::kJumpIfTrue;
}

/// Peephole pass over a finished chunk: rewrites known hot sequences into
/// single fused instructions and remaps (absolute) jump targets. Windows
/// that a jump lands into mid-sequence are left unfused. The fused forms
/// write the same registers in the same order as the originals, so the
/// rewrite needs no liveness information.
void fuse_chunk(std::vector<Instr>& code) {
  const std::size_t n = code.size();
  std::vector<std::uint8_t> is_target(n + 1, 0);
  for (const Instr& ins : code) {
    if (!is_jump(ins.op)) continue;
    DV_CHECK(ins.imm >= 0 && static_cast<std::size_t>(ins.imm) <= n);
    is_target[static_cast<std::size_t>(ins.imm)] = 1;
  }

  std::vector<Instr> out;
  out.reserve(n);
  std::vector<std::int32_t> new_pc(n + 1);
  std::size_t pc = 0;
  while (pc < n) {
    const auto here = static_cast<std::int32_t>(out.size());
    new_pc[pc] = here;
    const Instr& x = code[pc];
    // {load.n | deg.out} rC; i2f rImm, rC; div.f rA, rB, rImm
    if ((x.op == Op::kLoadGraphSize || x.op == Op::kDegreeOut) &&
        pc + 2 < n && !is_target[pc + 1] && !is_target[pc + 2]) {
      const Instr& y = code[pc + 1];
      const Instr& z = code[pc + 2];
      if (y.op == Op::kI2F && y.b == x.a && z.op == Op::kDivF &&
          z.c == y.a) {
        Instr f;
        f.op = x.op == Op::kLoadGraphSize ? Op::kDivGraphSizeF
                                          : Op::kDivDegOutF;
        f.a = z.a;
        f.b = z.b;
        f.c = x.a;
        f.imm = y.a;
        new_pc[pc + 1] = new_pc[pc + 2] = here;
        out.push_back(f);
        pc += 3;
        continue;
      }
    }
    // ldf.f rA, field; sts.f rA, scratch
    if (x.op == Op::kLoadFieldF && pc + 1 < n && !is_target[pc + 1]) {
      const Instr& y = code[pc + 1];
      if (y.op == Op::kStoreScratchF && y.a == x.a) {
        Instr f;
        f.op = Op::kCopyFieldScratchF;
        f.a = x.a;
        f.b = x.b;
        f.c = y.b;
        new_pc[pc + 1] = here;
        out.push_back(f);
        pc += 2;
        continue;
      }
    }
    // mul.f rT, rB, rC; add.f rA, rE, rT
    if (x.op == Op::kMulF && pc + 1 < n && !is_target[pc + 1]) {
      const Instr& y = code[pc + 1];
      // x.a (a uint8) always fits the low imm byte; y.b is a uint16
      // register index and must fit the high byte.
      if (y.op == Op::kAddF && y.c == x.a && y.b < 256) {
        Instr f;
        f.op = Op::kMulAddF;
        f.a = y.a;
        f.b = x.b;
        f.c = x.c;
        f.imm = static_cast<std::int32_t>(y.b << 8 | x.a);
        new_pc[pc + 1] = here;
        out.push_back(f);
        pc += 2;
        continue;
      }
    }
    // store slot; load same slot into the same register — the load reads
    // back the exact bits the store just wrote, so it is a no-op.
    if (pc + 1 < n && !is_target[pc + 1]) {
      const Instr& y = code[pc + 1];
      const bool dead_load =
          y.a == x.a && y.b == x.b &&
          ((x.op == Op::kStoreFieldI && y.op == Op::kLoadFieldI) ||
           (x.op == Op::kStoreFieldF && y.op == Op::kLoadFieldF) ||
           (x.op == Op::kStoreFieldB && y.op == Op::kLoadFieldB) ||
           (x.op == Op::kStoreScratchI && y.op == Op::kLoadScratchI) ||
           (x.op == Op::kStoreScratchF && y.op == Op::kLoadScratchF) ||
           (x.op == Op::kStoreScratchB && y.op == Op::kLoadScratchB));
      if (dead_load) {
        new_pc[pc + 1] = here;
        out.push_back(x);
        pc += 2;
        continue;
      }
    }
    out.push_back(x);
    ++pc;
  }
  new_pc[n] = static_cast<std::int32_t>(out.size());
  for (Instr& ins : out)
    if (is_jump(ins.op))
      ins.imm = new_pc[static_cast<std::size_t>(ins.imm)];
  code = std::move(out);
}

class Lowerer {
 public:
  Lowerer(VmProgram& vp, const Program& prog) : vp_(vp), prog_(prog) {}

  /// Lowers `root` into a fresh chunk. When `want` is a value type, the
  /// chunk's return value is converted to it (send sub-chunks must return
  /// the site's element type).
  int lower(const Expr& root, Type want = Type::kUnknown) {
    const int id = static_cast<int>(vp_.chunks.size());
    vp_.chunks.emplace_back();  // reserve the slot; filled at the end so
                                // nested lower() calls cannot invalidate it
    Builder b;
    int r = emit(root, b);
    Type result = Type::kUnit;
    if (r >= 0 && root.type != Type::kUnit) {
      Type t = root.type;
      if (want != Type::kUnknown && want != t) {
        r = convert(b, r, t, want);
        t = want;
      }
      push(b, Op::kReturnVal, r);
      result = t;
    } else {
      DV_CHECK_MSG(want == Type::kUnknown || want == Type::kUnit,
                   "unit expression lowered where a value is required");
      b.code.push_back({Op::kReturnUnit});
    }
    Chunk& ch = vp_.chunks[static_cast<std::size_t>(id)];
    fuse_chunk(b.code);
    ch.code = std::move(b.code);
    ch.num_regs = b.high_water;
    ch.result = result;
    return id;
  }

 private:
  struct Builder {
    std::vector<Instr> code;
    int next_reg = 0;
    int high_water = 0;

    int alloc() {
      DV_CHECK_MSG(next_reg < kMaxRegs, "bytecode chunk exceeds "
                                            << kMaxRegs << " registers");
      if (next_reg + 1 > high_water) high_water = next_reg + 1;
      return next_reg++;
    }
  };

  static std::uint8_t reg8(int r) { return static_cast<std::uint8_t>(r); }

  static void push(Builder& b, Op op, int a = 0, int bb = 0, int cc = 0,
                   std::int32_t imm = 0) {
    Instr ins;
    ins.op = op;
    ins.a = reg8(a);
    ins.b = static_cast<std::uint16_t>(bb);
    ins.c = static_cast<std::uint16_t>(cc);
    ins.imm = imm;
    b.code.push_back(ins);
  }

  /// Emits a pending jump; returns its index for patching.
  static std::size_t push_jump(Builder& b, Op op, int cond_reg = 0) {
    push(b, op, cond_reg, 0, 0, -1);
    return b.code.size() - 1;
  }
  static void patch_jump(Builder& b, std::size_t at) {
    b.code[at].imm = static_cast<std::int32_t>(b.code.size());
  }

  int intern_const(VmSlot v) {
    vp_.consts.push_back(v);
    const std::size_t idx = vp_.consts.size() - 1;
    DV_CHECK(idx <= std::numeric_limits<std::int32_t>::max());
    return static_cast<int>(idx);
  }

  /// Static residue of Value::coerce: widen/truncate between the numeric
  /// types exactly as as_f()/as_i() would. Coercing a non-bool to bool is
  /// a CheckError in the interpreter and cannot appear in a typechecked
  /// program, so it is a lowering failure here.
  int convert(Builder& b, int reg, Type from, Type to) {
    if (from == to) return reg;
    Op op;
    if (to == Type::kFloat) {
      if (from == Type::kInt) op = Op::kI2F;
      else if (from == Type::kBool) op = Op::kB2F;
      else DV_FAIL("cannot lower conversion " << type_name(from) << "→float");
    } else if (to == Type::kInt) {
      if (from == Type::kFloat) op = Op::kF2I;
      else if (from == Type::kBool) op = Op::kB2I;
      else DV_FAIL("cannot lower conversion " << type_name(from) << "→int");
    } else {
      DV_FAIL("cannot lower conversion " << type_name(from) << "→"
                                         << type_name(to));
    }
    const int dst = b.alloc();
    push(b, op, dst, reg);
    return dst;
  }

  int emit_typed(const Expr& e, Builder& b, Type want) {
    const int r = emit(e, b);
    DV_CHECK_MSG(r >= 0, "value expected from " << expr_kind_name(e.kind));
    return convert(b, r, e.type, want);
  }

  Op scratch_load_op(Type t) const {
    switch (t) {
      case Type::kInt: return Op::kLoadScratchI;
      case Type::kFloat: return Op::kLoadScratchF;
      case Type::kBool: return Op::kLoadScratchB;
      default: DV_FAIL("scratch slot of type " << type_name(t));
    }
  }
  Op scratch_store_op(Type t) const {
    switch (t) {
      case Type::kInt: return Op::kStoreScratchI;
      case Type::kFloat: return Op::kStoreScratchF;
      case Type::kBool: return Op::kStoreScratchB;
      default: DV_FAIL("scratch store of type " << type_name(t));
    }
  }
  Op field_load_op(Type t) const {
    switch (t) {
      case Type::kInt: return Op::kLoadFieldI;
      case Type::kFloat: return Op::kLoadFieldF;
      case Type::kBool: return Op::kLoadFieldB;
      default: DV_FAIL("field slot of type " << type_name(t));
    }
  }
  Op field_store_op(Type t) const {
    switch (t) {
      case Type::kInt: return Op::kStoreFieldI;
      case Type::kFloat: return Op::kStoreFieldF;
      case Type::kBool: return Op::kStoreFieldB;
      default: DV_FAIL("field store of type " << type_name(t));
    }
  }

  int emit_binary(const Expr& e, Builder& b) {
    // Short-circuit booleans compile to jumps.
    if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
      const int dst = b.alloc();
      const int mark = b.next_reg;
      int r = emit(*e.kids[0], b);
      push(b, Op::kMove, dst, r);
      b.next_reg = mark;
      const std::size_t skip = push_jump(
          b, e.bin_op == BinOp::kAnd ? Op::kJumpIfFalse : Op::kJumpIfTrue,
          dst);
      r = emit(*e.kids[1], b);
      push(b, Op::kMove, dst, r);
      b.next_reg = mark;
      patch_jump(b, skip);
      return dst;
    }

    const Type lt = e.kids[0]->type, rt = e.kids[1]->type;
    const int mark = b.next_reg;
    switch (e.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul: {
        const Type t = e.type;
        const int a = emit_typed(*e.kids[0], b, t);
        const int c = emit_typed(*e.kids[1], b, t);
        b.next_reg = mark;
        const int dst = b.alloc();
        Op op{};
        if (e.bin_op == BinOp::kAdd) op = t == Type::kInt ? Op::kAddI : Op::kAddF;
        if (e.bin_op == BinOp::kSub) op = t == Type::kInt ? Op::kSubI : Op::kSubF;
        if (e.bin_op == BinOp::kMul) op = t == Type::kInt ? Op::kMulI : Op::kMulF;
        push(b, op, dst, a, c);
        return dst;
      }
      case BinOp::kDiv: {
        const int a = emit_typed(*e.kids[0], b, Type::kFloat);
        const int c = emit_typed(*e.kids[1], b, Type::kFloat);
        b.next_reg = mark;
        const int dst = b.alloc();
        push(b, Op::kDivF, dst, a, c);
        return dst;
      }
      case BinOp::kLt:
      case BinOp::kGt:
      case BinOp::kGe:
      case BinOp::kLe: {
        // The interpreter compares via as_f() regardless of operand type.
        const int a = emit_typed(*e.kids[0], b, Type::kFloat);
        const int c = emit_typed(*e.kids[1], b, Type::kFloat);
        b.next_reg = mark;
        const int dst = b.alloc();
        Op op{};
        if (e.bin_op == BinOp::kLt) op = Op::kLtF;
        if (e.bin_op == BinOp::kGt) op = Op::kGtF;
        if (e.bin_op == BinOp::kGe) op = Op::kGeF;
        if (e.bin_op == BinOp::kLe) op = Op::kLeF;
        push(b, op, dst, a, c);
        return dst;
      }
      case BinOp::kEq:
      case BinOp::kNe: {
        // Value::equals: bool pairs compare as bool, int pairs exactly,
        // any float operand unifies the comparison to double. The type
        // checker rejects bool/number mixes.
        const bool ne = e.bin_op == BinOp::kNe;
        Op op;
        int a, c;
        if (lt == Type::kBool && rt == Type::kBool) {
          a = emit(*e.kids[0], b);
          c = emit(*e.kids[1], b);
          op = ne ? Op::kNeB : Op::kEqB;
        } else if (lt == Type::kInt && rt == Type::kInt) {
          a = emit(*e.kids[0], b);
          c = emit(*e.kids[1], b);
          op = ne ? Op::kNeI : Op::kEqI;
        } else {
          a = emit_typed(*e.kids[0], b, Type::kFloat);
          c = emit_typed(*e.kids[1], b, Type::kFloat);
          op = ne ? Op::kNeF : Op::kEqF;
        }
        b.next_reg = mark;
        const int dst = b.alloc();
        push(b, op, dst, a, c);
        return dst;
      }
      default: DV_FAIL("unhandled binary operator in lowering");
    }
  }

  int emit(const Expr& e, Builder& b) {
    switch (e.kind) {
      case ExprKind::kIntLit: {
        const int dst = b.alloc();
        VmSlot v;
        v.i = e.int_val;
        push(b, Op::kConstI, dst, 0, 0, intern_const(v));
        return dst;
      }
      case ExprKind::kFloatLit: {
        const int dst = b.alloc();
        VmSlot v;
        v.f = e.float_val;
        push(b, Op::kConstF, dst, 0, 0, intern_const(v));
        return dst;
      }
      case ExprKind::kBoolLit: {
        const int dst = b.alloc();
        push(b, Op::kConstB, dst, 0, 0, e.bool_val ? 1 : 0);
        return dst;
      }
      case ExprKind::kInfty: {
        const int dst = b.alloc();
        VmSlot v;
        v.f = std::numeric_limits<double>::infinity();
        push(b, Op::kConstF, dst, 0, 0, intern_const(v));
        return dst;
      }
      case ExprKind::kGraphSize: {
        const int dst = b.alloc();
        push(b, Op::kLoadGraphSize, dst);
        return dst;
      }
      case ExprKind::kVertexIdRef: {
        const int dst = b.alloc();
        push(b, Op::kLoadVertexId, dst);
        return dst;
      }
      case ExprKind::kStableRef: {
        const int dst = b.alloc();
        push(b, Op::kLoadStable, dst);
        return dst;
      }
      case ExprKind::kEdgeWeight: {
        const int dst = b.alloc();
        push(b, Op::kLoadEdgeWeight, dst);
        return dst;
      }
      case ExprKind::kParamRef: {
        const int dst = b.alloc();
        const Type t = prog_.params[static_cast<std::size_t>(e.slot)].type;
        Op op = t == Type::kInt ? Op::kLoadParamI
                : t == Type::kFloat ? Op::kLoadParamF
                                    : Op::kLoadParamB;
        push(b, op, dst, e.slot);
        return dst;
      }
      case ExprKind::kVarRef: {
        if (e.var_kind == VarKind::kIter) {
          const int dst = b.alloc();
          push(b, Op::kLoadIter, dst);
          return dst;
        }
        DV_CHECK_MSG(e.var_kind == VarKind::kLet,
                     "unresolved variable in lowering");
        [[fallthrough]];
      }
      case ExprKind::kScratchRef: {
        const int dst = b.alloc();
        const Type t = prog_.scratch[static_cast<std::size_t>(e.slot)].type;
        push(b, scratch_load_op(t), dst, e.slot);
        return dst;
      }
      case ExprKind::kFieldRef: {
        const int dst = b.alloc();
        const Type t = prog_.fields[static_cast<std::size_t>(e.slot)].type;
        push(b, field_load_op(t), dst, e.slot);
        return dst;
      }
      case ExprKind::kBinary: return emit_binary(e, b);
      case ExprKind::kUnary: {
        const int mark = b.next_reg;
        if (e.un_op == UnOp::kNot) {
          const int r = emit(*e.kids[0], b);
          b.next_reg = mark;
          const int dst = b.alloc();
          push(b, Op::kNotB, dst, r);
          return dst;
        }
        const Type t = e.type;
        const int r = emit_typed(*e.kids[0], b, t);
        b.next_reg = mark;
        const int dst = b.alloc();
        push(b, t == Type::kInt ? Op::kNegI : Op::kNegF, dst, r);
        return dst;
      }
      case ExprKind::kPairOp: {
        const int mark = b.next_reg;
        const Type t = e.type;
        // The interpreter compares as_f() and then coerces the *chosen*
        // operand; converting both operands first selects the same value.
        const int a = emit_typed(*e.kids[0], b, t);
        const int c = emit_typed(*e.kids[1], b, t);
        b.next_reg = mark;
        const int dst = b.alloc();
        Op op{};
        if (e.pair_op == PairOp::kMin)
          op = t == Type::kInt ? Op::kMinI : Op::kMinF;
        else
          op = t == Type::kInt ? Op::kMaxI : Op::kMaxF;
        push(b, op, dst, a, c);
        return dst;
      }
      case ExprKind::kIf: {
        const bool value_form = e.type != Type::kUnit;
        const int dst = value_form ? b.alloc() : -1;
        const int mark = b.next_reg;
        const int cond = emit(*e.kids[0], b);
        b.next_reg = mark;
        const std::size_t to_else = push_jump(b, Op::kJumpIfFalse, cond);
        if (value_form) {
          const int r = emit_typed(*e.kids[1], b, e.type);
          push(b, Op::kMove, dst, r);
        } else {
          emit(*e.kids[1], b);
        }
        b.next_reg = mark;
        if (e.kids.size() == 3) {
          const std::size_t to_end = push_jump(b, Op::kJump);
          patch_jump(b, to_else);
          if (value_form) {
            const int r = emit_typed(*e.kids[2], b, e.type);
            push(b, Op::kMove, dst, r);
          } else {
            emit(*e.kids[2], b);
          }
          b.next_reg = mark;
          patch_jump(b, to_end);
        } else if (e.obs_site >= 0) {
          // Change-check guard: synthesize an else edge that counts the
          // suppressed broadcast (no-op when unmetered).
          const std::size_t to_end = push_jump(b, Op::kJump);
          patch_jump(b, to_else);
          Instr ins;
          ins.op = Op::kObsCount;
          ins.a = static_cast<std::uint8_t>(e.dir);
          ins.imm = e.obs_site;
          b.code.push_back(ins);
          patch_jump(b, to_end);
        } else {
          patch_jump(b, to_else);
        }
        return dst;
      }
      case ExprKind::kLet: {
        const int mark = b.next_reg;
        const int r = emit_typed(*e.kids[0], b, e.decl_type);
        push(b, scratch_store_op(e.decl_type), r, e.slot);
        b.next_reg = mark;
        return emit(*e.kids[1], b);
      }
      case ExprKind::kSeq: {
        const int mark = b.next_reg;
        int last = -1;
        for (std::size_t i = 0; i < e.kids.size(); ++i) {
          b.next_reg = mark;
          last = emit(*e.kids[i], b);
        }
        return last;
      }
      case ExprKind::kAssign: {
        const int mark = b.next_reg;
        if (e.assign_target == AssignTarget::kField) {
          const Field& f = prog_.fields[static_cast<std::size_t>(e.slot)];
          const int r = emit_typed(*e.kids[0], b, f.type);
          // Quiescence tracks user-visible writes only (see interpreter).
          push(b, field_store_op(f.type), r, e.slot,
               f.origin == Field::Origin::kUser ? 1 : 0);
        } else {
          const ScratchVar& sv =
              prog_.scratch[static_cast<std::size_t>(e.slot)];
          const int r = emit_typed(*e.kids[0], b, sv.type);
          push(b, scratch_store_op(sv.type), r, e.slot);
        }
        b.next_reg = mark;
        return -1;
      }
      case ExprKind::kLocalDecl: {
        const int mark = b.next_reg;
        const int r = emit_typed(*e.kids[0], b, e.decl_type);
        // Init-block declarations never count as quiescence-relevant
        // assignments (mirrors the interpreter's kLocalDecl).
        push(b, field_store_op(e.decl_type), r, e.slot, 0);
        b.next_reg = mark;
        return -1;
      }
      case ExprKind::kDegree: {
        const int dst = b.alloc();
        push(b, e.dir == GraphDir::kIn ? Op::kDegreeIn : Op::kDegreeOut,
             dst);
        return dst;
      }
      case ExprKind::kFoldMessages: {
        const int dst = b.alloc();
        const AggSite& site = prog_.sites[static_cast<std::size_t>(e.site)];
        push(b, e.flag ? Op::kFoldDelta : Op::kFoldFull, dst, 0, 0, e.site);
        return convert(b, dst, site.elem_type, e.type);
      }
      case ExprKind::kSendLoop: {
        const AggSite& site = prog_.sites[static_cast<std::size_t>(e.site)];
        Instr ins;
        ins.op = e.flag ? Op::kSendDelta : Op::kSendFull;
        ins.a = static_cast<std::uint8_t>(e.dir);
        ins.imm = e.site;
        ins.b = send_operand(*e.kids[0], site.elem_type);
        if (e.flag) ins.c = send_operand(*e.kids[1], site.elem_type);
        b.code.push_back(ins);
        return -1;
      }
      case ExprKind::kHalt:
        push(b, Op::kHalt);
        return -1;
      case ExprKind::kAgg:
      case ExprKind::kNeighborField:
        DV_FAIL("unconverted " << expr_kind_name(e.kind)
                               << " reached bytecode lowering (compiler "
                                  "bug)");
    }
    DV_FAIL("unhandled expression kind in lowering");
  }

  /// Packs a send-loop payload. Bare slots whose static type already
  /// matches the element type become direct operands (zero dispatch per
  /// edge); everything else — edge-dependent payloads, arithmetic,
  /// type-mismatched slots — compiles to a sub-chunk run per target.
  std::uint16_t send_operand(const Expr& e, Type elem) {
    switch (e.kind) {
      case ExprKind::kFieldRef:
        if (prog_.fields[static_cast<std::size_t>(e.slot)].type == elem)
          return pack_send_operand(SendSrc::kField,
                                   static_cast<std::uint16_t>(e.slot));
        break;
      case ExprKind::kVarRef:
        if (e.var_kind != VarKind::kLet) break;
        [[fallthrough]];
      case ExprKind::kScratchRef:
        if (prog_.scratch[static_cast<std::size_t>(e.slot)].type == elem)
          return pack_send_operand(SendSrc::kScratch,
                                   static_cast<std::uint16_t>(e.slot));
        break;
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kBoolLit:
      case ExprKind::kInfty: {
        VmSlot v;
        switch (elem) {
          case Type::kInt:
            v.i = e.kind == ExprKind::kFloatLit
                      ? static_cast<std::int64_t>(e.float_val)
                      : e.kind == ExprKind::kBoolLit
                            ? static_cast<std::int64_t>(e.bool_val)
                            : e.int_val;
            break;
          case Type::kFloat:
            v.f = e.kind == ExprKind::kIntLit
                      ? static_cast<double>(e.int_val)
                      : e.kind == ExprKind::kBoolLit
                            ? (e.bool_val ? 1.0 : 0.0)
                            : e.kind == ExprKind::kInfty
                                  ? std::numeric_limits<double>::infinity()
                                  : e.float_val;
            break;
          case Type::kBool:
            DV_CHECK_MSG(e.kind == ExprKind::kBoolLit,
                         "non-bool literal sent to a bool site");
            v.b = e.bool_val;
            break;
          default: DV_FAIL("send payload of type " << type_name(elem));
        }
        return pack_send_operand(SendSrc::kConst,
                                 static_cast<std::uint16_t>(intern_const(v)));
      }
      default: break;
    }
    const int chunk = lower(e, elem);
    return pack_send_operand(SendSrc::kChunk,
                             static_cast<std::uint16_t>(chunk));
  }

  VmProgram& vp_;
  const Program& prog_;
};

const char* op_name(Op op) {
  switch (op) {
    case Op::kConstI: return "const.i";
    case Op::kConstF: return "const.f";
    case Op::kConstB: return "const.b";
    case Op::kMove: return "move";
    case Op::kI2F: return "i2f";
    case Op::kF2I: return "f2i";
    case Op::kB2F: return "b2f";
    case Op::kB2I: return "b2i";
    case Op::kLoadIter: return "load.iter";
    case Op::kLoadStable: return "load.stable";
    case Op::kLoadVertexId: return "load.vid";
    case Op::kLoadGraphSize: return "load.n";
    case Op::kLoadEdgeWeight: return "load.edge";
    case Op::kLoadParamI: return "ldp.i";
    case Op::kLoadParamF: return "ldp.f";
    case Op::kLoadParamB: return "ldp.b";
    case Op::kDegreeIn: return "deg.in";
    case Op::kDegreeOut: return "deg.out";
    case Op::kLoadFieldI: return "ldf.i";
    case Op::kLoadFieldF: return "ldf.f";
    case Op::kLoadFieldB: return "ldf.b";
    case Op::kStoreFieldI: return "stf.i";
    case Op::kStoreFieldF: return "stf.f";
    case Op::kStoreFieldB: return "stf.b";
    case Op::kLoadScratchI: return "lds.i";
    case Op::kLoadScratchF: return "lds.f";
    case Op::kLoadScratchB: return "lds.b";
    case Op::kStoreScratchI: return "sts.i";
    case Op::kStoreScratchF: return "sts.f";
    case Op::kStoreScratchB: return "sts.b";
    case Op::kAddI: return "add.i";
    case Op::kAddF: return "add.f";
    case Op::kSubI: return "sub.i";
    case Op::kSubF: return "sub.f";
    case Op::kMulI: return "mul.i";
    case Op::kMulF: return "mul.f";
    case Op::kDivF: return "div.f";
    case Op::kNegI: return "neg.i";
    case Op::kNegF: return "neg.f";
    case Op::kNotB: return "not";
    case Op::kLtF: return "lt.f";
    case Op::kLeF: return "le.f";
    case Op::kGtF: return "gt.f";
    case Op::kGeF: return "ge.f";
    case Op::kEqI: return "eq.i";
    case Op::kEqF: return "eq.f";
    case Op::kEqB: return "eq.b";
    case Op::kNeI: return "ne.i";
    case Op::kNeF: return "ne.f";
    case Op::kNeB: return "ne.b";
    case Op::kMinI: return "min.i";
    case Op::kMinF: return "min.f";
    case Op::kMaxI: return "max.i";
    case Op::kMaxF: return "max.f";
    case Op::kJump: return "jmp";
    case Op::kJumpIfFalse: return "jf";
    case Op::kJumpIfTrue: return "jt";
    case Op::kHalt: return "halt";
    case Op::kReturnVal: return "ret";
    case Op::kReturnUnit: return "ret.unit";
    case Op::kFoldFull: return "fold.full";
    case Op::kFoldDelta: return "fold.delta";
    case Op::kSendDelta: return "send.delta";
    case Op::kSendFull: return "send.full";
    case Op::kSendDeltaAtomic: return "send.delta.atomic";
    case Op::kDivGraphSizeF: return "div.n.f";
    case Op::kDivDegOutF: return "div.degout.f";
    case Op::kCopyFieldScratchF: return "cpfs.f";
    case Op::kMulAddF: return "muladd.f";
    case Op::kObsCount: return "obs.count";
  }
  return "?";
}

const char* send_src_name(SendSrc s) {
  switch (s) {
    case SendSrc::kField: return "field";
    case SendSrc::kScratch: return "scratch";
    case SendSrc::kConst: return "const";
    case SendSrc::kChunk: return "chunk";
  }
  return "?";
}

}  // namespace

VmProgram lower_program(const CompiledProgram& cp) {
  VmProgram vp;
  Lowerer lw(vp, cp.program);
  const Program& prog = cp.program;
  const auto add_root = [&](const ExprPtr& e) {
    if (e) vp.roots.emplace(e.get(), lw.lower(*e));
  };
  add_root(prog.init);
  for (const Stmt& s : prog.stmts) {
    add_root(s.body);
    add_root(s.until);
  }
  for (const AggSite& site : prog.sites) {
    add_root(site.send_expr);
    add_root(site.init_send_expr);
  }
  return vp;
}

int lower_root(VmProgram& vp, const Program& prog, const Expr& root) {
  Lowerer lw(vp, prog);
  const int id = lw.lower(root);
  vp.roots.emplace(&root, id);
  return id;
}

std::string to_string(const VmProgram& vp) {
  std::ostringstream os;
  for (std::size_t ci = 0; ci < vp.chunks.size(); ++ci) {
    const Chunk& ch = vp.chunks[ci];
    os << "chunk " << ci << " (regs=" << ch.num_regs << ", result="
       << type_name(ch.result) << "):\n";
    for (std::size_t pc = 0; pc < ch.code.size(); ++pc) {
      const Instr& ins = ch.code[pc];
      os << "  " << pc << ": " << op_name(ins.op);
      switch (ins.op) {
        case Op::kSendDelta:
        case Op::kSendDeltaAtomic:
        case Op::kSendFull: {
          os << " site=" << ins.imm << " new=" << send_src_name(
                send_operand_src(ins.b)) << ":" << send_operand_index(ins.b);
          if (ins.op != Op::kSendFull)
            os << " old=" << send_src_name(send_operand_src(ins.c)) << ":"
               << send_operand_index(ins.c);
          break;
        }
        case Op::kJump:
        case Op::kJumpIfFalse:
        case Op::kJumpIfTrue:
          os << " r" << int(ins.a) << " -> " << ins.imm;
          break;
        default:
          os << " r" << int(ins.a) << ", " << ins.b << ", " << ins.c
             << ", " << ins.imm;
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace deltav::dv
