// Lock-free fold path for commutative-associative aggregations.
//
// When the incrementalize pass proves a site's ⊞ is exactly
// commutative-associative (integer +, min, max — and float + under the
// --atomic_float opt-in), Δ-sends skip message construction entirely:
// the sender folds the Δ-payload straight into a per-(vertex, site)
// pending slot with an atomic fetch-add (integer sum) or a CAS loop over
// the value's bit pattern (min/max, float sum), and marks the destination
// in its own lane's frontier bitmap. After the superstep's fork-join
// barrier the runner drains single-threaded: for every marked
// (vertex, site) it applies the pending contribution to the aggAccum
// field via the same apply_delta the buffered path uses, resets the slot
// to the identity, and wakes the vertex — replacing the exchange scan.
//
// Correctness contract (DESIGN.md "Fold paths"):
//  * pending slots hold the ⊞-fold of every contribution since the last
//    drain, starting from the identity. For integer + that fold is a
//    wrapping fetch_add; for min/max a CAS publishes the winning bits.
//    Both are order-independent, so results are bit-identical to any
//    buffered delivery order.
//  * the drain applies a marked slot UNCONDITIONALLY, even when it still
//    holds identity bits: the buffered path also delivers messages whose
//    combined payload equals the identity (e.g. −0.0 + 0.0), and folding
//    them yields +0.0 where skipping would keep −0.0. Wake sets match for
//    the same reason — a combined-to-identity message still wakes its
//    receiver.
//  * frontier words are per-lane and single-writer; the engine's join
//    barrier publishes them to the draining thread, so the words
//    themselves need no atomics.
//  * relaxed ordering everywhere: slots are independent accumulators and
//    the fork-join barrier provides the inter-thread ordering.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "dv/runtime/value.h"
#include "graph/csr_graph.h"

namespace deltav::dv {

/// How the runner chooses between the buffered message path and the
/// lock-free fold path, per aggregation site.
enum class FoldPath : std::uint8_t {
  kAuto,      // atomic wherever the pass proved eligibility (default)
  kBuffered,  // always buffer — the general fallback, and the oracle
  kAtomic,    // force the atomic path on every eligible site
};

inline std::uint64_t atomic_fold_bits(Type t, const Value& v) {
  std::uint64_t bits = 0;
  if (t == Type::kFloat) {
    const double f = v.as_f();
    std::memcpy(&bits, &f, sizeof(bits));
  } else {
    const std::int64_t i = v.as_i();
    std::memcpy(&bits, &i, sizeof(bits));
  }
  return bits;
}

inline Value atomic_fold_value(Type t, std::uint64_t bits) {
  if (t == Type::kFloat) {
    double f;
    std::memcpy(&f, &bits, sizeof(f));
    return Value::of_float(f);
  }
  std::int64_t i;
  std::memcpy(&i, &bits, sizeof(i));
  return Value::of_int(i);
}

/// Pending-slot table: one std::atomic<uint64_t> per (vertex, routed
/// site), identity-initialized, owned by the runner and shared by every
/// worker lane. `route[site]` maps a site id to its column in the table
/// (-1 = site stays buffered).
struct AtomicFoldTable {
  std::vector<std::atomic<std::uint64_t>> slots;
  std::vector<int> route;        // site id -> column, -1 = buffered
  std::vector<AggOp> ops;        // per column
  std::vector<Type> types;       // per column
  std::vector<std::uint64_t> identity;  // per column, as bits
  std::size_t num_vertices = 0;

  std::size_t columns() const { return ops.size(); }
  bool empty() const { return ops.empty(); }

  std::size_t slot_index(graph::VertexId v, int column) const {
    return static_cast<std::size_t>(v) * columns() +
           static_cast<std::size_t>(column);
  }

  /// (Re)initializes every slot to its column's identity. Single-threaded;
  /// called at construction and on growth.
  void reset(std::size_t n) {
    num_vertices = n;
    std::vector<std::atomic<std::uint64_t>> fresh(n * columns());
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t c = 0; c < columns(); ++c)
        fresh[v * columns() + c].store(identity[c],
                                       std::memory_order_relaxed);
    slots.swap(fresh);
  }

  /// Folds one Δ-contribution into (dst, column). Integer sum is a single
  /// wrapping fetch_add; everything else is a CAS loop publishing
  /// agg_apply(cur, payload)'s bits. Returns false when the payload cannot
  /// be folded atomically (NaN float — CAS equality over NaN bits is not
  /// the fold's ordering) and the caller must fall back to a buffered
  /// message for this one contribution.
  bool fold(graph::VertexId dst, int column, const Value& payload) {
    const AggOp op = ops[static_cast<std::size_t>(column)];
    const Type t = types[static_cast<std::size_t>(column)];
    std::atomic<std::uint64_t>& slot = slots[slot_index(dst, column)];
    if (op == AggOp::kSum && t == Type::kInt) {
      slot.fetch_add(static_cast<std::uint64_t>(payload.as_i()),
                     std::memory_order_relaxed);
      return true;
    }
    if (t == Type::kFloat && std::isnan(payload.as_f())) return false;
    const Value contrib = payload.coerce(t);
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    for (;;) {
      const Value folded =
          agg_apply(op, t, atomic_fold_value(t, cur), contrib);
      const std::uint64_t want = atomic_fold_bits(t, folded);
      if (want == cur) return true;  // contribution cannot win — done
      if (slot.compare_exchange_weak(cur, want, std::memory_order_relaxed,
                                     std::memory_order_relaxed))
        return true;
    }
  }

  /// Drains one marked slot: swaps the identity back in and returns the
  /// accumulated contribution. Single-threaded (post-barrier), but the
  /// exchange keeps it correct even if a future caller overlaps.
  Value take(graph::VertexId dst, int column) {
    std::atomic<std::uint64_t>& slot = slots[slot_index(dst, column)];
    const std::uint64_t bits = slot.exchange(
        identity[static_cast<std::size_t>(column)],
        std::memory_order_relaxed);
    return atomic_fold_value(types[static_cast<std::size_t>(column)], bits);
  }
};

/// Per-worker-lane frontier bitmap plus fold counter. Single-writer: only
/// the owning lane marks bits during a superstep; the runner ORs all lanes
/// together in the post-barrier drain.
struct AtomicFoldLane {
  /// words[column * words_per_column + (v >> 6)], bit (v & 63).
  std::vector<std::uint64_t> words;
  std::size_t words_per_column = 0;
  std::uint64_t folds = 0;  // contributions folded by this lane

  void reset(std::size_t n, std::size_t columns) {
    words_per_column = (n + 63) / 64;
    words.assign(words_per_column * columns, 0);
    folds = 0;
  }

  void mark(graph::VertexId v, int column) {
    words[static_cast<std::size_t>(column) * words_per_column +
          (static_cast<std::size_t>(v) >> 6)] |=
        std::uint64_t{1} << (static_cast<std::size_t>(v) & 63);
  }
};

}  // namespace deltav::dv
