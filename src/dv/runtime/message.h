// The runtime message format of compiled ΔV programs, and its combiner.
//
// One message type serves both variants: ΔV* messages carry full values
// with zero counters; ΔV messages carry Δ-payloads plus the absorbing-state
// transition counters of §6.4.1. Both combine with the site's own ⊞ (for
// Δ-payloads the combination of two deltas is again a delta — Eq. 11 is
// associative in the update), and the counters combine additively, which is
// what makes the format legal under Pregel's commutative/associative
// combiner contract (§2).
//
// `wire` records the logical on-the-wire size in bytes, assigned at send
// time from the site's element type: payload bytes, plus one site-id byte
// when the program has more than one aggregation site, plus one tag byte
// for incrementalized multiplicative sites. Figure-4 byte counts use this,
// not sizeof(DvMessage).
#pragma once

#include <cstdint>
#include <vector>

#include "dv/runtime/value.h"
#include "graph/csr_graph.h"
#include "pregel/engine.h"

namespace deltav::dv {

struct DvMessage {
  Value payload{};
  std::int32_t nulls = 0;
  std::int32_t denulls = 0;
  std::uint8_t site = 0;
  std::uint8_t wire = 0;
};

struct DvMessageTraits {
  static std::size_t wire_size(const DvMessage& m) { return m.wire; }
};

/// Per-site operator table shared by the combiner and the interpreter.
struct SiteOpTable {
  std::vector<AggOp> ops;
  std::vector<Type> types;
};

struct DvCombiner {
  const SiteOpTable* table = nullptr;

  void operator()(DvMessage& acc, const DvMessage& in) const {
    DV_DCHECK(acc.site == in.site);
    const auto s = static_cast<std::size_t>(acc.site);
    const AggOp op = table->ops[s];
    const Type t = table->types[s];
    // Float-sum is the dominant combine (PageRank/HITS contributions); its
    // agg_apply reduces to one add when both payloads already carry the
    // float tag, skipping the operator switch and Value re-boxing.
    if (op == AggOp::kSum && t == Type::kFloat &&
        acc.payload.type == Type::kFloat &&
        in.payload.type == Type::kFloat) {
      acc.payload.f += in.payload.f;
    } else {
      acc.payload = agg_apply(op, t, acc.payload, in.payload);
    }
    acc.nulls += in.nulls;
    acc.denulls += in.denulls;
  }

  /// Combine per (destination, site): deltas for different aggregations
  /// must not mix.
  std::uint64_t key(graph::VertexId dst, const DvMessage& m) const {
    return (static_cast<std::uint64_t>(dst) << 8) | m.site;
  }

  /// Dense factoring of the same key — the engine combines through a
  /// direct-indexed (vertex × site) slot array when the domain is small.
  std::size_t num_subkeys() const { return table->ops.size(); }
  std::size_t subkey(const DvMessage& m) const { return m.site; }
};

using DvEngine = pregel::Engine<DvMessage, DvCombiner, DvMessageTraits>;

}  // namespace deltav::dv
