#include "dv/runtime/layout.h"

#include <sstream>

namespace deltav::dv {

StateLayout StateLayout::of(const Program& prog) {
  StateLayout l;
  std::size_t words = 0, bools = 0;
  for (const Field& f : prog.fields) {
    const std::size_t bytes = type_state_bytes(f.type);
    (f.type == Type::kBool ? bools : words) += bytes;
    switch (f.origin) {
      case Field::Origin::kUser: l.user_bytes += bytes; break;
      case Field::Origin::kSentBinding: l.binding_bytes += bytes; break;
      case Field::Origin::kAccumulator: l.accumulator_bytes += bytes; break;
      case Field::Origin::kNnAcc:
      case Field::Origin::kNullCount:
        l.multiplicative_bytes += bytes;
        break;
      case Field::Origin::kLastSent: l.epsilon_bytes += bytes; break;
    }
  }
  const std::size_t raw = words + bools;
  l.total_bytes = (raw + 7) / 8 * 8;  // struct-align to 8
  if (l.total_bytes == 0) l.total_bytes = 8;  // empty state still occupies
  return l;
}

std::string StateLayout::summary() const {
  std::ostringstream os;
  os << total_bytes << " B (user " << user_bytes << ", bindings "
     << binding_bytes << ", accumulators " << accumulator_bytes
     << ", multiplicative " << multiplicative_bytes << ", epsilon "
     << epsilon_bytes << ")";
  return os.str();
}

}  // namespace deltav::dv
