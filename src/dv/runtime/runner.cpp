#include "dv/runtime/runner.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <string_view>

#include "dv/codegen/native_module.h"
#include "dv/persist/snapshot.h"
#include "dv/runtime/delta.h"
#include "dv/runtime/vm.h"
#include "pregel/aggregator.h"

namespace deltav::dv {

namespace {

/// Adapts the engine's per-vertex send API to the interpreter's SendSink,
/// optionally teeing every message into the debug probe. When the runner
/// routes sites through the lock-free fold path, this sink is also the
/// generic catcher for sends that bypass the tiers' fused fast paths
/// (push_first priming, retractions): routed sites fold into the pending
/// slots here instead of entering the engine. The probe and the atomic
/// path are mutually exclusive (the runner forces buffered under a probe:
/// a message probe has nothing to observe on a message-free path).
class EngineSink : public SendSink {
 public:
  using Ctx = DvEngine::Context;
  using Probe = std::function<void(graph::VertexId, graph::VertexId,
                                   const DvMessage&)>;
  void bind(Ctx* ctx, const Probe* probe) {
    ctx_ = ctx;
    probe_ = probe && *probe ? probe : nullptr;
  }
  void bind_atomic(AtomicFoldTable* table, AtomicFoldLane* lane) {
    atomic_ = table;
    lane_ = lane;
  }
  void send(graph::VertexId dst, const DvMessage& msg) override {
    if (atomic_) {
      const int col = atomic_->route[msg.site];
      if (col >= 0 && atomic_->fold(dst, col, msg.payload)) {
        lane_->mark(dst, col);
        ++lane_->folds;
        return;
      }
    }
    if (probe_) (*probe_)(ctx_->vertex(), dst, msg);
    ctx_->send(dst, msg);
  }
  void send_span(std::span<const graph::VertexId> dsts,
                 const DvMessage& msg) override {
    if (atomic_) {
      const int col = atomic_->route[msg.site];
      if (col >= 0) {
        for (const graph::VertexId dst : dsts) {
          if (atomic_->fold(dst, col, msg.payload)) {
            lane_->mark(dst, col);
            ++lane_->folds;
          } else {
            ctx_->send(dst, msg);
          }
        }
        return;
      }
    }
    if (probe_)
      for (const graph::VertexId dst : dsts) (*probe_)(ctx_->vertex(), dst, msg);
    ctx_->send_span(dsts, msg);
  }

 private:
  Ctx* ctx_ = nullptr;
  const Probe* probe_ = nullptr;
  AtomicFoldTable* atomic_ = nullptr;
  AtomicFoldLane* lane_ = nullptr;
};

/// Does any node of `e` contain `stable`? (Pre-analyzed by typecheck, but
/// re-derived here to keep the runner independent of analysis plumbing.)
bool uses_stable(const Expr& e) {
  if (e.kind == ExprKind::kStableRef) return true;
  for (const auto& k : e.kids)
    if (uses_stable(*k)) return true;
  return false;
}

/// Does any node of `e` have kind `k`? (warm_blocker's dependency scans.)
bool expr_contains(const Expr& e, ExprKind k) {
  if (e.kind == k) return true;
  for (const auto& kid : e.kids)
    if (kid && expr_contains(*kid, k)) return true;
  return false;
}

/// Does `e` read the enclosing statement's iteration variable?
bool expr_reads_iter(const Expr& e) {
  if (e.kind == ExprKind::kVarRef && e.var_kind == VarKind::kIter)
    return true;
  for (const auto& kid : e.kids)
    if (kid && expr_reads_iter(*kid)) return true;
  return false;
}

/// Marks the field slots `e` assigns (kAssign nodes targeting vertex
/// state, not scratch).
void mark_field_writes(const Expr& e, std::vector<std::uint8_t>& written) {
  if (e.kind == ExprKind::kAssign &&
      e.assign_target == AssignTarget::kField && e.slot >= 0 &&
      static_cast<std::size_t>(e.slot) < written.size())
    written[static_cast<std::size_t>(e.slot)] = 1;
  for (const auto& kid : e.kids)
    if (kid) mark_field_writes(*kid, written);
}

/// Does `e` read any field slot marked in `written`?
bool expr_reads_marked_field(const Expr& e,
                             const std::vector<std::uint8_t>& written) {
  if (e.kind == ExprKind::kFieldRef && e.slot >= 0 &&
      static_cast<std::size_t>(e.slot) < written.size() &&
      written[static_cast<std::size_t>(e.slot)])
    return true;
  for (const auto& kid : e.kids)
    if (kid && expr_reads_marked_field(*kid, written)) return true;
  return false;
}

}  // namespace

class DvRunner::Impl {
 public:
  Impl(const CompiledProgram& cp, graph::GraphView g, DvRunOptions options)
      : cp_(cp), prog_(cp.program), g_(g), options_(std::move(options)) {
    validate();
    const std::size_t n = g_.num_vertices();
    stride_ = prog_.fields.size();
    state_.assign(n * stride_, Value{});
    init_compiler_fields();
    bind_params();
    compute_site_wires();

    for (const AggSite& site : prog_.sites)
      has_channels_ = has_channels_ || site.is_channel();
    for (const Stmt& stmt : prog_.stmts)
      reference_remote_ =
          reference_remote_ ||
          expr_contains(*stmt.body, ExprKind::kRemoteRead);
    // The reference interpretation of remote reads (lower_remote = false)
    // snapshots full vertex state per superstep — a differential oracle,
    // not an execution strategy — and exists on the tree tier only.
    DV_CHECK_MSG(!reference_remote_ || options_.tier == ExecTier::kTree,
                 "non-lowered remote reads (the reference interpretation) "
                 "run on the tree tier only");

    pregel::EngineOptions eopts = options_.engine;
    // The combiner keys on (destination, site); distinct requests — and
    // their distinct replies — to the same vertex on the same channel
    // would merge. Channel traffic must arrive message-per-message.
    eopts.use_combiner = options_.use_combiner && !has_channels_;
    if (!eopts.collector) eopts.collector = options_.collector;
    DvCombiner combiner{&cp_.site_ops};
    engine_ = std::make_unique<DvEngine>(n, eopts, combiner);

    // Scratch slots are reset per vertex to typed zeros (dirty/assigned
    // flags start false each superstep, §6.3).
    scratch_defaults_.reserve(prog_.scratch.size());
    for (const ScratchVar& sv : prog_.scratch) {
      switch (sv.type) {
        case Type::kBool: scratch_defaults_.push_back(Value::of_bool(false)); break;
        case Type::kFloat: scratch_defaults_.push_back(Value::of_float(0.0)); break;
        default: scratch_defaults_.push_back(Value::of_int(0)); break;
      }
    }
    const int W = eopts.num_workers;
    worker_scratch_.resize(static_cast<std::size_t>(W));
    for (auto& s : worker_scratch_) s = scratch_defaults_;
    assign_agg_ = std::make_unique<pregel::OrAggregator>(W, false,
                                                         pregel::OrOp{});

    // Retraction-memo routing (streaming/retract/retract_memo.h): route
    // every memo-eligible min/max site through the k-best tournament memo
    // when the session asked for it (minmax_memo_k > 0). Single-statement
    // programs only — the memo's drain re-converges statement 0, which is
    // exactly the warm-epoch restriction warm_blocker already imposes.
    // Computed before the native build below so a memoized program takes
    // the announced VM fallback instead of compiling send sites the memo
    // cannot observe.
    retract_table_.k = options_.minmax_memo_k;
    retract_table_.route.assign(prog_.sites.size(), -1);
    if (cp_.options.incrementalize && options_.minmax_memo_k > 0 &&
        prog_.stmts.size() == 1) {
      for (const AggSite& site : prog_.sites) {
        if (!site.memo_ok) continue;
        retract_table_.route[static_cast<std::size_t>(site.id)] =
            static_cast<int>(retract_table_.ops.size());
        retract_table_.site_of.push_back(
            static_cast<std::uint32_t>(site.id));
        retract_table_.ops.push_back(site.op);
        retract_table_.types.push_back(site.elem_type);
        retract_table_.identity.push_back(atomic_fold_bits(
            site.elem_type, agg_identity(site.op, site.elem_type)));
        memo_edge_feedback_ =
            memo_edge_feedback_ || site.memo_edge_feedback;
      }
    }
    if (!retract_table_.empty()) {
      retract_table_.reset(n);
      retract_lanes_.resize(static_cast<std::size_t>(W));
      if (memo_edge_feedback_) {
        // Class B feedback adds u.edge per hop: the rising-repair argument
        // needs strictly positive weights, enforced at runtime against
        // this lower bound (one O(E) scan here; epochs fold in new arcs).
        min_weight_lb_ = std::numeric_limits<double>::infinity();
        for (std::size_t v = 0; v < n; ++v) {
          const auto vid = static_cast<graph::VertexId>(v);
          const auto ws = g_.out_weights(vid);
          if (ws.empty()) {
            if (!g_.out_neighbors(vid).empty())
              min_weight_lb_ = std::min(min_weight_lb_, 1.0);
            continue;
          }
          for (const double wgt : ws)
            min_weight_lb_ = std::min(min_weight_lb_, wgt);
        }
      }
    }

    // Native tier: AOT-compile (or reuse a cached object for) the whole
    // program. Build failures are never fatal — the runner records the
    // named reason, bumps dv.native_fallbacks, and constructs the VM
    // below exactly as if --tier=vm had been requested.
    ExecTier tier = options_.tier;
    const auto note_native_fallback = [&](const std::string& why) {
      native_fallback_ = why;
      tier = ExecTier::kVm;
      obs::Collector* const col = obs::resolve(options_.collector);
      if (col) {
        col->metrics.shard(0).add(obs::Counter::kNativeFallbacks);
        // First token of the reason keys the per-cause series
        // ("unsupported: ..." → dv.native_fallbacks.unsupported). An
        // unsupported reason may carry its own single-word key
        // ("unsupported: remote_read: ..." →
        // dv.native_fallbacks.remote_read) for fallbacks worth tracking
        // as their own series.
        std::string reason = why;
        constexpr std::string_view kUnsupported = "unsupported: ";
        if (reason.rfind(kUnsupported, 0) == 0) {
          const std::string rest = reason.substr(kUnsupported.size());
          const auto c = rest.find(':');
          if (c != std::string::npos &&
              rest.find(' ') > c)  // "<word>: ..." sub-cause
            reason = rest;
        }
        std::string cause = reason.substr(0, reason.find(':'));
        if (const auto sp = cause.find(' '); sp != std::string::npos)
          cause.resize(sp);
        col->metrics.add_named("dv.native_fallbacks." + cause);
      }
    };
    if (tier == ExecTier::kNative && !retract_table_.empty())
      note_native_fallback(
          "unsupported: minmax_memo: retraction memos record at "
          "interpreted send sites");
    if (tier == ExecTier::kNative) {
      obs::Collector* const col = obs::resolve(options_.collector);
      const native::NativeBuildReport rep = native::build_native(cp_);
      if (col && rep.compile_seconds > 0.0)
        col->metrics.observe("dv.native_compile_seconds",
                             rep.compile_seconds);
      if (rep.program) {
        native_ = rep.program;
        // Per-site root ids for push_first's send expressions — the
        // native mirror of site_send_chunk_ below.
        for (const AggSite& site : prog_.sites) {
          if (site.is_channel()) {
            site_send_root_.push_back(-1);
            continue;
          }
          const Expr& e =
              site.init_send_expr ? *site.init_send_expr : *site.send_expr;
          site_send_root_.push_back(native_->root_of(e));
        }
      } else {
        note_native_fallback(rep.reason);
      }
    }
    // The VM is immutable and holds no execution state, so one instance
    // serves every worker thread.
    if (tier == ExecTier::kVm) {
      vm_ = std::make_unique<Vm>(cp_);
      // Per-site chunk ids for push_first's send expressions, so the
      // per-vertex priming loop dispatches without a root-map lookup.
      for (const AggSite& site : prog_.sites) {
        if (site.is_channel()) {
          site_send_chunk_.push_back(-1);
          continue;
        }
        const Expr& e =
            site.init_send_expr ? *site.init_send_expr : *site.send_expr;
        site_send_chunk_.push_back(vm_->program().chunk_of(e));
      }
    }

    // Fold-path routing (atomic_fold.h): route every site the
    // incrementalize pass proved commutative-associative through the
    // pending-slot path — unless forced buffered, or a send probe is
    // installed (a message probe has nothing to observe on a message-free
    // path, so the probe wins).
    atomic_table_.route.assign(prog_.sites.size(), -1);
    if (cp_.options.incrementalize &&
        options_.fold_path != FoldPath::kBuffered &&
        !options_.send_probe) {
      for (const AggSite& site : prog_.sites) {
        const bool eligible =
            site.atomic_ok ||
            (options_.atomic_float && site.atomic_float_ok);
        if (!eligible) continue;
        atomic_table_.route[static_cast<std::size_t>(site.id)] =
            static_cast<int>(atomic_table_.ops.size());
        atomic_table_.ops.push_back(site.op);
        atomic_table_.types.push_back(site.elem_type);
        atomic_table_.identity.push_back(atomic_fold_bits(
            site.elem_type, agg_identity(site.op, site.elem_type)));
        atomic_col_site_.push_back(site.id);
      }
    }
    if (!atomic_table_.empty()) {
      atomic_table_.reset(n);
      atomic_lanes_.resize(static_cast<std::size_t>(W));
      for (AtomicFoldLane& lane : atomic_lanes_)
        lane.reset(n, atomic_table_.columns());
      if (vm_) vm_->specialize_atomic(atomic_table_.route);
    }
  }

  DvRunResult run() {
    DV_CHECK_MSG(!converged_, "converge() may only run once");
    obs::Scope obs_scope(obs::resolve(options_.collector), "dv.converge");
    checkpointing_ = options_.checkpoint_every > 0 &&
                     static_cast<bool>(options_.checkpoint_sink);
    // The cursor (init_done_, cur_stmt_, cur_iter_, in_statement_) is all
    // zero on a fresh runner, so this loop is run()'s original control
    // flow; after restore_state it re-enters the interrupted statement at
    // the saved iteration instead.
    if (!init_done_) {
      run_init_superstep();
      init_done_ = true;
      in_statement_ = true;  // statement 0 is primed by the init push
    }
    for (std::size_t si = cur_stmt_; si < prog_.stmts.size(); ++si) {
      cur_stmt_ = si;
      if (!in_statement_) run_transition(si);
      in_statement_ = true;
      run_statement(si, cur_iter_);
      cur_iter_ = 0;
      in_statement_ = false;
    }
    checkpointing_ = false;
    converged_ = true;
    return collect_result();
  }

  bool converged() const { return converged_; }

  EpochStats apply_epoch(graph::DynamicGraph& dyn,
                         const graph::GraphDelta& delta) {
    const char* blocker =
        DvRunner::warm_blocker(cp_, delta, options_.minmax_memo_k);
    DV_CHECK_MSG(blocker == nullptr,
                 "apply_epoch on a warm-blocked delta: " << blocker);
    const char* rt_blocker = warm_runtime_blocker(delta);
    DV_CHECK_MSG(rt_blocker == nullptr,
                 "apply_epoch on a runtime-blocked delta: " << rt_blocker);
    DV_CHECK_MSG(options_.deletions.empty(),
                 "apply_epoch cannot run with scheduled vertex deletions");
    DV_CHECK_MSG(converged_, "apply_epoch before converge()");
    DV_CHECK_MSG(g_.num_vertices() == delta.old_num_vertices,
                 "delta was planned against a different graph snapshot");

    obs::Collector* const col = obs::resolve(options_.collector);
    obs::Scope obs_scope(col, "dv.epoch.apply");
    EpochStats es;
    const std::size_t old_n = delta.old_num_vertices;
    const std::size_t new_n = delta.new_num_vertices;
    const std::size_t stats_base = engine_->stats().supersteps.size();
    const std::size_t steps_base = supersteps_;
    const std::uint64_t folds_base = atomic_folds_total_;
    const std::uint64_t retr_base = minmax_retractions_total_;
    const std::uint64_t refold_base = minmax_refolds_total_;
    const std::uint64_t under_base = minmax_underflows_total_;
    warm_aborted_ = false;
    if (memo_edge_feedback_) {
      // Fold the epoch's surviving/new arc weights into the positivity
      // lower bound (conservative: removals never raise it back).
      for (const graph::ArcChange& a : delta.arcs)
        if (a.has) min_weight_lb_ = std::min(min_weight_lb_, a.new_weight);
    }
    deltas_applied_ = 0;
    wake_.assign(new_n, 0);
    wake_list_.clear();
    for (const graph::VertexId v : delta.touched) mark_wake(v);

    // ---- Phase A (old topology): per touched sender × site, record what
    // each receiver currently holds from it — the send_retractions rule:
    // the ε-gated last-sent slot when present, else the (possibly
    // per-edge) send expression, which for bound sites reads the memoized
    // sent_k field. Lists are indexed flat by (site, touched position) —
    // Phase B walks delta.touched in the same order — and the inner
    // vectors keep their capacity across epochs, so a warm stream of
    // small batches makes no per-epoch heap trips here.
    const std::size_t n_touched = delta.touched.size();
    epoch_olds_.resize(prog_.sites.size());
    for (auto& per_site : epoch_olds_) {
      if (per_site.size() < n_touched) per_site.resize(n_touched);
      for (std::size_t ti = 0; ti < n_touched; ++ti) per_site[ti].clear();
    }
    {
      EvalContext ctx = make_ctx(0);
      ctx.has_vertex = true;
      for (std::size_t ti = 0; ti < n_touched; ++ti) {
        const graph::VertexId v = delta.touched[ti];
        if (v >= old_n) continue;
        ctx.vertex = v;
        ctx.fields = fields_of(v);
        std::copy(scratch_defaults_.begin(), scratch_defaults_.end(),
                  ctx.scratch.begin());
        for (const AggSite& site : prog_.sites) {
          const auto [targets, weights] = push_targets(site, v);
          if (targets.empty()) continue;
          auto& list = epoch_olds_[static_cast<std::size_t>(site.id)][ti];
          list.reserve(targets.size());
          for (std::size_t i = 0; i < targets.size(); ++i) {
            ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[i];
            const Value last =
                site.last_sent_slot >= 0
                    ? ctx.fields[static_cast<std::size_t>(
                          site.last_sent_slot)]
                    : eval_root(*site.send_expr, ctx).coerce(site.elem_type);
            list.emplace_back(targets[i], last);
          }
        }
      }
    }

    // ---- Commit: every read below sees the mutated topology through g_.
    dyn.commit(delta);

    // ---- Growth: engine capacity, state rows with compiler-field
    // defaults, init block, and the §6.1 first push — delivered
    // synchronously into receiver accumulators by the ApplySink rather
    // than through the engine (the epoch has not started stepping yet).
    ApplySink apply_sink(this);
    if (new_n > old_n) {
      engine_->grow(new_n);
      if (!atomic_table_.empty()) {
        // Pending slots are empty between supersteps, so the re-init only
        // resizes; lanes follow the new bitmap width.
        atomic_table_.reset(new_n);
        for (AtomicFoldLane& lane : atomic_lanes_)
          lane.reset(new_n, atomic_table_.columns());
      }
      if (!retract_table_.empty()) retract_table_.grow(new_n);
      state_.resize(new_n * stride_);
      const std::vector<Value> defaults = compiler_field_defaults();
      for (std::size_t v = old_n; v < new_n; ++v)
        std::copy(defaults.begin(), defaults.end(),
                  state_.begin() + static_cast<std::ptrdiff_t>(v * stride_));
      EvalContext ctx = make_ctx(0);
      ctx.has_vertex = true;
      ctx.sink = &apply_sink;
      if (!retract_table_.empty()) {
        ctx.retract = &retract_table_;
        ctx.retract_lane = &retract_lanes_.front();
      }
      const int init_chunk =
          vm_ ? vm_->program().chunk_of(*prog_.init) : -1;
      for (std::size_t vv = old_n; vv < new_n; ++vv) {
        const auto v = static_cast<graph::VertexId>(vv);
        ctx.vertex = v;
        ctx.fields = fields_of(v);
        std::copy(scratch_defaults_.begin(), scratch_defaults_.end(),
                  ctx.scratch.begin());
        if (init_chunk >= 0)
          vm_->run_chunk(init_chunk, ctx);
        else
          eval_root(*prog_.init, ctx);
        push_first(ctx, v, 0);
        mark_wake(v);
      }
    }

    // ---- Phase B (new topology): for each surviving touched sender,
    // merge its old and new target sets and synthesize one Δ per target:
    // old→new where the arc survives, an injection (first send) for new
    // arcs, a retraction (→ identity) for removed ones. Deltas fold
    // directly into receiver slots — single-threaded, deterministic.
    {
      EvalContext ctx = make_ctx(0);
      ctx.has_vertex = true;
      for (std::size_t ti = 0; ti < n_touched; ++ti) {
        const graph::VertexId v = delta.touched[ti];
        if (v >= old_n) continue;
        ctx.vertex = v;
        ctx.fields = fields_of(v);
        std::copy(scratch_defaults_.begin(), scratch_defaults_.end(),
                  ctx.scratch.begin());
        for (const AggSite& site : prog_.sites) {
          // The sender's *current* contribution must reflect the new
          // topology (degrees!), so evaluate the original expression —
          // for bound sites send_expr is just the stale sent_k ref.
          const Expr& original =
              site.init_send_expr ? *site.init_send_expr : *site.send_expr;
          const auto [targets, weights] = push_targets(site, v);
          const auto site_idx = static_cast<std::size_t>(site.id);
          const auto& old_list = epoch_olds_[site_idx][ti];
          const Value identity = agg_identity(site.op, site.elem_type);
          const int rcol = retract_table_.empty()
                               ? -1
                               : retract_table_.route[site_idx];
          if (rcol >= 0) {
            // Memo-routed: synthesize keyed records (new totals, identity
            // = removal) instead of Δ-messages; the epoch drain below
            // rewrites every dirty accumulator straight from the memo, so
            // min/max retractions need no cold restart.
            const std::uint64_t id_bits =
                retract_table_.identity[static_cast<std::size_t>(rcol)];
            std::size_t oi = 0, ni = 0;
            while (oi < old_list.size() || ni < targets.size()) {
              const bool take_old =
                  ni >= targets.size() ||
                  (oi < old_list.size() && old_list[oi].first < targets[ni]);
              if (take_old) {
                retract_lanes_.front().record(
                    old_list[oi].first, static_cast<std::uint32_t>(v), rcol,
                    id_bits);
                ++oi;
              } else {
                const graph::VertexId dst = targets[ni];
                ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[ni];
                const Value now =
                    eval_root(original, ctx).coerce(site.elem_type);
                retract_lanes_.front().record(
                    dst, static_cast<std::uint32_t>(v), rcol,
                    atomic_fold_bits(site.elem_type, now));
                if (oi < old_list.size() && old_list[oi].first == dst) ++oi;
                ++ni;
              }
            }
            // Re-memoize what this sender's neighbors now believe, as the
            // non-memo path does below.
            if (site.bound_field >= 0 || site.last_sent_slot >= 0) {
              ctx.cur_edge_weight = 1.0;
              const Value now =
                  eval_root(original, ctx).coerce(site.elem_type);
              if (site.bound_field >= 0)
                ctx.fields[static_cast<std::size_t>(site.bound_field)] = now;
              if (site.last_sent_slot >= 0)
                ctx.fields[static_cast<std::size_t>(site.last_sent_slot)] =
                    now;
            }
            continue;
          }
          std::size_t oi = 0, ni = 0;
          while (oi < old_list.size() || ni < targets.size()) {
            DeltaPayload d;
            graph::VertexId dst;
            const bool take_old =
                ni >= targets.size() ||
                (oi < old_list.size() && old_list[oi].first < targets[ni]);
            if (take_old) {
              dst = old_list[oi].first;
              d = synthesize_delta(site.op, site.elem_type,
                                   old_list[oi].second, identity);
              ++oi;
            } else {
              dst = targets[ni];
              ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[ni];
              const Value now =
                  eval_root(original, ctx).coerce(site.elem_type);
              if (oi < old_list.size() && old_list[oi].first == dst) {
                d = synthesize_delta(site.op, site.elem_type,
                                     old_list[oi].second, now);
                ++oi;
              } else {
                d = synthesize_first(site.op, site.elem_type, now);
              }
              ++ni;
            }
            if (d.noop) continue;
            DvMessage msg;
            msg.site = static_cast<std::uint8_t>(site.id);
            msg.wire = site_wire_[site_idx];
            msg.payload = d.value;
            msg.nulls = d.nulls;
            msg.denulls = d.denulls;
            apply_direct(dst, msg);
          }
          // Re-memoize what this sender's neighbors now believe its value
          // is, so the woken body's Δ against it is a no-op.
          if (site.bound_field >= 0 || site.last_sent_slot >= 0) {
            ctx.cur_edge_weight = 1.0;
            const Value now =
                eval_root(original, ctx).coerce(site.elem_type);
            if (site.bound_field >= 0)
              ctx.fields[static_cast<std::size_t>(site.bound_field)] = now;
            if (site.last_sent_slot >= 0)
              ctx.fields[static_cast<std::size_t>(site.last_sent_slot)] =
                  now;
          }
        }
      }
    }

    // Routed epoch patches are still parked in pending slots: fold them
    // into the accumulators now (wake_ was marked at fold time).
    drain_atomic(/*activate=*/false);
    // Memo-routed records likewise: apply them in canonical order and
    // rewrite every dirty cell's accumulator from the memo (the normal
    // fold path never saw these sites' epoch deltas).
    drain_retract(/*activate=*/false);

    // ---- Wake exactly the mutation frontier (touched endpoints, Δ
    // receivers, new vertices) and re-converge the statement. The wake
    // list was accumulated at mark time, so a small epoch on a large
    // graph never pays a full-vertex scan here.
    engine_->halt_all();
    for (const graph::VertexId v : wake_list_) {
      if (engine_->is_deleted(v)) continue;
      engine_->activate(v);
      ++es.woken;
    }

    // Class B feedback repairs rise monotonically; on a graph whose only
    // path to some vertex was removed they would climb without bound
    // (count-to-infinity). Cap the warm re-convergence at a budget far
    // above any healthy repair; the drive loops flag warm_aborted_ and
    // the session falls back to a cold rebuild of this epoch.
    if (!retract_table_.empty())
      epoch_cap_abs_ =
          supersteps_ + std::max<std::size_t>(256, 8 * new_n);

    if (es.woken > 0) run_statement(0);
    epoch_cap_abs_ = 0;

    es.warm_aborted = warm_aborted_;
    es.minmax_retractions = minmax_retractions_total_ - retr_base;
    es.minmax_refolds = minmax_refolds_total_ - refold_base;
    es.minmax_underflows = minmax_underflows_total_ - under_base;
    es.deltas_applied = deltas_applied_;
    es.supersteps = supersteps_ - steps_base;
    es.atomic_folds = atomic_folds_total_ - folds_base;
    es.atomic_path = !atomic_table_.empty();
    const auto& log = engine_->stats().supersteps;
    for (std::size_t i = stats_base; i < log.size(); ++i)
      es.messages += log[i].messages_sent;
    if (col) {
      auto& sh = col->metrics.shard(0);
      sh.add(obs::Counter::kDeltasApplied, es.deltas_applied);
      sh.add(obs::Counter::kFrontierWoken, es.woken);
    }
    return es;
  }

  DvRunResult snapshot_result() { return collect_result(); }

  bool atomic_path() const { return !atomic_table_.empty(); }

  bool memo_path() const { return !retract_table_.empty(); }

  /// Instance-level warm gate, checked after the static warm_blocker:
  /// conditions that depend on runtime state rather than program shape.
  /// Today that is only the Class B positivity guard — a min-plus
  /// feedback memo repairs by monotone rising, which a zero or negative
  /// edge weight would break.
  const char* warm_runtime_blocker(const graph::GraphDelta& delta) const {
    if (retract_table_.empty() || !memo_edge_feedback_) return nullptr;
    double lb = min_weight_lb_;
    for (const graph::ArcChange& a : delta.arcs)
      if (a.has) lb = std::min(lb, a.new_weight);
    if (lb <= 0.0)
      return "min-plus feedback memo needs strictly positive edge weights";
    return nullptr;
  }

  void save_state(persist::SnapshotWriter& w) const {
    w.begin_section(persist::kSecRunner);
    w.put_u64(stride_);
    w.put_u64(g_.num_vertices());
    w.put_u64(state_.size());
    for (const Value& v : state_) w.put_value(v);
    w.put_u64(supersteps_);
    {
      std::vector<std::uint64_t> iters(iterations_.begin(),
                                       iterations_.end());
      w.put_u64_vec(iters);
    }
    w.put_bool(converged_);
    w.put_bool(init_done_);
    w.put_bool(in_statement_);
    w.put_u64(cur_stmt_);
    w.put_u64(cur_iter_);
    w.end_section();

    const DvEngine::Checkpoint c = engine_->checkpoint();
    w.begin_section(persist::kSecEngine);
    w.put_u64(c.superstep);
    w.put_u8_vec(c.halted);
    w.put_u8_vec(c.deleted);
    w.put_u32(static_cast<std::uint32_t>(c.queues.size()));
    for (const auto& q : c.queues) w.put_u32_vec(q);
    for (const auto& pend : c.pending) {
      w.put_u64(pend.size());
      for (const auto& [dst, m] : pend) {
        w.put_u32(dst);
        w.put_value(m.payload);
        w.put_i32(m.nulls);
        w.put_i32(m.denulls);
        w.put_u8(m.site);
        w.put_u8(m.wire);
      }
    }
    w.put_u64(c.stats.supersteps.size());
    for (const pregel::SuperstepStats& ss : c.stats.supersteps) {
      w.put_u64(ss.messages_sent);
      w.put_u64(ss.messages_delivered);
      w.put_u64(ss.messages_dropped);
      w.put_u64(ss.bytes_sent);
      w.put_u64(ss.bytes_delivered);
      w.put_u64(ss.cross_machine_bytes);
      w.put_u64(ss.active_vertices);
      w.put_u64(ss.vertices_halted);
      w.put_u64(ss.vertices_woken);
      w.put_f64(ss.compute_seconds);
      w.put_f64(ss.exchange_seconds);
      w.put_f64(ss.sim_comm_seconds);
    }
    w.end_section();

    // Retraction memos (always framed, even when off, so the section
    // order is fixed): k, routing, and the live cells' tagged entries.
    // Restoring under a different k cannot reinterpret the buffers — the
    // reader refuses the snapshot by name instead.
    w.begin_section(persist::kSecRetract);
    w.put_u64(static_cast<std::uint64_t>(retract_table_.k));
    w.put_bool(!retract_table_.empty());
    if (!retract_table_.empty()) {
      w.put_u32_vec(retract_table_.site_of);
      w.put_u64(retract_table_.num_vertices);
      w.put_u8_vec(retract_table_.counts);
      w.put_u64_vec(retract_table_.bounds);
      std::vector<std::uint32_t> senders;
      std::vector<std::uint64_t> bits;
      for (std::size_t cell = 0; cell < retract_table_.counts.size();
           ++cell) {
        const RetractEntry* e =
            &retract_table_.entries[cell * retract_table_.k];
        for (std::uint8_t j = 0; j < retract_table_.counts[cell]; ++j) {
          senders.push_back(e[j].sender);
          bits.push_back(e[j].bits);
        }
      }
      w.put_u32_vec(senders);
      w.put_u64_vec(bits);
    }
    w.end_section();
  }

  void restore_state(persist::SnapshotReader& r) {
    const auto bad = [](const char* what) {
      throw persist::SnapshotError(
          std::string("snapshot does not fit the restoring program: ") +
          what);
    };

    r.open(persist::kSecRunner);
    const std::size_t n = g_.num_vertices();
    if (r.get_u64() != stride_ || r.get_u64() != n)
      bad("vertex-state layout mismatch");
    if (r.get_u64() != n * stride_) bad("state array size mismatch");
    for (Value& v : state_) v = r.get_value();
    supersteps_ = static_cast<std::size_t>(r.get_u64());
    {
      const std::vector<std::uint64_t> iters = r.get_u64_vec();
      iterations_.assign(iters.begin(), iters.end());
    }
    converged_ = r.get_bool();
    init_done_ = r.get_bool();
    in_statement_ = r.get_bool();
    cur_stmt_ = static_cast<std::size_t>(r.get_u64());
    cur_iter_ = static_cast<std::size_t>(r.get_u64());
    if (cur_stmt_ >= prog_.stmts.size() && !converged_)
      bad("statement cursor out of range");
    r.close();

    r.open(persist::kSecEngine);
    DvEngine::Checkpoint c;
    c.num_vertices = n;
    c.superstep = static_cast<std::size_t>(r.get_u64());
    c.halted = r.get_u8_vec();
    c.deleted = r.get_u8_vec();
    if (c.halted.size() != n || c.deleted.size() != n)
      bad("engine flag arrays sized for a different graph");
    const std::uint32_t W = r.get_u32();
    if (W != static_cast<std::uint32_t>(options_.engine.num_workers))
      bad("engine worker count mismatch");
    c.queues.resize(W);
    for (auto& q : c.queues) q = r.get_u32_vec();
    c.pending.resize(W);
    for (auto& pend : c.pending) {
      // No up-front reserve: the count is snapshot data, and the getters
      // below throw on exhaustion long before push_back growth could.
      const std::uint64_t count = r.get_u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        const graph::VertexId dst = r.get_u32();
        DvMessage m;
        m.payload = r.get_value();
        m.nulls = r.get_i32();
        m.denulls = r.get_i32();
        m.site = r.get_u8();
        m.wire = r.get_u8();
        if (m.site >= prog_.sites.size())
          bad("pending message addressed to an unknown aggregation site");
        pend.emplace_back(dst, m);
      }
    }
    const std::uint64_t num_ss = r.get_u64();
    for (std::uint64_t i = 0; i < num_ss; ++i) {
      pregel::SuperstepStats ss;
      ss.messages_sent = r.get_u64();
      ss.messages_delivered = r.get_u64();
      ss.messages_dropped = r.get_u64();
      ss.bytes_sent = r.get_u64();
      ss.bytes_delivered = r.get_u64();
      ss.cross_machine_bytes = r.get_u64();
      ss.active_vertices = r.get_u64();
      ss.vertices_halted = r.get_u64();
      ss.vertices_woken = r.get_u64();
      ss.compute_seconds = r.get_f64();
      ss.exchange_seconds = r.get_f64();
      ss.sim_comm_seconds = r.get_f64();
      c.stats.supersteps.push_back(ss);
    }
    r.close();
    for (std::uint32_t w = 0; w < W; ++w) {
      for (const graph::VertexId v : c.queues[w])
        if (v >= n) bad("work-queue entry out of range");
      for (const auto& [dst, m] : c.pending[w])
        if (dst >= n) bad("pending message destination out of range");
    }
    engine_->restore(c);

    r.open(persist::kSecRetract);
    const std::uint64_t snap_k = r.get_u64();
    if (snap_k != retract_table_.k)
      throw persist::SnapshotError(
          "snapshot was written with minmax_memo_k=" +
          std::to_string(snap_k) + " but this session runs minmax_memo_k=" +
          std::to_string(retract_table_.k) +
          "; k-best buffers cannot be reinterpreted across capacities");
    const bool live = r.get_bool();
    if (live != !retract_table_.empty())
      bad("retraction-memo routing mismatch");
    if (live) {
      if (r.get_u32_vec() != retract_table_.site_of)
        bad("retraction-memo site routing mismatch");
      if (r.get_u64() != n)
        bad("retraction memo sized for a different graph");
      retract_table_.reset(n);
      const std::vector<std::uint8_t> counts = r.get_u8_vec();
      const std::vector<std::uint64_t> bounds = r.get_u64_vec();
      if (counts.size() != retract_table_.counts.size() ||
          bounds.size() != retract_table_.bounds.size())
        bad("retraction-memo cell arrays sized for a different graph");
      const std::vector<std::uint32_t> senders = r.get_u32_vec();
      const std::vector<std::uint64_t> bits = r.get_u64_vec();
      std::size_t total = 0;
      for (const std::uint8_t cnt : counts) {
        if (cnt > retract_table_.k) bad("retraction-memo count exceeds k");
        total += cnt;
      }
      if (senders.size() != total || bits.size() != total)
        bad("retraction-memo entry list inconsistent with cell counts");
      retract_table_.counts = counts;
      retract_table_.bounds = bounds;
      std::size_t at = 0;
      for (std::size_t cell = 0; cell < counts.size(); ++cell) {
        RetractEntry* e = &retract_table_.entries[cell * retract_table_.k];
        for (std::uint8_t j = 0; j < counts[cell]; ++j, ++at)
          e[j] = RetractEntry{senders[at], bits[at]};
      }
    }
    r.close();
  }

 private:
  /// Post-step drain of the lock-free fold path: ORs every lane's frontier
  /// bitmap, applies each marked (vertex, site) pending slot into the
  /// aggAccum field via the same apply_delta a buffered delivery runs, and
  /// wakes the vertex. The application is UNCONDITIONAL — a marked slot
  /// still holding identity bits corresponds to a buffered combined-to-
  /// identity message, which is also applied and also wakes its receiver
  /// (bit-exactness: −0.0 + 0.0 must land as +0.0 on both paths). Deleted
  /// vertices get their slot reset but neither apply nor wake, mirroring
  /// the engine's message drop. Runs single-threaded between supersteps;
  /// `activate` selects engine wake-up (stepping) vs the epoch's wake_
  /// frontier (apply_epoch marks wake_ at fold time already, so false
  /// there).
  void drain_atomic(bool activate) {
    if (atomic_table_.empty()) return;
    std::uint64_t folds = 0;
    for (AtomicFoldLane& lane : atomic_lanes_) {
      folds += lane.folds;
      lane.folds = 0;
    }
    atomic_folds_last_step_ = folds;
    atomic_folds_total_ += folds;
    if (obs::Collector* const col = obs::resolve(options_.collector))
      col->metrics.shard(0).add(obs::Counter::kAtomicFolds, folds);
    const std::size_t wpc = atomic_lanes_.front().words_per_column;
    for (std::size_t c = 0; c < atomic_table_.columns(); ++c) {
      const AggSite& site =
          prog_.sites[static_cast<std::size_t>(atomic_col_site_[c])];
      for (std::size_t wi = 0; wi < wpc; ++wi) {
        std::uint64_t word = 0;
        for (AtomicFoldLane& lane : atomic_lanes_) {
          const std::size_t idx = c * wpc + wi;
          word |= lane.words[idx];
          lane.words[idx] = 0;
        }
        while (word) {
          const auto v = static_cast<graph::VertexId>(
              wi * 64 +
              static_cast<std::size_t>(std::countr_zero(word)));
          word &= word - 1;
          const Value pending =
              atomic_table_.take(v, static_cast<int>(c));
          if (engine_->is_deleted(v)) continue;
          AccumRef ref;
          ref.acc =
              &fields_of(v)[static_cast<std::size_t>(site.acc_slot)];
          apply_delta(site.op, site.elem_type, ref, pending, 0, 0);
          if (activate) engine_->activate(v);
        }
      }
    }
  }

  /// Post-step drain of the retraction-memo records (DESIGN.md §11).
  /// Gathers every lane's records, applies them in canonical (dst, col,
  /// sender) order — deterministic across schedules and bit-identical
  /// across tiers — and rewrites accumulators from the memo where the
  /// extremum may have risen. In step mode (`activate`) only kWorsened
  /// cells are rewritten: improvements already arrived through the normal
  /// fold paths, and rewriting them too would trade bit patterns between
  /// paths for no information. In epoch mode every touched cell is
  /// rewritten, because Phase B routed these sites' deltas here instead
  /// of through apply_direct. Underflown cells (all k survivors
  /// retracted) take a targeted re-fold of that one vertex's
  /// in-neighborhood — never a whole-graph restart.
  void drain_retract(bool activate) {
    if (retract_table_.empty()) return;
    retract_changes_last_step_ = 0;
    retract_scratch_.clear();
    for (RetractLane& lane : retract_lanes_) {
      retract_scratch_.insert(retract_scratch_.end(), lane.records.begin(),
                              lane.records.end());
      lane.records.clear();
    }
    if (retract_scratch_.empty()) return;
    std::stable_sort(retract_scratch_.begin(), retract_scratch_.end(),
                     [](const RetractRecord& a, const RetractRecord& b) {
                       if (a.dst != b.dst) return a.dst < b.dst;
                       if (a.col != b.col) return a.col < b.col;
                       return a.sender < b.sender;
                     });
    std::uint64_t retractions = 0, refolds = 0, underflows = 0;
    std::size_t i = 0;
    while (i < retract_scratch_.size()) {
      const graph::VertexId dst = retract_scratch_[i].dst;
      const std::uint32_t col = retract_scratch_[i].col;
      bool worsened = false;
      bool touched = false;
      for (; i < retract_scratch_.size() &&
             retract_scratch_[i].dst == dst && retract_scratch_[i].col == col;
           ++i) {
        const auto ap = retract_table_.apply(dst, static_cast<int>(col),
                                             retract_scratch_[i].sender,
                                             retract_scratch_[i].bits);
        if (ap == RetractMemoTable::Applied::kWorsened) {
          worsened = true;
          ++retractions;
        }
        if (ap != RetractMemoTable::Applied::kUntouched) touched = true;
      }
      if (engine_->is_deleted(dst)) continue;
      if (activate ? !worsened : !touched) continue;
      std::uint64_t acc_bits = 0;
      if (retract_table_.query(dst, static_cast<int>(col), &acc_bits) ==
          RetractMemoTable::CellState::kUnderflow) {
        ++underflows;
        refold_cell(dst, static_cast<int>(col));
        ++refolds;
        const auto st =
            retract_table_.query(dst, static_cast<int>(col), &acc_bits);
        DV_CHECK_MSG(st == RetractMemoTable::CellState::kExact,
                     "retraction memo still underflown after refold");
      }
      const AggSite& site = prog_.sites[static_cast<std::size_t>(
          retract_table_.site_of[col])];
      Value& acc =
          fields_of(dst)[static_cast<std::size_t>(site.acc_slot)];
      if (atomic_fold_bits(site.elem_type, acc) == acc_bits) continue;
      acc = atomic_fold_value(site.elem_type, acc_bits);
      ++retract_changes_last_step_;
      if (activate) {
        engine_->activate(dst);
      } else {
        ++deltas_applied_;
        mark_wake(dst);
      }
    }
    minmax_retractions_total_ += retractions;
    minmax_refolds_total_ += refolds;
    minmax_underflows_total_ += underflows;
    if (obs::Collector* const col = obs::resolve(options_.collector)) {
      auto& sh = col->metrics.shard(0);
      sh.add(obs::Counter::kMinmaxRetractions, retractions);
      sh.add(obs::Counter::kMinmaxRefolds, refolds);
      sh.add(obs::Counter::kMinmaxUnderflows, underflows);
    }
  }

  /// Targeted underflow repair: re-evaluate every in-neighbor's current
  /// contribution into (dst, col) and rebuild the cell from the complete
  /// list. Mirrors Phase A's read rule — the ε-gated last-sent slot when
  /// present, else the send expression (for bound sites the memoized
  /// sent_k ref), i.e. exactly what the receiver last folded.
  void refold_cell(graph::VertexId dst, int col) {
    const AggSite& site = prog_.sites[static_cast<std::size_t>(
        retract_table_.site_of[static_cast<std::size_t>(col)])];
    std::span<const graph::VertexId> srcs;
    std::span<const double> weights;
    switch (push_direction(site.pull_dir)) {
      case GraphDir::kOut:
      case GraphDir::kNeighbors:
        srcs = g_.in_neighbors(dst);
        weights = g_.in_weights(dst);
        break;
      case GraphDir::kIn:
        srcs = g_.out_neighbors(dst);
        weights = g_.out_weights(dst);
        break;
    }
    EvalContext ctx = make_ctx(0);
    ctx.has_vertex = true;
    refold_scratch_.clear();
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      const graph::VertexId u = srcs[i];
      if (engine_->is_deleted(u)) continue;
      ctx.vertex = u;
      ctx.fields = fields_of(u);
      std::copy(scratch_defaults_.begin(), scratch_defaults_.end(),
                ctx.scratch.begin());
      ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[i];
      const Value last =
          site.last_sent_slot >= 0
              ? ctx.fields[static_cast<std::size_t>(site.last_sent_slot)]
              : eval_root(*site.send_expr, ctx).coerce(site.elem_type);
      refold_scratch_.push_back(
          {static_cast<std::uint32_t>(u),
           atomic_fold_bits(site.elem_type, last)});
    }
    retract_table_.rebuild(dst, col, refold_scratch_.data(),
                           refold_scratch_.size());
  }

  /// Adds `v` to the epoch wake frontier exactly once (bitmap dedup).
  void mark_wake(graph::VertexId v) {
    if (wake_[v]) return;
    wake_[v] = 1;
    wake_list_.push_back(v);
  }

  /// Applies a synthesized Δ-message synchronously into the receiver's
  /// accumulator slots (Eq. 8/9) — the epoch-start equivalent of the
  /// fold's per-message apply_delta — and marks it for wake-up.
  void apply_direct(graph::VertexId dst, const DvMessage& m) {
    // Routed sites take the same pending slots the superstep path uses
    // (single-threaded here, but one code path, one semantics); the
    // epoch's drain_atomic(false) applies them after Phase B.
    const int col =
        atomic_table_.empty() ? -1 : atomic_table_.route[m.site];
    if (col >= 0 && atomic_table_.fold(dst, col, m.payload)) {
      atomic_lanes_.front().mark(dst, col);
      ++atomic_lanes_.front().folds;
      ++deltas_applied_;
      mark_wake(dst);
      return;
    }
    const AggSite& site = prog_.sites[m.site];
    const auto fields = fields_of(dst);
    AccumRef ref;
    ref.acc = &fields[static_cast<std::size_t>(site.acc_slot)];
    if (site.multiplicative()) {
      ref.nn = &fields[static_cast<std::size_t>(site.nn_slot)];
      ref.nulls = &fields[static_cast<std::size_t>(site.nulls_slot)];
    }
    apply_delta(site.op, site.elem_type, ref, m.payload, m.nulls, m.denulls);
    ++deltas_applied_;
    mark_wake(dst);
  }

  /// SendSink that short-circuits the engine: messages land in receiver
  /// state immediately. Used for epoch-start synthesis only (push_first
  /// of added vertices routes through it).
  class ApplySink : public SendSink {
   public:
    explicit ApplySink(Impl* runner) : runner_(runner) {}
    void send(graph::VertexId dst, const DvMessage& msg) override {
      runner_->apply_direct(dst, msg);
    }

   private:
    Impl* runner_;
  };

  /// The stored-arc span a site's push sends traverse from `v`.
  std::pair<std::span<const graph::VertexId>, std::span<const double>>
  push_targets(const AggSite& site, graph::VertexId v) const {
    switch (push_direction(site.pull_dir)) {
      case GraphDir::kOut:
      case GraphDir::kNeighbors:
        return {g_.out_neighbors(v), g_.out_weights(v)};
      case GraphDir::kIn:
        return {g_.in_neighbors(v), g_.in_weights(v)};
    }
    return {};
  }
  /// Evaluates a runner-visible root expression on the selected tier.
  Value eval_root(const Expr& e, EvalContext& ctx) {
    if (native_) return native_->eval_root(e, ctx);
    return vm_ ? vm_->eval_root(e, ctx) : eval(e, ctx);
  }

  void validate() {
    for (const AggSite& site : prog_.sites) {
      if (site.is_channel()) continue;
      if (site.pull_dir == GraphDir::kNeighbors && g_.directed())
        DV_FAIL("program aggregates over #neighbors but the graph is "
                "directed; use #in/#out");
    }
    if (!options_.deletions.empty()) {
      bool any_remote = false;
      for (const Stmt& stmt : prog_.stmts)
        any_remote = any_remote || !stmt.phases.empty() ||
                     expr_contains(*stmt.body, ExprKind::kRemoteRead);
      for (const AggSite& site : prog_.sites)
        any_remote = any_remote || site.is_channel();
      DV_CHECK_MSG(!any_remote,
                   "scheduled vertex deletions cannot run with remote "
                   "reads: a deleted owner cannot answer requests");
    }
    for (const Param& p : prog_.params)
      DV_CHECK_MSG(options_.params.count(p.name) == 1,
                   "missing program parameter '" << p.name << "'");
    for (const VertexDeletion& d : options_.deletions) {
      DV_CHECK_MSG(d.stmt_index < prog_.stmts.size(),
                   "deletion statement index out of range");
      DV_CHECK_MSG(d.iteration >= 1, "deletion iteration is 1-based");
      for (auto v : d.vertices)
        DV_CHECK_MSG(v < g_.num_vertices(),
                     "deleted vertex " << v << " out of range");
      if (!cp_.options.incrementalize) continue;
      for (const AggSite& site : prog_.sites) {
        if (site.stmt_index != static_cast<int>(d.stmt_index)) continue;
        DV_CHECK_MSG(!is_idempotent(site.op),
                     "vertex deletion cannot retract a "
                         << agg_op_name(site.op)
                         << " contribution (min/max accumulators cannot "
                            "forget); see §9 of the paper");
      }
    }
  }

  /// Broadcasts the §9 retraction for every site of statement `si`: a
  /// Δ-message taking this vertex's last-sent contribution to the
  /// aggregation identity. Runs in place of the victim's body.
  void send_retractions(EvalContext& ctx, graph::VertexId v,
                        std::size_t si) {
    for (const AggSite& site : prog_.sites) {
      if (site.is_channel()) continue;  // validate() bans deletions with
      // remote reads; belt-and-braces against a null send_expr deref
      if (site.stmt_index != static_cast<int>(si)) continue;
      std::span<const graph::VertexId> targets;
      std::span<const double> weights;
      switch (push_direction(site.pull_dir)) {
        case GraphDir::kOut:
        case GraphDir::kNeighbors:
          targets = g_.out_neighbors(v);
          weights = g_.out_weights(v);
          break;
        case GraphDir::kIn:
          targets = g_.in_neighbors(v);
          weights = g_.in_weights(v);
          break;
      }
      const Value identity = agg_identity(site.op, site.elem_type);
      const auto wire = site_wire_[static_cast<std::size_t>(site.id)];
      for (std::size_t i = 0; i < targets.size(); ++i) {
        ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[i];
        const Value last =
            site.last_sent_slot >= 0
                ? ctx.fields[static_cast<std::size_t>(site.last_sent_slot)]
                : eval_root(*site.send_expr, ctx).coerce(site.elem_type);
        const DeltaPayload d =
            synthesize_delta(site.op, site.elem_type, last, identity);
        if (d.noop) continue;
        DvMessage msg;
        msg.site = static_cast<std::uint8_t>(site.id);
        msg.wire = wire;
        msg.payload = d.value;
        msg.nulls = d.nulls;
        msg.denulls = d.denulls;
        ctx.sink->send(targets[i], msg);
      }
    }
  }

  /// Per-field initial values: compiler-added fields have runtime-defined
  /// initial values; user fields are initialized by the init block.
  std::vector<Value> compiler_field_defaults() const {
    std::vector<Value> defaults(stride_);
    for (std::size_t fi = 0; fi < stride_; ++fi) {
      const Field& f = prog_.fields[fi];
      switch (f.origin) {
        case Field::Origin::kAccumulator:
        case Field::Origin::kNnAcc: {
          const AggSite& site =
              prog_.sites[static_cast<std::size_t>(f.site)];
          defaults[fi] = agg_identity(site.op, site.elem_type);
          break;
        }
        case Field::Origin::kNullCount:
          defaults[fi] = Value::of_int(0);
          break;
        case Field::Origin::kLastSent: {
          const AggSite& site =
              prog_.sites[static_cast<std::size_t>(f.site)];
          defaults[fi] = agg_identity(site.op, site.elem_type);
          break;
        }
        case Field::Origin::kUser:
        case Field::Origin::kSentBinding: {
          Value zero;
          switch (f.type) {
            case Type::kFloat: zero = Value::of_float(0.0); break;
            case Type::kBool: zero = Value::of_bool(false); break;
            default: zero = Value::of_int(0); break;
          }
          defaults[fi] = zero;
          break;
        }
      }
    }
    return defaults;
  }

  void init_compiler_fields() {
    const std::vector<Value> defaults = compiler_field_defaults();
    for (std::size_t v = 0; v < g_.num_vertices(); ++v)
      std::copy(defaults.begin(), defaults.end(),
                state_.begin() + static_cast<std::ptrdiff_t>(v * stride_));
  }

  void bind_params() {
    params_.reserve(prog_.params.size());
    for (const Param& p : prog_.params) {
      const Value& v = options_.params.at(p.name);
      params_.push_back(v.coerce(p.type));
    }
  }

  void compute_site_wires() {
    const bool multi_site = prog_.sites.size() > 1;
    for (const AggSite& site : prog_.sites) {
      std::size_t bytes = type_wire_bytes(site.elem_type);
      if (multi_site) bytes += 1;  // site id rides along
      if (cp_.options.incrementalize && site.multiplicative() &&
          !site.is_channel())
        bytes += 1;  // §6.4.1 transition tags (never on whole-value
                     // request/reply payloads)
      site_wire_.push_back(static_cast<std::uint8_t>(bytes));
    }
  }

  EvalContext make_ctx(int worker) {
    EvalContext ctx;
    ctx.prog = &prog_;
    ctx.graph = &g_;
    ctx.params = params_;
    ctx.site_wire = &site_wire_;
    ctx.scratch = worker_scratch_[static_cast<std::size_t>(worker)];
    return ctx;
  }

  std::span<Value> fields_of(graph::VertexId v) {
    return {state_.data() + static_cast<std::size_t>(v) * stride_, stride_};
  }

  /// Pushes the initial full values for all sites of statement `si` from
  /// vertex `v` (the §6.1 "first superstep" sends), storing bound-field
  /// values so later Δ computations see what was actually sent.
  /// True if evaluating `e` can read ctx.cur_edge_weight — the only way a
  /// send payload can vary across the target span (expressions are pure).
  static bool uses_edge_weight(const Expr& e) {
    if (e.kind == ExprKind::kEdgeWeight) return true;
    for (const ExprPtr& k : e.kids)
      if (k && uses_edge_weight(*k)) return true;
    return false;
  }

  void push_first(EvalContext& ctx, graph::VertexId v, std::size_t si) {
    for (const AggSite& site : prog_.sites) {
      if (site.is_channel()) continue;  // channels have no initial push:
      // requests are re-issued from scratch every iteration
      if (site.stmt_index != static_cast<int>(si)) continue;
      std::span<const graph::VertexId> targets;
      std::span<const double> weights;
      switch (push_direction(site.pull_dir)) {
        case GraphDir::kOut:
        case GraphDir::kNeighbors:
          targets = g_.out_neighbors(v);
          weights = g_.out_weights(v);
          break;
        case GraphDir::kIn:
          targets = g_.in_neighbors(v);
          weights = g_.in_weights(v);
          break;
      }
      const Expr& expr =
          site.init_send_expr ? *site.init_send_expr : *site.send_expr;
      const int send_chunk =
          vm_ ? site_send_chunk_[static_cast<std::size_t>(site.id)] : -1;
      const int send_root =
          native_ ? site_send_root_[static_cast<std::size_t>(site.id)] : -1;
      const auto eval_send = [&](EvalContext& c) {
        if (send_root >= 0) return native_->run_root(send_root, c);
        return send_chunk >= 0 ? vm_->run_chunk(send_chunk, c)
                               : eval_root(expr, c);
      };
      const auto wire = site_wire_[static_cast<std::size_t>(site.id)];
      // Memo-routed sites record each initial contribution so the memo's
      // buffers are populated from the very first push (no-op identity
      // payloads stay unrecorded — absence already means identity).
      const int rcol =
          ctx.retract
              ? ctx.retract->route[static_cast<std::size_t>(site.id)]
              : -1;
      Value bound{};
      bool bound_set = false;
      if (!targets.empty() &&
          (weights.empty() || !uses_edge_weight(expr))) {
        // Edge-invariant payload (the common case — PageRank/HITS seed
        // their rank over the whole span): evaluate once, broadcast or
        // skip once. Purity makes this message-identical to the per-edge
        // loop below.
        ctx.cur_edge_weight =
            weights.empty() ? 1.0 : weights[targets.size() - 1];
        const Value v0 = eval_send(ctx).coerce(site.elem_type);
        if (site.bound_field >= 0) {
          bound = v0;
          bound_set = true;
        }
        DvMessage msg;
        msg.site = static_cast<std::uint8_t>(site.id);
        msg.wire = wire;
        bool noop;
        if (cp_.options.incrementalize) {
          const DeltaPayload d =
              synthesize_first(site.op, site.elem_type, v0);
          noop = d.noop;
          msg.payload = d.value;
          msg.nulls = d.nulls;
          msg.denulls = d.denulls;
        } else {
          noop = is_identity(site.op, v0);
          msg.payload = v0;
        }
        if (!noop) {
          ctx.sink->send_span(targets, msg);
          if (rcol >= 0) {
            const std::uint64_t bits = atomic_fold_bits(site.elem_type, v0);
            for (const graph::VertexId dst : targets)
              ctx.retract_lane->record(dst, static_cast<std::uint32_t>(v),
                                       rcol, bits);
          }
        }
      } else {
        for (std::size_t i = 0; i < targets.size(); ++i) {
          ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[i];
          const Value v0 = eval_send(ctx).coerce(site.elem_type);
          if (site.bound_field >= 0 && !bound_set) {
            bound = v0;
            bound_set = true;
          }
          DvMessage msg;
          msg.site = static_cast<std::uint8_t>(site.id);
          msg.wire = wire;
          if (cp_.options.incrementalize) {
            const DeltaPayload d =
                synthesize_first(site.op, site.elem_type, v0);
            if (d.noop) continue;
            msg.payload = d.value;
            msg.nulls = d.nulls;
            msg.denulls = d.denulls;
          } else {
            if (is_identity(site.op, v0)) continue;
            msg.payload = v0;
          }
          ctx.sink->send(targets[i], msg);
          if (rcol >= 0)
            ctx.retract_lane->record(targets[i],
                                     static_cast<std::uint32_t>(v), rcol,
                                     atomic_fold_bits(site.elem_type, v0));
        }
      }
      if (site.bound_field >= 0) {
        // Record what this vertex's neighbors now believe its value is.
        if (!bound_set) {
          ctx.cur_edge_weight = 1.0;
          bound = eval_send(ctx).coerce(site.elem_type);
        }
        ctx.fields[static_cast<std::size_t>(site.bound_field)] = bound;
        if (site.last_sent_slot >= 0)
          ctx.fields[static_cast<std::size_t>(site.last_sent_slot)] = bound;
      } else if (site.last_sent_slot >= 0) {
        ctx.cur_edge_weight = 1.0;
        ctx.fields[static_cast<std::size_t>(site.last_sent_slot)] =
            eval_send(ctx).coerce(site.elem_type);
      }
    }
  }

  void run_init_superstep() {
    const int init_chunk =
        vm_ ? vm_->program().chunk_of(*prog_.init) : -1;
    run_priming_step([&](EvalContext& ctx, graph::VertexId v) {
      if (init_chunk >= 0)
        vm_->run_chunk(init_chunk, ctx);
      else
        eval_root(*prog_.init, ctx);
      push_first(ctx, v, 0);
      // No halt: statement 0's first superstep must run on every vertex.
    });
  }

  void run_transition(std::size_t next_si) {
    engine_->activate_all();
    bool has_sites = false;
    for (const AggSite& site : prog_.sites)
      has_sites = has_sites || (!site.is_channel() &&
                                site.stmt_index == static_cast<int>(next_si));
    if (!has_sites) return;  // nothing to prime; vertices are awake
    run_priming_step([&](EvalContext& ctx, graph::VertexId v) {
      push_first(ctx, v, next_si);
    });
  }

  /// One superstep of per-vertex priming work (init block, push_first)
  /// with the same per-worker context hoisting as run_statement's hot
  /// loop: lanes are cache-line aligned and built once, the per-vertex
  /// cost is only the vertex-varying views.
  template <typename PerVertex>
  void run_priming_step(PerVertex&& per_vertex) {
    struct alignas(64) WorkerLane {
      EngineSink sink;
      EvalContext ctx;
    };
    const std::size_t W = worker_scratch_.size();
    obs::Collector* const col = obs::resolve(options_.collector);
    std::vector<WorkerLane> lanes(W);
    for (std::size_t w = 0; w < W; ++w) {
      EvalContext& c = lanes[w].ctx;
      c = make_ctx(static_cast<int>(w));
      c.sink = &lanes[w].sink;
      c.has_vertex = true;
      c.obs = col ? &col->metrics.shard(w) : nullptr;
      if (!atomic_table_.empty()) {
        c.atomic = &atomic_table_;
        c.atomic_lane = &atomic_lanes_[w];
        lanes[w].sink.bind_atomic(&atomic_table_, &atomic_lanes_[w]);
      }
      if (!retract_table_.empty()) {
        c.retract = &retract_table_;
        c.retract_lane = &retract_lanes_[w];
      }
    }
    engine_->step([&](DvEngine::Context& ectx, graph::VertexId v,
                      std::span<const DvMessage>) {
      const std::size_t w = static_cast<std::size_t>(ectx.worker());
      lanes[w].sink.bind(&ectx, &options_.send_probe);
      EvalContext& ctx = lanes[w].ctx;
      ctx.vertex = v;
      ctx.fields = fields_of(v);
      ctx.halt_requested = false;
      ctx.any_field_assign = false;
      std::copy(scratch_defaults_.begin(), scratch_defaults_.end(),
                ctx.scratch.begin());
      per_vertex(ctx, v);
    });
    ++supersteps_;
    drain_atomic(/*activate=*/true);
    drain_retract(/*activate=*/true);
  }

  /// Evaluates the until clause globally (no vertex context).
  bool eval_until(const Stmt& stmt, std::int64_t iter, bool stable) {
    EvalContext ctx = make_ctx(0);
    ctx.has_vertex = false;
    ctx.iter = iter;
    ctx.stable = stable;
    std::copy(scratch_defaults_.begin(), scratch_defaults_.end(), ctx.scratch.begin());
    return eval_root(*stmt.until, ctx).as_b();
  }

  /// Arms `victims_` for deletions scheduled at (statement, iteration).
  /// ΔV victims are woken so they can broadcast retractions during the
  /// superstep; ΔV* victims are simply removed up front (their
  /// contribution vanishes because non-memoized folds only see what
  /// arrives each superstep).
  void prepare_deletions(std::size_t si, std::size_t iter) {
    victims_.clear();
    for (const VertexDeletion& d : options_.deletions) {
      if (d.stmt_index != si || d.iteration != iter) continue;
      if (cp_.options.incrementalize) {
        if (victims_.empty()) victims_.assign(g_.num_vertices(), 0);
        for (auto v : d.vertices) {
          victims_[v] = 1;
          engine_->activate(v);
        }
      } else {
        for (auto v : d.vertices) engine_->mark_deleted(v);
      }
    }
  }

  std::uint64_t sites_mask_of(std::size_t si) const {
    std::uint64_t mask = 0;
    for (const AggSite& site : prog_.sites)
      if (!site.is_channel() && site.stmt_index == static_cast<int>(si))
        mask |= 1ULL << site.id;
    // Channel traffic is never last-execution suppressed: even the final
    // iteration's consume superstep folds that iteration's replies.
    return mask;
  }

  /// True when run_statement's until-loop may drive through the engine's
  /// fused exchange-free region (run_fused) instead of one pool dispatch
  /// per superstep. Correctness never depends on this — fused rounds
  /// still exchange stray messages in-region — so the gates are (a)
  /// features that need per-superstep main-thread interleaving (send
  /// probes, checkpoint hooks, retraction scheduling, per-superstep
  /// trace spans) and (b) the requirement that every Δ-send site of this
  /// statement actually bypasses the message pipeline; a statement with
  /// buffered sites would exchange every round and the shape saves
  /// nothing.
  bool can_fuse_statement(const Stmt& stmt, std::uint64_t own_sites) const {
    if (stmt.kind != Stmt::Kind::kIter) return false;
    // Remote statements need main-thread phase driving (and the reference
    // interpretation a per-superstep state snapshot) between supersteps.
    if (!stmt.phases.empty() ||
        expr_contains(*stmt.body, ExprKind::kRemoteRead))
      return false;
    if (atomic_table_.empty()) return false;
    for (const AggSite& site : prog_.sites)
      if ((own_sites >> site.id & 1) &&
          atomic_table_.route[static_cast<std::size_t>(site.id)] < 0)
        return false;
    if (options_.send_probe) return false;
    if (checkpointing_) return false;
    if (!options_.deletions.empty()) return false;
    if (obs::resolve(options_.collector)) return false;
    return true;
  }

  void run_statement(std::size_t si, std::size_t start_iter = 0) {
    const Stmt& stmt = prog_.stmts[si];
    const bool is_iter = stmt.kind == Stmt::Kind::kIter;
    const bool stable_until = is_iter && uses_stable(*stmt.until);
    const std::uint64_t own_sites = sites_mask_of(si);
    const bool has_phases = !stmt.phases.empty();
    const bool ref_remote =
        !has_phases && expr_contains(*stmt.body, ExprKind::kRemoteRead);
    // Remote statements carry only channel traffic, and the consume
    // superstep (the one the quiescence probe below observes) sends
    // nothing; `stable` then hinges entirely on the assignment aggregator.
    const bool msgless_stmt = has_phases || ref_remote;

    // The superstep cap is per statement *run*, so streaming epochs get a
    // fresh budget instead of exhausting a cumulative one.
    const std::size_t steps_base = supersteps_;
    std::size_t iter = start_iter;  // nonzero only when resuming a restore

    // Hot-loop state hoisted out of the superstep loop: contexts are
    // built once per worker per *statement*; iteration-varying fields
    // (iter, suppression mask) are patched in place between supersteps,
    // and the per-vertex work is only the vertex-varying views and
    // out-flags. The VM chunk id is resolved here too, so the per-vertex
    // dispatch is a direct call rather than a root-map lookup.
    const int body_chunk = vm_ ? vm_->program().chunk_of(*stmt.body) : -1;
    DV_CHECK_MSG(!vm_ || body_chunk >= 0,
                 "statement body was not lowered as a VM root");
    const int body_root = native_ ? native_->root_of(*stmt.body) : -1;
    DV_CHECK_MSG(!native_ || body_root >= 0,
                 "statement body was not emitted as a native root");
    const std::size_t W = worker_scratch_.size();
    // Cache-line aligned per-worker lanes: the context's per-vertex
    // fields are rewritten millions of times from distinct threads, and
    // packing them back-to-back would false-share across workers.
    struct alignas(64) WorkerLane {
      EngineSink sink;
      EvalContext ctx;
    };
    obs::Collector* const col = obs::resolve(options_.collector);
    // Reference interpretation: kRemoteRead reads the *iteration-start*
    // field matrix, so the loop below snapshots state_ before every body
    // superstep and every lane reads through the same buffer.
    std::vector<Value> ref_snapshot;
    if (ref_remote) ref_snapshot.resize(state_.size());
    std::vector<WorkerLane> lanes(W);
    for (std::size_t w = 0; w < W; ++w) {
      EvalContext& c = lanes[w].ctx;
      c = make_ctx(static_cast<int>(w));
      c.sink = &lanes[w].sink;
      c.has_vertex = true;
      c.obs = col ? &col->metrics.shard(w) : nullptr;
      if (ref_remote) {
        c.prev_state = ref_snapshot.data();
        c.prev_stride = stride_;
      }
      if (!atomic_table_.empty()) {
        c.atomic = &atomic_table_;
        c.atomic_lane = &atomic_lanes_[w];
        lanes[w].sink.bind_atomic(&atomic_table_, &atomic_lanes_[w]);
      }
      if (!retract_table_.empty()) {
        c.retract = &retract_table_;
        c.retract_lane = &retract_lanes_[w];
      }
    }
    const auto set_iteration = [&](std::size_t it, std::uint64_t suppress) {
      for (std::size_t w = 0; w < W; ++w) {
        lanes[w].ctx.iter = static_cast<std::int64_t>(it);
        lanes[w].ctx.suppress_sites = suppress;
      }
    };
    // Non-null during a request/reply superstep of a remote statement: the
    // compute below evaluates it on the tree walker (phases are never VM-
    // or native-lowered — they are two sends and a message loop, nothing
    // hot) instead of the body.
    const Expr* phase_expr = nullptr;
    const auto compute = [&](DvEngine::Context& ectx, graph::VertexId v,
                             std::span<const DvMessage> msgs) {
      const std::size_t w = static_cast<std::size_t>(ectx.worker());
      lanes[w].sink.bind(&ectx, &options_.send_probe);
      EvalContext& ctx = lanes[w].ctx;
      ctx.vertex = v;
      ctx.fields = fields_of(v);
      ctx.msgs = msgs;
      ctx.halt_requested = false;
      ctx.any_field_assign = false;
      std::copy(scratch_defaults_.begin(), scratch_defaults_.end(),
                ctx.scratch.begin());
      if (phase_expr != nullptr) {
        eval(*phase_expr, ctx);
        return;
      }
      if (!victims_.empty() && victims_[v]) {
        // §9: retract this vertex's contributions, then leave for good.
        send_retractions(ctx, v, si);
        engine_->mark_deleted(v);
        return;
      }
      if (body_root >= 0)
        native_->run_root(body_root, ctx);
      else if (body_chunk >= 0)
        vm_->run_chunk(body_chunk, ctx);
      else
        eval(*stmt.body, ctx);
      if (ctx.halt_requested) ectx.vote_to_halt();
      if (ctx.any_field_assign)
        assign_agg_->contribute(ectx.worker(), true);
    };

    if (can_fuse_statement(stmt, own_sites)) {
      // Fused drive: one fork-join region for the whole until-loop. The
      // service hook runs the exact inter-round segment of the classic
      // loop below (drain, cap check, break conditions, next-iteration
      // setup) on the last-arriving worker while the others park at the
      // region's barrier; the classic loop stays byte-for-byte
      // equivalent in supersteps, stats, and state.
      ++iter;
      bool last_known =
          eval_until(stmt, static_cast<std::int64_t>(iter), /*stable=*/false);
      assign_agg_->reset();
      set_iteration(iter, last_known ? own_sites : 0);
      const std::function<bool()> advance = [&]() -> bool {
        ++supersteps_;
        drain_atomic(/*activate=*/true);
        drain_retract(/*activate=*/true);
        if (epoch_cap_abs_ != 0 && supersteps_ >= epoch_cap_abs_) {
          warm_aborted_ = true;
          return false;
        }
        DV_CHECK_MSG(supersteps_ - steps_base <= options_.max_supersteps,
                     "superstep limit exceeded (non-terminating until?)");
        if (last_known) return false;
        if (stable_until) {
          const auto& last = engine_->stats().supersteps.back();
          const bool quiescent =
              last.messages_sent == 0 && atomic_folds_last_step_ == 0 &&
              retract_changes_last_step_ == 0 &&
              (cp_.options.incrementalize || !assign_agg_->reduce());
          if (eval_until(stmt, static_cast<std::int64_t>(iter), quiescent))
            return false;
        }
        ++iter;
        last_known = eval_until(stmt, static_cast<std::int64_t>(iter),
                                /*stable=*/false);
        assign_agg_->reset();
        set_iteration(iter, last_known ? own_sites : 0);
        return true;
      };
      // Sparse frontiers (warm streaming epochs waking a handful of
      // vertices) go through the single-threaded inline drive: with a
      // few dozen live vertices even barrier wakeups dominate, and the
      // exchange-free shape needs no cross-thread message routing. Wide
      // frontiers (cold convergence) keep the threaded fused region. The
      // choice is made once per statement run from the entry frontier.
      if (engine_->num_active() <=
          std::max<std::uint64_t>(256, g_.num_vertices() / 8))
        engine_->run_inline(compute, advance);
      else
        engine_->run_fused(compute, advance);
      iterations_.push_back(iter);
      return;
    }

    for (;;) {
      ++iter;
      // Scheduled vertex removals for this (statement, iteration).
      prepare_deletions(si, iter);
      // Send suppression: if this superstep is provably the statement's
      // last execution, its own-site sends could never be folded. This
      // also covers mixed untils like `stable || i >= N`: evaluating with
      // stable=false under-approximates the condition (stable only occurs
      // positively in any sensible until), so a true result means the
      // statement ends here no matter what this superstep does.
      bool last_known = !is_iter;
      if (is_iter)
        last_known = eval_until(stmt, static_cast<std::int64_t>(iter),
                                /*stable=*/false);
      assign_agg_->reset();
      set_iteration(iter, last_known ? own_sites : 0);
      if (has_phases) {
        // One logical iteration = request superstep, reply superstep,
        // consume superstep. Owners cannot know which vertices will read
        // from them (targets are field-dependent), so every phase — and
        // the consume that folds the replies — runs on all vertices.
        for (const ExprPtr& ph : stmt.phases) {
          engine_->activate_all();
          phase_expr = ph.get();
          engine_->step(compute);
          ++supersteps_;
        }
        phase_expr = nullptr;
        engine_->activate_all();
      } else if (ref_remote) {
        // The reference interpretation reads arbitrary vertices' state
        // directly; there is no message flow to wake readers.
        engine_->activate_all();
      }
      if (ref_remote)
        std::copy(state_.begin(), state_.end(), ref_snapshot.begin());
      engine_->step(compute);
      victims_.clear();
      ++supersteps_;
      drain_atomic(/*activate=*/true);
      drain_retract(/*activate=*/true);
      if (epoch_cap_abs_ != 0 && supersteps_ >= epoch_cap_abs_) {
        warm_aborted_ = true;
        break;
      }
      DV_CHECK_MSG(supersteps_ - steps_base <= options_.max_supersteps,
                   "superstep limit exceeded (non-terminating until?)");

      if (!is_iter) break;
      if (last_known) break;
      if (stable_until) {
        // Quiescence: nothing was sent, so no vertex can learn anything
        // new. For ΔV this is sufficient (bodies are idempotent under an
        // unchanged accumulator). ΔV* additionally requires that nothing
        // was assigned, because its non-memoized folds recompute from
        // whatever arrives each superstep. On the atomic path sends turn
        // into lock-free folds, so quiescence additionally requires that
        // no contribution was folded this superstep.
        const auto& last = engine_->stats().supersteps.back();
        const bool quiescent =
            last.messages_sent == 0 && atomic_folds_last_step_ == 0 &&
            retract_changes_last_step_ == 0 &&
            ((cp_.options.incrementalize && !msgless_stmt) ||
             !assign_agg_->reduce());
        if (eval_until(stmt, static_cast<std::int64_t>(iter), quiescent))
          break;
      }
      // Non-stable untils were pre-checked as last_known above; if the
      // condition first becomes true *at* this iteration count, the next
      // loop turn detects it before running another superstep.

      // Checkpoint hook: fires only once every break check has resolved to
      // "continue", so the saved cursor needs no quiescence or last-known
      // context — a resume simply re-enters this loop at iter + 1.
      if (checkpointing_ &&
          supersteps_ % options_.checkpoint_every == 0) {
        cur_iter_ = iter;
        options_.checkpoint_sink(supersteps_);
      }
    }
    iterations_.push_back(iter);
  }

  DvRunResult collect_result() {
    DvRunResult r;
    r.stats = engine_->stats();
    r.supersteps = supersteps_;
    r.iterations = iterations_;
    // Copied, not moved: the runner keeps executing (streaming epochs
    // snapshot the state after every batch).
    r.state = state_;
    for (const Field& f : prog_.fields) r.fields.push_back(f);
    r.num_vertices = g_.num_vertices();
    r.tier_used = native_   ? ExecTier::kNative
                  : vm_     ? ExecTier::kVm
                            : ExecTier::kTree;
    r.native_fallback = native_fallback_;
    return r;
  }

  const CompiledProgram& cp_;
  const Program& prog_;
  graph::GraphView g_;
  DvRunOptions options_;

  std::size_t stride_ = 0;
  std::vector<Value> state_;
  std::vector<Value> params_;
  std::vector<Value> scratch_defaults_;
  std::vector<std::uint8_t> site_wire_;
  std::vector<std::vector<Value>> worker_scratch_;
  std::unique_ptr<DvEngine> engine_;
  std::unique_ptr<Vm> vm_;  // null on the tree and native tiers
  std::vector<int> site_send_chunk_;  // per site.id; VM tier only
  // Native tier (null when not requested or after fallback-to-vm).
  std::shared_ptr<native::NativeProgram> native_;
  std::vector<int> site_send_root_;  // per site.id; native tier only
  std::string native_fallback_;      // why --tier=native ran on the VM
  std::unique_ptr<pregel::OrAggregator> assign_agg_;
  // Remote-read shape, computed once in the ctor: any kRequest/kReply
  // channel site (lowered mode) / any kRemoteRead left in a body
  // (reference mode, tree tier only).
  bool has_channels_ = false;
  bool reference_remote_ = false;
  std::size_t supersteps_ = 0;
  std::vector<std::size_t> iterations_;
  std::vector<std::uint8_t> victims_;
  bool converged_ = false;
  // Resumable-execution cursor (dv/persist): which statement run() is in
  // and how many body supersteps it has completed. All-zero on a fresh
  // runner; restore_state() sets it so run() re-enters the interrupted
  // statement. in_statement_ distinguishes "priming superstep already ran"
  // from "transition still pending" for cur_stmt_.
  bool init_done_ = false;
  bool in_statement_ = false;
  std::size_t cur_stmt_ = 0;
  std::size_t cur_iter_ = 0;
  bool checkpointing_ = false;  // armed only inside run()
  // Epoch scratch: the wake frontier (bitmap for dedup + list so waking
  // never scans the full vertex range), the Δ-application counter, and
  // the Phase A old-contribution lists, indexed [site][touched position]
  // and capacity-reused across epochs.
  std::vector<std::uint8_t> wake_;
  std::vector<graph::VertexId> wake_list_;
  std::vector<std::vector<std::vector<std::pair<graph::VertexId, Value>>>>
      epoch_olds_;
  std::size_t deltas_applied_ = 0;
  // Lock-free fold path (atomic_fold.h): the shared pending-slot table,
  // one frontier-bitmap lane per worker, and the column → site map the
  // drain uses to find accumulator slots. Empty when every site is
  // buffered.
  AtomicFoldTable atomic_table_;
  std::vector<AtomicFoldLane> atomic_lanes_;
  std::vector<int> atomic_col_site_;
  std::uint64_t atomic_folds_total_ = 0;      // since construction
  std::uint64_t atomic_folds_last_step_ = 0;  // quiescence extension
  // Retraction-memo path (streaming/retract/retract_memo.h): the k-best
  // tournament table, one record lane per worker, drain/refold scratch,
  // and the Class B runtime guard state. Empty/zero when minmax_memo_k is
  // 0 or no site qualifies — every hot-path hook is then one null test.
  RetractMemoTable retract_table_;
  std::vector<RetractLane> retract_lanes_;
  std::vector<RetractRecord> retract_scratch_;
  std::vector<RetractEntry> refold_scratch_;
  bool memo_edge_feedback_ = false;
  double min_weight_lb_ = std::numeric_limits<double>::infinity();
  std::uint64_t retract_changes_last_step_ = 0;  // quiescence extension
  std::uint64_t minmax_retractions_total_ = 0;
  std::uint64_t minmax_refolds_total_ = 0;
  std::uint64_t minmax_underflows_total_ = 0;
  // Warm-epoch superstep ceiling (absolute; 0 = unarmed): Class B repairs
  // on a severed reachability component would count to infinity, so
  // apply_epoch arms a generous budget and the drive loops abort the
  // epoch instead of tripping the fatal superstep DV_CHECK.
  std::size_t epoch_cap_abs_ = 0;
  bool warm_aborted_ = false;
};

const char* exec_tier_name(ExecTier tier) {
  switch (tier) {
    case ExecTier::kTree: return "tree";
    case ExecTier::kVm: return "vm";
    case ExecTier::kNative: return "native";
  }
  DV_FAIL("unknown execution tier");
}

ExecTier parse_exec_tier(const std::string& name) {
  if (name == "tree") return ExecTier::kTree;
  if (name == "vm") return ExecTier::kVm;
  if (name == "native") return ExecTier::kNative;
  DV_FAIL("unknown execution tier '" << name
                                     << "' (expected tree|vm|native)");
}

const char* fold_path_name(FoldPath p) {
  switch (p) {
    case FoldPath::kAuto: return "auto";
    case FoldPath::kBuffered: return "buffered";
    case FoldPath::kAtomic: return "atomic";
  }
  DV_FAIL("unknown fold path");
}

FoldPath parse_fold_path(const std::string& name) {
  if (name == "auto") return FoldPath::kAuto;
  if (name == "buffered") return FoldPath::kBuffered;
  if (name == "atomic") return FoldPath::kAtomic;
  DV_FAIL("unknown fold path '" << name
                                << "' (expected auto|buffered|atomic)");
}

int DvRunResult::field_slot(const std::string& name) const {
  for (std::size_t i = 0; i < fields.size(); ++i)
    if (fields[i].name == name) return static_cast<int>(i);
  DV_FAIL("no field named '" << name << "'");
}

std::vector<double> DvRunResult::field_as_double(
    const std::string& name) const {
  const int slot = field_slot(name);
  std::vector<double> out(num_vertices);
  for (std::size_t v = 0; v < num_vertices; ++v)
    out[v] = at(static_cast<graph::VertexId>(v), slot).as_f();
  return out;
}

std::vector<std::int64_t> DvRunResult::field_as_int(
    const std::string& name) const {
  const int slot = field_slot(name);
  std::vector<std::int64_t> out(num_vertices);
  for (std::size_t v = 0; v < num_vertices; ++v)
    out[v] = at(static_cast<graph::VertexId>(v), slot).as_i();
  return out;
}

DvRunResult run_program(const CompiledProgram& cp, graph::GraphView g,
                        const DvRunOptions& options) {
  DvRunner::Impl runner(cp, g, options);
  return runner.run();
}

DvRunner::DvRunner(const CompiledProgram& cp, graph::GraphView g,
                   DvRunOptions options)
    : impl_(std::make_unique<Impl>(cp, g, std::move(options))) {}
DvRunner::~DvRunner() = default;
DvRunner::DvRunner(DvRunner&&) noexcept = default;
DvRunner& DvRunner::operator=(DvRunner&&) noexcept = default;

DvRunResult DvRunner::converge() { return impl_->run(); }

EpochStats DvRunner::apply_epoch(graph::DynamicGraph& dyn,
                                 const graph::GraphDelta& delta) {
  return impl_->apply_epoch(dyn, delta);
}

DvRunResult DvRunner::result() const { return impl_->snapshot_result(); }

bool DvRunner::converged() const { return impl_->converged(); }

bool DvRunner::atomic_path() const { return impl_->atomic_path(); }

bool DvRunner::memo_path() const { return impl_->memo_path(); }

const char* DvRunner::warm_runtime_blocker(
    const graph::GraphDelta& delta) const {
  return impl_->warm_runtime_blocker(delta);
}

void DvRunner::save_state(persist::SnapshotWriter& w) const {
  impl_->save_state(w);
}

void DvRunner::restore_state(persist::SnapshotReader& r) {
  impl_->restore_state(r);
}

const char* DvRunner::warm_blocker(const CompiledProgram& cp,
                                   const graph::GraphDelta& delta,
                                   std::size_t minmax_memo_k) {
  const Program& prog = cp.program;
  if (!cp.options.incrementalize)
    return "program is not incrementalized (DV*): no memoized accumulators "
           "to patch";
  // Checked before any send_expr dereference: channel sites have none.
  for (const Stmt& s : prog.stmts)
    if (!s.phases.empty() || expr_contains(*s.body, ExprKind::kRemoteRead))
      return "remote reads re-request every iteration: there is no "
             "memoized channel state to patch and no frontier to wake";
  if (prog.stmts.size() != 1)
    return "multi-statement programs resume cold (cross-statement priming "
           "cannot be replayed)";
  if (prog.sites.empty())
    return "no aggregation sites: topology changes have no Δ to carry";

  // graphSize anywhere + a vertex-count change moves every vertex's value,
  // not just the frontier. Bound sites' original expressions were hoisted
  // out of the body, so scan them explicitly.
  if (delta.new_num_vertices != delta.old_num_vertices) {
    bool reads_n = expr_contains(*prog.init, ExprKind::kGraphSize);
    for (const Stmt& s : prog.stmts) {
      reads_n = reads_n || expr_contains(*s.body, ExprKind::kGraphSize);
      if (s.until)
        reads_n = reads_n || expr_contains(*s.until, ExprKind::kGraphSize);
    }
    for (const AggSite& site : prog.sites) {
      const Expr& original =
          site.init_send_expr ? *site.init_send_expr : *site.send_expr;
      reads_n = reads_n || expr_contains(original, ExprKind::kGraphSize);
    }
    if (reads_n)
      return "graphSize is read and |V| changed: every vertex is affected";
  }

  for (const AggSite& site : prog.sites) {
    const Expr& original =
        site.init_send_expr ? *site.init_send_expr : *site.send_expr;
    if (is_idempotent(site.op)) {
      // min/max accumulators cannot forget a contribution (§9), so only
      // monotone-growing change streams resume warm — unless the site is
      // routed through the k-best retraction memo (DESIGN.md §11), which
      // makes deletions O(k) keyed removals with targeted refold backup.
      const bool memoed = minmax_memo_k > 0 && site.memo_ok;
      if (!memoed) {
        if (delta.has_removals)
          return "min/max cannot retract a removed contribution";
        if (delta.has_weight_changes &&
            expr_contains(original, ExprKind::kEdgeWeight))
          return "min/max cannot retract a weight-changed contribution";
        if (expr_contains(original, ExprKind::kDegree))
          return "min/max with degree-dependent sends cannot retract on "
                 "topology change";
      }
    }
    if (cp.options.epsilon > 0 &&
        expr_contains(original, ExprKind::kEdgeWeight))
      return "epsilon-slop cannot track per-edge send payloads";
  }

  // A body indexed by its iteration variable is not resumable: the warm
  // epoch restarts the count at 1.
  for (const Stmt& s : prog.stmts) {
    if (expr_reads_iter(*s.body))
      return "statement body reads the iteration variable";
    if (!s.until || !expr_reads_iter(*s.until)) continue;
    // An iteration-bounded until makes the loop count itself semantic: a
    // warm epoch restarts iter at 1 and replays up to the bound from the
    // old converged state. That replay is harmless only when every
    // iteration past the first is a no-op — i.e. no site's send feeds on
    // a field the body itself assigns. A feedback recurrence under a
    // fixed bound (fixed-iteration PageRank) is generally not at a
    // fixpoint when the bound fires, so the extra iterations would
    // advance it past the from-scratch answer.
    std::vector<std::uint8_t> written(prog.fields.size(), 0);
    mark_field_writes(*s.body, written);
    for (const AggSite& site : prog.sites) {
      const Expr& original =
          site.init_send_expr ? *site.init_send_expr : *site.send_expr;
      if (expr_reads_marked_field(original, written))
        return "iteration-bounded until with a feedback send: the warm "
               "epoch cannot replay the loop count";
    }
  }
  return nullptr;
}

}  // namespace deltav::dv
