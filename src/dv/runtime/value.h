// Runtime values of the ΔV interpreter, and the aggregation algebra over
// them (identity / absorbing elements, the ⊞ fold).
#pragma once

#include <cmath>
#include <cstdint>

#include "dv/types.h"

namespace deltav::dv {

/// A tagged runtime value. 16 bytes; vertex state is a dense array of
/// these, messages carry one as payload.
struct Value {
  Type type = Type::kInt;
  union {
    std::int64_t i;
    double f;
    bool b;
  };

  Value() : i(0) {}

  static Value of_int(std::int64_t v) {
    Value x;
    x.type = Type::kInt;
    x.i = v;
    return x;
  }
  static Value of_float(double v) {
    Value x;
    x.type = Type::kFloat;
    x.f = v;
    return x;
  }
  static Value of_bool(bool v) {
    Value x;
    x.type = Type::kBool;
    x.b = v;
    return x;
  }

  double as_f() const {
    switch (type) {
      case Type::kFloat: return f;
      case Type::kInt: return static_cast<double>(i);
      case Type::kBool: return b ? 1.0 : 0.0;
      default: DV_FAIL("as_f on non-value");
    }
  }
  std::int64_t as_i() const {
    switch (type) {
      case Type::kInt: return i;
      case Type::kFloat: return static_cast<std::int64_t>(f);
      case Type::kBool: return b ? 1 : 0;
      default: DV_FAIL("as_i on non-value");
    }
  }
  bool as_b() const {
    DV_CHECK(type == Type::kBool);
    return b;
  }

  /// Converts to `t` (int→float widening and exact float→int for literals).
  Value coerce(Type t) const {
    if (t == type) return *this;
    switch (t) {
      case Type::kFloat: return of_float(as_f());
      case Type::kInt: return of_int(as_i());
      case Type::kBool: return of_bool(as_b());
      default: DV_FAIL("coerce to " << type_name(t));
    }
  }

  /// Structural equality after numeric unification — the comparison the
  /// meaningful-message policy is defined over (m1 ≠ m2, Def. 1).
  bool equals(const Value& o) const {
    if (type == Type::kBool || o.type == Type::kBool)
      return type == o.type && b == o.b;
    if (type == Type::kInt && o.type == Type::kInt) return i == o.i;
    return as_f() == o.as_f();
  }
};

/// default_init(⊞, τ): the identity element (§6.1).
inline Value agg_identity(AggOp op, Type t) {
  switch (t) {
    case Type::kFloat: return Value::of_float(agg_identity_double(op));
    case Type::kInt: return Value::of_int(agg_identity_int(op));
    case Type::kBool: return Value::of_bool(agg_identity_bool(op));
    default: DV_FAIL("no identity for type " << type_name(t));
  }
}

/// The absorbing element of a multiplicative operator (§6.4.1).
inline Value agg_absorbing(AggOp op, Type t) {
  switch (op) {
    case AggOp::kProd:
      return t == Type::kInt ? Value::of_int(0) : Value::of_float(0.0);
    case AggOp::kAnd: return Value::of_bool(false);
    case AggOp::kOr: return Value::of_bool(true);
    default: DV_FAIL("no absorbing element for " << agg_op_name(op));
  }
}

inline bool is_absorbing(AggOp op, const Value& v) {
  switch (op) {
    case AggOp::kProd: return v.as_f() == 0.0;
    case AggOp::kAnd: return !v.as_b();
    case AggOp::kOr: return v.as_b();
    default: return false;
  }
}

inline bool is_identity(AggOp op, const Value& v) {
  switch (op) {
    case AggOp::kSum: return v.as_f() == 0.0;
    case AggOp::kProd: return v.as_f() == 1.0;
    case AggOp::kMin:
      return v.type == Type::kInt
                 ? v.i == agg_identity_int(AggOp::kMin)
                 : v.as_f() == agg_identity_double(AggOp::kMin);
    case AggOp::kMax:
      return v.type == Type::kInt
                 ? v.i == agg_identity_int(AggOp::kMax)
                 : v.as_f() == agg_identity_double(AggOp::kMax);
    case AggOp::kAnd: return v.as_b();
    case AggOp::kOr: return !v.as_b();
  }
  return false;
}

/// a ⊞ b at type `t`.
inline Value agg_apply(AggOp op, Type t, const Value& a, const Value& b) {
  switch (op) {
    case AggOp::kSum:
      return t == Type::kInt ? Value::of_int(a.as_i() + b.as_i())
                             : Value::of_float(a.as_f() + b.as_f());
    case AggOp::kProd:
      return t == Type::kInt ? Value::of_int(a.as_i() * b.as_i())
                             : Value::of_float(a.as_f() * b.as_f());
    case AggOp::kMin:
      if (t == Type::kInt)
        return Value::of_int(a.as_i() < b.as_i() ? a.as_i() : b.as_i());
      return Value::of_float(a.as_f() < b.as_f() ? a.as_f() : b.as_f());
    case AggOp::kMax:
      if (t == Type::kInt)
        return Value::of_int(a.as_i() > b.as_i() ? a.as_i() : b.as_i());
      return Value::of_float(a.as_f() > b.as_f() ? a.as_f() : b.as_f());
    case AggOp::kAnd: return Value::of_bool(a.as_b() && b.as_b());
    case AggOp::kOr: return Value::of_bool(a.as_b() || b.as_b());
  }
  DV_FAIL("unknown aggregation operator");
}

}  // namespace deltav::dv
