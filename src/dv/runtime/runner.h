// Executes a compiled ΔV program over a graph on the Pregel engine.
//
// The compiled program is a state machine over supersteps:
//
//   superstep 0        — run the init block on every vertex, then push the
//                        initial full values for statement 0's aggregation
//                        sites (§6.1 "at the first superstep ... send the
//                        data from the neighbors' perspective").
//   statement k        — one superstep per body execution. The body gathers
//                        messages (folds), computes, sends (full values for
//                        ΔV*, Δ-messages for ΔV), and — for ΔV — halts.
//                        `iter` statements repeat until their until clause
//                        holds; the runner evaluates until clauses globally
//                        (they are restricted to globally-evaluable forms,
//                        with `stable` bound to engine quiescence).
//   transition k→k+1   — reactivate all vertices and run one priming
//                        superstep that pushes initial values for statement
//                        k+1's sites.
//
// Send suppression: when the runner can prove a superstep is the last
// execution of its statement (step statements; iter statements with a
// stable-free until), that superstep's own-site sends are suppressed —
// they could never be folded.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dv/compiler.h"
#include "dv/obs/obs.h"
#include "dv/runtime/atomic_fold.h"
#include "dv/runtime/interpreter.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_view.h"
#include "pregel/engine.h"

namespace deltav::dv::persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace deltav::dv::persist

namespace deltav::dv {

/// A scheduled vertex removal (§9 future work): at the given body
/// iteration of the given statement, the vertices broadcast retraction
/// Δ-messages that restore their contribution to the aggregation identity
/// ("a message that zeros out the value of the vertex to its neighbors"),
/// then leave the computation permanently.
struct VertexDeletion {
  std::size_t stmt_index = 0;
  std::size_t iteration = 1;  // 1-based body execution count
  std::vector<graph::VertexId> vertices;
};

/// Which execution substrate evaluates compiled expression trees.
/// The tree interpreter is the reference semantics; the bytecode VM
/// (runtime/vm.h) is the default and is bit-identical by contract; the
/// native tier AOT-compiles the whole program into a dlopen-ed shared
/// object (codegen/native_module.h) with the same bit-exact contract.
/// The differential fuzzer cross-checks all three on every generated
/// program. kNative falls back to kVm with a named reason (surfaced in
/// DvRunResult::native_fallback and the dv.native_fallbacks counter)
/// when the toolchain is missing, compilation fails, or the program
/// uses a construct the emitter does not cover — never a silent wrong
/// answer, never a silent wrong tier.
enum class ExecTier {
  kTree,    // recursive tree-walking interpreter
  kVm,      // register-based bytecode VM (default)
  kNative,  // AOT-compiled shared object behind a C ABI vtable
};

const char* exec_tier_name(ExecTier tier);
/// Parses "tree"/"vm"/"native" (CLI flags); throws CheckError otherwise.
ExecTier parse_exec_tier(const std::string& name);

const char* fold_path_name(FoldPath p);
/// Parses "auto"/"buffered"/"atomic" (CLI flags); throws CheckError
/// otherwise.
FoldPath parse_fold_path(const std::string& name);

struct DvRunOptions {
  pregel::EngineOptions engine;
  bool use_combiner = true;
  /// Execution tier for all expression evaluation (init block, statement
  /// bodies, until clauses, send expressions).
  ExecTier tier = ExecTier::kVm;
  /// Program parameter bindings by name; must cover every `param`.
  std::map<std::string, Value> params;
  /// Hard cap guarding against non-terminating until clauses.
  std::size_t max_supersteps = 100000;
  /// Observability sink for the runner's evaluator lanes and the engine.
  /// nullptr falls back to the globally installed collector
  /// (obs::current()); null there too means zero instrumentation cost
  /// beyond one pointer test per superstep per lane.
  obs::Collector* collector = nullptr;
  /// Scheduled vertex removals. With incrementalization this requires all
  /// of the statement's aggregation operators to admit retraction
  /// (+, *, &&, ||); min/max accumulators cannot forget a contribution.
  std::vector<VertexDeletion> deletions;

  /// Fold-path selection (DESIGN.md "Fold paths"): kAuto routes every
  /// site the incrementalize pass proved commutative-associative through
  /// the lock-free pending-slot path; kBuffered forces the message path
  /// everywhere (the differential oracle); kAtomic requests the fast path
  /// explicitly (same routing as kAuto — ineligible sites still buffer).
  /// A send_probe forces buffered regardless: a message probe has nothing
  /// to observe on a message-free path.
  FoldPath fold_path = FoldPath::kAuto;
  /// Retraction-memo capacity (DESIGN.md §11): with k > 0, every memo-
  /// eligible min/max site keeps the k best tagged contributions per
  /// vertex so deletion epochs can retract the extremum warm (falling
  /// back to a targeted in-neighbor refold on buffer underflow). 0
  /// disables the subsystem entirely — the legacy behavior where any
  /// min/max retraction forces a cold rebuild. Only meaningful under
  /// options.incrementalize; plain one-shot runs never pay for it.
  std::size_t minmax_memo_k = 0;
  /// Opt-in: admit float + sites to the atomic path. Concurrent fetch-
  /// order re-associates the sum, so results are only ε-close to the
  /// buffered path, not bit-exact; everything else keeps the bit-exact
  /// contract.
  bool atomic_float = false;

  /// Debug/verification hook: observes every message as it is sent
  /// (src, dst, message). Called from worker threads — the callee must be
  /// thread-safe. Tests use this to check the meaningful-messages policy
  /// (Definition 1) directly on live runs.
  std::function<void(graph::VertexId src, graph::VertexId dst,
                     const DvMessage&)>
      send_probe;

  /// Mid-convergence checkpointing: during converge(), after every
  /// checkpoint_every-th superstep whose statement is certain to continue,
  /// checkpoint_sink is invoked (between supersteps, single-threaded; the
  /// runner's save_state is safe to call from it). 0 disables. Warm
  /// epochs (apply_epoch) never fire the hook — they are short by
  /// construction, and a resume point inside apply() is not representable.
  std::size_t checkpoint_every = 0;
  std::function<void(std::size_t supersteps_done)> checkpoint_sink;
};

struct DvRunResult {
  pregel::RunStats stats;
  std::size_t supersteps = 0;
  std::vector<std::size_t> iterations;  // per statement

  /// The tier that actually executed. Equals the requested tier except
  /// when --tier=native fell back to the VM; `native_fallback` then names
  /// why (tools print it, tests assert on it).
  ExecTier tier_used = ExecTier::kVm;
  std::string native_fallback;

  /// Final vertex state: num_vertices × num_fields, field-major stride.
  std::vector<Value> state;
  std::vector<Field> fields;
  std::size_t num_vertices = 0;

  const Value& at(graph::VertexId v, int field_slot) const {
    return state[static_cast<std::size_t>(v) * fields.size() +
                 static_cast<std::size_t>(field_slot)];
  }

  int field_slot(const std::string& name) const;

  /// Extracts a field column as doubles (ints/bools widen).
  std::vector<double> field_as_double(const std::string& name) const;
  std::vector<std::int64_t> field_as_int(const std::string& name) const;
};

/// Runs `cp` over `g` (a CsrGraph converts implicitly). Throws
/// CheckError/CompileError on misuse (missing params, #neighbors on a
/// directed graph, superstep cap exceeded).
DvRunResult run_program(const CompiledProgram& cp, graph::GraphView g,
                        const DvRunOptions& options = {});

/// What one streaming epoch cost (see DvRunner::apply_epoch and
/// DESIGN.md "streaming epochs").
struct EpochStats {
  std::size_t supersteps = 0;      // supersteps this epoch ran
  std::uint64_t messages = 0;      // engine messages sent this epoch
  std::size_t deltas_applied = 0;  // Δ-payloads folded directly into
                                   // receiver accumulators at epoch start
  std::size_t woken = 0;           // vertices activated at epoch start
  std::uint64_t atomic_folds = 0;  // contributions folded lock-free this
                                   // epoch (0 on the buffered path)
  bool atomic_path = false;        // any site routed through the atomic path
  // Retraction memos (DESIGN.md §11):
  std::uint64_t minmax_retractions = 0;  // worsened/removed contributions
                                         // retracted through the memo
  std::uint64_t minmax_refolds = 0;      // targeted in-neighbor refolds
  std::uint64_t minmax_underflows = 0;   // cells whose k survivors were
                                         // all retracted (triggers refold)
  bool warm_aborted = false;       // the epoch hit the repair cap mid-
                                   // reconvergence (count-to-infinity
                                   // guard); state is unusable and the
                                   // session must rebuild cold
};

/// A resumable program execution: the §9 dynamic-graph story. After
/// converge(), apply_epoch() patches the memoized aggregation state for a
/// batch of graph mutations — synthesizing per-operator retraction and
/// injection Δ-messages against the old and new topology — wakes only the
/// mutation frontier, and re-converges incrementally. Works on both
/// execution tiers (the tier is picked via DvRunOptions::tier).
///
/// Intended use is through dv::streaming::DvStreamSession, which owns the
/// DynamicGraph, falls back to a cold rebuild when warm_blocker() fires,
/// and handles overlay compaction.
class DvRunner {
 public:
  /// The view must outlive the runner; for warm epochs it must view the
  /// DynamicGraph later passed to apply_epoch.
  DvRunner(const CompiledProgram& cp, graph::GraphView g,
           DvRunOptions options);
  ~DvRunner();
  DvRunner(DvRunner&&) noexcept;
  DvRunner& operator=(DvRunner&&) noexcept;

  /// Cold run to convergence (exactly run_program's semantics). Must be
  /// called once, before any apply_epoch — except after restoring a
  /// mid-run checkpoint, where it resumes the interrupted convergence from
  /// the saved superstep and finishes bit-exactly with an uninterrupted
  /// run.
  DvRunResult converge();

  /// True once converge() has completed (a restored mid-run checkpoint
  /// starts false and needs a resuming converge()).
  bool converged() const;

  /// Serializes the complete execution state — vertex values (aggAccum /
  /// nnAcc / aggNulls / last-sent memos live in the state rows), the
  /// statement/iteration cursor, the engine checkpoint (halt bits, work
  /// queues, pending messages) and the full stats history (per-epoch
  /// stats are diffs against it) — as the kSecRunner + kSecEngine
  /// sections. Call between supersteps only (always true from
  /// checkpoint_sink or after converge()).
  void save_state(persist::SnapshotWriter& w) const;

  /// Restores save_state output into a freshly-constructed runner over
  /// the same program, graph snapshot and engine configuration. Throws
  /// persist::SnapshotError when the decoded state does not fit them.
  void restore_state(persist::SnapshotReader& r);

  /// Why `cp` cannot resume warm across `delta` — a static human-readable
  /// reason — or nullptr if it can. Warm resume requires the incremental
  /// pipeline (memoized accumulators), a single statement, retractable
  /// operators for the kinds of change in `delta` (min/max admit
  /// insert-only streams), no graphSize dependence when |V| changes, and
  /// an iteration-independent body. With minmax_memo_k > 0 the min/max
  /// retraction clauses are waived per-site for memo-eligible sites
  /// (AggSite::memo_ok) — the retraction subsystem keeps those warm.
  static const char* warm_blocker(const CompiledProgram& cp,
                                  const graph::GraphDelta& delta,
                                  std::size_t minmax_memo_k = 0);

  /// Data-dependent warm blockers the static analysis cannot see:
  /// currently only the positive-edge-weight guard for memoized min-plus
  /// feedback sites (a non-positive weight would let the retraction
  /// repair cycle without progress and converge to a wrong fixpoint).
  /// Checked against the weight lower bound tracked since construction
  /// plus `delta`'s new arcs. Returns a reason or nullptr.
  const char* warm_runtime_blocker(const graph::GraphDelta& delta) const;

  /// True when at least one min/max site routes through the retraction
  /// memo under this runner's options (labels bench/tool output).
  bool memo_path() const;

  /// Warm epoch: Phase A records the frontier's old contributions against
  /// the pre-mutation topology, `delta` is committed into `dyn`, and Phase
  /// B folds synthesized Δ-messages (retraction / injection / old→new)
  /// into every affected accumulator — including the three-field
  /// nnAcc/aggNulls/aggAccum treatment for ×/&&/|| — before the engine
  /// re-converges over the woken frontier.
  /// Preconditions: converge() ran; warm_blocker(cp, delta) == nullptr;
  /// delta came from dyn.plan() on the current snapshot; the runner's view
  /// is over `dyn`; no scheduled deletions.
  EpochStats apply_epoch(graph::DynamicGraph& dyn,
                         const graph::GraphDelta& delta);

  /// Snapshot of the current converged state (same shape as converge()'s
  /// result; stats cover everything since construction).
  DvRunResult result() const;

  /// True when at least one aggregation site routes through the lock-free
  /// fold path under this runner's options (labels bench/tool output).
  bool atomic_path() const;

  /// Implementation; public so run_program can drive it directly.
  class Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace deltav::dv
