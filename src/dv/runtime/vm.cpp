#include "dv/runtime/vm.h"

#include <cstring>

#include "dv/compiler.h"
#include "dv/obs/obs.h"
#include "dv/runtime/delta.h"

// Direct-threaded dispatch via GNU computed goto where available; the
// portable switch loop is the fallback (and the sanitizer builds exercise
// both paths through the differential fuzzer either way).
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(DV_VM_NO_COMPUTED_GOTO)
#define DV_VM_CG 1
#else
#define DV_VM_CG 0
#endif

namespace deltav::dv {

namespace {

// Every opcode, in bytecode.h enum order. The static_asserts below keep
// the dispatch table in sync with the enum.
#define DV_VM_OPS(X)                                                         \
  X(kConstI) X(kConstF) X(kConstB) X(kMove)                                  \
  X(kI2F) X(kF2I) X(kB2F) X(kB2I)                                            \
  X(kLoadIter) X(kLoadStable) X(kLoadVertexId) X(kLoadGraphSize)             \
  X(kLoadEdgeWeight) X(kLoadParamI) X(kLoadParamF) X(kLoadParamB)            \
  X(kDegreeIn) X(kDegreeOut)                                                 \
  X(kLoadFieldI) X(kLoadFieldF) X(kLoadFieldB)                               \
  X(kStoreFieldI) X(kStoreFieldF) X(kStoreFieldB)                            \
  X(kLoadScratchI) X(kLoadScratchF) X(kLoadScratchB)                         \
  X(kStoreScratchI) X(kStoreScratchF) X(kStoreScratchB)                      \
  X(kAddI) X(kAddF) X(kSubI) X(kSubF) X(kMulI) X(kMulF) X(kDivF)             \
  X(kNegI) X(kNegF) X(kNotB)                                                 \
  X(kLtF) X(kLeF) X(kGtF) X(kGeF)                                            \
  X(kEqI) X(kEqF) X(kEqB) X(kNeI) X(kNeF) X(kNeB)                            \
  X(kMinI) X(kMinF) X(kMaxI) X(kMaxF)                                        \
  X(kJump) X(kJumpIfFalse) X(kJumpIfTrue)                                    \
  X(kHalt) X(kReturnVal) X(kReturnUnit)                                      \
  X(kFoldFull) X(kFoldDelta) X(kSendDelta) X(kSendFull)                      \
  X(kDivGraphSizeF) X(kDivDegOutF) X(kCopyFieldScratchF) X(kMulAddF)       \
  X(kObsCount) X(kSendDeltaAtomic)

#define X(n) ord_##n,
enum : int { DV_VM_OPS(X) };
#undef X
#define X(n)                                          \
  static_assert(ord_##n == static_cast<int>(Op::n),   \
                "DV_VM_OPS out of sync with Op enum");
DV_VM_OPS(X)
#undef X

/// Raw 8-byte copy of a Value's payload into a register (the union's
/// widest member spans all of them; memcpy sidesteps active-member rules).
inline VmSlot to_slot(const Value& v) {
  VmSlot s;
  std::memcpy(&s, &v.i, sizeof(VmSlot));
  return s;
}

inline Value slot_value(Type t, VmSlot s) {
  switch (t) {
    case Type::kInt: return Value::of_int(s.i);
    case Type::kFloat: return Value::of_float(s.f);
    case Type::kBool: return Value::of_bool(s.b);
    default: DV_FAIL("slot of type " << type_name(t));
  }
}

}  // namespace

Vm::Vm(const CompiledProgram& cp) : vp_(lower_program(cp)) {}

void Vm::specialize_atomic(const std::vector<int>& route) {
  for (Chunk& ch : vp_.chunks)
    for (Instr& ins : ch.code)
      if (ins.op == Op::kSendDelta &&
          static_cast<std::size_t>(ins.imm) < route.size() &&
          route[static_cast<std::size_t>(ins.imm)] >= 0)
        ins.op = Op::kSendDeltaAtomic;
}

Value Vm::eval_root(const Expr& root, EvalContext& ctx) const {
  const int id = vp_.chunk_of(root);
  DV_CHECK_MSG(id >= 0, "expression was not lowered as a VM root");
  return run_chunk(id, ctx);
}

Value Vm::send_operand(std::uint16_t packed, Type elem,
                       EvalContext& ctx) const {
  const std::uint16_t idx = send_operand_index(packed);
  switch (send_operand_src(packed)) {
    // Field/scratch slots were selected at lowering only when their static
    // type equals the site's element type, so the stored Value is already
    // payload-shaped — the same no-op coerce the interpreter hits.
    case SendSrc::kField: return ctx.fields[idx];
    case SendSrc::kScratch: return ctx.scratch[idx];
    case SendSrc::kConst: return slot_value(elem, vp_.consts[idx]);
    case SendSrc::kChunk: return run_chunk(idx, ctx);
  }
  DV_FAIL("corrupt send operand");
}

Value Vm::run_chunk(int chunk_id, EvalContext& ctx) const {
  const Chunk& ch = vp_.chunks[static_cast<std::size_t>(chunk_id)];
  const Instr* const code = ch.code.data();
  const VmSlot* const consts = vp_.consts.data();
  const Instr* pc = code;
  const Instr* I = nullptr;
  VmSlot regs[kVmMaxRegs];

  // Dispatch accounting: `ops += op_tick` is one branchless add per
  // dispatched instruction (op_tick is 0 with no collector), flushed once
  // at the returns. Keeps the hot loop free of per-op branches.
  obs::MetricsShard* const shard = ctx.obs;
  const std::uint64_t op_tick = shard ? 1 : 0;
  std::uint64_t ops = 0;

#if DV_VM_CG
#define X(n) &&L_##n,
  static const void* const kLabels[] = {DV_VM_OPS(X)};
#undef X
#define CASE(n) L_##n:
#define NEXT()                                      \
  do {                                              \
    I = pc++;                                       \
    ops += op_tick;                                 \
    goto* kLabels[static_cast<int>(I->op)];         \
  } while (0)
  NEXT();
#else
#define CASE(n) case Op::n:
#define NEXT() break
  for (;;) {
    I = pc++;
    ops += op_tick;
    switch (I->op) {
#endif

  CASE(kConstI) { regs[I->a] = consts[I->imm]; } NEXT();
  CASE(kConstF) { regs[I->a] = consts[I->imm]; } NEXT();
  CASE(kConstB) { regs[I->a].b = I->imm != 0; } NEXT();
  CASE(kMove) { regs[I->a] = regs[I->b]; } NEXT();

  CASE(kI2F) { regs[I->a].f = static_cast<double>(regs[I->b].i); } NEXT();
  CASE(kF2I) {
    regs[I->a].i = static_cast<std::int64_t>(regs[I->b].f);
  } NEXT();
  CASE(kB2F) { regs[I->a].f = regs[I->b].b ? 1.0 : 0.0; } NEXT();
  CASE(kB2I) { regs[I->a].i = regs[I->b].b ? 1 : 0; } NEXT();

  CASE(kLoadIter) { regs[I->a].i = ctx.iter; } NEXT();
  CASE(kLoadStable) { regs[I->a].b = ctx.stable; } NEXT();
  CASE(kLoadVertexId) { regs[I->a].i = ctx.vertex; } NEXT();
  CASE(kLoadGraphSize) {
    regs[I->a].i = static_cast<std::int64_t>(ctx.graph->num_vertices());
  } NEXT();
  CASE(kLoadEdgeWeight) { regs[I->a].f = ctx.cur_edge_weight; } NEXT();
  CASE(kLoadParamI) { regs[I->a].i = ctx.params[I->b].i; } NEXT();
  CASE(kLoadParamF) { regs[I->a].f = ctx.params[I->b].f; } NEXT();
  CASE(kLoadParamB) { regs[I->a].b = ctx.params[I->b].b; } NEXT();
  CASE(kDegreeIn) {
    regs[I->a].i = static_cast<std::int64_t>(ctx.graph->in_degree(
        ctx.vertex));
  } NEXT();
  CASE(kDegreeOut) {
    regs[I->a].i = static_cast<std::int64_t>(ctx.graph->out_degree(
        ctx.vertex));
  } NEXT();

  CASE(kLoadFieldI) { regs[I->a].i = ctx.fields[I->b].i; } NEXT();
  CASE(kLoadFieldF) { regs[I->a].f = ctx.fields[I->b].f; } NEXT();
  CASE(kLoadFieldB) { regs[I->a].b = ctx.fields[I->b].b; } NEXT();
  CASE(kStoreFieldI) {
    Value& v = ctx.fields[I->b];
    v.type = Type::kInt;
    v.i = regs[I->a].i;
    if (I->c) ctx.any_field_assign = true;
  } NEXT();
  CASE(kStoreFieldF) {
    Value& v = ctx.fields[I->b];
    v.type = Type::kFloat;
    v.f = regs[I->a].f;
    if (I->c) ctx.any_field_assign = true;
  } NEXT();
  CASE(kStoreFieldB) {
    Value& v = ctx.fields[I->b];
    v.type = Type::kBool;
    v.b = regs[I->a].b;
    if (I->c) ctx.any_field_assign = true;
  } NEXT();
  CASE(kLoadScratchI) { regs[I->a].i = ctx.scratch[I->b].i; } NEXT();
  CASE(kLoadScratchF) { regs[I->a].f = ctx.scratch[I->b].f; } NEXT();
  CASE(kLoadScratchB) { regs[I->a].b = ctx.scratch[I->b].b; } NEXT();
  CASE(kStoreScratchI) {
    Value& v = ctx.scratch[I->b];
    v.type = Type::kInt;
    v.i = regs[I->a].i;
  } NEXT();
  CASE(kStoreScratchF) {
    Value& v = ctx.scratch[I->b];
    v.type = Type::kFloat;
    v.f = regs[I->a].f;
  } NEXT();
  CASE(kStoreScratchB) {
    Value& v = ctx.scratch[I->b];
    v.type = Type::kBool;
    v.b = regs[I->a].b;
  } NEXT();

  CASE(kAddI) { regs[I->a].i = regs[I->b].i + regs[I->c].i; } NEXT();
  CASE(kAddF) { regs[I->a].f = regs[I->b].f + regs[I->c].f; } NEXT();
  CASE(kSubI) { regs[I->a].i = regs[I->b].i - regs[I->c].i; } NEXT();
  CASE(kSubF) { regs[I->a].f = regs[I->b].f - regs[I->c].f; } NEXT();
  CASE(kMulI) { regs[I->a].i = regs[I->b].i * regs[I->c].i; } NEXT();
  CASE(kMulF) { regs[I->a].f = regs[I->b].f * regs[I->c].f; } NEXT();
  CASE(kDivF) { regs[I->a].f = regs[I->b].f / regs[I->c].f; } NEXT();
  CASE(kNegI) { regs[I->a].i = -regs[I->b].i; } NEXT();
  CASE(kNegF) { regs[I->a].f = -regs[I->b].f; } NEXT();
  CASE(kNotB) { regs[I->a].b = !regs[I->b].b; } NEXT();

  CASE(kLtF) { regs[I->a].b = regs[I->b].f < regs[I->c].f; } NEXT();
  CASE(kLeF) { regs[I->a].b = regs[I->b].f <= regs[I->c].f; } NEXT();
  CASE(kGtF) { regs[I->a].b = regs[I->b].f > regs[I->c].f; } NEXT();
  CASE(kGeF) { regs[I->a].b = regs[I->b].f >= regs[I->c].f; } NEXT();
  CASE(kEqI) { regs[I->a].b = regs[I->b].i == regs[I->c].i; } NEXT();
  CASE(kEqF) { regs[I->a].b = regs[I->b].f == regs[I->c].f; } NEXT();
  CASE(kEqB) { regs[I->a].b = regs[I->b].b == regs[I->c].b; } NEXT();
  CASE(kNeI) { regs[I->a].b = regs[I->b].i != regs[I->c].i; } NEXT();
  CASE(kNeF) { regs[I->a].b = regs[I->b].f != regs[I->c].f; } NEXT();
  CASE(kNeB) { regs[I->a].b = regs[I->b].b != regs[I->c].b; } NEXT();

  // Pair ops mirror the interpreter: compare via as_f() (ints through
  // double), then select the original operand.
  CASE(kMinI) {
    regs[I->a].i = static_cast<double>(regs[I->b].i) <=
                           static_cast<double>(regs[I->c].i)
                       ? regs[I->b].i
                       : regs[I->c].i;
  } NEXT();
  CASE(kMinF) {
    regs[I->a].f = regs[I->b].f <= regs[I->c].f ? regs[I->b].f
                                                : regs[I->c].f;
  } NEXT();
  CASE(kMaxI) {
    regs[I->a].i = static_cast<double>(regs[I->b].i) >=
                           static_cast<double>(regs[I->c].i)
                       ? regs[I->b].i
                       : regs[I->c].i;
  } NEXT();
  CASE(kMaxF) {
    regs[I->a].f = regs[I->b].f >= regs[I->c].f ? regs[I->b].f
                                                : regs[I->c].f;
  } NEXT();

  CASE(kJump) { pc = code + I->imm; } NEXT();
  CASE(kJumpIfFalse) {
    if (!regs[I->a].b) pc = code + I->imm;
  } NEXT();
  CASE(kJumpIfTrue) {
    if (regs[I->a].b) pc = code + I->imm;
  } NEXT();
  CASE(kHalt) { ctx.halt_requested = true; } NEXT();
  CASE(kReturnVal) {
    DV_OBS_COUNT(shard, kVmOpsDispatched, ops);
    return slot_value(ch.result, regs[I->a]);
  } NEXT();
  CASE(kReturnUnit) {
    DV_OBS_COUNT(shard, kVmOpsDispatched, ops);
    return Value::of_int(0);
  } NEXT();

  CASE(kFoldFull) {
    // Eq. 3: fold this superstep's full-value messages from the identity.
    DV_CHECK_MSG(ctx.has_vertex, "message fold outside vertex context");
    DV_OBS_COUNT(shard, kVmFusedOps, 1);
    DV_OBS_COUNT(shard, kMemoRecomputes, 1);
    const AggSite& site = ctx.prog->sites[static_cast<std::size_t>(I->imm)];
    // Non-multiplicative folds are pure reductions; run them over unboxed
    // scalars (the same as_f()/as_i() arithmetic agg_apply performs, so the
    // result is bit-identical — the helper call and Value boxing per
    // message are what we skip).
    if (!site.multiplicative() && site.elem_type == Type::kFloat) {
      double a = agg_identity_double(site.op);
      for (const DvMessage& m : ctx.msgs) {
        if (static_cast<std::int32_t>(m.site) != I->imm) continue;
        const double p = m.payload.as_f();
        switch (site.op) {
          case AggOp::kSum: a += p; break;
          case AggOp::kMin: a = a < p ? a : p; break;
          default: a = a > p ? a : p; break;
        }
      }
      regs[I->a].f = a;
    } else if (!site.multiplicative() && site.elem_type == Type::kInt) {
      std::int64_t a = agg_identity_int(site.op);
      for (const DvMessage& m : ctx.msgs) {
        if (static_cast<std::int32_t>(m.site) != I->imm) continue;
        const std::int64_t p = m.payload.as_i();
        switch (site.op) {
          case AggOp::kSum: a += p; break;
          case AggOp::kMin: a = a < p ? a : p; break;
          default: a = a > p ? a : p; break;
        }
      }
      regs[I->a].i = a;
    } else {
      Value acc = agg_identity(site.op, site.elem_type);
      for (const DvMessage& m : ctx.msgs) {
        if (static_cast<std::int32_t>(m.site) != I->imm) continue;
        acc = agg_apply(site.op, site.elem_type, acc, m.payload);
      }
      regs[I->a] = to_slot(acc);
    }
  } NEXT();
  CASE(kFoldDelta) {
    // Eq. 8/9: fold Δ-messages into the memoized accumulator triple.
    DV_CHECK_MSG(ctx.has_vertex, "message fold outside vertex context");
    DV_OBS_COUNT(shard, kVmFusedOps, 1);
    DV_OBS_COUNT(shard, kMemoHits, 1);
    const AggSite& site = ctx.prog->sites[static_cast<std::size_t>(I->imm)];
    Value& accv = ctx.fields[static_cast<std::size_t>(site.acc_slot)];
    // Fast path mirroring the float fold above: apply_delta for a
    // non-multiplicative site is acc = agg_apply(acc, payload), so inline
    // the arithmetic on the unboxed accumulator. Gated on the accumulator
    // tag so as_f()/as_i() semantics match the generic helper exactly.
    if (!site.multiplicative() && site.elem_type == Type::kFloat &&
        accv.type == Type::kFloat) {
      double a = accv.f;
      for (const DvMessage& m : ctx.msgs) {
        if (static_cast<std::int32_t>(m.site) != I->imm) continue;
        const double p = m.payload.as_f();
        switch (site.op) {
          case AggOp::kSum: a += p; break;
          case AggOp::kMin: a = a < p ? a : p; break;
          default: a = a > p ? a : p; break;
        }
      }
      accv.f = a;
      regs[I->a].f = a;
    } else if (!site.multiplicative() && site.elem_type == Type::kInt &&
               accv.type == Type::kInt) {
      std::int64_t a = accv.i;
      for (const DvMessage& m : ctx.msgs) {
        if (static_cast<std::int32_t>(m.site) != I->imm) continue;
        const std::int64_t p = m.payload.as_i();
        switch (site.op) {
          case AggOp::kSum: a += p; break;
          case AggOp::kMin: a = a < p ? a : p; break;
          default: a = a > p ? a : p; break;
        }
      }
      accv.i = a;
      regs[I->a].i = a;
    } else {
      AccumRef ref;
      ref.acc = &accv;
      if (site.multiplicative()) {
        // §6.4.1 absorbing-element slow path (nnAcc/aggNulls tracking).
        DV_OBS_COUNT(shard, kAbsorbingSlowPath, 1);
        ref.nn = &ctx.fields[static_cast<std::size_t>(site.nn_slot)];
        ref.nulls = &ctx.fields[static_cast<std::size_t>(site.nulls_slot)];
      }
      for (const DvMessage& m : ctx.msgs) {
        if (static_cast<std::int32_t>(m.site) != I->imm) continue;
        apply_delta(site.op, site.elem_type, ref, m.payload, m.nulls,
                    m.denulls);
      }
      regs[I->a] = to_slot(*ref.acc);
    }
  } NEXT();

  CASE(kSendDelta) {
    // §6.5 Δ-send loop over one CSR neighbor span, fused: per target,
    // evaluate new/old, synthesize_delta (Eq. 11), suppress no-ops, send.
    DV_OBS_COUNT(shard, kVmFusedOps, 1);
    if (ctx.suppress_sites & (1ULL << I->imm)) {
      if (shard) {
        const auto dir = static_cast<GraphDir>(I->a);
        shard->add(obs::Counter::kLastStepSendsSuppressed,
                   dir == GraphDir::kIn
                       ? ctx.graph->in_neighbors(ctx.vertex).size()
                       : ctx.graph->out_neighbors(ctx.vertex).size());
      }
    } else {
      DV_CHECK_MSG(ctx.has_vertex && ctx.sink, "send loop outside superstep");
      const AggSite& site =
          ctx.prog->sites[static_cast<std::size_t>(I->imm)];
      const graph::GraphView& g = *ctx.graph;
      std::span<const graph::VertexId> targets;
      std::span<const double> weights;
      if (static_cast<GraphDir>(I->a) == GraphDir::kIn) {
        targets = g.in_neighbors(ctx.vertex);
        weights = g.in_weights(ctx.vertex);
      } else {
        targets = g.out_neighbors(ctx.vertex);
        weights = g.out_weights(ctx.vertex);
      }
      const std::uint8_t wire =
          (*ctx.site_wire)[static_cast<std::size_t>(I->imm)];
      // Retraction-memo hook (mirrors the tree tier): routed sites record
      // the sender's new total per target, no-op Δs included (identity
      // totals are the removal records).
      const int rcol = ctx.retract
                           ? ctx.retract->route[static_cast<std::size_t>(
                                 I->imm)]
                           : -1;
      if (send_operand_src(I->b) != SendSrc::kChunk &&
          send_operand_src(I->c) != SendSrc::kChunk) {
        // Direct operands (field/scratch/const) cannot depend on the edge,
        // so they are invariant across the neighbor span: synthesize one Δ
        // for the whole loop, and when it is a no-op skip the span
        // entirely. The per-edge values the tree interpreter re-evaluates
        // are identical by purity, so so are the messages.
        if (!targets.empty()) {
          ctx.cur_edge_weight =
              weights.empty() ? 1.0 : weights[targets.size() - 1];
          const Value new_v = send_operand(I->b, site.elem_type, ctx);
          const Value old_v = send_operand(I->c, site.elem_type, ctx);
          const DeltaPayload d =
              synthesize_delta(site.op, site.elem_type, old_v, new_v);
          if (rcol >= 0) {
            const std::uint64_t bits =
                atomic_fold_bits(site.elem_type, new_v);
            for (const graph::VertexId dst : targets)
              ctx.retract_lane->record(
                  dst, static_cast<std::uint32_t>(ctx.vertex), rcol, bits);
          }
          if (!d.noop) {
            DvMessage msg;
            msg.site = static_cast<std::uint8_t>(I->imm);
            msg.wire = wire;
            msg.payload = d.value;
            msg.nulls = d.nulls;
            msg.denulls = d.denulls;
            ctx.sink->send_span(targets, msg);
            DV_OBS_COUNT(shard, kDeltaMessages, targets.size());
          } else {
            DV_OBS_COUNT(shard, kSendsSuppressed, targets.size());
          }
        }
      } else {
        std::uint64_t n_suppressed = 0, n_delta = 0;
        for (std::size_t t = 0; t < targets.size(); ++t) {
          ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[t];
          const Value new_v = send_operand(I->b, site.elem_type, ctx);
          const Value old_v = send_operand(I->c, site.elem_type, ctx);
          const DeltaPayload d =
              synthesize_delta(site.op, site.elem_type, old_v, new_v);
          if (rcol >= 0)
            ctx.retract_lane->record(
                targets[t], static_cast<std::uint32_t>(ctx.vertex), rcol,
                atomic_fold_bits(site.elem_type, new_v));
          if (d.noop) {
            ++n_suppressed;
            continue;
          }
          DvMessage msg;
          msg.site = static_cast<std::uint8_t>(I->imm);
          msg.wire = wire;
          msg.payload = d.value;
          msg.nulls = d.nulls;
          msg.denulls = d.denulls;
          ctx.sink->send(targets[t], msg);
          ++n_delta;
        }
        if (shard) {
          shard->add(obs::Counter::kSendsSuppressed, n_suppressed);
          shard->add(obs::Counter::kDeltaMessages, n_delta);
        }
      }
    }
  } NEXT();
  CASE(kSendFull) {
    // Full-value send loop (ΔV*); identity payloads are fold no-ops and
    // are suppressed, as in the interpreter.
    DV_OBS_COUNT(shard, kVmFusedOps, 1);
    if (ctx.suppress_sites & (1ULL << I->imm)) {
      if (shard) {
        const auto dir = static_cast<GraphDir>(I->a);
        shard->add(obs::Counter::kLastStepSendsSuppressed,
                   dir == GraphDir::kIn
                       ? ctx.graph->in_neighbors(ctx.vertex).size()
                       : ctx.graph->out_neighbors(ctx.vertex).size());
      }
    } else {
      DV_CHECK_MSG(ctx.has_vertex && ctx.sink, "send loop outside superstep");
      const AggSite& site =
          ctx.prog->sites[static_cast<std::size_t>(I->imm)];
      const graph::GraphView& g = *ctx.graph;
      std::span<const graph::VertexId> targets;
      std::span<const double> weights;
      if (static_cast<GraphDir>(I->a) == GraphDir::kIn) {
        targets = g.in_neighbors(ctx.vertex);
        weights = g.in_weights(ctx.vertex);
      } else {
        targets = g.out_neighbors(ctx.vertex);
        weights = g.out_weights(ctx.vertex);
      }
      const std::uint8_t wire =
          (*ctx.site_wire)[static_cast<std::size_t>(I->imm)];
      if (send_operand_src(I->b) != SendSrc::kChunk) {
        // Direct operand: loop-invariant payload, one identity test for
        // the whole span (see kSendDelta).
        if (!targets.empty()) {
          ctx.cur_edge_weight =
              weights.empty() ? 1.0 : weights[targets.size() - 1];
          const Value payload = send_operand(I->b, site.elem_type, ctx);
          if (!is_identity(site.op, payload)) {
            DvMessage msg;
            msg.site = static_cast<std::uint8_t>(I->imm);
            msg.wire = wire;
            msg.payload = payload;
            ctx.sink->send_span(targets, msg);
            DV_OBS_COUNT(shard, kFullMessages, targets.size());
          } else {
            DV_OBS_COUNT(shard, kSendsSuppressed, targets.size());
          }
        }
      } else {
        std::uint64_t n_suppressed = 0, n_full = 0;
        for (std::size_t t = 0; t < targets.size(); ++t) {
          ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[t];
          const Value payload = send_operand(I->b, site.elem_type, ctx);
          if (is_identity(site.op, payload)) {
            ++n_suppressed;
            continue;
          }
          DvMessage msg;
          msg.site = static_cast<std::uint8_t>(I->imm);
          msg.wire = wire;
          msg.payload = payload;
          ctx.sink->send(targets[t], msg);
          ++n_full;
        }
        if (shard) {
          shard->add(obs::Counter::kSendsSuppressed, n_suppressed);
          shard->add(obs::Counter::kFullMessages, n_full);
        }
      }
    }
  } NEXT();

  // Peephole fusions: same register writes, same order as the unfused
  // sequences (bytecode.h), so values are bit-identical either way.
  CASE(kDivGraphSizeF) {
    DV_OBS_COUNT(shard, kVmFusedOps, 1);
    regs[I->c].i = static_cast<std::int64_t>(ctx.graph->num_vertices());
    regs[I->imm].f = static_cast<double>(regs[I->c].i);
    regs[I->a].f = regs[I->b].f / regs[I->imm].f;
  } NEXT();
  CASE(kDivDegOutF) {
    DV_OBS_COUNT(shard, kVmFusedOps, 1);
    regs[I->c].i = static_cast<std::int64_t>(ctx.graph->out_degree(
        ctx.vertex));
    regs[I->imm].f = static_cast<double>(regs[I->c].i);
    regs[I->a].f = regs[I->b].f / regs[I->imm].f;
  } NEXT();
  CASE(kCopyFieldScratchF) {
    DV_OBS_COUNT(shard, kVmFusedOps, 1);
    regs[I->a].f = ctx.fields[I->b].f;
    Value& v = ctx.scratch[I->c];
    v.type = Type::kFloat;
    v.f = regs[I->a].f;
  } NEXT();
  CASE(kMulAddF) {
    DV_OBS_COUNT(shard, kVmFusedOps, 1);
    const std::size_t t = static_cast<std::size_t>(I->imm & 0xff);
    const std::size_t e = static_cast<std::size_t>((I->imm >> 8) & 0xff);
    regs[t].f = regs[I->b].f * regs[I->c].f;
    regs[I->a].f = regs[e].f + regs[t].f;
  } NEXT();
  CASE(kObsCount) {
    // Else edge of a §6.3 change-check guard: the broadcast for site
    // I->imm was held back this superstep. Graph lookup only when metered.
    if (shard) {
      const auto dir = static_cast<GraphDir>(I->a);
      shard->add(obs::Counter::kSendsSuppressed,
                 dir == GraphDir::kIn
                     ? ctx.graph->in_neighbors(ctx.vertex).size()
                     : ctx.graph->out_neighbors(ctx.vertex).size());
    }
  } NEXT();

  CASE(kSendDeltaAtomic) {
    // kSendDelta for a site routed through the lock-free fold path: the
    // Δ folds into the receiver's pending slot (fetch-add / CAS, see
    // atomic_fold.h) and marks this lane's frontier bitmap — no message
    // is constructed. Same synthesize_delta, same no-op suppression.
    DV_OBS_COUNT(shard, kVmFusedOps, 1);
    if (ctx.suppress_sites & (1ULL << I->imm)) {
      if (shard) {
        const auto dir = static_cast<GraphDir>(I->a);
        shard->add(obs::Counter::kLastStepSendsSuppressed,
                   dir == GraphDir::kIn
                       ? ctx.graph->in_neighbors(ctx.vertex).size()
                       : ctx.graph->out_neighbors(ctx.vertex).size());
      }
    } else {
      DV_CHECK_MSG(ctx.has_vertex && ctx.atomic && ctx.atomic_lane,
                   "atomic send loop outside superstep");
      const AggSite& site =
          ctx.prog->sites[static_cast<std::size_t>(I->imm)];
      const int acol = ctx.atomic->route[static_cast<std::size_t>(I->imm)];
      const graph::GraphView& g = *ctx.graph;
      std::span<const graph::VertexId> targets;
      std::span<const double> weights;
      if (static_cast<GraphDir>(I->a) == GraphDir::kIn) {
        targets = g.in_neighbors(ctx.vertex);
        weights = g.in_weights(ctx.vertex);
      } else {
        targets = g.out_neighbors(ctx.vertex);
        weights = g.out_weights(ctx.vertex);
      }
      AtomicFoldTable& table = *ctx.atomic;
      AtomicFoldLane& lane = *ctx.atomic_lane;
      const int rcol = ctx.retract
                           ? ctx.retract->route[static_cast<std::size_t>(
                                 I->imm)]
                           : -1;
      const auto fold_one = [&](graph::VertexId dst, const DeltaPayload& d) {
        if (table.fold(dst, acol, d.value)) {
          lane.mark(dst, acol);
          ++lane.folds;
        } else {
          // NaN payload falls back to one buffered message (atomic_fold.h).
          DvMessage msg;
          msg.site = static_cast<std::uint8_t>(I->imm);
          msg.wire = (*ctx.site_wire)[static_cast<std::size_t>(I->imm)];
          msg.payload = d.value;
          ctx.sink->send(dst, msg);
        }
      };
      if (send_operand_src(I->b) != SendSrc::kChunk &&
          send_operand_src(I->c) != SendSrc::kChunk) {
        // Span-invariant operands: one Δ for the whole neighbor span
        // (see kSendDelta).
        if (!targets.empty()) {
          ctx.cur_edge_weight =
              weights.empty() ? 1.0 : weights[targets.size() - 1];
          const Value new_v = send_operand(I->b, site.elem_type, ctx);
          const Value old_v = send_operand(I->c, site.elem_type, ctx);
          const DeltaPayload d =
              synthesize_delta(site.op, site.elem_type, old_v, new_v);
          if (rcol >= 0) {
            const std::uint64_t bits =
                atomic_fold_bits(site.elem_type, new_v);
            for (const graph::VertexId dst : targets)
              ctx.retract_lane->record(
                  dst, static_cast<std::uint32_t>(ctx.vertex), rcol, bits);
          }
          if (!d.noop) {
            for (const graph::VertexId dst : targets) fold_one(dst, d);
          } else {
            DV_OBS_COUNT(shard, kSendsSuppressed, targets.size());
          }
        }
      } else {
        std::uint64_t n_suppressed = 0;
        for (std::size_t t = 0; t < targets.size(); ++t) {
          ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[t];
          const Value new_v = send_operand(I->b, site.elem_type, ctx);
          const Value old_v = send_operand(I->c, site.elem_type, ctx);
          const DeltaPayload d =
              synthesize_delta(site.op, site.elem_type, old_v, new_v);
          if (rcol >= 0)
            ctx.retract_lane->record(
                targets[t], static_cast<std::uint32_t>(ctx.vertex), rcol,
                atomic_fold_bits(site.elem_type, new_v));
          if (d.noop) {
            ++n_suppressed;
            continue;
          }
          fold_one(targets[t], d);
        }
        DV_OBS_COUNT(shard, kSendsSuppressed, n_suppressed);
      }
    }
  } NEXT();

#if !DV_VM_CG
    }
  }
#endif
#undef CASE
#undef NEXT
  DV_FAIL("fell off the end of a bytecode chunk");
}

}  // namespace deltav::dv
