// Δ-message synthesis (§6.5) and application (§6.4).
//
// For each aggregation operator ⊞ the compiler needs a ∆_m(m′) such that
//     x ⊞ m′ ≃ (x ⊞ m) ⊞ ∆_m(m′)                                  (Eq. 11)
// and a receiver-side application rule that folds the ∆ into the memoized
// accumulator. This header centralizes both directions so a single
// property test can verify Eq. 11 over random update streams for every
// operator (tests/dv_delta_test.cpp).
//
// Synthesis per operator (DESIGN.md documents the divergences from the
// paper's underspecified §6.4.1):
//   +       ∆ = m′ − m
//   *       m,m′ ≠ 0 : ∆ = m′/m            (plain)
//           m ≠ 0, m′ = 0 : ∆ = 1/m, null++ (removes m's factor from nnAcc;
//                                            the paper's "tag" refined so
//                                            nnAcc stays exact)
//           m = 0, m′ ≠ 0 : ∆ = m′, denull++ (the paper's tag(m′))
//   min/max ∆ = m′ (idempotent re-fold; exact under monotone updates)
//   &&/||   only absorbing-state transitions carry information: null++ on
//           entering the absorbing value, denull++ on leaving it.
#pragma once

#include "dv/runtime/value.h"

namespace deltav::dv {

/// A synthesized Δ-message (before the wire envelope is added).
struct DeltaPayload {
  Value value;          // the ∆ itself (identity when only counters matter)
  std::int32_t nulls = 0;    // sender entered the absorbing state
  std::int32_t denulls = 0;  // sender left the absorbing state
  /// True when the message is a no-op (identity value, zero counters) and
  /// can be suppressed entirely — the degenerate "meaningless" message.
  bool noop = false;
};

/// ∆_old(next) for operator `op` at element type `t`.
inline DeltaPayload synthesize_delta(AggOp op, Type t, const Value& old_v,
                                     const Value& new_v) {
  DeltaPayload d;
  switch (op) {
    case AggOp::kSum:
      d.value = t == Type::kInt
                    ? Value::of_int(new_v.as_i() - old_v.as_i())
                    : Value::of_float(new_v.as_f() - old_v.as_f());
      d.noop = is_identity(op, d.value);
      return d;
    case AggOp::kProd: {
      const bool old_null = is_absorbing(op, old_v);
      const bool new_null = is_absorbing(op, new_v);
      if (!old_null && !new_null) {
        // Integer products do not divide exactly in general; the compiler
        // only admits float product aggregations (enforced in compiler.cpp).
        d.value = Value::of_float(new_v.as_f() / old_v.as_f());
        d.noop = is_identity(op, d.value);
      } else if (!old_null && new_null) {
        d.value = Value::of_float(1.0 / old_v.as_f());
        d.nulls = 1;
      } else if (old_null && !new_null) {
        d.value = new_v.coerce(t);
        d.denulls = 1;
      } else {
        d.value = agg_identity(op, t);
        d.noop = true;
      }
      return d;
    }
    case AggOp::kMin:
    case AggOp::kMax:
      d.value = new_v.coerce(t);
      d.noop = is_identity(op, d.value);
      return d;
    case AggOp::kAnd:
    case AggOp::kOr: {
      const bool old_null = is_absorbing(op, old_v);
      const bool new_null = is_absorbing(op, new_v);
      d.value = agg_identity(op, t);
      if (!old_null && new_null) {
        d.nulls = 1;
      } else if (old_null && !new_null) {
        d.denulls = 1;
      } else {
        d.noop = true;
      }
      return d;
    }
  }
  DV_FAIL("unknown aggregation operator");
}

/// The "first send" (initial push after init, §6.1): the previous
/// contribution is conceptually absent, i.e. the identity.
inline DeltaPayload synthesize_first(AggOp op, Type t, const Value& v) {
  DeltaPayload d;
  switch (op) {
    case AggOp::kProd:
    case AggOp::kAnd:
    case AggOp::kOr:
      if (is_absorbing(op, v)) {
        d.value = agg_identity(op, t);
        d.nulls = 1;
        return d;
      }
      d.value = v.coerce(op == AggOp::kProd ? t : Type::kBool);
      d.noop = is_identity(op, d.value);
      return d;
    default:
      d.value = v.coerce(t);
      d.noop = is_identity(op, d.value);
      return d;
  }
}

/// Receiver state for one incrementalized aggregation site.
struct AccumRef {
  Value* acc;          // aggAccum
  Value* nn = nullptr; // nnAcc (multiplicative only)
  Value* nulls = nullptr;  // aggNulls as Value(int)
};

/// Folds one Δ-message into the memoized accumulator (Eq. 8 / Eq. 9).
inline void apply_delta(AggOp op, Type t, const AccumRef& ref,
                        const Value& payload, std::int32_t nulls,
                        std::int32_t denulls) {
  if (is_multiplicative(op)) {
    DV_DCHECK(ref.nn && ref.nulls);
    *ref.nn = agg_apply(op, t, *ref.nn, payload);
    ref.nulls->i += nulls - denulls;
    DV_DCHECK(ref.nulls->i >= 0);
    *ref.acc = ref.nulls->i > 0 ? agg_absorbing(op, t) : *ref.nn;
  } else {
    *ref.acc = agg_apply(op, t, *ref.acc, payload);
  }
}

}  // namespace deltav::dv
