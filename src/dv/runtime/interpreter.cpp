#include "dv/runtime/interpreter.h"

#include "dv/obs/obs.h"
#include "dv/runtime/delta.h"

namespace deltav::dv {

namespace {

Value unit() { return Value::of_int(0); }

Value eval_binary(const Expr& e, EvalContext& ctx) {
  // Short-circuit boolean operators first.
  if (e.bin_op == BinOp::kAnd) {
    if (!eval(*e.kids[0], ctx).as_b()) return Value::of_bool(false);
    return Value::of_bool(eval(*e.kids[1], ctx).as_b());
  }
  if (e.bin_op == BinOp::kOr) {
    if (eval(*e.kids[0], ctx).as_b()) return Value::of_bool(true);
    return Value::of_bool(eval(*e.kids[1], ctx).as_b());
  }
  const Value a = eval(*e.kids[0], ctx);
  const Value b = eval(*e.kids[1], ctx);
  switch (e.bin_op) {
    case BinOp::kAdd:
      return e.type == Type::kInt ? Value::of_int(a.as_i() + b.as_i())
                                  : Value::of_float(a.as_f() + b.as_f());
    case BinOp::kSub:
      return e.type == Type::kInt ? Value::of_int(a.as_i() - b.as_i())
                                  : Value::of_float(a.as_f() - b.as_f());
    case BinOp::kMul:
      return e.type == Type::kInt ? Value::of_int(a.as_i() * b.as_i())
                                  : Value::of_float(a.as_f() * b.as_f());
    case BinOp::kDiv:
      // '/' is always float (IEEE semantics; x/0 → ±inf, 0/0 → nan).
      return Value::of_float(a.as_f() / b.as_f());
    case BinOp::kLt: return Value::of_bool(a.as_f() < b.as_f());
    case BinOp::kGt: return Value::of_bool(a.as_f() > b.as_f());
    case BinOp::kGe: return Value::of_bool(a.as_f() >= b.as_f());
    case BinOp::kLe: return Value::of_bool(a.as_f() <= b.as_f());
    case BinOp::kEq: return Value::of_bool(a.equals(b));
    case BinOp::kNe: return Value::of_bool(!a.equals(b));
    default: DV_FAIL("unhandled binary operator");
  }
}

Value eval_fold(const Expr& e, EvalContext& ctx) {
  DV_CHECK_MSG(ctx.has_vertex, "message fold outside vertex context");
  const auto site_id = static_cast<std::size_t>(e.site);
  const AggSite& site = ctx.prog->sites[site_id];
  if (!e.flag) {
    // Eq. 3: non-incremental — fold this superstep's full-value messages
    // from the identity.
    DV_OBS_COUNT(ctx.obs, kMemoRecomputes, 1);
    Value acc = agg_identity(site.op, site.elem_type);
    for (const DvMessage& m : ctx.msgs) {
      if (m.site != e.site) continue;
      acc = agg_apply(site.op, site.elem_type, acc, m.payload);
    }
    return acc;
  }
  // Eq. 8/9: incremental — fold Δ-messages into the memoized accumulator.
  DV_OBS_COUNT(ctx.obs, kMemoHits, 1);
  AccumRef ref;
  ref.acc = &ctx.fields[static_cast<std::size_t>(site.acc_slot)];
  if (site.multiplicative()) {
    // §6.4.1 absorbing-element slow path: the fold tracks non-null counts
    // and absorbed operands alongside the accumulator.
    DV_OBS_COUNT(ctx.obs, kAbsorbingSlowPath, 1);
    ref.nn = &ctx.fields[static_cast<std::size_t>(site.nn_slot)];
    ref.nulls = &ctx.fields[static_cast<std::size_t>(site.nulls_slot)];
  }
  for (const DvMessage& m : ctx.msgs) {
    if (m.site != e.site) continue;
    apply_delta(site.op, site.elem_type, ref, m.payload, m.nulls, m.denulls);
  }
  return *ref.acc;
}

Value eval_send_loop(const Expr& e, EvalContext& ctx) {
  DV_CHECK_MSG(ctx.has_vertex && ctx.sink, "send loop outside superstep");
  const AggSite& site = ctx.prog->sites[static_cast<std::size_t>(e.site)];
  const graph::GraphView& g = *ctx.graph;
  const graph::VertexId v = ctx.vertex;

  std::span<const graph::VertexId> targets;
  std::span<const double> weights;
  switch (e.dir) {
    case GraphDir::kOut:
    case GraphDir::kNeighbors:
      targets = g.out_neighbors(v);
      weights = g.out_weights(v);
      break;
    case GraphDir::kIn:
      targets = g.in_neighbors(v);
      weights = g.in_weights(v);
      break;
  }

  if (ctx.suppress_sites & (1ULL << e.site)) {
    // Last-execution analysis: this site's consumers never run again, so
    // the whole loop is elided (distinct from the §6.3 change check).
    DV_OBS_COUNT(ctx.obs, kLastStepSendsSuppressed, targets.size());
    return unit();
  }

  // Retraction-memo hook: routed sites record the sender's new total for
  // every target — including no-op Δs, whose identity payload is exactly
  // the "this sender no longer contributes" removal record.
  const int rcol =
      ctx.retract ? ctx.retract->route[static_cast<std::size_t>(e.site)] : -1;

  const int acol =
      ctx.atomic ? ctx.atomic->route[static_cast<std::size_t>(e.site)] : -1;
  if (acol >= 0 && e.flag) {
    // Lock-free fold path: this site's ⊞ is commutative-associative, so
    // the Δ folds straight into the receiver's pending slot — no message
    // is constructed. Semantically identical to the buffered loop below:
    // the same synthesize_delta, the same no-op suppression, and the
    // post-step drain applies exactly what a buffered delivery would.
    std::uint64_t n_suppressed = 0, n_folded = 0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[i];
      const Value new_v = eval(*e.kids[0], ctx).coerce(site.elem_type);
      const Value old_v = eval(*e.kids[1], ctx).coerce(site.elem_type);
      const DeltaPayload d =
          synthesize_delta(site.op, site.elem_type, old_v, new_v);
      if (rcol >= 0)
        ctx.retract_lane->record(targets[i],
                                 static_cast<std::uint32_t>(v), rcol,
                                 atomic_fold_bits(site.elem_type, new_v));
      if (d.noop) {
        ++n_suppressed;
        continue;
      }
      if (ctx.atomic->fold(targets[i], acol, d.value)) {
        ctx.atomic_lane->mark(targets[i], acol);
        ++n_folded;
      } else {
        // NaN payload: CAS bits cannot express the fold's ordering —
        // this one contribution takes the buffered path.
        DvMessage msg;
        msg.site = static_cast<std::uint8_t>(e.site);
        msg.wire = (*ctx.site_wire)[static_cast<std::size_t>(e.site)];
        msg.payload = d.value;
        ctx.sink->send(targets[i], msg);
      }
    }
    ctx.atomic_lane->folds += n_folded;
    DV_OBS_COUNT(ctx.obs, kSendsSuppressed, n_suppressed);
    return unit();
  }

  std::uint64_t n_suppressed = 0, n_delta = 0, n_full = 0;
  const std::uint8_t wire = (*ctx.site_wire)[static_cast<std::size_t>(
      e.site)];
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ctx.cur_edge_weight = weights.empty() ? 1.0 : weights[i];
    DvMessage msg;
    msg.site = static_cast<std::uint8_t>(e.site);
    msg.wire = wire;
    if (e.flag) {
      // §6.5 Δ-message: ∆_old(new), synthesized per operator (Eq. 11).
      const Value new_v = eval(*e.kids[0], ctx).coerce(site.elem_type);
      const Value old_v = eval(*e.kids[1], ctx).coerce(site.elem_type);
      const DeltaPayload d =
          synthesize_delta(site.op, site.elem_type, old_v, new_v);
      if (rcol >= 0)
        ctx.retract_lane->record(targets[i],
                                 static_cast<std::uint32_t>(v), rcol,
                                 atomic_fold_bits(site.elem_type, new_v));
      if (d.noop) {  // a meaningless message by construction (§6.3)
        ++n_suppressed;
        continue;
      }
      msg.payload = d.value;
      msg.nulls = d.nulls;
      msg.denulls = d.denulls;
      ++n_delta;
    } else {
      // Full-value send (ΔV*). Identity payloads are no-ops for the fold
      // and are suppressed — without this, e.g. SSSP's initial push would
      // broadcast |E| useless infinities (DESIGN.md).
      const Value payload = eval(*e.kids[0], ctx).coerce(site.elem_type);
      if (is_identity(site.op, payload)) {
        ++n_suppressed;
        continue;
      }
      msg.payload = payload;
      ++n_full;
    }
    ctx.sink->send(targets[i], msg);
  }
  if (ctx.obs) {
    ctx.obs->add(obs::Counter::kSendsSuppressed, n_suppressed);
    ctx.obs->add(obs::Counter::kDeltaMessages, n_delta);
    ctx.obs->add(obs::Counter::kFullMessages, n_full);
  }
  return unit();
}

}  // namespace

Value eval(const Expr& e, EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kIntLit: return Value::of_int(e.int_val);
    case ExprKind::kFloatLit: return Value::of_float(e.float_val);
    case ExprKind::kBoolLit: return Value::of_bool(e.bool_val);
    case ExprKind::kInfty:
      return Value::of_float(std::numeric_limits<double>::infinity());
    case ExprKind::kGraphSize:
      return Value::of_int(static_cast<std::int64_t>(
          ctx.graph->num_vertices()));
    case ExprKind::kVertexIdRef:
      DV_CHECK_MSG(ctx.has_vertex, "vertexId outside vertex context");
      return Value::of_int(ctx.vertex);
    case ExprKind::kStableRef: return Value::of_bool(ctx.stable);
    case ExprKind::kEdgeWeight: return Value::of_float(ctx.cur_edge_weight);
    case ExprKind::kParamRef:
      return ctx.params[static_cast<std::size_t>(e.slot)];
    case ExprKind::kVarRef:
      if (e.var_kind == VarKind::kIter) return Value::of_int(ctx.iter);
      DV_CHECK_MSG(e.var_kind == VarKind::kLet, "unresolved variable");
      return ctx.scratch[static_cast<std::size_t>(e.slot)];
    case ExprKind::kFieldRef:
      DV_CHECK_MSG(ctx.has_vertex, "field read outside vertex context");
      return ctx.fields[static_cast<std::size_t>(e.slot)];
    case ExprKind::kScratchRef:
      return ctx.scratch[static_cast<std::size_t>(e.slot)];
    case ExprKind::kBinary: return eval_binary(e, ctx);
    case ExprKind::kUnary: {
      const Value v = eval(*e.kids[0], ctx);
      if (e.un_op == UnOp::kNot) return Value::of_bool(!v.as_b());
      return e.type == Type::kInt ? Value::of_int(-v.as_i())
                                  : Value::of_float(-v.as_f());
    }
    case ExprKind::kPairOp: {
      const Value a = eval(*e.kids[0], ctx);
      const Value b = eval(*e.kids[1], ctx);
      const bool take_a = e.pair_op == PairOp::kMin ? a.as_f() <= b.as_f()
                                                    : a.as_f() >= b.as_f();
      return (take_a ? a : b).coerce(e.type);
    }
    case ExprKind::kIf: {
      if (eval(*e.kids[0], ctx).as_b()) {
        const Value v = eval(*e.kids[1], ctx);
        return e.type == Type::kUnit ? unit() : v.coerce(e.type);
      }
      if (e.kids.size() == 3) {
        const Value v = eval(*e.kids[2], ctx);
        return e.type == Type::kUnit ? unit() : v.coerce(e.type);
      }
      if (e.obs_site >= 0 && ctx.obs && ctx.has_vertex) {
        // §6.3 change check held the whole broadcast back: count the
        // fan-out that was never sent. Metered runs only.
        const auto targets = e.dir == GraphDir::kIn
                                 ? ctx.graph->in_neighbors(ctx.vertex)
                                 : ctx.graph->out_neighbors(ctx.vertex);
        ctx.obs->add(obs::Counter::kSendsSuppressed, targets.size());
      }
      return unit();
    }
    case ExprKind::kLet: {
      const Value v = eval(*e.kids[0], ctx).coerce(e.decl_type);
      ctx.scratch[static_cast<std::size_t>(e.slot)] = v;
      return eval(*e.kids[1], ctx);
    }
    case ExprKind::kSeq: {
      Value last = unit();
      for (const auto& k : e.kids) last = eval(*k, ctx);
      return last;
    }
    case ExprKind::kAssign: {
      if (e.assign_target == AssignTarget::kField) {
        DV_CHECK_MSG(ctx.has_vertex, "field write outside vertex context");
        const Field& f = ctx.prog->fields[static_cast<std::size_t>(e.slot)];
        ctx.fields[static_cast<std::size_t>(e.slot)] =
            eval(*e.kids[0], ctx).coerce(f.type);
        // Quiescence tracks user-visible writes only: compiler-introduced
        // fields (sent bindings, last-sent copies) may be rewritten
        // unconditionally without implying the computation is still live.
        if (f.origin == Field::Origin::kUser) ctx.any_field_assign = true;
      } else {
        const ScratchVar& sv =
            ctx.prog->scratch[static_cast<std::size_t>(e.slot)];
        ctx.scratch[static_cast<std::size_t>(e.slot)] =
            eval(*e.kids[0], ctx).coerce(sv.type);
      }
      return unit();
    }
    case ExprKind::kLocalDecl: {
      DV_CHECK_MSG(ctx.has_vertex, "local declaration outside vertex");
      ctx.fields[static_cast<std::size_t>(e.slot)] =
          eval(*e.kids[0], ctx).coerce(e.decl_type);
      return unit();
    }
    case ExprKind::kDegree: {
      DV_CHECK_MSG(ctx.has_vertex, "degree outside vertex context");
      std::size_t d = 0;
      switch (e.dir) {
        case GraphDir::kIn: d = ctx.graph->in_degree(ctx.vertex); break;
        case GraphDir::kOut:
        case GraphDir::kNeighbors:
          d = ctx.graph->out_degree(ctx.vertex);
          break;
      }
      return Value::of_int(static_cast<std::int64_t>(d));
    }
    case ExprKind::kFoldMessages: return eval_fold(e, ctx);
    case ExprKind::kSendLoop: return eval_send_loop(e, ctx);
    case ExprKind::kSendTo: {
      // Request phase of a lowered remote read: this vertex asks the
      // (wrapped) target for a field by sending its own id.
      DV_CHECK_MSG(ctx.has_vertex && ctx.sink,
                   "request send outside superstep");
      const std::int64_t t = eval(*e.kids[0], ctx).as_i();
      const auto n =
          static_cast<std::int64_t>(ctx.graph->num_vertices());
      DvMessage msg;
      msg.site = static_cast<std::uint8_t>(e.site);
      msg.wire = (*ctx.site_wire)[static_cast<std::size_t>(e.site)];
      msg.payload = Value::of_int(ctx.vertex);
      ctx.sink->send(static_cast<graph::VertexId>(((t % n) + n) % n), msg);
      DV_OBS_COUNT(ctx.obs, kRemoteRequests, 1);
      return unit();
    }
    case ExprKind::kReplyLoop: {
      // Reply phase: answer every request delivered this superstep with
      // this vertex's current field value on the reply channel.
      DV_CHECK_MSG(ctx.has_vertex && ctx.sink,
                   "reply loop outside superstep");
      const AggSite& rep =
          ctx.prog->sites[static_cast<std::size_t>(e.int_val)];
      DvMessage reply;
      reply.site = static_cast<std::uint8_t>(rep.id);
      reply.wire = (*ctx.site_wire)[static_cast<std::size_t>(rep.id)];
      reply.payload =
          ctx.fields[static_cast<std::size_t>(e.slot)].coerce(rep.elem_type);
      std::uint64_t n_replies = 0;
      for (const DvMessage& m : ctx.msgs) {
        if (m.site != e.site) continue;
        ctx.sink->send(static_cast<graph::VertexId>(m.payload.as_i()),
                       reply);
        ++n_replies;
      }
      DV_OBS_COUNT(ctx.obs, kRemoteReplies, n_replies);
      return unit();
    }
    case ExprKind::kRemoteRead: {
      // Reference interpretation only (lower_remote = false): read the
      // target vertex's field from the iteration-start snapshot. The
      // target itself is evaluated against this vertex's snapshot row —
      // the lowered pipeline evaluates it in the request superstep, before
      // any body assignment has run.
      DV_CHECK_MSG(ctx.has_vertex, "remote read outside vertex context");
      DV_CHECK_MSG(ctx.prev_state != nullptr && ctx.prev_stride > 0,
                   "remote read reached execution without lowering and "
                   "without a reference snapshot");
      EvalContext tctx = ctx;
      tctx.fields = std::span<Value>(
          ctx.prev_state +
              static_cast<std::size_t>(ctx.vertex) * ctx.prev_stride,
          ctx.prev_stride);
      const std::int64_t t = eval(*e.kids[0], tctx).as_i();
      const auto n =
          static_cast<std::int64_t>(ctx.graph->num_vertices());
      const auto owner = static_cast<std::size_t>(((t % n) + n) % n);
      const Field& f = ctx.prog->fields[static_cast<std::size_t>(e.slot)];
      return ctx
          .prev_state[owner * ctx.prev_stride +
                      static_cast<std::size_t>(e.slot)]
          .coerce(f.type);
    }
    case ExprKind::kHalt:
      ctx.halt_requested = true;
      return unit();
    case ExprKind::kAgg:
    case ExprKind::kNeighborField:
      DV_FAIL("unconverted " << expr_kind_name(e.kind)
                             << " reached the interpreter (compiler bug)");
  }
  DV_FAIL("unhandled expression kind");
}

}  // namespace deltav::dv
