// Tree-walking evaluator for compiled ΔV expression trees.
//
// One evaluator serves three contexts: per-vertex body execution during a
// superstep (fields, messages, sends available), init-block execution, and
// global `until` evaluation (no vertex bound). The compiled program is a
// state machine over supersteps; this file is the per-superstep step
// function, and runtime/runner.h drives it over the Pregel engine.
#pragma once

#include <span>

#include "dv/ast.h"
#include "dv/obs/metrics.h"
#include "dv/runtime/atomic_fold.h"
#include "dv/runtime/message.h"
#include "dv/streaming/retract/retract_memo.h"
#include "dv/runtime/value.h"
#include "graph/graph_view.h"

namespace deltav::dv {

/// Where send loops deliver messages. The runner adapts this onto the
/// Pregel engine context; tests use recording sinks.
class SendSink {
 public:
  virtual ~SendSink() = default;
  virtual void send(graph::VertexId dst, const DvMessage& msg) = 0;
  /// Sends one identical message to every destination in `dsts`, in order.
  /// Equivalent to dsts.size() send() calls (the default does exactly
  /// that); sinks on the engine hot path override it to amortize
  /// per-message bookkeeping for span-invariant broadcasts.
  virtual void send_span(std::span<const graph::VertexId> dsts,
                         const DvMessage& msg) {
    for (const graph::VertexId dst : dsts) send(dst, msg);
  }
};

struct EvalContext {
  const Program* prog = nullptr;
  // Points at a view owned by the runner lane; views either an immutable
  // CSR (cold runs) or the streaming overlay (warm epochs).
  const graph::GraphView* graph = nullptr;

  // Per-vertex views (empty/unused for global until evaluation).
  std::span<Value> fields;
  std::span<Value> scratch;
  std::span<const DvMessage> msgs;
  graph::VertexId vertex = 0;
  bool has_vertex = false;

  // Program-wide bindings.
  std::span<const Value> params;
  std::int64_t iter = 1;   // 1-based iteration count of the current iter
  bool stable = false;     // quiescence, for `stable` in until clauses

  // Send machinery.
  SendSink* sink = nullptr;
  const std::vector<std::uint8_t>* site_wire = nullptr;  // bytes per site
  std::uint64_t suppress_sites = 0;  // bitmask: skip sends for these sites

  // Lock-free fold path (atomic_fold.h). Non-null only when the runner
  // routed at least one site atomic: send loops for routed sites fold
  // Δ-payloads straight into the shared pending slots and mark this lane's
  // frontier bitmap instead of constructing messages.
  AtomicFoldTable* atomic = nullptr;
  AtomicFoldLane* atomic_lane = nullptr;

  // Retraction memos (streaming/retract/retract_memo.h). Non-null only
  // when the runner routed at least one min/max site through the memo:
  // send loops for routed sites then record the sender's new total (or
  // the identity, for no-longer-contributing no-ops) into this lane's
  // record buffer, on top of whatever fold path delivers the payload.
  // Null everywhere else — one pointer test, zero cost when off.
  RetractMemoTable* retract = nullptr;
  RetractLane* retract_lane = nullptr;

  // Reference interpretation of remote reads (CompileOptions::lower_remote
  // = false; tree tier only). Points at an iteration-start snapshot of the
  // full field matrix, row-major [vertex][field slot] with `prev_stride`
  // slots per vertex. kRemoteRead evaluates its target against this
  // vertex's snapshot row (mirroring the lowered pipeline's request phase,
  // which runs before any body assignment) and reads the target row
  // directly. Null in lowered mode — kRemoteRead then never reaches eval.
  Value* prev_state = nullptr;
  std::size_t prev_stride = 0;

  // Observability. Null when no collector is installed: the evaluator then
  // pays one predictable branch per fold/send-loop, nothing per message.
  obs::MetricsShard* obs = nullptr;

  // Out-flags.
  bool halt_requested = false;
  bool any_field_assign = false;

  // Transient: weight of the edge being broadcast over (u.edge).
  double cur_edge_weight = 1.0;
};

/// Evaluates `e`, returning its value (unit expressions return a zero int).
/// Throws CheckError on internal invariant violations (e.g. unconverted
/// aggregation nodes — those indicate a compiler bug, not a user error).
Value eval(const Expr& e, EvalContext& ctx);

}  // namespace deltav::dv
