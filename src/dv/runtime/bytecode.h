// Register-based bytecode for the ΔV runtime's compiled execution tier.
//
// The tree interpreter (runtime/interpreter.{h,cpp}) is the reference
// semantics; this lowering produces a flat, type-specialized instruction
// stream that the VM (runtime/vm.{h,cpp}) executes without any runtime tag
// dispatch or Value::coerce calls: every conversion point the interpreter
// reaches dynamically (operand widening, declared-type coercion at lets and
// assignments, payload coercion at sends) is resolved at lowering time from
// the typechecker's annotations and emitted as an explicit conversion
// instruction — or as nothing, when the static types already agree.
//
// The two dominant loops of a compiled program are fused superinstructions
// rather than bytecode loops:
//
//   kSendDelta / kSendFull  — the Δ-send loop over a CSR neighbor span:
//       evaluate new/old payloads, synthesize_delta (Eq. 11), suppress
//       no-ops, send. Payload operands are usually bare field/scratch slots
//       after §6.2 state binding, so the common case runs with zero
//       bytecode dispatch per edge; edge-dependent payloads (u.edge) fall
//       back to a nested sub-chunk executed per target.
//   kFoldFull / kFoldDelta  — the receiver-side message fold (Eq. 3 and
//       Eq. 8/9, including the multiplicative nnAcc/aggNulls/aggAccum
//       triple), one instruction per fold site.
//
// Both superinstructions call the same delta.h/value.h helpers as the tree
// interpreter, which is what makes the tiers bit-identical (the
// differential fuzzer enforces this; see testing/differential.cpp).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dv/ast.h"

namespace deltav::dv {

struct CompiledProgram;

/// An unboxed VM register / constant-pool slot. Which member is live is
/// statically known per instruction — the VM never inspects a tag.
union VmSlot {
  std::int64_t i;
  double f;
  bool b;
};
static_assert(sizeof(VmSlot) == 8);

enum class Op : std::uint8_t {
  // ---- constants & moves ----
  kConstI,   // regs[a] = consts[imm].i
  kConstF,   // regs[a] = consts[imm].f
  kConstB,   // regs[a].b = imm != 0
  kMove,     // regs[a] = regs[b] (raw 8-byte copy)
  // ---- conversions (the static residue of Value::coerce/as_*) ----
  kI2F,      // regs[a].f = double(regs[b].i)
  kF2I,      // regs[a].i = int64(regs[b].f)
  kB2F,      // regs[a].f = regs[b].b ? 1.0 : 0.0
  kB2I,      // regs[a].i = regs[b].b ? 1 : 0
  // ---- context loads ----
  kLoadIter,      // regs[a].i = ctx.iter
  kLoadStable,    // regs[a].b = ctx.stable
  kLoadVertexId,  // regs[a].i = ctx.vertex
  kLoadGraphSize, // regs[a].i = ctx.graph->num_vertices()
  kLoadEdgeWeight,// regs[a].f = ctx.cur_edge_weight
  kLoadParamI, kLoadParamF, kLoadParamB,  // regs[a] = params[b]
  kDegreeIn,      // regs[a].i = in_degree(ctx.vertex)
  kDegreeOut,     // regs[a].i = out_degree(ctx.vertex)
  // ---- state access (slot types are static; no tag dispatch) ----
  kLoadFieldI, kLoadFieldF, kLoadFieldB,     // regs[a] = fields[b]
  kStoreFieldI, kStoreFieldF, kStoreFieldB,  // fields[b] = regs[a]; c = user
  kLoadScratchI, kLoadScratchF, kLoadScratchB,
  kStoreScratchI, kStoreScratchF, kStoreScratchB,
  // ---- arithmetic / logic (type-specialized) ----
  kAddI, kAddF, kSubI, kSubF, kMulI, kMulF, kDivF,  // regs[a] = b ⊕ c
  kNegI, kNegF, kNotB,                              // regs[a] = ⊖ regs[b]
  kLtF, kLeF, kGtF, kGeF,        // regs[a].b = regs[b].f ⋈ regs[c].f
  kEqI, kEqF, kEqB, kNeI, kNeF, kNeB,
  kMinI, kMinF, kMaxI, kMaxF,    // pair ops; int compares via double, as
                                 // the interpreter's as_f() does
  // ---- control flow ----
  kJump,         // pc = imm
  kJumpIfFalse,  // if (!regs[a].b) pc = imm
  kJumpIfTrue,   // if (regs[a].b) pc = imm
  kHalt,         // ctx.halt_requested = true (not control flow)
  kReturnVal,    // return regs[a] as chunk.result-typed Value
  kReturnUnit,
  // ---- fused superinstructions ----
  kFoldFull,     // regs[a] = Eq. 3 fold of site imm's messages
  kFoldDelta,    // regs[a] = Eq. 8/9 Δ-fold into site imm's accumulators
  kSendDelta,    // Δ-send loop for site imm; b = new operand, c = old
  kSendFull,     // full-value send loop for site imm; b = payload operand
  // ---- peephole fusions (fuse_chunk in bytecode.cpp) ----
  // Each replays the exact register writes of the sequence it replaces, so
  // fusion is semantics-preserving without liveness analysis. Normalizing
  // divisions (x / N, x / deg) dominate PageRank/HITS bodies.
  kDivGraphSizeF,  // load.n c; i2f imm,c; div.f a,b,imm
  kDivDegOutF,     // deg.out c; i2f imm,c; div.f a,b,imm
  kCopyFieldScratchF,  // ldf.f a,b; sts.f a,c
  kMulAddF,  // mul.f t,b,c; add.f a,e,t — t/e packed as imm = e<<8 | t;
             // two roundings, exactly as the unfused pair
  // ---- observability ----
  kObsCount,  // metrics only: the §6.3 change-check guard of site imm's
              // send loop evaluated false — count the skipped fan-out
              // (a = push direction) into dv.sends_suppressed. Emitted on
              // the guard's else edge; pure no-op without a shard.
  // ---- lock-free fold path (atomic_fold.h) ----
  kSendDeltaAtomic,  // kSendDelta specialized per runner when site imm is
                     // routed through the atomic fold path: the Δ folds
                     // into the receiver's pending slot via fetch-add/CAS
                     // instead of constructing a message. Same operands as
                     // kSendDelta; rewritten by Vm::specialize_atomic.
};

/// Payload operand of a send superinstruction, packed into a uint16:
/// top two bits select the source, low 14 bits index it. The operand's
/// value is guaranteed by lowering to already have the site's element
/// type (mismatches fall back to kChunk, which converts on return).
enum class SendSrc : std::uint8_t {
  kField = 0,    // per-vertex field slot
  kScratch = 1,  // scratch slot
  kConst = 2,    // constant pool (pre-converted at lowering)
  kChunk = 3,    // nested sub-chunk, executed per target
};

constexpr std::uint16_t pack_send_operand(SendSrc src, std::uint16_t index) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(src) << 14 |
                                    index);
}
constexpr SendSrc send_operand_src(std::uint16_t packed) {
  return static_cast<SendSrc>(packed >> 14);
}
constexpr std::uint16_t send_operand_index(std::uint16_t packed) {
  return packed & 0x3fff;
}

/// Per-chunk register budget. The VM stacks at most two frames (a body
/// chunk plus one send sub-chunk), so this bounds register stack usage at
/// 2 × kVmMaxRegs × 8 bytes.
inline constexpr int kVmMaxRegs = 224;

struct Instr {
  Op op{};
  std::uint8_t a = 0;   // destination register (or source, for stores)
  std::uint16_t b = 0;  // source register / slot / packed send operand
  std::uint16_t c = 0;  // second source / store-is-user-field flag
  std::int32_t imm = 0; // jump target / constant index / site id
};
static_assert(sizeof(Instr) <= 12);

/// One compiled entry point: straight-line code with internal jumps,
/// terminated by kReturnVal/kReturnUnit on every path.
struct Chunk {
  std::vector<Instr> code;
  int num_regs = 0;
  Type result = Type::kUnit;  // static type of kReturnVal's register
};

/// A lowered program: every expression root the runner evaluates (init
/// block, statement bodies, until clauses, per-site send expressions) maps
/// to a chunk; send superinstructions may reference further sub-chunks.
struct VmProgram {
  std::vector<Chunk> chunks;
  std::vector<VmSlot> consts;
  /// Root expression → chunk id, keyed by node identity in the owning
  /// CompiledProgram's AST.
  std::unordered_map<const Expr*, int> roots;

  int chunk_of(const Expr& root) const {
    auto it = roots.find(&root);
    return it == roots.end() ? -1 : it->second;
  }
};

/// Lowers every runner-visible root of `cp`. Throws CheckError on
/// malformed input (untyped nodes, register overflow) — those indicate a
/// compiler bug, mirroring the tree interpreter's DV_FAIL policy.
VmProgram lower_program(const CompiledProgram& cp);

/// Lowers one extra expression as a root into `vp` (tests and
/// microbenchmarks build expression trees directly); returns its chunk id.
int lower_root(VmProgram& vp, const Program& prog, const Expr& root);

/// Human-readable disassembly (tests; `dvc --emit=bytecode`).
std::string to_string(const VmProgram& vp);

}  // namespace deltav::dv
