// Direct-threaded VM executing the bytecode of runtime/bytecode.h.
//
// A `Vm` is immutable after construction and holds no execution state:
// register windows live on the run_chunk() stack frame, so one instance is
// shared by every worker thread of the Pregel engine. All mutable state
// flows through the same `EvalContext` the tree interpreter uses, which is
// what lets the runner switch tiers per call site (ExecTier in runner.h)
// without changing its superstep state machine.
#pragma once

#include "dv/runtime/bytecode.h"
#include "dv/runtime/interpreter.h"

namespace deltav::dv {

class Vm {
 public:
  /// Lowers every runner-visible root of `cp`.
  explicit Vm(const CompiledProgram& cp);
  /// Adopts an already-lowered program (tests, microbenchmarks).
  explicit Vm(VmProgram vp) : vp_(std::move(vp)) {}

  /// Evaluates a lowered root expression; drop-in for eval(root, ctx).
  /// Throws CheckError if `root` was never lowered into this program.
  Value eval_root(const Expr& root, EvalContext& ctx) const;

  /// Executes chunk `chunk_id` against `ctx`; returns its result (unit
  /// chunks return a zero int, like the interpreter's unit()).
  Value run_chunk(int chunk_id, EvalContext& ctx) const;

  /// Rewrites every kSendDelta whose site is routed through the lock-free
  /// fold path (`route[site] >= 0`, see atomic_fold.h) into
  /// kSendDeltaAtomic. Called once by the owning runner right after
  /// construction, before any worker thread touches the program — the Vm
  /// is immutable again afterwards.
  void specialize_atomic(const std::vector<int>& route);

  const VmProgram& program() const { return vp_; }

 private:
  Value send_operand(std::uint16_t packed, Type elem, EvalContext& ctx) const;

  VmProgram vp_;
};

}  // namespace deltav::dv
