// Vertex-state layout and size accounting (Table 2).
//
// The compiled vertex state is the program's field table packed like a C
// struct: 8-byte numeric fields first, then bool fields byte-packed, the
// total rounded up to 8-byte alignment. The per-origin breakdown lets the
// Table-2 bench report exactly where ΔV's extra bytes over ΔV* come from
// (accumulators and, for multiplicative sites, the nnAcc/aggNulls pair).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dv/ast.h"

namespace deltav::dv {

struct StateLayout {
  std::size_t total_bytes = 0;   // aligned struct size
  std::size_t user_bytes = 0;          // `local` fields
  std::size_t binding_bytes = 0;       // §6.2 sent-value bindings
  std::size_t accumulator_bytes = 0;   // §6.4 aggAccum
  std::size_t multiplicative_bytes = 0;  // §6.4.1 nnAcc + aggNulls
  std::size_t epsilon_bytes = 0;       // §9 last-sent fields

  static StateLayout of(const Program& prog);

  std::string summary() const;
};

}  // namespace deltav::dv
