// Recursive-descent parser for ΔV (grammar of Fig. 3 plus the documented
// extensions: `param` declarations, `vertexId`, `u.edge`, `stable`, and the
// |д| degree form the paper's own PageRank listing uses).
#pragma once

#include <string>
#include <vector>

#include "dv/ast.h"
#include "dv/token.h"

namespace deltav::dv {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  /// Parses a whole program. Throws CompileError on syntax errors.
  Program parse_program();

  /// Parses a single expression (test helper; expects EOF after it).
  ExprPtr parse_expression_only();

 private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind);
  const Token& expect(Tok kind, const char* context);

  Stmt parse_stmt();
  ExprPtr parse_seq();        // e1; e2; ...
  ExprPtr parse_item();       // let / local / if / assignment / expression
  ExprPtr parse_nonseq();     // if-expression or operator expression
  ExprPtr parse_or();
  ExprPtr parse_and();
  ExprPtr parse_cmp();
  ExprPtr parse_add();
  ExprPtr parse_mul();
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
  ExprPtr parse_aggregation(AggOp op, Loc loc);
  GraphDir parse_graph_dir(const char* context);
  Type parse_type();

  /// True if the token at `ahead` begins an aggregation (agg-op then '[').
  bool at_aggregation_head() const;

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::vector<std::string> agg_binders_;  // active aggregation element vars
};

}  // namespace deltav::dv
