// Core enumerations of the ΔV language (paper Figure 3) and the algebraic
// helpers the incrementalization passes rely on: identity and absorbing
// elements per aggregation operator, and the operator classification
// (invertible / idempotent / "multiplicative" in the paper's §6.4.1 sense).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/check.h"

namespace deltav::dv {

/// Value types of ΔV (Fig. 3: τ ::= int | bool | float). kUnit is internal:
/// the type of statements-as-expressions (assignments, sequencing, sends).
enum class Type : std::uint8_t { kInt, kBool, kFloat, kUnit, kUnknown };

inline const char* type_name(Type t) {
  switch (t) {
    case Type::kInt: return "int";
    case Type::kBool: return "bool";
    case Type::kFloat: return "float";
    case Type::kUnit: return "unit";
    case Type::kUnknown: return "?";
  }
  return "?";
}

/// Bytes a field of this type occupies in the compiled vertex state
/// (Table 2 accounting). Numeric fields are 8-byte machine words; bools
/// pack as single bytes.
inline std::size_t type_state_bytes(Type t) {
  switch (t) {
    case Type::kInt: return 8;
    case Type::kFloat: return 8;
    case Type::kBool: return 1;
    default: DV_FAIL("type " << type_name(t) << " has no state size");
  }
}

/// Bytes of the wire representation of a message payload of this type.
inline std::size_t type_wire_bytes(Type t) {
  return t == Type::kBool ? 1 : 8;
}

/// Binary operators (Fig. 3 `op`).
enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv,
  kAnd, kOr,
  kLt, kGt, kGe, kLe, kEq, kNe,
};

/// Unary operators (Fig. 3 `uop`).
enum class UnOp : std::uint8_t { kNeg, kNot };

/// Binary min/max builtins (Fig. 3 `pop`).
enum class PairOp : std::uint8_t { kMin, kMax };

/// Aggregation operators (Fig. 3 ⊞ ::= + | * | min | max | || | &&).
enum class AggOp : std::uint8_t { kSum, kProd, kMin, kMax, kOr, kAnd };

inline const char* agg_op_name(AggOp op) {
  switch (op) {
    case AggOp::kSum: return "+";
    case AggOp::kProd: return "*";
    case AggOp::kMin: return "min";
    case AggOp::kMax: return "max";
    case AggOp::kOr: return "||";
    case AggOp::kAnd: return "&&";
  }
  return "?";
}

/// Graph expressions (Fig. 3 д ::= #in | #out | #neighbors).
enum class GraphDir : std::uint8_t { kIn, kOut, kNeighbors };

inline const char* graph_dir_name(GraphDir d) {
  switch (d) {
    case GraphDir::kIn: return "#in";
    case GraphDir::kOut: return "#out";
    case GraphDir::kNeighbors: return "#neighbors";
  }
  return "?";
}

/// The push direction for a pull over `d` (§6.1): a vertex that pulls from
/// its in-neighbors is fed by pushes along those neighbors' out-edges, and
/// vice versa.
inline GraphDir push_direction(GraphDir pull) {
  switch (pull) {
    case GraphDir::kIn: return GraphDir::kOut;
    case GraphDir::kOut: return GraphDir::kIn;
    case GraphDir::kNeighbors: return GraphDir::kNeighbors;
  }
  return GraphDir::kNeighbors;
}

/// §6.4.1: operators with an absorbing ("nullary") element that permanently
/// nulls a memoized accumulator — these need the triple-field treatment.
inline bool is_multiplicative(AggOp op) {
  return op == AggOp::kProd || op == AggOp::kAnd || op == AggOp::kOr;
}

/// Operators whose Δ-message is `new ⊖ old` (group structure).
inline bool is_invertible(AggOp op) {
  return op == AggOp::kSum || op == AggOp::kProd;
}

/// Idempotent semilattice operators: re-folding a full value is harmless,
/// so the Δ-message is simply the new value. Incrementalized accumulators
/// for these are exact only under monotone updates (SSSP/CC are; the
/// compiler emits a warning otherwise — see DESIGN.md).
inline bool is_idempotent(AggOp op) {
  return op == AggOp::kMin || op == AggOp::kMax;
}

/// default_init(⊞, τ) from §6.1: the identity element of the operator.
double agg_identity_double(AggOp op);
std::int64_t agg_identity_int(AggOp op);
bool agg_identity_bool(AggOp op);

/// The absorbing ("nullary") element of a multiplicative operator: 0 for *,
/// false for &&, true for ||.
double agg_absorbing_double(AggOp op);
bool agg_absorbing_bool(AggOp op);

/// Whether this operator/type combination is legal (e.g. && only on bool).
bool agg_supports_type(AggOp op, Type t);

}  // namespace deltav::dv
