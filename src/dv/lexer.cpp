#include "dv/lexer.h"

#include <cctype>
#include <unordered_map>

namespace deltav::dv {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kIdent: return "identifier";
    case Tok::kInit: return "'init'";
    case Tok::kStep: return "'step'";
    case Tok::kIter: return "'iter'";
    case Tok::kUntil: return "'until'";
    case Tok::kLet: return "'let'";
    case Tok::kLocal: return "'local'";
    case Tok::kIn: return "'in'";
    case Tok::kIf: return "'if'";
    case Tok::kThen: return "'then'";
    case Tok::kElse: return "'else'";
    case Tok::kParam: return "'param'";
    case Tok::kGraphSize: return "'graphSize'";
    case Tok::kInfty: return "'infty'";
    case Tok::kVertexId: return "'vertexId'";
    case Tok::kStable: return "'stable'";
    case Tok::kRemote: return "'remote'";
    case Tok::kMin: return "'min'";
    case Tok::kMax: return "'max'";
    case Tok::kTypeInt: return "'int'";
    case Tok::kTypeBool: return "'bool'";
    case Tok::kTypeFloat: return "'float'";
    case Tok::kHashIn: return "'#in'";
    case Tok::kHashOut: return "'#out'";
    case Tok::kHashNeighbors: return "'#neighbors'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kColon: return "':'";
    case Tok::kComma: return "','";
    case Tok::kAssign: return "'='";
    case Tok::kArrow: return "'<-'";
    case Tok::kBar: return "'|'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kNot: return "'not'";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kLe: return "'<='";
    case Tok::kEqEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kDot: return "'.'";
    case Tok::kEof: return "end of input";
  }
  return "?";
}

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

bool Lexer::at_end() const { return pos_ >= src_.size(); }

char Lexer::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::skip_trivia() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if ((c == '-' && peek(1) == '-') || (c == '/' && peek(1) == '/')) {
      while (!at_end() && peek() != '\n') advance();
    } else {
      return;
    }
  }
}

Token Lexer::make(Tok kind) {
  Token t;
  t.kind = kind;
  t.loc = tok_start_;
  return t;
}

Token Lexer::identifier_or_keyword() {
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    text += advance();
  static const std::unordered_map<std::string, Tok> kKeywords = {
      {"init", Tok::kInit},       {"step", Tok::kStep},
      {"iter", Tok::kIter},       {"until", Tok::kUntil},
      {"let", Tok::kLet},         {"local", Tok::kLocal},
      {"in", Tok::kIn},           {"if", Tok::kIf},
      {"then", Tok::kThen},       {"else", Tok::kElse},
      {"param", Tok::kParam},     {"graphSize", Tok::kGraphSize},
      {"infty", Tok::kInfty},     {"vertexId", Tok::kVertexId},
      {"stable", Tok::kStable},   {"remote", Tok::kRemote},
      {"min", Tok::kMin},
      {"max", Tok::kMax},         {"int", Tok::kTypeInt},
      {"bool", Tok::kTypeBool},   {"float", Tok::kTypeFloat},
      {"true", Tok::kTrue},       {"false", Tok::kFalse},
      {"not", Tok::kNot},
  };
  auto it = kKeywords.find(text);
  Token t = make(it != kKeywords.end() ? it->second : Tok::kIdent);
  t.text = std::move(text);
  return t;
}

Token Lexer::number() {
  std::string text;
  bool is_float = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    text += advance();  // '.'
    while (std::isdigit(static_cast<unsigned char>(peek())))
      text += advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    is_float = true;
    text += advance();
    if (peek() == '+' || peek() == '-') text += advance();
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      compile_error(tok_start_, "malformed exponent in numeric literal");
    while (std::isdigit(static_cast<unsigned char>(peek())))
      text += advance();
  }
  Token t = make(is_float ? Tok::kFloatLit : Tok::kIntLit);
  t.text = text;
  if (is_float) {
    t.float_val = std::stod(text);
  } else {
    t.int_val = std::stoll(text);
  }
  return t;
}

Token Lexer::graph_expr() {
  advance();  // '#'
  std::string name;
  while (std::isalpha(static_cast<unsigned char>(peek()))) name += advance();
  if (name == "in") return make(Tok::kHashIn);
  if (name == "out") return make(Tok::kHashOut);
  if (name == "neighbors") return make(Tok::kHashNeighbors);
  compile_error(tok_start_, "unknown graph expression '#" + name +
                                "' (expected #in, #out, or #neighbors)");
}

Token Lexer::next() {
  skip_trivia();
  tok_start_ = Loc{line_, col_};
  if (at_end()) return make(Tok::kEof);
  const char c = peek();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
    return identifier_or_keyword();
  if (std::isdigit(static_cast<unsigned char>(c))) return number();
  if (c == '#') return graph_expr();

  advance();
  switch (c) {
    case '{': return make(Tok::kLBrace);
    case '}': return make(Tok::kRBrace);
    case '(': return make(Tok::kLParen);
    case ')': return make(Tok::kRParen);
    case '[': return make(Tok::kLBracket);
    case ']': return make(Tok::kRBracket);
    case ';': return make(Tok::kSemi);
    case ':': return make(Tok::kColon);
    case ',': return make(Tok::kComma);
    case '.': return make(Tok::kDot);
    case '+': return make(Tok::kPlus);
    case '-': return make(Tok::kMinus);
    case '*': return make(Tok::kStar);
    case '/': return make(Tok::kSlash);
    case '&':
      if (peek() == '&') {
        advance();
        return make(Tok::kAndAnd);
      }
      compile_error(tok_start_, "stray '&' (did you mean '&&'?)");
    case '|':
      if (peek() == '|') {
        advance();
        return make(Tok::kOrOr);
      }
      return make(Tok::kBar);
    case '<':
      if (peek() == '-') {
        advance();
        return make(Tok::kArrow);
      }
      if (peek() == '=') {
        advance();
        return make(Tok::kLe);
      }
      return make(Tok::kLt);
    case '>':
      if (peek() == '=') {
        advance();
        return make(Tok::kGe);
      }
      return make(Tok::kGt);
    case '=':
      if (peek() == '=') {
        advance();
        return make(Tok::kEqEq);
      }
      return make(Tok::kAssign);
    case '!':
      if (peek() == '=') {
        advance();
        return make(Tok::kNe);
      }
      compile_error(tok_start_, "stray '!' (use 'not' or '!=')");
    default:
      compile_error(tok_start_,
                    std::string("unrecognized character '") + c + "'");
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  for (;;) {
    out.push_back(next());
    if (out.back().kind == Tok::kEof) return out;
  }
}

}  // namespace deltav::dv
