#include "algorithms/connected_components.h"

#include <numeric>

namespace deltav::algorithms {

namespace {
struct MinCombiner {
  void operator()(graph::VertexId& acc, graph::VertexId in) const {
    if (in < acc) acc = in;
  }
};
}  // namespace

CcResult connected_components_pregel(const graph::CsrGraph& g,
                                     const CcOptions& options) {
  DV_CHECK_MSG(!g.directed(),
               "connected components expects an undirected graph");
  const std::size_t n = g.num_vertices();

  CcResult result;
  result.component.resize(n);
  std::iota(result.component.begin(), result.component.end(), 0);
  auto& comp = result.component;

  pregel::EngineOptions eopts = options.engine;
  eopts.use_combiner = options.use_combiner;
  pregel::Engine<graph::VertexId, MinCombiner> engine(n, eopts);

  auto broadcast = [&](auto& ctx, graph::VertexId v) {
    for (graph::VertexId u : g.neighbors(v)) ctx.send(u, comp[v]);
  };

  auto compute = [&](auto& ctx, graph::VertexId v,
                     std::span<const graph::VertexId> msgs) {
    if (ctx.superstep() == 0) {
      broadcast(ctx, v);
    } else {
      graph::VertexId best = comp[v];
      for (graph::VertexId m : msgs)
        if (m < best) best = m;
      if (best < comp[v]) {
        comp[v] = best;
        broadcast(ctx, v);
      }
    }
    ctx.vote_to_halt();
  };

  engine.run(compute);
  result.stats = engine.stats();
  return result;
}

std::vector<graph::VertexId> connected_components_oracle(
    const graph::CsrGraph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<graph::VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  // Path-halving find.
  auto find = [&](graph::VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<graph::VertexId>(v);
    for (graph::VertexId u : g.out_neighbors(vid)) {
      graph::VertexId a = find(vid), b = find(u);
      if (a != b) parent[a < b ? b : a] = a < b ? a : b;  // min-root union
    }
  }
  std::vector<graph::VertexId> comp(n);
  for (std::size_t v = 0; v < n; ++v)
    comp[v] = find(static_cast<graph::VertexId>(v));
  return comp;
}

}  // namespace deltav::algorithms
