// Hand-written Pregel+ PageRank — the paper's Figure 1, verbatim semantics.
//
// Note the formula is the one the paper (and the Pregel+ sample code it is
// lifted from) uses: pr = 0.15 + 0.85 * (sum / |V|), with pr initialized to
// 1/|V| and each vertex sending pr/outdeg along its out-edges. This differs
// from textbook PageRank; we reproduce the paper's version exactly so the
// ΔV-compiled program, this baseline, and the sequential oracle all agree
// bit-for-bit on the same recurrence.
#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "pregel/engine.h"

namespace deltav::algorithms {

struct PageRankOptions {
  /// Total supersteps, matching Figure 1's `step_num() < 30` guard:
  /// ranks are updated `iterations - 1` times.
  int iterations = 30;
  pregel::EngineOptions engine;
  /// Sum-combine messages per destination (Pregel+ default behaviour).
  bool use_combiner = true;
};

struct PageRankResult {
  std::vector<double> rank;
  pregel::RunStats stats;
};

PageRankResult pagerank_pregel(const graph::CsrGraph& g,
                               const PageRankOptions& options = {});

/// Sequential oracle computing the identical recurrence by dense iteration.
std::vector<double> pagerank_oracle(const graph::CsrGraph& g,
                                    int iterations = 30);

}  // namespace deltav::algorithms
