// Hand-written Pregel+ connected components (hash-min label propagation).
//
// Every vertex starts with its own id as component label, broadcasts it,
// and adopts the minimum label it hears; like SSSP the algorithm only sends
// on improvement, so it is "pre-incrementalized" — the paper's Figure 5
// no-regression benchmark.
#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "pregel/engine.h"

namespace deltav::algorithms {

struct CcOptions {
  pregel::EngineOptions engine;
  bool use_combiner = true;
};

struct CcResult {
  /// component[v] = smallest vertex id in v's connected component.
  std::vector<graph::VertexId> component;
  pregel::RunStats stats;
};

/// `g` should be undirected (on a directed graph this computes the
/// components of the underlying... out-edge-reachability relation is NOT
/// symmetric, so callers pass undirected graphs; a CheckError enforces it).
CcResult connected_components_pregel(const graph::CsrGraph& g,
                                     const CcOptions& options = {});

/// Union-find oracle.
std::vector<graph::VertexId> connected_components_oracle(
    const graph::CsrGraph& g);

}  // namespace deltav::algorithms
