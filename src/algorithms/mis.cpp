#include "algorithms/mis.h"

#include "graph/graph_builder.h"

namespace deltav::algorithms {

namespace {

// Decisions flowing low→high: how many lower-id neighbors went out, and
// whether any went in. Additive, so a sum-combiner is exact.
struct MisMsg {
  std::int64_t outs = 0;
  std::int64_t ins = 0;
};

struct SumCombiner {
  void operator()(MisMsg& acc, const MisMsg& in) const {
    acc.outs += in.outs;
    acc.ins += in.ins;
  }
};

enum : std::uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

}  // namespace

MisResult mis_pregel(const graph::CsrGraph& g, const MisOptions& options) {
  DV_CHECK_MSG(!g.directed(),
               "maximal independent set expects an undirected graph");
  const std::size_t n = g.num_vertices();

  MisResult result;
  std::vector<std::uint8_t> state(n, kUndecided);
  // Undecided lower-id neighbors left; v enters the set when this hits 0.
  std::vector<std::int64_t> pending(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (graph::VertexId u : g.neighbors(static_cast<graph::VertexId>(v)))
      if (u < static_cast<graph::VertexId>(v)) ++pending[v];
  }

  pregel::Engine<MisMsg, SumCombiner> engine(n, options.engine);

  // A decision only constrains higher-id neighbors, so broadcast one way.
  auto announce = [&](auto& ctx, graph::VertexId v) {
    const MisMsg msg{state[v] == kOut ? 1 : 0, state[v] == kIn ? 1 : 0};
    for (graph::VertexId u : g.neighbors(v))
      if (u > v) ctx.send(u, msg);
  };

  auto compute = [&](auto& ctx, graph::VertexId v,
                     std::span<const MisMsg> msgs) {
    if (state[v] == kUndecided) {
      for (const MisMsg& m : msgs) {
        pending[v] -= m.outs;
        if (m.ins > 0) state[v] = kOut;
      }
      if (state[v] == kUndecided && pending[v] == 0) state[v] = kIn;
      if (state[v] != kUndecided) announce(ctx, v);
    }
    ctx.vote_to_halt();
  };

  engine.run(compute);
  result.in_set.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v)
    result.in_set[v] = state[v] == kIn ? 1 : 0;
  result.stats = engine.stats();
  return result;
}

std::vector<std::uint8_t> mis_oracle(const graph::CsrGraph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint8_t> in_set(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    bool blocked = false;
    for (graph::VertexId u : g.neighbors(static_cast<graph::VertexId>(v))) {
      if (u < static_cast<graph::VertexId>(v) && in_set[u]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) in_set[v] = 1;
  }
  return in_set;
}

graph::CsrGraph orient_low_high(const graph::CsrGraph& g) {
  DV_CHECK_MSG(!g.directed(), "orient_low_high expects an undirected graph");
  const std::size_t n = g.num_vertices();
  graph::GraphBuilder gb(n, /*directed=*/true);
  for (std::size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<graph::VertexId>(v);
    for (graph::VertexId u : g.neighbors(vid))
      if (vid < u) gb.add_edge(vid, u);
  }
  return gb.build();
}

}  // namespace deltav::algorithms
