#include "algorithms/hits.h"

namespace deltav::algorithms {

namespace {
struct HitsCombiner {
  void operator()(HitsMessage& acc, const HitsMessage& in) const {
    acc.value += in.value;
  }
  /// Combine per (destination, message kind): hub and authority
  /// contributions must not mix.
  std::uint64_t key(graph::VertexId dst, const HitsMessage& m) const {
    return (static_cast<std::uint64_t>(dst) << 1) | m.kind;
  }
};
}  // namespace

HitsResult hits_pregel(const graph::CsrGraph& g, const HitsOptions& options) {
  const std::size_t n = g.num_vertices();

  HitsResult result;
  result.hub.assign(n, 1.0);
  result.authority.assign(n, 1.0);
  auto& hub = result.hub;
  auto& auth = result.authority;

  pregel::EngineOptions eopts = options.engine;
  eopts.use_combiner = options.use_combiner;
  pregel::Engine<HitsMessage, HitsCombiner> engine(n, eopts);

  auto send_scores = [&](auto& ctx, graph::VertexId v) {
    for (graph::VertexId u : g.out_neighbors(v))
      ctx.send(u, HitsMessage{hub[v], HitsMessage::kAuthContribution});
    for (graph::VertexId u : g.in_neighbors(v))
      ctx.send(u, HitsMessage{auth[v], HitsMessage::kHubContribution});
  };

  const int total = options.iterations;
  auto compute = [&](auto& ctx, graph::VertexId v,
                     std::span<const HitsMessage> msgs) {
    if (ctx.superstep() > 0) {
      double a = 0, h = 0;
      for (const HitsMessage& m : msgs) {
        if (m.kind == HitsMessage::kAuthContribution)
          a += m.value;
        else
          h += m.value;
      }
      auth[v] = a;
      hub[v] = h;
    }
    if (static_cast<int>(ctx.superstep()) < total) {
      send_scores(ctx, v);
    } else {
      ctx.vote_to_halt();
    }
  };

  engine.run(compute);
  result.stats = engine.stats();
  return result;
}

void hits_oracle(const graph::CsrGraph& g, int iterations,
                 std::vector<double>& hub, std::vector<double>& authority) {
  const std::size_t n = g.num_vertices();
  hub.assign(n, 1.0);
  authority.assign(n, 1.0);
  std::vector<double> next_hub(n), next_auth(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next_hub.begin(), next_hub.end(), 0.0);
    std::fill(next_auth.begin(), next_auth.end(), 0.0);
    for (std::size_t u = 0; u < n; ++u) {
      const auto vid = static_cast<graph::VertexId>(u);
      for (graph::VertexId v : g.out_neighbors(vid)) {
        next_auth[v] += hub[u];   // u endorses v as an authority
        next_hub[u] += authority[v];  // v's authority feeds u's hub score
      }
    }
    hub.swap(next_hub);
    authority.swap(next_auth);
  }
}

}  // namespace deltav::algorithms
