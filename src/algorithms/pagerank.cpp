#include "algorithms/pagerank.h"

namespace deltav::algorithms {

namespace {
struct SumCombiner {
  void operator()(double& acc, double in) const { acc += in; }
};
}  // namespace

PageRankResult pagerank_pregel(const graph::CsrGraph& g,
                               const PageRankOptions& options) {
  const std::size_t n = g.num_vertices();
  DV_CHECK(n > 0);
  const auto N = static_cast<double>(n);
  const int total_steps = options.iterations;

  PageRankResult result;
  result.rank.assign(n, 0.0);
  auto& pr = result.rank;

  pregel::EngineOptions eopts = options.engine;
  eopts.use_combiner = options.use_combiner;
  pregel::Engine<double, SumCombiner> engine(n, eopts);

  auto compute = [&](auto& ctx, graph::VertexId v,
                     std::span<const double> msgs) {
    if (ctx.superstep() == 0) {
      pr[v] = 1.0 / N;
    } else {
      double sum = 0;
      for (double m : msgs) sum += m;
      pr[v] = 0.15 + 0.85 * (sum / N);
    }
    // Figure 1: `if (step_num() < 30)` with 1-based steps; ours are 0-based.
    if (static_cast<int>(ctx.superstep()) + 1 < total_steps) {
      const auto out = g.out_neighbors(v);
      if (!out.empty()) {
        const double share = pr[v] / static_cast<double>(out.size());
        for (graph::VertexId u : out) ctx.send(u, share);
      }
    } else {
      ctx.vote_to_halt();
    }
  };

  engine.run(compute);
  result.stats = engine.stats();
  return result;
}

std::vector<double> pagerank_oracle(const graph::CsrGraph& g,
                                    int iterations) {
  const std::size_t n = g.num_vertices();
  const auto N = static_cast<double>(n);
  std::vector<double> rank(n, 1.0 / N), next(n, 0.0);
  // `iterations` supersteps perform iterations-1 rank updates (the first
  // superstep only initializes), mirroring pagerank_pregel.
  for (int it = 1; it <= iterations - 1; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t u = 0; u < n; ++u) {
      const auto vid = static_cast<graph::VertexId>(u);
      const auto out = g.out_neighbors(vid);
      if (out.empty()) continue;
      const double share = rank[u] / static_cast<double>(out.size());
      for (graph::VertexId v : out) next[v] += share;
    }
    for (std::size_t v = 0; v < n; ++v)
      next[v] = 0.15 + 0.85 * (next[v] / N);
    rank.swap(next);
  }
  return rank;
}

}  // namespace deltav::algorithms
