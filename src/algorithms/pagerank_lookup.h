// The §4.2.1 strawman: meaningful-only messaging via per-vertex lookup
// tables instead of incrementalization.
//
// Every vertex caches the last value heard from each in-neighbor in a local
// table keyed by sender id; messages carry the sender id (growing the wire
// size) and are sent only when the value changed. The aggregation is then
// recomputed from the *whole table* every superstep. The paper rejects this
// design — the id tag can double message size and the table inflates vertex
// state — and our ablation bench (A1) measures exactly that trade-off
// against the Δ-message design.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "pregel/engine.h"

namespace deltav::algorithms {

struct TaggedMessage {
  graph::VertexId sender = 0;
  double value = 0;
};

struct PageRankLookupOptions {
  int iterations = 30;
  pregel::EngineOptions engine;
};

struct PageRankLookupResult {
  std::vector<double> rank;
  pregel::RunStats stats;
  /// Bytes of lookup-table state across all vertices at the end of the run
  /// (the memory-footprint cost §4.2.1 warns about).
  std::uint64_t table_bytes = 0;
};

PageRankLookupResult pagerank_lookup_table(
    const graph::CsrGraph& g, const PageRankLookupOptions& options = {});

}  // namespace deltav::algorithms

namespace deltav::pregel {
/// Wire format: 8-byte value + 4-byte sender tag (the doubling §4.2.1
/// describes for 4-byte payload systems; +50% for ours).
template <>
struct MessageTraits<deltav::algorithms::TaggedMessage> {
  static std::size_t wire_size(const deltav::algorithms::TaggedMessage&) {
    return 12;
  }
};
}  // namespace deltav::pregel
