#include "algorithms/sssp.h"

#include <queue>

namespace deltav::algorithms {

namespace {
struct MinCombiner {
  void operator()(double& acc, double in) const {
    if (in < acc) acc = in;
  }
};
}  // namespace

SsspResult sssp_pregel(const graph::CsrGraph& g, const SsspOptions& options) {
  const std::size_t n = g.num_vertices();
  DV_CHECK(options.source < n);

  SsspResult result;
  result.distance.assign(n, kUnreachable);
  auto& dist = result.distance;

  pregel::EngineOptions eopts = options.engine;
  eopts.use_combiner = options.use_combiner;
  pregel::Engine<double, MinCombiner> engine(n, eopts);

  auto relax_and_send = [&](auto& ctx, graph::VertexId v) {
    const auto out = g.out_neighbors(v);
    const auto wts = g.out_weights(v);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double w = wts.empty() ? 1.0 : wts[i];
      ctx.send(out[i], dist[v] + w);
    }
  };

  auto compute = [&](auto& ctx, graph::VertexId v,
                     std::span<const double> msgs) {
    if (ctx.superstep() == 0) {
      if (v == options.source) {
        dist[v] = 0.0;
        relax_and_send(ctx, v);
      }
    } else {
      double best = kUnreachable;
      for (double m : msgs)
        if (m < best) best = m;
      if (best < dist[v]) {
        dist[v] = best;
        relax_and_send(ctx, v);
      }
    }
    ctx.vote_to_halt();
  };

  engine.run(compute);
  result.stats = engine.stats();
  return result;
}

std::vector<double> sssp_oracle(const graph::CsrGraph& g,
                                graph::VertexId source) {
  const std::size_t n = g.num_vertices();
  DV_CHECK(source < n);
  std::vector<double> dist(n, kUnreachable);
  using Entry = std::pair<double, graph::VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    const auto out = g.out_neighbors(v);
    const auto wts = g.out_weights(v);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double w = wts.empty() ? 1.0 : wts[i];
      if (d + w < dist[out[i]]) {
        dist[out[i]] = d + w;
        heap.emplace(d + w, out[i]);
      }
    }
  }
  return dist;
}

}  // namespace deltav::algorithms
