// Hand-written Pregel+ single-source shortest paths.
//
// The classic Pregel SSSP: only vertices whose tentative distance improved
// re-broadcast, and every vertex votes to halt each superstep — the paper
// calls this algorithm "pre-incrementalized" (§7.2), which is why ΔV gains
// nothing on it and why it serves as the no-regression benchmark.
#pragma once

#include <limits>
#include <vector>

#include "graph/csr_graph.h"
#include "pregel/engine.h"

namespace deltav::algorithms {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct SsspOptions {
  graph::VertexId source = 0;
  pregel::EngineOptions engine;
  bool use_combiner = true;
};

struct SsspResult {
  std::vector<double> distance;  // kUnreachable if not reachable
  pregel::RunStats stats;
};

SsspResult sssp_pregel(const graph::CsrGraph& g,
                       const SsspOptions& options = {});

/// Sequential Dijkstra oracle (binary heap).
std::vector<double> sssp_oracle(const graph::CsrGraph& g,
                                graph::VertexId source);

}  // namespace deltav::algorithms
