#include "algorithms/bfs.h"

#include <queue>

namespace deltav::algorithms {

namespace {
struct MinCombiner {
  void operator()(double& acc, double in) const {
    if (in < acc) acc = in;
  }
};
}  // namespace

BfsResult bfs_pregel(const graph::CsrGraph& g, const BfsOptions& options) {
  const std::size_t n = g.num_vertices();
  DV_CHECK(options.source < n);

  BfsResult result;
  result.depth.assign(n, kBfsUnreached);
  auto& depth = result.depth;

  pregel::EngineOptions eopts = options.engine;
  eopts.use_combiner = options.use_combiner;
  pregel::Engine<double, MinCombiner> engine(n, eopts);

  auto expand = [&](auto& ctx, graph::VertexId v) {
    for (graph::VertexId u : g.out_neighbors(v)) ctx.send(u, depth[v] + 1.0);
  };

  auto compute = [&](auto& ctx, graph::VertexId v,
                     std::span<const double> msgs) {
    if (ctx.superstep() == 0) {
      if (v == options.source) {
        depth[v] = 0.0;
        expand(ctx, v);
      }
    } else {
      double best = kBfsUnreached;
      for (double m : msgs)
        if (m < best) best = m;
      if (best < depth[v]) {
        depth[v] = best;
        expand(ctx, v);
      }
    }
    ctx.vote_to_halt();
  };

  engine.run(compute);
  result.stats = engine.stats();
  return result;
}

std::vector<double> bfs_oracle(const graph::CsrGraph& g,
                               graph::VertexId source) {
  const std::size_t n = g.num_vertices();
  DV_CHECK(source < n);
  std::vector<double> depth(n, kBfsUnreached);
  std::queue<graph::VertexId> frontier;
  depth[source] = 0.0;
  frontier.push(source);
  while (!frontier.empty()) {
    const graph::VertexId v = frontier.front();
    frontier.pop();
    for (graph::VertexId u : g.out_neighbors(v)) {
      if (depth[u] == kBfsUnreached) {
        depth[u] = depth[v] + 1.0;
        frontier.push(u);
      }
    }
  }
  return depth;
}

}  // namespace deltav::algorithms
