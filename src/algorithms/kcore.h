// Hand-written Pregel+ k-core membership.
//
// A vertex is in the k-core iff it survives iterated removal of vertices
// with fewer than k live neighbors. The fixpoint is confluent (independent
// of removal order), so the delta-style Pregel baseline below, the
// synchronous-rounds ΔV kKCore program, and the sequential peeling oracle
// all agree exactly on membership.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "pregel/engine.h"

namespace deltav::algorithms {

struct KCoreOptions {
  std::int64_t k = 2;
  pregel::EngineOptions engine;
  bool use_combiner = true;
};

struct KCoreResult {
  // 1 if the vertex is in the k-core, else 0 (std::uint8_t: vector<bool>
  // has no data() and bit-packing buys nothing at test scale).
  std::vector<std::uint8_t> alive;
  pregel::RunStats stats;
};

/// Expects an undirected graph. Dead vertices broadcast "-1 live
/// neighbor" deltas; everyone else stays halted, so supersteps are
/// proportional to peeling depth, not graph size.
KCoreResult kcore_pregel(const graph::CsrGraph& g,
                         const KCoreOptions& options = {});

/// Sequential peeling oracle: queue-driven removal of sub-k vertices.
std::vector<std::uint8_t> kcore_oracle(const graph::CsrGraph& g,
                                       std::int64_t k);

}  // namespace deltav::algorithms
