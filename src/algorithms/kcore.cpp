#include "algorithms/kcore.h"

#include <queue>

namespace deltav::algorithms {

namespace {
// Messages are "a neighbor of yours just died" counts.
struct SumCombiner {
  void operator()(std::int64_t& acc, std::int64_t in) const { acc += in; }
};
}  // namespace

KCoreResult kcore_pregel(const graph::CsrGraph& g,
                         const KCoreOptions& options) {
  DV_CHECK_MSG(!g.directed(), "k-core expects an undirected graph");
  const std::size_t n = g.num_vertices();

  KCoreResult result;
  result.alive.assign(n, 1);
  auto& alive = result.alive;
  std::vector<std::int64_t> live_deg(n);
  for (std::size_t v = 0; v < n; ++v)
    live_deg[v] = static_cast<std::int64_t>(
        g.neighbors(static_cast<graph::VertexId>(v)).size());

  pregel::EngineOptions eopts = options.engine;
  eopts.use_combiner = options.use_combiner;
  pregel::Engine<std::int64_t, SumCombiner> engine(n, eopts);

  auto die = [&](auto& ctx, graph::VertexId v) {
    alive[v] = 0;
    for (graph::VertexId u : g.neighbors(v)) ctx.send(u, 1);
  };

  auto compute = [&](auto& ctx, graph::VertexId v,
                     std::span<const std::int64_t> msgs) {
    for (std::int64_t m : msgs) live_deg[v] -= m;
    if (alive[v] && live_deg[v] < options.k) die(ctx, v);
    ctx.vote_to_halt();
  };

  engine.run(compute);
  result.stats = engine.stats();
  return result;
}

std::vector<std::uint8_t> kcore_oracle(const graph::CsrGraph& g,
                                       std::int64_t k) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<std::int64_t> live_deg(n);
  std::queue<graph::VertexId> doomed;
  for (std::size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<graph::VertexId>(v);
    live_deg[v] = static_cast<std::int64_t>(g.neighbors(vid).size());
    if (live_deg[v] < k) doomed.push(vid);
  }
  while (!doomed.empty()) {
    const graph::VertexId v = doomed.front();
    doomed.pop();
    if (!alive[v]) continue;
    alive[v] = 0;
    for (graph::VertexId u : g.neighbors(v)) {
      if (alive[u] && --live_deg[u] < k) doomed.push(u);
    }
  }
  return alive;
}

}  // namespace deltav::algorithms
