// Hand-written Pregel+ HITS (Hyperlink-Induced Topic Search).
//
// The paper's variant (§7): non-converging (no normalization) with the hub
// and authority updates performed *simultaneously* from the previous
// superstep's values, run for a fixed small number of rounds ("7 (5 after 2
// initialization steps)"). Each superstep a vertex sends its hub score
// along out-edges (an authority contribution) and its authority score along
// in-edges (a hub contribution); messages are tagged with their kind and
// combined per (destination, kind).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "pregel/engine.h"

namespace deltav::algorithms {

struct HitsMessage {
  enum Kind : std::uint8_t { kAuthContribution = 0, kHubContribution = 1 };
  double value = 0;
  std::uint8_t kind = kAuthContribution;
};

struct HitsOptions {
  /// Number of hub/authority update rounds (paper: 5, after 2 setup steps).
  int iterations = 5;
  pregel::EngineOptions engine;
  bool use_combiner = true;
};

struct HitsResult {
  std::vector<double> hub;
  std::vector<double> authority;
  pregel::RunStats stats;
};

HitsResult hits_pregel(const graph::CsrGraph& g,
                       const HitsOptions& options = {});

/// Sequential oracle: the same simultaneous, unnormalized recurrence.
void hits_oracle(const graph::CsrGraph& g, int iterations,
                 std::vector<double>& hub, std::vector<double>& authority);

}  // namespace deltav::algorithms

namespace deltav::pregel {
/// HITS messages travel as (8-byte value, 1-byte kind) on the wire.
template <>
struct MessageTraits<deltav::algorithms::HitsMessage> {
  static std::size_t wire_size(const deltav::algorithms::HitsMessage&) {
    return 9;
  }
};
}  // namespace deltav::pregel
