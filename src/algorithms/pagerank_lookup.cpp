#include "algorithms/pagerank_lookup.h"

#include "common/open_hash_map.h"

namespace deltav::algorithms {

PageRankLookupResult pagerank_lookup_table(
    const graph::CsrGraph& g, const PageRankLookupOptions& options) {
  const std::size_t n = g.num_vertices();
  DV_CHECK(n > 0);
  const auto N = static_cast<double>(n);
  const int total_steps = options.iterations;

  PageRankLookupResult result;
  result.rank.assign(n, 0.0);
  auto& pr = result.rank;

  // Per-vertex cache of the last share heard from each in-neighbor.
  // (Messages cannot be combined: the receiver needs each sender's value.)
  std::vector<OpenHashMap<double>> cache(n);
  std::vector<double> last_sent(n, -1.0);  // sentinel: nothing sent yet

  pregel::Engine<TaggedMessage> engine(n, options.engine);

  auto compute = [&](auto& ctx, graph::VertexId v,
                     std::span<const TaggedMessage> msgs) {
    if (ctx.superstep() == 0) {
      pr[v] = 1.0 / N;
    } else {
      for (const TaggedMessage& m : msgs) cache[v][m.sender] = m.value;
      double sum = 0;
      cache[v].for_each(
          [&](std::uint64_t, const double& value) { sum += value; });
      pr[v] = 0.15 + 0.85 * (sum / N);
    }
    if (static_cast<int>(ctx.superstep()) + 1 < total_steps) {
      const auto out = g.out_neighbors(v);
      if (!out.empty()) {
        const double share = pr[v] / static_cast<double>(out.size());
        if (share != last_sent[v]) {  // meaningful-only policy
          for (graph::VertexId u : out)
            ctx.send(u, TaggedMessage{v, share});
          last_sent[v] = share;
        }
      }
    } else {
      ctx.vote_to_halt();
    }
  };

  engine.run(compute);
  result.stats = engine.stats();
  for (const auto& c : cache)
    result.table_bytes +=
        c.capacity() * (sizeof(std::uint64_t) + sizeof(double));
  return result;
}

}  // namespace deltav::algorithms
