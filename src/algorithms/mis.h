// Hand-written Pregel+ maximal independent set, greedy by vertex id.
//
// All three implementations (this baseline, the ΔV kMis program, and the
// sequential oracle) compute the SAME set: the lexicographically-first MIS,
// i.e. the result of greedily admitting vertices in increasing id order.
// That determinism is what makes cross-tier differential testing bit-exact.
//
// The ΔV program consumes a low→high orientation of the undirected input
// (one directed arc a→b per edge with a < b, so `#in` of a vertex is
// exactly its lower-id neighbors) — build it with orient_low_high().
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "pregel/engine.h"

namespace deltav::algorithms {

struct MisOptions {
  pregel::EngineOptions engine;
};

struct MisResult {
  // 1 if the vertex is in the set, else 0.
  std::vector<std::uint8_t> in_set;
  pregel::RunStats stats;
};

/// Expects an undirected graph.
MisResult mis_pregel(const graph::CsrGraph& g, const MisOptions& options = {});

/// Sequential greedy oracle: admit v iff no already-admitted neighbor u < v.
std::vector<std::uint8_t> mis_oracle(const graph::CsrGraph& g);

/// Directed low→high orientation of an undirected graph: one arc a→b per
/// edge {a, b} with a < b. Feed the result to the ΔV kMis program.
graph::CsrGraph orient_low_high(const graph::CsrGraph& g);

}  // namespace deltav::algorithms
