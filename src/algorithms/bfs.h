// Hand-written Pregel+ breadth-first search (unweighted SSSP).
//
// Identical skeleton to sssp.h but every edge costs 1, matching the ΔV
// kBfs program (programs/programs.h). Like SSSP it is naturally
// pre-incrementalized: only improved vertices re-broadcast, so ΔV gains
// nothing on cold runs and the interesting comparison is warm streaming
// epochs (bench_stream), where ΔV* patches just the frontier woken by
// inserted edges.
#pragma once

#include <limits>
#include <vector>

#include "graph/csr_graph.h"
#include "pregel/engine.h"

namespace deltav::algorithms {

inline constexpr double kBfsUnreached = std::numeric_limits<double>::infinity();

struct BfsOptions {
  graph::VertexId source = 0;
  pregel::EngineOptions engine;
  bool use_combiner = true;
};

struct BfsResult {
  std::vector<double> depth;  // kBfsUnreached if not reachable
  pregel::RunStats stats;
};

BfsResult bfs_pregel(const graph::CsrGraph& g, const BfsOptions& options = {});

/// Sequential queue-based BFS oracle. Depths are exact small integers in
/// double, so ΔV float results compare bit-exact against this.
std::vector<double> bfs_oracle(const graph::CsrGraph& g,
                               graph::VertexId source);

}  // namespace deltav::algorithms
