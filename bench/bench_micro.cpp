// µ — google-benchmark micro-benchmarks for the engine and runtime hot
// paths: the combiner map, message exchange, interpreter dispatch, and
// Δ-message synthesis. These quantify the constant factors behind the
// Figure-4 "Pregel+ is always faster than ΔV*" observation.
#include <benchmark/benchmark.h>

#include "common/open_hash_map.h"
#include "common/rng.h"
#include "dv/compiler.h"
#include "dv/programs/programs.h"
#include "dv/runtime/delta.h"
#include "dv/runtime/runner.h"
#include "graph/generators.h"
#include "pregel/engine.h"

namespace {

using namespace deltav;

void BM_OpenHashMapCombine(benchmark::State& state) {
  const auto keys = static_cast<std::uint64_t>(state.range(0));
  OpenHashMap<double> map;
  Rng rng(1);
  for (auto _ : state) {
    map.clear();
    for (std::uint64_t i = 0; i < 100000; ++i)
      map[rng.next_below(keys)] += 1.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_OpenHashMapCombine)->Arg(1024)->Arg(65536);

struct SumCombiner {
  void operator()(double& acc, double in) const { acc += in; }
};

void BM_EngineMessageRound(benchmark::State& state) {
  const std::size_t n = 1 << 14;
  const auto g = graph::rmat(n, n * 8, 3);
  pregel::EngineOptions opts;
  opts.num_workers = static_cast<int>(state.range(0));
  pregel::Engine<double, SumCombiner> engine(n, opts);
  for (auto _ : state) {
    engine.step([&](auto& ctx, graph::VertexId v, std::span<const double>) {
      for (auto u : g.out_neighbors(v)) ctx.send(u, 1.0);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_EngineMessageRound)->Arg(1)->Arg(4);

void BM_DeltaSynthesisSum(benchmark::State& state) {
  Rng rng(7);
  dv::Value old_v = dv::Value::of_float(rng.next_double());
  for (auto _ : state) {
    const dv::Value new_v = dv::Value::of_float(rng.next_double());
    benchmark::DoNotOptimize(
        dv::synthesize_delta(dv::AggOp::kSum, dv::Type::kFloat, old_v,
                             new_v));
    old_v = new_v;
  }
}
BENCHMARK(BM_DeltaSynthesisSum);

void BM_DeltaSynthesisProdWithZeros(benchmark::State& state) {
  Rng rng(9);
  dv::Value old_v = dv::Value::of_float(1.0);
  for (auto _ : state) {
    const dv::Value new_v = rng.next_bool(0.2)
                                ? dv::Value::of_float(0.0)
                                : dv::Value::of_float(rng.next_double(0.5,
                                                                      2.0));
    benchmark::DoNotOptimize(
        dv::synthesize_delta(dv::AggOp::kProd, dv::Type::kFloat, old_v,
                             new_v));
    old_v = new_v;
  }
}
BENCHMARK(BM_DeltaSynthesisProdWithZeros);

void BM_CompilePageRank(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(dv::compile(dv::programs::kPageRank, {}));
}
BENCHMARK(BM_CompilePageRank);

void BM_InterpreterPageRankSuperstep(benchmark::State& state) {
  // End-to-end per-superstep interpreter cost on a small graph, amortized:
  // run the full 30-superstep program and divide.
  const auto g = graph::rmat(4096, 32768, 11);
  const auto cp = dv::compile(dv::programs::kPageRank,
                              dv::CompileOptions{.incrementalize = false});
  dv::DvRunOptions o;
  o.engine.num_workers = 1;
  o.params = {{"steps", dv::Value::of_int(29)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dv::run_program(cp, g, o));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          30 * 4096);
}
BENCHMARK(BM_InterpreterPageRankSuperstep);

void BM_HandwrittenPageRank(benchmark::State& state) {
  // The native-code equivalent of the interpreter benchmark above; the
  // ratio of the two is the ΔV*-vs-Pregel+ constant factor in Figure 4.
  const auto g = graph::rmat(4096, 32768, 11);
  const auto N = static_cast<double>(g.num_vertices());
  pregel::EngineOptions opts;
  opts.num_workers = 1;
  for (auto _ : state) {
    pregel::Engine<double, SumCombiner> engine(g.num_vertices(), opts);
    std::vector<double> pr(g.num_vertices());
    engine.run(
        [&](auto& ctx, graph::VertexId v, std::span<const double> msgs) {
          if (ctx.superstep() == 0) {
            pr[v] = 1.0 / N;
          } else {
            double sum = 0;
            for (double m : msgs) sum += m;
            pr[v] = 0.15 + 0.85 * (sum / N);
          }
          if (ctx.superstep() + 1 < 30) {
            const auto out = g.out_neighbors(v);
            if (!out.empty()) {
              const double share = pr[v] / static_cast<double>(out.size());
              for (auto u : out) ctx.send(u, share);
            }
          } else {
            ctx.vote_to_halt();
          }
        });
    benchmark::DoNotOptimize(pr.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          30 * 4096);
}
BENCHMARK(BM_HandwrittenPageRank);

}  // namespace

BENCHMARK_MAIN();
