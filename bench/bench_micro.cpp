// µ — google-benchmark micro-benchmarks for the engine and runtime hot
// paths: the combiner map, message exchange, interpreter dispatch, and
// Δ-message synthesis. These quantify the constant factors behind the
// Figure-4 "Pregel+ is always faster than ΔV*" observation, and — via the
// */tree vs */vm pairs — the interpretation tax the bytecode tier removes.
#include <benchmark/benchmark.h>

#include "common/open_hash_map.h"
#include "common/rng.h"
#include "dv/compiler.h"
#include "dv/obs/obs.h"
#include "dv/programs/programs.h"
#include "dv/runtime/delta.h"
#include "dv/runtime/runner.h"
#include "dv/runtime/vm.h"
#include "graph/generators.h"
#include "pregel/engine.h"

namespace {

using namespace deltav;

void BM_OpenHashMapCombine(benchmark::State& state) {
  const auto keys = static_cast<std::uint64_t>(state.range(0));
  OpenHashMap<double> map;
  Rng rng(1);
  for (auto _ : state) {
    map.clear();
    for (std::uint64_t i = 0; i < 100000; ++i)
      map[rng.next_below(keys)] += 1.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_OpenHashMapCombine)->Arg(1024)->Arg(65536);

struct SumCombiner {
  void operator()(double& acc, double in) const { acc += in; }
};

void BM_EngineMessageRound(benchmark::State& state) {
  const std::size_t n = 1 << 14;
  const auto g = graph::rmat(n, n * 8, 3);
  pregel::EngineOptions opts;
  opts.num_workers = static_cast<int>(state.range(0));
  pregel::Engine<double, SumCombiner> engine(n, opts);
  for (auto _ : state) {
    engine.step([&](auto& ctx, graph::VertexId v, std::span<const double>) {
      for (auto u : g.out_neighbors(v)) ctx.send(u, 1.0);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_EngineMessageRound)->Arg(1)->Arg(4);

void BM_DeltaSynthesisSum(benchmark::State& state) {
  Rng rng(7);
  dv::Value old_v = dv::Value::of_float(rng.next_double());
  for (auto _ : state) {
    const dv::Value new_v = dv::Value::of_float(rng.next_double());
    benchmark::DoNotOptimize(
        dv::synthesize_delta(dv::AggOp::kSum, dv::Type::kFloat, old_v,
                             new_v));
    old_v = new_v;
  }
}
BENCHMARK(BM_DeltaSynthesisSum);

void BM_DeltaSynthesisProdWithZeros(benchmark::State& state) {
  Rng rng(9);
  dv::Value old_v = dv::Value::of_float(1.0);
  for (auto _ : state) {
    const dv::Value new_v = rng.next_bool(0.2)
                                ? dv::Value::of_float(0.0)
                                : dv::Value::of_float(rng.next_double(0.5,
                                                                      2.0));
    benchmark::DoNotOptimize(
        dv::synthesize_delta(dv::AggOp::kProd, dv::Type::kFloat, old_v,
                             new_v));
    old_v = new_v;
  }
}
BENCHMARK(BM_DeltaSynthesisProdWithZeros);

void BM_CompilePageRank(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(dv::compile(dv::programs::kPageRank, {}));
}
BENCHMARK(BM_CompilePageRank);

void BM_InterpreterPageRankSuperstep(benchmark::State& state) {
  // End-to-end per-superstep interpreter cost on a small graph, amortized:
  // run the full 30-superstep program and divide.
  const auto g = graph::rmat(4096, 32768, 11);
  const auto cp = dv::compile(dv::programs::kPageRank,
                              dv::CompileOptions{.incrementalize = false});
  dv::DvRunOptions o;
  o.engine.num_workers = 1;
  o.params = {{"steps", dv::Value::of_int(29)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dv::run_program(cp, g, o));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          30 * 4096);
}
BENCHMARK(BM_InterpreterPageRankSuperstep);

// ---- VM vs tree dispatch cost ------------------------------------------
//
// The tier benchmarks run the SAME compiled expression trees on both
// execution substrates (Arg(0) = tree interpreter, Arg(1) = bytecode VM),
// bypassing the engine so only evaluation dispatch is measured. Three
// shapes cover the runtime's hot paths: a pure PageRank-shaped arithmetic
// body, the Δ-send loop over CSR neighbor spans, and the receiver-side
// Δ-fold (Eq. 8/9).

dv::ExecTier tier_of(const benchmark::State& state) {
  return state.range(0) ? dv::ExecTier::kVm : dv::ExecTier::kTree;
}

class DevNullSink final : public dv::SendSink {
 public:
  std::uint64_t count = 0;
  void send(graph::VertexId, const dv::DvMessage&) override { ++count; }
  void send_span(std::span<const graph::VertexId> dsts,
                 const dv::DvMessage&) override {
    count += dsts.size();
  }
};

/// Owns everything an EvalContext needs for standalone body evaluation:
/// per-vertex state initialized the way the runner does (identities for
/// accumulator slots, typed zeros for user fields), bound params, wire
/// sizes, and the lowered VM program.
struct TierFixture {
  explicit TierFixture(const char* src,
                       std::map<std::string, dv::Value> params = {})
      : g(graph::rmat(4096, 32768, 11)), cp(dv::compile(src, {})), vm(cp) {
    stride = cp.program.fields.size();
    std::vector<dv::Value> defaults(stride);
    for (std::size_t fi = 0; fi < stride; ++fi) {
      const dv::Field& f = cp.program.fields[fi];
      switch (f.origin) {
        case dv::Field::Origin::kAccumulator:
        case dv::Field::Origin::kNnAcc:
        case dv::Field::Origin::kLastSent: {
          const dv::AggSite& site =
              cp.program.sites[static_cast<std::size_t>(f.site)];
          defaults[fi] = dv::agg_identity(site.op, site.elem_type);
          break;
        }
        case dv::Field::Origin::kNullCount:
          defaults[fi] = dv::Value::of_int(0);
          break;
        default:
          defaults[fi] = f.type == dv::Type::kFloat ? dv::Value::of_float(0.5)
                         : f.type == dv::Type::kBool
                             ? dv::Value::of_bool(false)
                             : dv::Value::of_int(0);
          break;
      }
    }
    state0.reserve(g.num_vertices() * stride);
    for (std::size_t v = 0; v < g.num_vertices(); ++v)
      state0.insert(state0.end(), defaults.begin(), defaults.end());
    state = state0;
    for (const dv::ScratchVar& sv : cp.program.scratch)
      scratch_defaults.push_back(sv.type == dv::Type::kFloat
                                     ? dv::Value::of_float(0.0)
                                 : sv.type == dv::Type::kBool
                                     ? dv::Value::of_bool(false)
                                     : dv::Value::of_int(0));
    scratch = scratch_defaults;
    for (const dv::Param& p : cp.program.params)
      bound_params.push_back(params.at(p.name).coerce(p.type));
    const bool multi = cp.program.sites.size() > 1;
    for (const dv::AggSite& site : cp.program.sites) {
      std::size_t bytes = dv::type_wire_bytes(site.elem_type);
      if (multi) bytes += 1;
      if (cp.options.incrementalize && site.multiplicative()) bytes += 1;
      site_wire.push_back(static_cast<std::uint8_t>(bytes));
    }
  }

  dv::EvalContext ctx_for(graph::VertexId v) {
    dv::EvalContext ctx;
    ctx.prog = &cp.program;
    ctx.graph = &gv;
    ctx.fields = {state.data() + static_cast<std::size_t>(v) * stride,
                  stride};
    std::copy(scratch_defaults.begin(), scratch_defaults.end(),
              scratch.begin());
    ctx.scratch = scratch;
    ctx.params = bound_params;
    ctx.site_wire = &site_wire;
    ctx.sink = &sink;
    ctx.vertex = v;
    ctx.has_vertex = true;
    return ctx;
  }

  const dv::Expr& body() const { return *cp.program.stmts[0].body; }

  /// Evaluates the statement body for `v` on the selected tier.
  void run_body(dv::ExecTier tier, dv::EvalContext& ctx) {
    if (tier == dv::ExecTier::kVm)
      vm.eval_root(body(), ctx);
    else
      dv::eval(body(), ctx);
  }

  graph::CsrGraph g;
  graph::GraphView gv{g};
  dv::CompiledProgram cp;
  dv::Vm vm;
  std::size_t stride = 0;
  std::vector<dv::Value> state0, state;
  std::vector<dv::Value> scratch_defaults, scratch;
  std::vector<dv::Value> bound_params;
  std::vector<std::uint8_t> site_wire;
  DevNullSink sink;
};

/// The PageRank recurrence without its aggregation — pure typed arithmetic
/// (const, field, param, graphSize, degree, ÷, ×, +), so the measured gap
/// is exactly expression-dispatch overhead.
constexpr const char* kPrShapedExpr = R"(
param steps : int;
init { local vl : float = 1.0 / graphSize; local pr : float = 0.0 };
iter i {
  vl = 0.15 + 0.85 * ((vl + pr) / graphSize);
  pr = vl / |#out|
} until { i >= steps }
)";

void BM_TierPageRankExprEval(benchmark::State& state) {
  TierFixture fx(kPrShapedExpr, {{"steps", dv::Value::of_int(1)}});
  const dv::ExecTier tier = tier_of(state);
  auto ctx = fx.ctx_for(0);
  for (auto _ : state) {
    fx.run_body(tier, ctx);
    benchmark::DoNotOptimize(ctx.fields.data());
  }
  state.SetLabel(dv::exec_tier_name(tier));
}
BENCHMARK(BM_TierPageRankExprEval)->Arg(0)->Arg(1)->ArgNames({"vm"});

void BM_TierDeltaSendLoop(benchmark::State& state) {
  // Full ΔV PageRank body per vertex: Δ-fold over an empty inbox, the
  // recurrence, then the Δ-send loop over the out-neighbor span. One
  // benchmark iteration sweeps every vertex; state is restored first so
  // noop suppression never converges the sends away.
  TierFixture fx(dv::programs::kPageRank,
                 {{"steps", dv::Value::of_int(1)}});
  const dv::ExecTier tier = tier_of(state);
  for (auto _ : state) {
    state.PauseTiming();
    fx.state = fx.state0;
    state.ResumeTiming();
    for (std::size_t v = 0; v < fx.g.num_vertices(); ++v) {
      auto ctx = fx.ctx_for(static_cast<graph::VertexId>(v));
      fx.run_body(tier, ctx);
    }
    benchmark::DoNotOptimize(fx.sink.count);
  }
  state.SetLabel(dv::exec_tier_name(tier));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.g.num_arcs()));
}
BENCHMARK(BM_TierDeltaSendLoop)->Arg(0)->Arg(1)->ArgNames({"vm"});

void BM_TierDeltaFold(benchmark::State& state) {
  // Receiver side: fold a 16-message Δ-inbox into the memoized
  // accumulator (Eq. 8/9). Sends are suppressed so the fold dominates.
  TierFixture fx(dv::programs::kPageRank,
                 {{"steps", dv::Value::of_int(1)}});
  const dv::ExecTier tier = tier_of(state);
  std::vector<dv::DvMessage> inbox(16);
  for (auto& m : inbox) {
    m.payload = dv::Value::of_float(1e-3);
    m.site = 0;
    m.wire = fx.site_wire[0];
  }
  auto ctx = fx.ctx_for(0);
  ctx.msgs = inbox;
  ctx.suppress_sites = ~std::uint64_t{0};
  for (auto _ : state) {
    fx.run_body(tier, ctx);
    benchmark::DoNotOptimize(ctx.fields.data());
  }
  state.SetLabel(dv::exec_tier_name(tier));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inbox.size()));
}
BENCHMARK(BM_TierDeltaFold)->Arg(0)->Arg(1)->ArgNames({"vm"});

// ---- fold paths ---------------------------------------------------------
//
// The lock-free fold path priced at the edge level: the identical ΔV
// PageRank body swept over every vertex with buffered Δ-sends (message
// construction into a sink) vs atomic folds (CAS into the shared pending
// slot + frontier-bitmap mark, via the VM's kSendDeltaAtomic
// superinstruction). The per-edge difference measured here is the
// constant factor behind bench_stream's epoch-throughput comparison —
// the streaming win comes from the exchange-free superstep shape, not
// from the fold itself being cheaper per edge.

void BM_FoldPathSendLoop(benchmark::State& state) {
  TierFixture fx(dv::programs::kPageRank,
                 {{"steps", dv::Value::of_int(1)}});
  const bool atomic = state.range(0) != 0;
  dv::AtomicFoldTable table;
  dv::AtomicFoldLane lane;
  if (atomic) {
    const dv::AggSite& site = fx.cp.program.sites[0];
    table.route.assign(fx.cp.program.sites.size(), -1);
    table.route[0] = 0;
    table.ops.push_back(site.op);
    table.types.push_back(site.elem_type);
    table.identity.push_back(dv::atomic_fold_bits(
        site.elem_type, dv::agg_identity(site.op, site.elem_type)));
    table.reset(fx.g.num_vertices());
    lane.reset(fx.g.num_vertices(), table.columns());
    fx.vm.specialize_atomic(table.route);
  }
  for (auto _ : state) {
    state.PauseTiming();
    fx.state = fx.state0;
    state.ResumeTiming();
    for (std::size_t v = 0; v < fx.g.num_vertices(); ++v) {
      auto ctx = fx.ctx_for(static_cast<graph::VertexId>(v));
      if (atomic) {
        ctx.atomic = &table;
        ctx.atomic_lane = &lane;
      }
      fx.run_body(dv::ExecTier::kVm, ctx);
    }
    benchmark::DoNotOptimize(atomic ? lane.folds : fx.sink.count);
  }
  state.SetLabel(atomic ? "atomic" : "buffered");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.g.num_arcs()));
}
BENCHMARK(BM_FoldPathSendLoop)->Arg(0)->Arg(1)->ArgNames({"atomic"});

// ---- observability overhead --------------------------------------------
//
// The DESIGN.md §8 contract priced directly: the same VM dispatch loop
// with no metrics shard attached (Arg(0), the production default — every
// hook is a dead null test) vs counting into a live per-lane shard
// (Arg(1)). Arg(0) must match BM_TierPageRankExprEval/vm:1 within noise;
// Arg(1) bounds the cost a metered run pays per dispatched op.

void BM_ObsVmDispatch(benchmark::State& state) {
  TierFixture fx(kPrShapedExpr, {{"steps", dv::Value::of_int(1)}});
  obs::Collector collector(1);
  auto ctx = fx.ctx_for(0);
  ctx.obs = state.range(0) ? &collector.metrics.shard(0) : nullptr;
  for (auto _ : state) {
    fx.run_body(dv::ExecTier::kVm, ctx);
    benchmark::DoNotOptimize(ctx.fields.data());
  }
  state.SetLabel(state.range(0) ? "obs-on" : "obs-off");
}
BENCHMARK(BM_ObsVmDispatch)->Arg(0)->Arg(1)->ArgNames({"obs"});

void BM_ObsDeltaSendLoop(benchmark::State& state) {
  // Full ΔV PageRank body (fold + recurrence + Δ-send loop) with and
  // without metering — the end-to-end shape of the obs-off contract, on
  // the path where the send-loop tallies live.
  TierFixture fx(dv::programs::kPageRank,
                 {{"steps", dv::Value::of_int(1)}});
  obs::Collector collector(1);
  obs::MetricsShard* const shard =
      state.range(0) ? &collector.metrics.shard(0) : nullptr;
  for (auto _ : state) {
    state.PauseTiming();
    fx.state = fx.state0;
    state.ResumeTiming();
    for (std::size_t v = 0; v < fx.g.num_vertices(); ++v) {
      auto ctx = fx.ctx_for(static_cast<graph::VertexId>(v));
      ctx.obs = shard;
      fx.run_body(dv::ExecTier::kVm, ctx);
    }
    benchmark::DoNotOptimize(fx.sink.count);
  }
  state.SetLabel(state.range(0) ? "obs-on" : "obs-off");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.g.num_arcs()));
}
BENCHMARK(BM_ObsDeltaSendLoop)->Arg(0)->Arg(1)->ArgNames({"obs"});

void BM_HandwrittenPageRank(benchmark::State& state) {
  // The native-code equivalent of the interpreter benchmark above; the
  // ratio of the two is the ΔV*-vs-Pregel+ constant factor in Figure 4.
  const auto g = graph::rmat(4096, 32768, 11);
  const auto N = static_cast<double>(g.num_vertices());
  pregel::EngineOptions opts;
  opts.num_workers = 1;
  for (auto _ : state) {
    pregel::Engine<double, SumCombiner> engine(g.num_vertices(), opts);
    std::vector<double> pr(g.num_vertices());
    engine.run(
        [&](auto& ctx, graph::VertexId v, std::span<const double> msgs) {
          if (ctx.superstep() == 0) {
            pr[v] = 1.0 / N;
          } else {
            double sum = 0;
            for (double m : msgs) sum += m;
            pr[v] = 0.15 + 0.85 * (sum / N);
          }
          if (ctx.superstep() + 1 < 30) {
            const auto out = g.out_neighbors(v);
            if (!out.empty()) {
              const double share = pr[v] / static_cast<double>(out.size());
              for (auto u : out) ctx.send(u, share);
            }
          } else {
            ctx.vote_to_halt();
          }
        });
    benchmark::DoNotOptimize(pr.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          30 * 4096);
}
BENCHMARK(BM_HandwrittenPageRank);

}  // namespace

BENCHMARK_MAIN();
