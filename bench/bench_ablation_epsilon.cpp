// A4 — §9 future-work ablation: the ϵ-slop parameter.
//
// A message value counts as changed only when it differs from the most
// recently *sent* value by more than ϵ; ϵ = 0 degenerates to the paper's
// exact scheme. The sweep shows the message/accuracy trade-off and the
// extra per-site last-sent field ϵ > 0 requires.
#include <cmath>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace deltav;
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.05, "dataset scale");
  const int workers =
      static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();

  bench::banner("ϵ-slop sweep (PageRank)", "§9 future work: allowable slop");

  const auto g = graph::make_dataset("livejournal-dg-s", scale);
  const std::map<std::string, dv::Value> params = {
      {"steps", dv::Value::of_int(29)}};

  // Exact reference (ϵ = 0).
  const auto exact_cp = dv::compile(dv::programs::kPageRank, {});
  dv::DvRunOptions ro;
  ro.engine = bench::paper_engine(workers);
  ro.params = params;
  const auto exact = dv::run_program(exact_cp, g, ro);
  const auto exact_vl = exact.field_as_double("vl");

  Table t({"epsilon", "msgs", "vs exact", "max |rank error|", "state B"});
  for (double eps : {0.0, 1e-8, 1e-6, 1e-4, 1e-2}) {
    dv::CompileOptions copts;
    copts.epsilon = eps;
    const auto cp = dv::compile(dv::programs::kPageRank, copts);
    const auto r = dv::run_program(cp, g, ro);
    const auto vl = r.field_as_double("vl");
    double max_err = 0;
    for (std::size_t v = 0; v < vl.size(); ++v)
      max_err = std::max(max_err, std::abs(vl[v] - exact_vl[v]));
    t.row()
        .cell(eps, 8)
        .cell(static_cast<unsigned long long>(
            r.stats.total_messages_sent()))
        .ratio(static_cast<double>(r.stats.total_messages_sent()) /
               static_cast<double>(exact.stats.total_messages_sent()))
        .cell(max_err, 8)
        .cell(static_cast<unsigned long long>(cp.state_bytes()));
  }
  t.print(std::cout);
  std::cout <<
      "\nShape checks: messages fall monotonically with ϵ; error grows\n"
      "with ϵ and is zero at ϵ=0; ϵ>0 adds one 8-byte last-sent field.\n";
  return 0;
}
