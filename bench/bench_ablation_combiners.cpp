// A2 — §2 ablation: sender-side combiners.
//
// Pregel(+) combiners collapse the n messages a worker sends to one
// destination vertex into one. This bench quantifies their effect on
// delivered message counts and simulated network time, for both the
// hand-written PageRank and the compiled ΔV variants (Δ-messages combine
// too — Eq. 11 composes — which the paper's design depends on).
#include <iostream>

#include "algorithms/pagerank.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace deltav;
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.05, "dataset scale");
  const int workers =
      static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();

  bench::banner("Combiner ablation", "§2 (message combiners)");

  const auto g = graph::make_dataset("livejournal-dg-s", scale);

  Table t({"system", "combiner", "msgs sent", "msgs delivered",
           "cross-machine MB", "sim(s)"});

  for (bool combine : {false, true}) {
    algorithms::PageRankOptions o;
    o.engine = bench::paper_engine(workers);
    o.use_combiner = combine;
    const auto r = algorithms::pagerank_pregel(g, o);
    t.row()
        .cell("Pregel+ PR")
        .cell(combine ? "on" : "off")
        .cell(static_cast<unsigned long long>(
            r.stats.total_messages_sent()))
        .cell(static_cast<unsigned long long>(
            r.stats.total_messages_delivered()))
        .cell(static_cast<double>(r.stats.total_cross_machine_bytes()) /
                  1e6,
              2)
        .cell(r.stats.total_sim_seconds(), 3);
  }

  for (bool incremental : {false, true}) {
    for (bool combine : {false, true}) {
      dv::CompileOptions copts;
      copts.incrementalize = incremental;
      const auto cp = dv::compile(dv::programs::kPageRank, copts);
      dv::DvRunOptions o;
      o.engine = bench::paper_engine(workers);
      o.use_combiner = combine;
      o.params = {{"steps", dv::Value::of_int(29)}};
      const auto r = dv::run_program(cp, g, o);
      t.row()
          .cell(incremental ? "ΔV PR" : "ΔV* PR")
          .cell(combine ? "on" : "off")
          .cell(static_cast<unsigned long long>(
              r.stats.total_messages_sent()))
          .cell(static_cast<unsigned long long>(
              r.stats.total_messages_delivered()))
          .cell(static_cast<double>(r.stats.total_cross_machine_bytes()) /
                    1e6,
                2)
          .cell(r.stats.total_sim_seconds(), 3);
    }
  }
  t.print(std::cout);
  std::cout <<
      "\nShape checks: combining never changes results (tested in the unit\n"
      "suite) and cuts delivered counts for all systems; ΔV's Δ-messages\n"
      "remain combinable, so the two optimizations stack.\n";
  return 0;
}
