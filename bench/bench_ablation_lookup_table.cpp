// A1 — §4.2.1 ablation: lookup-table memoization vs. incrementalization.
//
// The paper rejects the "cache every neighbor's value in a per-vertex
// table" design because id-tagged messages grow the wire size and the
// tables inflate memory — "the resulting computation can run even slower
// than the original". This bench measures all three designs on PageRank.
#include <iostream>

#include "algorithms/pagerank.h"
#include "algorithms/pagerank_lookup.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace deltav;
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.05, "dataset scale");
  const int workers =
      static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();

  bench::banner("Meaningful-only messaging: lookup table vs Δ-messages",
                "§4.2.1 (rejected design) vs §4.2.2");

  const auto g = graph::make_dataset("wikipedia-s", scale);

  Table t({"system", "wall(s)", "sim(s)", "msgs", "MB",
           "extra state (MB)"});

  {
    algorithms::PageRankOptions o;
    o.engine = bench::paper_engine(workers);
    o.use_combiner = false;  // baseline sends raw streams
    Timer timer;
    const auto r = algorithms::pagerank_pregel(g, o);
    const auto m = bench::from_stats(r.stats, timer.elapsed_seconds());
    t.row()
        .cell("Pregel+ (plain)")
        .cell(m.wall_seconds, 3)
        .cell(m.sim_seconds, 3)
        .cell(static_cast<unsigned long long>(m.messages))
        .cell(static_cast<double>(m.bytes) / 1e6, 2)
        .cell(0.0, 2);
  }
  {
    algorithms::PageRankLookupOptions o;
    o.engine = bench::paper_engine(workers);
    Timer timer;
    const auto r = algorithms::pagerank_lookup_table(g, o);
    const auto m = bench::from_stats(r.stats, timer.elapsed_seconds());
    t.row()
        .cell("lookup-table (§4.2.1)")
        .cell(m.wall_seconds, 3)
        .cell(m.sim_seconds, 3)
        .cell(static_cast<unsigned long long>(m.messages))
        .cell(static_cast<double>(m.bytes) / 1e6, 2)
        .cell(static_cast<double>(r.table_bytes) / 1e6, 2);
  }
  {
    const auto full = dv::compile(dv::programs::kPageRank, {});
    const auto m = bench::run_dv(
        full, g, {{"steps", dv::Value::of_int(29)}}, workers);
    t.row()
        .cell("ΔV (incrementalized)")
        .cell(m.wall_seconds, 3)
        .cell(m.sim_seconds, 3)
        .cell(static_cast<unsigned long long>(m.messages))
        .cell(static_cast<double>(m.bytes) / 1e6, 2)
        .cell(0.0, 2);
  }
  t.print(std::cout);
  std::cout <<
      "\nShape checks: the lookup table reduces message COUNT like ΔV but\n"
      "pays +50% bytes per message (sender-id tag), loses combinability,\n"
      "and holds per-vertex tables; ΔV gets the same reduction with\n"
      "constant extra state (one accumulator).\n";
  return 0;
}
