// µ2 — the deployment story: interpreted vs. generated-C++ vs. hand-written.
//
// The paper's toolchain emits Pregel+ C++; ours can too (dvc --emit=cpp).
// This bench includes code generated at build time for PageRank (both
// variants) and measures the interpretation tax directly: generated ΔV
// should approach hand-written Pregel+ per-superstep cost while keeping
// the incrementalized message counts — i.e. the paper's Figure-4 ΔV bars,
// without the interpreter constant our default runtime pays.
#include <iostream>

#include "algorithms/pagerank.h"
#include "bench_common.h"
#include "dv_gen_pagerank_dv.h"      // build-time: dvc --emit=cpp
#include "dv_gen_pagerank_dvstar.h"  // build-time: dvc --emit=cpp

int main(int argc, char** argv) {
  using namespace deltav;
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.1, "dataset scale");
  const int workers =
      static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
  const int reps =
      static_cast<int>(args.get_int("reps", 3, "repetitions averaged"));
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();

  bench::banner("Interpreted vs generated-C++ vs hand-written (PageRank)",
                "the paper's compile-to-Pregel+ deployment (§5-§6)");

  const auto g = graph::make_dataset("wikipedia-s", scale);
  const std::map<std::string, dv::Value> params = {
      {"steps", dv::Value::of_int(29)}};

  Table t({"system", "wall(s)", "sim(s)", "msgs", "supersteps"});
  auto emit = [&](const std::string& name, const bench::Metrics& m) {
    t.row()
        .cell(name)
        .cell(m.wall_seconds, 3)
        .cell(m.sim_seconds, 3)
        .cell(static_cast<unsigned long long>(m.messages))
        .cell(static_cast<unsigned long long>(m.supersteps));
  };

  // Interpreted (the default runtime).
  const auto interp_dv = bench::averaged(reps, [&] {
    return bench::run_dv(dv::compile(dv::programs::kPageRank, {}), g,
                         params, workers);
  });
  const auto interp_star = bench::averaged(reps, [&] {
    return bench::run_dv(
        dv::compile(dv::programs::kPageRank,
                    dv::CompileOptions{.incrementalize = false}),
        g, params, workers);
  });

  // Generated C++ (compiled into this binary at build time).
  auto run_gen = [&](auto runner) {
    return bench::averaged(reps, [&] {
      Timer timer;
      const auto r = runner();
      auto m = bench::from_stats(r.stats, timer.elapsed_seconds());
      m.supersteps = r.supersteps;
      return m;
    });
  };
  const auto gen_dv = run_gen([&] {
    dvgen::PageRankDv::Params p;
    p.steps = 29;
    return dvgen::PageRankDv::run(g, p, bench::paper_engine(workers));
  });
  const auto gen_star = run_gen([&] {
    dvgen::PageRankDvStar::Params p;
    p.steps = 29;
    return dvgen::PageRankDvStar::run(g, p, bench::paper_engine(workers));
  });

  // Hand-written Pregel+.
  const auto hand = bench::averaged(reps, [&] {
    algorithms::PageRankOptions o;
    o.iterations = 30;
    o.engine = bench::paper_engine(workers);
    Timer timer;
    const auto r = algorithms::pagerank_pregel(g, o);
    return bench::from_stats(r.stats, timer.elapsed_seconds());
  });

  emit("ΔV interpreted", interp_dv);
  emit("ΔV generated C++", gen_dv);
  emit("ΔV* interpreted", interp_star);
  emit("ΔV* generated C++", gen_star);
  emit("Pregel+ hand-written", hand);
  t.print(std::cout);

  std::cout << "\ninterpretation tax (interpreted / generated wall): ΔV "
            << interp_dv.wall_seconds / gen_dv.wall_seconds << "x, ΔV* "
            << interp_star.wall_seconds / gen_star.wall_seconds << "x\n"
            << "generated ΔV vs hand-written Pregel+ (sim): "
            << hand.sim_seconds / gen_dv.sim_seconds << "x faster\n";

  // Sanity: generated and interpreted variants agree on message counts.
  const bool ok = gen_dv.messages == interp_dv.messages &&
                  gen_star.messages == interp_star.messages;
  std::cout << (ok ? "\nmessage counts: generated == interpreted ✓\n"
                   : "\n*** message count mismatch ***\n");
  return ok ? 0 : 1;
}
