// Streaming epochs: warm incremental re-execution vs cold re-runs.
//
// Drives two until-quiescence programs through a mutation stream of
// small insert-only batches on an R-MAT graph:
//
//   pagerank-eps — a damped PageRank-style contraction compiled with an
//                  ε-slop so it quiesces (until { stable }); graphSize
//                  pins |V|, so the stream mutates edges only;
//   cc           — the paper's connected-components min-label relaxation;
//   sssp-del     — the pure (unguarded) SSSP form (programs::kSsspRetract)
//                  on a forward-window DAG, driven by a deletion-heavy
//                  stream that removes in-edges in the upper half of the
//                  chain. The min site is a Class B retraction-memo
//                  candidate (DESIGN.md §11), so with the default
//                  minmax_memo_k every deletion epoch stays warm: the
//                  k-best memo retracts the lost extremum in O(k) and the
//                  repair wave only walks the downstream cone. A
//                  warm-memo-off row (minmax_memo_k = 0) prices the legacy
//                  behavior, where every deletion-bearing batch falls back
//                  to a cold rebuild; memo-on must beat it and the cold
//                  baseline on summed supersteps (exit-enforced at the
//                  default scale).
//   bfs          — unweighted distances from vertex 0 (programs::kBfs).
//                  Insertions only ever shorten paths, so the guarded min
//                  relax is monotone under this stream and every epoch
//                  resumes warm: the frontier woken by an inserted edge is
//                  the endpoints whose distance can improve, not the graph.
//                  bfs runs on a grid instead of the R-MAT graph: BFS
//                  depth is the whole cost model, and an R-MAT ball is
//                  ~6 hops deep — cold re-execution would be so cheap
//                  that neither the warm-resume nor the restore claim
//                  would measure anything. A 2^⌈s/2⌉ × 2^⌊s/2⌋ grid has
//                  the same |V| with Θ(√|V|) diameter, and its stream
//                  inserts window-local edges (local_insert_stream) so
//                  the end-of-stream graph stays deep.
//
// For each program the same stream is applied to a warm session
// (DvRunner::apply_epoch patches accumulators and wakes only the mutation
// frontier) and to a force_cold session (every batch rebuilds and re-runs
// from scratch — the §9 "recompute on change" strawman). The headline
// quantity is supersteps summed over all epochs: warm must converge in
// fewer, and --tiers=vm,tree must agree on the count (warm parity is part
// of the fuzz contract; here it is visible in the table).
//
// A warm-buffered/warm-atomic pair prices the lock-free fold path
// (DESIGN.md "Fold paths"): the same warm stream forced through the
// buffered message pipeline vs atomic CAS/fetch-add folds with the
// frontier bitmap replacing the exchange scan. cc's integer min
// qualifies for the atomic path outright; pagerank-eps's float + rides
// the ε-tolerant atomic_float opt-in. The atomic path must deliver ≥2×
// epochs/sec on at least one workload at the default scale (exit code
// enforced).
//
// A second block prices persistence (src/dv/persist/): serializing the
// end-of-stream session (snapshot-save), rebuilding a converged session
// from those bytes (snapshot-restore), and the alternative a crashed
// deployment would face — reconverging cold on the final graph
// (cold-reconverge). The state_bytes column carries the snapshot size
// for the save/restore rows. Restoring must be cheaper than
// reconverging (exit code enforced, like the warm-beats-cold check).
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include <iterator>
#include <set>

#include "bench_common.h"
#include "common/rng.h"
#include "dv/programs/programs.h"
#include "dv/streaming/stream_session.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace {

using namespace deltav;

constexpr const char* kPageRankEps = R"(
init { local rank : float = 1.0 };
iter i {
  let s : float = + [ u.rank | u <- #in ] in
  rank = 0.15 + 0.85 * (s / graphSize)
} until { stable }
)";

struct StreamWorkload {
  std::string name;
  dv::CompiledProgram cp;
  graph::CsrGraph graph;
  std::vector<graph::MutationBatch> stream;
  std::map<std::string, dv::Value> params;
  std::string tag;  // graph column in the table/JSON (topology differs)
};

std::vector<graph::MutationBatch> insert_only_stream(std::uint64_t seed,
                                                     std::size_t n,
                                                     std::int64_t batches,
                                                     std::int64_t edits) {
  Rng rng(seed);
  std::vector<graph::MutationBatch> out;
  for (std::int64_t b = 0; b < batches; ++b) {
    graph::MutationBatch mb;
    for (std::int64_t e = 0; e < edits; ++e) {
      const auto u = static_cast<graph::VertexId>(rng.next_below(n));
      const auto v = static_cast<graph::VertexId>(rng.next_below(n));
      if (u == v) continue;
      mb.insert_edge(u, v);
    }
    if (!mb.empty()) out.push_back(std::move(mb));
  }
  return out;
}

/// Insert-only stream whose endpoints are at most `window` ids apart.
/// Uniform random pairs are long-range shortcuts; a few dozen of them
/// collapse a grid's Θ(√|V|) diameter to R-MAT-ball depth and the BFS
/// workload stops measuring anything. Window-local edges still wake a
/// real warm frontier (row-major neighbors a couple of rows away) but
/// leave the end-of-stream graph deep.
std::vector<graph::MutationBatch> local_insert_stream(std::uint64_t seed,
                                                      std::size_t n,
                                                      std::size_t window,
                                                      std::int64_t batches,
                                                      std::int64_t edits) {
  Rng rng(seed);
  std::vector<graph::MutationBatch> out;
  for (std::int64_t b = 0; b < batches; ++b) {
    graph::MutationBatch mb;
    for (std::int64_t e = 0; e < edits; ++e) {
      const auto u = static_cast<graph::VertexId>(rng.next_below(n));
      const std::size_t v = static_cast<std::size_t>(u) + 1 +
                            rng.next_below(window);
      if (v >= n) continue;  // no wrap-around: that IS a long-range edge
      mb.insert_edge(u, static_cast<graph::VertexId>(v));
    }
    if (!mb.empty()) out.push_back(std::move(mb));
  }
  return out;
}

/// Forward-window DAG: a weighted spine u → u+1 plus extra edges
/// u → u+1..u+window, all strictly positive. Hop depth is Θ(|V|/window),
/// so a cold SSSP re-run pays the whole chain every batch while a warm
/// deletion epoch pays only the cone downstream of the cut.
graph::CsrGraph forward_dag(std::size_t n, std::size_t degree,
                            std::size_t window, std::uint64_t seed) {
  Rng rng(seed);
  graph::GraphBuilder b(n, /*directed=*/true);
  b.keep_weights(true);
  b.deduplicate();
  for (std::size_t u = 0; u + 1 < n; ++u)
    b.add_edge(static_cast<graph::VertexId>(u),
               static_cast<graph::VertexId>(u + 1),
               0.5 + rng.next_double());
  const std::size_t extra = degree > 1 ? n * (degree - 1) : 0;
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t u = rng.next_below(n > 1 ? n - 1 : 1);
    const std::size_t v = u + 1 + rng.next_below(window);
    if (v >= n) continue;
    b.add_edge(static_cast<graph::VertexId>(u),
               static_cast<graph::VertexId>(v),
               0.5 + rng.next_double() * 2.0);
  }
  return b.build();
}

/// Deletion-heavy stream for the forward DAG: ~70% of edits remove a
/// random present in-edge of a vertex in the upper half of the chain
/// (keeping the repair cone far from the source), the rest insert
/// window-local forward edges with strictly positive weights — so the
/// graph stays a DAG and the Class B memo's positivity guard holds.
std::vector<graph::MutationBatch> deletion_stream(const graph::CsrGraph& g,
                                                  std::size_t window,
                                                  std::uint64_t seed,
                                                  std::int64_t batches,
                                                  std::int64_t edits) {
  Rng rng(seed);
  const std::size_t n = g.num_vertices();
  std::vector<std::set<graph::VertexId>> in_of(n);
  for (std::size_t v = 0; v < n; ++v)
    for (const graph::VertexId u :
         g.in_neighbors(static_cast<graph::VertexId>(v)))
      in_of[v].insert(u);
  std::vector<graph::MutationBatch> out;
  for (std::int64_t b = 0; b < batches; ++b) {
    graph::MutationBatch mb;
    for (std::int64_t e = 0; e < edits; ++e) {
      const auto dst = static_cast<graph::VertexId>(
          n / 2 + rng.next_below(n - n / 2));
      if (rng.next_bool(0.7) && !in_of[dst].empty()) {
        auto it = in_of[dst].begin();
        std::advance(it, static_cast<long>(
                             rng.next_below(in_of[dst].size())));
        mb.remove_edge(*it, dst);
        in_of[dst].erase(it);
      } else {
        const std::size_t lo = dst > window ? dst - window : 0;
        if (lo >= dst) continue;
        const auto src = static_cast<graph::VertexId>(
            lo + rng.next_below(dst - lo));
        mb.insert_edge(src, dst, 0.5 + rng.next_double() * 2.0);
        in_of[dst].insert(src);
      }
    }
    if (!mb.empty()) out.push_back(std::move(mb));
  }
  return out;
}

/// Converges a session, applies the whole stream, and reports the summed
/// epoch cost (supersteps/messages across every apply(); wall-clock of
/// the apply loop only — epoch 0 is identical for warm and cold).
bench::Metrics run_stream(const StreamWorkload& w, dv::ExecTier tier,
                          int workers, bool force_cold,
                          dv::FoldPath fold = dv::FoldPath::kAuto,
                          bool atomic_float = false,
                          std::size_t* warm_epochs = nullptr,
                          obs::Collector* collector = nullptr,
                          std::string* fold_label = nullptr,
                          std::size_t memo_k = 8) {
  dv::streaming::SessionOptions so;
  so.minmax_memo_k = memo_k;
  so.run.engine = bench::paper_engine(workers);
  so.run.params = w.params;
  // Warm epochs wake a handful of vertices; the work-queue scheduler is
  // the streaming-appropriate choice (§9 halt-by-default) and applies to
  // every fold path alike. The differential fuzzer pins schedule modes
  // against each other, so this changes cost, never results.
  so.run.engine.schedule = pregel::ScheduleMode::kWorkQueue;
  so.run.tier = tier;
  so.run.collector = collector;
  so.run.fold_path = fold;
  so.run.atomic_float = atomic_float;
  so.force_cold = force_cold;
  const auto s = dv::streaming::make_stream_session(w.cp, w.graph, so);
  if (fold_label) *fold_label = s->atomic_path() ? "atomic" : "buffered";
  s->converge();
  bench::Metrics m;
  if (warm_epochs) *warm_epochs = 0;
  Timer t;
  for (const graph::MutationBatch& b : w.stream) {
    const dv::streaming::SessionEpoch ep = s->apply(b);
    m.supersteps += ep.stats.supersteps;
    m.messages += ep.stats.messages;
    if (warm_epochs && ep.warm) ++*warm_epochs;
  }
  m.wall_seconds = t.elapsed_seconds();
  m.state_bytes = w.cp.state_bytes();
  return m;
}

/// Drives a warm session to the end of the stream — the state a
/// deployment would want to survive a restart with.
std::unique_ptr<dv::streaming::DvStreamSession> end_of_stream_session(
    const StreamWorkload& w, dv::ExecTier tier, int workers) {
  dv::streaming::SessionOptions so;
  so.run.engine = bench::paper_engine(workers);
  so.run.params = w.params;
  so.run.tier = tier;
  auto s = dv::streaming::make_stream_session(w.cp, w.graph, so);
  s->converge();
  for (const graph::MutationBatch& b : w.stream) s->apply(b);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    const auto scale =
        args.get_int("scale", 10, "R-MAT vertices = 2^scale");
    const auto degree =
        args.get_int("degree", 4, "R-MAT edges per vertex");
    const int workers =
        static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
    const int reps = static_cast<int>(
        args.get_int("reps", 3, "repetitions (min wall-clock kept)"));
    const auto batches =
        args.get_int("batches", 8, "mutation batches per stream");
    const auto edits =
        args.get_int("edits", 4, "edge insertions per batch");
    const auto seed = static_cast<std::uint64_t>(
        args.get_int("seed", 42, "graph and stream seed"));
    const std::string tiers_flag = args.get_string(
        "tiers", "vm", "execution tiers to run: vm, tree, or vm,tree");
    bench::JsonReport json;
    json.set_path(args.get_string("json", "", "write JSON rows here"));
    // Local meter fed by the warm-session runs only (the force_cold and
    // persistence passes stay unmetered so warm-path counters — memo
    // hits, Δ-messages, suppressed sends — are not diluted).
    obs::Collector collector;
    if (args.help_requested()) {
      std::cout << args.help();
      return 0;
    }
    args.check_unused();

    bench::banner("streaming epochs: warm vs cold re-execution",
                  "§9 dynamic graphs (DESIGN.md \"streaming epochs\")");

    const auto n = static_cast<std::size_t>(1) << scale;
    const auto m = n * static_cast<std::size_t>(degree);
    const std::string graph_tag =
        "rmat-2^" + std::to_string(scale) + "x" + std::to_string(degree);

    std::vector<StreamWorkload> workloads;
    {
      dv::CompileOptions co;
      co.epsilon = 1e-10;
      graph::RmatOptions ro;
      workloads.push_back({"pagerank-eps", dv::compile(kPageRankEps, co),
                           graph::rmat(n, m, seed, ro),
                           insert_only_stream(seed + 1, n, batches, edits),
                           {},
                           graph_tag});
    }
    {
      graph::RmatOptions ro;
      ro.directed = false;
      workloads.push_back(
          {"cc", dv::compile(dv::programs::kConnectedComponents, {}),
           graph::rmat(n, m, seed, ro),
           insert_only_stream(seed + 2, n, batches, edits), {}, graph_tag});
    }
    {
      // Same |V| as the R-MAT workloads, Θ(√|V|) diameter (see the header
      // comment): source 0 sits in a corner, so cold BFS pays ~rows+cols
      // supersteps while a warm epoch pays only the shortcut frontier.
      const std::size_t rows = static_cast<std::size_t>(1)
                               << ((scale + 1) / 2);
      const std::size_t cols = static_cast<std::size_t>(1) << (scale / 2);
      workloads.push_back({"bfs", dv::compile(dv::programs::kBfs, {}),
                           graph::grid(rows, cols),
                           local_insert_stream(seed + 3, n, /*window=*/
                                               3 * cols, batches, edits),
                           {{"source", dv::Value::of_int(0)}},
                           "grid-" + std::to_string(rows) + "x" +
                               std::to_string(cols)});
    }
    {
      // Deletion-heavy SSSP over a forward-window DAG (header comment):
      // the retraction-memo showcase. Same |V| as the R-MAT workloads,
      // Θ(|V|/window) hop depth.
      const std::size_t window = 8;
      const graph::CsrGraph dag = forward_dag(n, degree, window, seed + 4);
      auto stream =
          deletion_stream(dag, window, seed + 5, batches, edits);
      workloads.push_back({"sssp-del",
                           dv::compile(dv::programs::kSsspRetract, {}),
                           dag, std::move(stream),
                           {{"source", dv::Value::of_int(0)}},
                           "fdag-2^" + std::to_string(scale) + "w" +
                               std::to_string(window)});
    }

    Table t({"graph", "algorithm", "system", "tier", "fold", "wall(s)",
             "msgs", "supersteps", "warm epochs"});
    bool warm_wins = true;
    bool restore_wins = true;
    bool memo_wins = true;
    double best_atomic_speedup = 0;
    for (const StreamWorkload& w : workloads) {
      for (const dv::ExecTier tier : bench::parse_tiers(tiers_flag)) {
        std::size_t warm_epochs = 0;
        std::string warm_fold;
        const bench::Metrics warm = bench::averaged(reps, [&] {
          return run_stream(w, tier, workers, /*force_cold=*/false,
                            dv::FoldPath::kAuto, /*atomic_float=*/false,
                            &warm_epochs, &collector, &warm_fold);
        });
        const bench::Metrics cold = bench::averaged(reps, [&] {
          return run_stream(w, tier, workers, /*force_cold=*/true);
        });
        for (const auto& [system, met, we] :
             {std::tuple{"warm", &warm, warm_epochs},
              std::tuple{"cold", &cold, std::size_t{0}}}) {
          t.row()
              .cell(w.tag)
              .cell(w.name)
              .cell(system)
              .cell(dv::exec_tier_name(tier))
              .cell(warm_fold)
              .cell(met->wall_seconds, 4)
              .cell(static_cast<unsigned long long>(met->messages))
              .cell(static_cast<unsigned long long>(met->supersteps))
              .cell(static_cast<unsigned long long>(we));
          json.add(w.tag, w.name, system, dv::exec_tier_name(tier),
                   *met, warm_fold);
        }
        warm_wins = warm_wins && warm.supersteps < cold.supersteps &&
                    warm_epochs == w.stream.size();

        // Retraction-memo pricing (sssp-del only): the same stream with
        // minmax_memo_k = 0, where every deletion-bearing batch trips the
        // legacy min/max blocker and rebuilds cold inside apply(). The
        // memo-on "warm" row above must beat this on summed supersteps
        // (exit-enforced at the default scale with the other claims).
        if (w.name == "sssp-del") {
          std::size_t nomemo_warm = 0;
          const bench::Metrics warm_nomemo = bench::averaged(reps, [&] {
            return run_stream(w, tier, workers, /*force_cold=*/false,
                              dv::FoldPath::kAuto, /*atomic_float=*/false,
                              &nomemo_warm, nullptr, nullptr,
                              /*memo_k=*/0);
          });
          t.row()
              .cell(w.tag)
              .cell(w.name)
              .cell("warm-memo-off")
              .cell(dv::exec_tier_name(tier))
              .cell(warm_fold)
              .cell(warm_nomemo.wall_seconds, 4)
              .cell(static_cast<unsigned long long>(warm_nomemo.messages))
              .cell(
                  static_cast<unsigned long long>(warm_nomemo.supersteps))
              .cell(static_cast<unsigned long long>(nomemo_warm));
          json.add(w.tag, w.name, "warm-memo-off",
                   dv::exec_tier_name(tier), warm_nomemo, warm_fold);
          memo_wins =
              memo_wins && warm.supersteps < warm_nomemo.supersteps;
        }

        // Fold-path pair: the same warm stream forced through the
        // buffered message pipeline vs the lock-free atomic path. CC's
        // integer min qualifies outright; pagerank-eps's float + needs
        // the ε-tolerant atomic_float opt-in. Epochs/sec is the headline:
        // the atomic path must be ≥2× on at least one workload at the
        // default scale (exit-enforced below).
        const bool opt_in = w.name == "pagerank-eps";
        const bench::Metrics warm_buf = bench::averaged(reps, [&] {
          return run_stream(w, tier, workers, /*force_cold=*/false,
                            dv::FoldPath::kBuffered);
        });
        const bench::Metrics warm_atomic = bench::averaged(reps, [&] {
          return run_stream(w, tier, workers, /*force_cold=*/false,
                            dv::FoldPath::kAtomic, opt_in);
        });
        for (const auto& [system, fold, met] :
             {std::tuple{"warm-buffered", "buffered", &warm_buf},
              std::tuple{"warm-atomic", "atomic", &warm_atomic}}) {
          t.row()
              .cell(w.tag)
              .cell(w.name)
              .cell(system)
              .cell(dv::exec_tier_name(tier))
              .cell(fold)
              .cell(met->wall_seconds, 4)
              .cell(static_cast<unsigned long long>(met->messages))
              .cell(static_cast<unsigned long long>(met->supersteps))
              .cell(static_cast<unsigned long long>(w.stream.size()));
          json.add(w.tag, w.name, system, dv::exec_tier_name(tier),
                   *met, fold);
        }
        best_atomic_speedup =
            std::max(best_atomic_speedup,
                     warm_buf.wall_seconds / warm_atomic.wall_seconds);

        // Persistence: price a restart. snapshot-save serializes the
        // end-of-stream session, snapshot-restore rebuilds a converged
        // session from those bytes, cold-reconverge re-runs the program
        // from scratch on the same final graph. state_bytes is the
        // snapshot size on the save/restore rows.
        const auto end = end_of_stream_session(w, tier, workers);
        const std::vector<std::uint8_t> snap = end->save_bytes();
        dv::streaming::SessionOptions so;
        so.run.engine = bench::paper_engine(workers);
        so.run.params = w.params;
        so.run.tier = tier;
        const bench::Metrics save = bench::averaged(reps, [&] {
          bench::Metrics m;
          Timer ts;
          const auto bytes = end->save_bytes();
          m.wall_seconds = ts.elapsed_seconds();
          m.state_bytes = bytes.size();
          return m;
        });
        const bench::Metrics restore = bench::averaged(reps, [&] {
          bench::Metrics m;
          Timer ts;
          const auto r =
              dv::streaming::DvStreamSession::restore_bytes(w.cp, snap, so);
          m.wall_seconds = ts.elapsed_seconds();
          m.state_bytes = snap.size();
          return m;
        });
        const graph::CsrGraph end_csr = end->graph().materialize();
        const bench::Metrics coldre = bench::averaged(reps, [&] {
          bench::Metrics m;
          Timer ts;
          const auto c =
              dv::streaming::make_stream_session(w.cp, end_csr, so);
          const dv::DvRunResult r = c->converge();
          m.wall_seconds = ts.elapsed_seconds();
          m.supersteps = r.supersteps;
          m.messages = r.stats.total_messages_sent();
          m.state_bytes = w.cp.state_bytes();
          return m;
        });
        for (const auto& [system, met] :
             {std::pair{"snapshot-save", &save},
              std::pair{"snapshot-restore", &restore},
              std::pair{"cold-reconverge", &coldre}}) {
          t.row()
              .cell(w.tag)
              .cell(w.name)
              .cell(system)
              .cell(dv::exec_tier_name(tier))
              .cell("-")
              .cell(met->wall_seconds, 4)
              .cell(static_cast<unsigned long long>(met->messages))
              .cell(static_cast<unsigned long long>(met->supersteps))
              .cell(0ull);
          json.add(w.tag, w.name, system, dv::exec_tier_name(tier),
                   *met);
        }
        restore_wins =
            restore_wins && restore.wall_seconds < coldre.wall_seconds;
      }
    }
    t.print(std::cout);
    std::cout << "\nShape checks: every batch resumes warm; warm supersteps"
                 " < cold supersteps\nfor each (algorithm, tier); tiers"
                 " agree on superstep counts; snapshot-restore\nwall-clock"
                 " < cold-reconverge wall-clock; warm-atomic beats"
                 " warm-buffered\nby >=2x epochs/sec on at least one"
                 " workload (best: "
              << std::setprecision(3) << best_atomic_speedup << "x).\n";
    json.set_metrics(collector.metrics.snapshot().counters);
    json.write("bench_stream");
    if (!warm_wins) {
      std::cerr << "bench_stream: warm epochs did not beat cold re-runs\n";
      return 1;
    }
    // Wall-clock margins below the default scale are measurement noise
    // (both sides are dominated by session construction), so the
    // restore-beats-reconvergence claim is only enforced from the
    // default scale up; the rows are still emitted at any scale.
    if (!restore_wins && scale >= 10) {
      std::cerr << "bench_stream: snapshot restore did not beat cold"
                   " reconvergence\n";
      return 1;
    }
    // Supersteps are deterministic, but at tiny scales a deletion stream
    // can degenerate (few batches carry removals), so the memo claim is
    // enforced from the default scale up like the wall-clock ones.
    if (!memo_wins && scale >= 10) {
      std::cerr << "bench_stream: retraction-memo epochs did not beat the"
                   " memo-off fallback on supersteps\n";
      return 1;
    }
    // Same noise gate as above: at tiny scales both fold paths are
    // dominated by per-superstep barrier costs, so the throughput claim
    // is enforced from the default scale up only.
    if (best_atomic_speedup < 2.0 && scale >= 10) {
      std::cerr << "bench_stream: atomic fold path did not reach 2x"
                   " epochs/sec over buffered (best "
                << best_atomic_speedup << "x)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_stream: " << e.what() << "\n";
    return 2;
  }
}
