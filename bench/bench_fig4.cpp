// F4 — Figure 4: execution time (left) and number of messages sent (right)
// for PageRank, SSSP and HITS on the Wikipedia and LiveJournal-DG
// stand-ins, comparing ΔV, ΔV* and hand-written Pregel+.
//
// Paper's reported shape: Pregel+ always beats ΔV* (compiled programs pay
// interpretation overhead); ΔV beats both on PR (avg 4.4× vs Pregel+, 5.8×
// fewer messages) and HITS (1.9× both); SSSP sends exactly the same number
// of messages in all three systems and ΔV shows no slowdown.
//
// Beyond the paper's three algorithms, the workload suite adds BFS on the
// directed stand-ins and k-core / MIS on the undirected ones (Facebook,
// LiveJournal-UG), each with the same ΔV / ΔV* / Pregel+ triple. All
// three are halt-dominated fixpoints, so they exercise the opposite
// regime from PageRank's dense rounds.
//
// The --tiers axis additionally runs the compiled programs on the ΔV
// execution substrates (bytecode VM, reference tree interpreter, and the
// AOT-compiled native tier) so the interpretation tax is tracked
// end-to-end; --json writes the rows for CI perf tracking (BENCH_fig4.json
// is the committed baseline). When the native tier is requested,
// --enforce_native (default on) exits nonzero unless native wall-clock is
// at least as fast as the VM on the ΔV PageRank rows — the native tier's
// reason to exist.
#include <iostream>

#include "algorithms/bfs.h"
#include "algorithms/hits.h"
#include "algorithms/kcore.h"
#include "algorithms/mis.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "bench_common.h"
#include "dv/codegen/native_module.h"

namespace {

using namespace deltav;

constexpr int kPrSupersteps = 30;  // Figure-1 convention
constexpr int kHitsRounds = 5;     // paper: 7 = 5 + 2 init steps
constexpr int kCoreK = 3;          // k-core threshold for the bench rows

bench::Metrics run_pagerank_hand(const graph::CsrGraph& g, int workers) {
  algorithms::PageRankOptions o;
  o.iterations = kPrSupersteps;
  o.engine = bench::paper_engine(workers);
  Timer t;
  const auto r = algorithms::pagerank_pregel(g, o);
  auto m = bench::from_stats(r.stats, t.elapsed_seconds());
  m.state_bytes = 8;
  return m;
}

bench::Metrics run_sssp_hand(const graph::CsrGraph& g, int workers) {
  algorithms::SsspOptions o;
  o.source = 0;
  o.engine = bench::paper_engine(workers);
  Timer t;
  const auto r = algorithms::sssp_pregel(g, o);
  return bench::from_stats(r.stats, t.elapsed_seconds());
}

bench::Metrics run_hits_hand(const graph::CsrGraph& g, int workers) {
  algorithms::HitsOptions o;
  o.iterations = kHitsRounds;
  o.engine = bench::paper_engine(workers);
  Timer t;
  const auto r = algorithms::hits_pregel(g, o);
  return bench::from_stats(r.stats, t.elapsed_seconds());
}

bench::Metrics run_bfs_hand(const graph::CsrGraph& g, int workers) {
  algorithms::BfsOptions o;
  o.source = 0;
  o.engine = bench::paper_engine(workers);
  Timer t;
  const auto r = algorithms::bfs_pregel(g, o);
  return bench::from_stats(r.stats, t.elapsed_seconds());
}

bench::Metrics run_kcore_hand(const graph::CsrGraph& g, int workers) {
  algorithms::KCoreOptions o;
  o.k = kCoreK;
  o.engine = bench::paper_engine(workers);
  Timer t;
  const auto r = algorithms::kcore_pregel(g, o);
  return bench::from_stats(r.stats, t.elapsed_seconds());
}

bench::Metrics run_mis_hand(const graph::CsrGraph& g, int workers) {
  algorithms::MisOptions o;
  o.engine = bench::paper_engine(workers);
  Timer t;
  const auto r = algorithms::mis_pregel(g, o);
  return bench::from_stats(r.stats, t.elapsed_seconds());
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale =
      args.get_double("scale", 0.2, "dataset scale factor (1.0 = full)");
  const int workers =
      static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
  const int reps = static_cast<int>(
      args.get_int("reps", 3, "repetitions averaged (paper: 3)"));
  const std::string tiers_flag = args.get_string(
      "tiers", "vm,tree",
      "ΔV execution tiers to run (comma-joined vm, tree, native)");
  const bool enforce_native = args.get_bool(
      "enforce_native", true,
      "when the native tier runs, exit nonzero unless native wall-clock "
      "beats (or ties) the VM on the ΔV PageRank rows");
  const std::string json_path = args.get_string(
      "json", "", "write machine-readable rows to this path");
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();
  std::vector<dv::ExecTier> tiers = bench::parse_tiers(tiers_flag);
  if (const std::string& why = dv::native::native_unavailable_reason();
      !why.empty()) {
    const auto it =
        std::find(tiers.begin(), tiers.end(), dv::ExecTier::kNative);
    if (it != tiers.end()) {
      std::cout << "note: dropping native tier (" << why << ")\n";
      tiers.erase(it);
      DV_CHECK_MSG(!tiers.empty(), "--tiers named only the unavailable "
                                   "native tier");
    }
  }

  bench::banner("Runtime and messages: PG / SSSP / HITS",
                "Figure 4 (Wikipedia & LiveJournal-DG, ΔV vs ΔV* vs "
                "Pregel+)");

  Table t = bench::make_metrics_table();
  bench::JsonReport json;
  json.set_path(json_path);
  // Local (never globally installed) meter for the compiled runs; the
  // JSON report carries its aggregate counters as the "metrics" object.
  obs::Collector collector;
  struct Ratio {
    std::string graph, algo;
    double msg_reduction, star_speedup_sim;
  };
  std::vector<Ratio> ratios;
  struct TierRatio {
    std::string graph, algo, system;
    double vm_speedup;  // wall(tree) / wall(vm)
  };
  std::vector<TierRatio> tier_ratios;
  struct NativeRatio {
    std::string graph, algo, system;
    double native_speedup;  // wall(vm) / wall(native)
    double vm_wall, native_wall;
  };
  std::vector<NativeRatio> native_ratios;

  // Runs one compiled (ΔV, ΔV*) pair across the tier axis, recording
  // table rows, JSON rows and the two ratio series.
  const auto bench_pair = [&](const std::string& ds, const std::string& algo,
                              const dv::CompiledProgram& full,
                              const dv::CompiledProgram& star,
                              const graph::CsrGraph& g,
                              const std::map<std::string, dv::Value>& params) {
    bench::Metrics full_by_tier[3], star_by_tier[3];
    bool have[3] = {false, false, false};
    for (const dv::ExecTier tier : tiers) {
      // Progress on (unbuffered) stderr: the table itself only prints at
      // the end, which makes long runs on slow boxes impossible to follow.
      std::cerr << "[fig4] " << ds << " / " << algo << " / "
                << dv::exec_tier_name(tier) << "\n";
      const auto m_full = bench::averaged(reps, [&] {
        return bench::run_dv(full, g, params, workers, tier, &collector);
      });
      const auto m_star = bench::averaged(reps, [&] {
        return bench::run_dv(star, g, params, workers, tier, &collector);
      });
      const char* tn = dv::exec_tier_name(tier);
      bench::add_row(t, ds, algo, "DV", m_full, tn);
      bench::add_row(t, ds, algo, "DV*", m_star, tn);
      json.add(ds, algo, "DV", tn, m_full);
      json.add(ds, algo, "DV*", tn, m_star);
      const auto ti = static_cast<std::size_t>(tier);
      full_by_tier[ti] = m_full;
      star_by_tier[ti] = m_star;
      have[ti] = true;
      if (tier == dv::ExecTier::kVm)
        ratios.push_back({ds, algo,
                          static_cast<double>(m_star.messages) /
                              static_cast<double>(m_full.messages),
                          m_star.sim_seconds / m_full.sim_seconds});
    }
    const auto tree = static_cast<std::size_t>(dv::ExecTier::kTree);
    const auto vm = static_cast<std::size_t>(dv::ExecTier::kVm);
    const auto nat = static_cast<std::size_t>(dv::ExecTier::kNative);
    if (have[tree] && have[vm]) {
      tier_ratios.push_back({ds, algo, "DV",
                             full_by_tier[tree].wall_seconds /
                                 full_by_tier[vm].wall_seconds});
      tier_ratios.push_back({ds, algo, "DV*",
                             star_by_tier[tree].wall_seconds /
                                 star_by_tier[vm].wall_seconds});
    }
    if (have[nat] && have[vm]) {
      native_ratios.push_back({ds, algo, "DV",
                               full_by_tier[vm].wall_seconds /
                                   full_by_tier[nat].wall_seconds,
                               full_by_tier[vm].wall_seconds,
                               full_by_tier[nat].wall_seconds});
      native_ratios.push_back({ds, algo, "DV*",
                               star_by_tier[vm].wall_seconds /
                                   star_by_tier[nat].wall_seconds,
                               star_by_tier[vm].wall_seconds,
                               star_by_tier[nat].wall_seconds});
    }
  };

  const auto compile_both = [](const char* src) {
    return std::pair(dv::compile(src, {}),
                     dv::compile(src, dv::CompileOptions{
                                          .incrementalize = false}));
  };

  for (const char* ds : {"wikipedia-s", "livejournal-dg-s"}) {
    const auto g = graph::make_dataset(ds, scale);
    const auto gw = graph::make_dataset(ds, scale, /*weighted=*/true);

    // ---- PageRank ----
    {
      const auto [full, star] = compile_both(dv::programs::kPageRank);
      const std::map<std::string, dv::Value> params = {
          {"steps", dv::Value::of_int(kPrSupersteps - 1)}};
      bench_pair(ds, "PageRank", full, star, g, params);
      const auto m_hand =
          bench::averaged(reps, [&] { return run_pagerank_hand(g, workers); });
      bench::add_row(t, ds, "PageRank", "Pregel+", m_hand, "-");
      json.add(ds, "PageRank", "Pregel+", "-", m_hand);
    }

    // ---- SSSP ----
    {
      const auto [full, star] = compile_both(dv::programs::kSssp);
      const std::map<std::string, dv::Value> params = {
          {"source", dv::Value::of_int(0)}};
      bench_pair(ds, "SSSP", full, star, gw, params);
      const auto m_hand =
          bench::averaged(reps, [&] { return run_sssp_hand(gw, workers); });
      bench::add_row(t, ds, "SSSP", "Pregel+", m_hand, "-");
      json.add(ds, "SSSP", "Pregel+", "-", m_hand);
    }

    // ---- HITS ----
    {
      const auto [full, star] = compile_both(dv::programs::kHits);
      const std::map<std::string, dv::Value> params = {
          {"steps", dv::Value::of_int(kHitsRounds)}};
      bench_pair(ds, "HITS", full, star, g, params);
      const auto m_hand =
          bench::averaged(reps, [&] { return run_hits_hand(g, workers); });
      bench::add_row(t, ds, "HITS", "Pregel+", m_hand, "-");
      json.add(ds, "HITS", "Pregel+", "-", m_hand);
    }

    // ---- BFS ----
    {
      const auto [full, star] = compile_both(dv::programs::kBfs);
      const std::map<std::string, dv::Value> params = {
          {"source", dv::Value::of_int(0)}};
      bench_pair(ds, "BFS", full, star, g, params);
      const auto m_hand =
          bench::averaged(reps, [&] { return run_bfs_hand(g, workers); });
      bench::add_row(t, ds, "BFS", "Pregel+", m_hand, "-");
      json.add(ds, "BFS", "Pregel+", "-", m_hand);
    }
  }

  // k-core and MIS are defined on undirected graphs (kKCore folds over
  // #neighbors, MIS over the low→high orientation), so they run on the
  // undirected stand-ins.
  for (const char* ds : {"facebook-s", "livejournal-ug-s"}) {
    const auto g = graph::make_dataset(ds, scale);

    // ---- k-core ----
    {
      const auto [full, star] = compile_both(dv::programs::kKCore);
      // `rounds` is the explicit peel budget, not the graph size: the ΔV*
      // variant re-stores (and therefore re-sends) every survivor each
      // round, so it can never reach message quiescence and runs the full
      // budget. ΔV detects the fixpoint via suppressed no-change sends and
      // exits after ~6 supersteps regardless; the gap between the two is
      // exactly the convergence-detection dividend of incrementalization.
      // Peeling depth on these power-law graphs is ≤6; 32 is ample slack.
      const std::map<std::string, dv::Value> params = {
          {"k", dv::Value::of_int(kCoreK)},
          {"rounds", dv::Value::of_int(32)}};
      bench_pair(ds, "k-core", full, star, g, params);
      const auto m_hand =
          bench::averaged(reps, [&] { return run_kcore_hand(g, workers); });
      bench::add_row(t, ds, "k-core", "Pregel+", m_hand, "-");
      json.add(ds, "k-core", "Pregel+", "-", m_hand);
    }

    // ---- MIS ----
    {
      const auto [full, star] = compile_both(dv::programs::kMis);
      // The ΔV program consumes the low→high orientation; the Pregel+
      // baseline takes the undirected graph directly. Same vertex set,
      // same lexicographically-first MIS (algorithms/mis.h).
      const auto oriented = algorithms::orient_low_high(g);
      bench_pair(ds, "MIS", full, star, oriented, {});
      const auto m_hand =
          bench::averaged(reps, [&] { return run_mis_hand(g, workers); });
      bench::add_row(t, ds, "MIS", "Pregel+", m_hand, "-");
      json.add(ds, "MIS", "Pregel+", "-", m_hand);
    }
  }
  t.print(std::cout);

  std::cout << "\nIncrementalization effect (ΔV* / ΔV, vm tier):\n";
  Table rt({"graph", "algorithm", "message reduction", "sim-time speedup"});
  for (const auto& r : ratios)
    rt.row().cell(r.graph).cell(r.algo).ratio(r.msg_reduction).ratio(
        r.star_speedup_sim);
  rt.print(std::cout);

  if (!tier_ratios.empty()) {
    std::cout << "\nInterpretation tax (tree / vm wall-clock):\n";
    Table tt({"graph", "algorithm", "system", "vm speedup"});
    for (const auto& r : tier_ratios)
      tt.row().cell(r.graph).cell(r.algo).cell(r.system).ratio(r.vm_speedup);
    tt.print(std::cout);
  }

  if (!native_ratios.empty()) {
    std::cout << "\nAOT payoff (vm / native wall-clock):\n";
    Table nt({"graph", "algorithm", "system", "native speedup"});
    for (const auto& r : native_ratios)
      nt.row().cell(r.graph).cell(r.algo).cell(r.system).ratio(
          r.native_speedup);
    nt.print(std::cout);
  }

  std::cout <<
      "\nShape checks (paper §7.2): PR and HITS show multi-x message\n"
      "reduction and speedup; SSSP shows 1.00x (identical messages) and\n"
      "no slowdown. Scale=" << scale << ".\n";
  json.set_metrics(collector.metrics.snapshot().counters);
  json.write("fig4");

  // Perf gate: the native tier must never lose to the VM on the workload
  // it was built for (ΔV PageRank — body-dominated, fold-heavy). Timings
  // are min-of-reps, so the comparison is noise-robust; a small slack
  // absorbs scheduler jitter on tiny scales without letting a real
  // regression through.
  if (enforce_native) {
    bool ok = true;
    for (const auto& r : native_ratios) {
      if (r.algo != "PageRank" || r.system != "DV") continue;
      if (r.native_wall > r.vm_wall * 1.05) {
        std::cout << "ENFORCEMENT FAIL: " << r.graph
                  << " PageRank DV native wall " << r.native_wall
                  << "s slower than vm " << r.vm_wall << "s\n";
        ok = false;
      }
    }
    if (!ok) return 1;
  }
  return 0;
}
