// F4 — Figure 4: execution time (left) and number of messages sent (right)
// for PageRank, SSSP and HITS on the Wikipedia and LiveJournal-DG
// stand-ins, comparing ΔV, ΔV* and hand-written Pregel+.
//
// Paper's reported shape: Pregel+ always beats ΔV* (compiled programs pay
// interpretation overhead); ΔV beats both on PR (avg 4.4× vs Pregel+, 5.8×
// fewer messages) and HITS (1.9× both); SSSP sends exactly the same number
// of messages in all three systems and ΔV shows no slowdown.
#include <iostream>

#include "algorithms/hits.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "bench_common.h"

namespace {

using namespace deltav;

constexpr int kPrSupersteps = 30;  // Figure-1 convention
constexpr int kHitsRounds = 5;     // paper: 7 = 5 + 2 init steps

bench::Metrics run_pagerank_hand(const graph::CsrGraph& g, int workers) {
  algorithms::PageRankOptions o;
  o.iterations = kPrSupersteps;
  o.engine = bench::paper_engine(workers);
  Timer t;
  const auto r = algorithms::pagerank_pregel(g, o);
  auto m = bench::from_stats(r.stats, t.elapsed_seconds());
  m.state_bytes = 8;
  return m;
}

bench::Metrics run_sssp_hand(const graph::CsrGraph& g, int workers) {
  algorithms::SsspOptions o;
  o.source = 0;
  o.engine = bench::paper_engine(workers);
  Timer t;
  const auto r = algorithms::sssp_pregel(g, o);
  return bench::from_stats(r.stats, t.elapsed_seconds());
}

bench::Metrics run_hits_hand(const graph::CsrGraph& g, int workers) {
  algorithms::HitsOptions o;
  o.iterations = kHitsRounds;
  o.engine = bench::paper_engine(workers);
  Timer t;
  const auto r = algorithms::hits_pregel(g, o);
  return bench::from_stats(r.stats, t.elapsed_seconds());
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale =
      args.get_double("scale", 0.2, "dataset scale factor (1.0 = full)");
  const int workers =
      static_cast<int>(args.get_int("workers", 4, "engine worker threads"));
  const int reps = static_cast<int>(
      args.get_int("reps", 3, "repetitions averaged (paper: 3)"));
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();

  bench::banner("Runtime and messages: PG / SSSP / HITS",
                "Figure 4 (Wikipedia & LiveJournal-DG, ΔV vs ΔV* vs "
                "Pregel+)");

  Table t = bench::make_metrics_table();
  struct Ratio {
    std::string graph, algo;
    double msg_reduction, star_speedup_sim;
  };
  std::vector<Ratio> ratios;

  for (const char* ds : {"wikipedia-s", "livejournal-dg-s"}) {
    const auto g = graph::make_dataset(ds, scale);
    const auto gw = graph::make_dataset(ds, scale, /*weighted=*/true);

    const auto compile_both = [](const char* src) {
      return std::pair(dv::compile(src, {}),
                       dv::compile(src, dv::CompileOptions{
                                            .incrementalize = false}));
    };

    // ---- PageRank ----
    {
      const auto [full, star] = compile_both(dv::programs::kPageRank);
      const std::map<std::string, dv::Value> params = {
          {"steps", dv::Value::of_int(kPrSupersteps - 1)}};
      const auto m_full = bench::averaged(
          reps, [&] { return bench::run_dv(full, g, params, workers); });
      const auto m_star = bench::averaged(
          reps, [&] { return bench::run_dv(star, g, params, workers); });
      const auto m_hand =
          bench::averaged(reps, [&] { return run_pagerank_hand(g, workers); });
      bench::add_row(t, ds, "PageRank", "DV", m_full);
      bench::add_row(t, ds, "PageRank", "DV*", m_star);
      bench::add_row(t, ds, "PageRank", "Pregel+", m_hand);
      ratios.push_back({ds, "PageRank",
                        static_cast<double>(m_star.messages) /
                            static_cast<double>(m_full.messages),
                        m_star.sim_seconds / m_full.sim_seconds});
    }

    // ---- SSSP ----
    {
      const auto [full, star] = compile_both(dv::programs::kSssp);
      const std::map<std::string, dv::Value> params = {
          {"source", dv::Value::of_int(0)}};
      const auto m_full = bench::averaged(
          reps, [&] { return bench::run_dv(full, gw, params, workers); });
      const auto m_star = bench::averaged(
          reps, [&] { return bench::run_dv(star, gw, params, workers); });
      const auto m_hand =
          bench::averaged(reps, [&] { return run_sssp_hand(gw, workers); });
      bench::add_row(t, ds, "SSSP", "DV", m_full);
      bench::add_row(t, ds, "SSSP", "DV*", m_star);
      bench::add_row(t, ds, "SSSP", "Pregel+", m_hand);
      ratios.push_back({ds, "SSSP",
                        static_cast<double>(m_star.messages) /
                            static_cast<double>(m_full.messages),
                        m_star.sim_seconds / m_full.sim_seconds});
    }

    // ---- HITS ----
    {
      const auto [full, star] = compile_both(dv::programs::kHits);
      const std::map<std::string, dv::Value> params = {
          {"steps", dv::Value::of_int(kHitsRounds)}};
      const auto m_full = bench::averaged(
          reps, [&] { return bench::run_dv(full, g, params, workers); });
      const auto m_star = bench::averaged(
          reps, [&] { return bench::run_dv(star, g, params, workers); });
      const auto m_hand =
          bench::averaged(reps, [&] { return run_hits_hand(g, workers); });
      bench::add_row(t, ds, "HITS", "DV", m_full);
      bench::add_row(t, ds, "HITS", "DV*", m_star);
      bench::add_row(t, ds, "HITS", "Pregel+", m_hand);
      ratios.push_back({ds, "HITS",
                        static_cast<double>(m_star.messages) /
                            static_cast<double>(m_full.messages),
                        m_star.sim_seconds / m_full.sim_seconds});
    }
  }
  t.print(std::cout);

  std::cout << "\nIncrementalization effect (ΔV* / ΔV):\n";
  Table rt({"graph", "algorithm", "message reduction", "sim-time speedup"});
  for (const auto& r : ratios)
    rt.row().cell(r.graph).cell(r.algo).ratio(r.msg_reduction).ratio(
        r.star_speedup_sim);
  rt.print(std::cout);
  std::cout <<
      "\nShape checks (paper §7.2): PR and HITS show multi-x message\n"
      "reduction and speedup; SSSP shows 1.00x (identical messages) and\n"
      "no slowdown. Scale=" << scale << ".\n";
  return 0;
}
