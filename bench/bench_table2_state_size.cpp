// T2 — Table 2: vertex state size (bytes) per benchmark and system.
//
// Prints the compiled vertex-state layouts of ΔV and ΔV* for the four
// benchmark programs, the hand-written Pregel+ per-vertex algorithm state,
// and — as reference constants — the numbers the paper reports (which
// include Pregel+'s vertex-object overhead on their build; the comparison
// that matters is the ΔV−ΔV* delta and the ordering, both of which this
// table reproduces exactly).
#include <iostream>

#include "bench_common.h"

namespace {

struct PaperRow {
  const char* name;
  const char* dv_source;
  std::size_t pregel_state;  // bytes of our hand-written algorithm state
  int paper_dv, paper_dv_star, paper_palgol, paper_pregel;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace deltav;
  Args args(argc, argv);
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  args.check_unused();

  bench::banner("Vertex state size", "Table 2");

  // Hand-written per-vertex state: PR = rank (8B); SSSP = dist (8B);
  // CC = component id (4B); HITS = hub + auth (16B).
  const PaperRow rows[] = {
      {"PageRank", dv::programs::kPageRank, 8, 48, 40, 40, 32},
      {"SSSP", dv::programs::kSssp, 8, 48, 40, 64, 40},
      {"CC", dv::programs::kConnectedComponents, 4, 48, 40, 40, 32},
      {"HITS", dv::programs::kHits, 16, 80, 64, 64, 56},
  };

  Table t({"benchmark", "ours ΔV", "ours ΔV*", "ours Pregel+", "Δ(ΔV−ΔV*)",
           "paper ΔV", "paper ΔV*", "paper Palgol", "paper Pregel+"});
  for (const auto& r : rows) {
    const auto full = dv::compile(r.dv_source, {});
    const auto star =
        dv::compile(r.dv_source, dv::CompileOptions{.incrementalize = false});
    t.row()
        .cell(r.name)
        .cell(static_cast<unsigned long long>(full.state_bytes()))
        .cell(static_cast<unsigned long long>(star.state_bytes()))
        .cell(static_cast<unsigned long long>(r.pregel_state))
        .cell(static_cast<unsigned long long>(full.state_bytes() -
                                              star.state_bytes()))
        .cell(static_cast<long long>(r.paper_dv))
        .cell(static_cast<long long>(r.paper_dv_star))
        .cell(static_cast<long long>(r.paper_palgol))
        .cell(static_cast<long long>(r.paper_pregel));
  }
  t.print(std::cout);

  std::cout << "\nPer-origin breakdown of the ΔV layouts:\n";
  for (const auto& r : rows) {
    const auto full = dv::compile(r.dv_source, {});
    std::cout << "  " << r.name << ": " << full.layout.summary() << "\n";
  }
  std::cout << "\nShape checks (paper §7.1): Pregel+ < ΔV* <= ΔV and the\n"
               "incrementalization overhead is 8 B per (+/min) aggregation\n"
               "site — matching the paper's 48-40 = 8 B (PR/SSSP/CC) and\n"
               "80-64 = 16 B (HITS, two sites).\n";
  return 0;
}
